(* ftnet — command-line interface to the fault-tolerant circuit-switching
   network library.

   Subcommands:
     build      construct a network and print its vital statistics
     topologies list every registered network family (the --net registry)
     faults     sample a fault pattern and report the stripped survivor
     route      route a permutation (greedy) through an optionally faulty net
     check      run property deciders (superconcentrator / rearrangeable /
                nonblocking) on a small network
     survive    Monte-Carlo (eps, delta) survival estimation
     curve      coupled survival curve over an --eps-grid (CRN sweep)
     rare       rare-event failure estimation (tilted IS / multilevel
                splitting) for the paper's eps = 1e-6 regime
     traffic    continuous-time call traffic: steady-state blocking with CIs
     serve      live switch-controller daemon: line-JSON requests in,
                accept/block/rerouted decisions out, failure churn between
     tournament race every registered family through the survival sweep and
                the traffic engine; Pareto table on edges-per-terminal
     degrade    age the network under live traffic and report degradation
     critical   rank switches by Birnbaum criticality
     render     DOT or ASCII renderings (grids, stage census)

   Networks come from the Ftcsn_networks.Topology registry: every
   subcommand takes --net SPEC (e.g. benes:16, clos:n=64:rearr,
   multibutterfly:degree=4); --family FAMILY is kept as an alias for
   --net FAMILY.  `ftnet topologies' lists the registered families.

   Every Monte-Carlo workload runs on the Ftcsn_sim.Trials engine, so
   --jobs only changes wall-clock time: estimates, witnesses and ranks are
   bit-identical at every job count.  The stochastic subcommands share the
   observability flags --metrics FILE (JSON counters/timers/gauges),
   --trace FILE (JSONL span/chunk/stop events) and --progress (live
   stderr); tracing is strictly observational, so results are also
   bit-identical with it on or off.

   Error convention: invalid flag values and unopenable metric/trace
   paths print "ftnet: error: ..." on stderr and exit with code 2. *)

module Network = Ftcsn_networks.Network
module Topology = Ftcsn_networks.Topology
module Rng = Ftcsn_prng.Rng
module Fault = Ftcsn_reliability.Fault
module Monte_carlo = Ftcsn_reliability.Monte_carlo
module Splitting = Ftcsn_reliability.Splitting
module Trials = Ftcsn_sim.Trials
module Traffic = Ftcsn_des.Traffic
module Shard = Ftcsn_des.Shard
module Dist = Ftcsn_des.Dist
module Serve_engine = Ftcsn_serve.Engine
module Serve_loop = Ftcsn_serve.Loop
module Admission = Ftcsn_serve.Admission
module Batch_means = Ftcsn_des.Batch_means
module Obs_json = Ftcsn_obs.Json
module Obs_metrics = Ftcsn_obs.Metrics
module Obs_timer = Ftcsn_obs.Timer
module Counter = Ftcsn_obs.Counter
module Trace = Ftcsn_obs.Trace
open Cmdliner

(* ---------- error convention ---------- *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("ftnet: error: " ^ msg);
      exit 2)
    fmt

let check_pos flag v =
  if v < 1 then die "invalid %s value %d: must be an integer >= 1" flag v
  else v

(* Oversubscribing domains beyond the core count only adds scheduling
   overhead; warn (don't clamp) so deterministic runs pinned to an
   explicit --jobs keep their exact chunk layout. *)
let check_jobs v =
  let v = check_pos "--jobs" v in
  let cores = Domain.recommended_domain_count () in
  if v > cores then
    Printf.eprintf
      "ftnet: warning: --jobs %d exceeds the %d available core%s; extra \
       domains only add overhead\n%!"
      v cores
      (if cores = 1 then "" else "s");
  v

let parse_target_ci = function
  | None -> None
  | Some s -> (
      match float_of_string_opt s with
      | Some w when w > 0.0 && w < 1.0 -> Some w
      | _ ->
          die "invalid --target-ci value %S: expected a half-width in (0, 1)"
            s)

(* --eps-grid LO:HI:STEPS[:log|:lin] — an inclusive ε grid, linearly
   spaced by default or log-spaced on request.  HI is capped at 0.5
   because every sweep runs at ε₁ = ε₂ = ε. *)
let parse_eps_grid = function
  | None -> None
  | Some s ->
      let fail why = die "invalid --eps-grid value %S: %s" s why in
      let lo_s, hi_s, steps_s, scale =
        match String.split_on_char ':' s with
        | [ lo; hi; steps ] | [ lo; hi; steps; "lin" ] -> (lo, hi, steps, `Lin)
        | [ lo; hi; steps; "log" ] -> (lo, hi, steps, `Log)
        | [ _; _; _; sc ] ->
            fail (Printf.sprintf "unknown spacing %S (expected log or lin)" sc)
        | _ -> fail "expected LO:HI:STEPS[:log|:lin]"
      in
      let flt name v =
        match float_of_string_opt v with
        | Some x -> x
        | None -> fail (Printf.sprintf "%s %S is not a number" name v)
      in
      let lo = flt "LO" lo_s and hi = flt "HI" hi_s in
      let steps =
        match int_of_string_opt steps_s with
        | Some k when k >= 1 -> k
        | _ -> fail (Printf.sprintf "STEPS %S must be an integer >= 1" steps_s)
      in
      if not (lo >= 0.0 && lo <= hi) then fail "need 0 <= LO <= HI";
      if hi > 0.5 then fail "need HI <= 0.5 (sweeps run at eps_open = eps_close = eps)";
      (match scale with
      | `Log when lo <= 0.0 -> fail "log spacing needs LO > 0"
      | _ -> ());
      let grid =
        Array.init steps (fun k ->
            if steps = 1 then lo
            else
              let t = float_of_int k /. float_of_int (steps - 1) in
              match scale with
              | `Lin -> lo +. (t *. (hi -. lo))
              | `Log -> lo *. exp (t *. log (hi /. lo)))
      in
      (* extreme LO/HI (e.g. a denormal LO with :log) can overflow the
         spacing arithmetic into inf/nan points that would crash the
         fault sampler mid-sweep; reject the grid up front instead *)
      Array.iteri
        (fun k x ->
          if not (Float.is_finite x && x >= 0.0 && x <= 0.5) then
            fail
              (Printf.sprintf
                 "grid point %d computes to %g (degenerate spacing; LO/HI \
                  too extreme for %s scale)"
                 k x
                 (match scale with `Log -> "log" | `Lin -> "lin")))
        grid;
      Some grid

(* ---------- observability ---------- *)

type obs = {
  trace : Trace.sink option;
  registry : Obs_metrics.t;
  progress : (Trials.progress -> unit) option;
}

let progress_printer () =
  let last = ref neg_infinity in
  fun (p : Trials.progress) ->
    if p.Trials.elapsed -. !last >= 0.2 || p.Trials.completed >= p.Trials.cap
    then begin
      last := p.Trials.elapsed;
      Printf.eprintf
        "progress: %d/%d trials, %d successes, %.0f trials/s (jobs=%d)\n%!"
        p.Trials.completed p.Trials.cap p.Trials.successes p.Trials.rate
        p.Trials.jobs
    end

(* Graceful shutdown: SIGINT/SIGTERM unwind as an exception so every
   Fun.protect ~finally on the way out runs — in particular with_obs
   closes the --trace sink on a whole-line boundary and still writes
   the --metrics report.  Long-running reactors (serve) swap in their
   own flag-setting handlers so they can also print a final summary. *)
exception Interrupted of int (* the signal number *)

let signal_exit_code signo = if signo = Sys.sigterm then 143 else 130

let install_raising_handlers () =
  let arm s =
    (* keep the default behaviour on platforms without handlers *)
    try Sys.set_signal s (Sys.Signal_handle (fun _ -> raise (Interrupted s)))
    with Invalid_argument _ | Sys_error _ -> ()
  in
  arm Sys.sigint;
  arm Sys.sigterm

(* Sinks are opened before any work runs, so an unwritable path fails
   fast (exit 2) instead of after a long sweep.  The metrics report is
   written when the subcommand body returns (also on exceptions,
   including the SIGINT/SIGTERM unwind). *)
let with_obs (metrics_path, trace_path, progress) f =
  let open_out_checked flag path =
    try open_out path
    with Sys_error msg -> die "cannot open %s file %S: %s" flag path msg
  in
  let metrics_oc = Option.map (open_out_checked "--metrics") metrics_path in
  let trace_oc = Option.map (open_out_checked "--trace") trace_path in
  let obs =
    {
      trace = Option.map Trace.to_channel trace_oc;
      registry = Obs_metrics.default;
      progress = (if progress then Some (progress_printer ()) else None);
    }
  in
  install_raising_handlers ();
  match
    Fun.protect
      ~finally:(fun () ->
        Option.iter Trace.close obs.trace;
        Option.iter close_out trace_oc;
        match metrics_oc with
        | None -> ()
        | Some oc ->
            output_string oc
              (Obs_json.to_string (Obs_metrics.to_json obs.registry));
            output_char oc '\n';
            close_out oc)
      (fun () -> f obs)
  with
  | v -> v
  | exception Interrupted signo ->
      Printf.eprintf "ftnet: interrupted (signal %d); sinks flushed\n%!" signo;
      exit (signal_exit_code signo)

(* time a coarse phase: a span in the trace and a phase.* timer in the
   metrics report *)
let phase obs name f =
  let tm = Obs_metrics.timer obs.registry ("phase." ^ name) in
  Trace.span obs.trace name (fun () -> Obs_timer.time tm f)

let note_estimate obs name (est : Trials.estimate) =
  let gauge k v = Obs_metrics.set_gauge obs.registry (name ^ "." ^ k) v in
  gauge "mean" est.Trials.mean;
  gauge "ci_low" est.Trials.ci_low;
  gauge "ci_high" est.Trials.ci_high;
  Counter.add
    (Obs_metrics.counter obs.registry "trials.executed")
    est.Trials.trials;
  Counter.add
    (Obs_metrics.counter obs.registry "trials.successes")
    est.Trials.successes

let print_curve_table grid (ests : Trials.estimate array) =
  Format.printf "  %-12s %-8s %-10s %-10s %s@." "eps" "mean" "ci_low"
    "ci_high" "successes/trials";
  Array.iteri
    (fun k (est : Trials.estimate) ->
      Format.printf "  %-12g %-8.4f %-10.4f %-10.4f %d/%d@." grid.(k)
        est.Trials.mean est.Trials.ci_low est.Trials.ci_high
        est.Trials.successes est.Trials.trials)
    ests

(* ---------- seed derivation ---------- *)

(* Every stream ftnet ever draws from derives from the user's --seed by a
   fixed offset, documented here in one place.  Network construction uses
   the seed itself (offset 0) in every subcommand, so `--family ft -n 8
   --seed 1` denotes the same network everywhere; each subcommand's own
   randomness (fault sampling, probe workloads, ...) lives at its own
   offset so no two subcommands share a stream. *)
module Seeds = struct
  let network seed = Rng.create ~seed (* offset 0: network construction *)

  let faults seed = Rng.create ~seed:(seed + 1)

  let route seed = Rng.create ~seed:(seed + 2)

  let check seed = Rng.create ~seed:(seed + 3)

  let survive seed = Rng.create ~seed:(seed + 4)

  let degrade seed = Rng.create ~seed:(seed + 5)

  let critical seed = Rng.create ~seed:(seed + 6)

  let traffic seed = Rng.create ~seed:(seed + 7)

  let rare seed = Rng.create ~seed:(seed + 8)

  let serve seed = Rng.create ~seed:(seed + 9)

  (* curve shares survive's stream: a curve point at ε then reproduces
     `survive --eps ε` with the same --seed bit-for-bit *)
  let curve seed = Rng.create ~seed:(seed + 4)

  let build seed = Rng.create ~seed:(seed + 10) (* diameter sampling *)
end

(* ---------- shared argument parsing ---------- *)

let seed_arg =
  let doc =
    "PRNG seed (all randomness is derived deterministically from SEED at \
     fixed per-subcommand offsets)."
  in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let eps_arg =
  let doc = "Per-switch failure probability (open = closed = EPS)." in
  Arg.(value & opt float 0.01 & info [ "eps" ] ~docv:"EPS" ~doc)

let n_arg =
  let doc = "Number of terminals (rounded to the family's natural grid)." in
  Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for Monte-Carlo trials (default: the machine's \
     recommended domain count).  Results are bit-identical at every J; \
     only wall-clock time changes."
  in
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "jobs"; "j" ] ~docv:"J" ~doc)

let target_ci_arg =
  let doc =
    "Adaptive stopping: keep running trials until the Wilson 95% interval \
     half-width drops to W or below (the --trials cap still applies)."
  in
  Arg.(value & opt (some string) None & info [ "target-ci" ] ~docv:"W" ~doc)

let trials_arg ~default ~doc =
  Arg.(value & opt int default & info [ "trials" ] ~docv:"T" ~doc)

let eps_grid_arg =
  let doc =
    "Sweep a coupled ε-curve over $(docv) = LO:HI:STEPS[:log|:lin] instead \
     of the single --eps point: every trial draws one uniform per switch \
     and thresholds that same draw vector at each grid ε (common random \
     numbers), so the whole curve costs about one run and the points are \
     positively correlated.  Incompatible with --target-ci."
  in
  Arg.(value & opt (some string) None & info [ "eps-grid" ] ~docv:"GRID" ~doc)

let metrics_arg =
  let doc =
    "Write a JSON metrics report (operation counters, per-phase timers, \
     estimate gauges) to $(docv) when the subcommand finishes."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_arg =
  let doc =
    "Stream structured JSONL trace events to $(docv): phase spans, one \
     event per trial chunk (worker domain, wall-clock cost, RNG substream \
     range) and every adaptive-stopping decision with its Wilson \
     half-width.  Tracing never changes estimates."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let progress_flag =
  let doc = "Report live trial progress on stderr." in
  Arg.(value & flag & info [ "progress" ] ~doc)

let obs_args =
  Term.(
    const (fun m t p -> (m, t, p)) $ metrics_arg $ trace_arg $ progress_flag)

(* --net SPEC selects from the Topology registry; --family FAMILY is the
   historical spelling, kept as a plain alias for --net FAMILY. *)
let net_arg =
  let doc =
    "Network spec $(docv) = FAMILY[:ARG]... where each ARG is a bare \
     integer (the terminal count), KEY=VALUE, or a flag name — e.g. \
     benes:16, clos:n=64:rearr, multibutterfly:degree=4.  See `ftnet \
     topologies' for the registered families."
  in
  Arg.(value & opt (some string) None & info [ "net" ] ~docv:"SPEC" ~doc)

let family_alias_arg =
  let doc = "Network family name (alias for --net $(docv))." in
  Arg.(value & opt (some string) None & info [ "family" ] ~docv:"FAMILY" ~doc)

let spec_args =
  Term.(const (fun net family -> (net, family)) $ net_arg $ family_alias_arg)

(* Resolve --net/--family, build through the registry, and warn when the
   family snapped n to its natural grid (the old build_network rounded
   silently).  Exits 2 with the registry's normalized message on an
   unknown family/parameter. *)
let build_network (net, family) ~n ~seed =
  let spec =
    match (net, family) with
    | Some _, Some _ -> die "--net and --family cannot both be given"
    | Some s, None -> s
    | None, Some f -> f
    | None, None -> "ft"
  in
  let n = check_pos "-n" n in
  match Topology.build_string ~n ~rng:(Seeds.network seed) spec with
  | Error msg -> die "%s" msg
  | Ok built ->
      if built.Topology.n_effective <> built.Topology.n_requested then
        Printf.eprintf
          "ftnet: warning: family %s snapped n=%d to its natural grid \
           (effective n=%d)\n%!"
          built.Topology.gen.Topology.name built.Topology.n_requested
          built.Topology.n_effective;
      built

let build_net netspec ~n ~seed = (build_network netspec ~n ~seed).Topology.net

(* ---------- build ---------- *)

let build_cmd =
  let run family n seed =
    let built = build_network family ~n ~seed in
    let net = built.Topology.net in
    let g = net.Network.graph in
    Format.printf "%a@." Network.pp net;
    Format.printf "family: %s@." built.Topology.gen.Topology.name;
    if built.Topology.n_effective <> built.Topology.n_requested then
      Format.printf "effective n: %d (requested %d)@."
        built.Topology.n_effective built.Topology.n_requested
    else Format.printf "effective n: %d@." built.Topology.n_effective;
    Format.printf "acyclic: %b@." (Network.is_acyclic net);
    Format.printf "vertices: %d@." (Ftcsn_graph.Digraph.vertex_count g);
    let p = Ftcsn_graph.Metrics.degree_profile g in
    Format.printf "degrees: in %d..%d, out %d..%d, mean %.2f@."
      p.Ftcsn_graph.Metrics.min_in p.Ftcsn_graph.Metrics.max_in
      p.Ftcsn_graph.Metrics.min_out p.Ftcsn_graph.Metrics.max_out
      p.Ftcsn_graph.Metrics.mean_out;
    let rng = Seeds.build seed in
    Format.printf "directed diameter (sampled lower bound): %d@."
      (Ftcsn_graph.Metrics.diameter_lower_bound g ~samples:8 ~rng)
  in
  let doc = "Construct a network and print size, depth and degree stats." in
  Cmd.v (Cmd.info "build" ~doc) Term.(const run $ spec_args $ n_arg $ seed_arg)

(* ---------- topologies ---------- *)

let topologies_cmd =
  let run names_only =
    let gens = Topology.all () in
    if names_only then
      List.iter (fun (g : Topology.gen) -> print_endline g.Topology.name) gens
    else begin
      Format.printf
        "registered network families (use --net FAMILY[:ARG]...):@.";
      List.iter
        (fun (g : Topology.gen) ->
          let params =
            List.map
              (fun (p : Topology.param) ->
                match p.Topology.kind with
                | `Flag -> p.Topology.key
                | `Int -> p.Topology.key ^ "=INT")
              g.Topology.params
          in
          let extras =
            (match g.Topology.aliases with
            | [] -> []
            | a -> [ "aliases: " ^ String.concat ", " a ])
            @
            match params with
            | [] -> []
            | ps -> [ "params: " ^ String.concat ", " ps ]
          in
          Format.printf "  %-16s %s%s@." g.Topology.name g.Topology.doc
            (match extras with
            | [] -> ""
            | es -> "  (" ^ String.concat "; " es ^ ")"))
        gens
    end
  in
  let names_only =
    Arg.(
      value & flag
      & info [ "names" ]
          ~doc:
            "Print only the canonical family names, one per line (for \
             scripting loops over the registry).")
  in
  let doc = "List every registered network family with its parameters." in
  Cmd.v (Cmd.info "topologies" ~doc) Term.(const run $ names_only)

(* ---------- faults ---------- *)

let faults_cmd =
  let run family n seed eps eps_grid radius trials jobs target_ci obsargs =
    let trials = check_pos "--trials" trials in
    let jobs = check_jobs jobs in
    let eps_grid = parse_eps_grid eps_grid in
    if eps_grid <> None && target_ci <> None then
      die "--eps-grid cannot be combined with --target-ci (a single \
           half-width target is ill-defined across a curve)";
    let target_ci = parse_target_ci target_ci in
    with_obs obsargs @@ fun obs ->
    let net = phase obs "build-network" (fun () -> build_net family ~n ~seed) in
    let rng = Seeds.faults seed in
    let m = Network.size net in
    let pattern = Fault.sample rng ~eps_open:eps ~eps_close:eps ~m in
    let opens = Fault.count pattern Fault.Open_failure in
    let closes = Fault.count pattern Fault.Closed_failure in
    Format.printf "switches: %d, open failures: %d, closed failures: %d@." m
      opens closes;
    let strip = Ftcsn.Fault_strip.strip ~radius net pattern in
    Format.printf "stripped vertices: %d (%.2f%%)@."
      (Ftcsn_util.Bitset.cardinal strip.Ftcsn.Fault_strip.stripped)
      (100.0 *. Ftcsn.Fault_strip.stripped_fraction net strip);
    Format.printf "terminals shorted: %s@."
      (match strip.Ftcsn.Fault_strip.shorted_terminals with
      | [] -> "none"
      | ps ->
          String.concat ", "
            (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) ps));
    Format.printf "isolated inputs: %s@."
      (match Ftcsn.Fault_strip.isolated_inputs net strip with
      | [] -> "none"
      | is -> String.concat ", " (List.map string_of_int is));
    (match eps_grid with
    | Some grid ->
        (* coupled curve survey: one uniform per switch per trial,
           thresholded at every grid ε (common random numbers); the
           clean-survivor event reads the closed-edge set, which is not
           nested in ε, so every point is evaluated *)
        let ests =
          phase obs "estimate" (fun () ->
              Trials.sweep ~jobs ?progress:obs.progress ?trace:obs.trace
                ~label:"faults.survey_curve" ~trials ~rng
                ~points:(Array.length grid)
                ~init:(fun () -> Ftcsn.Fault_strip.create_ws net)
                (fun ws sub outcomes ->
                  let uniforms =
                    Ftcsn_reliability.Scratch.uniforms
                      (Ftcsn.Fault_strip.ws_scratch ws)
                  in
                  let pattern = Ftcsn.Fault_strip.ws_pattern ws in
                  Fault.sample_uniforms_into sub uniforms;
                  Array.iteri
                    (fun k e ->
                      Fault.classify_into ~uniforms ~eps_open:e ~eps_close:e
                        pattern;
                      Ftcsn.Fault_strip.strip_into ~radius ws pattern;
                      if
                        Ftcsn.Fault_strip.ws_healthy ws
                        && Ftcsn.Fault_strip.ws_isolated_inputs ws = []
                      then Bytes.set outcomes k '\001')
                    grid))
        in
        Format.printf
          "P[survivor clean] curve (%d coupled trials, jobs=%d):@." trials
          jobs;
        print_curve_table grid ests
    | None ->
        if trials > 1 then begin
          (* survey mode: estimate how often a fresh pattern leaves a clean
             survivor (no shorted terminals, no isolated inputs); runs on the
             Fault_strip workspace, so trials allocate nothing but the
             isolated-input lists *)
          let est =
            phase obs "estimate" (fun () ->
                Trials.run_scratch ~jobs ?target_ci ?progress:obs.progress
                  ?trace:obs.trace ~label:"faults.survey" ~trials ~rng
                  ~init:(fun () -> Ftcsn.Fault_strip.create_ws net)
                  (fun ws sub ->
                    let pattern = Ftcsn.Fault_strip.ws_pattern ws in
                    Fault.sample_into sub ~eps_open:eps ~eps_close:eps pattern;
                    Ftcsn.Fault_strip.strip_into ~radius ws pattern;
                    Ftcsn.Fault_strip.ws_healthy ws
                    && Ftcsn.Fault_strip.ws_isolated_inputs ws = []))
          in
          note_estimate obs "faults.clean" est;
          Format.printf "P[survivor clean] = %a  (%d trials, jobs=%d)@."
            Monte_carlo.pp est est.Monte_carlo.trials jobs
        end)
  in
  let radius =
    Arg.(value & opt int 0 & info [ "radius" ] ~docv:"R"
           ~doc:"Strip radius: 0 = faulty vertices, 1 = plus neighbours.")
  in
  let trials =
    trials_arg ~default:1
      ~doc:
        "With T > 1, additionally survey T sampled patterns and estimate \
         P[survivor has no shorted terminals or isolated inputs]."
  in
  let doc = "Sample a fault pattern and report the stripped survivor." in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(
      const run $ spec_args $ n_arg $ seed_arg $ eps_arg $ eps_grid_arg
      $ radius $ trials $ jobs_arg $ target_ci_arg $ obs_args)

(* ---------- route ---------- *)

let route_cmd =
  let run family n seed eps eps_grid verbose trials jobs target_ci obsargs =
    let trials = check_pos "--trials" trials in
    let jobs = check_jobs jobs in
    let eps_grid = parse_eps_grid eps_grid in
    if eps_grid <> None && target_ci <> None then
      die "--eps-grid cannot be combined with --target-ci (a single \
           half-width target is ill-defined across a curve)";
    let target_ci = parse_target_ci target_ci in
    with_obs obsargs @@ fun obs ->
    let net = phase obs "build-network" (fun () -> build_net family ~n ~seed) in
    let rng = Seeds.route seed in
    let n' = min (Network.n_inputs net) (Network.n_outputs net) in
    match eps_grid with
    | Some grid ->
        (* coupled curve survey: shared per-switch draws across the grid;
           the permutation is drawn once from a copy of the substream
           taken after the switch draws — the same stream state every
           single-ε survey trial would hand its permutation draw *)
        let ests =
          phase obs "estimate" (fun () ->
              Trials.sweep ~jobs ?progress:obs.progress ?trace:obs.trace
                ~label:"route.survey_curve" ~trials ~rng
                ~points:(Array.length grid)
                ~init:(fun () ->
                  let fs = Ftcsn.Fault_strip.create_ws net in
                  let router =
                    Ftcsn_routing.Greedy.create
                      ~allowed:(Ftcsn.Fault_strip.ws_allowed fs)
                      ~edge_ok:(Ftcsn.Fault_strip.ws_edge_ok fs)
                      net
                  in
                  (fs, router))
                (fun (fs, router) sub outcomes ->
                  let uniforms =
                    Ftcsn_reliability.Scratch.uniforms
                      (Ftcsn.Fault_strip.ws_scratch fs)
                  in
                  let pattern = Ftcsn.Fault_strip.ws_pattern fs in
                  Fault.sample_uniforms_into sub uniforms;
                  let pi = Rng.permutation (Rng.copy sub) n' in
                  Array.iteri
                    (fun k e ->
                      Fault.classify_into ~uniforms ~eps_open:e ~eps_close:e
                        pattern;
                      Ftcsn.Fault_strip.strip_into fs pattern;
                      Ftcsn_routing.Greedy.clear router;
                      let success = ref 0 in
                      ignore
                        (Ftcsn_routing.Greedy.route_permutation router pi
                           ~success);
                      if !success = n' then Bytes.set outcomes k '\001')
                    grid))
        in
        Format.printf
          "P[random permutation fully routes] curve (%d coupled trials, \
           jobs=%d):@."
          trials jobs;
        print_curve_table grid ests
    | None ->
    if trials <= 1 then begin
      let pi = Rng.permutation rng n' in
      let allowed, routing_net =
        if eps > 0.0 then begin
          let pattern =
            Fault.sample rng ~eps_open:eps ~eps_close:eps ~m:(Network.size net)
          in
          let strip = Ftcsn.Fault_strip.strip net pattern in
          ( strip.Ftcsn.Fault_strip.allowed,
            Ftcsn.Fault_strip.surviving_network net strip )
        end
        else ((fun _ -> true), net)
      in
      let router = Ftcsn_routing.Greedy.create ~allowed routing_net in
      let success = ref 0 in
      let paths = Ftcsn_routing.Greedy.route_permutation router pi ~success in
      Format.printf "requests: %d, routed: %d, blocked: %d@." n' !success
        (n' - !success);
      if verbose then
        Array.iteri
          (fun i path ->
            match path with
            | Some p ->
                Format.printf "  %d -> %d: %s@." i pi.(i)
                  (String.concat " " (List.map string_of_int p))
            | None -> Format.printf "  %d -> %d: BLOCKED@." i pi.(i))
          paths
    end
    else begin
      (* survey mode: each trial draws its own fault pattern and its own
         permutation; success = every request routed greedily.  One
         Fault_strip workspace and one masked router per worker: trials
         re-strip in place and route over the original graph, instead of
         rebuilding a surviving subgraph and a fresh router every time. *)
      let est =
        phase obs "estimate" (fun () ->
            Trials.run_scratch ~jobs ?target_ci ?progress:obs.progress
              ?trace:obs.trace ~label:"route.survey" ~trials ~rng
              ~init:(fun () ->
                let fs = Ftcsn.Fault_strip.create_ws net in
                let router =
                  Ftcsn_routing.Greedy.create
                    ~allowed:(Ftcsn.Fault_strip.ws_allowed fs)
                    ~edge_ok:(Ftcsn.Fault_strip.ws_edge_ok fs)
                    net
                in
                (fs, router))
              (fun (fs, router) sub ->
                let pattern = Ftcsn.Fault_strip.ws_pattern fs in
                if eps > 0.0 then
                  Fault.sample_into sub ~eps_open:eps ~eps_close:eps pattern
                else Array.fill pattern 0 (Array.length pattern) Fault.Normal;
                Ftcsn.Fault_strip.strip_into fs pattern;
                let pi = Rng.permutation sub n' in
                Ftcsn_routing.Greedy.clear router;
                let success = ref 0 in
                ignore
                  (Ftcsn_routing.Greedy.route_permutation router pi ~success);
                !success = n'))
      in
      note_estimate obs "route.full" est;
      Format.printf
        "P[random permutation fully routes, eps=%g] = %a  (%d trials, jobs=%d)@."
        eps Monte_carlo.pp est est.Monte_carlo.trials jobs
    end
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every path.")
  in
  let trials =
    trials_arg ~default:1
      ~doc:
        "With T > 1, estimate P[a random permutation routes fully] over T \
         independent fault samples instead of printing one route."
  in
  let doc = "Greedily route a random permutation, optionally under faults." in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(
      const run $ spec_args $ n_arg $ seed_arg $ eps_arg $ eps_grid_arg
      $ verbose $ trials $ jobs_arg $ target_ci_arg $ obs_args)

(* ---------- check ---------- *)

let check_cmd =
  let run family n seed trials jobs target_ci obsargs =
    let trials = check_pos "--trials" trials in
    let jobs = check_jobs jobs in
    let target_ci = parse_target_ci target_ci in
    with_obs obsargs @@ fun obs ->
    let net = phase obs "build-network" (fun () -> build_net family ~n ~seed) in
    let rng = Seeds.check seed in
    Format.printf "%a@." Network.pp net;
    phase obs "superconcentrator" (fun () ->
        match
          Ftcsn_routing.Properties.superconcentrator_exhaustive
            ~max_work:100_000 net
        with
        | `Holds -> Format.printf "superconcentrator: yes (exhaustive)@."
        | `Violated v ->
            Format.printf "superconcentrator: NO (r=%d achieved=%d)@."
              v.Ftcsn_routing.Properties.r v.Ftcsn_routing.Properties.achieved
        | `Too_large -> (
            match
              Ftcsn_routing.Properties.superconcentrator_sampled ~jobs
                ?trace:obs.trace ~trials ~rng net
            with
            | None ->
                Format.printf "superconcentrator: probably (%d samples)@." trials
            | Some v ->
                Format.printf "superconcentrator: NO (sampled r=%d)@."
                  v.Ftcsn_routing.Properties.r));
    phase obs "rearrangeable" (fun () ->
        if Network.n_inputs net <= 5 then begin
          match Ftcsn_routing.Properties.rearrangeable_exhaustive net with
          | `Holds -> Format.printf "rearrangeable: yes (exhaustive)@."
          | `Violated pi ->
              Format.printf "rearrangeable: NO (witness %s)@."
                (Format.asprintf "%a" Ftcsn_util.Perm.pp pi)
          | `Budget_exceeded -> Format.printf "rearrangeable: budget exceeded@."
        end
        else begin
          let perm_trials = max 5 (trials / 5) in
          match
            Ftcsn_routing.Properties.rearrangeable_sampled ~jobs
              ?trace:obs.trace ~trials:perm_trials ~rng net
          with
          | None ->
              Format.printf "rearrangeable: probably (%d samples)@." perm_trials
          | Some _ -> Format.printf "rearrangeable: NO (sampled witness)@."
        end);
    phase obs "nonblocking" (fun () ->
        if Network.n_inputs net <= 4 && Network.size net <= 64 then begin
          match
            Ftcsn_routing.Properties.nonblocking_exhaustive ~max_states:100_000
              net
          with
          | `Holds -> Format.printf "strictly nonblocking: yes (exhaustive)@."
          | `Violated _ -> Format.printf "strictly nonblocking: NO@."
          | `Budget_exceeded ->
              Format.printf "strictly nonblocking: budget exceeded@."
        end
        else begin
          (* estimate P[a 200-step stress episode blocks nothing] so that
             --target-ci / --jobs have something to sharpen *)
          let episodes = max 5 (trials / 5) in
          let steps = 200 in
          let est =
            Monte_carlo.estimate ~jobs ?target_ci ?progress:obs.progress
              ?trace:obs.trace ~label:"check.nonblocking_stress"
              ~trials:episodes ~rng (fun sub ->
                let stats =
                  Ftcsn_routing.Properties.nonblocking_stress ~steps ~rng:sub
                    net
                in
                stats.Ftcsn_routing.Session.blocked = 0)
          in
          note_estimate obs "check.nonblocking_stress" est;
          Format.printf
            "nonblocking stress: P[0 blocked in %d-step episode] = %a  (%d \
             episodes, jobs=%d)@."
            steps Monte_carlo.pp est est.Monte_carlo.trials jobs
        end)
  in
  let trials =
    trials_arg ~default:100
      ~doc:
        "Sampled-decider budget: T superconcentrator probes, T/5 sampled \
         permutations, T/5 nonblocking stress episodes."
  in
  let doc = "Decide/estimate the three §2 properties for a network." in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ spec_args $ n_arg $ seed_arg $ trials $ jobs_arg
      $ target_ci_arg $ obs_args)

(* ---------- survive ---------- *)

let survive_cmd =
  let run family n seed eps trials jobs target_ci obsargs =
    let trials = check_pos "--trials" trials in
    let jobs = check_jobs jobs in
    let target_ci = parse_target_ci target_ci in
    with_obs obsargs @@ fun obs ->
    let net = phase obs "build-network" (fun () -> build_net family ~n ~seed) in
    let rng = Seeds.survive seed in
    let last_rate = ref 0.0 in
    let progress p =
      last_rate := p.Trials.rate;
      match obs.progress with Some cb -> cb p | None -> ()
    in
    let est =
      phase obs "estimate" (fun () ->
          Ftcsn.Pipeline.survival ~jobs ?target_ci ~progress ?trace:obs.trace
            ~trials ~rng ~eps ~probe:Ftcsn.Pipeline.sc_probe_only net)
    in
    note_estimate obs "survive" est;
    Format.printf "%a@." Network.pp net;
    Format.printf
      "P[survives eps=%g, superconcentrator probes] = %.3f  (95%% CI [%.3f, %.3f], %d trials)@."
      eps est.Ftcsn_reliability.Monte_carlo.mean
      est.Ftcsn_reliability.Monte_carlo.ci_low
      est.Ftcsn_reliability.Monte_carlo.ci_high
      est.Ftcsn_reliability.Monte_carlo.trials;
    Format.printf "throughput: %.0f trials/s (jobs=%d)@." !last_rate jobs
  in
  let trials =
    trials_arg ~default:100 ~doc:"Monte-Carlo trial cap."
  in
  let doc = "Monte-Carlo (eps, delta) survival estimation." in
  Cmd.v (Cmd.info "survive" ~doc)
    Term.(
      const run $ spec_args $ n_arg $ seed_arg $ eps_arg $ trials $ jobs_arg
      $ target_ci_arg $ obs_args)

(* ---------- curve ---------- *)

let curve_cmd =
  let run family n seed eps_grid trials jobs json obsargs =
    let trials = check_pos "--trials" trials in
    let jobs = check_jobs jobs in
    let grid =
      match parse_eps_grid (Some eps_grid) with
      | Some g -> g
      | None -> assert false
    in
    with_obs obsargs @@ fun obs ->
    let net = phase obs "build-network" (fun () -> build_net family ~n ~seed) in
    let rng = Seeds.curve seed in
    let ests =
      phase obs "estimate" (fun () ->
          Ftcsn.Pipeline.survival_curve ~jobs ?progress:obs.progress
            ?trace:obs.trace ~trials ~rng ~eps:grid
            ~probe:Ftcsn.Pipeline.sc_probe_only net)
    in
    if json then begin
      let point k (est : Trials.estimate) =
        Obs_json.Obj
          [
            ("eps", Obs_json.Float grid.(k));
            ("mean", Obs_json.Float est.Trials.mean);
            ("ci_low", Obs_json.Float est.Trials.ci_low);
            ("ci_high", Obs_json.Float est.Trials.ci_high);
            ("successes", Obs_json.Int est.Trials.successes);
            ("trials", Obs_json.Int est.Trials.trials);
          ]
      in
      print_endline
        (Obs_json.to_string
           (Obs_json.Obj
              [
                ("inputs", Obs_json.Int (Network.n_inputs net));
                ("outputs", Obs_json.Int (Network.n_outputs net));
                ("switches", Obs_json.Int (Network.size net));
                ("trials", Obs_json.Int trials);
                ("probe", Obs_json.String "sc_probe_only");
                ( "curve",
                  Obs_json.List (Array.to_list (Array.mapi point ests)) );
              ]))
    end
    else begin
      Format.printf "%a@." Network.pp net;
      Format.printf
        "survival curve (superconcentrator probes, %d coupled trials, \
         jobs=%d):@."
        trials jobs;
      print_curve_table grid ests
    end
  in
  let eps_grid =
    let doc =
      "ε grid LO:HI:STEPS[:log|:lin] for the sweep (inclusive; lin-spaced \
       by default, log-spaced with :log)."
    in
    Arg.(
      value
      & opt string "0.001:0.1:8:log"
      & info [ "eps-grid" ] ~docv:"GRID" ~doc)
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the curve as one JSON object instead of a table.")
  in
  let trials =
    trials_arg ~default:200 ~doc:"Coupled Monte-Carlo trials (shared by every grid point)."
  in
  let doc =
    "Survival-probability curve over an ε grid via one coupled sweep \
     (common random numbers: every grid point shares each trial's \
     per-switch draws, so the curve costs about one run and each point \
     is bit-identical to an independent survive run at that ε)."
  in
  Cmd.v (Cmd.info "curve" ~doc)
    Term.(
      const run $ spec_args $ n_arg $ seed_arg $ eps_grid $ trials
      $ jobs_arg $ json $ obs_args)

(* ---------- rare ---------- *)

(* Plain MC needs ~1/(eps·n·RE²) trials to pin a probability of order
   eps·n at relative error RE — hopeless at the paper's eps = 1e-6.
   `ftnet rare` runs the lib/reliability/splitting estimators instead:
   cross-entropy-tilted importance sampling (the full failure event) and
   multilevel splitting/RESTART (the monotone sub-event via the critical-ε
   importance function).  Both run on Trials, so estimates stay
   bit-identical at every --jobs; the sequential pilot phases (CE tilt
   tuning, level-schedule calibration) draw from the same --seed stream
   before the parallel phase, so the whole run is deterministic. *)

let rare_est_json (e : Splitting.estimate) =
  [
    ("mean", Obs_json.Float e.Splitting.mean);
    ("rel_err", Obs_json.Float e.Splitting.rel_err);
    ("ci_low", Obs_json.Float e.Splitting.ci_low);
    ("ci_high", Obs_json.Float e.Splitting.ci_high);
    ("trials", Obs_json.Int e.Splitting.trials);
    ("variance_ratio", Obs_json.Float e.Splitting.variance_ratio);
    ("evals", Obs_json.Int e.Splitting.evals);
  ]

let note_rare_estimate obs name (e : Splitting.estimate) =
  let gauge k v = Obs_metrics.set_gauge obs.registry (name ^ "." ^ k) v in
  gauge "mean" e.Splitting.mean;
  gauge "rel_err" e.Splitting.rel_err;
  gauge "variance_ratio" e.Splitting.variance_ratio

let print_rare_header () =
  Format.printf "  %-6s %-12s %-9s %-24s %-8s %-12s %s@." "method" "mean"
    "rel_err" "95% CI" "trials" "var_ratio" "evals"

let print_rare_row name (e : Splitting.estimate) =
  Format.printf "  %-6s %-12.4e %-9.4f [%.3e, %.3e]  %-8d %-12.4g %d@." name
    e.Splitting.mean e.Splitting.rel_err e.Splitting.ci_low
    e.Splitting.ci_high e.Splitting.trials e.Splitting.variance_ratio
    e.Splitting.evals

let rare_cmd =
  let run family n seed eps eps_grid method_ trials pilot_trials tilt_iters
      per_edge particles level_p0 mutate jobs json obsargs =
    let trials = check_pos "--trials" trials in
    let jobs = check_jobs jobs in
    let pilot_trials = check_pos "--pilot-trials" pilot_trials in
    let tilt_iters = check_pos "--tilt-iters" tilt_iters in
    let particles = check_pos "--particles" particles in
    if not (eps > 0.0 && eps <= 0.5) then
      die "invalid --eps value %g: need 0 < EPS <= 0.5" eps;
    if not (level_p0 > 0.0 && level_p0 < 1.0) then
      die "invalid --level-p0 value %g: must lie in (0, 1)" level_p0;
    if not (mutate > 0.0 && mutate <= 1.0) then
      die "invalid --mutate value %g: must lie in (0, 1]" mutate;
    let method_ =
      match method_ with
      | "tilt" -> `Tilt
      | "split" -> `Split
      | "both" -> `Both
      | s -> die "invalid --method value %S: expected tilt, split or both" s
    in
    let grid = parse_eps_grid eps_grid in
    (match (grid, method_) with
    | Some _, (`Split | `Both) ->
        die
          "--eps-grid sweeps share one tilted sample per trial across the \
           grid; only --method tilt supports it"
    | Some g, `Tilt ->
        Array.iter
          (fun x ->
            if not (x > 0.0) then
              die
                "invalid --eps-grid value: grid point %g must be > 0 (tilted \
                 weights are likelihood ratios against eps)"
                x)
          g
    | None, _ -> ());
    with_obs obsargs @@ fun obs ->
    let net = phase obs "build-network" (fun () -> build_net family ~n ~seed) in
    let rng = Seeds.rare seed in
    (* pilots can reject a degenerate configuration (population collapse,
       zero-mass tilt) only once they see the event; normalize to exit 2 *)
    let checked name f =
      try f () with Invalid_argument msg -> die "%s phase failed: %s" name msg
    in
    let run_tilt () =
      let tilt =
        checked "tilt-tuning" @@ fun () ->
        phase obs "tune-tilt" (fun () ->
            Ftcsn.Rare.tune_tilt ~iters:tilt_iters ~trials:pilot_trials
              ~per_edge ?trace:obs.trace ~rng ~eps net)
      in
      let est =
        phase obs "estimate-tilt" (fun () ->
            Ftcsn.Rare.failure_tilted ~jobs ?trace:obs.trace ~trials ~rng ~eps
              ~tilt net)
      in
      note_rare_estimate obs "rare.tilt" est;
      est
    in
    let run_split () =
      let schedule =
        checked "level-pilot" @@ fun () ->
        phase obs "pilot-levels" (fun () ->
            Ftcsn.Rare.pilot_schedule ~particles ~p0:level_p0 ~mutate
              ?trace:obs.trace ~rng ~eps net)
      in
      let est =
        phase obs "estimate-split" (fun () ->
            Ftcsn.Rare.failure_split ~jobs ?trace:obs.trace ~mutate ~trials
              ~rng ~schedule net)
      in
      note_rare_estimate obs "rare.split" est;
      (schedule, est)
    in
    match grid with
    | Some grid ->
        (* tune at the rarest (smallest) grid point so the tilt reaches
           every point; larger points just carry milder weights *)
        let eps_min = Array.fold_left min grid.(0) grid in
        let tilt =
          checked "tilt-tuning" @@ fun () ->
          phase obs "tune-tilt" (fun () ->
              Ftcsn.Rare.tune_tilt ~iters:tilt_iters ~trials:pilot_trials
                ~per_edge ?trace:obs.trace ~rng ~eps:eps_min net)
        in
        let ests =
          phase obs "estimate-tilt-curve" (fun () ->
              Ftcsn.Rare.failure_tilted_curve ~jobs ?trace:obs.trace ~trials
                ~rng ~grid ~tilt net)
        in
        note_rare_estimate obs "rare.tilt" ests.(0);
        if json then
          let point k est =
            Obs_json.Obj
              (("eps", Obs_json.Float grid.(k)) :: rare_est_json est)
          in
          print_endline
            (Obs_json.to_string
               (Obs_json.Obj
                  [
                    ("inputs", Obs_json.Int (Network.n_inputs net));
                    ("outputs", Obs_json.Int (Network.n_outputs net));
                    ("switches", Obs_json.Int (Network.size net));
                    ("method", Obs_json.String "tilt");
                    ("trials", Obs_json.Int trials);
                    ( "curve",
                      Obs_json.List (Array.to_list (Array.mapi point ests)) );
                  ]))
        else begin
          Format.printf "%a@." Network.pp net;
          Format.printf
            "rare-event failure curve (tilted IS tuned at eps=%g, %d \
             coupled trials, jobs=%d):@."
            eps_min trials jobs;
          Format.printf "  %-12s %-12s %-9s %-24s %s@." "eps" "mean"
            "rel_err" "95% CI" "var_ratio";
          Array.iteri
            (fun k (e : Splitting.estimate) ->
              Format.printf "  %-12g %-12.4e %-9.4f [%.3e, %.3e]  %.4g@."
                grid.(k) e.Splitting.mean e.Splitting.rel_err
                e.Splitting.ci_low e.Splitting.ci_high
                e.Splitting.variance_ratio)
            ests
        end
    | None -> (
        let tilt_est =
          match method_ with `Tilt | `Both -> Some (run_tilt ()) | `Split -> None
        in
        let split_res =
          match method_ with
          | `Split | `Both -> Some (run_split ())
          | `Tilt -> None
        in
        if json then
          let fields =
            [
              ("inputs", Obs_json.Int (Network.n_inputs net));
              ("outputs", Obs_json.Int (Network.n_outputs net));
              ("switches", Obs_json.Int (Network.size net));
              ("eps", Obs_json.Float eps);
              ( "method",
                Obs_json.String
                  (match method_ with
                  | `Tilt -> "tilt"
                  | `Split -> "split"
                  | `Both -> "both") );
            ]
          in
          let fields =
            match tilt_est with
            | Some e -> fields @ [ ("tilt", Obs_json.Obj (rare_est_json e)) ]
            | None -> fields
          in
          let fields =
            match split_res with
            | Some (sched, e) ->
                fields
                @ [
                    ( "split",
                      Obs_json.Obj
                        (rare_est_json e
                        @ [
                            ( "levels",
                              Obs_json.List
                                (Array.to_list
                                   (Array.map
                                      (fun l -> Obs_json.Float l)
                                      sched.Splitting.levels)) );
                            ( "splits",
                              Obs_json.List
                                (Array.to_list
                                   (Array.map
                                      (fun s -> Obs_json.Int s)
                                      sched.Splitting.splits)) );
                            ( "entry_rate",
                              Obs_json.Float sched.Splitting.entry_rate );
                          ]) );
                  ]
            | None -> fields
          in
          print_endline (Obs_json.to_string (Obs_json.Obj fields))
        else begin
          Format.printf "%a@." Network.pp net;
          Format.printf
            "rare-event failure estimate at eps=%g (superconcentrator \
             probes, jobs=%d):@."
            eps jobs;
          print_rare_header ();
          Option.iter (print_rare_row "tilt") tilt_est;
          (match split_res with
          | Some (sched, e) ->
              print_rare_row "split" e;
              Format.printf "  level schedule (%d levels, entry rate %.3g):@."
                (Array.length sched.Splitting.levels)
                sched.Splitting.entry_rate;
              Array.iteri
                (fun d l ->
                  let s =
                    if d < Array.length sched.Splitting.splits then
                      Printf.sprintf " x%d" sched.Splitting.splits.(d)
                    else ""
                  in
                  Format.printf "    L%d: eps <= %.4e%s@." d l s)
                sched.Splitting.levels
          | None -> ());
          match method_ with
          | `Both ->
              Format.printf
                "  (tilt measures the full event, split its monotone part; \
                 the gap is the O(eps^2) shorted-terminal term)@."
          | _ -> ()
        end)
  in
  let eps =
    let doc =
      "Target per-switch failure probability (open = closed = EPS); the \
       subcommand exists for the paper's EPS = 1e-6 regime."
    in
    Arg.(value & opt float 1e-6 & info [ "eps" ] ~docv:"EPS" ~doc)
  in
  let eps_grid =
    let doc =
      "Tilted-IS curve over $(docv) = LO:HI:STEPS[:log|:lin]: one tilted \
       sample per trial serves every grid point (only the likelihood \
       weights differ).  Only --method tilt supports it."
    in
    Arg.(value & opt (some string) None & info [ "eps-grid" ] ~docv:"GRID" ~doc)
  in
  let method_ =
    let doc =
      "Estimator: $(b,tilt) (cross-entropy-tilted importance sampling, \
       full failure event), $(b,split) (multilevel splitting/RESTART on \
       the monotone sub-event), or $(b,both)."
    in
    Arg.(value & opt string "tilt" & info [ "method" ] ~docv:"METHOD" ~doc)
  in
  let trials =
    trials_arg ~default:10_000
      ~doc:"Independent root trials for the main estimation phase."
  in
  let pilot_trials =
    Arg.(
      value & opt int 1000
      & info [ "pilot-trials" ] ~docv:"T"
          ~doc:"Trials per cross-entropy tuning iteration.")
  in
  let tilt_iters =
    Arg.(
      value & opt int 4
      & info [ "tilt-iters" ] ~docv:"K"
          ~doc:"Cross-entropy tuning iterations.")
  in
  let per_edge =
    Arg.(
      value & flag
      & info [ "per-edge-tilt" ]
          ~doc:
            "Tune one tilt per switch instead of a shared pair (more \
             parameters; needs more pilot trials to stabilize).")
  in
  let particles =
    Arg.(
      value & opt int 256
      & info [ "particles" ] ~docv:"P"
          ~doc:"Pilot population size for the splitting level schedule.")
  in
  let level_p0 =
    Arg.(
      value & opt float 0.2
      & info [ "level-p0" ] ~docv:"Q"
          ~doc:
            "Target conditional success fraction per splitting level (the \
             pilot places each level at this quantile).")
  in
  let mutate =
    Arg.(
      value & opt float 0.2
      & info [ "mutate" ] ~docv:"R"
          ~doc:
            "Per-coordinate resampling probability of the splitting \
             Metropolis move.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the result as one JSON object instead of a table.")
  in
  let doc =
    "Rare-event failure estimation for the paper's eps = 1e-6 regime: \
     cross-entropy-tilted importance sampling and/or multilevel \
     splitting, orders of magnitude fewer trials than plain Monte Carlo \
     at the same relative error."
  in
  Cmd.v (Cmd.info "rare" ~doc)
    Term.(
      const run $ spec_args $ n_arg $ seed_arg $ eps $ eps_grid $ method_
      $ trials $ pilot_trials $ tilt_iters $ per_edge $ particles $ level_p0
      $ mutate $ jobs_arg $ json $ obs_args)

(* ---------- traffic ---------- *)

let parse_holding s =
  match Dist.holding_of_string s with
  | Ok h -> h
  | Error msg -> die "invalid --holding value %S: %s" s msg

(* greedy | rearrange[:BUDGET] | staged | loop — BUDGET caps the
   backtracking search per re-lay attempt (default 10000 states) *)
let parse_policy s =
  match String.split_on_char ':' s with
  | [ "greedy" ] -> Traffic.Route_greedy
  | [ "rearrange" ] -> Traffic.Route_rearrange 10_000
  | [ "rearrange"; b ] -> (
      match int_of_string_opt b with
      | Some k when k >= 1 -> Traffic.Route_rearrange k
      | _ ->
          die "invalid --policy value %S: BUDGET %S must be an integer >= 1" s b)
  | [ "staged" ] -> Traffic.Route_staged
  | [ "loop" ] -> Traffic.Route_loop
  | _ ->
      die
        "invalid --policy value %S: expected greedy, rearrange[:BUDGET], \
         staged or loop"
        s

let traffic_cmd =
  let run family n seed load holding mtbf mttr warmup calls batches policy
      shards trials jobs json obsargs =
    let trials = check_pos "--trials" trials in
    let jobs = check_jobs jobs in
    let calls = check_pos "--calls" calls in
    let batches = check_pos "--batches" batches in
    let shards = check_pos "--shards" shards in
    if warmup < 0 then
      die "invalid --warmup value %d: must be an integer >= 0" warmup;
    if not (load > 0.0 && Float.is_finite load) then
      die "invalid --load value %g: must be a finite offered load > 0" load;
    (match mtbf with
    | Some x when not (x > 0.0) ->
        die "invalid --mtbf value %g: must be > 0 (omit the flag for no failures)" x
    | _ -> ());
    if not (mttr > 0.0) then
      die "invalid --mttr value %g: must be > 0 (use a huge value for \
           permanent failures)" mttr;
    let holding = parse_holding holding in
    let policy = parse_policy policy in
    (* with a single replication the --jobs domains would otherwise sit
       idle, so lease them to the shard drains instead *)
    let shard_jobs = if trials = 1 && shards > 1 then jobs else 1 in
    let config =
      try
        Traffic.config ~load ~holding
          ~mtbf:(Option.value mtbf ~default:infinity)
          ~mttr
          ~stop:(Traffic.Calls { warmup; measured = calls })
          ~batches ~policy ~shards ~shard_jobs ()
      with Invalid_argument msg -> die "%s" msg
    in
    with_obs obsargs @@ fun obs ->
    let built =
      phase obs "build-network" (fun () -> build_network family ~n ~seed)
    in
    let net = built.Topology.net in
    (if shards > 1 then
       let regions = Shard.regions net in
       if shards > regions then
         die
           "invalid --shards value %d: exceeds the %d shardable regions of \
            this topology"
           shards regions);
    let rng = Seeds.traffic seed in
    (* which router engaged after fallback resolution (e.g. --policy loop
       on a non-Benes family reports staged or bfs) *)
    let router = Traffic.router_name config net in
    let s =
      phase obs "estimate" (fun () ->
          Traffic.estimate ~jobs ?trace:obs.trace ~trials ~rng ~config net)
    in
    let b = s.Traffic.blocking in
    Obs_metrics.set_gauge obs.registry "traffic.blocking.mean"
      b.Batch_means.mean;
    Obs_metrics.set_gauge obs.registry "traffic.blocking.ci_low"
      b.Batch_means.ci_low;
    Obs_metrics.set_gauge obs.registry "traffic.blocking.ci_high"
      b.Batch_means.ci_high;
    Obs_metrics.set_gauge obs.registry "traffic.occupancy" s.Traffic.occupancy;
    if json then
      print_endline
        (Obs_json.to_string
           (Obs_json.Obj
              [
                ("inputs", Obs_json.Int (Network.n_inputs net));
                ("outputs", Obs_json.Int (Network.n_outputs net));
                ("switches", Obs_json.Int (Network.size net));
                ("n_requested", Obs_json.Int built.Topology.n_requested);
                ("n_effective", Obs_json.Int built.Topology.n_effective);
                ("shards", Obs_json.Int shards);
                ("router", Obs_json.String router);
                ("load", Obs_json.Float load);
                ("holding", Obs_json.String (Format.asprintf "%a" Dist.pp_holding holding));
                ("replications", Obs_json.Int s.Traffic.replications);
                ("blocking", Obs_json.Float b.Batch_means.mean);
                ("blocking_ci_low", Obs_json.Float b.Batch_means.ci_low);
                ("blocking_ci_high", Obs_json.Float b.Batch_means.ci_high);
                ("batches", Obs_json.Int b.Batch_means.batches);
                ("measured_calls", Obs_json.Int b.Batch_means.count);
                ("occupancy", Obs_json.Float s.Traffic.occupancy);
                ("carried", Obs_json.Float s.Traffic.carried);
                ("offered", Obs_json.Int s.Traffic.t_offered);
                ("served", Obs_json.Int s.Traffic.t_served);
                ("blocked", Obs_json.Int s.Traffic.t_blocked);
                ("blocked_full", Obs_json.Int s.Traffic.t_blocked_full);
                ("dropped", Obs_json.Int s.Traffic.t_dropped);
                ("rerouted", Obs_json.Int s.Traffic.t_rerouted);
                ("failures", Obs_json.Int s.Traffic.t_failures);
                ("repairs", Obs_json.Int s.Traffic.t_repairs);
                ("events", Obs_json.Int s.Traffic.t_events);
                ("sim_time", Obs_json.Float s.Traffic.t_sim_time);
                ("catastrophes", Obs_json.Int s.Traffic.catastrophes);
              ]))
    else begin
      Format.printf "%a@." Network.pp net;
      if built.Topology.n_effective <> built.Topology.n_requested then
        Format.printf "effective n: %d (requested %d)@."
          built.Topology.n_effective built.Topology.n_requested
      else Format.printf "effective n: %d@." built.Topology.n_effective;
      Format.printf
        "offered load %g Erlang, holding %a, %d replication%s x (%d warmup \
         + %d measured calls), jobs=%d%s@."
        load Dist.pp_holding holding s.Traffic.replications
        (if s.Traffic.replications = 1 then "" else "s")
        warmup calls jobs
        (if shards > 1 then
           Printf.sprintf ", shards=%d (shard-jobs=%d)" shards shard_jobs
         else "");
      Format.printf "router: %s@." router;
      Format.printf
        "blocking: %.5f  (95%% CI [%.5f, %.5f], %d batches, %d measured calls)@."
        b.Batch_means.mean b.Batch_means.ci_low b.Batch_means.ci_high
        b.Batch_means.batches b.Batch_means.count;
      Format.printf
        "occupancy (Little's L): %.3f   carried (lambda x W): %.3f@."
        s.Traffic.occupancy s.Traffic.carried;
      Format.printf
        "offered=%d served=%d blocked=%d (system-full=%d) dropped=%d \
         rerouted=%d@."
        s.Traffic.t_offered s.Traffic.t_served s.Traffic.t_blocked
        s.Traffic.t_blocked_full s.Traffic.t_dropped s.Traffic.t_rerouted;
      Format.printf "failures=%d repairs=%d events=%d sim-time=%.1f@."
        s.Traffic.t_failures s.Traffic.t_repairs s.Traffic.t_events
        s.Traffic.t_sim_time;
      if s.Traffic.catastrophes > 0 then
        Format.printf "catastrophes (terminals fused): %d replication%s@."
          s.Traffic.catastrophes
          (if s.Traffic.catastrophes = 1 then "" else "s")
    end
  in
  let load =
    Arg.(value & opt float 1.0
         & info [ "load" ] ~docv:"ERLANGS"
             ~doc:
               "Offered load in Erlangs (arrival rate; holding times have \
                unit mean).")
  in
  let holding =
    Arg.(value & opt string "exp"
         & info [ "holding" ] ~docv:"DIST"
             ~doc:
               "Holding-time distribution: exp (memoryless, mean 1) or \
                pareto:ALPHA (heavy-tailed, ALPHA > 1, rescaled to mean 1).")
  in
  let mtbf =
    Arg.(value & opt (some float) None
         & info [ "mtbf" ] ~docv:"T"
             ~doc:
               "Per-switch mean time between failures (exponential clock, \
                open/closed with equal probability).  Omit for a fault-free \
                run.")
  in
  let mttr =
    Arg.(value & opt float 10.0
         & info [ "mttr" ] ~docv:"T"
             ~doc:"Per-switch mean time to repair (exponential clock).")
  in
  let warmup =
    Arg.(value & opt int 500
         & info [ "warmup" ] ~docv:"CALLS"
             ~doc:
               "Offered calls discarded before the measured window opens \
                (warm-up truncation).")
  in
  let calls =
    Arg.(value & opt int 5000
         & info [ "calls" ] ~docv:"CALLS"
             ~doc:"Offered calls measured per replication.")
  in
  let batches =
    Arg.(value & opt int 10
         & info [ "batches" ] ~docv:"B"
             ~doc:
               "Batch-means batches per replication (Student-t interval over \
                the pooled batch means).")
  in
  let policy =
    Arg.(value & opt string "greedy"
         & info [ "policy" ] ~docv:"P"
             ~doc:
               "Routing policy: greedy (strictly-nonblocking operation), \
                rearrange[:BUDGET] (re-lay all live calls with backtracking \
                when the greedy probe blocks; default budget 10000), staged \
                (level-bounded bidirectional BFS on staged families) or \
                loop (Benes block-tree descent with staged fallback).  \
                staged/loop keep greedy's accept/block decisions but route \
                each call in O(depth) instead of O(switches); the table and \
                JSON report which router actually engaged.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"K"
             ~doc:
               "Event shards for million-switch networks (default 1 = the \
                monolithic engine).  Open-switch failure/repair events are \
                partitioned across $(docv) contiguous stage-level blocks, \
                each drained on its own heap up to the next call event.  \
                Must not exceed the topology's shardable regions.  With \
                --trials 1 the --jobs domains drain shards concurrently; \
                results are deterministic at every job count either way.")
  in
  let trials =
    trials_arg ~default:5 ~doc:"Independent replications (one substream each)."
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the summary as one JSON object instead of a table.")
  in
  let doc =
    "Continuous-time call traffic through the network: Poisson arrivals, \
     unit-mean holding times, optional switch failure/repair clocks; \
     reports steady-state blocking with batch-means confidence intervals \
     and a Little's-law occupancy cross-check."
  in
  Cmd.v (Cmd.info "traffic" ~doc)
    Term.(
      const run $ spec_args $ n_arg $ seed_arg $ load $ holding $ mtbf
      $ mttr $ warmup $ calls $ batches $ policy $ shards $ trials
      $ jobs_arg $ json $ obs_args)

(* ---------- serve ---------- *)

(* The daemon exits through with_obs's finally (sinks flushed) and only
   then converts the stop reason into a process exit code, so `exit`
   never bypasses the cleanup. *)
let serve_cmd =
  let run family n seed policy holding mtbf mttr max_load queue replay calls
      socket shards speed jobs obsargs =
    let shards = check_pos "--shards" shards in
    let _jobs = check_jobs jobs in
    if calls < 0 then
      die "invalid --calls value %d: must be >= 0 (0 = unbounded)" calls;
    (match mtbf with
    | Some x when not (x > 0.0) ->
        die "invalid --mtbf value %g: must be > 0 (omit the flag for no \
             failures)" x
    | _ -> ());
    if not (mttr > 0.0) then
      die "invalid --mttr value %g: must be > 0" mttr;
    if not (speed > 0.0 && Float.is_finite speed) then
      die "invalid --speed value %g: must be a finite factor > 0" speed;
    (match max_load with
    | Some l when not (l > 0.0 && l <= 1.0) ->
        die "invalid --max-load value %g: must be an occupancy in (0, 1]" l
    | _ -> ());
    let queue = check_pos "--queue" queue in
    let holding = parse_holding holding in
    let engine_kind =
      match parse_policy policy with
      | Traffic.Route_greedy -> `Bfs
      | Traffic.Route_staged -> `Staged
      | Traffic.Route_loop -> `Loop
      | Traffic.Route_rearrange _ ->
          die
            "invalid --policy value %S: serve routes one request at a time \
             (greedy, staged or loop)"
            policy
    in
    (match (replay, socket) with
    | Some _, Some _ -> die "--replay and --socket cannot both be given"
    | _ -> ());
    let max_calls = if calls = 0 then max_int else calls in
    let code =
      with_obs obsargs @@ fun obs ->
      let built =
        phase obs "build-network" (fun () -> build_network family ~n ~seed)
      in
      let net = built.Topology.net in
      (if shards > 1 then
         let regions = Shard.regions net in
         if shards > regions then
           die
             "invalid --shards value %d: exceeds the %d shardable regions \
              of this topology"
             shards regions);
      let rng = Seeds.serve seed in
      (* responses go to the current sink: stdout, or the connected
         client in --socket mode *)
      let sink = ref stdout in
      let emit r =
        output_string !sink (Ftcsn_serve.Proto.response_to_string r);
        output_char !sink '\n'
      in
      let engine =
        try
          Serve_engine.create ~engine:engine_kind ~holding
            ~mtbf:(Option.value mtbf ~default:infinity)
            ~mttr ~shards ?trace:obs.trace ~emit ~rng net
        with Invalid_argument msg -> die "%s" msg
      in
      let admission =
        Admission.combine
          ((match max_load with
           | Some l -> [ Admission.max_load l ]
           | None -> [])
          @ [ Admission.queue_limit queue ])
      in
      (* replace the raising handlers: the reactor polls this flag, so
         it can drain, print the summary and still flush sinks *)
      let stop_sig = ref 0 in
      let arm s =
        try Sys.set_signal s (Sys.Signal_handle (fun _ -> stop_sig := s))
        with Invalid_argument _ | Sys_error _ -> ()
      in
      arm Sys.sigint;
      arm Sys.sigterm;
      let stop () = !stop_sig <> 0 in
      Printf.eprintf
        "serve: %s, engine %s, admission %s, %s%s\n%!"
        net.Network.name
        (Serve_engine.engine_label engine)
        (Admission.name admission)
        (match replay with
        | Some f -> Printf.sprintf "replay from %s" f
        | None -> (
            match socket with
            | Some p -> Printf.sprintf "listening on %s" p
            | None -> "live on stdin"))
        (match mtbf with
        | Some t -> Printf.sprintf ", failures on (mtbf %g, mttr %g)" t mttr
        | None -> ", failures off");
      let reason =
        match replay with
        | Some file ->
            let ic =
              if file = "-" then stdin
              else
                try open_in file
                with Sys_error msg ->
                  die "cannot open --replay file %S: %s" file msg
            in
            Fun.protect
              ~finally:(fun () -> if file <> "-" then close_in_noerr ic)
              (fun () ->
                Serve_loop.replay ~engine ~admission ~emit ~max_calls ~stop
                  ic)
        | None -> (
            match socket with
            | None ->
                Serve_loop.live ~engine ~admission ~emit ~max_calls ~stop
                  ~speed
                  ~flush:(fun () -> flush stdout)
                  Unix.stdin
            | Some path ->
                (* refuse to clobber anything that is not a stale socket *)
                (match Unix.stat path with
                | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
                | _ -> die "--socket path %S exists and is not a socket" path
                | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
                let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                Unix.bind srv (Unix.ADDR_UNIX path);
                Unix.listen srv 8;
                let reason = ref Serve_loop.Eof in
                let finished = ref false in
                Fun.protect
                  ~finally:(fun () ->
                    Unix.close srv;
                    try Unix.unlink path with Unix.Unix_error _ -> ())
                  (fun () ->
                    while not !finished do
                      if stop () then begin
                        reason := Serve_loop.Interrupted;
                        finished := true
                      end
                      else
                        let readable, _, _ =
                          try Unix.select [ srv ] [] [] 0.2
                          with Unix.Unix_error (Unix.EINTR, _, _) ->
                            ([], [], [])
                        in
                        if readable <> [] then begin
                          let client, _ = Unix.accept srv in
                          let oc = Unix.out_channel_of_descr client in
                          sink := oc;
                          let r =
                            Serve_loop.live ~engine ~admission ~emit
                              ~max_calls ~stop ~speed
                              ~flush:(fun () -> flush oc)
                              client
                          in
                          sink := stdout;
                          (try flush oc with Sys_error _ -> ());
                          (try Unix.close client
                           with Unix.Unix_error _ -> ());
                          match r with
                          | Serve_loop.Eof -> () (* next client *)
                          | r ->
                              reason := r;
                              finished := true
                        end
                    done;
                    !reason))
      in
      flush stdout;
      Obs_metrics.set_gauge obs.registry "serve.decisions"
        (float_of_int (Serve_engine.decisions engine));
      Obs_metrics.set_gauge obs.registry "serve.sim_time"
        (Serve_engine.now engine);
      (* the final summary goes to stderr: stdout carries only the
         response stream *)
      Printf.eprintf "%s%s\n%!"
        (Serve_engine.summary engine)
        (match reason with
        | Serve_loop.Eof -> ""
        | Serve_loop.Limit -> " [stopped: --calls bound]"
        | Serve_loop.Interrupted -> " [stopped: signal]");
      match reason with
      | Serve_loop.Interrupted -> signal_exit_code !stop_sig
      | _ -> 0
    in
    if code <> 0 then exit code
  in
  let policy =
    Arg.(
      value & opt string "greedy"
      & info [ "policy" ] ~docv:"P"
          ~doc:
            "Routing engine for live decisions: greedy (CSR-order BFS), \
             staged (level-bounded bidirectional BFS) or loop (Benes \
             block-tree descent).  All three agree on accept vs block; \
             rearrange is not available because the daemon decides one \
             request at a time.")
  in
  let holding =
    Arg.(
      value & opt string "exp"
      & info [ "holding" ] ~docv:"DIST"
          ~doc:
            "Holding-time distribution for calls that do not carry an \
             explicit \"hold\" field: exp or pareto:ALPHA (unit mean).")
  in
  let mtbf =
    Arg.(
      value & opt (some float) None
      & info [ "mtbf" ] ~docv:"T"
          ~doc:
            "Per-switch mean time between failures in virtual time \
             (exponential clock, open/closed with equal probability).  \
             Omit for a fault-free fabric.")
  in
  let mttr =
    Arg.(
      value & opt float 10.0
      & info [ "mttr" ] ~docv:"T"
          ~doc:"Per-switch mean time to repair (exponential clock).")
  in
  let max_load =
    Arg.(
      value & opt (some float) None
      & info [ "max-load" ] ~docv:"L"
          ~doc:
            "Admission control: shed call requests with an overload reply \
             once fabric occupancy (live calls / capacity) reaches $(docv) \
             in (0, 1].  Omit to admit up to the routing layer's verdict.")
  in
  let queue =
    Arg.(
      value & opt int 1024
      & info [ "queue" ] ~docv:"K"
          ~doc:
            "Backpressure bound: at most $(docv) requests pending in the \
             reactor before new call requests are shed with an overload \
             reply instead of buffered.")
  in
  let replay =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a scripted request file (one line-JSON request per \
             line; - for stdin) as fast as possible, driving virtual time \
             from the requests' \"at\" fields only.  Deterministic: the \
             same file, seed and options produce a byte-identical response \
             stream at every --shards and --jobs setting.")
  in
  let calls =
    Arg.(
      value & opt int 0
      & info [ "calls" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) call decisions (accept + block + \
             overload).  0 = unbounded.")
  in
  let socket =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket instead of stdin; clients are \
             served one at a time against the same persistent fabric.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Partition the failure/repair clocks across $(docv) \
             stage-level event heaps (the scale layer's layout).  Every \
             switch draws its clock history from its own PRNG substream, \
             so the response stream is byte-identical at every $(docv).")
  in
  let speed =
    Arg.(
      value & opt float 1.0
      & info [ "speed" ] ~docv:"X"
          ~doc:
            "Wall-clock coupling for live mode: $(docv) virtual time units \
             elapse per wall second (ignored under --replay).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"J"
          ~doc:
            "Accepted for interface symmetry with the batch subcommands; \
             the reactor is single-threaded and the response stream is \
             independent of $(docv).")
  in
  let doc =
    "Live switch-controller daemon over the DES fabric: line-JSON \
     connection requests in (stdin, --replay FILE, or a Unix socket), one \
     accept/block/overload decision line out per request, with per-switch \
     failure/repair churn firing between requests and asynchronous \
     rerouted/dropped/released notifications as calls are hit.  A \
     metrics request returns a live JSON snapshot; --trace emits one \
     span per decision."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ spec_args $ n_arg $ seed_arg $ policy $ holding $ mtbf
      $ mttr $ max_load $ queue $ replay $ calls $ socket $ shards $ speed
      $ jobs $ obs_args)

(* ---------- degrade ---------- *)

let degrade_cmd =
  let run family n seed hazard arrival ticks trials jobs obsargs =
    let trials = check_pos "--trials" trials in
    let jobs = check_jobs jobs in
    let ticks = check_pos "--ticks" ticks in
    if not (arrival >= 0.0 && arrival <= 1.0) then
      die "invalid --arrival value %g: must be a probability in [0, 1]" arrival;
    with_obs obsargs @@ fun obs ->
    let net = phase obs "build-network" (fun () -> build_net family ~n ~seed) in
    let rng = Seeds.degrade seed in
    if trials <= 1 then begin
      let stats =
        phase obs "session" (fun () ->
            Ftcsn.Ft_session.run ~rng ~hazard ~arrival ~ticks net)
      in
      Format.printf "%a@." Network.pp net;
      Format.printf
        "ticks=%d placed=%d blocked=%d dropped=%d rerouted=%d failures=%d@."
        stats.Ftcsn.Ft_session.ticks stats.Ftcsn.Ft_session.placed
        stats.Ftcsn.Ft_session.blocked stats.Ftcsn.Ft_session.dropped
        stats.Ftcsn.Ft_session.rerouted stats.Ftcsn.Ft_session.failed_switches;
      match stats.Ftcsn.Ft_session.catastrophe_at with
      | Some t -> Format.printf "catastrophe (terminals fused) at tick %d@." t
      | None -> Format.printf "no catastrophe within the horizon@."
    end
    else begin
      let mttd =
        phase obs "estimate" (fun () ->
            Ftcsn.Ft_session.mean_time_to_degradation ~jobs ?trace:obs.trace
              ~rng ~hazard ~trials ~max_ticks:ticks net)
      in
      Obs_metrics.set_gauge obs.registry "degrade.mttd_ticks" mttd;
      Format.printf "%a@." Network.pp net;
      Format.printf
        "mean time to degradation: %.0f ticks (%d trials, horizon %d, jobs=%d)@."
        mttd trials ticks jobs
    end
  in
  let hazard =
    Arg.(value & opt float 1e-5
         & info [ "hazard" ] ~docv:"H" ~doc:"Per-switch failure probability per tick.")
  in
  let arrival =
    Arg.(value & opt float 0.6
         & info [ "arrival" ] ~docv:"A"
             ~doc:
               "Per-tick call arrival probability in [0, 1] (single-run \
                mode; the multi-trial estimator always saturates).")
  in
  let ticks =
    Arg.(value & opt int 2000 & info [ "ticks" ] ~docv:"T" ~doc:"Simulation horizon.")
  in
  let trials =
    trials_arg ~default:1
      ~doc:
        "With T > 1, report mean time to degradation under saturating \
         traffic over T independent sessions instead of one traced run."
  in
  let doc = "Age the network under live traffic and report degradation." in
  Cmd.v (Cmd.info "degrade" ~doc)
    Term.(
      const run $ spec_args $ n_arg $ seed_arg $ hazard $ arrival $ ticks
      $ trials $ jobs_arg $ obs_args)

(* ---------- critical ---------- *)

let critical_cmd =
  let run family n seed eps sample trials jobs obsargs =
    let trials = check_pos "--trials" trials in
    let jobs = check_jobs jobs in
    let sample = check_pos "--sample" sample in
    with_obs obsargs @@ fun obs ->
    let net = phase obs "build-network" (fun () -> build_net family ~n ~seed) in
    let rng = Seeds.critical seed in
    let g = net.Network.graph in
    (* event: the stripped survivor fails the class-fair probes; runs on
       a per-worker Fault_strip workspace so the 3·sample evaluations per
       trial stay allocation-free *)
    let init () = Ftcsn.Fault_strip.create_ws net in
    let event ws pattern =
      Ftcsn.Fault_strip.strip_into ws pattern;
      (not (Ftcsn.Fault_strip.ws_healthy ws))
      || Ftcsn.Fault_strip.ws_isolated_inputs ws <> []
    in
    let ranked =
      phase obs "estimate" (fun () ->
          Ftcsn_reliability.Importance.rank ~jobs ?trace:obs.trace ~trials
            ~rng ~graph:g ~eps ~init ~event ~sample ())
    in
    Format.printf "%a@." Network.pp net;
    Format.printf "most critical sampled switches (Birnbaum, %d trials):@."
      trials;
    Array.iteri
      (fun i e ->
        if i < 10 then
          let src, dst =
            Ftcsn_graph.Digraph.edge_endpoints g e.Ftcsn_reliability.Importance.switch
          in
          Format.printf "  switch %5d (%d -> %d): open %+.4f  close %+.4f@."
            e.Ftcsn_reliability.Importance.switch src dst
            e.Ftcsn_reliability.Importance.open_importance
            e.Ftcsn_reliability.Importance.close_importance)
      ranked
  in
  let sample =
    Arg.(value & opt int 24 & info [ "sample" ] ~docv:"S"
           ~doc:"Number of switches to sample for ranking.")
  in
  let trials = trials_arg ~default:300 ~doc:"Trials per switch." in
  let doc = "Rank switches by Birnbaum criticality for the survival event." in
  Cmd.v (Cmd.info "critical" ~doc)
    Term.(
      const run $ spec_args $ n_arg $ seed_arg $ eps_arg $ sample $ trials
      $ jobs_arg $ obs_args)

(* ---------- render ---------- *)

let render_cmd =
  let run family n seed kind =
    match kind with
    | `Grid ->
        let s = Ftcsn.Directed_grid.make ~rows:(max 1 n) ~stages:8 in
        print_string (Ftcsn.Directed_grid.render s)
    | `Census ->
        let net = build_net family ~n ~seed in
        print_string
          (Ftcsn_graph.Render.ascii_stages net.Network.graph
             ~inputs:(Array.to_list net.Network.inputs))
    | `Dot ->
        let net = build_net family ~n ~seed in
        print_string (Ftcsn_graph.Render.to_dot net.Network.graph)
  in
  let kind =
    Arg.(
      value
      & opt (enum [ ("grid", `Grid); ("census", `Census); ("dot", `Dot) ]) `Census
      & info [ "kind" ] ~docv:"KIND" ~doc:"grid | census | dot.")
  in
  let doc = "ASCII/DOT renderings." in
  Cmd.v (Cmd.info "render" ~doc)
    Term.(const run $ spec_args $ n_arg $ seed_arg $ kind)

(* ---------- tournament ---------- *)

let tournament_cmd =
  let run n seed eps_grid trials traffic_trials calls warmup load mtbf mttr
      jobs json obsargs =
    let n = check_pos "-n" n in
    let trials = check_pos "--trials" trials in
    let traffic_trials = check_pos "--traffic-trials" traffic_trials in
    let calls = check_pos "--calls" calls in
    if warmup < 0 then
      die "invalid --warmup value %d: must be an integer >= 0" warmup;
    let jobs = check_jobs jobs in
    let grid =
      match parse_eps_grid (Some eps_grid) with
      | Some g -> g
      | None -> assert false
    in
    (match load with
    | Some l when not (l > 0.0 && Float.is_finite l) ->
        die "invalid --load value %g: must be a finite offered load > 0" l
    | _ -> ());
    if not (mtbf > 0.0) then
      die "invalid --mtbf value %g: must be > 0 (use a huge value for a \
           fault-free race)" mtbf;
    if not (mttr > 0.0) then
      die "invalid --mttr value %g: must be > 0" mttr;
    with_obs obsargs @@ fun obs ->
    let note fam =
      if Option.is_some obs.progress then
        Printf.eprintf "tournament: sweeping %s\n%!" fam
    in
    let outcome =
      phase obs "tournament" (fun () ->
          Ftcsn.Tournament.run ~jobs ?trace:obs.trace ?progress:obs.progress
            ~note ?load ~mtbf ~mttr ~trials ~eps:grid ~traffic_trials ~calls
            ~warmup ~n ~seed ())
    in
    if json then
      print_endline (Obs_json.to_string (Ftcsn.Tournament.to_json outcome))
    else begin
      Ftcsn_util.Table.print (Ftcsn.Tournament.to_table outcome);
      Format.printf
        "front: * = Pareto-optimal on (edges/terminal, survival at \
         eps=%g); traffic: load %s Erlangs, mtbf %g, mttr %g@."
        grid.(Array.length grid - 1)
        (match load with Some l -> Printf.sprintf "%g" l | None -> "n/4")
        mtbf mttr;
      List.iter
        (fun (fam, why) -> Format.printf "skipped %s: %s@." fam why)
        outcome.Ftcsn.Tournament.skipped
    end
  in
  let eps_grid =
    let doc =
      "ε grid LO:HI:STEPS[:log|:lin] for the coupled survival sweep; the \
       Pareto front is computed at the harshest (last) grid point."
    in
    Arg.(
      value
      & opt string "0.001:0.05:4:log"
      & info [ "eps-grid" ] ~docv:"GRID" ~doc)
  in
  let trials =
    trials_arg ~default:150
      ~doc:"Coupled survival trials per family (shared by every grid point)."
  in
  let traffic_trials =
    Arg.(
      value & opt int 3
      & info [ "traffic-trials" ] ~docv:"T"
          ~doc:"Traffic replications per family (one substream each).")
  in
  let calls =
    Arg.(
      value & opt int 1000
      & info [ "calls" ] ~docv:"CALLS"
          ~doc:"Offered calls measured per traffic replication.")
  in
  let warmup =
    Arg.(
      value & opt int 100
      & info [ "warmup" ] ~docv:"CALLS"
          ~doc:"Offered calls discarded before the measured window opens.")
  in
  let load =
    Arg.(
      value & opt (some float) None
      & info [ "load" ] ~docv:"ERLANGS"
          ~doc:
            "Offered load in Erlangs (default: effective n / 4, scaling \
             the workload with each family's terminal count).")
  in
  let mtbf =
    Arg.(
      value & opt float 500.0
      & info [ "mtbf" ] ~docv:"T"
          ~doc:
            "Per-switch mean time between failures during the traffic \
             phase (the tournament races networks under fire by default).")
  in
  let mttr =
    Arg.(
      value & opt float 10.0
      & info [ "mttr" ] ~docv:"T" ~doc:"Per-switch mean time to repair.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the full result (per-family curves) as one JSON object.")
  in
  let doc =
    "Race every registered topology family through the coupled survival \
     sweep and the call-traffic engine at a common n; report fault \
     tolerance against edges per terminal with a Pareto-front marker."
  in
  Cmd.v (Cmd.info "tournament" ~doc)
    Term.(
      const run $ n_arg $ seed_arg $ eps_grid $ trials $ traffic_trials
      $ calls $ warmup $ load $ mtbf $ mttr $ jobs_arg $ json $ obs_args)

let () =
  (* the paper's family lives in lib/core, which the networks registry
     cannot depend on; install it before any spec is parsed *)
  Ftcsn.Ft_topology.install ();
  let doc = "fault-tolerant circuit-switching networks (Pippenger & Lin)" in
  let info = Cmd.info "ftnet" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            build_cmd; topologies_cmd; faults_cmd; route_cmd; check_cmd;
            survive_cmd; curve_cmd; rare_cmd; traffic_cmd; serve_cmd;
            tournament_cmd; degrade_cmd;
            critical_cmd; render_cmd;
          ]))
