(** (l, w)-directed grids (paper, §6 and Fig. 4).

    A directed graph with w stages and l vertices per stage; an edge runs
    from (i, j) to (i′, j+1) when i′ = i or i′ = i + 1 (mod l, closing the
    hammock cylinder).  Grids interface the terminals to the recursive
    middle network: a column cut has l vertices, so isolating a terminal
    requires ~l simultaneous open failures (Lemma 3), at a cost of only
    l·w switches per terminal. *)

type t = {
  rows : int;
  stages : int;
  columns : int array array;  (** [columns.(j)] = vertex ids of stage j *)
}

val build :
  builder:Ftcsn_graph.Digraph.Builder.t ->
  rows:int ->
  stages:int ->
  ?first_column:int array ->
  ?last_column:int array ->
  unit ->
  t
(** Emit grid vertices/edges into [builder]; optionally reuse existing
    vertices as the first or last column (for splicing into network 𝒩).
    @raise Invalid_argument on bad dimensions or column arity. *)

type standalone = {
  grid : t;
  graph : Ftcsn_graph.Digraph.t;
}

val make : rows:int -> stages:int -> standalone

val vertex_at : t -> row:int -> col:int -> int

val edge_count : rows:int -> stages:int -> int
(** 2·l·(w−1) for l ≥ 2, (w−1) for l = 1. *)

val render : standalone -> string
(** ASCII rendering in the style of the paper's Fig. 4. *)
