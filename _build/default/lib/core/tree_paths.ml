module Rng = Ftcsn_prng.Rng

type t = {
  n : int;
  adj : int array array;
}

let of_edges ~n edges =
  let lists = Array.make n [] in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n || a = b then
        invalid_arg "Tree_paths.of_edges: bad edge";
      let key = (min a b, max a b) in
      if Hashtbl.mem seen key then invalid_arg "Tree_paths.of_edges: duplicate";
      Hashtbl.add seen key ();
      lists.(a) <- b :: lists.(a);
      lists.(b) <- a :: lists.(b))
    edges;
  { n; adj = Array.map Array.of_list lists }

let degree t v = Array.length t.adj.(v)

let leaves t =
  let acc = ref [] in
  for v = t.n - 1 downto 0 do
    if degree t v = 1 then acc := v :: !acc
  done;
  !acc

let edge_total t = Array.fold_left (fun acc row -> acc + Array.length row) 0 t.adj / 2

let is_forest t =
  (* acyclic iff every component has edges = vertices - 1; equivalently a
     DFS never meets a visited vertex other than its parent *)
  let visited = Array.make t.n false in
  let ok = ref true in
  for root = 0 to t.n - 1 do
    if not visited.(root) then begin
      let stack = Stack.create () in
      Stack.push (root, -1) stack;
      visited.(root) <- true;
      while not (Stack.is_empty stack) do
        let v, parent = Stack.pop stack in
        let parent_seen = ref false in
        Array.iter
          (fun w ->
            if w = parent && not !parent_seen then parent_seen := true
            else if visited.(w) then ok := false
            else begin
              visited.(w) <- true;
              Stack.push (w, v) stack
            end)
          t.adj.(v)
      done
    end
  done;
  !ok && edge_total t <= t.n

let internal_degrees_ok t =
  let ok = ref true in
  for v = 0 to t.n - 1 do
    let d = degree t v in
    if d = 2 then ok := false
  done;
  !ok

let contract_stretches t =
  (* Keep vertices of degree <> 2.  In a forest, every maximal chain of
     degree-2 vertices joins two distinct kept vertices; following each
     chain from both ends would emit it twice, so we emit only from the
     smaller-id kept endpoint. *)
  let keep v = degree t v <> 2 in
  let edges = ref [] in
  for v = 0 to t.n - 1 do
    if keep v then
      Array.iter
        (fun w0 ->
          if keep w0 then begin
            if v < w0 then edges := (v, w0) :: !edges
          end
          else begin
            let rec follow prev cur =
              if keep cur then cur
              else
                let next =
                  if t.adj.(cur).(0) = prev then t.adj.(cur).(1)
                  else t.adj.(cur).(0)
                in
                follow cur next
            in
            let other = follow v w0 in
            if v < other then edges := (v, other) :: !edges
          end)
        t.adj.(v)
  done;
  let lists = Array.make t.n [] in
  List.iter
    (fun (a, b) ->
      lists.(a) <- b :: lists.(a);
      lists.(b) <- a :: lists.(b))
    !edges;
  { n = t.n; adj = Array.map Array.of_list lists }

(* BFS from [src] over edges not in [used], up to depth [max_len]; stop at
   the first other leaf and return the path. *)
let find_partner t ~used ~is_leaf ~max_len src =
  let dist = Hashtbl.create 16 in
  let parent = Hashtbl.create 16 in
  Hashtbl.add dist src 0;
  let queue = Queue.create () in
  Queue.add src queue;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let d = Hashtbl.find dist v in
    if d < max_len then
      Array.iter
        (fun w ->
          if !found = None && not (Hashtbl.mem dist w) then begin
            let key = (min v w, max v w) in
            if not (Hashtbl.mem used key) then begin
              Hashtbl.add dist w (d + 1);
              Hashtbl.add parent w v;
              if is_leaf w then found := Some w else Queue.add w queue
            end
          end)
        t.adj.(v)
  done;
  match !found with
  | None -> None
  | Some w ->
      let rec walk v acc =
        if v = src then v :: acc else walk (Hashtbl.find parent v) (v :: acc)
      in
      Some (walk w [])

let short_leaf_paths ?(max_len = 3) t =
  let used = Hashtbl.create 64 in
  let taken = Array.make t.n false in
  let is_leaf w = degree t w = 1 && not taken.(w) in
  let paths = ref [] in
  List.iter
    (fun src ->
      if not taken.(src) then
        match find_partner t ~used ~is_leaf:(fun w -> w <> src && is_leaf w) ~max_len src with
        | None -> ()
        | Some path ->
            let rec mark = function
              | a :: (b :: _ as rest) ->
                  Hashtbl.add used (min a b, max a b) ();
                  mark rest
              | _ -> ()
            in
            mark path;
            taken.(src) <- true;
            (match List.rev path with w :: _ -> taken.(w) <- true | [] -> ());
            paths := path :: !paths)
    (leaves t);
  List.rev !paths

let lemma1_lower_bound ~leaves = (leaves + 41) / 42

let random_internal3_tree ~rng ~leaves:l =
  if l < 3 then invalid_arg "Tree_paths.random_internal3_tree: need >= 3 leaves";
  (* start: one internal node with 3 leaves; each split turns a leaf into
     an internal node with three children... no: splitting a leaf into an
     internal node with two fresh leaves keeps its degree at 3 (old edge +
     two children) and adds one leaf net.  Start with 3 leaves, split
     l - 3 times. *)
  let edges = ref [] in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let centre = fresh () in
  let leaf_list = ref [] in
  for _ = 1 to 3 do
    let v = fresh () in
    edges := (centre, v) :: !edges;
    leaf_list := v :: !leaf_list
  done;
  let leaf_arr = ref (Array.of_list !leaf_list) in
  for _ = 1 to l - 3 do
    let arr = !leaf_arr in
    let idx = Rng.int rng (Array.length arr) in
    let v = arr.(idx) in
    let a = fresh () and b = fresh () in
    edges := (v, a) :: (v, b) :: !edges;
    (* v stops being a leaf; a and b join *)
    let arr' = Array.copy arr in
    arr'.(idx) <- a;
    leaf_arr := Array.append arr' [| b |]
  done;
  of_edges ~n:!next !edges

let fig1_bad_leaf () =
  (* bad leaf 0 — a — b with side branches whose leaves sit at distance 4 *)
  let edges = ref [] in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let bad = fresh () in
  let a = fresh () in
  edges := (bad, a) :: !edges;
  (* a has two more subtrees, each a chain of two internal nodes ending in
     a cherry so every leaf is >= 4 from [bad] and internal degrees >= 3 *)
  let attach_far_subtree root =
    let x = fresh () in
    edges := (root, x) :: !edges;
    let y = fresh () in
    edges := (x, y) :: !edges;
    let l1 = fresh () and l2 = fresh () in
    edges := (y, l1) :: (y, l2) :: !edges;
    (* x needs degree 3: second branch, also deep *)
    let y' = fresh () in
    edges := (x, y') :: !edges;
    let l3 = fresh () and l4 = fresh () in
    edges := (y', l3) :: (y', l4) :: !edges
  in
  attach_far_subtree a;
  attach_far_subtree a;
  (of_edges ~n:!next !edges, bad)

let fig2_crowded_internal () =
  (* an internal node V with three branches, each ending in structure that
     places bad leaves at distance <= 3 from V *)
  let tree, bad = fig1_bad_leaf () in
  ignore bad;
  (* node 1 ("a") collects payments in the fig1 gadget; reuse it *)
  (tree, 1)

let fig3_path_with_unlucky () =
  (* central path leaf0 - c1 - c2 - leaf1 of length 3, with cherries off
     c1 and c2 providing four leaves within distance 2 of the path *)
  let edges = ref [] in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let l0 = fresh () in
  let c1 = fresh () in
  let c2 = fresh () in
  let l1 = fresh () in
  edges := (l0, c1) :: (c1, c2) :: (c2, l1) :: !edges;
  let cherry root =
    let m = fresh () in
    edges := (root, m) :: !edges;
    let a = fresh () and b = fresh () in
    edges := (m, a) :: (m, b) :: !edges
  in
  cherry c1;
  cherry c2;
  (of_edges ~n:!next !edges, [ l0; c1; c2; l1 ])

let nearest_leaf_distance t leaf =
  let dist = Array.make t.n (-1) in
  dist.(leaf) <- 0;
  let queue = Queue.create () in
  Queue.add leaf queue;
  let best = ref max_int in
  while !best = max_int && not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun w ->
        if dist.(w) = -1 then begin
          dist.(w) <- dist.(v) + 1;
          if degree t w = 1 then best := min !best dist.(w)
          else Queue.add w queue
        end)
      t.adj.(v)
  done;
  !best
