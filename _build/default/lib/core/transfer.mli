(** The §3 transfer arguments, executable.

    The paper reduces all (ε, δ) questions to a single ε by two
    observations:
    + {e ε-invariance}: substituting an (ε₂, ε₁)-1-network for every
      switch of an (ε₁, δ)-network yields an (ε₂, δ)-network, at constant
      factors in size and depth (Proposition 1 supplies the gadget);
    + {e δ-invariance}: shrinking ε shrinks every term of the failure
      polynomial, so an (ε, δ₂)-network is an (εδ₁/δ₂, δ₁)-network.

    This module packages the first as a network transformer and exposes
    the accounting of both, so experiments can check the claims on real
    instances (see the [logical_pattern] round-trip in the tests). *)

type t = {
  network : Ftcsn_networks.Network.t;  (** the hardened network *)
  substitution : Ftcsn_reliability.Substitution.t;
  gadget_spec : Ftcsn_reliability.Sp_network.spec;
  size_factor : int;  (** gadget switches per original switch *)
  depth_factor : int;
}

val harden :
  eps:float -> eps':float -> Ftcsn_networks.Network.t -> t
(** [harden ~eps ~eps' net] replaces every switch of [net] with a
    Proposition-1 gadget whose open and short probabilities at component
    failure rate [eps] are both below [eps'].  The hardened network
    tolerates component rate [eps] as well as [net] tolerates switch rate
    [eps'] (up to the union bound across switches).
    @raise Invalid_argument if [eps] is outside (0, 1/4). *)

val logical_pattern :
  t -> Ftcsn_reliability.Fault.pattern -> Ftcsn_reliability.Fault.pattern
(** Collapse a physical pattern on the hardened network to the induced
    logical pattern on the original network. *)

val logical_failure_rates :
  t -> eps:float -> float * float
(** Exact (open, short) failure probabilities of one logical switch at
    physical component rate ε₁ = ε₂ = [eps] (series-parallel recurrence,
    no sampling). *)

val delta_shift : eps:float -> delta_from:float -> delta_to:float -> float
(** The δ-invariance bookkeeping: an (ε, δ_from)-network is also a
    (ε·δ_to/δ_from, δ_to)-network; returns that shrunken ε
    (paper, §3, for δ_to < δ_from). *)
