(** Edge-disjoint short leaf-to-leaf paths in trees (paper, Lemma 1,
    Corollary 1, Figures 1–3).

    Lemma 1: a tree with l leaves whose internal nodes all have degree ≥ 3
    contains at least l/42 edge-disjoint paths, each joining two leaves and
    each of length ≤ 3 (Lin's remark improves 42 to 4).  The lemma powers
    the depth lower bound: such path families turn into closed-failure
    shorting opportunities between network inputs (Lemma 2). *)

type t = {
  n : int;
  adj : int array array;  (** undirected adjacency *)
}

val of_edges : n:int -> (int * int) list -> t
(** Undirected graph from an edge list; duplicate edges rejected. *)

val degree : t -> int -> int

val leaves : t -> int list
(** Vertices of degree 1. *)

val is_forest : t -> bool

val internal_degrees_ok : t -> bool
(** Every non-leaf, non-isolated vertex has degree ≥ 3 (Lemma 1's
    hypothesis). *)

val contract_stretches : t -> t
(** Replace every maximal chain of degree-2 vertices by a single edge
    (the Lemma 2 reduction); vertex count unchanged, chain interiors
    become isolated. *)

val short_leaf_paths : ?max_len:int -> t -> int list list
(** A maximal family of edge-disjoint leaf-to-leaf paths of length ≤
    [max_len] (default 3), each given as its vertex list.  Maximality
    follows from greedy extraction: once a leaf finds no partner it never
    will, since the free edge set only shrinks. *)

val lemma1_lower_bound : leaves:int -> int
(** ⌈l/42⌉ — the guaranteed path count. *)

val random_internal3_tree : rng:Ftcsn_prng.Rng.t -> leaves:int -> t
(** A random tree with the given number of leaves in which every internal
    node has degree exactly 3 (grown by repeatedly splitting a random
    leaf into an internal node with two fresh leaves). *)

(** Witness gadgets reproducing the paper's proof figures. *)

val fig1_bad_leaf : unit -> t * int
(** A tree containing a {e bad} leaf (no other leaf within distance 3);
    returns the tree and that leaf. *)

val fig2_crowded_internal : unit -> t * int
(** A tree whose returned internal node is within distance 3 of the
    maximum number (six) of bad-leaf dollar payments. *)

val fig3_path_with_unlucky : unit -> t * int list
(** A tree with a central short leaf path such that four further leaves
    ({e unlucky} ones) lie within distance 2 of it; returns the path. *)

val nearest_leaf_distance : t -> int -> int
(** Distance from a leaf to the nearest other leaf ([max_int] if none). *)
