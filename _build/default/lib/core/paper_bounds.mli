(** The paper's explicit probability bounds, as executable formulas.

    Each lemma of §5–§6 bounds a bad event by an explicit expression in
    (ε, u, γ, v); experiments print these alongside measurements.  All
    formulas are transcribed with the paper's own constants; where an
    expression only binds in an asymptotic regime (e.g. 144ε < 1) the
    function returns the formula value regardless and the caller decides
    relevance. *)

val lemma2_shorting_bound : n:int -> eps:float -> float
(** (1 − ε³ʲ)^(n/84) with j = (1/12)·log₂ n — the probability that {e no}
    short-path family member is fully closed, whose smallness forces the
    depth bound (Lemma 2 uses ε = 1/4). *)

val lemma3_access_bound : v:int -> eps:float -> float
(** c₁·v·(144ε)^v with c₁ = 1/(1 − 72ε): the paper's bound on an input
    {e losing} majority access to its grid. *)

val lemma4_outlet_bound : mu:int -> float
(** e^(−0.06·4^μ): tail bound for one expanding graph's faulty outlets at
    ε = 10⁻⁶. *)

val lemma5_union_bound : u:int -> float
(** u·(2/e)²ᵘ: union over all expanding graphs of 𝒩ₗ. *)

val lemma6_majority_failure : u:int -> eps:float -> float
(** 2·(c₁u(144ε)^u + u(2/e)²ᵘ): both halves of the majority-access
    certificate failing. *)

val lemma7_shorting_bound : u:int -> eps:float -> float
(** c₂·u²·(160ε)²ᵘ with c₂ = 4¹⁵/(1 − 40ε): terminals contracting. *)

val theorem2_failure_bound : u:int -> eps:float -> float
(** The total failure probability of Theorem 2's proof:
    2(c₁u(144ε)^u + u(2/e)²ᵘ) + c₂u²(160ε)²ᵘ. *)

val paper_epsilon : float
(** 10⁻⁶, the ε Theorem 2 is stated for. *)
