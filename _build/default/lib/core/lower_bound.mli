(** Lower-bound certificates (paper, §5: Lemma 2 and Theorem 1).

    Theorem 1 says a (1/4, 1/2)-n-superconcentrator must have size
    ≥ n(log₂ n)²/2688 and depth ≥ (1/12) log₂ n, via two measurable
    structures:
    + {e good inputs} — at least n/2 inputs pairwise farther apart than
      (1/12) log₂ n in the undirected metric (otherwise closed failures
      short two inputs too easily, Lemma 2); two good inputs force depth
      ≥ half their distance;
    + {e zones} — around each good input v, B_h(v) is the set of edges at
      undirected distance exactly h; every zone within the radius must
      hold Ω(log n) edges (otherwise open failures isolate v), and the
      disjoint neighbourhoods sum to Ω(n log² n) edges.

    [analyse] computes these certificates on a concrete network so that
    experiments E3/E10 can print predicted-vs-measured evidence. *)

type zone_report = {
  input_vertex : int;
  zone_sizes : int array;  (** |B_h(v)| for h = 1..radius *)
  min_zone : int;
  neighbourhood_edges : int;  (** |B(v)| = Σ_h |B_h(v)| *)
}

type report = {
  n : int;
  threshold : int;  (** pairwise-distance requirement used *)
  good_input_vertices : int array;
  good_fraction : float;  (** |good| / n *)
  depth_certificate : int;
      (** ⌈threshold/2⌉ when ≥ 2 good inputs exist, else 0 — a valid depth
          lower bound for any superconcentrator containing them *)
  zones : zone_report list;
  neighbourhood_total : int;
      (** Σ over analysed good inputs of |B(v)| — disjoint by construction,
          hence a size lower bound on the analysed region *)
}

val default_threshold : n:int -> int
(** ⌊(1/12) log₂ n⌋, at least 1. *)

val default_radius : threshold:int -> int
(** ⌊(threshold − 1) / 2⌋, at least 1 — keeps neighbourhoods disjoint. *)

val good_inputs : ?threshold:int -> Ftcsn_networks.Network.t -> int array
(** A maximal greedy set of inputs with pairwise undirected distance
    ≥ threshold. *)

val zones_of_input :
  Ftcsn_networks.Network.t -> radius:int -> input_vertex:int -> zone_report

val analyse :
  ?threshold:int -> ?radius:int -> ?max_inputs:int ->
  Ftcsn_networks.Network.t -> report
(** Full §5 audit; [max_inputs] (default 64) caps the number of good
    inputs whose zones are expanded. *)

type lemma2_certificate = {
  threshold_used : int;  (** the j of the construction *)
  linked_inputs : int;  (** inputs with another input within distance j *)
  forest_edges : int;
  input_leaf_count : int;  (** inputs that are leaves of the greedy forest *)
  shorting_families : int list list;
      (** edge-disjoint input-to-input paths of the contracted forest,
          each of contracted length ≤ 3 (original length ≤ 3j) — every one
          is an independent closed-failure shorting opportunity *)
}

val lemma2_certificate : ?threshold:int -> Ftcsn_networks.Network.t -> lemma2_certificate
(** The constructive machinery of Lemma 2: for each input take its
    shortest undirected path (≤ threshold, default
    {!default_threshold}) to another input; greedily keep the longest
    initial segment edge-disjoint from the forest built so far; contract
    degree-2 stretches; extract a maximal family of edge-disjoint
    length-≤3 leaf-to-leaf paths (Corollary 1) and keep those joining two
    inputs.  Many families ⇒ the network shorts w.h.p. at ε = 1/4, which
    is how Lemma 2 forces good inputs to be far apart. *)

val theorem1_size_bound : n:int -> float
(** n(log₂ n)²/2688 — the paper's explicit size bound. *)

val theorem1_depth_bound : n:int -> float
(** (1/12) log₂ n. *)
