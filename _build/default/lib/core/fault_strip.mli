(** Fault stripping: recover a working subnetwork after failures.

    The paper's §4 remark: "with high probability we can find a nonblocking
    network contained in the fault-tolerant network merely by discarding
    faulty components and their immediate neighbors, so no difficult
    computations are hidden here".  A vertex is {e faulty} when one of its
    incident switches failed (§6).  Stripping forbids faulty internal
    vertices (and, at radius 1, their neighbours); terminals are kept —
    any surviving path through allowed internal vertices automatically
    uses only normal-state switches, because a failed switch marks both
    its endpoints faulty. *)

type t = {
  allowed : int -> bool;  (** internal vertices that may carry traffic *)
  faulty : Ftcsn_util.Bitset.t;
  stripped : Ftcsn_util.Bitset.t;  (** faulty plus radius-neighbourhood *)
  shorted_terminals : (int * int) list;
      (** terminal pairs contracted by closed failures (Lemma 7 event) *)
  normal_graph : Ftcsn_graph.Digraph.t;
      (** the network graph restricted to normal-state switches (same
          vertex ids, edge ids renumbered); all post-fault routing runs on
          this graph so that a failed switch between two always-allowed
          terminals can never carry traffic *)
}

val strip :
  ?radius:int -> Ftcsn_networks.Network.t -> Ftcsn_reliability.Fault.pattern -> t
(** [radius] 0 (default) forbids faulty vertices; 1 also forbids their
    graph neighbours (the paper's conservative variant). *)

val healthy : t -> bool
(** No terminals were shorted together. *)

val stripped_fraction : Ftcsn_networks.Network.t -> t -> float

val surviving_network : Ftcsn_networks.Network.t -> t -> Ftcsn_networks.Network.t
(** The network with only normal-state switches (terminals unchanged). *)

val isolated_inputs : Ftcsn_networks.Network.t -> t -> int list
(** Input indices with no remaining path to any output through allowed
    vertices and normal switches — the open-failure disconnection event of
    Lemma 3. *)
