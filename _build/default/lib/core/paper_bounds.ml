let paper_epsilon = 1e-6

let lemma2_shorting_bound ~n ~eps =
  let nf = float_of_int n in
  let j = log nf /. log 2.0 /. 12.0 in
  let p_path = eps ** (3.0 *. j) in
  (1.0 -. p_path) ** (nf /. 84.0)

let c1 ~eps = 1.0 /. Float.max 1e-9 (1.0 -. (72.0 *. eps))

let lemma3_access_bound ~v ~eps =
  let vf = float_of_int v in
  c1 ~eps *. vf *. ((144.0 *. eps) ** vf)

let lemma4_outlet_bound ~mu =
  exp (-0.06 *. (4.0 ** float_of_int mu))

let lemma5_union_bound ~u =
  let uf = float_of_int u in
  uf *. ((2.0 /. Float.exp 1.0) ** (2.0 *. uf))

let lemma6_majority_failure ~u ~eps =
  2.0 *. (lemma3_access_bound ~v:u ~eps +. lemma5_union_bound ~u)

let c2 ~eps = (4.0 ** 15.0) /. Float.max 1e-9 (1.0 -. (40.0 *. eps))

let lemma7_shorting_bound ~u ~eps =
  let uf = float_of_int u in
  c2 ~eps *. uf *. uf *. ((160.0 *. eps) ** (2.0 *. uf))

let theorem2_failure_bound ~u ~eps =
  lemma6_majority_failure ~u ~eps +. lemma7_shorting_bound ~u ~eps
