module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Traverse = Ftcsn_graph.Traverse

type zone_report = {
  input_vertex : int;
  zone_sizes : int array;
  min_zone : int;
  neighbourhood_edges : int;
}

type report = {
  n : int;
  threshold : int;
  good_input_vertices : int array;
  good_fraction : float;
  depth_certificate : int;
  zones : zone_report list;
  neighbourhood_total : int;
}

let log2f n = log (float_of_int n) /. log 2.0

let default_threshold ~n = max 1 (int_of_float (log2f n /. 12.0))

let default_radius ~threshold = max 1 ((threshold - 1) / 2)

(* truncated undirected BFS: distances up to [limit], -1 beyond *)
let bounded_dist g ~source ~limit =
  let n = Digraph.vertex_count g in
  let dist = Array.make n (-1) in
  dist.(source) <- 0;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if dist.(v) < limit then begin
      let visit w =
        if dist.(w) = -1 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end
      in
      Digraph.iter_out g v (fun ~dst ~eid:_ -> visit dst);
      Digraph.iter_in g v (fun ~src ~eid:_ -> visit src)
    end
  done;
  dist

let good_inputs ?threshold net =
  let g = net.Network.graph in
  let n = Network.n_inputs net in
  let threshold =
    match threshold with Some t -> t | None -> default_threshold ~n
  in
  let chosen = ref [] in
  let excluded = Array.make (Digraph.vertex_count g) false in
  Array.iter
    (fun v ->
      if not excluded.(v) then begin
        chosen := v :: !chosen;
        (* exclude every input within distance < threshold *)
        let dist = bounded_dist g ~source:v ~limit:(threshold - 1) in
        Array.iter
          (fun w -> if dist.(w) >= 0 then excluded.(w) <- true)
          net.Network.inputs
      end)
    net.Network.inputs;
  Array.of_list (List.rev !chosen)

let zones_of_input net ~radius ~input_vertex =
  let g = net.Network.graph in
  let dist = bounded_dist g ~source:input_vertex ~limit:radius in
  let zone_sizes = Array.make radius 0 in
  Digraph.iter_edges g (fun ~eid:_ ~src ~dst ->
      let d_src = dist.(src) and d_dst = dist.(dst) in
      let near =
        match (d_src >= 0, d_dst >= 0) with
        | true, true -> min d_src d_dst
        | true, false -> d_src
        | false, true -> d_dst
        | false, false -> -1
      in
      (* distance from vertex to edge = nearest endpoint distance + 1 *)
      if near >= 0 && near + 1 <= radius then
        zone_sizes.(near) <- zone_sizes.(near) + 1);
  let min_zone = Array.fold_left min max_int zone_sizes in
  let neighbourhood_edges = Array.fold_left ( + ) 0 zone_sizes in
  {
    input_vertex;
    zone_sizes;
    min_zone = (if min_zone = max_int then 0 else min_zone);
    neighbourhood_edges;
  }

let analyse ?threshold ?radius ?(max_inputs = 64) net =
  let n = Network.n_inputs net in
  let threshold =
    match threshold with Some t -> t | None -> default_threshold ~n
  in
  let radius =
    match radius with Some r -> r | None -> default_radius ~threshold
  in
  let good = good_inputs ~threshold net in
  let analysed =
    Array.sub good 0 (min max_inputs (Array.length good))
  in
  let zones =
    Array.to_list
      (Array.map (fun v -> zones_of_input net ~radius ~input_vertex:v) analysed)
  in
  {
    n;
    threshold;
    good_input_vertices = good;
    good_fraction = float_of_int (Array.length good) /. float_of_int (max n 1);
    depth_certificate =
      (if Array.length good >= 2 then (threshold + 1) / 2 else 0);
    zones;
    neighbourhood_total =
      List.fold_left (fun acc z -> acc + z.neighbourhood_edges) 0 zones;
  }

type lemma2_certificate = {
  threshold_used : int;
  linked_inputs : int;
  forest_edges : int;
  input_leaf_count : int;
  shorting_families : int list list;
}

let lemma2_certificate ?threshold net =
  let g = net.Network.graph in
  let n_inputs = Network.n_inputs net in
  let threshold =
    match threshold with Some t -> t | None -> default_threshold ~n:n_inputs
  in
  let is_input = Array.make (Digraph.vertex_count g) false in
  Array.iter (fun v -> is_input.(v) <- true) net.Network.inputs;
  (* shortest undirected path from input v to any other input, <= threshold *)
  let nearest_input_path v =
    let n = Digraph.vertex_count g in
    let dist = Array.make n (-1) in
    let parent = Array.make n (-1) in
    dist.(v) <- 0;
    let queue = Queue.create () in
    Queue.add v queue;
    let found = ref None in
    while !found = None && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      if dist.(u) < threshold then begin
        let visit w =
          if !found = None && dist.(w) = -1 then begin
            dist.(w) <- dist.(u) + 1;
            parent.(w) <- u;
            if is_input.(w) then found := Some w else Queue.add w queue
          end
        in
        Digraph.iter_out g u (fun ~dst ~eid:_ -> visit dst);
        Digraph.iter_in g u (fun ~src ~eid:_ -> visit src)
      end
    done;
    match !found with
    | None -> None
    | Some w ->
        let rec walk x acc = if x = v then x :: acc else walk parent.(x) (x :: acc) in
        Some (walk w [])
  in
  (* greedy forest of edge-disjoint initial segments (Lemma 2's step 3);
     a union-find guard keeps the structure a genuine forest (the paper
     asserts forest-ness; we enforce it by stopping a segment one edge
     before it would close a cycle) *)
  let used = Hashtbl.create 256 in
  let uf = Ftcsn_util.Union_find.create (Digraph.vertex_count g) in
  let forest_edges = ref [] in
  let linked = ref 0 in
  Array.iter
    (fun v ->
      match nearest_input_path v with
      | None -> ()
      | Some path ->
          incr linked;
          let rec take = function
            | a :: (b :: _ as rest) ->
                let key = (min a b, max a b) in
                if Hashtbl.mem used key || Ftcsn_util.Union_find.equiv uf a b
                then ()
                else begin
                  Hashtbl.add used key ();
                  Ftcsn_util.Union_find.union uf a b;
                  forest_edges := (a, b) :: !forest_edges;
                  take rest
                end
            | _ -> ()
          in
          take path)
    net.Network.inputs;
  let forest =
    Tree_paths.of_edges ~n:(Digraph.vertex_count g) !forest_edges
  in
  let input_leaf_count =
    List.length (List.filter (fun v -> is_input.(v)) (Tree_paths.leaves forest))
  in
  let contracted = Tree_paths.contract_stretches forest in
  let families =
    List.filter
      (fun path ->
        match (path, List.rev path) with
        | a :: _, b :: _ -> is_input.(a) && is_input.(b)
        | _ -> false)
      (Tree_paths.short_leaf_paths contracted)
  in
  {
    threshold_used = threshold;
    linked_inputs = !linked;
    forest_edges = List.length !forest_edges;
    input_leaf_count;
    shorting_families = families;
  }

let theorem1_size_bound ~n =
  let l = log2f n in
  float_of_int n *. l *. l /. 2688.0

let theorem1_depth_bound ~n = log2f n /. 12.0
