module Network = Ftcsn_networks.Network
module Recursive_nb = Ftcsn_networks.Recursive_nb
module Digraph = Ftcsn_graph.Digraph

type t = {
  ft : Ft_network.t;
  middle_pos : (int, int * int) Hashtbl.t;
      (** middle vertex -> (retained stage index, offset in stage) *)
  mid_idx : int;  (** retained index of the root (widest-block) stage *)
  last_idx : int;
  beta : int;
  gamma : int;
  levels : int;
  rows : int;  (** grid rows = final block width *)
}

let ipow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let plan ft =
  let p = ft.Ft_network.params in
  let middle = ft.Ft_network.middle in
  let middle_pos = Hashtbl.create 4096 in
  Array.iteri
    (fun idx stage ->
      Array.iteri (fun off v -> Hashtbl.replace middle_pos v (idx, off)) stage)
    middle.Recursive_nb.stages;
  let levels = Ft_params.middle_levels p in
  let gamma = p.Ft_params.gamma in
  {
    ft;
    middle_pos;
    mid_idx = levels - gamma;
    last_idx = Array.length middle.Recursive_nb.stages - 1;
    beta = p.Ft_params.base.Recursive_nb.branching;
    gamma;
    levels;
    rows = Ft_params.grid_rows p;
  }

(* level (block granularity) of a retained middle stage *)
let level_of t idx =
  let s = idx + t.gamma in
  if s <= t.levels then s else (2 * t.levels) - s

(* ancestor block (at the given level) of the output grid block [j] *)
let ancestor_block t ~j ~level = j / ipow t.beta (level - t.gamma)

exception Found of int list

let route ?(budget = 10_000) t ~allowed ~busy ~input ~output =
  let net = t.ft.Ft_network.net in
  let g = net.Network.graph in
  let in_grid = t.ft.Ft_network.input_grids.(input) in
  let out_grid = t.ft.Ft_network.output_grids.(output) in
  let gs = t.ft.Ft_network.params.Ft_params.grid_stages in
  let wf = t.ft.Ft_network.params.Ft_params.base.Recursive_nb.width_factor in
  let steps = ref 0 in
  let ok v = allowed v && not (busy v) in
  let tick () =
    incr steps;
    !steps <= budget
  in
  (* DFS phases; [acc] collects the reversed path. *)
  let rec grid_walk (grid : Directed_grid.t) ~row ~col acc ~at_end =
    let v = grid.Directed_grid.columns.(col).(row) in
    if not (tick () && ok v) then ()
    else if col = gs - 1 then at_end ~row (v :: acc)
    else begin
      grid_walk grid ~row ~col:(col + 1) (v :: acc) ~at_end;
      if t.rows > 1 then
        grid_walk grid
          ~row:((row + 1) mod t.rows)
          ~col:(col + 1) (v :: acc) ~at_end
    end
  and middle_walk ~idx ~offset acc =
    (* the current vertex (head of acc) lives at [idx] with [offset];
       descend toward the last retained stage *)
    if idx = t.last_idx then begin
      (* this vertex is column 0 of output grid [offset / rows]; only the
         right grid continues the path *)
      if offset / t.rows = output then begin
        let row = offset mod t.rows in
        (* already on the grid's first column: continue the walk from the
           NEXT column to avoid double-visiting the junction vertex *)
        out_grid_walk ~row ~col:0 acc
      end
    end
    else begin
      let v = List.hd acc in
      let next_level = level_of t (idx + 1) in
      let want_block =
        if idx + 1 <= t.mid_idx then -1 (* ascending: any block is fine *)
        else ancestor_block t ~j:output ~level:next_level
      in
      let bw = wf * ipow t.beta next_level in
      Digraph.iter_out g v (fun ~dst ~eid:_ ->
          if tick () && ok dst then
            match Hashtbl.find_opt t.middle_pos dst with
            | Some (idx', off') when idx' = idx + 1 ->
                if want_block < 0 || off' / bw = want_block then
                  middle_walk ~idx:(idx + 1) ~offset:off' (dst :: acc)
            | Some _ | None -> ())
    end
  and out_grid_walk ~row ~col acc =
    if col = gs - 1 then begin
      let out_v = net.Network.outputs.(output) in
      if ok out_v then raise (Found (List.rev (out_v :: acc)))
    end
    else begin
      (* successors on the next column *)
      let try_row r =
        let w = out_grid.Directed_grid.columns.(col + 1).(r) in
        if tick () && ok w then out_grid_walk ~row:r ~col:(col + 1) (w :: acc)
      in
      try_row row;
      if t.rows > 1 then try_row ((row + 1) mod t.rows)
    end
  in
  let in_v = net.Network.inputs.(input) in
  if not (ok in_v && ok net.Network.outputs.(output)) then None
  else begin
    match
      for row = 0 to t.rows - 1 do
        grid_walk in_grid ~row ~col:0 [ in_v ] ~at_end:(fun ~row:end_row acc ->
            let offset = (input * t.rows) + end_row in
            middle_walk ~idx:0 ~offset acc)
      done
    with
    | () -> None
    | exception Found path -> Some path
  end

let route_permutation ?budget t ~allowed pi =
  let net = t.ft.Ft_network.net in
  let n = Digraph.vertex_count net.Network.graph in
  let busy_arr = Array.make n false in
  let busy v = busy_arr.(v) in
  let success = ref 0 in
  let paths =
    Array.init (Array.length pi) (fun i ->
        match route ?budget t ~allowed ~busy ~input:i ~output:pi.(i) with
        | Some path ->
            List.iter (fun v -> busy_arr.(v) <- true) path;
            incr success;
            Some path
        | None -> None)
  in
  (paths, !success)
