module Recursive_nb = Ftcsn_networks.Recursive_nb

type t = {
  base : Recursive_nb.params;
  u : int;
  gamma : int;
  grid_stages : int;
}

let ipow base e =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  go 1 e

let paper ~u =
  if u < 1 then invalid_arg "Ft_params.paper";
  let gamma =
    (* ceil(log4 (34 u)) *)
    let target = 34 * u in
    let rec go g acc = if acc >= target then g else go (g + 1) (acc * 4) in
    go 0 1
  in
  { base = Recursive_nb.paper_params; u; gamma = max 1 gamma; grid_stages = max 2 u }

let scaled ?(branching = 2) ?(width_factor = 4) ?(degree = 4) ?(gamma = 2)
    ?grid_stages ~u () =
  if u < 1 || gamma < 1 then invalid_arg "Ft_params.scaled";
  let grid_stages = match grid_stages with Some g -> max 2 g | None -> max 2 u in
  {
    base = Recursive_nb.scaled_params ~branching ~width_factor ~degree ();
    u;
    gamma;
    grid_stages;
  }

let n t = ipow t.base.Recursive_nb.branching t.u

let grid_rows t =
  t.base.Recursive_nb.width_factor * ipow t.base.Recursive_nb.branching t.gamma

let middle_levels t = t.u + t.gamma

let predicted_size t =
  let beta = t.base.Recursive_nb.branching in
  let wf = t.base.Recursive_nb.width_factor in
  let d = t.base.Recursive_nb.degree in
  let l = middle_levels t in
  let width = wf * ipow beta l in
  let n_terms = n t in
  let rows = grid_rows t in
  let grid_edges = Directed_grid.edge_count ~rows ~stages:t.grid_stages in
  let middle_stage_pairs = 2 * (l - t.gamma) in
  (* terminal fan edges on both sides + grids on both sides + middle
     expanding stages (degree d per vertex per retained stage pair) *)
  (2 * n_terms * rows) + (2 * n_terms * grid_edges) + (middle_stage_pairs * width * d)

let predicted_depth t =
  (* input edge + grid + middle stages + grid + output edge *)
  let middle_stages = (2 * (middle_levels t - t.gamma)) + 1 in
  (2 * 1) + (2 * (t.grid_stages - 1)) + (middle_stages - 1)

let validate t =
  let beta = t.base.Recursive_nb.branching in
  if beta < 2 then Error "branching must be >= 2"
  else if t.u < 1 then Error "u must be >= 1"
  else if t.gamma < 1 then Error "gamma must be >= 1 (grids need a block to land on)"
  else if t.grid_stages < 2 then Error "grid_stages must be >= 2"
  else if t.base.Recursive_nb.degree < 1 then Error "degree must be >= 1"
  else Ok ()

let pp ppf t =
  Format.fprintf ppf
    "ftnet(u=%d, gamma=%d, beta=%d, wf=%d, degree=%d, grid=%dx%d, n=%d)" t.u
    t.gamma t.base.Recursive_nb.branching t.base.Recursive_nb.width_factor
    t.base.Recursive_nb.degree (grid_rows t) t.grid_stages (n t)
