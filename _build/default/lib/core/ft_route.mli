(** Structured routing for network 𝒩.

    The generic greedy router BFSes the whole graph per request; 𝒩's
    staged block structure supports a much cheaper strategy, the one the
    paper's §4 "greedy application of a standard path-finding algorithm"
    amounts to in practice:

    + fan into any idle row of the input grid and walk its columns;
    + ascend the left half of the middle freely (all edges lead to the
      merged root block);
    + descend the right half {e steering}: at each stage take an edge
      into the child block that is the ancestor of the target output's
      block;
    + walk the output grid and drain.

    The walk is a depth-first search with backtracking over idle allowed
    vertices only, visiting O(depth · degree) vertices on uncongested
    networks instead of O(size).  Produces exactly the same kind of
    vertex-disjoint paths as {!Ftcsn_routing.Greedy}. *)

type t
(** Routing plan: per-vertex stage/offset tables for one {!Ft_network}. *)

val plan : Ft_network.t -> t

val route :
  ?budget:int ->
  t ->
  allowed:(int -> bool) ->
  busy:(int -> bool) ->
  input:int ->
  output:int ->
  int list option
(** One idle path from input index to output index through allowed idle
    vertices ([budget], default 10_000, caps DFS vertex expansions).
    The caller marks the returned path busy. *)

val route_permutation :
  ?budget:int ->
  t ->
  allowed:(int -> bool) ->
  Ftcsn_util.Perm.t ->
  int list option array * int
(** Route all requests sequentially with internal busy tracking; returns
    the paths and the number of successes. *)
