(** The fault-tolerant nonblocking network 𝒩 of the paper (§6, Fig. 5).

    𝒩 composes, left to right:
    + n input terminals, each fanning out to every vertex of the first
      column of its own (grid_rows × grid_stages) directed grid Φᵢ;
    + the recursive middle network ℳ ([P82] scaled up to levels u + γ and
      truncated by γ stages at each end), whose first-stage blocks are
      {e identified} with the grids' last columns;
    + mirrored output grids Ψⱼ, whose last columns drain into the n
      output terminals.

    The grids defeat open failures (isolating a terminal needs a cut of
    ~grid_rows failures — Lemma 3); the logarithmic oversizing γ leaves
    the expanding graphs with enough slack to absorb faulty outlets
    (Lemmas 4–5); shorting of terminals needs ≥ 2u consecutive closed
    failures (Lemma 7).  Theorem 2: with the paper constants this is a
    (10⁻⁶, δ)-nonblocking n-network of ≤ 49·n·(log₄ n)² switches and
    ≤ 5·log₄ n depth. *)

type t = {
  net : Ftcsn_networks.Network.t;
  params : Ft_params.t;
  input_grids : Directed_grid.t array;
  output_grids : Directed_grid.t array;
  middle : Ftcsn_networks.Recursive_nb.t;
}

val make : rng:Ftcsn_prng.Rng.t -> Ft_params.t -> t
(** @raise Invalid_argument when {!Ft_params.validate} rejects. *)

val stage_census : t -> (string * int * int) list
(** (stage label, vertex count, outgoing switch count) rows — the Fig. 5
    composition audit of experiment F5. *)

val grid_of_input : t -> int -> Directed_grid.t
(** Φᵢ for input index i. *)

val grid_of_output : t -> int -> Directed_grid.t
