lib/core/transfer.ml: Array Float Ftcsn_networks Ftcsn_reliability
