lib/core/fault_strip.mli: Ftcsn_graph Ftcsn_networks Ftcsn_reliability Ftcsn_util
