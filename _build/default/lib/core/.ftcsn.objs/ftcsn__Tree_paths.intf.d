lib/core/tree_paths.mli: Ftcsn_prng
