lib/core/ft_network.ml: Array Directed_grid Format Ft_params Ftcsn_graph Ftcsn_networks Ftcsn_prng Printf
