lib/core/ft_route.ml: Array Directed_grid Ft_network Ft_params Ftcsn_graph Ftcsn_networks Hashtbl List
