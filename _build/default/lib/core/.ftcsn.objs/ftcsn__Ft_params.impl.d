lib/core/ft_params.ml: Directed_grid Format Ftcsn_networks
