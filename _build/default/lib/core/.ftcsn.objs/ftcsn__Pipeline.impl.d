lib/core/pipeline.ml: Array Fault_strip Ftcsn_graph Ftcsn_networks Ftcsn_prng Ftcsn_reliability Ftcsn_routing Majority_access Printf
