lib/core/fault_strip.ml: Array Ftcsn_graph Ftcsn_networks Ftcsn_reliability Ftcsn_util List
