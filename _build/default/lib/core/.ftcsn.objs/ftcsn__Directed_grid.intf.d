lib/core/directed_grid.mli: Ftcsn_graph
