lib/core/directed_grid.ml: Array Ftcsn_graph Printf
