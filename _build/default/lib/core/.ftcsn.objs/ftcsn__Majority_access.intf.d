lib/core/majority_access.mli: Directed_grid Ftcsn_networks Ftcsn_prng
