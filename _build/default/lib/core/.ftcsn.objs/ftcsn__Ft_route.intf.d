lib/core/ft_route.mli: Ft_network Ftcsn_util
