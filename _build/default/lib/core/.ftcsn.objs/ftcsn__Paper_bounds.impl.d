lib/core/paper_bounds.ml: Float
