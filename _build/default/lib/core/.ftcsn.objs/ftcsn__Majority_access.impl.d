lib/core/majority_access.ml: Array Directed_grid Ftcsn_graph Ftcsn_networks Ftcsn_prng Ftcsn_routing
