lib/core/ft_network.mli: Directed_grid Ft_params Ftcsn_networks Ftcsn_prng
