lib/core/transfer.mli: Ftcsn_networks Ftcsn_reliability
