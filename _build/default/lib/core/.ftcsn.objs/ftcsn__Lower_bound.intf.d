lib/core/lower_bound.mli: Ftcsn_networks
