lib/core/ft_params.mli: Format Ftcsn_networks
