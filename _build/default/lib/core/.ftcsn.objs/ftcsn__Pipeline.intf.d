lib/core/pipeline.mli: Ftcsn_networks Ftcsn_prng Ftcsn_reliability
