lib/core/paper_bounds.mli:
