lib/core/ft_session.ml: Array Ftcsn_graph Ftcsn_networks Ftcsn_prng Ftcsn_reliability Ftcsn_util Fun Hashtbl List Queue
