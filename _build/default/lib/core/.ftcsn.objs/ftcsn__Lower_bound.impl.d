lib/core/lower_bound.ml: Array Ftcsn_graph Ftcsn_networks Ftcsn_util Hashtbl List Queue Tree_paths
