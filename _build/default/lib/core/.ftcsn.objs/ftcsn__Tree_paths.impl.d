lib/core/tree_paths.ml: Array Ftcsn_prng Hashtbl List Queue Stack
