lib/core/ft_session.mli: Ftcsn_networks Ftcsn_prng
