module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Survivor = Ftcsn_reliability.Survivor
module Bitset = Ftcsn_util.Bitset

type t = {
  allowed : int -> bool;
  faulty : Bitset.t;
  stripped : Bitset.t;
  shorted_terminals : (int * int) list;
  normal_graph : Digraph.t;
}

let strip ?(radius = 0) net pattern =
  let g = net.Network.graph in
  let faulty = Fault.faulty_vertices g pattern in
  let stripped = Bitset.copy faulty in
  if radius > 0 then begin
    let frontier = ref (Bitset.to_list faulty) in
    for _ = 1 to radius do
      let next = ref [] in
      List.iter
        (fun v ->
          Digraph.iter_out g v (fun ~dst ~eid:_ ->
              if not (Bitset.mem stripped dst) then begin
                Bitset.add stripped dst;
                next := dst :: !next
              end);
          Digraph.iter_in g v (fun ~src ~eid:_ ->
              if not (Bitset.mem stripped src) then begin
                Bitset.add stripped src;
                next := src :: !next
              end))
        !frontier;
      frontier := !next
    done
  end;
  (* terminals always stay routable endpoints *)
  let terminal = Bitset.create (Digraph.vertex_count g) in
  List.iter (Bitset.add terminal) (Network.terminals net);
  let allowed v = Bitset.mem terminal v || not (Bitset.mem stripped v) in
  let survivor = Survivor.apply g pattern in
  let shorted_terminals = Survivor.merged_pairs survivor (Network.terminals net) in
  let normal_graph =
    Digraph.subgraph_by_edges g ~keep:(fun e ->
        Fault.state_equal pattern.(e) Fault.Normal)
  in
  { allowed; faulty; stripped; shorted_terminals; normal_graph }

let healthy t = t.shorted_terminals = []

let stripped_fraction net t =
  let n = Digraph.vertex_count net.Network.graph in
  if n = 0 then 0.0 else float_of_int (Bitset.cardinal t.stripped) /. float_of_int n

let surviving_network net t =
  { net with Network.graph = t.normal_graph }

let isolated_inputs net t =
  let reach_out =
    Ftcsn_graph.Traverse.bfs_directed ~allowed:t.allowed
      (Digraph.reverse t.normal_graph)
      ~sources:(Array.to_list net.Network.outputs)
  in
  let isolated = ref [] in
  Array.iteri
    (fun idx v -> if reach_out.(v) < 0 then isolated := idx :: !isolated)
    net.Network.inputs;
  List.rev !isolated
