module Digraph = Ftcsn_graph.Digraph
module Network = Ftcsn_networks.Network
module Recursive_nb = Ftcsn_networks.Recursive_nb
module Rng = Ftcsn_prng.Rng

type t = {
  net : Network.t;
  params : Ft_params.t;
  input_grids : Directed_grid.t array;
  output_grids : Directed_grid.t array;
  middle : Recursive_nb.t;
}

let make ~rng (params : Ft_params.t) =
  (match Ft_params.validate params with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Ft_network.make: " ^ msg));
  let n = Ft_params.n params in
  let rows = Ft_params.grid_rows params in
  let levels = Ft_params.middle_levels params in
  let b = Digraph.Builder.create () in
  let inputs = Array.init n (fun _ -> Digraph.Builder.add_vertex b) in
  let outputs = Array.init n (fun _ -> Digraph.Builder.add_vertex b) in
  (* input grids, fed by their terminals *)
  let input_grids =
    Array.init n (fun i ->
        let grid =
          Directed_grid.build ~builder:b ~rows ~stages:params.grid_stages ()
        in
        Array.iter
          (fun v -> ignore (Digraph.Builder.add_edge b ~src:inputs.(i) ~dst:v))
          grid.Directed_grid.columns.(0);
        grid)
  in
  (* middle network: its first stage is the concatenation of the grids'
     last columns (vertex identification, not extra switches) *)
  let first_stage =
    Array.concat
      (Array.to_list
         (Array.map
            (fun g -> g.Directed_grid.columns.(params.grid_stages - 1))
            input_grids))
  in
  let middle =
    Recursive_nb.build ~builder:b ~rng ~params:params.base ~levels
      ~trim:params.gamma ~first_stage ()
  in
  let last_stage = middle.Recursive_nb.stages.(Array.length middle.Recursive_nb.stages - 1) in
  (* output grids: first column identified with a block of the middle's
     last stage, last column draining into the output terminal *)
  let output_grids =
    Array.init n (fun j ->
        let first_column = Array.sub last_stage (j * rows) rows in
        let grid =
          Directed_grid.build ~builder:b ~rows ~stages:params.grid_stages
            ~first_column ()
        in
        Array.iter
          (fun v -> ignore (Digraph.Builder.add_edge b ~src:v ~dst:outputs.(j)))
          grid.Directed_grid.columns.(params.grid_stages - 1);
        grid)
  in
  let graph = Digraph.Builder.freeze b in
  let net =
    Network.make
      ~name:(Format.asprintf "%a" Ft_params.pp params)
      ~graph ~inputs ~outputs
  in
  { net; params; input_grids; output_grids; middle }

let stage_census t =
  let g = t.net.Network.graph in
  let staged =
    Ftcsn_graph.Staged.of_sources g
      ~sources:(Array.to_list t.net.Network.inputs)
  in
  let sizes = Ftcsn_graph.Staged.stage_sizes staged in
  let edges = Ftcsn_graph.Staged.stage_edge_counts g staged in
  let gs = t.params.Ft_params.grid_stages in
  let middle_stages = Array.length t.middle.Recursive_nb.stages in
  (* stage gs is both the grids' last column and the middle's stage 0;
     stage gs + middle_stages - 1 is both the middle's last stage and the
     output grids' first column *)
  let last = Array.length sizes - 1 in
  let label s =
    if s = 0 then "inputs"
    else if s = last then "outputs"
    else if s < gs then Printf.sprintf "grid-in[%d]" (s - 1)
    else if s <= gs + middle_stages - 1 then Printf.sprintf "middle[%d]" (s - gs)
    else Printf.sprintf "grid-out[%d]" (s - gs - middle_stages + 1)
  in
  Array.to_list
    (Array.mapi
       (fun s size ->
         (label s, size, if s < Array.length edges then edges.(s) else 0))
       sizes)

let grid_of_input t i = t.input_grids.(i)

let grid_of_output t j = t.output_grids.(j)
