module Network = Ftcsn_networks.Network
module Sp_network = Ftcsn_reliability.Sp_network
module Substitution = Ftcsn_reliability.Substitution

type t = {
  network : Network.t;
  substitution : Substitution.t;
  gadget_spec : Sp_network.spec;
  size_factor : int;
  depth_factor : int;
}

let harden ~eps ~eps' net =
  let spec = Sp_network.design ~eps ~eps' in
  let gadget = Sp_network.build spec in
  let substitution = Substitution.substitute net.Network.graph ~gadget in
  let image v = substitution.Substitution.vertex_image.(v) in
  let network =
    Network.make
      ~name:(net.Network.name ^ "-hardened")
      ~graph:substitution.Substitution.graph
      ~inputs:(Array.map image net.Network.inputs)
      ~outputs:(Array.map image net.Network.outputs)
  in
  {
    network;
    substitution;
    gadget_spec = spec;
    size_factor = Sp_network.size spec;
    depth_factor = Sp_network.depth spec;
  }

let logical_pattern t pattern =
  Substitution.logical_pattern t.substitution pattern

let logical_failure_rates t ~eps =
  ( Sp_network.open_prob t.gadget_spec ~eps_open:eps ~eps_close:eps,
    Sp_network.short_prob t.gadget_spec ~eps_open:eps ~eps_close:eps )

let delta_shift ~eps ~delta_from ~delta_to =
  if delta_from <= 0.0 || delta_to <= 0.0 then invalid_arg "Transfer.delta_shift";
  eps *. Float.min 1.0 (delta_to /. delta_from)
