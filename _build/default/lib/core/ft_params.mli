(** Parameters of the fault-tolerant network 𝒩 (paper, §6).

    The paper instantiates n = 4^u terminals, oversizing
    γ = ⌈log₄(34u)⌉ (so 34u ≤ 4^γ ≤ 136u), grids of 64·4^γ rows by u
    stages, and the [P82] middle network at levels u + γ with the first
    and last γ stages truncated.  Because those constants produce
    million-edge networks even for n = 16, the record also admits scaled
    instances with the same shape — every experiment states which
    instance it ran. *)

type t = {
  base : Ftcsn_networks.Recursive_nb.params;
  u : int;  (** n = branching^u terminals *)
  gamma : int;  (** oversizing levels, ≥ 1 *)
  grid_stages : int;  (** grid width (paper: u) *)
}

val paper : u:int -> t
(** The paper's exact constants (β=4, wf=64, degree=10,
    γ=⌈log₄ 34u⌉, grid_stages=u). *)

val scaled :
  ?branching:int ->
  ?width_factor:int ->
  ?degree:int ->
  ?gamma:int ->
  ?grid_stages:int ->
  u:int ->
  unit ->
  t
(** Test-sized defaults: β=2, wf=4, degree=4, γ=2, grid_stages=u. *)

val n : t -> int
(** branching^u. *)

val grid_rows : t -> int
(** wf·branching^γ. *)

val middle_levels : t -> int
(** u + γ. *)

val predicted_size : t -> int
(** Exact switch count of 𝒩 for these parameters (terminal fan edges +
    grids + middle), matching the paper's 1408·u·4^{u+γ} accounting for
    the paper constants. *)

val predicted_depth : t -> int
(** Stage count minus one: 2·grid_stages + middle stages + 2. *)

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
