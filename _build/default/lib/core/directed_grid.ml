module Digraph = Ftcsn_graph.Digraph

type t = {
  rows : int;
  stages : int;
  columns : int array array;
}

let build ~builder ~rows ~stages ?first_column ?last_column () =
  if rows < 1 || stages < 1 then invalid_arg "Directed_grid.build: dimensions";
  let expect name arr =
    if Array.length arr <> rows then
      invalid_arg (Printf.sprintf "Directed_grid.build: %s arity" name)
  in
  let columns =
    Array.init stages (fun j ->
        if j = 0 then
          match first_column with
          | Some arr when stages > 1 ->
              expect "first_column" arr;
              arr
          | Some arr ->
              expect "first_column" arr;
              arr
          | None -> Array.init rows (fun _ -> Digraph.Builder.add_vertex builder)
        else if j = stages - 1 then
          match last_column with
          | Some arr ->
              expect "last_column" arr;
              arr
          | None -> Array.init rows (fun _ -> Digraph.Builder.add_vertex builder)
        else Array.init rows (fun _ -> Digraph.Builder.add_vertex builder))
  in
  if stages = 1 && first_column <> None && last_column <> None then
    invalid_arg "Directed_grid.build: single column cannot be both terminals";
  for j = 0 to stages - 2 do
    for i = 0 to rows - 1 do
      ignore
        (Digraph.Builder.add_edge builder ~src:columns.(j).(i)
           ~dst:columns.(j + 1).(i));
      if rows > 1 then
        ignore
          (Digraph.Builder.add_edge builder ~src:columns.(j).(i)
             ~dst:columns.(j + 1).((i + 1) mod rows))
    done
  done;
  { rows; stages; columns }

type standalone = {
  grid : t;
  graph : Digraph.t;
}

let make ~rows ~stages =
  let builder = Digraph.Builder.create () in
  let grid = build ~builder ~rows ~stages () in
  { grid; graph = Digraph.Builder.freeze builder }

let vertex_at t ~row ~col = t.columns.(col).(row)

let edge_count ~rows ~stages =
  if rows = 1 then stages - 1 else 2 * rows * (stages - 1)

let render s =
  Ftcsn_graph.Render.ascii_grid ~rows:s.grid.rows ~cols:s.grid.stages
    ~vertex_at:(fun ~row ~col -> vertex_at s.grid ~row ~col)
    s.graph
