type t = {
  pair_left : int array;
  pair_right : int array;
  size : int;
}

let infinity_dist = max_int

let matching ~n_left ~n_right ~adj =
  if Array.length adj <> n_left then invalid_arg "Hopcroft_karp.matching";
  let pair_left = Array.make n_left (-1) in
  let pair_right = Array.make n_right (-1) in
  let dist = Array.make n_left 0 in
  let queue = Queue.create () in
  (* BFS layers from free left vertices; returns true if an augmenting
     path exists. *)
  let bfs () =
    Queue.clear queue;
    let found = ref false in
    for l = 0 to n_left - 1 do
      if pair_left.(l) = -1 then begin
        dist.(l) <- 0;
        Queue.add l queue
      end
      else dist.(l) <- infinity_dist
    done;
    while not (Queue.is_empty queue) do
      let l = Queue.pop queue in
      Array.iter
        (fun r ->
          let l' = pair_right.(r) in
          if l' = -1 then found := true
          else if dist.(l') = infinity_dist then begin
            dist.(l') <- dist.(l) + 1;
            Queue.add l' queue
          end)
        adj.(l)
    done;
    !found
  in
  let rec dfs l =
    let rec try_neighbours i =
      if i >= Array.length adj.(l) then begin
        dist.(l) <- infinity_dist;
        false
      end
      else begin
        let r = adj.(l).(i) in
        let l' = pair_right.(r) in
        let ok =
          if l' = -1 then true
          else if dist.(l') = dist.(l) + 1 then dfs l'
          else false
        in
        if ok then begin
          pair_left.(l) <- r;
          pair_right.(r) <- l;
          true
        end
        else try_neighbours (i + 1)
      end
    in
    try_neighbours 0
  in
  let size = ref 0 in
  while bfs () do
    for l = 0 to n_left - 1 do
      if pair_left.(l) = -1 && dfs l then incr size
    done
  done;
  { pair_left; pair_right; size = !size }

let is_perfect_on_left t = Array.for_all (fun r -> r >= 0) t.pair_left
