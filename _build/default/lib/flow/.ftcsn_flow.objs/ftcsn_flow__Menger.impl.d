lib/flow/menger.ml: Array Ftcsn_graph List Maxflow
