lib/flow/maxflow.mli: Ftcsn_util
