lib/flow/hopcroft_karp.mli:
