lib/flow/hopcroft_karp.ml: Array Queue
