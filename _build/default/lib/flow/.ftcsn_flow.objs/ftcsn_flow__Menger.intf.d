lib/flow/menger.mli: Ftcsn_graph
