lib/flow/maxflow.ml: Array Ftcsn_util Queue
