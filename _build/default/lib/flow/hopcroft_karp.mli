(** Hopcroft–Karp maximum bipartite matching, O(E sqrt(V)).

    Used by the Beneš looping algorithm's frame decomposition and by the
    expander certifiers (a (c, c')-expansion failure is a deficient Hall
    set, witnessed through matchings). *)

type t = {
  pair_left : int array;  (** matched right vertex per left vertex, -1 if free *)
  pair_right : int array;  (** matched left vertex per right vertex, -1 if free *)
  size : int;  (** cardinality of the matching *)
}

val matching : n_left:int -> n_right:int -> adj:int array array -> t
(** [matching ~n_left ~n_right ~adj] where [adj.(l)] lists the right
    neighbours of left vertex [l]. *)

val is_perfect_on_left : t -> bool
