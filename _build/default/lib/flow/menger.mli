(** Menger certificates: maximum sets of vertex-disjoint directed paths.

    The definitions of rearrangeable networks and superconcentrators
    (paper, §2) are statements about vertex-disjoint paths; by Menger's
    theorem they are decided by unit-vertex-capacity max-flow, which this
    module implements by the standard node-splitting reduction. *)

val max_vertex_disjoint :
  ?forbidden:(int -> bool) ->
  Ftcsn_graph.Digraph.t ->
  sources:int array ->
  sinks:int array ->
  int
(** Maximum number of directed paths from [sources] to [sinks] that are
    pairwise vertex-disjoint (endpoints included).  [forbidden] vertices
    cannot be used at all. *)

val vertex_disjoint_paths :
  ?forbidden:(int -> bool) ->
  Ftcsn_graph.Digraph.t ->
  sources:int array ->
  sinks:int array ->
  int list list
(** A maximum family of vertex-disjoint paths, each a vertex list from a
    source to a sink. *)

val min_vertex_cut_size :
  ?forbidden:(int -> bool) ->
  Ftcsn_graph.Digraph.t ->
  sources:int array ->
  sinks:int array ->
  int
(** Size of a minimum vertex cut (counting cut vertices; equals
    {!max_vertex_disjoint} by Menger).  Lemma 3 of the paper applies this
    duality to faulty-vertex cut sets in directed grids. *)
