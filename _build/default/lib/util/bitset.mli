(** Fixed-capacity bit sets over [0, capacity).

    Used for busy-vertex masks during routing and visited sets in graph
    traversals where allocation-free membership tests matter. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [0, n). *)

val capacity : t -> int

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int
(** Population count; O(capacity/64). *)

val clear : t -> unit

val copy : t -> t

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> int list

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src]; capacities must match. *)

val inter_cardinal : t -> t -> int
(** Size of the intersection; capacities must match. *)

val disjoint : t -> t -> bool
