type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable minv : float;
  mutable maxv : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; minv = infinity; maxv = neg_infinity; sum = 0.0 }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min_value t = t.minv

let max_value t = t.maxv

let sum t = t.sum

let of_array a =
  let t = create () in
  Array.iter (add t) a;
  t

let median_of_sorted a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.median_of_sorted: empty";
  if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile_of_sorted a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile_of_sorted: empty";
  if q <= 0.0 then a.(0)
  else if q >= 1.0 then a.(n - 1)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end
