type t = int array

let identity n = Array.init n (fun i -> i)

let is_valid p =
  let n = Array.length p in
  let seen = Array.make n false in
  let ok = ref true in
  Array.iter
    (fun x ->
      if x < 0 || x >= n || seen.(x) then ok := false else seen.(x) <- true)
    p;
  !ok

let compose p q =
  if Array.length p <> Array.length q then invalid_arg "Perm.compose";
  Array.map (fun x -> p.(x)) q

let inverse p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

let apply p i = p.(i)

let shuffle ~rand_int n =
  let p = identity n in
  for i = n - 1 downto 1 do
    let j = rand_int (i + 1) in
    let tmp = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- tmp
  done;
  p

(* Heap's algorithm: generates each permutation by one swap from the last. *)
let iter_all n f =
  let a = identity n in
  let c = Array.make n 0 in
  f a;
  let i = ref 0 in
  while !i < n do
    if c.(!i) < !i then begin
      let j = if !i land 1 = 0 then 0 else c.(!i) in
      let tmp = a.(j) in
      a.(j) <- a.(!i);
      a.(!i) <- tmp;
      f a;
      c.(!i) <- c.(!i) + 1;
      i := 0
    end
    else begin
      c.(!i) <- 0;
      incr i
    end
  done

let count_fixed_points p =
  let acc = ref 0 in
  Array.iteri (fun i x -> if i = x then incr acc) p;
  !acc

let cycles p =
  let n = Array.length p in
  let seen = Array.make n false in
  let out = ref [] in
  for i = 0 to n - 1 do
    if not seen.(i) then begin
      let cyc = ref [] in
      let j = ref i in
      while not seen.(!j) do
        seen.(!j) <- true;
        cyc := !j :: !cyc;
        j := p.(!j)
      done;
      out := List.rev !cyc :: !out
    end
  done;
  List.rev !out

let swap_distance p = Array.length p - List.length (cycles p)

let rotation n k =
  let k = ((k mod n) + n) mod n in
  Array.init n (fun i -> (i + k) mod n)

let reversal n = Array.init n (fun i -> n - 1 - i)

let pp ppf p =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list p)
