let log_factorial_table =
  lazy
    (let t = Array.make 257 0.0 in
     for i = 2 to 256 do
       t.(i) <- t.(i - 1) +. log (float_of_int i)
     done;
     t)

(* Stirling series: ln n! = n ln n - n + (1/2) ln (2 pi n) + 1/(12n) - ... *)
let log_factorial n =
  if n < 0 then invalid_arg "Combinat.log_factorial"
  else if n <= 256 then (Lazy.force log_factorial_table).(n)
  else
    let nf = float_of_int n in
    (nf *. log nf) -. nf
    +. (0.5 *. log (2.0 *. Float.pi *. nf))
    +. (1.0 /. (12.0 *. nf))
    -. (1.0 /. (360.0 *. (nf ** 3.0)))

let log_binomial n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let binomial n k =
  if k < 0 || k > n then 0.0
  else if n <= 60 then begin
    (* exact product form to avoid rounding on small cases *)
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    Float.round !acc
  end
  else exp (log_binomial n k)

let subset_count ~n ~k =
  let f = binomial n k in
  if f > 4.0e18 then invalid_arg "Combinat.subset_count: overflow";
  int_of_float f

let iter_subsets ~n ~k f =
  if k < 0 || k > n then invalid_arg "Combinat.iter_subsets";
  if k = 0 then f [||]
  else begin
    let a = Array.init k (fun i -> i) in
    let continue = ref true in
    while !continue do
      f a;
      (* advance to the next lexicographic k-subset *)
      let i = ref (k - 1) in
      while !i >= 0 && a.(!i) = n - k + !i do
        decr i
      done;
      if !i < 0 then continue := false
      else begin
        a.(!i) <- a.(!i) + 1;
        for j = !i + 1 to k - 1 do
          a.(j) <- a.(j - 1) + 1
        done
      end
    done
  end

let iter_all_masks n f =
  if n < 0 || n > 62 then invalid_arg "Combinat.iter_all_masks";
  for m = 0 to (1 lsl n) - 1 do
    f m
  done

let choose_indices ~rand_int ~n ~k =
  if k < 0 || k > n then invalid_arg "Combinat.choose_indices";
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + rand_int (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  let out = Array.sub a 0 k in
  Array.sort compare out;
  out
