type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ~title ~columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row ->
        match row with
        | Rule -> ws
        | Cells cells -> List.map2 (fun w c -> max w (String.length c)) ws cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 1024 in
  let line ch =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) ch)) widths;
    Buffer.add_string buf "+\n"
  in
  let emit cells =
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        let a = List.nth t.aligns i in
        Buffer.add_string buf ("| " ^ pad a w c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  line '-';
  emit t.headers;
  line '=';
  List.iter (function Rule -> line '-' | Cells cells -> emit cells) rows;
  line '-';
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fi = string_of_int

let ff ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x

let fe x = Printf.sprintf "%.2e" x

let fratio a b = if b = 0.0 then "-" else Printf.sprintf "%.3f" (a /. b)
