(** Permutations of [0, n).

    Rearrangeable networks are defined by their ability to route every
    permutation of inputs to outputs (paper, §2); these helpers drive the
    exhaustive and sampled rearrangeability checkers and the Beneš looping
    algorithm. *)

type t = int array
(** [p.(i)] is the image of [i].  All values distinct, in [0, length p). *)

val identity : int -> t

val is_valid : t -> bool
(** True iff the array is a permutation of [0, n). *)

val compose : t -> t -> t
(** [compose p q] maps [i] to [p.(q.(i))]. *)

val inverse : t -> t

val apply : t -> int -> int

val shuffle : rand_int:(int -> int) -> int -> t
(** [shuffle ~rand_int n] is a Fisher–Yates-uniform permutation, where
    [rand_int k] returns a uniform value in [0, k). *)

val iter_all : int -> (t -> unit) -> unit
(** Enumerate all [n!] permutations (Heap's algorithm).  The callback
    receives a scratch array it must not retain. *)

val count_fixed_points : t -> int

val swap_distance : t -> int
(** Minimum number of transpositions writing the permutation
    ([n] minus number of cycles). *)

val cycles : t -> int list list
(** Cycle decomposition; each cycle lists its elements in traversal order. *)

val rotation : int -> int -> t
(** [rotation n k] maps [i] to [(i + k) mod n]. *)

val reversal : int -> t
(** [reversal n] maps [i] to [n - 1 - i]. *)

val pp : Format.formatter -> t -> unit
