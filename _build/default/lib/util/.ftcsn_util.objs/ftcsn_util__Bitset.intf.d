lib/util/bitset.mli:
