lib/util/combinat.ml: Array Float Lazy
