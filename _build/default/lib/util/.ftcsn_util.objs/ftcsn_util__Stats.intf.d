lib/util/stats.mli:
