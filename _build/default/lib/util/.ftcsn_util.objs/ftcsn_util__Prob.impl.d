lib/util/prob.ml: Combinat Float
