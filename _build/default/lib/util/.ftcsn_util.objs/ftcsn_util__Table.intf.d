lib/util/table.mli:
