lib/util/bitset.ml: Array List
