lib/util/prob.mli:
