lib/util/perm.mli: Format
