lib/util/combinat.mli:
