lib/util/vec.mli:
