lib/util/perm.ml: Array Format List
