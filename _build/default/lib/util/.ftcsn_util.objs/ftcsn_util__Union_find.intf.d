lib/util/union_find.mli:
