(** Streaming summary statistics (Welford) and simple aggregates. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0.0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0.0 with fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val sum : t -> float

val of_array : float array -> t

val median_of_sorted : float array -> float
(** Median of an ascending-sorted array.  @raise Invalid_argument if empty. *)

val percentile_of_sorted : float array -> float -> float
(** [percentile_of_sorted a q] with q in [0,1], linear interpolation. *)
