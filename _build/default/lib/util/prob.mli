(** Tail bounds and interval estimates used by the reliability analyses.

    The paper's Lemmas 2–7 are all of the form "the probability of the bad
    event is at most (an explicit exponential)".  These helpers compute those
    explicit bounds so experiments can print predicted-vs-measured columns. *)

val binomial_tail_ge : n:int -> p:float -> k:int -> float
(** P[Bin(n, p) >= k], computed in log space; exact summation. *)

val binomial_tail_le : n:int -> p:float -> k:int -> float
(** P[Bin(n, p) <= k]. *)

val chernoff_upper : n:int -> p:float -> k:int -> float
(** Chernoff bound on P[Bin(n,p) >= k] via relative entropy:
    exp(-n * D(k/n || p)) for k/n > p, 1.0 otherwise.  This is the style of
    estimate behind the paper's Lemma 4. *)

val wilson_interval : successes:int -> trials:int -> z:float -> float * float
(** Wilson score interval for a Bernoulli parameter; [z] is the normal
    quantile (1.96 for 95%). *)

val moore_shannon_bound : eps:float -> len:int -> count:int -> float
(** [moore_shannon_bound ~eps ~len ~count] = 1 - (1 - eps^len)^count, an
    upper bound on the probability that at least one of [count] disjoint
    length-[len] paths fails entirely — the form used in Lemma 2's
    "(1 - (1/4)^{3j})^{n/84}" argument, returned as the complement for
    direct comparison. *)

val pow : float -> int -> float
(** [pow x k] = x^k for k >= 0 by binary exponentiation, avoiding [**]'s
    transcendental path on exact small cases. *)
