type t = {
  words : int array; (* 63-bit words would waste a bit; we use all 63 usable *)
  cap : int;
}

let bits_per_word = 63

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; cap = n }

let capacity t = t.cap

let check t i =
  if i < 0 || i >= t.cap then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let copy t = { words = Array.copy t.words; cap = t.cap }

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i l -> i :: l) t [])

let same_cap a b = if a.cap <> b.cap then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_cap dst src;
  for w = 0 to Array.length dst.words - 1 do
    dst.words.(w) <- dst.words.(w) lor src.words.(w)
  done

let inter_cardinal a b =
  same_cap a b;
  let acc = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(w) land b.words.(w))
  done;
  !acc

let disjoint a b = inter_cardinal a b = 0
