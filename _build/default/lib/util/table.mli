(** ASCII table rendering for the experiment harness.

    Every experiment in EXPERIMENTS.md prints through this module so that
    paper-style rows ("n, size, size/(n log^2 n), ...") come out aligned and
    machine-greppable. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rule : t -> unit
(** Insert a horizontal separator before the next row. *)

val render : t -> string

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(** Cell formatting helpers. *)

val fi : int -> string

val ff : ?decimals:int -> float -> string

val fe : float -> string
(** Scientific notation with two significant decimals, e.g. ["1.23e-04"]. *)

val fratio : float -> float -> string
(** ["a/b"] as a fixed-point ratio, ["-"] when the denominator is zero. *)
