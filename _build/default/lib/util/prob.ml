let pow x k =
  if k < 0 then invalid_arg "Prob.pow";
  let rec go base k acc =
    if k = 0 then acc
    else go (base *. base) (k / 2) (if k land 1 = 1 then acc *. base else acc)
  in
  go x k 1.0

(* log of the binomial pmf at k, stable for large n *)
let log_pmf ~n ~p ~k =
  if p <= 0.0 then (if k = 0 then 0.0 else neg_infinity)
  else if p >= 1.0 then (if k = n then 0.0 else neg_infinity)
  else
    Combinat.log_binomial n k
    +. (float_of_int k *. log p)
    +. (float_of_int (n - k) *. log (1.0 -. p))

let binomial_tail_ge ~n ~p ~k =
  if k <= 0 then 1.0
  else if k > n then 0.0
  else begin
    (* Sum pmf from k to n in log space, largest-first for stability. *)
    let acc = ref 0.0 in
    for i = k to n do
      acc := !acc +. exp (log_pmf ~n ~p ~k:i)
    done;
    Float.min 1.0 !acc
  end

let binomial_tail_le ~n ~p ~k =
  if k >= n then 1.0
  else if k < 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for i = 0 to k do
      acc := !acc +. exp (log_pmf ~n ~p ~k:i)
    done;
    Float.min 1.0 !acc
  end

let relative_entropy a p =
  let term x y =
    if x = 0.0 then 0.0 else x *. log (x /. y)
  in
  term a p +. term (1.0 -. a) (1.0 -. p)

let chernoff_upper ~n ~p ~k =
  let a = float_of_int k /. float_of_int n in
  if a <= p then 1.0
  else exp (-.float_of_int n *. relative_entropy a p)

let wilson_interval ~successes ~trials ~z =
  if trials = 0 then (0.0, 1.0)
  else begin
    let n = float_of_int trials in
    let phat = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let centre = (phat +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z /. denom
      *. sqrt ((phat *. (1.0 -. phat) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    (Float.max 0.0 (centre -. half), Float.min 1.0 (centre +. half))
  end

let moore_shannon_bound ~eps ~len ~count =
  let p_path_all_closed = pow eps len in
  1.0 -. pow (1.0 -. p_path_all_closed) count
