type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let make n x =
  if n < 0 then invalid_arg "Vec.make";
  { data = Array.make (max n 1) x; len = n }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else 2 * cap in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  v.data.(v.len)

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.len - 1)

let clear v = v.len <- 0

let to_array v = Array.sub v.data 0 v.len

let of_array a = { data = Array.copy a; len = Array.length a }

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list v = List.init v.len (fun i -> v.data.(i))
