(** Subset enumeration and counting helpers.

    Superconcentrator verification quantifies over all r-subsets of inputs
    and outputs (paper, §2); small instances are checked exhaustively with
    these iterators, large ones by sampling. *)

val binomial : int -> int -> float
(** [binomial n k] = C(n, k) as a float (exact for small arguments, may be
    [infinity] for very large ones). *)

val log_binomial : int -> int -> float
(** Natural log of C(n, k), computed stably via [log_factorial]. *)

val log_factorial : int -> float
(** ln(n!), via a Stirling-series tail for large n, exact summation below. *)

val iter_subsets : n:int -> k:int -> (int array -> unit) -> unit
(** Enumerate all k-subsets of [0, n) in lexicographic order.  The callback
    receives a scratch array (sorted ascending) it must not retain. *)

val subset_count : n:int -> k:int -> int
(** C(n, k) as an int.  @raise Invalid_argument on overflow. *)

val iter_all_masks : int -> (int -> unit) -> unit
(** Enumerate all bitmasks of [n] items, [n <= 62]. *)

val choose_indices : rand_int:(int -> int) -> n:int -> k:int -> int array
(** Uniform k-subset of [0, n), sorted ascending, by partial Fisher–Yates. *)
