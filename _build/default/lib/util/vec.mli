(** Growable arrays.

    OCaml 5.1 does not ship [Dynarray]; this is a small, allocation-conscious
    replacement used throughout the graph builders and routing scratch
    structures.  Elements beyond [length] are garbage and never observed. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty vector. *)

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] raises [Invalid_argument] when [i] is out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** Append one element, growing the backing store geometrically. *)

val pop : 'a t -> 'a
(** Remove and return the last element.  @raise Invalid_argument if empty. *)

val last : 'a t -> 'a

val clear : 'a t -> unit
(** Reset to length 0 (keeps the backing store). *)

val to_array : 'a t -> 'a array
(** Fresh array copy of the live prefix. *)

val of_array : 'a array -> 'a t

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list
