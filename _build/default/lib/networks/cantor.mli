(** Cantor networks: strictly nonblocking at Θ(n log² n) size.

    A Cantor network stacks m = log₂ n parallel Beneš copies; input i fans
    out to its wire in every copy, and every copy's wire j feeds output j.
    A counting argument shows m = log₂ n copies make the network strictly
    nonblocking under greedy routing.  Its n log² n size is the same
    asymptotic the paper's fault-tolerant construction pays — so the paper
    can be read as "fault tolerance costs no more than Cantor-style
    nonblocking" — which makes this the natural fault-free comparator in
    experiments E2/E8. *)

val make : ?copies:int -> int -> Network.t
(** [make n] with n a power of two ≥ 2; [copies] defaults to
    max 1 (log₂ n). *)
