(** Concentrators: the building block beneath superconcentrators.

    An (n, m, c)-concentrator is a bipartite graph with n inputs and
    m ≤ n outputs in which every set of k ≤ c inputs has k vertex-disjoint
    paths to (distinct) outputs — equivalently, by Hall's theorem, every
    input set S with |S| ≤ c has |Γ(S)| ≥ |S|.  Margulis [M] ("Explicit
    constructions of concentrators") and Gabber–Galil [GG] built the first
    explicit linear-size families; {!Valiant_sc} consumes them
    recursively.  This module wraps bipartite graphs with concentration
    certificates (exact via matchings on small instances, sampled above)
    and provides random and expander-backed constructions. *)

type t = {
  graph : Ftcsn_expander.Bipartite.t;
  capacity : int;  (** the c of the definition *)
}

val random :
  rng:Ftcsn_prng.Rng.t -> inputs:int -> outputs:int -> degree:int -> t
(** Seeded random bipartite concentrator with capacity ⌊outputs/2⌋
    claimed (certify before relying on it). *)

val of_expander : Ftcsn_expander.Bipartite.t -> capacity:int -> t

val verify_exhaustive : t -> [ `Certified | `Refuted of int array ]
(** Check Hall's condition for every input set of size ≤ capacity
    (via maximum matching per deficient candidate); exponential — small
    instances only.  [`Refuted s] returns a deficient input set.
    @raise Invalid_argument when inputs > 20. *)

val verify_sampled :
  t -> trials:int -> rng:Ftcsn_prng.Rng.t -> int array option
(** Randomised Hall search: matchings on random ≤capacity subsets plus
    greedy shrinking; [Some s] is a definite deficient set. *)

val max_concentration : t -> k:int -> int
(** The largest matching saturating some k-subset... more precisely the
    maximum matching size between the full input side and outputs,
    capped at k: equals k iff every k-subset chosen greedily can be
    matched (used as a cheap upper-level sanity check). *)
