(** The n × m crossbar: one switch per (input, output) pair.

    The trivially strictly nonblocking network — and, at n² switches, the
    cost the paper's constructions undercut.  Also the building block of
    Clos networks. *)

val make : ?name:string -> n:int -> m:int -> unit -> Network.t

val square : int -> Network.t
(** [square n] = [make ~n ~m:n]. *)
