lib/networks/concentrator.mli: Ftcsn_expander Ftcsn_prng
