lib/networks/cantor.mli: Network
