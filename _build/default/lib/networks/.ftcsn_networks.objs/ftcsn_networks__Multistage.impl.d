lib/networks/multistage.ml: Array Clos Ftcsn_graph Ftcsn_util Network Printf
