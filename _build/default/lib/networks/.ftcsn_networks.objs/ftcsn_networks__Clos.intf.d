lib/networks/clos.mli: Ftcsn_util Network
