lib/networks/valiant_sc.ml: Array Ftcsn_graph Ftcsn_prng Network Printf
