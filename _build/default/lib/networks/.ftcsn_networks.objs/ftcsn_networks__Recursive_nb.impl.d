lib/networks/recursive_nb.ml: Array Ftcsn_graph Ftcsn_prng Network Printf
