lib/networks/butterfly.ml: Array Ftcsn_graph List Network Printf
