lib/networks/crossbar.mli: Network
