lib/networks/butterfly.mli: Network
