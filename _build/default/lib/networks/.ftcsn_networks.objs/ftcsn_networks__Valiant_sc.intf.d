lib/networks/valiant_sc.mli: Ftcsn_prng Network
