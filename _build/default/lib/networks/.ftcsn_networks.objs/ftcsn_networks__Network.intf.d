lib/networks/network.mli: Format Ftcsn_graph
