lib/networks/concentrator.ml: Array Ftcsn_expander Ftcsn_flow Ftcsn_prng Ftcsn_util Fun
