lib/networks/benes.mli: Ftcsn_util Network
