lib/networks/benes.ml: Array Ftcsn_graph Ftcsn_util List Network Printf Stack
