lib/networks/clos.ml: Array Ftcsn_flow Ftcsn_graph Ftcsn_util Network Printf
