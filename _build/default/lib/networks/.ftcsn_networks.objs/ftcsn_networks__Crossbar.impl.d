lib/networks/crossbar.ml: Array Ftcsn_graph Network Printf
