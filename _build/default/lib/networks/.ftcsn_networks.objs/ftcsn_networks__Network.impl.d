lib/networks/network.ml: Array Format Ftcsn_graph Hashtbl
