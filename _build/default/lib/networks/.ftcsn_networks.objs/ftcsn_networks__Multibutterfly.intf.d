lib/networks/multibutterfly.mli: Ftcsn_prng Ftcsn_util Network
