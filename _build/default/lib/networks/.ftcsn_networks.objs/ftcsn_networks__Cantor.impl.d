lib/networks/cantor.ml: Array Benes Ftcsn_graph Network Printf
