lib/networks/multibutterfly.ml: Array Ftcsn_graph Ftcsn_prng List Network Printf
