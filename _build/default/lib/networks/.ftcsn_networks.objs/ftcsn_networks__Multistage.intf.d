lib/networks/multistage.mli: Ftcsn_util Network
