lib/networks/recursive_nb.mli: Ftcsn_graph Ftcsn_prng Network
