(** The k-dimensional butterfly (banyan) network.

    n = 2^k inputs, k+1 levels of n vertices; vertex (level, row) has a
    straight edge to (level+1, row) and a cross edge to
    (level+1, row xor 2^level).  Each input–output pair is joined by a
    {e unique} path, so the butterfly is neither rearrangeable nor
    fault-tolerant — the fragile baseline of experiment E7: one open
    failure on a path severs that pair for good. *)

val make : int -> Network.t
(** [make n] for n ≥ 2 a power of two. *)

val unique_path : n:int -> input:int -> output:int -> int list
(** The unique input→output path, as (level, row) vertex ids matching
    {!make}'s layout (level-major: id = level·n + row). *)
