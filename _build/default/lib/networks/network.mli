(** Circuit-switching networks: a digraph with distinguished input and
    output terminals (paper, §2).

    Size is the number of edges (switches); depth is the largest number of
    edges on any directed input→output path. *)

type t = {
  name : string;
  graph : Ftcsn_graph.Digraph.t;
  inputs : int array;
  outputs : int array;
}

val make :
  name:string -> graph:Ftcsn_graph.Digraph.t -> inputs:int array -> outputs:int array -> t
(** Validates that terminals are distinct vertices in range. *)

val n_inputs : t -> int

val n_outputs : t -> int

val size : t -> int
(** Number of switches (edges). *)

val depth : t -> int
(** Longest input→output path (graph must be acyclic). *)

val is_acyclic : t -> bool

val input_index : t -> int -> int option
(** Position of a vertex in the input array, if it is an input. *)

val output_index : t -> int -> int option

val terminals : t -> int list
(** All inputs then all outputs. *)

val reverse : t -> t
(** The mirror image (paper, §6): inputs and outputs exchanged and every
    edge reversed. *)

val pp : Format.formatter -> t -> unit
