module Digraph = Ftcsn_graph.Digraph

let make ?copies n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Cantor.make: n must be a power of two >= 2";
  let k =
    let rec go k acc = if acc = n then k else go (k + 1) (acc * 2) in
    go 0 1
  in
  let m = match copies with Some c -> max 1 c | None -> max 1 k in
  let b = Digraph.Builder.create () in
  let inputs = Array.init n (fun _ -> Digraph.Builder.add_vertex b) in
  let outputs = Array.init n (fun _ -> Digraph.Builder.add_vertex b) in
  (* Embed m Beneš copies by replaying their edge lists into our builder. *)
  for _copy = 1 to m do
    let benes = Benes.make n in
    let bn = Benes.network benes in
    let bg = bn.Network.graph in
    let offset = Digraph.Builder.add_vertices b (Digraph.vertex_count bg) in
    Digraph.iter_edges bg (fun ~eid:_ ~src ~dst ->
        ignore (Digraph.Builder.add_edge b ~src:(offset + src) ~dst:(offset + dst)));
    Array.iteri
      (fun i v -> ignore (Digraph.Builder.add_edge b ~src:inputs.(i) ~dst:(offset + v)))
      bn.Network.inputs;
    Array.iteri
      (fun j v -> ignore (Digraph.Builder.add_edge b ~src:(offset + v) ~dst:outputs.(j)))
      bn.Network.outputs
  done;
  Network.make
    ~name:(Printf.sprintf "cantor-%d-m%d" n m)
    ~graph:(Digraph.Builder.freeze b) ~inputs ~outputs
