(** Multibutterflies: butterflies with expander-based splitters
    (Leighton–Maggs [LM], cited in the paper as the practical route to
    fault tolerance in packet-routing networks).

    Level ℓ partitions rows into 2^ℓ blocks; a splitter sends each vertex
    of a block to [d] seeded-random neighbours in the upper half and [d]
    in the lower half of its block at the next level, replacing the
    butterfly's single straight/cross edges.  With d > 1 the redundancy
    lets the network route around faults; experiment E7 uses it as the
    middle baseline between the fragile butterfly and the paper's
    construction. *)

type t = {
  net : Network.t;
  n : int;
  levels : int;  (** log₂ n *)
  degree : int;
}

val make_structured : rng:Ftcsn_prng.Rng.t -> degree:int -> int -> t

val make : rng:Ftcsn_prng.Rng.t -> degree:int -> int -> Network.t
(** [make ~rng ~degree n] for n a power of two ≥ 2; degree ≥ 1 edges into
    each half-block. *)

val route :
  ?budget:int ->
  t ->
  allowed:(int -> bool) ->
  busy:(int -> bool) ->
  input:int ->
  output:int ->
  int list option
(** Levelled routing in the Leighton–Maggs style [LM]: at level ℓ the
    correct half of the current block is forced by bit (levels−ℓ−1) of
    the output row, but {e which} of the [degree] edges into that half is
    free — the redundancy that routes around faults (the plain butterfly
    is the degenerate d = 1 case with no choice).  Depth-first with
    backtracking over idle allowed vertices; [budget] (default 2000) caps
    vertex expansions. *)

val route_permutation :
  ?budget:int ->
  t ->
  allowed:(int -> bool) ->
  Ftcsn_util.Perm.t ->
  int list option array * int
(** Sequential greedy routing with internal busy tracking. *)
