(** Three-stage Clos networks [Cl].

    C(m, k, r) has r ingress k×m crossbars, m middle r×r crossbars and r
    egress m×k crossbars; n = rk terminals per side.  Clos (1953) proved
    strict nonblocking for m ≥ 2k − 1 and Slepian–Duguid rearrangeability
    for m ≥ k — the historical starting point of the paper's subject. *)

type params = {
  m : int;  (** middle switches *)
  k : int;  (** ports per edge switch *)
  r : int;  (** edge switches per side *)
}

val make : params -> Network.t
(** n = r·k inputs and outputs; size = 2rkm + mr². *)

val strictly_nonblocking_params : params -> bool
(** m ≥ 2k − 1. *)

val rearrangeable_params : params -> bool
(** m ≥ k. *)

val nonblocking : n:int -> Network.t
(** A strictly nonblocking Clos on [n] terminals with r = k ≈ √n
    (padding n up to a perfect square) and m = 2k − 1. *)

val rearrangeable : n:int -> Network.t
(** A rearrangeable Clos with m = k. *)

(** {1 Structured construction and Slepian–Duguid routing} *)

type built = {
  net : Network.t;
  params : params;
  l1 : int array array;  (** [l1.(i).(j)] joins ingress [i] to middle [j] *)
  l2 : int array array;  (** [l2.(j).(e)] joins middle [j] to egress [e] *)
}

val make_built : params -> built

val slepian_duguid : k:int -> r:int -> (int * int) array -> int array
(** The matching-decomposition core: given requests (ingress switch,
    egress switch) with at most [k] incident to any switch on either
    side, assign each request a middle index in [0, k) such that no two
    requests sharing an ingress or egress switch share a middle.  Used by
    {!route} and by {!Multistage.route}.
    @raise Invalid_argument if some switch has more than [k] requests. *)

val route : built -> Ftcsn_util.Perm.t -> int list array
(** Slepian–Duguid rearrangement: the requests form an (≤ k)-regular
    bipartite multigraph on ingress × egress switches; padding it to
    k-regular and peeling k perfect matchings (Hall guarantees each)
    assigns every request a middle switch, one matching per middle.
    Returns vertex-disjoint paths (input, ingress link, egress link,
    output) for every request.
    @raise Invalid_argument unless [m ≥ k] (rearrangeability threshold)
    and the permutation has arity r·k. *)
