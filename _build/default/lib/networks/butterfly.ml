module Digraph = Ftcsn_graph.Digraph

let log2_exact n =
  let rec go k acc = if acc = n then k else go (k + 1) (acc * 2) in
  if n < 1 then invalid_arg "Butterfly: n" else go 0 1

let make n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Butterfly.make: n must be a power of two >= 2";
  let k = log2_exact n in
  let b = Digraph.Builder.create () in
  let _first = Digraph.Builder.add_vertices b ((k + 1) * n) in
  let id level row = (level * n) + row in
  for level = 0 to k - 1 do
    for row = 0 to n - 1 do
      ignore (Digraph.Builder.add_edge b ~src:(id level row) ~dst:(id (level + 1) row));
      ignore
        (Digraph.Builder.add_edge b ~src:(id level row)
           ~dst:(id (level + 1) (row lxor (1 lsl level))))
    done
  done;
  Network.make
    ~name:(Printf.sprintf "butterfly-%d" n)
    ~graph:(Digraph.Builder.freeze b)
    ~inputs:(Array.init n (fun row -> id 0 row))
    ~outputs:(Array.init n (fun row -> id k row))

let unique_path ~n ~input ~output =
  let k = log2_exact n in
  let id level row = (level * n) + row in
  let rec go level row acc =
    if level = k then List.rev (id level row :: acc)
    else begin
      (* fix bit [level] of the row to match the output *)
      let bit = 1 lsl level in
      let row' = row land lnot bit lor (output land bit) in
      go (level + 1) row' (id level row :: acc)
    end
  in
  go 0 input []
