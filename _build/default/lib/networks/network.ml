module Digraph = Ftcsn_graph.Digraph
module Traverse = Ftcsn_graph.Traverse

type t = {
  name : string;
  graph : Digraph.t;
  inputs : int array;
  outputs : int array;
}

let make ~name ~graph ~inputs ~outputs =
  let n = Digraph.vertex_count graph in
  let seen = Hashtbl.create 64 in
  let check v =
    if v < 0 || v >= n then invalid_arg "Network.make: terminal out of range";
    if Hashtbl.mem seen v then invalid_arg "Network.make: duplicate terminal";
    Hashtbl.add seen v ()
  in
  Array.iter check inputs;
  Array.iter check outputs;
  { name; graph; inputs; outputs }

let n_inputs t = Array.length t.inputs

let n_outputs t = Array.length t.outputs

let size t = Digraph.edge_count t.graph

let depth t =
  Traverse.depth t.graph ~inputs:(Array.to_list t.inputs)
    ~outputs:(Array.to_list t.outputs)

let is_acyclic t = Traverse.is_acyclic t.graph

let find_index a v =
  let rec go i =
    if i >= Array.length a then None else if a.(i) = v then Some i else go (i + 1)
  in
  go 0

let input_index t v = find_index t.inputs v

let output_index t v = find_index t.outputs v

let terminals t = Array.to_list t.inputs @ Array.to_list t.outputs

let reverse t =
  {
    name = t.name ^ "-mirror";
    graph = Digraph.reverse t.graph;
    inputs = t.outputs;
    outputs = t.inputs;
  }

let pp ppf t =
  Format.fprintf ppf "%s: n=%dx%d size=%d depth=%d" t.name (n_inputs t)
    (n_outputs t) (size t) (depth t)
