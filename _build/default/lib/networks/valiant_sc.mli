(** Linear-size superconcentrators (Valiant [V] / Gabber–Galil [GG]
    recursion).

    S(n): a perfect matching from the n inputs straight to the n outputs,
    plus a degree-d concentrator into n/2 intermediate inputs, a recursive
    S(n/2), and the mirrored concentrator back out.  Any r input–output
    request splits into pairs served by the matching and at most n/2 pairs
    concentrated into the recursion, giving O(n) switches in total.  The
    concentrators here are seeded random bipartite graphs (certified by
    {!Ftcsn_expander.Check} in the tests); the paper cites this family as
    the size-optimal fault-free baseline an (ε, δ)-superconcentrator must
    be compared against (Ω(n) vs its Ω(n log² n)). *)

val make : rng:Ftcsn_prng.Rng.t -> ?degree:int -> ?cutoff:int -> int -> Network.t
(** [make ~rng n]: an n-superconcentrator candidate; [degree] (default 6)
    is the concentrator degree, [cutoff] (default 8) the size below which
    a crossbar terminates the recursion.  [n] must be ≥ 1. *)
