module Digraph = Ftcsn_graph.Digraph

let make ?name ~n ~m () =
  if n < 1 || m < 1 then invalid_arg "Crossbar.make";
  let b = Digraph.Builder.create () in
  let inputs = Array.init n (fun _ -> Digraph.Builder.add_vertex b) in
  let outputs = Array.init m (fun _ -> Digraph.Builder.add_vertex b) in
  Array.iter
    (fun i ->
      Array.iter (fun o -> ignore (Digraph.Builder.add_edge b ~src:i ~dst:o)) outputs)
    inputs;
  let name =
    match name with Some s -> s | None -> Printf.sprintf "crossbar-%dx%d" n m
  in
  Network.make ~name ~graph:(Digraph.Builder.freeze b) ~inputs ~outputs

let square n = make ~n ~m:n ()
