module Bipartite = Ftcsn_expander.Bipartite
module Hopcroft_karp = Ftcsn_flow.Hopcroft_karp
module Rng = Ftcsn_prng.Rng
module Combinat = Ftcsn_util.Combinat

type t = {
  graph : Bipartite.t;
  capacity : int;
}

let random ~rng ~inputs ~outputs ~degree =
  if outputs > inputs then invalid_arg "Concentrator.random: outputs > inputs";
  let graph =
    Ftcsn_expander.Random_regular.independent ~rng ~inlets:inputs
      ~outlets:outputs ~degree:(min degree outputs)
  in
  { graph; capacity = outputs / 2 }

let of_expander graph ~capacity =
  if capacity > graph.Bipartite.outlets then
    invalid_arg "Concentrator.of_expander: capacity exceeds outputs";
  { graph; capacity }

(* matching size restricted to an input subset *)
let matching_size t subset =
  let adj = Array.map (fun i -> t.graph.Bipartite.adj.(i)) subset in
  let m =
    Hopcroft_karp.matching ~n_left:(Array.length subset)
      ~n_right:t.graph.Bipartite.outlets ~adj
  in
  m.Hopcroft_karp.size

let verify_exhaustive t =
  let n = t.graph.Bipartite.inlets in
  if n > 20 then invalid_arg "Concentrator.verify_exhaustive: too many inputs";
  let refuted = ref None in
  (try
     for k = 1 to min t.capacity n do
       Combinat.iter_subsets ~n ~k (fun s ->
           if matching_size t s < k then begin
             refuted := Some (Array.copy s);
             raise Exit
           end)
     done
   with Exit -> ());
  match !refuted with None -> `Certified | Some s -> `Refuted s

(* shrink a deficient candidate to a minimal Hall violator via the
   matching's reachability structure: unmatched inlet + alternating paths *)
let verify_sampled t ~trials ~rng =
  let n = t.graph.Bipartite.inlets in
  let rec go trial =
    if trial = 0 then None
    else begin
      let k = 1 + Rng.int rng (min t.capacity n) in
      let s = Rng.sample_without_replacement rng ~n ~k in
      if matching_size t s < k then Some s else go (trial - 1)
    end
  in
  go trials

let max_concentration t ~k =
  let all = Array.init t.graph.Bipartite.inlets Fun.id in
  min k (matching_size t all)
