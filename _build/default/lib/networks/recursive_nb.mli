(** The recursive strictly-nonblocking construction of Pippenger [P82],
    as specialised in §6 of the paper.

    The untruncated network has 2L+1 stages (L = levels): β^L inputs on
    stage 0, β^L outputs on stage 2L, and W = wf·β^L vertices on every
    other stage (paper: β = 4, wf = 64, edge degree 10).  Stage i
    (1 ≤ i ≤ L) is partitioned into β^(L−i) blocks of wf·β^i vertices;
    between stages i and i+1 each child block is joined to every quarter
    of its parent block by unions of random perfect matchings so that
    every vertex has out- and in-degree exactly [degree] — the
    (32·4^i, 33.07·4^i, 64·4^i)-expanding graphs of the paper, realised as
    seeded random expanders (Bassalygo–Pinsker flavour) and certified
    separately.  The right half is the mirror image of the left.

    The paper's fault-tolerant network 𝒩 uses this construction {e scaled
    up} (levels = u + γ) and {e truncated} (first and last γ stages
    removed); the [trim] and [first_stage]/[last_stage] hooks exist
    precisely so the core library can graft its directed grids onto the
    exposed blocks. *)

type params = {
  branching : int;  (** β: block fan (paper: 4) *)
  width_factor : int;  (** wf: block width at level 0 (paper: 64) *)
  degree : int;  (** out/in-degree inside expanding graphs (paper: 10) *)
}

val paper_params : params

val scaled_params : ?branching:int -> ?width_factor:int -> ?degree:int -> unit -> params
(** Defaults: β = 4, wf = 4, degree = 6 — same shape, test-sized
    constants. *)

type t = {
  stages : int array array;
      (** retained stages (outermost [trim] stages removed), in order *)
  levels : int;
  trim : int;
  params : params;
}

val build :
  builder:Ftcsn_graph.Digraph.Builder.t ->
  rng:Ftcsn_prng.Rng.t ->
  params:params ->
  levels:int ->
  trim:int ->
  ?first_stage:int array ->
  ?last_stage:int array ->
  unit ->
  t
(** Emit the construction into [builder].  [trim] removes that many stages
    from each end (0 ≤ trim ≤ levels).  When provided, [first_stage]
    ([last_stage]) supplies pre-existing builder vertices to use as the
    first (last) retained stage — they must number W when trim ≥ 1, or
    β^levels when trim = 0.  Fresh vertices are allocated otherwise. *)

val block_width : params -> level:int -> int
(** wf·β^level. *)

val blocks_of_stage : t -> int -> int array array
(** Partition of a retained stage (by index into [stages]) into its
    blocks, outermost level structure applied symmetrically. *)

val make : rng:Ftcsn_prng.Rng.t -> params:params -> levels:int -> Network.t * t
(** Standalone untruncated network (trim = 0) with β^levels terminals. *)
