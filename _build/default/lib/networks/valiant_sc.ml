module Digraph = Ftcsn_graph.Digraph
module Rng = Ftcsn_prng.Rng

(* Recursive scheme, working over already-allocated terminal vertices:
   build ins outs adds (1) matching edges ins.(i) -> outs.(i), (2) a random
   degree-d concentrator ins -> mid (|mid| = ceil n/2), (3) recursion from
   mid to mid', (4) the reversed concentrator mid' -> outs. *)
let make ~rng ?(degree = 6) ?(cutoff = 8) n =
  if n < 1 then invalid_arg "Valiant_sc.make";
  let b = Digraph.Builder.create () in
  let inputs = Array.init n (fun _ -> Digraph.Builder.add_vertex b) in
  let outputs = Array.init n (fun _ -> Digraph.Builder.add_vertex b) in
  let rec build ins outs =
    let n = Array.length ins in
    if n <= cutoff then begin
      (* complete bipartite terminator *)
      Array.iter
        (fun i ->
          Array.iter
            (fun o -> ignore (Digraph.Builder.add_edge b ~src:i ~dst:o))
            outs)
        ins
    end
    else begin
      for i = 0 to n - 1 do
        ignore (Digraph.Builder.add_edge b ~src:ins.(i) ~dst:outs.(i))
      done;
      let half = (n + 1) / 2 in
      let mid = Array.init half (fun _ -> Digraph.Builder.add_vertex b) in
      let mid' = Array.init half (fun _ -> Digraph.Builder.add_vertex b) in
      let d = min degree half in
      Array.iter
        (fun i ->
          let targets = Rng.sample_without_replacement rng ~n:half ~k:d in
          Array.iter
            (fun t -> ignore (Digraph.Builder.add_edge b ~src:i ~dst:mid.(t)))
            targets)
        ins;
      Array.iter
        (fun o ->
          let sources = Rng.sample_without_replacement rng ~n:half ~k:d in
          Array.iter
            (fun s -> ignore (Digraph.Builder.add_edge b ~src:mid'.(s) ~dst:o))
            sources)
        outs;
      build mid mid'
    end
  in
  build inputs outputs;
  Network.make
    ~name:(Printf.sprintf "valiant-sc-%d" n)
    ~graph:(Digraph.Builder.freeze b) ~inputs ~outputs
