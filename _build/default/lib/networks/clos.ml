module Digraph = Ftcsn_graph.Digraph
module Hopcroft_karp = Ftcsn_flow.Hopcroft_karp

type params = {
  m : int;
  k : int;
  r : int;
}

type built = {
  net : Network.t;
  params : params;
  l1 : int array array;
  l2 : int array array;
}

let make_built ({ m; k; r } as params) =
  if m < 1 || k < 1 || r < 1 then invalid_arg "Clos.make";
  let b = Digraph.Builder.create () in
  let inputs = Array.init (r * k) (fun _ -> Digraph.Builder.add_vertex b) in
  let outputs = Array.init (r * k) (fun _ -> Digraph.Builder.add_vertex b) in
  (* link vertices: l1.(i).(j) joins ingress i to middle j;
     l2.(j).(e) joins middle j to egress e *)
  let l1 =
    Array.init r (fun _ -> Array.init m (fun _ -> Digraph.Builder.add_vertex b))
  in
  let l2 =
    Array.init m (fun _ -> Array.init r (fun _ -> Digraph.Builder.add_vertex b))
  in
  (* ingress crossbars: K(k, m) *)
  for i = 0 to r - 1 do
    for p = 0 to k - 1 do
      for j = 0 to m - 1 do
        ignore (Digraph.Builder.add_edge b ~src:inputs.((i * k) + p) ~dst:l1.(i).(j))
      done
    done
  done;
  (* middle crossbars: K(r, r) *)
  for j = 0 to m - 1 do
    for i = 0 to r - 1 do
      for e = 0 to r - 1 do
        ignore (Digraph.Builder.add_edge b ~src:l1.(i).(j) ~dst:l2.(j).(e))
      done
    done
  done;
  (* egress crossbars: K(m, k) *)
  for e = 0 to r - 1 do
    for j = 0 to m - 1 do
      for p = 0 to k - 1 do
        ignore
          (Digraph.Builder.add_edge b ~src:l2.(j).(e) ~dst:outputs.((e * k) + p))
      done
    done
  done;
  let net =
    Network.make
      ~name:(Printf.sprintf "clos-m%d-k%d-r%d" m k r)
      ~graph:(Digraph.Builder.freeze b) ~inputs ~outputs
  in
  { net; params; l1; l2 }

let make params = (make_built params).net

let strictly_nonblocking_params { m; k; _ } = m >= (2 * k) - 1

let rearrangeable_params { m; k; _ } = m >= k

let square_split n =
  let k = int_of_float (ceil (sqrt (float_of_int n))) in
  let r = (n + k - 1) / k in
  (k, r)

let nonblocking ~n =
  let k, r = square_split n in
  make { m = (2 * k) - 1; k; r }

let rearrangeable ~n =
  let k, r = square_split n in
  make { m = k; k; r }

(* Slepian-Duguid: decompose the request multigraph into k perfect
   matchings and send the t-th matching through middle switch t. *)
let slepian_duguid ~k ~r requests =
  let n = Array.length requests in
  let real = Array.make_matrix r r 0 in
  let queues = Array.make_matrix r r [] in
  for i = n - 1 downto 0 do
    let a, bsw = requests.(i) in
    if a < 0 || a >= r || bsw < 0 || bsw >= r then
      invalid_arg "Clos.slepian_duguid: switch index out of range";
    real.(a).(bsw) <- real.(a).(bsw) + 1;
    queues.(a).(bsw) <- i :: queues.(a).(bsw)
  done;
  let row_total a = Array.fold_left ( + ) 0 real.(a) in
  for a = 0 to r - 1 do
    if row_total a > k then invalid_arg "Clos.slepian_duguid: overloaded switch"
  done;
  (* pad with dummies to a k-regular bipartite multigraph *)
  let counts = Array.map Array.copy real in
  let row_sum a = Array.fold_left ( + ) 0 counts.(a) in
  let col_sum bsw =
    let acc = ref 0 in
    for a = 0 to r - 1 do
      acc := !acc + counts.(a).(bsw)
    done;
    !acc
  in
  let a = ref 0 and bsw = ref 0 in
  while !a < r do
    if row_sum !a >= k then incr a
    else begin
      while !bsw < r && col_sum !bsw >= k do
        incr bsw
      done;
      if !bsw >= r then incr a (* rows full elsewhere; cannot happen *)
      else begin
        let add = min (k - row_sum !a) (k - col_sum !bsw) in
        counts.(!a).(!bsw) <- counts.(!a).(!bsw) + add
      end
    end
  done;
  let middle_of = Array.make n (-1) in
  for round = 0 to k - 1 do
    (* perfect matching on the support of [counts]; the multigraph is
       (k - round)-regular so Hall guarantees one *)
    let adj =
      Array.init r (fun x ->
          let out = ref [] in
          for y = r - 1 downto 0 do
            if counts.(x).(y) > 0 then out := y :: !out
          done;
          Array.of_list !out)
    in
    let matching = Hopcroft_karp.matching ~n_left:r ~n_right:r ~adj in
    if matching.Hopcroft_karp.size <> r then
      invalid_arg "Clos.slepian_duguid: internal matching deficiency";
    Array.iteri
      (fun x y ->
        counts.(x).(y) <- counts.(x).(y) - 1;
        if real.(x).(y) > 0 then begin
          real.(x).(y) <- real.(x).(y) - 1;
          match queues.(x).(y) with
          | req :: rest ->
              queues.(x).(y) <- rest;
              middle_of.(req) <- round
          | [] -> assert false
        end)
      matching.Hopcroft_karp.pair_left
  done;
  middle_of

let route built pi =
  let { m; k; r } = built.params in
  if m < k then invalid_arg "Clos.route: need m >= k (rearrangeable)";
  if Array.length pi <> r * k then invalid_arg "Clos.route: arity";
  if not (Ftcsn_util.Perm.is_valid pi) then
    invalid_arg "Clos.route: not a permutation";
  let n = r * k in
  let requests = Array.init n (fun i -> (i / k, pi.(i) / k)) in
  let middle_of = slepian_duguid ~k ~r requests in
  Array.init n (fun i ->
      let a = i / k and bsw = pi.(i) / k in
      let j = middle_of.(i) in
      assert (j >= 0);
      [
        built.net.Network.inputs.(i);
        built.l1.(a).(j);
        built.l2.(j).(bsw);
        built.net.Network.outputs.(pi.(i));
      ])
