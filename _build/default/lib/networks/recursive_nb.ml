module Digraph = Ftcsn_graph.Digraph
module Rng = Ftcsn_prng.Rng

type params = {
  branching : int;
  width_factor : int;
  degree : int;
}

let paper_params = { branching = 4; width_factor = 64; degree = 10 }

let scaled_params ?(branching = 4) ?(width_factor = 4) ?(degree = 6) () =
  { branching; width_factor; degree }

type t = {
  stages : int array array;
  levels : int;
  trim : int;
  params : params;
}

let ipow base e =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  if e < 0 then invalid_arg "ipow" else go 1 e

let block_width params ~level = params.width_factor * ipow params.branching level

(* Number of matching rounds between child c and quarter q of its parent,
   chosen so both row sums and column sums equal [degree]. *)
let rounds params ~c ~q =
  let base = params.degree / params.branching in
  let rem = params.degree mod params.branching in
  base + if (c + q) mod params.branching < rem then 1 else 0

(* One random perfect matching from [srcs] to [dsts] (equal sizes). *)
let add_matching builder rng srcs dsts =
  let s = Array.length srcs in
  assert (Array.length dsts = s);
  let pi = Rng.permutation rng s in
  for x = 0 to s - 1 do
    ignore (Digraph.Builder.add_edge builder ~src:srcs.(x) ~dst:dsts.(pi.(x)))
  done

let slice stage ~first ~width = Array.sub stage first width

let complete_bipartite builder srcs dsts =
  Array.iter
    (fun s ->
      Array.iter
        (fun d -> ignore (Digraph.Builder.add_edge builder ~src:s ~dst:d))
        dsts)
    srcs

let build ~builder ~rng ~params ~levels ~trim ?first_stage ?last_stage () =
  if levels < 1 then invalid_arg "Recursive_nb.build: levels >= 1";
  if trim < 0 || trim > levels then invalid_arg "Recursive_nb.build: trim";
  if params.branching < 2 || params.width_factor < 1 || params.degree < 1 then
    invalid_arg "Recursive_nb.build: params";
  let beta = params.branching in
  let l = levels in
  let width = block_width params ~level:l in
  let terminal_count = ipow beta l in
  let stage_width s = if s = 0 || s = 2 * l then terminal_count else width in
  let first_s = trim and last_s = (2 * l) - trim in
  let expect name arr s =
    if Array.length arr <> stage_width s then
      invalid_arg (Printf.sprintf "Recursive_nb.build: %s has wrong width" name)
  in
  (* allocate stages *)
  let stages =
    Array.init
      (last_s - first_s + 1)
      (fun idx ->
        let s = first_s + idx in
        if s = first_s then
          match first_stage with
          | Some arr ->
              expect "first_stage" arr s;
              arr
          | None ->
              Array.init (stage_width s) (fun _ -> Digraph.Builder.add_vertex builder)
        else if s = last_s then
          match last_stage with
          | Some arr ->
              expect "last_stage" arr s;
              arr
          | None ->
              Array.init (stage_width s) (fun _ -> Digraph.Builder.add_vertex builder)
        else
          Array.init (stage_width s) (fun _ -> Digraph.Builder.add_vertex builder))
  in
  let stage s = stages.(s - first_s) in
  (* expanding step from child-structured stage s (level i) up to
     parent-structured stage s+1 (level i+1) *)
  let expand_up s i =
    let s_width = block_width params ~level:i in
    let child_blocks = ipow beta (l - i) in
    for bidx = 0 to child_blocks - 1 do
      let p = bidx / beta and c = bidx mod beta in
      let child = slice (stage s) ~first:(bidx * s_width) ~width:s_width in
      for q = 0 to beta - 1 do
        let quarter =
          slice (stage (s + 1))
            ~first:((p * s_width * beta) + (q * s_width))
            ~width:s_width
        in
        for _ = 1 to rounds params ~c ~q do
          add_matching builder rng child quarter
        done
      done
    done
  in
  (* mirrored step from parent-structured stage s (level i+1) down to
     child-structured stage s+1 (level i) *)
  let expand_down s i =
    let s_width = block_width params ~level:i in
    let child_blocks = ipow beta (l - i) in
    for bidx = 0 to child_blocks - 1 do
      let p = bidx / beta and c = bidx mod beta in
      let child = slice (stage (s + 1)) ~first:(bidx * s_width) ~width:s_width in
      for q = 0 to beta - 1 do
        let quarter =
          slice (stage s)
            ~first:((p * s_width * beta) + (q * s_width))
            ~width:s_width
        in
        for _ = 1 to rounds params ~c ~q do
          add_matching builder rng quarter child
        done
      done
    done
  in
  for s = first_s to last_s - 1 do
    if s = 0 then begin
      (* terminal fan-in: groups of beta inputs -> level-1 blocks *)
      let bw = block_width params ~level:1 in
      for g = 0 to ipow beta (l - 1) - 1 do
        complete_bipartite builder
          (slice (stage 0) ~first:(g * beta) ~width:beta)
          (slice (stage 1) ~first:(g * bw) ~width:bw)
      done
    end
    else if s = (2 * l) - 1 then begin
      let bw = block_width params ~level:1 in
      for g = 0 to ipow beta (l - 1) - 1 do
        complete_bipartite builder
          (slice (stage s) ~first:(g * bw) ~width:bw)
          (slice (stage (2 * l)) ~first:(g * beta) ~width:beta)
      done
    end
    else if s < l then expand_up s s
    else begin
      (* s >= l: stage s has level 2l - s, stage s+1 has level 2l - s - 1 *)
      expand_down s ((2 * l) - s - 1)
    end
  done;
  { stages; levels; trim; params }

let blocks_of_stage t idx =
  let s = idx + t.trim in
  let l = t.levels in
  let stage = t.stages.(idx) in
  if s = 0 || s = 2 * l then Array.map (fun v -> [| v |]) stage
  else begin
    let level = if s <= l then s else (2 * l) - s in
    let bw = block_width t.params ~level in
    let count = Array.length stage / bw in
    Array.init count (fun b -> Array.sub stage (b * bw) bw)
  end

let make ~rng ~params ~levels =
  let builder = Digraph.Builder.create () in
  let t = build ~builder ~rng ~params ~levels ~trim:0 () in
  let graph = Digraph.Builder.freeze builder in
  let inputs = t.stages.(0) in
  let outputs = t.stages.(Array.length t.stages - 1) in
  ( Network.make
      ~name:
        (Printf.sprintf "recursive-nb-b%d-w%d-d%d-L%d" params.branching
           params.width_factor params.degree levels)
      ~graph ~inputs ~outputs,
    t )
