module Digraph = Ftcsn_graph.Digraph
module Rng = Ftcsn_prng.Rng

type t = {
  net : Network.t;
  n : int;
  levels : int;
  degree : int;
}

let make_raw ~rng ~degree n =
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Multibutterfly.make: n must be a power of two >= 2";
  if degree < 1 then invalid_arg "Multibutterfly.make: degree";
  let k =
    let rec go k acc = if acc = n then k else go (k + 1) (acc * 2) in
    go 0 1
  in
  let b = Digraph.Builder.create () in
  let _first = Digraph.Builder.add_vertices b ((k + 1) * n) in
  let id level row = (level * n) + row in
  for level = 0 to k - 1 do
    let block = n lsr level in
    let half = block / 2 in
    for row = 0 to n - 1 do
      let base = row land lnot (block - 1) in
      (* upper half keeps bit [k-1-level] clear, lower half sets it; a
         vertex gets [degree] random targets in each half *)
      let connect_half half_base =
        let d = min degree half in
        let targets = Rng.sample_without_replacement rng ~n:half ~k:d in
        Array.iter
          (fun t ->
            ignore
              (Digraph.Builder.add_edge b ~src:(id level row)
                 ~dst:(id (level + 1) (half_base + t))))
          targets
      in
      connect_half base;
      connect_half (base + half)
    done
  done;
  let net =
    Network.make
      ~name:(Printf.sprintf "multibutterfly-%d-d%d" n degree)
      ~graph:(Digraph.Builder.freeze b)
      ~inputs:(Array.init n (fun row -> id 0 row))
      ~outputs:(Array.init n (fun row -> id k row))
  in
  { net; n; levels = k; degree }

let make_structured ~rng ~degree n = make_raw ~rng ~degree n

let make ~rng ~degree n = (make_raw ~rng ~degree n).net

exception Found of int list

(* vertex ids are level * n + row by construction *)
let route ?(budget = 2000) t ~allowed ~busy ~input ~output =
  let g = t.net.Network.graph in
  let n = t.n and k = t.levels in
  let ok v = allowed v && not (busy v) in
  let steps = ref 0 in
  let tick () =
    incr steps;
    !steps <= budget
  in
  (* invariant: at level l the current row already agrees with [output] on
     its top l bits; the next hop must fix bit (k - l - 1) *)
  let rec walk v level acc =
    if level = k then raise (Found (List.rev (v :: acc)))
    else begin
      let bit = 1 lsl (k - level - 1) in
      let want = output land bit in
      Digraph.iter_out g v (fun ~dst ~eid:_ ->
          let row' = dst mod n in
          if row' land bit = want && tick () && ok dst then
            walk dst (level + 1) (v :: acc))
    end
  in
  let src = t.net.Network.inputs.(input) in
  if not (ok src && ok t.net.Network.outputs.(output)) then None
  else begin
    match walk src 0 [] with
    | () -> None
    | exception Found path -> Some path
  end

let route_permutation ?budget t ~allowed pi =
  let busy_arr = Array.make (Digraph.vertex_count t.net.Network.graph) false in
  let busy v = busy_arr.(v) in
  let success = ref 0 in
  let paths =
    Array.init (Array.length pi) (fun i ->
        match route ?budget t ~allowed ~busy ~input:i ~output:pi.(i) with
        | Some path ->
            List.iter (fun v -> busy_arr.(v) <- true) path;
            incr success;
            Some path
        | None -> None)
  in
  (paths, !success)
