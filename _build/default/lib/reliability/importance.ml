module Digraph = Ftcsn_graph.Digraph
module Rng = Ftcsn_prng.Rng

type estimate = {
  switch : int;
  open_importance : float;
  close_importance : float;
}

let importance ~trials ~rng ~graph ~eps ~event ~switches =
  let m = Digraph.edge_count graph in
  Array.iter
    (fun e ->
      if e < 0 || e >= m then invalid_arg "Importance.importance: switch id")
    switches;
  let counts_open = Array.make (Array.length switches) 0 in
  let counts_close = Array.make (Array.length switches) 0 in
  let counts_normal = Array.make (Array.length switches) 0 in
  for _ = 1 to trials do
    let pattern = Fault.sample rng ~eps_open:eps ~eps_close:eps ~m in
    Array.iteri
      (fun idx e ->
        let saved = pattern.(e) in
        pattern.(e) <- Fault.Normal;
        if event pattern then counts_normal.(idx) <- counts_normal.(idx) + 1;
        pattern.(e) <- Fault.Open_failure;
        if event pattern then counts_open.(idx) <- counts_open.(idx) + 1;
        pattern.(e) <- Fault.Closed_failure;
        if event pattern then counts_close.(idx) <- counts_close.(idx) + 1;
        pattern.(e) <- saved)
      switches
  done;
  let f c = float_of_int c /. float_of_int trials in
  Array.mapi
    (fun idx e ->
      {
        switch = e;
        open_importance = f counts_open.(idx) -. f counts_normal.(idx);
        close_importance = f counts_close.(idx) -. f counts_normal.(idx);
      })
    switches

let rank ~trials ~rng ~graph ~eps ~event ?(sample = 32) () =
  let m = Digraph.edge_count graph in
  let switches = Rng.sample_without_replacement rng ~n:m ~k:(min sample m) in
  let estimates = importance ~trials ~rng ~graph ~eps ~event ~switches in
  Array.sort
    (fun a b ->
      compare
        (b.open_importance +. b.close_importance)
        (a.open_importance +. a.close_importance))
    estimates;
  estimates
