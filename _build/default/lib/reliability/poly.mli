(** Exact failure polynomials.

    §3's δ-invariance argument rests on one structural fact: the failure
    probability of a network is a {e polynomial} in ε whose constant term
    vanishes ("the network does not fail unless some switch fails").
    This module computes that polynomial exactly for small networks by
    classifying each of the 3^m fault patterns by its failure count, so
    the argument can be exhibited rather than asserted: coefficients,
    evaluation, and the rescaling step P(εδ₁/δ₂) ≤ (δ₁/δ₂)·P(ε). *)

type t = {
  coeffs : float array;
      (** [coeffs.(k)] = Σ over failing patterns with exactly k failed
          switches of (number of open/closed assignments ways) /
          2^k-weighting folded in: concretely, P(ε) = Σ_k coeffs.(k) ·
          (2ε)^k · (1−2ε)^(m−k) when ε₁ = ε₂ = ε *)
  switches : int;  (** m *)
}

val failure_polynomial :
  Ftcsn_graph.Digraph.t -> (Fault.pattern -> bool) -> t
(** Exact coefficient extraction by enumeration (m ≤ {!Exact.max_edges}).
    [coeffs.(k)] counts the failing (pattern restricted to which switches
    failed and how) combinations with k failures, normalised so that
    {!eval} below is the exact failure probability. *)

val eval : t -> eps:float -> float
(** P(ε) at ε₁ = ε₂ = ε. *)

val constant_term_vanishes : t -> bool
(** coeffs.(0) = 0 — the §3 structural fact. *)

val delta_rescaling_bound : t -> eps:float -> ratio:float -> bool
(** Check P(ε·ratio) ≤ ratio · P(ε) for 0 < ratio ≤ 1 — the inequality
    behind δ-invariance (every monomial of degree ≥ 1 shrinks by at least
    [ratio]).  Numerical verification on this instance. *)

val pp : Format.formatter -> t -> unit
