(** Moore–Shannon (ε, ε′)-1-networks as series-parallel compositions
    (paper, Proposition 1).

    An (ε, ε′)-1-network is a two-terminal graph of unreliable switches
    whose two failure modes — {e open} (no input→output path survives) and
    {e short} (input and output contract through closed failures) — both
    have probability < ε′.  Moore and Shannon build them by alternating
    series composition (which squares the short probability) and parallel
    composition (which squares the open probability); iterating the 2×2
    quad squares both at a 4× size and 2× depth cost, giving the
    Proposition-1 scaling: size Θ((log 1/ε′)²), depth Θ(log 1/ε′).

    For series-parallel graphs both failure probabilities obey exact
    product recurrences (disjoint subnetworks fail independently and
    connectivity decomposes along the composition), so designs carry exact
    analytical bounds that the tests cross-check against {!Exact} and
    {!Monte_carlo}. *)

type spec =
  | Edge  (** a single switch *)
  | Series of spec list
  | Parallel of spec list

val quad : spec -> spec
(** [quad s] = series of two parallels of two copies of [s] — one
    Moore–Shannon amplification round. *)

val iterate_quad : int -> spec
(** [iterate_quad k] = [quad]^k applied to a single edge. *)

val size : spec -> int
(** Number of switches. *)

val depth : spec -> int
(** Longest input→output path, in switches. *)

val open_prob : spec -> eps_open:float -> eps_close:float -> float
(** Exact probability that no input→output path survives. *)

val short_prob : spec -> eps_open:float -> eps_close:float -> float
(** Exact probability that input and output contract through closed
    failures. *)

val design : eps:float -> eps':float -> spec
(** Smallest quad-iteration count whose exact open and short probabilities
    at switch failure rates ε₁ = ε₂ = ε are both < ε′.
    @raise Invalid_argument when ε ≥ 1/4 (amplification needs 2ε(2-ε) < 1,
    guaranteed below 1/4, mirroring the paper's 0 < ε < 1/2 with a safety
    margin for the quad gadget). *)

(** {1 Moore–Shannon rectangles}

    The original [MS] designs are j×k {e rectangles}: k parallel branches
    of j switches in series.  A rectangle drives the short probability
    like k·(ε(2−ε)…)ᵏ— precisely: shorts iff some branch is all-closed
    (probability 1−(1−ε^j)^k), opens iff every branch has an open switch
    (probability (1−(1−ε)^j)^k).  Deeper j fights shorts, wider k fights
    opens; {!design_rectangle} scans (j, k) for the smallest j·k meeting
    both targets, which often beats quad iteration on asymmetric
    targets. *)

val rectangle : j:int -> k:int -> spec
(** Parallel of k series-chains of j switches. *)

val design_rectangle :
  eps:float -> target_open:float -> target_short:float -> spec option
(** Smallest-area rectangle whose exact failure probabilities at
    ε₁ = ε₂ = [eps] are below the two targets; [None] if no rectangle
    with j, k ≤ 64 suffices. *)

type built = {
  graph : Ftcsn_graph.Digraph.t;
  input : int;
  output : int;
}

val build : spec -> built
(** Realise the spec as a two-terminal digraph (edges directed
    input→output). *)

val pp : Format.formatter -> spec -> unit
