module Digraph = Ftcsn_graph.Digraph

type t = {
  coeffs : float array;
  switches : int;
}

(* Classify every fault pattern by failure count: coeffs.(k) accumulates
   the number of failing patterns with k failed switches, each weighted
   2^-k so that eval's (2 eps)^k factor reproduces the per-pattern
   eps^k measure (each failed switch is open or closed, eps each). *)
let failure_polynomial g event =
  let m = Digraph.edge_count g in
  if m > Exact.max_edges then invalid_arg "Poly.failure_polynomial: too many edges";
  let coeffs = Array.make (m + 1) 0.0 in
  let pattern = Array.make m Fault.Normal in
  let rec go e failed =
    if e = m then begin
      if event pattern then
        coeffs.(failed) <- coeffs.(failed) +. (1.0 /. Ftcsn_util.Prob.pow 2.0 failed)
    end
    else begin
      pattern.(e) <- Fault.Normal;
      go (e + 1) failed;
      pattern.(e) <- Fault.Open_failure;
      go (e + 1) (failed + 1);
      pattern.(e) <- Fault.Closed_failure;
      go (e + 1) (failed + 1);
      pattern.(e) <- Fault.Normal
    end
  in
  go 0 0;
  { coeffs; switches = m }

let eval t ~eps =
  let two_eps = 2.0 *. eps in
  let acc = ref 0.0 in
  Array.iteri
    (fun k c ->
      if c <> 0.0 then
        acc :=
          !acc
          +. c
             *. Ftcsn_util.Prob.pow two_eps k
             *. Ftcsn_util.Prob.pow (1.0 -. two_eps) (t.switches - k))
    t.coeffs;
  !acc

let constant_term_vanishes t = t.coeffs.(0) = 0.0

let delta_rescaling_bound t ~eps ~ratio =
  if ratio <= 0.0 || ratio > 1.0 then invalid_arg "Poly.delta_rescaling_bound";
  eval t ~eps:(eps *. ratio) <= (ratio *. eval t ~eps) +. 1e-12

let pp ppf t =
  Format.fprintf ppf "P(eps) over %d switches; counts by failure weight: [%s]"
    t.switches
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.3g") t.coeffs)))
