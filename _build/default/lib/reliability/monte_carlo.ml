module Rng = Ftcsn_prng.Rng
module Prob = Ftcsn_util.Prob
module Digraph = Ftcsn_graph.Digraph

type estimate = {
  successes : int;
  trials : int;
  mean : float;
  ci_low : float;
  ci_high : float;
}

let of_counts ~successes ~trials =
  let mean =
    if trials = 0 then 0.0 else float_of_int successes /. float_of_int trials
  in
  let ci_low, ci_high = Prob.wilson_interval ~successes ~trials ~z:1.96 in
  { successes; trials; mean; ci_low; ci_high }

let estimate ~trials ~rng f =
  let successes = ref 0 in
  for _ = 1 to trials do
    let sub = Rng.split rng in
    if f sub then incr successes
  done;
  of_counts ~successes:!successes ~trials

let estimate_event ~trials ~rng ~graph ~eps_open ~eps_close f =
  let m = Digraph.edge_count graph in
  estimate ~trials ~rng (fun sub ->
      f (Fault.sample sub ~eps_open ~eps_close ~m))

let pp ppf e =
  Format.fprintf ppf "%.4f [%.4f, %.4f] (%d/%d)" e.mean e.ci_low e.ci_high
    e.successes e.trials
