(** Monte-Carlo estimation of failure probabilities with confidence
    intervals.

    The (ε, δ) properties of §3 are expectations over fault patterns; above
    ~13 edges exact enumeration (see {!Exact}) is infeasible, so experiments
    estimate them from seeded samples and report Wilson 95% intervals. *)

type estimate = {
  successes : int;
  trials : int;
  mean : float;
  ci_low : float;
  ci_high : float;
}

val estimate : trials:int -> rng:Ftcsn_prng.Rng.t -> (Ftcsn_prng.Rng.t -> bool) -> estimate
(** Run the Bernoulli experiment [trials] times on independent substreams
    split off [rng]; the estimate is of P[true]. *)

val estimate_event :
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  graph:Ftcsn_graph.Digraph.t ->
  eps_open:float ->
  eps_close:float ->
  (Fault.pattern -> bool) ->
  estimate
(** Specialisation: sample a fault pattern on [graph] per trial and test
    the event. *)

val pp : Format.formatter -> estimate -> unit
