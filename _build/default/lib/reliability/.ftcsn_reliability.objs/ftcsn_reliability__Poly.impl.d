lib/reliability/poly.ml: Array Exact Fault Format Ftcsn_graph Ftcsn_util Printf String
