lib/reliability/poly.mli: Fault Format Ftcsn_graph
