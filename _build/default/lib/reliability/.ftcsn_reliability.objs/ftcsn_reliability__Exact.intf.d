lib/reliability/exact.mli: Fault Ftcsn_graph
