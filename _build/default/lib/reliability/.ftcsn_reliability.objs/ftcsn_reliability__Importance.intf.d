lib/reliability/importance.mli: Fault Ftcsn_graph Ftcsn_prng
