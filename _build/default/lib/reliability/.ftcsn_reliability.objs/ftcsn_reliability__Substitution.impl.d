lib/reliability/substitution.ml: Array Fault Ftcsn_graph Sp_network Survivor
