lib/reliability/fault.mli: Format Ftcsn_graph Ftcsn_prng Ftcsn_util
