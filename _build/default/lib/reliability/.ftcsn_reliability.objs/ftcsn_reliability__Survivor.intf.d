lib/reliability/survivor.mli: Fault Ftcsn_graph
