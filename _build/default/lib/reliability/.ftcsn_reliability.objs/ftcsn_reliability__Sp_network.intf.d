lib/reliability/sp_network.mli: Format Ftcsn_graph
