lib/reliability/sp_network.ml: Format Ftcsn_graph List Option
