lib/reliability/exact.ml: Array Fault Ftcsn_graph
