lib/reliability/fault.ml: Array Format Ftcsn_graph Ftcsn_prng Ftcsn_util
