lib/reliability/hammock.mli: Ftcsn_graph Ftcsn_prng Monte_carlo
