lib/reliability/survivor.ml: Array Fault Ftcsn_graph Ftcsn_util Hashtbl List
