lib/reliability/substitution.mli: Fault Ftcsn_graph Sp_network
