lib/reliability/monte_carlo.ml: Fault Format Ftcsn_graph Ftcsn_prng Ftcsn_util
