lib/reliability/hammock.ml: Ftcsn_graph Monte_carlo Survivor
