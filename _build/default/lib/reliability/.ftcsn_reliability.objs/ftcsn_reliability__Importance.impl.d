lib/reliability/importance.ml: Array Fault Ftcsn_graph Ftcsn_prng
