lib/reliability/monte_carlo.mli: Fault Format Ftcsn_graph Ftcsn_prng
