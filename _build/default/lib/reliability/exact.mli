(** Exact event probabilities by enumeration of all 3^m fault patterns.

    Used to validate the Monte-Carlo estimator and the series-parallel
    recurrences of {!Sp_network} on small instances (m ≤ ~13; 3^13 ≈ 1.6M
    patterns). *)

val probability :
  Ftcsn_graph.Digraph.t ->
  eps_open:float ->
  eps_close:float ->
  (Fault.pattern -> bool) ->
  float
(** P[event] under the product measure of §3.  @raise Invalid_argument when
    the graph has more than [max_edges] edges. *)

val max_edges : int
(** Enumeration ceiling (13). *)
