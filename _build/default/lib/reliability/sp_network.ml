module Digraph = Ftcsn_graph.Digraph

type spec =
  | Edge
  | Series of spec list
  | Parallel of spec list

let quad s = Series [ Parallel [ s; s ]; Parallel [ s; s ] ]

let iterate_quad k =
  let rec go k acc = if k = 0 then acc else go (k - 1) (quad acc) in
  if k < 0 then invalid_arg "Sp_network.iterate_quad";
  go k Edge

let rec size = function
  | Edge -> 1
  | Series parts -> List.fold_left (fun acc p -> acc + size p) 0 parts
  | Parallel parts -> List.fold_left (fun acc p -> acc + size p) 0 parts

let rec depth = function
  | Edge -> 1
  | Series parts -> List.fold_left (fun acc p -> acc + depth p) 0 parts
  | Parallel parts -> List.fold_left (fun acc p -> max acc (depth p)) 0 parts

(* Exact two-failure-mode recurrences.
   open = the subnetwork cannot conduct (no surviving path);
   short = input and output contract through closed edges only.
   For a single switch: open <=> open failure; short <=> closed failure.
   Series: opens if any part opens; shorts only if all parts short.
   Parallel: opens only if all parts open; shorts if any part shorts. *)
let rec failure_probs spec ~eps_open ~eps_close =
  match spec with
  | Edge -> (eps_open, eps_close)
  | Series parts ->
      List.fold_left
        (fun (po, ps) part ->
          let po', ps' = failure_probs part ~eps_open ~eps_close in
          (1.0 -. ((1.0 -. po) *. (1.0 -. po')), ps *. ps'))
        (0.0, 1.0) parts
  | Parallel parts ->
      List.fold_left
        (fun (po, ps) part ->
          let po', ps' = failure_probs part ~eps_open ~eps_close in
          (po *. po', 1.0 -. ((1.0 -. ps) *. (1.0 -. ps'))))
        (1.0, 0.0) parts

let open_prob spec ~eps_open ~eps_close =
  fst (failure_probs spec ~eps_open ~eps_close)

let short_prob spec ~eps_open ~eps_close =
  snd (failure_probs spec ~eps_open ~eps_close)

let design ~eps ~eps' =
  if eps <= 0.0 || eps >= 0.25 then invalid_arg "Sp_network.design: need 0 < eps < 1/4";
  if eps' <= 0.0 then invalid_arg "Sp_network.design: eps' must be positive";
  let rec go k =
    if k > 40 then failwith "Sp_network.design: did not converge"
    else begin
      let spec = iterate_quad k in
      let po, ps = failure_probs spec ~eps_open:eps ~eps_close:eps in
      if po < eps' && ps < eps' then spec else go (k + 1)
    end
  in
  go 0

let rectangle ~j ~k =
  if j < 1 || k < 1 then invalid_arg "Sp_network.rectangle";
  Parallel (List.init k (fun _ -> Series (List.init j (fun _ -> Edge))))

let design_rectangle ~eps ~target_open ~target_short =
  if eps <= 0.0 || eps >= 0.5 then invalid_arg "Sp_network.design_rectangle";
  (* closed-form per-rectangle probabilities avoid re-walking the spec *)
  let open_prob_rect j k =
    let branch_opens = 1.0 -. ((1.0 -. eps) ** float_of_int j) in
    branch_opens ** float_of_int k
  in
  let short_prob_rect j k =
    let branch_shorts = eps ** float_of_int j in
    1.0 -. ((1.0 -. branch_shorts) ** float_of_int k)
  in
  let best = ref None in
  for j = 1 to 64 do
    for k = 1 to 64 do
      if open_prob_rect j k < target_open && short_prob_rect j k < target_short
      then begin
        match !best with
        | Some (bj, bk) when bj * bk <= j * k -> ()
        | _ -> best := Some (j, k)
      end
    done
  done;
  Option.map (fun (j, k) -> rectangle ~j ~k) !best

type built = {
  graph : Digraph.t;
  input : int;
  output : int;
}

let build spec =
  let b = Digraph.Builder.create () in
  let input = Digraph.Builder.add_vertex b in
  let output = Digraph.Builder.add_vertex b in
  (* Realise [spec] between two existing vertices. *)
  let rec realise spec ~src ~dst =
    match spec with
    | Edge -> ignore (Digraph.Builder.add_edge b ~src ~dst)
    | Parallel parts -> List.iter (fun p -> realise p ~src ~dst) parts
    | Series [] -> invalid_arg "Sp_network.build: empty series"
    | Series parts ->
        let rec chain src = function
          | [] -> assert false
          | [ last ] -> realise last ~src ~dst
          | part :: rest ->
              let mid = Digraph.Builder.add_vertex b in
              realise part ~src ~dst:mid;
              chain mid rest
        in
        chain src parts
  in
  realise spec ~src:input ~dst:output;
  { graph = Digraph.Builder.freeze b; input; output }

let rec pp ppf = function
  | Edge -> Format.pp_print_string ppf "e"
  | Series parts ->
      Format.fprintf ppf "S(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') pp)
        parts
  | Parallel parts ->
      Format.fprintf ppf "P(%a)"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') pp)
        parts
