module Digraph = Ftcsn_graph.Digraph

let max_edges = 13

let probability g ~eps_open ~eps_close f =
  let m = Digraph.edge_count g in
  if m > max_edges then invalid_arg "Exact.probability: too many edges";
  let pattern = Array.make m Fault.Normal in
  let p_normal = 1.0 -. eps_open -. eps_close in
  let total = ref 0.0 in
  (* Odometer over {normal, open, closed}^m carrying the pattern
     probability incrementally. *)
  let rec go e weight =
    if e = m then begin
      if f pattern then total := !total +. weight
    end
    else begin
      pattern.(e) <- Fault.Normal;
      go (e + 1) (weight *. p_normal);
      pattern.(e) <- Fault.Open_failure;
      go (e + 1) (weight *. eps_open);
      pattern.(e) <- Fault.Closed_failure;
      go (e + 1) (weight *. eps_close)
    end
  in
  go 0 1.0;
  !total
