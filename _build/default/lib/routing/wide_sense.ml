module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Traverse = Ftcsn_graph.Traverse
module Bitset = Ftcsn_util.Bitset
module Rng = Ftcsn_prng.Rng

type state = {
  net : Ftcsn_networks.Network.t;
  busy : Bitset.t;
  calls : (int * int * int list) list;
}

type strategy = state -> input:int -> output:int -> int list option

let terminal_mask net =
  let mask = Array.make (Digraph.vertex_count net.Network.graph) false in
  Array.iter (fun v -> mask.(v) <- true) net.Network.inputs;
  Array.iter (fun v -> mask.(v) <- true) net.Network.outputs;
  mask

let greedy_strategy state ~input ~output =
  let net = state.net in
  let terminal = terminal_mask net in
  let src = net.Network.inputs.(input) and dst = net.Network.outputs.(output) in
  let ok v = (not (Bitset.mem state.busy v)) && not terminal.(v) in
  Traverse.shortest_path ~allowed:ok net.Network.graph ~src ~dst

(* enumerate all simple idle paths src -> dst (DFS, small networks), then
   pick the one whose interior is least useful to future calls: minimise
   the total idle out-degree of interior vertices, i.e. pack the most
   constrained middles first *)
let packing_strategy state ~input ~output =
  let net = state.net in
  let g = net.Network.graph in
  let terminal = terminal_mask net in
  let src = net.Network.inputs.(input) and dst = net.Network.outputs.(output) in
  let idle v = not (Bitset.mem state.busy v) in
  let candidates = ref [] in
  let budget = ref 20_000 in
  let on_path = Bitset.create (Digraph.vertex_count g) in
  let rec extend v acc =
    decr budget;
    if !budget > 0 then begin
      if v = dst then candidates := List.rev (v :: acc) :: !candidates
      else
        Digraph.iter_out g v (fun ~dst:w ~eid:_ ->
            if
              idle w
              && (w = dst || not terminal.(w))
              && not (Bitset.mem on_path w)
            then begin
              Bitset.add on_path w;
              extend w (v :: acc);
              Bitset.remove on_path w
            end)
    end
  in
  Bitset.add on_path src;
  extend src [];
  let idle_degree v =
    Digraph.fold_out g v ~init:0 ~f:(fun acc ~dst:w ~eid:_ ->
        if idle w then acc + 1 else acc)
    + Digraph.fold_in g v ~init:0 ~f:(fun acc ~src:w ~eid:_ ->
          if idle w then acc + 1 else acc)
  in
  let score path =
    let interior = List.filter (fun v -> v <> src && v <> dst) path in
    (List.fold_left (fun acc v -> acc + idle_degree v) 0 interior, path)
  in
  match List.map score !candidates with
  | [] -> None
  | scored ->
      let best =
        List.fold_left
          (fun acc cand -> if compare cand acc < 0 then cand else acc)
          (List.hd scored) (List.tl scored)
      in
      Some (snd best)

let validate_path net busy ~input ~output path =
  let g = net.Network.graph in
  let src = net.Network.inputs.(input) and dst = net.Network.outputs.(output) in
  match path with
  | [] -> false
  | first :: _ ->
      let rec check = function
        | [ last ] -> last = dst
        | a :: (b :: _ as rest) ->
            let edge_exists =
              Digraph.fold_out g a ~init:false ~f:(fun acc ~dst:w ~eid:_ ->
                  acc || w = b)
            in
            edge_exists && not (Bitset.mem busy b) && check rest
        | [] -> false
      in
      first = src && (not (Bitset.mem busy src)) && check path

type game_result =
  | Strategy_wins
  | Adversary_wins of (int * int) list * (int * int)
  | Budget_exceeded

exception Lost of (int * int) list * (int * int)
exception Out_of_budget

let adversary_game ?(max_states = 100_000) strategy net =
  let n_in = Network.n_inputs net and n_out = Network.n_outputs net in
  let busy = Bitset.create (Digraph.vertex_count net.Network.graph) in
  let seen = Hashtbl.create 1024 in
  let visited = ref 0 in
  let rec explore calls =
    let key =
      String.concat ";"
        (List.map
           (fun (i, o, _) -> Printf.sprintf "%d-%d" i o)
           (List.sort compare calls))
      ^ "|"
      ^ String.concat "," (List.map string_of_int (Bitset.to_list busy))
    in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr visited;
      if !visited > max_states then raise Out_of_budget;
      let live = List.map (fun (i, o, _) -> (i, o)) calls in
      let input_live i = List.exists (fun (i', _) -> i' = i) live in
      let output_live o = List.exists (fun (_, o') -> o' = o) live in
      (* adversary move 1: any idle request *)
      for i = 0 to n_in - 1 do
        if not (input_live i) then
          for o = 0 to n_out - 1 do
            if not (output_live o) then begin
              let state = { net; busy; calls } in
              match strategy state ~input:i ~output:o with
              | None -> raise (Lost (live, (i, o)))
              | Some path ->
                  if not (validate_path net busy ~input:i ~output:o path) then
                    raise (Lost (live, (i, o)));
                  List.iter (Bitset.add busy) path;
                  explore ((i, o, path) :: calls);
                  List.iter (Bitset.remove busy) path
            end
          done
      done;
      (* adversary move 2: hang up any live call *)
      List.iter
        (fun (i, o, path) ->
          List.iter (Bitset.remove busy) path;
          explore (List.filter (fun (i', o', _) -> (i', o') <> (i, o)) calls);
          List.iter (Bitset.add busy) path)
        calls
    end
  in
  match explore [] with
  | () -> Strategy_wins
  | exception Lost (live, req) -> Adversary_wins (live, req)
  | exception Out_of_budget -> Budget_exceeded

let stress ~steps ~rng strategy net =
  let n_in = Network.n_inputs net and n_out = Network.n_outputs net in
  let busy = Bitset.create (Digraph.vertex_count net.Network.graph) in
  let calls = ref [] in
  let offered = ref 0 and blocked = ref 0 in
  for _ = 1 to steps do
    let live = List.length !calls in
    let arrive = live = 0 || (Rng.bernoulli rng 0.6 && live < min n_in n_out) in
    if arrive then begin
      let idle_inputs =
        List.filter
          (fun i -> not (List.exists (fun (i', _, _) -> i' = i) !calls))
          (List.init n_in Fun.id)
      in
      let idle_outputs =
        List.filter
          (fun o -> not (List.exists (fun (_, o', _) -> o' = o) !calls))
          (List.init n_out Fun.id)
      in
      match (idle_inputs, idle_outputs) with
      | [], _ | _, [] -> ()
      | _ ->
          let i = List.nth idle_inputs (Rng.int rng (List.length idle_inputs)) in
          let o = List.nth idle_outputs (Rng.int rng (List.length idle_outputs)) in
          incr offered;
          let state = { net; busy; calls = !calls } in
          (match strategy state ~input:i ~output:o with
          | Some path when validate_path net busy ~input:i ~output:o path ->
              List.iter (Bitset.add busy) path;
              calls := (i, o, path) :: !calls
          | Some _ | None -> incr blocked)
    end
    else begin
      match !calls with
      | [] -> ()
      | _ ->
          let idx = Rng.int rng (List.length !calls) in
          let i, o, path = List.nth !calls idx in
          List.iter (Bitset.remove busy) path;
          calls := List.filter (fun (i', o', _) -> (i', o') <> (i, o)) !calls
    end
  done;
  (!offered, !blocked)
