lib/routing/greedy.mli: Ftcsn_networks Ftcsn_util
