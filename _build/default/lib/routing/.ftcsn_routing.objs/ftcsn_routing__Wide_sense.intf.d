lib/routing/wide_sense.mli: Ftcsn_networks Ftcsn_prng Ftcsn_util
