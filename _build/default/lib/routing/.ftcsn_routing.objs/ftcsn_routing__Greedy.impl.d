lib/routing/greedy.ml: Array Ftcsn_graph Ftcsn_networks Ftcsn_util List
