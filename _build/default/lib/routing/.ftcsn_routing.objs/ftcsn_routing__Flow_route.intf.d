lib/routing/flow_route.mli: Ftcsn_networks
