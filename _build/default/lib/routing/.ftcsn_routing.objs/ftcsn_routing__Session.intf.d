lib/routing/session.mli: Ftcsn_networks Ftcsn_prng
