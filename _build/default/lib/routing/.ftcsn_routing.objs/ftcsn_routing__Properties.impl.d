lib/routing/properties.ml: Array Backtrack Ftcsn_flow Ftcsn_graph Ftcsn_networks Ftcsn_prng Ftcsn_util Hashtbl List Session String
