lib/routing/flow_route.ml: Array Ftcsn_flow Ftcsn_networks List
