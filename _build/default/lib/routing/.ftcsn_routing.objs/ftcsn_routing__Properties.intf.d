lib/routing/properties.mli: Ftcsn_networks Ftcsn_prng Ftcsn_util Session
