lib/routing/backtrack.mli: Ftcsn_networks
