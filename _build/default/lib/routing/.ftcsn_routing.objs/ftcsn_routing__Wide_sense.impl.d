lib/routing/wide_sense.ml: Array Ftcsn_graph Ftcsn_networks Ftcsn_prng Ftcsn_util Fun Hashtbl List Printf String
