lib/routing/backtrack.ml: Array Ftcsn_graph Ftcsn_networks List
