(** Wide-sense nonblocking operation (Feldman, Friedman & Pippenger [FFP],
    cited in §2 and §4 of the paper).

    A network is {e wide-sense} nonblocking when some routing {e strategy}
    can serve every adversarial sequence of call and hang-up requests —
    weaker than strict nonblocking (where {e every} routing works, so the
    greedy strategy suffices) but stronger than rearrangeable.

    This module pits a pluggable strategy against (a) the exhaustive
    adversary (game search over all request sequences, for tiny networks)
    and (b) randomised adversaries (stress, for larger ones).  It
    separates the three classes operationally: on a strictly nonblocking
    network every strategy wins; on a wide-sense-only network the right
    strategy wins where greedy loses; on a merely-rearrangeable network
    every strategy loses some sequence. *)

type state = {
  net : Ftcsn_networks.Network.t;
  busy : Ftcsn_util.Bitset.t;  (** vertices used by established calls *)
  calls : (int * int * int list) list;  (** (input idx, output idx, path) *)
}

type strategy = state -> input:int -> output:int -> int list option
(** Given the current state and an idle request (terminal indices), pick a
    path of currently-idle vertices (including both terminal vertices) or
    give up.  The driver validates the returned path. *)

val greedy_strategy : strategy
(** Shortest idle path (BFS). *)

val packing_strategy : strategy
(** Prefer the idle path whose interior vertices have the fewest idle
    alternatives ("pack" heavily-shared middles last).  Implemented as
    best-of-all-shortest via per-middle scoring on 3-stage networks and
    falling back to BFS elsewhere. *)

type game_result =
  | Strategy_wins  (** the strategy served every sequence explored *)
  | Adversary_wins of (int * int) list * (int * int)
      (** live calls and the request the strategy failed on *)
  | Budget_exceeded

val adversary_game :
  ?max_states:int -> strategy -> Ftcsn_networks.Network.t -> game_result
(** Exhaustive adversary: explores every reachable configuration under
    the strategy's deterministic choices (requests and hang-ups in all
    orders).  Memoised on (busy set, live call set); exponential — tiny
    networks only. *)

val stress :
  steps:int ->
  rng:Ftcsn_prng.Rng.t ->
  strategy ->
  Ftcsn_networks.Network.t ->
  int * int
(** Randomised adversary; returns (offered, blocked). *)
