module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Bitset = Ftcsn_util.Bitset
module Rng = Ftcsn_prng.Rng

type path_choice =
  | Shortest
  | Randomised of Rng.t

type stats = {
  offered : int;
  served : int;
  blocked : int;
  released : int;
  max_concurrent : int;
}

type t = {
  net : Network.t;
  allowed : int -> bool;
  busy_set : Bitset.t;
  calls : (int, int * int list) Hashtbl.t;
      (** input index -> (output index, path) *)
  output_busy : bool array;
  mutable offered : int;
  mutable served : int;
  mutable blocked : int;
  mutable released : int;
  mutable max_concurrent : int;
  choice : path_choice;
}

let create ?(allowed = fun _ -> true) ~choice net =
  {
    net;
    allowed;
    busy_set = Bitset.create (Digraph.vertex_count net.Network.graph);
    calls = Hashtbl.create 64;
    output_busy = Array.make (Network.n_outputs net) false;
    offered = 0;
    served = 0;
    blocked = 0;
    released = 0;
    max_concurrent = 0;
    choice;
  }

(* BFS with optionally shuffled neighbour order: with shuffling each run
   samples one of the shortest-ish idle paths. *)
let find_path t ~src ~dst =
  let g = t.net.Network.graph in
  let n = Digraph.vertex_count g in
  let ok v = t.allowed v && not (Bitset.mem t.busy_set v) in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(src) <- true;
  let queue = Queue.create () in
  Queue.add src queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let neighbours = Digraph.out_neighbours g u in
    (match t.choice with
    | Shortest -> ()
    | Randomised rng -> Rng.shuffle_in_place rng neighbours);
    Array.iter
      (fun v ->
        if (not !found) && (not seen.(v)) && (v = dst || ok v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          if v = dst then found := true else Queue.add v queue
        end)
      neighbours
  done;
  if not !found then None
  else begin
    let rec walk v acc = if v = src then v :: acc else walk parent.(v) (v :: acc) in
    Some (walk dst [])
  end

let request t ~input ~output =
  if Hashtbl.mem t.calls input then
    invalid_arg "Session.request: input already in a call";
  if t.output_busy.(output) then
    invalid_arg "Session.request: output already in a call";
  t.offered <- t.offered + 1;
  let src = t.net.Network.inputs.(input)
  and dst = t.net.Network.outputs.(output) in
  match find_path t ~src ~dst with
  | None ->
      t.blocked <- t.blocked + 1;
      None
  | Some path ->
      List.iter (Bitset.add t.busy_set) path;
      Hashtbl.replace t.calls input (output, path);
      t.output_busy.(output) <- true;
      t.served <- t.served + 1;
      t.max_concurrent <- max t.max_concurrent (Hashtbl.length t.calls);
      Some path

let hangup t ~input =
  match Hashtbl.find_opt t.calls input with
  | None -> raise Not_found
  | Some (output, path) ->
      List.iter (Bitset.remove t.busy_set) path;
      Hashtbl.remove t.calls input;
      t.output_busy.(output) <- false;
      t.released <- t.released + 1

let live_calls t =
  Hashtbl.fold (fun i (o, _) acc -> (i, o) :: acc) t.calls []

let stats t =
  {
    offered = t.offered;
    served = t.served;
    blocked = t.blocked;
    released = t.released;
    max_concurrent = t.max_concurrent;
  }

let run_random_traffic t ~rng ~steps ~arrival_prob =
  let n_in = Network.n_inputs t.net and n_out = Network.n_outputs t.net in
  for _ = 1 to steps do
    let live = Hashtbl.length t.calls in
    let arrive =
      (live = 0 || Rng.bernoulli rng arrival_prob) && live < min n_in n_out
    in
    if arrive then begin
      (* uniform idle input and output *)
      let idle_inputs =
        List.filter (fun i -> not (Hashtbl.mem t.calls i)) (List.init n_in Fun.id)
      in
      let idle_outputs =
        List.filter (fun o -> not t.output_busy.(o)) (List.init n_out Fun.id)
      in
      match (idle_inputs, idle_outputs) with
      | [], _ | _, [] -> ()
      | _ ->
          let input = List.nth idle_inputs (Rng.int rng (List.length idle_inputs)) in
          let output =
            List.nth idle_outputs (Rng.int rng (List.length idle_outputs))
          in
          ignore (request t ~input ~output)
    end
    else begin
      let live = live_calls t in
      match live with
      | [] -> ()
      | _ ->
          let input, _ = List.nth live (Rng.int rng (List.length live)) in
          hangup t ~input
    end
  done;
  stats t
