(** Connected components (undirected sense) and acyclicity audits. *)

val undirected_components : Digraph.t -> int array * int
(** [(label, count)]: dense component label per vertex. *)

val undirected_component_sizes : Digraph.t -> int array
(** Sizes indexed by component label. *)

val same_component : Digraph.t -> int -> int -> bool

val strongly_connected_components : Digraph.t -> int array * int
(** Tarjan's algorithm (iterative); labels are in reverse topological
    order of the condensation. *)
