(** Graph traversals: BFS distances (directed and undirected), DFS,
    topological order, reachability.

    The paper's lower bound (§5) measures distances "ignoring the direction
    of each edge"; {!bfs_undirected} implements exactly that metric, while
    {!bfs_directed} serves routing and depth computation. *)

val bfs_directed :
  ?allowed:(int -> bool) -> Digraph.t -> sources:int list -> int array
(** [bfs_directed g ~sources] is the array of directed hop distances from
    the source set; [-1] marks unreachable vertices.  [allowed] restricts the
    traversal to permitted vertices (sources are visited regardless). *)

val bfs_undirected :
  ?allowed:(int -> bool) -> Digraph.t -> sources:int list -> int array
(** As {!bfs_directed} but edges are traversed in both directions — the
    paper's [dist] metric of §5. *)

val bfs_directed_max_dist : Digraph.t -> sources:int list -> int
(** Largest finite directed distance from the source set. *)

val reachable : ?allowed:(int -> bool) -> Digraph.t -> sources:int list -> Ftcsn_util.Bitset.t
(** Directed reachability set. *)

val shortest_path :
  ?allowed:(int -> bool) -> Digraph.t -> src:int -> dst:int -> int list option
(** Vertices of one shortest directed path [src ... dst], or [None]. *)

val shortest_path_undirected :
  ?allowed:(int -> bool) -> Digraph.t -> src:int -> dst:int -> int list option

val topological_order : Digraph.t -> int array option
(** Kahn's algorithm; [None] when the graph has a directed cycle. *)

val is_acyclic : Digraph.t -> bool

val longest_path_dag : Digraph.t -> sources:int list -> int array
(** For a DAG: longest directed path length (in edges) from the source set
    to each vertex, [-1] if unreachable.  @raise Invalid_argument on cyclic
    input. *)

val depth : Digraph.t -> inputs:int list -> outputs:int list -> int
(** The network-depth measure of the paper (§2): the largest number of
    edges on any directed input→output path.  Requires acyclicity.
    Returns [-1] when no output is reachable. *)
