(** Rendering: Graphviz DOT export and ASCII stage diagrams (used to
    regenerate the paper's Figures 4 and 5 as textual artefacts). *)

val to_dot :
  ?name:string ->
  ?vertex_label:(int -> string) ->
  ?highlight:(int -> bool) ->
  Digraph.t ->
  string

val ascii_stages : Digraph.t -> inputs:int list -> string
(** One line per stage: stage index, vertex count, outgoing edge count —
    the census format used by experiment F5. *)

val ascii_grid : rows:int -> cols:int -> vertex_at:(row:int -> col:int -> int) -> Digraph.t -> string
(** Draw a staged grid (Fig. 4 style): row-per-line, [o] vertices, with
    [-] straight and [\ ] diagonal edges marked per column gap. *)
