module Bitset = Ftcsn_util.Bitset

let always _ = true

let bfs_core ~undirected ?(allowed = always) g ~sources =
  let n = Digraph.vertex_count g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = -1 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  let visit d v = if dist.(v) = -1 && allowed v then begin
    dist.(v) <- d;
    Queue.add v queue
  end
  in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let d = dist.(v) + 1 in
    Digraph.iter_out g v (fun ~dst ~eid:_ -> visit d dst);
    if undirected then Digraph.iter_in g v (fun ~src ~eid:_ -> visit d src)
  done;
  dist

let bfs_directed ?allowed g ~sources = bfs_core ~undirected:false ?allowed g ~sources

let bfs_undirected ?allowed g ~sources = bfs_core ~undirected:true ?allowed g ~sources

let bfs_directed_max_dist g ~sources =
  Array.fold_left max 0 (bfs_directed g ~sources)

let reachable ?allowed g ~sources =
  let dist = bfs_directed ?allowed g ~sources in
  let set = Bitset.create (Digraph.vertex_count g) in
  Array.iteri (fun v d -> if d >= 0 then Bitset.add set v) dist;
  set

let path_of_parents parents ~src ~dst =
  let rec walk v acc = if v = src then v :: acc else walk parents.(v) (v :: acc) in
  walk dst []

let shortest_path_core ~undirected ?(allowed = always) g ~src ~dst =
  let n = Digraph.vertex_count g in
  if src = dst then Some [ src ]
  else begin
    let parent = Array.make n (-1) in
    let seen = Array.make n false in
    seen.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    let visit u v =
      if (not seen.(v)) && (v = dst || allowed v) then begin
        seen.(v) <- true;
        parent.(v) <- u;
        if v = dst then found := true else Queue.add v queue
      end
    in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Digraph.iter_out g u (fun ~dst:v ~eid:_ -> visit u v);
      if undirected then Digraph.iter_in g u (fun ~src:v ~eid:_ -> visit u v)
    done;
    if !found then Some (path_of_parents parent ~src ~dst) else None
  end

let shortest_path ?allowed g ~src ~dst =
  shortest_path_core ~undirected:false ?allowed g ~src ~dst

let shortest_path_undirected ?allowed g ~src ~dst =
  shortest_path_core ~undirected:true ?allowed g ~src ~dst

let topological_order g =
  let n = Digraph.vertex_count g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = Array.make n (-1) in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!filled) <- v;
    incr filled;
    Digraph.iter_out g v (fun ~dst ~eid:_ ->
        indeg.(dst) <- indeg.(dst) - 1;
        if indeg.(dst) = 0 then Queue.add dst queue)
  done;
  if !filled = n then Some order else None

let is_acyclic g = topological_order g <> None

let longest_path_dag g ~sources =
  match topological_order g with
  | None -> invalid_arg "Traverse.longest_path_dag: cyclic graph"
  | Some order ->
      let n = Digraph.vertex_count g in
      let dist = Array.make n (-1) in
      List.iter (fun s -> dist.(s) <- 0) sources;
      Array.iter
        (fun v ->
          if dist.(v) >= 0 then
            Digraph.iter_out g v (fun ~dst ~eid:_ ->
                if dist.(v) + 1 > dist.(dst) then dist.(dst) <- dist.(v) + 1))
        order;
      dist

let depth g ~inputs ~outputs =
  let dist = longest_path_dag g ~sources:inputs in
  List.fold_left (fun acc o -> max acc dist.(o)) (-1) outputs
