type degree_profile = {
  min_in : int;
  max_in : int;
  min_out : int;
  max_out : int;
  mean_in : float;
  mean_out : float;
}

let degree_profile g =
  let n = Digraph.vertex_count g in
  if n = 0 then
    { min_in = 0; max_in = 0; min_out = 0; max_out = 0; mean_in = 0.0; mean_out = 0.0 }
  else begin
    let min_in = ref max_int and max_in = ref 0 in
    let min_out = ref max_int and max_out = ref 0 in
    for v = 0 to n - 1 do
      let di = Digraph.in_degree g v and dv = Digraph.out_degree g v in
      if di < !min_in then min_in := di;
      if di > !max_in then max_in := di;
      if dv < !min_out then min_out := dv;
      if dv > !max_out then max_out := dv
    done;
    let mean = float_of_int (Digraph.edge_count g) /. float_of_int n in
    {
      min_in = !min_in;
      max_in = !max_in;
      min_out = !min_out;
      max_out = !max_out;
      mean_in = mean;
      mean_out = mean;
    }
  end

let degree_histogram g side =
  let tbl = Hashtbl.create 16 in
  for v = 0 to Digraph.vertex_count g - 1 do
    let d =
      match side with `In -> Digraph.in_degree g v | `Out -> Digraph.out_degree g v
    in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare

let directed_eccentricity g v =
  Array.fold_left max 0 (Traverse.bfs_directed g ~sources:[ v ])

let diameter_lower_bound g ~samples ~rng =
  let n = Digraph.vertex_count g in
  if n = 0 then 0
  else begin
    let best = ref 0 in
    for _ = 1 to samples do
      let v = Ftcsn_prng.Rng.int rng n in
      best := max !best (directed_eccentricity g v)
    done;
    !best
  end

let is_regular g ~degree ~interior_only =
  let ok = ref true in
  for v = 0 to Digraph.vertex_count g - 1 do
    if
      interior_only v
      && (Digraph.in_degree g v <> degree || Digraph.out_degree g v <> degree)
    then ok := false
  done;
  !ok

let edge_vertex_ratio g =
  let n = Digraph.vertex_count g in
  if n = 0 then 0.0 else float_of_int (Digraph.edge_count g) /. float_of_int n
