module Union_find = Ftcsn_util.Union_find

let undirected_components g =
  let uf = Union_find.create (Digraph.vertex_count g) in
  Digraph.iter_edges g (fun ~eid:_ ~src ~dst -> Union_find.union uf src dst);
  Union_find.compress_labels uf

let undirected_component_sizes g =
  let label, count = undirected_components g in
  let sizes = Array.make count 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) label;
  sizes

let same_component g a b =
  let label, _ = undirected_components g in
  label.(a) = label.(b)

(* Iterative Tarjan SCC: explicit stack of (vertex, next-edge-index). *)
let strongly_connected_components g =
  let n = Digraph.vertex_count g in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Stack.create () in
  let label = Array.make n (-1) in
  let next_index = ref 0 in
  let next_label = ref 0 in
  let adj = Array.init n (Digraph.out_neighbours g) in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      let call = Stack.create () in
      Stack.push (root, 0) call;
      index.(root) <- !next_index;
      low.(root) <- !next_index;
      incr next_index;
      Stack.push root stack;
      on_stack.(root) <- true;
      while not (Stack.is_empty call) do
        let v, i = Stack.pop call in
        if i < Array.length adj.(v) then begin
          let w = adj.(v).(i) in
          Stack.push (v, i + 1) call;
          if index.(w) = -1 then begin
            index.(w) <- !next_index;
            low.(w) <- !next_index;
            incr next_index;
            Stack.push w stack;
            on_stack.(w) <- true;
            Stack.push (w, 0) call
          end
          else if on_stack.(w) && index.(w) < low.(v) then low.(v) <- index.(w)
        end
        else begin
          if low.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              label.(w) <- !next_label;
              if w = v then continue := false
            done;
            incr next_label
          end;
          if not (Stack.is_empty call) then begin
            let parent, pi = Stack.top call in
            ignore pi;
            if low.(v) < low.(parent) then low.(parent) <- low.(v)
          end
        end
      done
    end
  done;
  (label, !next_label)
