lib/graph/render.mli: Digraph
