lib/graph/staged.mli: Digraph
