lib/graph/metrics.ml: Array Digraph Ftcsn_prng Hashtbl List Option Traverse
