lib/graph/render.ml: Array Buffer Digraph Printf Staged
