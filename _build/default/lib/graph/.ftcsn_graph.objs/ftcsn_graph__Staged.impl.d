lib/graph/staged.ml: Array Digraph Traverse
