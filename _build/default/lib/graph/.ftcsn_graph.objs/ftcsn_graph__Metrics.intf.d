lib/graph/metrics.mli: Digraph Ftcsn_prng
