lib/graph/components.ml: Array Digraph Ftcsn_util Stack
