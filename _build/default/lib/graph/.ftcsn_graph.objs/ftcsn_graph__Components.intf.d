lib/graph/components.mli: Digraph
