lib/graph/traverse.mli: Digraph Ftcsn_util
