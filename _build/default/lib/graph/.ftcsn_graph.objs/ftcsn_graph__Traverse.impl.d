lib/graph/traverse.ml: Array Digraph Ftcsn_util List Queue
