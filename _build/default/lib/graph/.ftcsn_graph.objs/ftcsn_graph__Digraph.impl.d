lib/graph/digraph.ml: Array Format Ftcsn_util
