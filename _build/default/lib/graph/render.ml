let to_dot ?(name = "g") ?vertex_label ?highlight g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n  rankdir=LR;\n" name);
  for v = 0 to Digraph.vertex_count g - 1 do
    let label =
      match vertex_label with Some f -> f v | None -> string_of_int v
    in
    let attrs =
      match highlight with
      | Some h when h v -> Printf.sprintf " [label=\"%s\", style=filled]" label
      | _ -> Printf.sprintf " [label=\"%s\"]" label
    in
    Buffer.add_string buf (Printf.sprintf "  v%d%s;\n" v attrs)
  done;
  Digraph.iter_edges g (fun ~eid:_ ~src ~dst ->
      Buffer.add_string buf (Printf.sprintf "  v%d -> v%d;\n" src dst));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let ascii_stages g ~inputs =
  let staged = Staged.of_sources g ~sources:inputs in
  let sizes = Staged.stage_sizes staged in
  let edges = Staged.stage_edge_counts g staged in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "stage | vertices | out-edges\n";
  Array.iteri
    (fun s size ->
      Buffer.add_string buf
        (Printf.sprintf "%5d | %8d | %9d\n" s size
           (if s < Array.length edges then edges.(s) else 0)))
    sizes;
  Buffer.contents buf

let ascii_grid ~rows ~cols ~vertex_at g =
  let has_edge a b =
    Digraph.fold_out g a ~init:false ~f:(fun acc ~dst ~eid:_ -> acc || dst = b)
  in
  let buf = Buffer.create 256 in
  for r = 0 to rows - 1 do
    (* vertex line *)
    for c = 0 to cols - 1 do
      Buffer.add_char buf 'o';
      if c < cols - 1 then
        if has_edge (vertex_at ~row:r ~col:c) (vertex_at ~row:r ~col:(c + 1))
        then Buffer.add_string buf "---"
        else Buffer.add_string buf "   "
    done;
    Buffer.add_char buf '\n';
    (* diagonal line *)
    if r < rows then begin
      for c = 0 to cols - 2 do
        let diag =
          has_edge
            (vertex_at ~row:r ~col:c)
            (vertex_at ~row:((r + 1) mod rows) ~col:(c + 1))
        in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (if diag then "\\  " else "   ")
      done;
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf
