(** Structural metrics for networks-as-graphs: degree profiles, diameter
    estimates, stage balance.  Used by the CLI's [build] report and the
    experiment harness when auditing constructions. *)

type degree_profile = {
  min_in : int;
  max_in : int;
  min_out : int;
  max_out : int;
  mean_in : float;
  mean_out : float;  (** equals mean_in: both are m/n *)
}

val degree_profile : Digraph.t -> degree_profile

val degree_histogram : Digraph.t -> [ `In | `Out ] -> (int * int) list
(** (degree, vertex count) pairs, ascending by degree. *)

val directed_eccentricity : Digraph.t -> int -> int
(** Largest finite directed distance from the vertex. *)

val diameter_lower_bound :
  Digraph.t -> samples:int -> rng:Ftcsn_prng.Rng.t -> int
(** Max eccentricity over sampled sources (a lower bound on the directed
    diameter over reachable pairs). *)

val is_regular : Digraph.t -> degree:int -> interior_only:(int -> bool) -> bool
(** All vertices selected by [interior_only] have both degrees equal to
    [degree]. *)

val edge_vertex_ratio : Digraph.t -> float
