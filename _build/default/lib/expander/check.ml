module Rng = Ftcsn_prng.Rng
module Combinat = Ftcsn_util.Combinat
module Bitset = Ftcsn_util.Bitset

let exhaustive_budget = 5_000_000.0

let min_neighbourhood_exhaustive b ~c =
  if c < 1 || c > b.Bipartite.inlets then
    invalid_arg "Check.min_neighbourhood_exhaustive: bad c";
  if Combinat.binomial b.Bipartite.inlets c > exhaustive_budget then
    invalid_arg "Check.min_neighbourhood_exhaustive: too many subsets";
  let best = ref max_int in
  Combinat.iter_subsets ~n:b.Bipartite.inlets ~k:c (fun s ->
      let size = Bipartite.neighbourhood_size b s in
      if size < !best then best := size);
  !best

let min_neighbourhood_sampled b ~c ~samples ~rng =
  if c < 1 || c > b.Bipartite.inlets then
    invalid_arg "Check.min_neighbourhood_sampled: bad c";
  let best = ref max_int in
  for _ = 1 to samples do
    let s = Rng.sample_without_replacement rng ~n:b.Bipartite.inlets ~k:c in
    let size = Bipartite.neighbourhood_size b s in
    if size < !best then best := size
  done;
  !best

(* Greedy descent: membership bitset + outlet reference counts let us
   evaluate a swap in O(degree) instead of O(c * degree). *)
let min_neighbourhood_greedy b ~c ~restarts ~rng =
  if c < 1 || c > b.Bipartite.inlets then
    invalid_arg "Check.min_neighbourhood_greedy: bad c";
  let inlets = b.Bipartite.inlets and outlets = b.Bipartite.outlets in
  let best = ref max_int in
  for _ = 1 to restarts do
    let members = Rng.sample_without_replacement rng ~n:inlets ~k:c in
    let in_set = Bitset.create inlets in
    Array.iter (Bitset.add in_set) members;
    let refcount = Array.make outlets 0 in
    let nbhd = ref 0 in
    let add_inlet i =
      Array.iter
        (fun o ->
          if refcount.(o) = 0 then incr nbhd;
          refcount.(o) <- refcount.(o) + 1)
        b.Bipartite.adj.(i)
    in
    let remove_inlet i =
      Array.iter
        (fun o ->
          refcount.(o) <- refcount.(o) - 1;
          if refcount.(o) = 0 then decr nbhd)
        b.Bipartite.adj.(i)
    in
    Array.iter add_inlet members;
    let improved = ref true in
    let rounds = ref 0 in
    while !improved && !rounds < 50 do
      improved := false;
      incr rounds;
      (* try swapping each member for a sampled candidate *)
      for mi = 0 to c - 1 do
        let i = members.(mi) in
        remove_inlet i;
        Bitset.remove in_set i;
        (* candidate pool: a few random inlets outside the set *)
        let best_cand = ref i and best_size = ref max_int in
        let try_candidate j =
          if not (Bitset.mem in_set j) then begin
            add_inlet j;
            if !nbhd < !best_size then begin
              best_size := !nbhd;
              best_cand := j
            end;
            remove_inlet j
          end
        in
        try_candidate i;
        for _ = 1 to 8 do
          try_candidate (Rng.int rng inlets)
        done;
        add_inlet !best_cand;
        Bitset.add in_set !best_cand;
        if !best_cand <> i then improved := true;
        members.(mi) <- !best_cand
      done
    done;
    if !nbhd < !best then best := !nbhd
  done;
  !best

let is_expanding_exhaustive b ~c ~c' = min_neighbourhood_exhaustive b ~c >= c'

let certify b ~c ~c' ~rng =
  if Combinat.binomial b.Bipartite.inlets c <= exhaustive_budget then begin
    let m = min_neighbourhood_exhaustive b ~c in
    if m >= c' then `Certified else `Refuted m
  end
  else begin
    let m1 = min_neighbourhood_greedy b ~c ~restarts:8 ~rng in
    let m2 = min_neighbourhood_sampled b ~c ~samples:2000 ~rng in
    let m = min m1 m2 in
    if m < c' then `Refuted m else `Probable
  end
