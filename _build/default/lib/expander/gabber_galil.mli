(** The Gabber–Galil explicit expander [GG].

    Vertices are Z_m × Z_m on both sides; inlet (x, y) is joined to the
    five outlets (x, y), (x, x+y), (x, x+y+1), (x+y, y), (x+y+1, y)
    (arithmetic mod m).  Gabber and Galil proved these bipartite graphs
    are (c |S|)-expanding for small sets with an explicit constant; the
    paper cites them as the first usable explicit construction for
    superconcentrators.  Degree is 5 and both sides have m² vertices. *)

val make : m:int -> Bipartite.t
(** The m² × m² instance.  @raise Invalid_argument if [m < 1]. *)

val side : m:int -> int
(** Number of inlets (= outlets) = m². *)

val degree : int
(** Always 5. *)
