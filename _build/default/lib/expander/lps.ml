(* LPS Ramanujan graphs: Cayley graphs of PGL2(F_q) with quaternion
   generators of norm p. *)

let is_prime n =
  if n < 2 then false
  else begin
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  end

let is_valid_pair ~p ~q =
  is_prime p && is_prime q && p <> q && p mod 4 = 1 && q mod 4 = 1
  && float_of_int q > 2.0 *. sqrt (float_of_int p)

let generator_count ~p = p + 1

let group_order ~q = q * (q - 1) * (q + 1)

(* ---- arithmetic mod q ---- *)

let md q x = ((x mod q) + q) mod q

(* modular inverse by Fermat (q prime) *)
let rec pow_mod q b e = if e = 0 then 1 else begin
  let h = pow_mod q b (e / 2) in
  let h2 = h * h mod q in
  if e land 1 = 1 then h2 * b mod q else h2
end

let inv_mod q x = pow_mod q (md q x) (q - 2)

(* a square root of -1 mod q (exists for q = 1 mod 4): brute force *)
let sqrt_minus_one q =
  let rec go i =
    if i >= q then invalid_arg "Lps: no sqrt(-1) found"
    else if i * i mod q = q - 1 then i
    else go (i + 1)
  in
  go 2

(* ---- PGL2(F_q) elements as canonicalised matrix quadruples ---- *)

(* canonical representative modulo scalars: scale so the first nonzero
   entry (scanning a, b, c, d) becomes 1 *)
let canonical q (a, b, c, d) =
  let scale =
    if a <> 0 then inv_mod q a
    else if b <> 0 then inv_mod q b
    else if c <> 0 then inv_mod q c
    else inv_mod q d
  in
  (a * scale mod q, b * scale mod q, c * scale mod q, d * scale mod q)

let mat_mul q (a, b, c, d) (a', b', c', d') =
  ( md q ((a * a') + (b * c')),
    md q ((a * b') + (b * d')),
    md q ((c * a') + (d * c')),
    md q ((c * b') + (d * d')) )

let det q (a, b, c, d) = md q ((a * d) - (b * c))

(* ---- quaternion generators ---- *)

(* the p + 1 solutions of a^2+b^2+c^2+d^2 = p with a odd positive and
   b, c, d even (LPS section 2) *)
let norm_p_quaternions p =
  let bound = int_of_float (sqrt (float_of_int p)) in
  let sols = ref [] in
  for a = 1 to bound do
    if a land 1 = 1 then
      for b = -bound to bound do
        if b land 1 = 0 then
          for c = -bound to bound do
            if c land 1 = 0 then
              for d = -bound to bound do
                if
                  d land 1 = 0
                  && (a * a) + (b * b) + (c * c) + (d * d) = p
                then sols := (a, b, c, d) :: !sols
              done
          done
      done
  done;
  List.rev !sols

let generator_matrices ~p ~q =
  let i = sqrt_minus_one q in
  List.map
    (fun (a, b, c, d) ->
      canonical q
        ( md q (a + (i * b)),
          md q (c + (i * d)),
          md q (-c + (i * d)),
          md q (a - (i * b)) ))
    (norm_p_quaternions p)

let legendre q x =
  (* x^((q-1)/2) mod q: 1 for squares, q-1 for non-squares *)
  pow_mod q (md q x) ((q - 1) / 2)

(* Enumerate the vertex group as canonical quadruples with nonzero det.
   When (p|q) = +1 the generators lie in PSL2, so the Cayley graph on all
   of PGL2 would split into the two det-classes; LPS define X^{p,q} on
   PSL2 in that case (square-det classes only — the determinant's square
   class is invariant under the canonical scaling).  When (p|q) = -1 the
   graph lives on PGL2 and is bipartite between the det classes. *)
let enumerate_group ~restrict_to_psl q =
  let tbl = Hashtbl.create (group_order ~q) in
  let add m = if not (Hashtbl.mem tbl m) then Hashtbl.add tbl m (Hashtbl.length tbl) in
  for a = 0 to q - 1 do
    for b = 0 to q - 1 do
      for c = 0 to q - 1 do
        for d = 0 to q - 1 do
          let m = (a, b, c, d) in
          let dt = det q m in
          if
            dt <> 0
            && canonical q m = m
            && ((not restrict_to_psl) || legendre q dt = 1)
          then add m
        done
      done
    done
  done;
  tbl

let make ~p ~q =
  if not (is_valid_pair ~p ~q) then
    invalid_arg "Lps.make: need distinct primes p, q = 1 mod 4 with q > 2 sqrt p";
  let gens = generator_matrices ~p ~q in
  if List.length gens <> p + 1 then
    invalid_arg "Lps.make: generator count mismatch (p too large for search?)";
  let restrict_to_psl = legendre q p = 1 in
  let index = enumerate_group ~restrict_to_psl q in
  let n = Hashtbl.length index in
  let elements = Array.make n (0, 0, 0, 0) in
  Hashtbl.iter (fun m idx -> elements.(idx) <- m) index;
  let adj =
    Array.init n (fun idx ->
        let g = elements.(idx) in
        Array.of_list
          (List.map
             (fun s ->
               let prod = canonical q (mat_mul q s g) in
               match Hashtbl.find_opt index prod with
               | Some j -> j
               | None -> invalid_arg "Lps.make: product left the group")
             gens))
  in
  Bipartite.make ~inlets:n ~outlets:n ~adj
