(** Bipartite directed graphs with distinguished inlets and outlets.

    The paper's building block (§6): a (c, c′, t)-expanding graph is a
    bipartite graph in which every set of c inlets is joined to at least c′
    of the t outlets.  This module is the common carrier for the explicit
    and random constructions and their certification. *)

type t = {
  inlets : int;
  outlets : int;
  adj : int array array;  (** [adj.(i)] = outlets adjacent to inlet [i] *)
}

val make : inlets:int -> outlets:int -> adj:int array array -> t
(** Validates ranges and sorts/dedups each adjacency list. *)

val degree : t -> int -> int

val max_degree : t -> int

val edge_count : t -> int

val in_degrees : t -> int array
(** Edges arriving at each outlet. *)

val neighbourhood_size : t -> int array -> int
(** |Γ(S)| for a set of inlets S. *)

val to_digraph : t -> Ftcsn_graph.Digraph.t * int array * int array
(** Embed as a digraph: inlet vertices first, then outlets; returns
    (graph, inlet ids, outlet ids). *)

val reverse : t -> t
(** Swap the roles of inlets and outlets (mirror image). *)
