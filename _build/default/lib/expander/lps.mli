(** Lubotzky–Phillips–Sarnak Ramanujan graphs [LPS] — cited by the paper
    as the best explicit expander construction known.

    X^{p,q} is the Cayley graph of PGL₂(𝔽_q) with respect to the p+1
    integer quaternions of norm p (a odd positive, b, c, d even), mapped
    to matrices [[a + ib, c + id], [−c + id, a − ib]] where i² ≡ −1
    (mod q).  These graphs are (p+1)-regular and {e Ramanujan}: every
    nontrivial adjacency eigenvalue has |λ| ≤ 2√p.

    We expose the bipartite double cover (inlet g joined to outlet s·g
    for each generator s), which is what switching-network constructions
    consume; its second singular value inherits the 2√p bound, checked in
    the tests against {!Spectral.second_singular_value}. *)

val make : p:int -> q:int -> Bipartite.t
(** [make ~p ~q] for distinct primes p, q ≡ 1 (mod 4), q > 2√p.
    When the Legendre symbol (p|q) = −1 the graph lives on PGL₂(𝔽_q)
    (q(q−1)(q+1) vertices per side, bipartite between determinant
    classes); when (p|q) = +1 it lives on PSL₂(𝔽_q) (half as many
    vertices) and is connected and non-bipartite.  Degree p+1 either way.
    @raise Invalid_argument when the arithmetic preconditions fail. *)

val generator_count : p:int -> int
(** p + 1 (the number of norm-p quaternions up to unit equivalence). *)

val group_order : q:int -> int
(** |PGL₂(𝔽_q)| = q(q−1)(q+1). *)

val is_valid_pair : p:int -> q:int -> bool
