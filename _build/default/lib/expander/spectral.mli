(** Spectral expansion estimates.

    For a d-regular bipartite graph with biadjacency matrix B, the second
    singular value σ₂ of B/d controls expansion (expander mixing lemma);
    the Ramanujan bound of Lubotzky–Phillips–Sarnak [LPS], cited by the
    paper as the best explicit construction, is σ₂ ≤ 2√(d−1)/d.  We
    estimate σ₂ by power iteration on BᵀB with deflation of the top
    (all-ones) singular pair — a few dense mat-vec products, no external
    linear algebra. *)

val second_singular_value : ?iterations:int -> Bipartite.t -> float
(** Estimate of σ₂(B)/d for a [d]-max-degree bipartite graph (normalised
    by the maximum inlet degree).  Deterministic start vector. *)

val ramanujan_bound : degree:int -> float
(** 2√(d−1)/d. *)

val mixing_discrepancy :
  Bipartite.t -> s:int array -> t:int array -> float
(** |e(S,T) − d·|S||T|/n| / (d·√(|S||T|)) — the expander-mixing-lemma
    ratio, ≤ σ₂ for genuinely expanding graphs. *)
