(* Power iteration for the second singular value of the biadjacency
   matrix.  We iterate v -> Bᵀ(Bv) on inlet-space vectors, projecting out
   the known top singular direction.  For a d-regular graph the top pair
   is (1/√n)·1 on both sides with singular value d; for irregular graphs
   we deflate the measured top pair instead. *)

let matvec b v =
  (* w = B v : outlet space *)
  let w = Array.make b.Bipartite.outlets 0.0 in
  Array.iteri
    (fun i row -> Array.iter (fun o -> w.(o) <- w.(o) +. v.(i)) row)
    b.Bipartite.adj;
  w

let matvec_t b w =
  let v = Array.make b.Bipartite.inlets 0.0 in
  Array.iteri
    (fun i row -> Array.iter (fun o -> v.(i) <- v.(i) +. w.(o)) row)
    b.Bipartite.adj;
  v

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let norm a = sqrt (dot a a)

let normalise a =
  let n = norm a in
  if n > 0.0 then Array.map (fun x -> x /. n) a else a

let project_out ~dir v =
  let c = dot dir v in
  Array.mapi (fun i x -> x -. (c *. dir.(i))) v

let top_singular_vector ?(iterations = 60) b =
  let n = b.Bipartite.inlets in
  let v = ref (normalise (Array.init n (fun i -> 1.0 +. (0.01 *. float_of_int (i mod 7))))) in
  for _ = 1 to iterations do
    v := normalise (matvec_t b (matvec b !v))
  done;
  !v

let second_singular_value ?(iterations = 80) b =
  let n = b.Bipartite.inlets in
  if n = 0 then 0.0
  else begin
    let d = float_of_int (max 1 (Bipartite.max_degree b)) in
    let top = top_singular_vector b in
    (* deterministic pseudo-random start, decorrelated from top *)
    let v =
      ref
        (normalise
           (project_out ~dir:top
              (Array.init n (fun i ->
                   let x = float_of_int (((i * 2654435761) land 0xFFFF) - 32768) in
                   x /. 32768.0))))
    in
    let sigma2 = ref 0.0 in
    for _ = 1 to iterations do
      let w = matvec b !v in
      let v' = project_out ~dir:top (matvec_t b w) in
      let len = norm v' in
      sigma2 := sqrt (Float.max 0.0 len);
      v := normalise v'
    done;
    !sigma2 /. d
  end

let ramanujan_bound ~degree =
  if degree < 2 then 1.0
  else 2.0 *. sqrt (float_of_int (degree - 1)) /. float_of_int degree

let mixing_discrepancy b ~s ~t =
  let n = float_of_int b.Bipartite.inlets in
  let d = float_of_int (max 1 (Bipartite.max_degree b)) in
  let in_t = Array.make b.Bipartite.outlets false in
  Array.iter (fun o -> in_t.(o) <- true) t;
  let edges = ref 0 in
  Array.iter
    (fun i ->
      Array.iter (fun o -> if in_t.(o) then incr edges) b.Bipartite.adj.(i))
    s;
  let fs = float_of_int (Array.length s) and ft = float_of_int (Array.length t) in
  if fs = 0.0 || ft = 0.0 then 0.0
  else
    Float.abs (float_of_int !edges -. (d *. fs *. ft /. n))
    /. (d *. sqrt (fs *. ft))
