(** Certification of the (c, c′)-expansion property.

    A bipartite graph is (c, c′, t)-expanding (paper, §6) when every set of
    c inlets has at least c′ outlet neighbours.  Exhaustive checking costs
    C(inlets, c) neighbourhood evaluations, so it is reserved for small
    instances; larger ones are certified statistically, and a greedy local
    search hunts for violating sets (a failure found by any method is a
    definite counterexample). *)

val min_neighbourhood_exhaustive : Bipartite.t -> c:int -> int
(** min over all C(inlets, c) sets S with |S| = c of |Γ(S)|.
    @raise Invalid_argument when the subset count exceeds 5·10⁶. *)

val min_neighbourhood_sampled :
  Bipartite.t -> c:int -> samples:int -> rng:Ftcsn_prng.Rng.t -> int
(** Minimum |Γ(S)| over random c-subsets. *)

val min_neighbourhood_greedy :
  Bipartite.t -> c:int -> restarts:int -> rng:Ftcsn_prng.Rng.t -> int
(** Local search: start from a random c-set, repeatedly swap an inlet to
    shrink |Γ(S)|, over several restarts.  Returns the smallest
    neighbourhood found — an upper bound on the true minimum, typically
    much tighter than sampling. *)

val is_expanding_exhaustive : Bipartite.t -> c:int -> c':int -> bool

val certify :
  Bipartite.t -> c:int -> c':int -> rng:Ftcsn_prng.Rng.t -> [ `Certified | `Refuted of int | `Probable ]
(** Exhaustive when feasible ([`Certified]/[`Refuted min]); otherwise
    greedy + sampled search for a violation ([`Refuted]), or [`Probable]
    when none is found. *)
