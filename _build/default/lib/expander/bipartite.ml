module Digraph = Ftcsn_graph.Digraph

type t = {
  inlets : int;
  outlets : int;
  adj : int array array;
}

let make ~inlets ~outlets ~adj =
  if Array.length adj <> inlets then invalid_arg "Bipartite.make: adj arity";
  let adj =
    Array.map
      (fun row ->
        Array.iter
          (fun o ->
            if o < 0 || o >= outlets then invalid_arg "Bipartite.make: range")
          row;
        let sorted = Array.copy row in
        Array.sort compare sorted;
        (* dedup *)
        let out = Ftcsn_util.Vec.create () in
        Array.iteri
          (fun i o ->
            if i = 0 || sorted.(i - 1) <> o then Ftcsn_util.Vec.push out o)
          sorted;
        Ftcsn_util.Vec.to_array out)
      adj
  in
  { inlets; outlets; adj }

let degree t i = Array.length t.adj.(i)

let max_degree t = Array.fold_left (fun acc row -> max acc (Array.length row)) 0 t.adj

let edge_count t = Array.fold_left (fun acc row -> acc + Array.length row) 0 t.adj

let in_degrees t =
  let deg = Array.make t.outlets 0 in
  Array.iter (Array.iter (fun o -> deg.(o) <- deg.(o) + 1)) t.adj;
  deg

let neighbourhood_size t s =
  let seen = Ftcsn_util.Bitset.create t.outlets in
  Array.iter (fun i -> Array.iter (Ftcsn_util.Bitset.add seen) t.adj.(i)) s;
  Ftcsn_util.Bitset.cardinal seen

let to_digraph t =
  let b = Digraph.Builder.create () in
  let inlet_ids = Array.init t.inlets (fun _ -> Digraph.Builder.add_vertex b) in
  let outlet_ids = Array.init t.outlets (fun _ -> Digraph.Builder.add_vertex b) in
  Array.iteri
    (fun i row ->
      Array.iter
        (fun o ->
          ignore (Digraph.Builder.add_edge b ~src:inlet_ids.(i) ~dst:outlet_ids.(o)))
        row)
    t.adj;
  (Digraph.Builder.freeze b, inlet_ids, outlet_ids)

let reverse t =
  let radj = Array.make t.outlets [] in
  Array.iteri
    (fun i row -> Array.iter (fun o -> radj.(o) <- i :: radj.(o)) row)
    t.adj;
  make ~inlets:t.outlets ~outlets:t.inlets
    ~adj:(Array.map Array.of_list radj)
