let degree = 8

let side ~m = m * m

let make ~m =
  if m < 1 then invalid_arg "Margulis.make";
  let n = m * m in
  let id x y = (x * m) + y in
  let md a = ((a mod m) + m) mod m in
  let adj =
    Array.init n (fun v ->
        let x = v / m and y = v mod m in
        [|
          id (md (x + (2 * y))) y;
          id (md (x - (2 * y))) y;
          id (md (x + (2 * y) + 1)) y;
          id (md (x - (2 * y) - 1)) y;
          id x (md (y + (2 * x)));
          id x (md (y - (2 * x)));
          id x (md (y + (2 * x) + 1));
          id x (md (y - (2 * x) - 1));
        |])
  in
  Bipartite.make ~inlets:n ~outlets:n ~adj
