let degree = 5

let side ~m = m * m

let make ~m =
  if m < 1 then invalid_arg "Gabber_galil.make";
  let n = m * m in
  let id x y = (x * m) + y in
  let adj =
    Array.init n (fun v ->
        let x = v / m and y = v mod m in
        [|
          id x y;
          id x ((x + y) mod m);
          id x ((x + y + 1) mod m);
          id ((x + y) mod m) y;
          id ((x + y + 1) mod m) y;
        |])
  in
  Bipartite.make ~inlets:n ~outlets:n ~adj
