(** The Margulis explicit expander [M] (as analysed by Gabber–Galil).

    Vertices are Z_m × Z_m; inlet (x, y) is joined to the eight outlets
    obtained from the affine maps
    (x ± 2y, y), (x ± (2y+1), y), (x, y ± 2x), (x, y ± (2x+1)) mod m.
    Cited by the paper as the first explicit concentrator construction. *)

val make : m:int -> Bipartite.t

val side : m:int -> int

val degree : int
(** Always 8 (before deduplication of coincident images). *)
