lib/expander/gabber_galil.ml: Array Bipartite
