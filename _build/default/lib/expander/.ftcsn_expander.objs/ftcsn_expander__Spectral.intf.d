lib/expander/spectral.mli: Bipartite
