lib/expander/check.ml: Array Bipartite Ftcsn_prng Ftcsn_util
