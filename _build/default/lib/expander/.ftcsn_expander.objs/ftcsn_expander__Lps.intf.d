lib/expander/lps.mli: Bipartite
