lib/expander/margulis.ml: Array Bipartite
