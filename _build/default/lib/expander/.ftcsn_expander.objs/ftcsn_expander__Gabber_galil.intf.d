lib/expander/gabber_galil.mli: Bipartite
