lib/expander/lps.ml: Array Bipartite Hashtbl List
