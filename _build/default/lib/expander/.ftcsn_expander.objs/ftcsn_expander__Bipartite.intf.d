lib/expander/bipartite.mli: Ftcsn_graph
