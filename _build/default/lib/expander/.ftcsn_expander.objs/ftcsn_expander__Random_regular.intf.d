lib/expander/random_regular.mli: Bipartite Ftcsn_prng
