lib/expander/check.mli: Bipartite Ftcsn_prng
