lib/expander/margulis.mli: Bipartite
