lib/expander/random_regular.ml: Array Bipartite Ftcsn_prng
