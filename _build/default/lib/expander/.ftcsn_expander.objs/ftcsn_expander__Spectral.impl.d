lib/expander/spectral.ml: Array Bipartite Float
