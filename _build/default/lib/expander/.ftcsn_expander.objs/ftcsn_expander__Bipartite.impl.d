lib/expander/bipartite.ml: Array Ftcsn_graph Ftcsn_util
