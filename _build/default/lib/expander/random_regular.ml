module Rng = Ftcsn_prng.Rng

let independent ~rng ~inlets ~outlets ~degree =
  if degree > outlets then invalid_arg "Random_regular.independent";
  let adj =
    Array.init inlets (fun _ ->
        Rng.sample_without_replacement rng ~n:outlets ~k:degree)
  in
  Bipartite.make ~inlets ~outlets ~adj

let matching_union ~rng ~inlets ~outlets ~degree =
  if inlets <= 0 || outlets <= 0 || degree <= 0 then
    invalid_arg "Random_regular.matching_union";
  let adj = Array.make inlets [] in
  for _round = 1 to degree do
    let pi = Rng.permutation rng outlets in
    (* offset randomises which inlets share an outlet when inlets > outlets *)
    let offset = Rng.int rng outlets in
    for i = 0 to inlets - 1 do
      adj.(i) <- pi.((i + offset) mod outlets) :: adj.(i)
    done
  done;
  Bipartite.make ~inlets ~outlets ~adj:(Array.map Array.of_list adj)
