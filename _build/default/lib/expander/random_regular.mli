(** Seeded random d-regular bipartite graphs.

    Bassalygo and Pinsker [BP] proved that random bipartite graphs of
    constant degree are (αn, βn)-expanding with high probability; the
    paper's recursive construction consumes degree-10 instances.  Two
    samplers are provided: independent distinct choices per inlet, and a
    union of d random near-perfect matchings (regular on both sides when
    the side sizes divide evenly). *)

val independent :
  rng:Ftcsn_prng.Rng.t -> inlets:int -> outlets:int -> degree:int -> Bipartite.t
(** Each inlet picks [degree] distinct outlets uniformly.
    @raise Invalid_argument if [degree > outlets]. *)

val matching_union :
  rng:Ftcsn_prng.Rng.t -> inlets:int -> outlets:int -> degree:int -> Bipartite.t
(** Union of [degree] rounds; in each round inlet [i] is matched with
    outlet [π(i mod outlets)] for a fresh random permutation π, so outlet
    in-degrees are balanced to within ⌈inlets/outlets⌉ per round.  This is
    the flavour used inside the fault-tolerant construction, where both
    sides need bounded degree (the paper's stages have in- and out-degree
    10). *)
