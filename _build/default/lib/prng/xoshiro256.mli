(** xoshiro256** pseudo-random generator (Blackman & Vigna 2018).

    A higher-quality, larger-state alternative to {!Splitmix64} for long
    Monte-Carlo runs; seeded from a SplitMix64 stream per the authors'
    recommendation.  Exposes the same minimal surface so {!Rng} consumers
    can be ported by swapping the module. *)

type t

val create : int64 -> t
(** State seeded by expanding the given 64-bit seed through SplitMix64. *)

val of_state : int64 array -> t
(** Adopt a raw 4-word state.  @raise Invalid_argument unless exactly 4
    words, not all zero. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val jump : t -> t
(** A generator 2¹²⁸ steps ahead — non-overlapping substreams for
    parallel experiments.  The parent is unchanged. *)

val copy : t -> t
