lib/prng/splitmix64.mli:
