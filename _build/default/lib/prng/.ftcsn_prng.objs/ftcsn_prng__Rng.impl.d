lib/prng/rng.ml: Array Ftcsn_util Int64 Splitmix64
