lib/prng/xoshiro256.mli:
