lib/prng/rng.mli: Ftcsn_util
