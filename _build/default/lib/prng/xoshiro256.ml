type t = { state : int64 array } (* 4 words *)

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let create seed =
  let sm = Splitmix64.create seed in
  { state = Array.init 4 (fun _ -> Splitmix64.next sm) }

let of_state words =
  if Array.length words <> 4 then invalid_arg "Xoshiro256.of_state: need 4 words";
  if Array.for_all (fun w -> Int64.equal w 0L) words then
    invalid_arg "Xoshiro256.of_state: all-zero state";
  { state = Array.copy words }

let next t =
  let s = t.state in
  let result = Int64.mul (rotl (Int64.mul s.(1) 5L) 7) 9L in
  let tmp = Int64.shift_left s.(1) 17 in
  s.(2) <- Int64.logxor s.(2) s.(0);
  s.(3) <- Int64.logxor s.(3) s.(1);
  s.(1) <- Int64.logxor s.(1) s.(2);
  s.(0) <- Int64.logxor s.(0) s.(3);
  s.(2) <- Int64.logxor s.(2) tmp;
  s.(3) <- rotl s.(3) 45;
  result

(* official jump polynomial for xoshiro256 *)
let jump_poly =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let child = { state = Array.copy t.state } in
  let acc = Array.make 4 0L in
  Array.iter
    (fun poly ->
      for b = 0 to 63 do
        if Int64.logand poly (Int64.shift_left 1L b) <> 0L then
          for w = 0 to 3 do
            acc.(w) <- Int64.logxor acc.(w) child.state.(w)
          done;
        ignore (next child)
      done)
    jump_poly;
  Array.blit acc 0 child.state 0 4;
  child

let copy t = { state = Array.copy t.state }
