(** SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).

    Deterministic, trivially splittable, and the standard seeder for
    xoshiro-family states.  Every Monte-Carlo experiment in this repository
    is keyed by a SplitMix64 seed so results are bit-reproducible. *)

type t

val create : int64 -> t
(** Generator seeded with the given 64-bit state. *)

val next : t -> int64
(** Next raw 64-bit output (advances the state). *)

val split : t -> t
(** A statistically independent generator derived from (and advancing)
    the parent. *)

val copy : t -> t
