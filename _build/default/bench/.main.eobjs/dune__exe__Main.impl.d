bench/main.ml: Array Experiments List Printf String Sys Timings Unix
