bench/main.mli:
