bench/timings.ml: Analyze Bechamel Benchmark Ftcsn Ftcsn_graph Ftcsn_networks Ftcsn_prng Ftcsn_reliability Ftcsn_routing Hashtbl Instance List Measure Printf Staged String Test Time Toolkit
