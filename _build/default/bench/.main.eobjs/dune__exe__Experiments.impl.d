bench/experiments.ml: Array Float Format Ftcsn Ftcsn_expander Ftcsn_graph Ftcsn_networks Ftcsn_prng Ftcsn_reliability Ftcsn_routing Ftcsn_util Hashtbl List Printf String
