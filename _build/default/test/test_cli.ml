(* End-to-end tests of the ftnet CLI binary: every subcommand is invoked
   as a subprocess with fixed seeds, and its stdout is checked for the
   expected, deterministic content. *)

(* the test binary lives in _build/default/test; the CLI sits next door in
   _build/default/bin regardless of the invocation directory *)
let exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "ftnet.exe"))

let run args =
  let tmp = Filename.temp_file "ftnet" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" exe args tmp in
  let code = Sys.command cmd in
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let out = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  (code, out)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains name out needle =
  if not (contains out needle) then
    Alcotest.failf "%s: expected %S in output:\n%s" name needle out

let test_build () =
  let code, out = run "build --family benes -n 8 --seed 1" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "build" out "benes-8";
  check_contains "build" out "size=80";
  check_contains "build" out "acyclic: true";
  check_contains "build" out "degrees:"

let test_build_ft () =
  let code, out = run "build --family ft -n 8 --seed 1" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "build ft" out "n=8x8";
  check_contains "build ft" out "size=4352"

let test_faults () =
  let code, out = run "faults --family benes -n 16 --eps 0.02 --seed 3" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "faults" out "switches: 224";
  check_contains "faults" out "stripped vertices:";
  check_contains "faults" out "terminals shorted:"

let test_route () =
  let code, out = run "route --family ft -n 4 --eps 0.0 --seed 2" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "route" out "requests: 4, routed: 4, blocked: 0"

let test_route_verbose () =
  let code, out = run "route --family crossbar -n 3 --eps 0.0 -v --seed 2" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "route -v" out "0 ->"

let test_check () =
  let code, out = run "check --family benes -n 4 --seed 1" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "check" out "superconcentrator: yes (exhaustive)";
  check_contains "check" out "rearrangeable: yes (exhaustive)";
  check_contains "check" out "strictly nonblocking: NO"

let test_check_crossbar () =
  let code, out = run "check --family crossbar -n 3 --seed 1" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "check crossbar" out "strictly nonblocking: yes (exhaustive)"

let test_survive () =
  let code, out = run "survive --family butterfly -n 8 --eps 0.01 --trials 40 --seed 5" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "survive" out "P[survives eps=0.01";
  check_contains "survive" out "40 trials"

let test_degrade () =
  let code, out = run "degrade --family ft -n 8 --hazard 1e-5 --ticks 200 --seed 4" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "degrade" out "ticks=200";
  check_contains "degrade" out "placed="

let test_critical () =
  let code, out =
    run "critical --family benes -n 4 --eps 0.05 --sample 6 --trials 50 --seed 2"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "critical" out "most critical sampled switches";
  check_contains "critical" out "open +"

let test_render_grid () =
  let code, out = run "render --kind grid -n 4" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "render grid" out "o---o"

let test_render_census () =
  let code, out = run "render --kind census --family benes -n 8" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "render census" out "stage | vertices | out-edges"

let test_render_dot () =
  let code, out = run "render --kind dot --family crossbar -n 2" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "render dot" out "digraph";
  check_contains "render dot" out "v0 -> v2"

let test_unknown_family_fails () =
  let code, _ = run "build --family nosuch -n 4" in
  Alcotest.(check bool) "nonzero exit" true (code <> 0)

let test_help () =
  let code, out = run "--help=plain" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "help" out "ftnet";
  List.iter
    (fun sub -> check_contains "help lists subcommand" out sub)
    [
      "build"; "faults"; "route"; "check"; "survive"; "degrade"; "critical";
      "render";
    ]

let () =
  (* run only when the binary exists (dune dependency guarantees it) *)
  Alcotest.run "ftnet_cli"
    [
      ( "subcommands",
        [
          Alcotest.test_case "build" `Quick test_build;
          Alcotest.test_case "build ft" `Quick test_build_ft;
          Alcotest.test_case "faults" `Quick test_faults;
          Alcotest.test_case "route" `Quick test_route;
          Alcotest.test_case "route verbose" `Quick test_route_verbose;
          Alcotest.test_case "check benes" `Slow test_check;
          Alcotest.test_case "check crossbar" `Quick test_check_crossbar;
          Alcotest.test_case "survive" `Quick test_survive;
          Alcotest.test_case "degrade" `Quick test_degrade;
          Alcotest.test_case "critical" `Quick test_critical;
          Alcotest.test_case "render grid" `Quick test_render_grid;
          Alcotest.test_case "render census" `Quick test_render_census;
          Alcotest.test_case "render dot" `Quick test_render_dot;
          Alcotest.test_case "unknown family" `Quick test_unknown_family_fails;
          Alcotest.test_case "help" `Quick test_help;
        ] );
    ]
