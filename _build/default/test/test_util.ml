(* Unit and property tests for ftcsn_util. *)

module Vec = Ftcsn_util.Vec
module Bitset = Ftcsn_util.Bitset
module Union_find = Ftcsn_util.Union_find
module Perm = Ftcsn_util.Perm
module Combinat = Ftcsn_util.Combinat
module Prob = Ftcsn_util.Prob
module Stats = Ftcsn_util.Stats
module Table = Ftcsn_util.Table

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* ---------- Vec ---------- *)

let test_vec_push_pop () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check "length" 100 (Vec.length v);
  check "get" 37 (Vec.get v 37);
  check "last" 99 (Vec.last v);
  check "pop" 99 (Vec.pop v);
  check "length after pop" 99 (Vec.length v)

let test_vec_bounds () =
  let v = Vec.make 3 0 in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty")
    (fun () -> ignore (Vec.pop (Vec.create ())))

let test_vec_round_trip () =
  let a = Array.init 17 (fun i -> i * i) in
  let v = Vec.of_array a in
  Alcotest.(check (array int)) "to_array" a (Vec.to_array v);
  Alcotest.(check (list int)) "to_list" (Array.to_list a) (Vec.to_list v)

let test_vec_iteration () =
  let v = Vec.of_array [| 1; 2; 3; 4 |] in
  check "fold" 10 (Vec.fold_left ( + ) 0 v);
  checkb "exists" true (Vec.exists (fun x -> x = 3) v);
  checkb "not exists" false (Vec.exists (fun x -> x = 7) v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  check "iteri count" 4 (List.length !seen)

let test_vec_clear_reuse () =
  let v = Vec.create () in
  Vec.push v 1;
  Vec.clear v;
  checkb "empty" true (Vec.is_empty v);
  Vec.push v 5;
  check "reused" 5 (Vec.get v 0)

(* ---------- Bitset ---------- *)

let test_bitset_basic () =
  let s = Bitset.create 200 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 199;
  check "cardinal" 4 (Bitset.cardinal s);
  checkb "mem 63" true (Bitset.mem s 63);
  checkb "mem 62" false (Bitset.mem s 62);
  Bitset.remove s 63;
  checkb "removed" false (Bitset.mem s 63);
  check "cardinal after" 3 (Bitset.cardinal s)

let test_bitset_iter_order () =
  let s = Bitset.create 100 in
  List.iter (Bitset.add s) [ 40; 3; 99; 17 ];
  Alcotest.(check (list int)) "sorted" [ 3; 17; 40; 99 ] (Bitset.to_list s)

let test_bitset_set_ops () =
  let a = Bitset.create 50 and b = Bitset.create 50 in
  List.iter (Bitset.add a) [ 1; 2; 3 ];
  List.iter (Bitset.add b) [ 3; 4 ];
  check "inter" 1 (Bitset.inter_cardinal a b);
  checkb "not disjoint" false (Bitset.disjoint a b);
  Bitset.union_into a b;
  check "union card" 4 (Bitset.cardinal a);
  let c = Bitset.copy a in
  Bitset.clear a;
  check "clear" 0 (Bitset.cardinal a);
  check "copy unaffected" 4 (Bitset.cardinal c)

(* ---------- Union_find ---------- *)

let test_union_find_classes () =
  let uf = Union_find.create 10 in
  check "initial classes" 10 (Union_find.class_count uf);
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  Union_find.union uf 5 6;
  check "classes" 7 (Union_find.class_count uf);
  checkb "equiv" true (Union_find.equiv uf 0 2);
  checkb "not equiv" false (Union_find.equiv uf 0 5);
  check "class size" 3 (Union_find.class_size uf 1)

let test_union_find_labels () =
  let uf = Union_find.create 6 in
  Union_find.union uf 0 5;
  Union_find.union uf 2 3;
  let label, k = Union_find.compress_labels uf in
  check "class count" 4 k;
  check "same label" label.(0) label.(5);
  check "same label2" label.(2) label.(3);
  Array.iter (fun l -> checkb "dense" true (l >= 0 && l < k)) label

let test_union_find_idempotent () =
  let uf = Union_find.create 4 in
  Union_find.union uf 0 1;
  Union_find.union uf 0 1;
  Union_find.union uf 1 0;
  check "classes" 3 (Union_find.class_count uf)

(* ---------- Perm ---------- *)

let test_perm_compose_inverse () =
  let p = [| 2; 0; 1; 3 |] in
  checkb "valid" true (Perm.is_valid p);
  let inv = Perm.inverse p in
  Alcotest.(check (array int)) "p . p^-1 = id" (Perm.identity 4) (Perm.compose p inv);
  Alcotest.(check (array int)) "p^-1 . p = id" (Perm.identity 4) (Perm.compose inv p)

let test_perm_iter_all_count () =
  let count = ref 0 in
  Perm.iter_all 5 (fun p ->
      incr count;
      if not (Perm.is_valid p) then Alcotest.fail "invalid perm from iter_all");
  check "5! permutations" 120 !count

let test_perm_iter_all_distinct () =
  let seen = Hashtbl.create 64 in
  Perm.iter_all 4 (fun p -> Hashtbl.replace seen (Array.to_list p) ());
  check "4! distinct" 24 (Hashtbl.length seen)

let test_perm_cycles () =
  let p = [| 1; 0; 2; 4; 3 |] in
  check "cycles" 3 (List.length (Perm.cycles p));
  check "fixed points" 1 (Perm.count_fixed_points p);
  check "swap distance" 2 (Perm.swap_distance p)

let test_perm_rotation_reversal () =
  Alcotest.(check (array int)) "rot" [| 2; 3; 0; 1 |] (Perm.rotation 4 2);
  Alcotest.(check (array int)) "rot neg" (Perm.rotation 4 3) (Perm.rotation 4 (-1));
  Alcotest.(check (array int)) "rev" [| 3; 2; 1; 0 |] (Perm.reversal 4);
  checkb "invalid" false (Perm.is_valid [| 0; 0; 1 |])

(* ---------- Combinat ---------- *)

let test_binomial_values () =
  checkf "C(5,2)" 10.0 (Combinat.binomial 5 2);
  checkf "C(10,0)" 1.0 (Combinat.binomial 10 0);
  checkf "C(10,10)" 1.0 (Combinat.binomial 10 10);
  checkf "C(4,7)" 0.0 (Combinat.binomial 4 7);
  check "count" 252 (Combinat.subset_count ~n:10 ~k:5)

let test_log_binomial_consistency () =
  (* log-space formula must agree with the exact product for mid sizes *)
  let exact = Combinat.binomial 40 17 in
  let via_log = exp (Combinat.log_binomial 40 17) in
  Alcotest.(check bool) "within 1e-6 rel" true
    (Float.abs (exact -. via_log) /. exact < 1e-6)

let test_iter_subsets () =
  let count = ref 0 in
  let last = ref [||] in
  Combinat.iter_subsets ~n:6 ~k:3 (fun s ->
      incr count;
      last := Array.copy s);
  check "C(6,3)" 20 !count;
  Alcotest.(check (array int)) "lexicographic last" [| 3; 4; 5 |] !last

let test_iter_subsets_edge () =
  let count = ref 0 in
  Combinat.iter_subsets ~n:4 ~k:0 (fun _ -> incr count);
  check "k=0" 1 !count;
  Combinat.iter_subsets ~n:4 ~k:4 (fun s ->
      Alcotest.(check (array int)) "full set" [| 0; 1; 2; 3 |] (Array.copy s))

let test_choose_indices () =
  let rng = Ftcsn_prng.Rng.create ~seed:1 in
  for _ = 1 to 50 do
    let s =
      Combinat.choose_indices ~rand_int:(Ftcsn_prng.Rng.int rng) ~n:20 ~k:7
    in
    check "size" 7 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "sorted+distinct" sorted s;
    Array.iteri
      (fun i x ->
        if i > 0 && s.(i - 1) = x then Alcotest.fail "duplicate index")
      s
  done

(* ---------- Prob ---------- *)

let test_pow () =
  checkf "2^10" 1024.0 (Prob.pow 2.0 10);
  checkf "x^0" 1.0 (Prob.pow 0.3 0);
  checkf "0.5^3" 0.125 (Prob.pow 0.5 3)

let test_binomial_tails_complement () =
  (* P[X >= k] + P[X <= k-1] = 1 *)
  let n = 30 and p = 0.3 in
  List.iter
    (fun k ->
      let s = Prob.binomial_tail_ge ~n ~p ~k +. Prob.binomial_tail_le ~n ~p ~k:(k - 1) in
      Alcotest.(check (float 1e-9)) "complement" 1.0 s)
    [ 1; 5; 15; 29 ]

let test_binomial_tail_known () =
  (* P[Bin(4, 1/2) >= 2] = 11/16 *)
  Alcotest.(check (float 1e-12)) "bin(4,.5)>=2" (11.0 /. 16.0)
    (Prob.binomial_tail_ge ~n:4 ~p:0.5 ~k:2)

let test_chernoff_dominates () =
  let n = 200 and p = 0.1 in
  List.iter
    (fun k ->
      let exact = Prob.binomial_tail_ge ~n ~p ~k in
      let bound = Prob.chernoff_upper ~n ~p ~k in
      checkb
        (Printf.sprintf "chernoff >= exact at k=%d" k)
        true
        (bound +. 1e-12 >= exact))
    [ 25; 40; 60; 100 ]

let test_wilson_interval () =
  let lo, hi = Prob.wilson_interval ~successes:50 ~trials:100 ~z:1.96 in
  checkb "contains phat" true (lo < 0.5 && hi > 0.5);
  checkb "in range" true (lo >= 0.0 && hi <= 1.0);
  let lo0, hi0 = Prob.wilson_interval ~successes:0 ~trials:100 ~z:1.96 in
  checkf "zero successes lo" 0.0 lo0;
  checkb "zero successes hi > 0" true (hi0 > 0.0)

let test_moore_shannon_bound () =
  (* one path of length 1 failing with prob eps *)
  checkf "single" 0.25 (Prob.moore_shannon_bound ~eps:0.25 ~len:1 ~count:1);
  let v = Prob.moore_shannon_bound ~eps:0.25 ~len:3 ~count:10 in
  checkb "monotone" true (v > 0.0 && v < 1.0)

(* ---------- Stats ---------- *)

let test_stats_moments () =
  let s = Stats.of_array [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  checkf "mean" 5.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Stats.variance s);
  checkf "min" 2.0 (Stats.min_value s);
  checkf "max" 9.0 (Stats.max_value s);
  checkf "sum" 40.0 (Stats.sum s);
  check "count" 8 (Stats.count s)

let test_stats_empty_and_single () =
  let s = Stats.create () in
  checkf "empty mean" 0.0 (Stats.mean s);
  Stats.add s 3.0;
  checkf "single mean" 3.0 (Stats.mean s);
  checkf "single var" 0.0 (Stats.variance s)

let test_percentiles () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "median even" 2.5 (Stats.median_of_sorted a);
  checkf "median odd" 2.0 (Stats.median_of_sorted [| 1.0; 2.0; 3.0 |]);
  checkf "p0" 1.0 (Stats.percentile_of_sorted a 0.0);
  checkf "p100" 4.0 (Stats.percentile_of_sorted a 1.0);
  checkf "p50" 2.5 (Stats.percentile_of_sorted a 0.5)

(* ---------- Table ---------- *)

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t =
    Table.create ~title:"t" ~columns:[ ("a", Table.Left); ("bb", Table.Right) ]
  in
  Table.add_row t [ "x"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  checkb "has title" true (contains_substring s "== t ==");
  checkb "has header" true (contains_substring s "bb");
  checkb "has cell" true (contains_substring s "22")

let test_table_arity () =
  let t = Table.create ~title:"t" ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_formats () =
  Alcotest.(check string) "fi" "42" (Table.fi 42);
  Alcotest.(check string) "ff" "3.142" (Table.ff 3.14159);
  Alcotest.(check string) "fe" "1.23e-04" (Table.fe 1.23e-4);
  Alcotest.(check string) "fratio zero" "-" (Table.fratio 1.0 0.0)

(* ---------- qcheck properties ---------- *)

let prop_perm_shuffle_valid =
  QCheck2.Test.make ~name:"shuffle yields valid permutations" ~count:200
    QCheck2.Gen.(pair (int_range 1 50) int)
    (fun (n, seed) ->
      let rng = Ftcsn_prng.Rng.create ~seed in
      Perm.is_valid (Perm.shuffle ~rand_int:(Ftcsn_prng.Rng.int rng) n))

let prop_perm_double_inverse =
  QCheck2.Test.make ~name:"inverse . inverse = id" ~count:200
    QCheck2.Gen.(pair (int_range 1 30) int)
    (fun (n, seed) ->
      let rng = Ftcsn_prng.Rng.create ~seed in
      let p = Perm.shuffle ~rand_int:(Ftcsn_prng.Rng.int rng) n in
      Perm.inverse (Perm.inverse p) = p)

let prop_bitset_add_remove =
  QCheck2.Test.make ~name:"bitset add/remove round-trips" ~count:200
    QCheck2.Gen.(list (int_range 0 99))
    (fun xs ->
      let s = Bitset.create 100 in
      List.iter (Bitset.add s) xs;
      let sorted = List.sort_uniq compare xs in
      Bitset.to_list s = sorted
      && Bitset.cardinal s = List.length sorted)

let prop_union_find_transitive =
  QCheck2.Test.make ~name:"union-find equivalence is transitive" ~count:100
    QCheck2.Gen.(list (pair (int_range 0 19) (int_range 0 19)))
    (fun pairs ->
      let uf = Union_find.create 20 in
      List.iter (fun (a, b) -> Union_find.union uf a b) pairs;
      let ok = ref true in
      for a = 0 to 19 do
        for b = 0 to 19 do
          for c = 0 to 19 do
            if
              Union_find.equiv uf a b && Union_find.equiv uf b c
              && not (Union_find.equiv uf a c)
            then ok := false
          done
        done
      done;
      !ok)

let prop_binomial_symmetry =
  QCheck2.Test.make ~name:"C(n,k) = C(n,n-k)" ~count:200
    QCheck2.Gen.(pair (int_range 0 50) (int_range 0 50))
    (fun (n, k) ->
      k > n || Float.abs (Combinat.binomial n k -. Combinat.binomial n (n - k)) < 1e-6)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_perm_shuffle_valid;
      prop_perm_double_inverse;
      prop_bitset_add_remove;
      prop_union_find_transitive;
      prop_binomial_symmetry;
    ]

let () =
  Alcotest.run "ftcsn_util"
    [
      ( "vec",
        [
          Alcotest.test_case "push/pop" `Quick test_vec_push_pop;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "round-trip" `Quick test_vec_round_trip;
          Alcotest.test_case "iteration" `Quick test_vec_iteration;
          Alcotest.test_case "clear/reuse" `Quick test_vec_clear_reuse;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bitset_basic;
          Alcotest.test_case "iter order" `Quick test_bitset_iter_order;
          Alcotest.test_case "set ops" `Quick test_bitset_set_ops;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "classes" `Quick test_union_find_classes;
          Alcotest.test_case "labels" `Quick test_union_find_labels;
          Alcotest.test_case "idempotent" `Quick test_union_find_idempotent;
        ] );
      ( "perm",
        [
          Alcotest.test_case "compose/inverse" `Quick test_perm_compose_inverse;
          Alcotest.test_case "iter_all count" `Quick test_perm_iter_all_count;
          Alcotest.test_case "iter_all distinct" `Quick test_perm_iter_all_distinct;
          Alcotest.test_case "cycles" `Quick test_perm_cycles;
          Alcotest.test_case "rotation/reversal" `Quick test_perm_rotation_reversal;
        ] );
      ( "combinat",
        [
          Alcotest.test_case "binomial values" `Quick test_binomial_values;
          Alcotest.test_case "log consistency" `Quick test_log_binomial_consistency;
          Alcotest.test_case "iter_subsets" `Quick test_iter_subsets;
          Alcotest.test_case "iter_subsets edges" `Quick test_iter_subsets_edge;
          Alcotest.test_case "choose_indices" `Quick test_choose_indices;
        ] );
      ( "prob",
        [
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "tail complement" `Quick test_binomial_tails_complement;
          Alcotest.test_case "tail known value" `Quick test_binomial_tail_known;
          Alcotest.test_case "chernoff dominates" `Quick test_chernoff_dominates;
          Alcotest.test_case "wilson" `Quick test_wilson_interval;
          Alcotest.test_case "moore-shannon bound" `Quick test_moore_shannon_bound;
        ] );
      ( "stats",
        [
          Alcotest.test_case "moments" `Quick test_stats_moments;
          Alcotest.test_case "empty/single" `Quick test_stats_empty_and_single;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
      ("properties", props);
    ]
