test/test_expander.ml: Alcotest Array Ftcsn_expander Ftcsn_graph Ftcsn_prng Ftcsn_reliability Ftcsn_util Fun List Printf QCheck2 QCheck_alcotest
