test/test_networks.ml: Alcotest Array Ftcsn_expander Ftcsn_graph Ftcsn_networks Ftcsn_prng Ftcsn_routing Ftcsn_util Fun List Printf QCheck2 QCheck_alcotest
