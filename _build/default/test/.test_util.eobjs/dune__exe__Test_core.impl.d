test/test_core.ml: Alcotest Array Ftcsn Ftcsn_flow Ftcsn_graph Ftcsn_networks Ftcsn_prng Ftcsn_reliability Ftcsn_routing Ftcsn_util Fun Hashtbl List Printf QCheck2 QCheck_alcotest String
