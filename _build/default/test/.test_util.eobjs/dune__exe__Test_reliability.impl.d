test/test_reliability.ml: Alcotest Array Float Ftcsn_graph Ftcsn_prng Ftcsn_reliability Ftcsn_util List Printf QCheck2 QCheck_alcotest
