test/test_routing.mli:
