test/test_flow.ml: Alcotest Array Ftcsn_flow Ftcsn_graph Ftcsn_prng Ftcsn_util Fun List QCheck2 QCheck_alcotest
