test/test_integration.ml: Alcotest Array Float Ftcsn Ftcsn_graph Ftcsn_networks Ftcsn_prng Ftcsn_reliability Ftcsn_routing Ftcsn_util Fun List
