test/test_util.ml: Alcotest Array Float Ftcsn_prng Ftcsn_util Hashtbl List Printf QCheck2 QCheck_alcotest String
