test/test_prng.ml: Alcotest Array Float Ftcsn_prng Ftcsn_util Fun Hashtbl Int64 List Option QCheck2 QCheck_alcotest
