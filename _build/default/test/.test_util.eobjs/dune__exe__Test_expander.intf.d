test/test_expander.mli:
