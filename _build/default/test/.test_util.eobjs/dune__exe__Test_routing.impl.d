test/test_routing.ml: Alcotest Array Format Ftcsn_graph Ftcsn_networks Ftcsn_prng Ftcsn_routing Ftcsn_util List QCheck2 QCheck_alcotest
