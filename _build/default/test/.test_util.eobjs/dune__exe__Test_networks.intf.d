test/test_networks.mli:
