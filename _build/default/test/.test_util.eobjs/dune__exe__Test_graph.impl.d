test/test_graph.ml: Alcotest Array Ftcsn_graph Ftcsn_prng Ftcsn_util List Printf QCheck2 QCheck_alcotest String
