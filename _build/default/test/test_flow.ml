(* Tests for max-flow, Menger certificates, and bipartite matching. *)

module Digraph = Ftcsn_graph.Digraph
module Maxflow = Ftcsn_flow.Maxflow
module Menger = Ftcsn_flow.Menger
module Hopcroft_karp = Ftcsn_flow.Hopcroft_karp
module Rng = Ftcsn_prng.Rng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_maxflow_single_edge () =
  let net = Maxflow.create ~n:2 in
  let a = Maxflow.add_edge net ~src:0 ~dst:1 ~cap:5 in
  check "flow value" 5 (Maxflow.max_flow net ~source:0 ~sink:1);
  check "arc flow" 5 (Maxflow.flow_on net a)

let test_maxflow_bottleneck () =
  (* 0 -> 1 (cap 3) -> 2 (cap 2): bottleneck 2 *)
  let net = Maxflow.create ~n:3 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:3);
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~cap:2);
  check "bottleneck" 2 (Maxflow.max_flow net ~source:0 ~sink:2)

let test_maxflow_classic () =
  (* classic CLRS-style instance with known max flow 23 *)
  let net = Maxflow.create ~n:6 in
  let edges =
    [
      (0, 1, 16); (0, 2, 13); (1, 2, 10); (2, 1, 4); (1, 3, 12); (3, 2, 9);
      (2, 4, 14); (4, 3, 7); (3, 5, 20); (4, 5, 4);
    ]
  in
  List.iter (fun (s, d, c) -> ignore (Maxflow.add_edge net ~src:s ~dst:d ~cap:c)) edges;
  check "clrs flow" 23 (Maxflow.max_flow net ~source:0 ~sink:5)

let test_maxflow_disconnected () =
  let net = Maxflow.create ~n:3 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1);
  check "no route" 0 (Maxflow.max_flow net ~source:0 ~sink:2)

let test_min_cut_side () =
  let net = Maxflow.create ~n:4 in
  ignore (Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1);
  ignore (Maxflow.add_edge net ~src:1 ~dst:2 ~cap:10);
  ignore (Maxflow.add_edge net ~src:2 ~dst:3 ~cap:10);
  ignore (Maxflow.max_flow net ~source:0 ~sink:3);
  let side = Maxflow.min_cut_source_side net ~source:0 in
  Alcotest.(check (list int)) "source side is just 0" [ 0 ]
    (Ftcsn_util.Bitset.to_list side)

let diamond () = Digraph.of_edges ~n:4 [| (0, 1); (0, 2); (1, 3); (2, 3) |]

let test_menger_diamond () =
  let g = diamond () in
  (* endpoints count toward disjointness: a single source yields one path
     even though two edge-disjoint routes exist *)
  check "single pair" 1
    (Menger.max_vertex_disjoint g ~sources:[| 0 |] ~sinks:[| 3 |]);
  (* the two middles each reach the sink, but they share it *)
  check "shared sink" 1
    (Menger.max_vertex_disjoint g ~sources:[| 1; 2 |] ~sinks:[| 3 |])

let test_menger_parallel_rails () =
  (* two independent rails 0->2->4 and 1->3->5 *)
  let g = Digraph.of_edges ~n:6 [| (0, 2); (2, 4); (1, 3); (3, 5) |] in
  check "two rails" 2
    (Menger.max_vertex_disjoint g ~sources:[| 0; 1 |] ~sinks:[| 4; 5 |]);
  let paths = Menger.vertex_disjoint_paths g ~sources:[| 0; 1 |] ~sinks:[| 4; 5 |] in
  check "two paths" 2 (List.length paths);
  let all = List.concat paths in
  check "disjoint vertices" (List.length all)
    (List.length (List.sort_uniq compare all))

let test_menger_shared_midpoint () =
  (* both rails forced through vertex 6: only one disjoint path *)
  let g =
    Digraph.of_edges ~n:7 [| (0, 6); (1, 6); (6, 4); (6, 5) |]
  in
  check "cut vertex" 1
    (Menger.max_vertex_disjoint g ~sources:[| 0; 1 |] ~sinks:[| 4; 5 |])

let test_menger_forbidden () =
  let g = Digraph.of_edges ~n:6 [| (0, 2); (2, 4); (1, 3); (3, 5) |] in
  check "forbid one rail" 1
    (Menger.max_vertex_disjoint
       ~forbidden:(fun v -> v = 2)
       g ~sources:[| 0; 1 |] ~sinks:[| 4; 5 |])

let test_menger_paths_valid_edges () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 20 do
    let n = 8 + Rng.int rng 8 in
    let m = 2 * n in
    let edges =
      Array.init m (fun _ ->
          let a = Rng.int rng n and b = Rng.int rng n in
          (min a b, max a b + if a = b then 1 else 0))
    in
    let edges = Array.map (fun (a, b) -> (a, min b (n - 1))) edges in
    let g = Digraph.of_edges ~n edges in
    let sources = [| 0; 1 |] and sinks = [| n - 2; n - 1 |] in
    let paths = Menger.vertex_disjoint_paths g ~sources ~sinks in
    List.iter
      (fun path ->
        let rec pairs = function
          | a :: (b :: _ as rest) ->
              let found =
                Digraph.fold_out g a ~init:false ~f:(fun acc ~dst ~eid:_ ->
                    acc || dst = b)
              in
              checkb "edge exists" true found;
              pairs rest
          | _ -> ()
        in
        pairs path)
      paths
  done

let test_hopcroft_karp_perfect () =
  (* K3,3 minus a perfect matching still has a perfect matching *)
  let adj = [| [| 1; 2 |]; [| 0; 2 |]; [| 0; 1 |] |] in
  let m = Hopcroft_karp.matching ~n_left:3 ~n_right:3 ~adj in
  check "size" 3 m.Hopcroft_karp.size;
  checkb "perfect" true (Hopcroft_karp.is_perfect_on_left m);
  (* matching is consistent *)
  Array.iteri
    (fun l r -> check "pair consistency" l m.Hopcroft_karp.pair_right.(r))
    m.Hopcroft_karp.pair_left

let test_hopcroft_karp_deficient () =
  (* two lefts share a single right: Hall violation *)
  let adj = [| [| 0 |]; [| 0 |] |] in
  let m = Hopcroft_karp.matching ~n_left:2 ~n_right:1 ~adj in
  check "size" 1 m.Hopcroft_karp.size;
  checkb "not perfect" false (Hopcroft_karp.is_perfect_on_left m)

let test_hopcroft_karp_empty () =
  let m = Hopcroft_karp.matching ~n_left:3 ~n_right:3 ~adj:[| [||]; [||]; [||] |] in
  check "empty" 0 m.Hopcroft_karp.size

let test_hopcroft_karp_skewed () =
  (* left i connects to rights {i, i+1}: greedy could go wrong; HK finds 4 *)
  let adj = [| [| 0; 1 |]; [| 1; 2 |]; [| 2; 3 |]; [| 3; 4 |] |] in
  let m = Hopcroft_karp.matching ~n_left:4 ~n_right:5 ~adj in
  check "size" 4 m.Hopcroft_karp.size

(* Menger duality: max disjoint paths = flow value; matching in bipartite
   graph = vertex-disjoint paths in its 2-layer digraph. *)
let prop_matching_equals_menger =
  QCheck2.Test.make ~name:"Hopcroft-Karp size = Menger disjoint paths" ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let nl = 1 + Rng.int rng 8 and nr = 1 + Rng.int rng 8 in
      let adj =
        Array.init nl (fun _ ->
            let deg = Rng.int rng (nr + 1) in
            Rng.sample_without_replacement rng ~n:nr ~k:deg)
      in
      let m = Hopcroft_karp.matching ~n_left:nl ~n_right:nr ~adj in
      (* bipartite digraph: lefts 0..nl-1, rights nl..nl+nr-1 *)
      let b = Digraph.Builder.create () in
      ignore (Digraph.Builder.add_vertices b (nl + nr));
      Array.iteri
        (fun l row ->
          Array.iter
            (fun r -> ignore (Digraph.Builder.add_edge b ~src:l ~dst:(nl + r)))
            row)
        adj;
      let g = Digraph.Builder.freeze b in
      let flow =
        Menger.max_vertex_disjoint g
          ~sources:(Array.init nl Fun.id)
          ~sinks:(Array.init nr (fun r -> nl + r))
      in
      flow = m.Hopcroft_karp.size)

let prop_paths_count_matches_value =
  QCheck2.Test.make ~name:"extracted path count = flow value" ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 6 + Rng.int rng 10 in
      let m = 2 * n in
      let edges = Array.init m (fun _ -> (Rng.int rng n, Rng.int rng n)) in
      let g = Digraph.of_edges ~n edges in
      let sources = [| 0; 1; 2 |] and sinks = [| n - 3; n - 2; n - 1 |] in
      let value = Menger.max_vertex_disjoint g ~sources ~sinks in
      let paths = Menger.vertex_disjoint_paths g ~sources ~sinks in
      List.length paths = value)

let prop_paths_are_disjoint =
  QCheck2.Test.make ~name:"extracted paths are vertex-disjoint" ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 6 + Rng.int rng 10 in
      let m = 3 * n in
      let edges = Array.init m (fun _ -> (Rng.int rng n, Rng.int rng n)) in
      let g = Digraph.of_edges ~n edges in
      let sources = [| 0; 1 |] and sinks = [| n - 2; n - 1 |] in
      let paths = Menger.vertex_disjoint_paths g ~sources ~sinks in
      let all = List.concat paths in
      List.length all = List.length (List.sort_uniq compare all))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_matching_equals_menger;
      prop_paths_count_matches_value;
      prop_paths_are_disjoint;
    ]

let () =
  Alcotest.run "ftcsn_flow"
    [
      ( "maxflow",
        [
          Alcotest.test_case "single edge" `Quick test_maxflow_single_edge;
          Alcotest.test_case "bottleneck" `Quick test_maxflow_bottleneck;
          Alcotest.test_case "classic instance" `Quick test_maxflow_classic;
          Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
          Alcotest.test_case "min cut side" `Quick test_min_cut_side;
        ] );
      ( "menger",
        [
          Alcotest.test_case "diamond" `Quick test_menger_diamond;
          Alcotest.test_case "parallel rails" `Quick test_menger_parallel_rails;
          Alcotest.test_case "shared midpoint" `Quick test_menger_shared_midpoint;
          Alcotest.test_case "forbidden" `Quick test_menger_forbidden;
          Alcotest.test_case "paths use real edges" `Quick
            test_menger_paths_valid_edges;
        ] );
      ( "hopcroft-karp",
        [
          Alcotest.test_case "perfect" `Quick test_hopcroft_karp_perfect;
          Alcotest.test_case "deficient" `Quick test_hopcroft_karp_deficient;
          Alcotest.test_case "empty" `Quick test_hopcroft_karp_empty;
          Alcotest.test_case "skewed" `Quick test_hopcroft_karp_skewed;
        ] );
      ("properties", props);
    ]
