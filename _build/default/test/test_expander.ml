(* Tests for bipartite expanders: constructions, certification, spectra. *)

module Bipartite = Ftcsn_expander.Bipartite
module Random_regular = Ftcsn_expander.Random_regular
module Gabber_galil = Ftcsn_expander.Gabber_galil
module Margulis = Ftcsn_expander.Margulis
module Check = Ftcsn_expander.Check
module Spectral = Ftcsn_expander.Spectral
module Rng = Ftcsn_prng.Rng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_bipartite_make_validates () =
  Alcotest.check_raises "range" (Invalid_argument "Bipartite.make: range")
    (fun () ->
      ignore (Bipartite.make ~inlets:1 ~outlets:2 ~adj:[| [| 5 |] |]))

let test_bipartite_dedup () =
  let b = Bipartite.make ~inlets:1 ~outlets:4 ~adj:[| [| 2; 2; 0; 2 |] |] in
  check "deduped degree" 2 (Bipartite.degree b 0);
  check "edges" 2 (Bipartite.edge_count b)

let test_bipartite_neighbourhood () =
  let b =
    Bipartite.make ~inlets:3 ~outlets:4
      ~adj:[| [| 0; 1 |]; [| 1; 2 |]; [| 3 |] |]
  in
  check "pair" 3 (Bipartite.neighbourhood_size b [| 0; 1 |]);
  check "all" 4 (Bipartite.neighbourhood_size b [| 0; 1; 2 |]);
  Alcotest.(check (list int)) "in degrees" [ 1; 2; 1; 1 ]
    (Array.to_list (Bipartite.in_degrees b))

let test_bipartite_reverse () =
  let b = Bipartite.make ~inlets:2 ~outlets:3 ~adj:[| [| 0; 2 |]; [| 2 |] |] in
  let r = Bipartite.reverse b in
  check "reversed inlets" 3 r.Bipartite.inlets;
  check "reversed edges" 3 (Bipartite.edge_count r);
  Alcotest.(check (list int)) "outlet 2 sees both" [ 0; 1 ]
    (Array.to_list r.Bipartite.adj.(2))

let test_bipartite_to_digraph () =
  let b = Bipartite.make ~inlets:2 ~outlets:2 ~adj:[| [| 0 |]; [| 0; 1 |] |] in
  let g, ins, outs = Bipartite.to_digraph b in
  check "vertices" 4 (Ftcsn_graph.Digraph.vertex_count g);
  check "edges" 3 (Ftcsn_graph.Digraph.edge_count g);
  check "in array" 2 (Array.length ins);
  check "out array" 2 (Array.length outs)

let test_random_independent_degrees () =
  let rng = Rng.create ~seed:7 in
  let b = Random_regular.independent ~rng ~inlets:20 ~outlets:30 ~degree:5 in
  for i = 0 to 19 do
    check "degree" 5 (Bipartite.degree b i)
  done

let test_random_matching_union_balance () =
  let rng = Rng.create ~seed:8 in
  let b = Random_regular.matching_union ~rng ~inlets:16 ~outlets:16 ~degree:4 in
  (* every outlet in-degree = degree when sides are equal (before dedup
     collisions, which can only reduce; with 4 rounds collisions are
     possible but in-degree stays between 1 and 4) *)
  Array.iter
    (fun d -> checkb "balanced in-degree" true (d >= 1 && d <= 4))
    (Bipartite.in_degrees b);
  (* dedup can only lose collided edges: between 1 and 4 per inlet *)
  let edges = Bipartite.edge_count b in
  checkb "edge total bounded" true (edges > 16 && edges <= 16 * 4)

let test_gabber_galil_structure () =
  let b = Gabber_galil.make ~m:5 in
  check "side" 25 b.Bipartite.inlets;
  check "side out" 25 b.Bipartite.outlets;
  (* degree <= 5 after dedup, >= 3 always *)
  for i = 0 to 24 do
    let d = Bipartite.degree b i in
    checkb "degree in range" true (d >= 3 && d <= 5)
  done

let test_gabber_galil_expands_small_sets () =
  let b = Gabber_galil.make ~m:4 in
  (* every 2-subset of the 16 inlets must see more than 2 outlets *)
  let m = Check.min_neighbourhood_exhaustive b ~c:2 in
  checkb "2-sets expand" true (m > 2)

let test_margulis_structure () =
  let b = Margulis.make ~m:4 in
  check "side" 16 b.Bipartite.inlets;
  for i = 0 to 15 do
    checkb "degree" true (Bipartite.degree b i >= 4 && Bipartite.degree b i <= 8)
  done

let test_min_neighbourhood_exhaustive_exact () =
  (* engineered instance: inlets 0 and 1 share both outlets *)
  let b =
    Bipartite.make ~inlets:4 ~outlets:4
      ~adj:[| [| 0; 1 |]; [| 0; 1 |]; [| 2; 3 |]; [| 1; 2 |] |]
  in
  check "min over pairs" 2 (Check.min_neighbourhood_exhaustive b ~c:2);
  check "min over singles" 2 (Check.min_neighbourhood_exhaustive b ~c:1)

let test_sampled_and_greedy_bound_exhaustive () =
  let rng = Rng.create ~seed:9 in
  let b = Random_regular.independent ~rng ~inlets:14 ~outlets:14 ~degree:3 in
  let exact = Check.min_neighbourhood_exhaustive b ~c:4 in
  let sampled = Check.min_neighbourhood_sampled b ~c:4 ~samples:500 ~rng in
  let greedy = Check.min_neighbourhood_greedy b ~c:4 ~restarts:6 ~rng in
  checkb "sampled >= exact" true (sampled >= exact);
  checkb "greedy >= exact" true (greedy >= exact);
  checkb "greedy usually tight-ish" true (greedy <= exact + 4)

let test_certify_refutes_bad_graph () =
  (* all inlets point at outlet 0: certainly not (2, 2)-expanding *)
  let b = Bipartite.make ~inlets:6 ~outlets:6 ~adj:(Array.make 6 [| 0 |]) in
  let rng = Rng.create ~seed:10 in
  (match Check.certify b ~c:2 ~c':2 ~rng with
  | `Refuted m -> check "witness" 1 m
  | `Certified | `Probable -> Alcotest.fail "should refute")

let test_certify_accepts_good_graph () =
  let rng = Rng.create ~seed:11 in
  let b = Random_regular.independent ~rng ~inlets:12 ~outlets:12 ~degree:6 in
  match Check.certify b ~c:3 ~c':4 ~rng with
  | `Certified -> ()
  | `Refuted m -> Alcotest.failf "refuted at %d" m
  | `Probable -> Alcotest.fail "small instance should be exhaustive"

let test_spectral_ramanujan_bound () =
  Alcotest.(check (float 1e-9)) "d=2" 1.0 (Spectral.ramanujan_bound ~degree:2);
  checkb "d=10 below 1" true (Spectral.ramanujan_bound ~degree:10 < 0.7)

let test_spectral_complete_bipartite () =
  (* complete bipartite: second singular value of B is exactly 0 *)
  let n = 8 in
  let adj = Array.make n (Array.init n Fun.id) in
  let b = Bipartite.make ~inlets:n ~outlets:n ~adj in
  let s2 = Spectral.second_singular_value b in
  checkb "sigma2 ~ 0" true (s2 < 0.1)

let test_spectral_disconnected_pairs () =
  (* perfect matching: all singular values of B equal 1 -> sigma2/d = 1 *)
  let n = 8 in
  let adj = Array.init n (fun i -> [| i |]) in
  let b = Bipartite.make ~inlets:n ~outlets:n ~adj in
  let s2 = Spectral.second_singular_value b in
  checkb "sigma2 ~ 1" true (s2 > 0.8)

let test_spectral_random_expander_gap () =
  let rng = Rng.create ~seed:12 in
  let b = Random_regular.matching_union ~rng ~inlets:64 ~outlets:64 ~degree:6 in
  let s2 = Spectral.second_singular_value b in
  (* random 6-regular bipartite graphs are near-Ramanujan; allow slack *)
  checkb "spectral gap" true (s2 < 0.9);
  checkb "nontrivial" true (s2 > 0.0)

let test_mixing_discrepancy () =
  let rng = Rng.create ~seed:13 in
  let b = Random_regular.matching_union ~rng ~inlets:32 ~outlets:32 ~degree:5 in
  let s = Array.init 8 Fun.id in
  let t = Array.init 8 (fun i -> 8 + i) in
  let disc = Spectral.mixing_discrepancy b ~s ~t in
  checkb "bounded" true (disc >= 0.0 && disc <= 1.5)

(* paper Lemma 4/5 flavour: the number of faulty outlets of an expander
   under the failure model is exponentially concentrated *)
let test_faulty_outlet_tail () =
  let rng = Rng.create ~seed:14 in
  let b = Random_regular.matching_union ~rng ~inlets:64 ~outlets:64 ~degree:10 in
  let g, _, outlet_ids = Bipartite.to_digraph b in
  let eps = 0.001 in
  let trials = 2000 in
  let threshold = 7 (* ~ 0.11 * 64, matching the paper's 0.07 * t shape *) in
  let exceed = ref 0 in
  for _ = 1 to trials do
    let pattern =
      Ftcsn_reliability.Fault.sample rng ~eps_open:eps ~eps_close:eps
        ~m:(Ftcsn_graph.Digraph.edge_count g)
    in
    let faulty = Ftcsn_reliability.Fault.faulty_vertices g pattern in
    let count =
      Array.fold_left
        (fun acc v -> if Ftcsn_util.Bitset.mem faulty v then acc + 1 else acc)
        0 outlet_ids
    in
    if count > threshold then incr exceed
  done;
  check "tail event never fires at eps=1e-3" 0 !exceed

(* ---------- LPS Ramanujan graphs ---------- *)

let test_lps_validation () =
  checkb "5,13 valid" true (Ftcsn_expander.Lps.is_valid_pair ~p:5 ~q:13);
  checkb "same prime" false (Ftcsn_expander.Lps.is_valid_pair ~p:5 ~q:5);
  checkb "3 mod 4" false (Ftcsn_expander.Lps.is_valid_pair ~p:7 ~q:13);
  checkb "q too small" false (Ftcsn_expander.Lps.is_valid_pair ~p:13 ~q:5);
  Alcotest.check_raises "make rejects"
    (Invalid_argument
       "Lps.make: need distinct primes p, q = 1 mod 4 with q > 2 sqrt p")
    (fun () -> ignore (Ftcsn_expander.Lps.make ~p:7 ~q:13))

let test_lps_bipartite_case () =
  (* (5|13) = -1: full PGL2, bipartite Cayley graph *)
  let b = Ftcsn_expander.Lps.make ~p:5 ~q:13 in
  check "vertices = |PGL2(13)|" (Ftcsn_expander.Lps.group_order ~q:13)
    b.Bipartite.inlets;
  check "vertices" 2184 b.Bipartite.inlets;
  (* exactly 6-regular on both sides *)
  Array.iteri (fun i _ -> check "out degree" 6 (Bipartite.degree b i)) b.Bipartite.adj;
  Array.iter (fun d -> check "in degree" 6 d) (Bipartite.in_degrees b)

let test_lps_psl_case_is_ramanujan () =
  (* (13|17) = +1: PSL2, connected non-bipartite — the double cover's
     second singular value must respect the Ramanujan bound *)
  let b = Ftcsn_expander.Lps.make ~p:13 ~q:17 in
  check "vertices = |PSL2(17)|" (Ftcsn_expander.Lps.group_order ~q:17 / 2)
    b.Bipartite.inlets;
  Array.iteri (fun i _ -> check "degree" 14 (Bipartite.degree b i)) b.Bipartite.adj;
  let s2 = Spectral.second_singular_value b in
  let bound = Spectral.ramanujan_bound ~degree:14 in
  checkb
    (Printf.sprintf "sigma2 %.4f <= ramanujan %.4f (+3%% numerics)" s2 bound)
    true
    (s2 <= bound *. 1.03)

let test_lps_expansion_small_sets () =
  let rng = Rng.create ~seed:99 in
  let b = Ftcsn_expander.Lps.make ~p:5 ~q:13 in
  (* sampled 8-subsets of a Ramanujan graph expand far beyond 8 *)
  let m = Check.min_neighbourhood_sampled b ~c:8 ~samples:300 ~rng in
  checkb "8-sets expand" true (m >= 24)

let prop_random_regular_expands =
  QCheck2.Test.make ~name:"random degree-6 graphs expand 3-sets" ~count:30
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let b = Random_regular.independent ~rng ~inlets:16 ~outlets:16 ~degree:6 in
      Check.min_neighbourhood_exhaustive b ~c:3 >= 6)

let prop_neighbourhood_monotone =
  QCheck2.Test.make ~name:"|Gamma(S)| monotone in |S|" ~count:50
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let b = Random_regular.independent ~rng ~inlets:12 ~outlets:12 ~degree:3 in
      let s2 = Rng.sample_without_replacement rng ~n:12 ~k:4 in
      let s1 = Array.sub s2 0 2 in
      Bipartite.neighbourhood_size b s1 <= Bipartite.neighbourhood_size b s2)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_random_regular_expands; prop_neighbourhood_monotone ]

let () =
  Alcotest.run "ftcsn_expander"
    [
      ( "bipartite",
        [
          Alcotest.test_case "validation" `Quick test_bipartite_make_validates;
          Alcotest.test_case "dedup" `Quick test_bipartite_dedup;
          Alcotest.test_case "neighbourhood" `Quick test_bipartite_neighbourhood;
          Alcotest.test_case "reverse" `Quick test_bipartite_reverse;
          Alcotest.test_case "to_digraph" `Quick test_bipartite_to_digraph;
        ] );
      ( "constructions",
        [
          Alcotest.test_case "independent degrees" `Quick
            test_random_independent_degrees;
          Alcotest.test_case "matching union balance" `Quick
            test_random_matching_union_balance;
          Alcotest.test_case "gabber-galil structure" `Quick
            test_gabber_galil_structure;
          Alcotest.test_case "gabber-galil expands" `Quick
            test_gabber_galil_expands_small_sets;
          Alcotest.test_case "margulis structure" `Quick test_margulis_structure;
        ] );
      ( "certification",
        [
          Alcotest.test_case "exhaustive exact" `Quick
            test_min_neighbourhood_exhaustive_exact;
          Alcotest.test_case "sampled/greedy bound" `Quick
            test_sampled_and_greedy_bound_exhaustive;
          Alcotest.test_case "refutes bad" `Quick test_certify_refutes_bad_graph;
          Alcotest.test_case "accepts good" `Quick test_certify_accepts_good_graph;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "ramanujan bound" `Quick test_spectral_ramanujan_bound;
          Alcotest.test_case "complete bipartite" `Quick
            test_spectral_complete_bipartite;
          Alcotest.test_case "matching" `Quick test_spectral_disconnected_pairs;
          Alcotest.test_case "random expander gap" `Quick
            test_spectral_random_expander_gap;
          Alcotest.test_case "mixing" `Quick test_mixing_discrepancy;
        ] );
      ( "lps",
        [
          Alcotest.test_case "validation" `Quick test_lps_validation;
          Alcotest.test_case "bipartite case" `Slow test_lps_bipartite_case;
          Alcotest.test_case "psl case ramanujan" `Slow
            test_lps_psl_case_is_ramanujan;
          Alcotest.test_case "expansion" `Slow test_lps_expansion_small_sets;
        ] );
      ( "fault-tails",
        [ Alcotest.test_case "lemma-4 flavour" `Quick test_faulty_outlet_tail ] );
      ("properties", props);
    ]
