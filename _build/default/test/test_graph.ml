(* Tests for the graph substrate: CSR digraphs, traversals, components,
   staging, quotients, rendering. *)

module Digraph = Ftcsn_graph.Digraph
module Traverse = Ftcsn_graph.Traverse
module Components = Ftcsn_graph.Components
module Staged = Ftcsn_graph.Staged
module Render = Ftcsn_graph.Render
module Rng = Ftcsn_prng.Rng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* small diamond: 0 -> 1 -> 3, 0 -> 2 -> 3 *)
let diamond () = Digraph.of_edges ~n:4 [| (0, 1); (0, 2); (1, 3); (2, 3) |]

(* a path with a detached vertex *)
let path_plus () = Digraph.of_edges ~n:5 [| (0, 1); (1, 2); (2, 3) |]

let test_builder_ids () =
  let b = Digraph.Builder.create () in
  check "v0" 0 (Digraph.Builder.add_vertex b);
  check "v1" 1 (Digraph.Builder.add_vertex b);
  check "first of batch" 2 (Digraph.Builder.add_vertices b 3);
  check "count" 5 (Digraph.Builder.vertex_count b);
  check "e0" 0 (Digraph.Builder.add_edge b ~src:0 ~dst:4);
  check "e1" 1 (Digraph.Builder.add_edge b ~src:4 ~dst:1);
  let g = Digraph.Builder.freeze b in
  check "frozen vertices" 5 (Digraph.vertex_count g);
  check "frozen edges" 2 (Digraph.edge_count g);
  Alcotest.(check (pair int int)) "endpoints" (0, 4) (Digraph.edge_endpoints g 0)

let test_builder_rejects_unknown_vertex () =
  let b = Digraph.Builder.create () in
  ignore (Digraph.Builder.add_vertex b);
  Alcotest.check_raises "bad edge"
    (Invalid_argument "Builder.add_edge: unknown vertex") (fun () ->
      ignore (Digraph.Builder.add_edge b ~src:0 ~dst:5))

let test_adjacency () =
  let g = diamond () in
  check "out 0" 2 (Digraph.out_degree g 0);
  check "in 3" 2 (Digraph.in_degree g 3);
  check "out 3" 0 (Digraph.out_degree g 3);
  Alcotest.(check (list int)) "out neighbours sorted" [ 1; 2 ]
    (List.sort compare (Array.to_list (Digraph.out_neighbours g 0)));
  Alcotest.(check (list int)) "in neighbours" [ 1; 2 ]
    (List.sort compare (Array.to_list (Digraph.in_neighbours g 3)));
  check "max degree" 2 (Digraph.max_degree g)

let test_iter_edges_consistency () =
  let g = diamond () in
  let count = ref 0 in
  Digraph.iter_edges g (fun ~eid ~src ~dst ->
      incr count;
      Alcotest.(check (pair int int))
        (Printf.sprintf "edge %d endpoints" eid)
        (Digraph.edge_src g eid, Digraph.edge_dst g eid)
        (src, dst));
  check "edge count" 4 !count

let test_parallel_edges_and_loops () =
  let g = Digraph.of_edges ~n:2 [| (0, 1); (0, 1); (1, 1) |] in
  check "parallel kept" 2 (Digraph.out_degree g 0);
  check "loop kept" 1
    (Digraph.fold_out g 1 ~init:0 ~f:(fun acc ~dst ~eid:_ ->
         if dst = 1 then acc + 1 else acc))

let test_reverse () =
  let g = diamond () in
  let r = Digraph.reverse g in
  check "out 3 in reverse" 2 (Digraph.out_degree r 3);
  check "in 0 in reverse" 2 (Digraph.in_degree r 0);
  (* edge ids preserved *)
  Alcotest.(check (pair int int)) "edge 0 flipped" (1, 0)
    (Digraph.edge_endpoints r 0)

let test_subgraph_by_edges () =
  let g = diamond () in
  let sub, mapping = Digraph.subgraph_by_edges_map g ~keep:(fun e -> e <> 1) in
  check "edges" 3 (Digraph.edge_count sub);
  check "vertices unchanged" 4 (Digraph.vertex_count sub);
  Alcotest.(check (array int)) "mapping" [| 0; 2; 3 |] mapping;
  check "out 0 after removal" 1 (Digraph.out_degree sub 0)

let test_quotient () =
  let g = diamond () in
  (* merge 1 and 2 into one class *)
  let label = [| 0; 1; 1; 2 |] in
  let q, edge_image = Digraph.quotient g ~label ~classes:3 ~drop_self_loops:true in
  check "vertices" 3 (Digraph.vertex_count q);
  check "edges (parallel collapse not applied)" 4 (Digraph.edge_count q);
  Array.iter (fun e -> checkb "all survive" true (e >= 0)) edge_image;
  (* now merge the two ends of edge 0 -> self loop dropped *)
  let label2 = [| 0; 0; 1; 2 |] in
  let q2, image2 = Digraph.quotient g ~label:label2 ~classes:3 ~drop_self_loops:true in
  check "loop dropped" 3 (Digraph.edge_count q2);
  check "dropped edge marked" (-1) image2.(0)

let test_bfs_directed () =
  let g = path_plus () in
  let d = Traverse.bfs_directed g ~sources:[ 0 ] in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; -1 |] d;
  check "max dist" 3 (Traverse.bfs_directed_max_dist g ~sources:[ 0 ])

let test_bfs_undirected () =
  let g = path_plus () in
  (* from vertex 3 the directed graph reaches nothing, undirected reaches all *)
  let d = Traverse.bfs_undirected g ~sources:[ 3 ] in
  Alcotest.(check (array int)) "undirected distances" [| 3; 2; 1; 0; -1 |] d

let test_bfs_allowed () =
  let g = diamond () in
  (* forbid vertex 1: still reach 3 through 2 *)
  let d = Traverse.bfs_directed ~allowed:(fun v -> v <> 1) g ~sources:[ 0 ] in
  check "reaches 3 avoiding 1" 2 d.(3);
  check "1 unvisited" (-1) d.(1)

let test_shortest_path () =
  let g = diamond () in
  (match Traverse.shortest_path g ~src:0 ~dst:3 with
  | Some p -> check "path length" 3 (List.length p)
  | None -> Alcotest.fail "no path");
  (match Traverse.shortest_path ~allowed:(fun v -> v <> 1 && v <> 2) g ~src:0 ~dst:3 with
  | Some _ -> Alcotest.fail "blocked path found"
  | None -> ());
  Alcotest.(check (option (list int))) "self path" (Some [ 2 ])
    (Traverse.shortest_path g ~src:2 ~dst:2)

let test_shortest_path_undirected () =
  let g = path_plus () in
  match Traverse.shortest_path_undirected g ~src:3 ~dst:0 with
  | Some p -> Alcotest.(check (list int)) "against edges" [ 3; 2; 1; 0 ] p
  | None -> Alcotest.fail "no undirected path"

let test_topological () =
  let g = diamond () in
  (match Traverse.topological_order g with
  | None -> Alcotest.fail "diamond is acyclic"
  | Some order ->
      let pos = Array.make 4 0 in
      Array.iteri (fun i v -> pos.(v) <- i) order;
      Digraph.iter_edges g (fun ~eid:_ ~src ~dst ->
          checkb "edge respects order" true (pos.(src) < pos.(dst))));
  let cyc = Digraph.of_edges ~n:2 [| (0, 1); (1, 0) |] in
  checkb "cycle detected" false (Traverse.is_acyclic cyc)

let test_longest_path_and_depth () =
  let g =
    Digraph.of_edges ~n:5 [| (0, 1); (1, 2); (2, 3); (0, 3); (3, 4) |]
  in
  let d = Traverse.longest_path_dag g ~sources:[ 0 ] in
  check "longest to 3" 3 d.(3);
  check "longest to 4" 4 d.(4);
  check "network depth" 4 (Traverse.depth g ~inputs:[ 0 ] ~outputs:[ 4 ]);
  check "unreachable output" (-1) (Traverse.depth g ~inputs:[ 4 ] ~outputs:[ 0 ])

let test_reachable () =
  let g = path_plus () in
  let set = Traverse.reachable g ~sources:[ 1 ] in
  Alcotest.(check (list int)) "reach set" [ 1; 2; 3 ]
    (Ftcsn_util.Bitset.to_list set)

let test_components () =
  let g = path_plus () in
  let label, count = Components.undirected_components g in
  check "two components" 2 count;
  check "same comp" label.(0) label.(3);
  checkb "isolated different" true (label.(4) <> label.(0));
  let sizes = Components.undirected_component_sizes g in
  Alcotest.(check (list int)) "sizes" [ 1; 4 ]
    (List.sort compare (Array.to_list sizes));
  checkb "same_component" true (Components.same_component g 1 3)

let test_scc () =
  let g =
    Digraph.of_edges ~n:5 [| (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) |]
  in
  let label, count = Components.strongly_connected_components g in
  check "three sccs" 3 count;
  check "cycle together" label.(0) label.(2);
  checkb "3 separate" true (label.(3) <> label.(0))

let test_scc_dag_is_identity () =
  let g = diamond () in
  let _, count = Components.strongly_connected_components g in
  check "all singleton" 4 count

let test_staged () =
  let g = diamond () in
  let staged = Staged.of_sources g ~sources:[ 0 ] in
  check "stages" 3 staged.Staged.stages;
  checkb "strict" true (Staged.is_strictly_staged g staged);
  Alcotest.(check (list int)) "stage 1" [ 1; 2 ] (Staged.vertices_at staged 1);
  Alcotest.(check (array int)) "sizes" [| 1; 2; 1 |] (Staged.stage_sizes staged);
  Alcotest.(check (array int)) "edge counts" [| 2; 2; 0 |]
    (Staged.stage_edge_counts g staged)

let test_staged_violation () =
  (* 0 -> 1 -> 2 plus skip edge 0 -> 2 breaks strict staging *)
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2); (0, 2) |] in
  let staged = Staged.of_sources g ~sources:[ 0 ] in
  checkb "not strict" false (Staged.is_strictly_staged g staged)

let test_dot_render () =
  let g = diamond () in
  let dot = Render.to_dot ~name:"d" g in
  checkb "mentions edge" true
    (let needle = "v0 -> v1" in
     let rec go i =
       i + String.length needle <= String.length dot
       && (String.sub dot i (String.length needle) = needle || go (i + 1))
     in
     go 0)

let test_ascii_stages () =
  let g = diamond () in
  let s = Render.ascii_stages g ~inputs:[ 0 ] in
  checkb "non-empty" true (String.length s > 10)

module Metrics = Ftcsn_graph.Metrics

let test_metrics_profile () =
  let g = diamond () in
  let p = Metrics.degree_profile g in
  check "min in" 0 p.Metrics.min_in;
  check "max in" 2 p.Metrics.max_in;
  check "min out" 0 p.Metrics.min_out;
  check "max out" 2 p.Metrics.max_out;
  Alcotest.(check (float 1e-9)) "mean" 1.0 p.Metrics.mean_out

let test_metrics_histogram () =
  let g = diamond () in
  Alcotest.(check (list (pair int int))) "out histogram"
    [ (0, 1); (1, 2); (2, 1) ]
    (Metrics.degree_histogram g `Out);
  Alcotest.(check (list (pair int int))) "in histogram"
    [ (0, 1); (1, 2); (2, 1) ]
    (Metrics.degree_histogram g `In)

let test_metrics_eccentricity_and_diameter () =
  let g = path_plus () in
  check "ecc of 0" 3 (Metrics.directed_eccentricity g 0);
  check "ecc of 3" 0 (Metrics.directed_eccentricity g 3);
  let rng = Rng.create ~seed:9 in
  let d = Metrics.diameter_lower_bound g ~samples:20 ~rng in
  checkb "diameter bound sane" true (d >= 0 && d <= 3)

let test_metrics_regularity () =
  let g = diamond () in
  checkb "interior is 1-in-1-out... no" false
    (Metrics.is_regular g ~degree:2 ~interior_only:(fun v -> v = 1 || v = 2));
  checkb "interior 1-regular" true
    (Metrics.is_regular g ~degree:1 ~interior_only:(fun v -> v = 1 || v = 2));
  Alcotest.(check (float 1e-9)) "ratio" 1.0 (Metrics.edge_vertex_ratio g)

let prop_quotient_preserves_edge_count =
  QCheck2.Test.make ~name:"quotient without loop-drop preserves edges" ~count:100
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2 + Rng.int rng 20 in
      let m = Rng.int rng 40 in
      let edges =
        Array.init m (fun _ -> (Rng.int rng n, Rng.int rng n))
      in
      let g = Digraph.of_edges ~n edges in
      let label = Array.init n (fun _ -> Rng.int rng 3) in
      let q, _ = Digraph.quotient g ~label ~classes:3 ~drop_self_loops:false in
      Digraph.edge_count q = m)

let prop_reverse_involution =
  QCheck2.Test.make ~name:"reverse . reverse = id (as edge sets)" ~count:100
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2 + Rng.int rng 15 in
      let m = Rng.int rng 30 in
      let edges = Array.init m (fun _ -> (Rng.int rng n, Rng.int rng n)) in
      let g = Digraph.of_edges ~n edges in
      let rr = Digraph.reverse (Digraph.reverse g) in
      let endpoints h =
        List.init (Digraph.edge_count h) (fun e -> Digraph.edge_endpoints h e)
        |> List.sort compare
      in
      endpoints g = endpoints rr)

let prop_bfs_triangle_inequality =
  QCheck2.Test.make ~name:"BFS dist satisfies triangle inequality over edges"
    ~count:100
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2 + Rng.int rng 20 in
      let m = Rng.int rng 50 in
      let edges = Array.init m (fun _ -> (Rng.int rng n, Rng.int rng n)) in
      let g = Digraph.of_edges ~n edges in
      let d = Traverse.bfs_directed g ~sources:[ 0 ] in
      let ok = ref true in
      Digraph.iter_edges g (fun ~eid:_ ~src ~dst ->
          if d.(src) >= 0 && (d.(dst) < 0 || d.(dst) > d.(src) + 1) then
            ok := false);
      !ok)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_quotient_preserves_edge_count;
      prop_reverse_involution;
      prop_bfs_triangle_inequality;
    ]

let () =
  Alcotest.run "ftcsn_graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "builder ids" `Quick test_builder_ids;
          Alcotest.test_case "builder validation" `Quick
            test_builder_rejects_unknown_vertex;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "iter_edges" `Quick test_iter_edges_consistency;
          Alcotest.test_case "parallel/loops" `Quick test_parallel_edges_and_loops;
          Alcotest.test_case "reverse" `Quick test_reverse;
          Alcotest.test_case "subgraph" `Quick test_subgraph_by_edges;
          Alcotest.test_case "quotient" `Quick test_quotient;
        ] );
      ( "traverse",
        [
          Alcotest.test_case "bfs directed" `Quick test_bfs_directed;
          Alcotest.test_case "bfs undirected" `Quick test_bfs_undirected;
          Alcotest.test_case "bfs allowed" `Quick test_bfs_allowed;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "shortest undirected" `Quick
            test_shortest_path_undirected;
          Alcotest.test_case "topological" `Quick test_topological;
          Alcotest.test_case "longest/depth" `Quick test_longest_path_and_depth;
          Alcotest.test_case "reachable" `Quick test_reachable;
        ] );
      ( "components",
        [
          Alcotest.test_case "undirected" `Quick test_components;
          Alcotest.test_case "scc" `Quick test_scc;
          Alcotest.test_case "scc on dag" `Quick test_scc_dag_is_identity;
        ] );
      ( "staged",
        [
          Alcotest.test_case "diamond" `Quick test_staged;
          Alcotest.test_case "violation" `Quick test_staged_violation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "profile" `Quick test_metrics_profile;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "eccentricity" `Quick test_metrics_eccentricity_and_diameter;
          Alcotest.test_case "regularity" `Quick test_metrics_regularity;
        ] );
      ( "render",
        [
          Alcotest.test_case "dot" `Quick test_dot_render;
          Alcotest.test_case "ascii stages" `Quick test_ascii_stages;
        ] );
      ("properties", props);
    ]
