test/test_cli.ml: Alcotest Filename List Printf String Sys
