test/test_cli.mli:
