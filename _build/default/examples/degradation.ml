(* Ageing hardware: switches failing while the network carries traffic.

   The paper's model fixes one fault pattern; operators live through the
   integral of it.  This example ages three fabrics under identical
   expected failures-per-tick (so the comparison measures redundancy, not
   exposure) and prints a degradation timeline: calls placed, dropped by
   live failures, rerouted, and the moment service first degrades.

   Run with: dune exec examples/degradation.exe *)

module Rng = Ftcsn_prng.Rng
module Network = Ftcsn_networks.Network

let horizon = 5_000
let failures_per_tick = 0.02

let age name net =
  let rng = Rng.create ~seed:(Hashtbl.hash name) in
  let hazard = failures_per_tick /. float_of_int (Network.size net) in
  let stats =
    Ftcsn.Ft_session.run ~rng ~hazard ~arrival:0.6 ~ticks:horizon net
  in
  Format.printf "%-16s size=%5d  placed=%5d dropped=%4d rerouted=%4d \
                 blocked=%4d  failures=%3d%s@."
    name (Network.size net) stats.Ftcsn.Ft_session.placed
    stats.Ftcsn.Ft_session.dropped stats.Ftcsn.Ft_session.rerouted
    stats.Ftcsn.Ft_session.blocked stats.Ftcsn.Ft_session.failed_switches
    (match stats.Ftcsn.Ft_session.catastrophe_at with
    | Some t -> Printf.sprintf "  CATASTROPHE at tick %d (terminals fused)" t
    | None -> "");
  let mttd =
    Ftcsn.Ft_session.mean_time_to_degradation ~rng ~hazard ~trials:10
      ~max_ticks:20_000 net
  in
  Format.printf "%-16s mean time to first service degradation: %.0f ticks \
                 (~%.0f switch failures absorbed)@.@."
    "" mttd (mttd *. failures_per_tick)

let () =
  Format.printf
    "ageing fabrics at %.2f expected switch failures per tick, %d-tick \
     horizon:@.@."
    failures_per_tick horizon;
  let rng = Rng.create ~seed:1 in
  age "ft-construction"
    (Ftcsn.Ft_network.make ~rng (Ftcsn.Ft_params.scaled ~u:3 ())).Ftcsn
    .Ft_network
    .net;
  age "clos-snb" (Ftcsn_networks.Clos.nonblocking ~n:8);
  age "benes" (Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make 8));
  Format.printf
    "The fault-tolerant construction keeps rerouting around two orders of \
     magnitude more failures before service degrades — the operational \
     content of the paper's (eps, delta) guarantee.@."
