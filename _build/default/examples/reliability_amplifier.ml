(* Building reliable switching out of unreliable relays — the
   Moore-Shannon programme (Proposition 1) made executable.

   Given crummy switches that fail 10% of the time, we design an
   (eps, eps')-1-network gadget whose composite open/short failure
   probabilities are provably below a target, then substitute one gadget
   for EVERY switch of a crossbar (the section 3 transfer argument) and
   measure the composite fabric.

   Run with: dune exec examples/reliability_amplifier.exe *)

module Rng = Ftcsn_prng.Rng
module Sp = Ftcsn_reliability.Sp_network
module Fault = Ftcsn_reliability.Fault
module Survivor = Ftcsn_reliability.Survivor
module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph

let component_eps = 0.1

let () =
  Format.printf
    "components: switches with eps1 = eps2 = %g (10%% open, 10%% short)@.@."
    component_eps;

  (* 1. Design gadgets for a ladder of reliability targets. *)
  Format.printf "%-12s %8s %8s %14s %14s@." "target" "size" "depth"
    "exact P[open]" "exact P[short]";
  List.iter
    (fun target ->
      let spec = Sp.design ~eps:component_eps ~eps':target in
      Format.printf "%-12g %8d %8d %14.2e %14.2e@." target (Sp.size spec)
        (Sp.depth spec)
        (Sp.open_prob spec ~eps_open:component_eps ~eps_close:component_eps)
        (Sp.short_prob spec ~eps_open:component_eps ~eps_close:component_eps))
    [ 1e-2; 1e-4; 1e-8 ];

  (* 2. Validate one design by Monte-Carlo on the built graph. *)
  let target = 1e-2 in
  let spec = Sp.design ~eps:component_eps ~eps':target in
  let built = Sp.build spec in
  let rng = Rng.create ~seed:5 in
  let trials = 50_000 in
  let opens = ref 0 and shorts = ref 0 in
  for _ = 1 to trials do
    let pattern =
      Fault.sample rng ~eps_open:component_eps ~eps_close:component_eps
        ~m:(Digraph.edge_count built.Sp.graph)
    in
    if
      not
        (Survivor.connected_ignoring_opens built.Sp.graph pattern
           ~a:built.Sp.input ~b:built.Sp.output)
    then incr opens;
    if Survivor.shorted_by_closure built.Sp.graph pattern ~a:built.Sp.input
         ~b:built.Sp.output
    then incr shorts
  done;
  Format.printf
    "@.measured on the built gadget (%d trials): P[open]=%.4f P[short]=%.4f \
     (both < %g as designed)@."
    trials
    (float_of_int !opens /. float_of_int trials)
    (float_of_int !shorts /. float_of_int trials)
    target;

  (* 3. Substitute the gadget into a 4x4 crossbar (section 3's transfer
        argument) and compare LOGICAL switch failure rates: a gadget that
        shorts acts as a closed-failed switch, one that cannot conduct as
        an open-failed switch. *)
  let crossbar = Ftcsn_networks.Crossbar.square 4 in
  let sub =
    Ftcsn_reliability.Substitution.substitute crossbar.Network.graph
      ~gadget:built
  in
  Format.printf
    "@.substituted fabric: %d physical switches standing in for 16 logical \
     ones@."
    (Digraph.edge_count sub.Ftcsn_reliability.Substitution.graph);
  let trials = 2_000 in
  let logical_failures = ref 0 and bare_failures = ref 0 in
  let any_failed pattern =
    Array.exists (fun s -> not (Fault.state_equal s Fault.Normal)) pattern
  in
  for _ = 1 to trials do
    let physical =
      Fault.sample rng ~eps_open:component_eps ~eps_close:component_eps
        ~m:(Digraph.edge_count sub.Ftcsn_reliability.Substitution.graph)
    in
    let logical =
      Ftcsn_reliability.Substitution.logical_pattern sub physical
    in
    if any_failed logical then incr logical_failures;
    let bare =
      Fault.sample rng ~eps_open:component_eps ~eps_close:component_eps ~m:16
    in
    if any_failed bare then incr bare_failures
  done;
  Format.printf
    "P[some logical switch fails]: amplified fabric %.3f vs bare crossbar \
     %.3f  (per-switch target was < %g)@."
    (float_of_int !logical_failures /. float_of_int trials)
    (float_of_int !bare_failures /. float_of_int trials)
    (16.0 *. 2.0 *. target)
