(* Video switching under switch failures.

   The paper's opening motivation: metallic-contact switches, still common
   in video switching, suffer open and closed failures.  This example runs
   a day of call traffic (arrivals and hang-ups) through three switch
   fabrics wired from the same unreliable components and compares the
   fraction of calls that get through:

   - the paper's fault-tolerant construction (stripped after faults),
   - a strictly nonblocking Clos fabric (no fault tolerance), and
   - a Benes fabric (rearrangeable only, no fault tolerance).

   Run with: dune exec examples/video_switching.exe *)

module Rng = Ftcsn_prng.Rng
module Network = Ftcsn_networks.Network
module Fault = Ftcsn_reliability.Fault
module Session = Ftcsn_routing.Session

let n = 8
let steps = 2_000
let arrival_prob = 0.65

let run_day ~rng ~eps name net =
  (* overnight, some switches fail ... *)
  let pattern =
    Fault.sample rng ~eps_open:eps ~eps_close:eps ~m:(Network.size net)
  in
  let strip = Ftcsn.Fault_strip.strip net pattern in
  if not (Ftcsn.Fault_strip.healthy strip) then
    Format.printf "%-16s catastrophic: terminals shorted together@." name
  else begin
    (* ... the operator strips the faulty components and runs traffic *)
    let surviving = Ftcsn.Fault_strip.surviving_network net strip in
    let session =
      Session.create ~allowed:strip.Ftcsn.Fault_strip.allowed
        ~choice:(Session.Randomised (Rng.split rng))
        surviving
    in
    let stats = Session.run_random_traffic session ~rng ~steps ~arrival_prob in
    let grade =
      if stats.Session.blocked = 0 then "perfect service"
      else
        Printf.sprintf "%.2f%% of calls blocked"
          (100.0
          *. float_of_int stats.Session.blocked
          /. float_of_int stats.Session.offered)
    in
    Format.printf "%-16s %5d offered, %5d served, %4d blocked — %s@." name
      stats.Session.offered stats.Session.served stats.Session.blocked grade
  end

let () =
  let rng = Rng.create ~seed:7 in
  let ft =
    (Ftcsn.Ft_network.make ~rng (Ftcsn.Ft_params.scaled ~u:3 ())).Ftcsn
    .Ft_network
    .net
  in
  let clos = Ftcsn_networks.Clos.nonblocking ~n in
  let benes = Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make n) in
  List.iter
    (fun eps ->
      Format.printf "@.== component failure rate eps = %g ==@." eps;
      run_day ~rng ~eps "ft-construction" ft;
      run_day ~rng ~eps "clos-snb" clos;
      run_day ~rng ~eps "benes" benes)
    [ 0.0; 0.005; 0.02; 0.05 ];
  Format.printf
    "@.The fault-tolerant fabric costs %d switches vs %d (Clos) and %d \
     (Benes) — the log^2 n premium of Theorem 2 buys service through fault \
     rates that break the classical fabrics.@."
    (Network.size ft) (Network.size clos) (Network.size benes)
