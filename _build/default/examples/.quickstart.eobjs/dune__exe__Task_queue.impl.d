examples/task_queue.ml: Format Ftcsn Ftcsn_networks Ftcsn_prng Ftcsn_reliability Ftcsn_routing List
