examples/reliability_amplifier.mli:
