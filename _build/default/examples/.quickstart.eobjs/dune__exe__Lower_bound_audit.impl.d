examples/lower_bound_audit.ml: Array Format Ftcsn Ftcsn_networks Ftcsn_prng List
