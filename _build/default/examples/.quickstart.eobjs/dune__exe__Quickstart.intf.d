examples/quickstart.mli:
