examples/degradation.ml: Format Ftcsn Ftcsn_networks Ftcsn_prng Hashtbl Printf
