examples/lower_bound_audit.mli:
