examples/video_switching.mli:
