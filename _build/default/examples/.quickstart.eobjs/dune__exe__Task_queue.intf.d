examples/task_queue.mli:
