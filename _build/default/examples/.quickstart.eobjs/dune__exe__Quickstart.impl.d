examples/quickstart.ml: Array Format Ftcsn Ftcsn_networks Ftcsn_prng Ftcsn_reliability Ftcsn_routing Ftcsn_util List
