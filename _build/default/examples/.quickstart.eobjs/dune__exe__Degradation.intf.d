examples/degradation.mli:
