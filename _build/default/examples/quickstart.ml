(* Quickstart: build the paper's fault-tolerant network, break it, strip
   it, and route through the survivor.

   Run with: dune exec examples/quickstart.exe *)

module Rng = Ftcsn_prng.Rng
module Network = Ftcsn_networks.Network
module Fault = Ftcsn_reliability.Fault

let () =
  (* 1. Build network N of the paper's section 6 at test scale:
        n = 2^3 = 8 terminals, with grids and a doubly-oversized middle. *)
  let rng = Rng.create ~seed:2024 in
  let params = Ftcsn.Ft_params.scaled ~u:3 () in
  let ft = Ftcsn.Ft_network.make ~rng params in
  let net = ft.Ftcsn.Ft_network.net in
  Format.printf "built %a@." Network.pp net;

  (* 2. Break it: every switch independently suffers an open or closed
        failure with probability 1% each. *)
  let pattern =
    Fault.sample rng ~eps_open:0.01 ~eps_close:0.01 ~m:(Network.size net)
  in
  Format.printf "injected %d open and %d closed failures into %d switches@."
    (Fault.count pattern Fault.Open_failure)
    (Fault.count pattern Fault.Closed_failure)
    (Network.size net);

  (* 3. Strip: discard faulty components (the paper's section 4 remark —
        no clever computation needed). *)
  let strip = Ftcsn.Fault_strip.strip net pattern in
  Format.printf "stripped %.1f%% of vertices; terminals shorted: %b@."
    (100.0 *. Ftcsn.Fault_strip.stripped_fraction net strip)
    (not (Ftcsn.Fault_strip.healthy strip));

  (* 4. Route: greedy path-finding through the survivor serves a full
        permutation. *)
  let surviving = Ftcsn.Fault_strip.surviving_network net strip in
  let router =
    Ftcsn_routing.Greedy.create ~allowed:strip.Ftcsn.Fault_strip.allowed surviving
  in
  let pi = Rng.permutation rng 8 in
  let success = ref 0 in
  let paths = Ftcsn_routing.Greedy.route_permutation router pi ~success in
  Format.printf "routed %d/8 calls of permutation %a@." !success
    Ftcsn_util.Perm.pp pi;
  Array.iteri
    (fun i path ->
      match path with
      | Some p -> Format.printf "  call %d->%d uses %d switches@." i pi.(i)
                    (List.length p - 1)
      | None -> Format.printf "  call %d->%d blocked@." i pi.(i))
    paths;

  (* 5. One-line (eps, delta) estimate. *)
  let est =
    Ftcsn.Pipeline.survival ~trials:100 ~rng ~eps:0.01 net
  in
  Format.printf
    "P[network contains a working nonblocking net at eps=1%%] ~ %.2f@."
    est.Ftcsn_reliability.Monte_carlo.mean
