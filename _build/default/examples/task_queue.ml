(* Superconcentrator-backed task queues (Cole [Co], cited in section 2).

   A parallel machine keeps a shared queue of tasks; in each round some set
   of r processors finishes and must each grab one of the r tasks at the
   queue head.  The interconnect requirement is exactly the
   superconcentrator property: ANY r processors to ANY r queue slots by
   vertex-disjoint circuits, with the pairing free.

   This example runs the scheme over a Valiant-style linear-size
   superconcentrator and over the paper's fault-tolerant construction,
   with and without switch failures.

   Run with: dune exec examples/task_queue.exe *)

module Rng = Ftcsn_prng.Rng
module Network = Ftcsn_networks.Network
module Fault = Ftcsn_reliability.Fault
module Flow_route = Ftcsn_routing.Flow_route

let n = 16
let rounds = 200

let run_scheme ~rng ~eps name net =
  let forbidden =
    if eps > 0.0 then begin
      let pattern =
        Fault.sample rng ~eps_open:eps ~eps_close:eps ~m:(Network.size net)
      in
      let strip = Ftcsn.Fault_strip.strip net pattern in
      fun v -> not (strip.Ftcsn.Fault_strip.allowed v)
    end
    else fun _ -> false
  in
  let n' = min (Network.n_inputs net) (Network.n_outputs net) in
  let ok = ref 0 and total_tasks = ref 0 and served_tasks = ref 0 in
  for _ = 1 to rounds do
    let r = 1 + Rng.int rng n' in
    let processors = Rng.sample_without_replacement rng ~n:n' ~k:r in
    let slots = Rng.sample_without_replacement rng ~n:n' ~k:r in
    total_tasks := !total_tasks + r;
    let got =
      Flow_route.max_throughput ~forbidden net ~input_indices:processors
        ~output_indices:slots
    in
    served_tasks := !served_tasks + got;
    if got = r then incr ok
  done;
  Format.printf
    "%-16s eps=%-5g rounds fully served: %3d/%d, tasks dispatched: %d/%d@."
    name eps !ok rounds !served_tasks !total_tasks

let () =
  let rng = Rng.create ~seed:11 in
  let valiant = Ftcsn_networks.Valiant_sc.make ~rng n in
  let ft =
    (Ftcsn.Ft_network.make ~rng (Ftcsn.Ft_params.scaled ~u:4 ())).Ftcsn
    .Ft_network
    .net
  in
  Format.printf "task-queue interconnects for %d processors:@." n;
  Format.printf "  %-14s %6d switches (linear-size, no fault tolerance)@."
    valiant.Network.name (Network.size valiant);
  Format.printf "  %-14s %6d switches (n log^2 n, fault-tolerant)@.@."
    "ft-construction" (Network.size ft);
  List.iter
    (fun eps ->
      run_scheme ~rng ~eps "valiant-sc" valiant;
      run_scheme ~rng ~eps "ft-construction" ft;
      Format.printf "@.")
    [ 0.0; 0.01; 0.03 ];
  Format.printf
    "Fault-free, the linear-size superconcentrator is 40x cheaper; under \
     faults it starts dropping rounds while the paper's construction keeps \
     dispatching — the trade Theorem 1 proves unavoidable (Omega(n log^2 n) \
     for any fault-tolerant superconcentrator).@."
