(* Auditing real networks with the section-5 lower-bound machinery.

   Theorem 1 says any (1/4, 1/2)-n-superconcentrator pays Omega(n log^2 n)
   switches and Omega(log n) depth, and its proof is CONSTRUCTIVE evidence:
   good inputs far from each other, and zones around them that must each
   contain Omega(log n) switches.  This example extracts that evidence from
   concrete networks — showing what the paper's construction provides and
   what a bare Benes network lacks.

   Run with: dune exec examples/lower_bound_audit.exe *)

module Network = Ftcsn_networks.Network
module Lower_bound = Ftcsn.Lower_bound
module Tree_paths = Ftcsn.Tree_paths
module Rng = Ftcsn_prng.Rng

let audit name net =
  Format.printf "== %s (n=%d, size=%d, depth=%d) ==@." name
    (Network.n_inputs net) (Network.size net) (Network.depth net);
  let report = Lower_bound.analyse ~threshold:3 ~radius:1 net in
  Format.printf "  good inputs (pairwise distance >= %d): %d of %d (%.0f%%)@."
    report.Lower_bound.threshold
    (Array.length report.Lower_bound.good_input_vertices)
    report.Lower_bound.n
    (100.0 *. report.Lower_bound.good_fraction);
  Format.printf "  depth certificate from good-input separation: >= %d@."
    report.Lower_bound.depth_certificate;
  (match report.Lower_bound.zones with
  | [] -> Format.printf "  (no zones analysed)@."
  | zones ->
      let min_zone =
        List.fold_left (fun acc z -> min acc z.Lower_bound.min_zone) max_int zones
      in
      Format.printf
        "  smallest zone around a good input: %d switches (isolating an \
         input by open failures costs at least this many)@."
        min_zone;
      Format.printf "  disjoint neighbourhood switches counted: %d@."
        report.Lower_bound.neighbourhood_total);
  let lemma2 = Lower_bound.lemma2_certificate ~threshold:3 net in
  Format.printf
    "  Lemma 2 machinery: %d inputs linked within distance %d; %d \
     edge-disjoint shorting families extracted@."
    lemma2.Lower_bound.linked_inputs lemma2.Lower_bound.threshold_used
    (List.length lemma2.Lower_bound.shorting_families);
  Format.printf "  Theorem 1 reference bounds at this n: size >= %.1f, depth \
                 >= %.1f@.@."
    (Lower_bound.theorem1_size_bound ~n:report.Lower_bound.n)
    (Lower_bound.theorem1_depth_bound ~n:report.Lower_bound.n)

let () =
  let rng = Rng.create ~seed:3 in
  let ft =
    (Ftcsn.Ft_network.make ~rng (Ftcsn.Ft_params.scaled ~u:4 ())).Ftcsn
    .Ft_network
    .net
  in
  audit "paper's FT construction (scaled, u=4)" ft;
  audit "benes-16" (Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make 16));
  audit "crossbar-16" (Ftcsn_networks.Crossbar.square 16);

  (* Lemma 1 in action: the closed-failure shorting machinery behind the
     depth bound.  Extract edge-disjoint short leaf paths from a random
     branching tree — each such path is a shorting opportunity. *)
  Format.printf "== Lemma 1: shorting opportunities in a branching tree ==@.";
  let tree = Tree_paths.random_internal3_tree ~rng ~leaves:500 in
  let paths = Tree_paths.short_leaf_paths tree in
  Format.printf
    "  tree with %d leaves yields %d edge-disjoint leaf-to-leaf paths of \
     length <= 3 (lemma guarantees >= %d, Lin's remark predicts ~%d)@."
    500 (List.length paths)
    (Tree_paths.lemma1_lower_bound ~leaves:500)
    (500 / 4);
  Format.printf
    "  each path shorts two inputs if all its (at most 3) switches suffer \
     closed failures — probability (1/4)^3 each under eps = 1/4, and with \
     %d disjoint chances the network shorts almost surely: that is Lemma 2.@."
    (List.length paths)
