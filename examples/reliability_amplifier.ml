(* Building reliable switching out of unreliable relays — the
   Moore-Shannon programme (Proposition 1) made executable.

   Given crummy switches that fail 10% of the time, we design an
   (eps, eps')-1-network gadget whose composite open/short failure
   probabilities are provably below a target, then substitute one gadget
   for EVERY switch of a crossbar (the section 3 transfer argument) and
   measure the composite fabric.

   All measurements run on the Ftcsn_sim.Trials engine across every
   available core; the printed numbers are bit-identical to a
   single-threaded run.

   Run with: dune exec examples/reliability_amplifier.exe *)

module Rng = Ftcsn_prng.Rng
module Sp = Ftcsn_reliability.Sp_network
module Fault = Ftcsn_reliability.Fault
module Survivor = Ftcsn_reliability.Survivor
module Monte_carlo = Ftcsn_reliability.Monte_carlo
module Trials = Ftcsn_sim.Trials
module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph

let component_eps = 0.1

let () =
  let jobs = Trials.recommended_jobs () in
  Format.printf
    "components: switches with eps1 = eps2 = %g (10%% open, 10%% short); \
     measuring with %d worker domains@.@."
    component_eps jobs;

  (* 1. Design gadgets for a ladder of reliability targets. *)
  Format.printf "%-12s %8s %8s %14s %14s@." "target" "size" "depth"
    "exact P[open]" "exact P[short]";
  List.iter
    (fun target ->
      let spec = Sp.design ~eps:component_eps ~eps':target in
      Format.printf "%-12g %8d %8d %14.2e %14.2e@." target (Sp.size spec)
        (Sp.depth spec)
        (Sp.open_prob spec ~eps_open:component_eps ~eps_close:component_eps)
        (Sp.short_prob spec ~eps_open:component_eps ~eps_close:component_eps))
    [ 1e-2; 1e-4; 1e-8 ];

  (* 2. Validate one design by Monte-Carlo on the built graph: one fault
        pattern per trial, counting opens and shorts together on the
        Trials engine (preallocated pattern buffer per worker). *)
  let target = 1e-2 in
  let spec = Sp.design ~eps:component_eps ~eps':target in
  let built = Sp.build spec in
  let rng = Rng.create ~seed:5 in
  let trials = 50_000 in
  let m = Digraph.edge_count built.Sp.graph in
  let counts =
    Trials.map_reduce ~jobs ~trials ~rng
      ~init:(fun () -> Array.make m Fault.Normal)
      ~create_acc:(fun () -> [| 0; 0 |])
      ~trial:(fun pattern acc sub ->
        Fault.sample_into sub ~eps_open:component_eps ~eps_close:component_eps
          pattern;
        if
          not
            (Survivor.connected_ignoring_opens built.Sp.graph pattern
               ~a:built.Sp.input ~b:built.Sp.output)
        then acc.(0) <- acc.(0) + 1;
        if
          Survivor.shorted_by_closure built.Sp.graph pattern ~a:built.Sp.input
            ~b:built.Sp.output
        then acc.(1) <- acc.(1) + 1)
      ~combine:(fun acc chunk ->
        acc.(0) <- acc.(0) + chunk.(0);
        acc.(1) <- acc.(1) + chunk.(1))
      ()
  in
  Format.printf
    "@.measured on the built gadget (%d trials): P[open]=%.4f P[short]=%.4f \
     (both < %g as designed)@."
    trials
    (float_of_int counts.(0) /. float_of_int trials)
    (float_of_int counts.(1) /. float_of_int trials)
    target;

  (* 3. Substitute the gadget into a 4x4 crossbar (section 3's transfer
        argument) and compare LOGICAL switch failure rates: a gadget that
        shorts acts as a closed-failed switch, one that cannot conduct as
        an open-failed switch. *)
  let crossbar = Ftcsn_networks.Crossbar.square 4 in
  let sub =
    Ftcsn_reliability.Substitution.substitute crossbar.Network.graph
      ~gadget:built
  in
  Format.printf
    "@.substituted fabric: %d physical switches standing in for 16 logical \
     ones@."
    (Digraph.edge_count sub.Ftcsn_reliability.Substitution.graph);
  let trials = 20_000 in
  let open_rate, short_rate =
    Ftcsn_reliability.Substitution.logical_rates ~jobs ~trials ~rng
      ~eps_open:component_eps ~eps_close:component_eps sub
  in
  Format.printf
    "per-logical-switch rates (%d trials): P[open]=%.4f P[short]=%.4f \
     (per-switch target was < %g)@."
    trials open_rate.Trials.mean short_rate.Trials.mean target;
  (* gadget copies are edge-disjoint, hence independent *)
  let p_any_amplified =
    1.0 -. ((1.0 -. open_rate.Trials.mean -. short_rate.Trials.mean) ** 16.0)
  in
  let bare =
    Monte_carlo.estimate ~jobs ~trials:2_000 ~rng (fun s ->
        let pattern =
          Fault.sample s ~eps_open:component_eps ~eps_close:component_eps ~m:16
        in
        Array.exists (fun st -> not (Fault.state_equal st Fault.Normal)) pattern)
  in
  Format.printf
    "P[some logical switch fails]: amplified fabric %.3f vs bare crossbar \
     %.3f@."
    p_any_amplified bare.Monte_carlo.mean
