(* Tests for the failure model, survivor semantics, exact and Monte-Carlo
   estimation, Moore-Shannon amplifiers, hammocks, and edge substitution. *)

module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Survivor = Ftcsn_reliability.Survivor
module Scratch = Ftcsn_reliability.Scratch
module Exact = Ftcsn_reliability.Exact
module Monte_carlo = Ftcsn_reliability.Monte_carlo
module Sp_network = Ftcsn_reliability.Sp_network
module Hammock = Ftcsn_reliability.Hammock
module Substitution = Ftcsn_reliability.Substitution
module Rng = Ftcsn_prng.Rng
module Trials = Ftcsn_sim.Trials

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))

(* ---------- Fault ---------- *)

let test_sample_frequencies () =
  let rng = Rng.create ~seed:1 in
  let m = 100_000 in
  let pattern = Fault.sample rng ~eps_open:0.1 ~eps_close:0.2 ~m in
  let opens = Fault.count pattern Fault.Open_failure in
  let closes = Fault.count pattern Fault.Closed_failure in
  let normals = Fault.count pattern Fault.Normal in
  check "total" m (opens + closes + normals);
  checkb "open rate" true (Float.abs (float_of_int opens /. 100_000.0 -. 0.1) < 0.01);
  checkb "close rate" true (Float.abs (float_of_int closes /. 100_000.0 -. 0.2) < 0.01)

let test_sample_validation () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "bad probabilities"
    (Invalid_argument "Fault.sample: bad probabilities") (fun () ->
      ignore (Fault.sample rng ~eps_open:0.7 ~eps_close:0.7 ~m:10))

let test_pattern_probability () =
  let pattern = [| Fault.Normal; Fault.Open_failure; Fault.Closed_failure |] in
  (checkf 1e-12) "product" (0.7 *. 0.1 *. 0.2)
    (Fault.pattern_probability pattern ~eps_open:0.1 ~eps_close:0.2)

let test_failed_edges () =
  let pattern = [| Fault.Normal; Fault.Open_failure; Fault.Normal; Fault.Closed_failure |] in
  Alcotest.(check (list int)) "ids" [ 1; 3 ] (Fault.failed_edges pattern)

let test_faulty_vertices () =
  let g = Digraph.of_edges ~n:4 [| (0, 1); (1, 2); (2, 3) |] in
  let pattern = [| Fault.Normal; Fault.Open_failure; Fault.Normal |] in
  Alcotest.(check (list int)) "incident endpoints" [ 1; 2 ]
    (Ftcsn_util.Bitset.to_list (Fault.faulty_vertices g pattern))

(* ---------- Survivor ---------- *)

let test_survivor_all_normal () =
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  let s = Survivor.apply g (Fault.all_normal 2) in
  check "classes" 3 s.Survivor.contracted_classes;
  check "edges survive" 2 (Digraph.edge_count s.Survivor.graph);
  checkb "terminals distinct" true (Survivor.terminals_distinct s [ 0; 2 ])

let test_survivor_open_removes () =
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  let s = Survivor.apply g [| Fault.Open_failure; Fault.Normal |] in
  check "one edge left" 1 (Digraph.edge_count s.Survivor.graph);
  check "edge 0 gone" (-1) s.Survivor.edge_image.(0);
  checkb "edge 1 kept" true (s.Survivor.edge_image.(1) >= 0)

let test_survivor_closed_contracts () =
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  let s = Survivor.apply g [| Fault.Closed_failure; Fault.Normal |] in
  check "two classes" 2 s.Survivor.contracted_classes;
  check "vertex image merged" s.Survivor.vertex_image.(0) s.Survivor.vertex_image.(1);
  checkb "terminals 0,1 merged" false (Survivor.terminals_distinct s [ 0; 1 ]);
  Alcotest.(check (list (pair int int))) "merged pair" [ (0, 1) ]
    (Survivor.merged_pairs s [ 0; 1; 2 ])

let test_survivor_contraction_makes_loop () =
  (* closing edge 0 merges 0 and 1; the parallel normal edge 0->1 becomes a
     self-loop and is dropped *)
  let g = Digraph.of_edges ~n:2 [| (0, 1); (0, 1) |] in
  let s = Survivor.apply g [| Fault.Closed_failure; Fault.Normal |] in
  check "loop dropped" 0 (Digraph.edge_count s.Survivor.graph);
  check "edge 1 dropped" (-1) s.Survivor.edge_image.(1)

let test_shorted_by_closure () =
  let g = Digraph.of_edges ~n:4 [| (0, 1); (1, 2); (2, 3) |] in
  checkb "full chain shorts" true
    (Survivor.shorted_by_closure g
       [| Fault.Closed_failure; Fault.Closed_failure; Fault.Closed_failure |]
       ~a:0 ~b:3);
  checkb "broken chain does not" false
    (Survivor.shorted_by_closure g
       [| Fault.Closed_failure; Fault.Normal; Fault.Closed_failure |]
       ~a:0 ~b:3)

let test_connected_ignoring_opens () =
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  checkb "normal+closed conduct" true
    (Survivor.connected_ignoring_opens g
       [| Fault.Normal; Fault.Closed_failure |] ~a:0 ~b:2);
  checkb "open breaks" false
    (Survivor.connected_ignoring_opens g
       [| Fault.Open_failure; Fault.Normal |] ~a:0 ~b:2)

(* ---------- Exact vs Monte-Carlo ---------- *)

let test_exact_single_edge () =
  let g = Digraph.of_edges ~n:2 [| (0, 1) |] in
  let p_open =
    Exact.probability g ~eps_open:0.1 ~eps_close:0.2 (fun pattern ->
        Fault.state_equal pattern.(0) Fault.Open_failure)
  in
  (checkf 1e-12) "open prob" 0.1 p_open;
  let p_any =
    Exact.probability g ~eps_open:0.1 ~eps_close:0.2 (fun _ -> true)
  in
  (checkf 1e-12) "total mass" 1.0 p_any

let test_exact_two_edge_series () =
  (* series of 2: P[no conduction 0->2] = 1 - (1-eps_open)^2 *)
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  let eps = 0.15 in
  let p =
    Exact.probability g ~eps_open:eps ~eps_close:eps (fun pattern ->
        not (Survivor.connected_ignoring_opens g pattern ~a:0 ~b:2))
  in
  (checkf 1e-12) "series open" (1.0 -. ((1.0 -. eps) ** 2.0)) p

let test_exact_rejects_large () =
  let g = Digraph.of_edges ~n:2 (Array.make 14 (0, 1)) in
  Alcotest.check_raises "too many edges"
    (Invalid_argument "Exact.probability: too many edges") (fun () ->
      ignore (Exact.probability g ~eps_open:0.1 ~eps_close:0.1 (fun _ -> true)))

let test_monte_carlo_matches_exact () =
  (* parallel pair: P[both open] = eps^2 with eps=0.3 -> 0.09 *)
  let g = Digraph.of_edges ~n:2 [| (0, 1); (0, 1) |] in
  let eps = 0.3 in
  let event pattern = not (Survivor.connected_ignoring_opens g pattern ~a:0 ~b:1) in
  let exact = Exact.probability g ~eps_open:eps ~eps_close:eps event in
  let rng = Rng.create ~seed:2024 in
  let est =
    Monte_carlo.estimate_event ~trials:20_000 ~rng ~graph:g ~eps_open:eps
      ~eps_close:eps event
  in
  checkb "exact within CI" true (est.ci_low <= exact && exact <= est.ci_high)

let test_monte_carlo_extremes () =
  let rng = Rng.create ~seed:3 in
  let always = Monte_carlo.estimate ~trials:100 ~rng (fun _ -> true) in
  (checkf 1e-12) "p=1" 1.0 always.Monte_carlo.mean;
  let never = Monte_carlo.estimate ~trials:100 ~rng (fun _ -> false) in
  (checkf 1e-12) "p=0" 0.0 never.Monte_carlo.mean;
  checkb "ci is proper" true (never.ci_low = 0.0 && never.ci_high > 0.0)

(* ---------- Sp_network (Proposition 1) ---------- *)

let test_sp_size_depth () =
  check "edge size" 1 (Sp_network.size Sp_network.Edge);
  check "edge depth" 1 (Sp_network.depth Sp_network.Edge);
  let q1 = Sp_network.iterate_quad 1 in
  check "quad size" 4 (Sp_network.size q1);
  check "quad depth" 2 (Sp_network.depth q1);
  let q3 = Sp_network.iterate_quad 3 in
  check "quad^3 size" 64 (Sp_network.size q3);
  check "quad^3 depth" 8 (Sp_network.depth q3)

let test_sp_probs_single () =
  (checkf 1e-12) "open" 0.1
    (Sp_network.open_prob Sp_network.Edge ~eps_open:0.1 ~eps_close:0.2);
  (checkf 1e-12) "short" 0.2
    (Sp_network.short_prob Sp_network.Edge ~eps_open:0.1 ~eps_close:0.2)

let test_sp_recurrence_vs_exact () =
  (* the analytic recurrence must equal exhaustive enumeration *)
  let spec = Sp_network.quad Sp_network.Edge in
  let built = Sp_network.build spec in
  let g = built.Sp_network.graph in
  let eps = 0.2 in
  let exact_open =
    Exact.probability g ~eps_open:eps ~eps_close:eps (fun pattern ->
        not
          (Survivor.connected_ignoring_opens g pattern ~a:built.Sp_network.input
             ~b:built.Sp_network.output))
  in
  let exact_short =
    Exact.probability g ~eps_open:eps ~eps_close:eps (fun pattern ->
        Survivor.shorted_by_closure g pattern ~a:built.Sp_network.input
          ~b:built.Sp_network.output)
  in
  (checkf 1e-9) "open matches"
    (Sp_network.open_prob spec ~eps_open:eps ~eps_close:eps)
    exact_open;
  (checkf 1e-9) "short matches"
    (Sp_network.short_prob spec ~eps_open:eps ~eps_close:eps)
    exact_short

let test_sp_amplification_monotone () =
  let eps = 0.1 in
  let prev_open = ref 1.0 and prev_short = ref 1.0 in
  for k = 0 to 4 do
    let spec = Sp_network.iterate_quad k in
    let po = Sp_network.open_prob spec ~eps_open:eps ~eps_close:eps in
    let ps = Sp_network.short_prob spec ~eps_open:eps ~eps_close:eps in
    checkb (Printf.sprintf "open shrinks at k=%d" k) true (po < !prev_open);
    checkb (Printf.sprintf "short shrinks at k=%d" k) true (ps < !prev_short);
    prev_open := po;
    prev_short := ps
  done

let test_sp_design_meets_target () =
  let eps = 0.1 in
  List.iter
    (fun eps' ->
      let spec = Sp_network.design ~eps ~eps' in
      checkb "open under target" true
        (Sp_network.open_prob spec ~eps_open:eps ~eps_close:eps < eps');
      checkb "short under target" true
        (Sp_network.short_prob spec ~eps_open:eps ~eps_close:eps < eps'))
    [ 0.05; 0.01; 1e-3; 1e-6 ]

let test_sp_design_rejects_large_eps () =
  Alcotest.check_raises "eps too large"
    (Invalid_argument "Sp_network.design: need 0 < eps < 1/4") (fun () ->
      ignore (Sp_network.design ~eps:0.3 ~eps':0.01))

let test_sp_proposition1_scaling () =
  (* size ~ c (log 1/eps')^2 and depth ~ d log 1/eps': ratios flatten *)
  let eps = 0.05 in
  let measure eps' =
    let spec = Sp_network.design ~eps ~eps' in
    let lg = log (1.0 /. eps') /. log 2.0 in
    ( float_of_int (Sp_network.size spec) /. (lg *. lg),
      float_of_int (Sp_network.depth spec) /. lg )
  in
  let s1, d1 = measure 1e-4 in
  let s2, d2 = measure 1e-8 in
  (* quad-iteration is stepwise, so allow a generous constant band *)
  checkb "size ratio bounded" true (s2 /. s1 < 8.0 && s1 /. s2 < 8.0);
  checkb "depth ratio bounded" true (d2 /. d1 < 4.0 && d1 /. d2 < 4.0)

let test_sp_build_structure () =
  let spec = Sp_network.iterate_quad 2 in
  let built = Sp_network.build spec in
  check "edges" (Sp_network.size spec) (Digraph.edge_count built.Sp_network.graph);
  check "depth" (Sp_network.depth spec)
    (Ftcsn_graph.Traverse.depth built.Sp_network.graph
       ~inputs:[ built.Sp_network.input ] ~outputs:[ built.Sp_network.output ])

let test_rectangle_structure () =
  let r = Sp_network.rectangle ~j:3 ~k:4 in
  check "size" 12 (Sp_network.size r);
  check "depth" 3 (Sp_network.depth r)

let test_rectangle_probs_match_closed_form () =
  let eps = 0.12 in
  let j = 3 and k = 5 in
  let r = Sp_network.rectangle ~j ~k in
  let branch_opens = 1.0 -. ((1.0 -. eps) ** float_of_int j) in
  (checkf 1e-12) "open closed-form"
    (branch_opens ** float_of_int k)
    (Sp_network.open_prob r ~eps_open:eps ~eps_close:eps);
  let branch_shorts = eps ** float_of_int j in
  (checkf 1e-12) "short closed-form"
    (1.0 -. ((1.0 -. branch_shorts) ** float_of_int k))
    (Sp_network.short_prob r ~eps_open:eps ~eps_close:eps)

let test_design_rectangle_meets_targets () =
  let eps = 0.1 in
  List.iter
    (fun (t_open, t_short) ->
      match Sp_network.design_rectangle ~eps ~target_open:t_open ~target_short:t_short with
      | None -> Alcotest.fail "rectangle should exist"
      | Some r ->
          checkb "open ok" true
            (Sp_network.open_prob r ~eps_open:eps ~eps_close:eps < t_open);
          checkb "short ok" true
            (Sp_network.short_prob r ~eps_open:eps ~eps_close:eps < t_short))
    [ (1e-2, 1e-2); (1e-6, 1e-2); (1e-2, 1e-6); (1e-8, 1e-8) ]

let test_design_rectangle_asymmetric_beats_quad () =
  (* when only one failure mode needs suppression, the rectangle is far
     smaller than symmetric quad iteration *)
  let eps = 0.1 in
  let quad = Sp_network.design ~eps ~eps':1e-6 in
  match
    Sp_network.design_rectangle ~eps ~target_open:1e-6 ~target_short:0.4
  with
  | None -> Alcotest.fail "should exist"
  | Some r -> checkb "rectangle smaller" true (Sp_network.size r < Sp_network.size quad)

let test_design_rectangle_infeasible () =
  checkb "impossible targets" true
    (Sp_network.design_rectangle ~eps:0.4 ~target_open:1e-300 ~target_short:1e-300
    = None)

(* ---------- Hammock ---------- *)

let test_hammock_structure () =
  let h = Hammock.make ~rows:4 ~width:6 in
  check "vertices" (2 + 24) (Digraph.vertex_count h.Hammock.graph);
  (* input fan 4 + output fan 4 + 2*4*(6-1) internal *)
  check "edges" (4 + 4 + 40) (Hammock.size h);
  check "depth" 7 (Hammock.depth h)

let test_hammock_single_row () =
  let h = Hammock.make ~rows:1 ~width:3 in
  check "edges" (1 + 1 + 2) (Hammock.size h);
  check "depth" 4 (Hammock.depth h)

let test_hammock_reliability_improves_with_rows () =
  let rng = Rng.create ~seed:5 in
  let eps = 0.15 in
  let open1 =
    Hammock.open_failure_prob ~trials:3000 ~rng ~eps (Hammock.make ~rows:1 ~width:4)
  in
  let open8 =
    Hammock.open_failure_prob ~trials:3000 ~rng ~eps (Hammock.make ~rows:8 ~width:4)
  in
  checkb "more rows, fewer opens" true
    (open8.Monte_carlo.mean < open1.Monte_carlo.mean)

let test_hammock_short_grows_with_rows () =
  (* more parallel rails make closed-failure shorts more likely at fixed
     width *)
  let rng = Rng.create ~seed:6 in
  let eps = 0.2 in
  let s1 =
    Hammock.short_failure_prob ~trials:4000 ~rng ~eps (Hammock.make ~rows:1 ~width:3)
  in
  let s8 =
    Hammock.short_failure_prob ~trials:4000 ~rng ~eps (Hammock.make ~rows:8 ~width:3)
  in
  checkb "more rows, more shorts" true (s8.Monte_carlo.mean > s1.Monte_carlo.mean)

(* ---------- Substitution ---------- *)

let test_substitution_counts () =
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  let gadget = Sp_network.build (Sp_network.iterate_quad 1) in
  let sub = Substitution.substitute g ~gadget in
  check "edges multiplied" (2 * 4) (Digraph.edge_count sub.Substitution.graph);
  (checkf 1e-9) "factor" 4.0 (Substitution.size_factor g ~gadget)

let test_substitution_preserves_connectivity () =
  let g = Digraph.of_edges ~n:4 [| (0, 1); (1, 2); (2, 3) |] in
  let gadget = Sp_network.build (Sp_network.iterate_quad 1) in
  let sub = Substitution.substitute g ~gadget in
  let src = sub.Substitution.vertex_image.(0) in
  let dst = sub.Substitution.vertex_image.(3) in
  let d = Ftcsn_graph.Traverse.bfs_directed sub.Substitution.graph ~sources:[ src ] in
  checkb "still connected" true (d.(dst) >= 0);
  check "depth scales by gadget depth" (3 * 2) d.(dst)

let test_logical_pattern_identity () =
  (* all-normal physical pattern -> all-normal logical pattern *)
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  let gadget = Sp_network.build (Sp_network.iterate_quad 1) in
  let sub = Substitution.substitute g ~gadget in
  let m = Digraph.edge_count sub.Substitution.graph in
  let logical = Substitution.logical_pattern sub (Fault.all_normal m) in
  check "arity" 2 (Array.length logical);
  Array.iter
    (fun s -> checkb "normal" true (Fault.state_equal s Fault.Normal))
    logical

let test_logical_pattern_open () =
  (* kill every physical switch of gadget copy 0 by open failure: logical
     edge 0 opens, logical edge 1 stays normal *)
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  let gadget = Sp_network.build (Sp_network.iterate_quad 1) in
  let sub = Substitution.substitute g ~gadget in
  let gm = Digraph.edge_count gadget.Sp_network.graph in
  let pattern = Fault.all_normal (2 * gm) in
  for j = 0 to gm - 1 do
    pattern.(j) <- Fault.Open_failure
  done;
  let logical = Substitution.logical_pattern sub pattern in
  checkb "edge 0 open" true (Fault.state_equal logical.(0) Fault.Open_failure);
  checkb "edge 1 normal" true (Fault.state_equal logical.(1) Fault.Normal)

let test_logical_pattern_short () =
  let g = Digraph.of_edges ~n:2 [| (0, 1) |] in
  let gadget = Sp_network.build (Sp_network.iterate_quad 1) in
  let sub = Substitution.substitute g ~gadget in
  let gm = Digraph.edge_count gadget.Sp_network.graph in
  let pattern = Array.make gm Fault.Closed_failure in
  let logical = Substitution.logical_pattern sub pattern in
  checkb "shorted" true (Fault.state_equal logical.(0) Fault.Closed_failure)

let test_logical_pattern_rates () =
  (* the measured logical failure rates must match the gadget's exact
     open/short probabilities *)
  let g = Digraph.of_edges ~n:2 [| (0, 1) |] in
  let spec = Sp_network.iterate_quad 1 in
  let gadget = Sp_network.build spec in
  let sub = Substitution.substitute g ~gadget in
  let gm = Digraph.edge_count gadget.Sp_network.graph in
  let eps = 0.15 in
  let rng = Rng.create ~seed:77 in
  let opens = ref 0 and shorts = ref 0 in
  let trials = 30_000 in
  for _ = 1 to trials do
    let pattern = Fault.sample rng ~eps_open:eps ~eps_close:eps ~m:gm in
    match (Substitution.logical_pattern sub pattern).(0) with
    | Fault.Open_failure -> incr opens
    | Fault.Closed_failure -> incr shorts
    | Fault.Normal -> ()
  done;
  let measured_open = float_of_int !opens /. float_of_int trials in
  let measured_short = float_of_int !shorts /. float_of_int trials in
  let exact_short = Sp_network.short_prob spec ~eps_open:eps ~eps_close:eps in
  (* logical_pattern classifies short-and-open patterns as short, so the
     open rate to compare is P[open and not short] = open_prob exactly,
     because a shorted gadget always conducts *)
  let exact_open = Sp_network.open_prob spec ~eps_open:eps ~eps_close:eps in
  checkb "open rate" true (Float.abs (measured_open -. exact_open) < 0.01);
  checkb "short rate" true (Float.abs (measured_short -. exact_short) < 0.01)

(* ---------- Importance (Birnbaum criticality) ---------- *)

module Importance = Ftcsn_reliability.Importance

let test_importance_single_wire () =
  (* one switch, event = no conduction: forcing it open guarantees the
     event, forcing it normal prevents it -> open importance 1 *)
  let g = Digraph.of_edges ~n:2 [| (0, 1) |] in
  let event pattern =
    not (Survivor.connected_ignoring_opens g pattern ~a:0 ~b:1)
  in
  let rng = Rng.create ~seed:88 in
  let est =
    Importance.importance ~trials:500 ~rng ~graph:g ~eps:0.2
      ~init:(fun () -> ())
      ~event:(fun () -> event) ~switches:[| 0 |] ()
  in
  (checkf 1e-9) "open importance" 1.0 est.(0).Importance.open_importance;
  (checkf 1e-9) "close importance" 0.0 est.(0).Importance.close_importance

let test_importance_redundant_pair () =
  (* parallel pair: opening one switch only matters when the other failed *)
  let g = Digraph.of_edges ~n:2 [| (0, 1); (0, 1) |] in
  let event pattern =
    not (Survivor.connected_ignoring_opens g pattern ~a:0 ~b:1)
  in
  let rng = Rng.create ~seed:89 in
  let eps = 0.2 in
  let est =
    Importance.importance ~trials:30_000 ~rng ~graph:g ~eps
      ~init:(fun () -> ())
      ~event:(fun () -> event) ~switches:[| 0 |] ()
  in
  (* exact: I0 = P[switch 1 open] = eps *)
  checkb "open importance ~ eps" true
    (Float.abs (est.(0).Importance.open_importance -. eps) < 0.02);
  checkb "redundancy lowers criticality" true
    (est.(0).Importance.open_importance < 0.5)

let test_importance_short_event () =
  (* chain of 2, event = terminals short: closing one switch matters iff
     the other is closed: I1 = eps *)
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  let event pattern = Survivor.shorted_by_closure g pattern ~a:0 ~b:2 in
  let rng = Rng.create ~seed:90 in
  let eps = 0.25 in
  let est =
    Importance.importance ~trials:30_000 ~rng ~graph:g ~eps
      ~init:(fun () -> ())
      ~event:(fun () -> event) ~switches:[| 0; 1 |] ()
  in
  Array.iter
    (fun e ->
      checkb "close importance ~ eps" true
        (Float.abs (e.Importance.close_importance -. eps) < 0.02);
      (checkf 1e-9) "open importance 0" 0.0 e.Importance.open_importance)
    est

let test_importance_rank () =
  (* series chain followed by a parallel pair: the series switch dominates *)
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2); (1, 2) |] in
  let event pattern =
    not (Survivor.connected_ignoring_opens g pattern ~a:0 ~b:2)
  in
  let rng = Rng.create ~seed:91 in
  let ranked =
    Importance.rank ~trials:8000 ~rng ~graph:g ~eps:0.15
      ~init:(fun () -> ())
      ~event:(fun () -> event) ~sample:3 ()
  in
  check "all sampled" 3 (Array.length ranked);
  check "series switch most critical" 0 ranked.(0).Importance.switch

(* ---------- Poly (section 3: failure polynomial) ---------- *)

module Poly = Ftcsn_reliability.Poly

let test_poly_single_switch () =
  (* single wire: fails iff the switch fails; P(eps) = 2 eps *)
  let g = Digraph.of_edges ~n:2 [| (0, 1) |] in
  let poly =
    Poly.failure_polynomial g (fun pattern ->
        not (Fault.state_equal pattern.(0) Fault.Normal))
  in
  checkb "constant term vanishes" true (Poly.constant_term_vanishes poly);
  List.iter
    (fun eps ->
      (checkf 1e-12)
        (Printf.sprintf "P(%g)" eps)
        (2.0 *. eps)
        (Poly.eval poly ~eps))
    [ 0.0; 0.1; 0.25; 0.4 ]

let test_poly_matches_exact () =
  (* arbitrary event on a 3-switch chain: polynomial evaluation must equal
     direct exact enumeration at every eps *)
  let g = Digraph.of_edges ~n:4 [| (0, 1); (1, 2); (2, 3) |] in
  let event pattern =
    not (Survivor.connected_ignoring_opens g pattern ~a:0 ~b:3)
  in
  let poly = Poly.failure_polynomial g event in
  List.iter
    (fun eps ->
      let exact = Exact.probability g ~eps_open:eps ~eps_close:eps event in
      (checkf 1e-12) (Printf.sprintf "eps=%g" eps) exact (Poly.eval poly ~eps))
    [ 0.05; 0.2; 0.45 ]

let test_poly_delta_rescaling () =
  (* the section-3 delta-invariance inequality on a concrete instance *)
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2); (0, 2) |] in
  let event pattern =
    Survivor.shorted_by_closure g pattern ~a:0 ~b:2
  in
  let poly = Poly.failure_polynomial g event in
  checkb "constant vanishes" true (Poly.constant_term_vanishes poly);
  List.iter
    (fun ratio ->
      checkb
        (Printf.sprintf "P(%g eps) <= %g P(eps)" ratio ratio)
        true
        (Poly.delta_rescaling_bound poly ~eps:0.2 ~ratio))
    [ 1.0; 0.5; 0.1; 0.01 ]

let test_poly_rejects_large () =
  let g = Digraph.of_edges ~n:2 (Array.make 14 (0, 1)) in
  Alcotest.check_raises "too many"
    (Invalid_argument "Poly.failure_polynomial: too many edges") (fun () ->
      ignore (Poly.failure_polynomial g (fun _ -> true)))

(* ---------- trial engine determinism ---------- *)

(* a trial function with enough structure to expose scheduling bugs: each
   trial draws a variable number of values from its substream *)
let spiky_trial sub =
  let n = 1 + Rng.int sub 17 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float sub
  done;
  !acc < float_of_int n /. 2.0

let check_estimate msg (a : Trials.estimate) (b : Trials.estimate) =
  check (msg ^ ": successes") a.Trials.successes b.Trials.successes;
  check (msg ^ ": trials") a.Trials.trials b.Trials.trials;
  checkf 0.0 (msg ^ ": mean") a.Trials.mean b.Trials.mean;
  checkf 0.0 (msg ^ ": ci_low") a.Trials.ci_low b.Trials.ci_low;
  checkf 0.0 (msg ^ ": ci_high") a.Trials.ci_high b.Trials.ci_high

let run_at ~jobs ?target_ci () =
  let rng = Rng.create ~seed:2024 in
  let est = Trials.run ~jobs ?target_ci ~chunk:64 ~trials:2000 ~rng spiky_trial in
  (* the parent stream must also be advanced identically *)
  (est, Rng.int64 rng)

let test_trials_jobs_deterministic () =
  let e1, next1 = run_at ~jobs:1 () in
  let e4, next4 = run_at ~jobs:4 () in
  check_estimate "jobs 1 vs 4" e1 e4;
  Alcotest.(check int64) "parent stream advanced identically" next1 next4;
  let e3, next3 = run_at ~jobs:3 () in
  check_estimate "jobs 1 vs 3" e1 e3;
  Alcotest.(check int64) "parent stream (jobs 3)" next1 next3

let test_trials_adaptive_deterministic () =
  let e1, next1 = run_at ~jobs:1 ~target_ci:0.03 () in
  let e4, next4 = run_at ~jobs:4 ~target_ci:0.03 () in
  check_estimate "adaptive jobs 1 vs 4" e1 e4;
  Alcotest.(check int64) "parent stream advanced identically" next1 next4;
  checkb "adaptive stopping actually stopped early" true
    (e1.Trials.trials < 2000);
  checkb "respects min_trials floor" true (e1.Trials.trials >= 1000)

let test_estimate_event_jobs_deterministic () =
  let g = Digraph.of_edges ~n:4 [| (0, 1); (1, 2); (2, 3); (0, 3) |] in
  let run jobs =
    let rng = Rng.create ~seed:77 in
    Monte_carlo.estimate_event ~jobs ~trials:1500 ~rng ~graph:g ~eps_open:0.1
      ~eps_close:0.1 (fun pattern ->
        Fault.count pattern Fault.Normal > 2)
  in
  check_estimate "estimate_event jobs 1 vs 4" (run 1) (run 4)

let test_search_jobs_deterministic () =
  let find jobs =
    let rng = Rng.create ~seed:9 in
    Trials.search ~jobs ~chunk:16 ~trials:400 ~rng (fun sub ->
        let v = Rng.int sub 50 in
        if v = 0 then Some v else None)
  in
  match (find 1, find 4) with
  | Some a, Some b -> check "same witness" a b
  | None, None -> ()
  | _ -> Alcotest.fail "search: jobs 1 and jobs 4 disagree on existence"

(* ---------- CRN ε-curve sweeps ---------- *)

let sweep_graph () =
  Digraph.of_edges ~n:6
    [| (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (0, 3); (1, 4); (2, 5) |]

let sweep_event sc =
  let pattern = Scratch.pattern sc in
  Fault.count pattern Fault.Normal > Array.length pattern - 3

let test_sweep_one_point_matches_scratch () =
  (* a 1-point grid must reproduce the single-ε engine bit-for-bit:
     same draws, same thresholds, same parent-stream advance *)
  let g = sweep_graph () in
  List.iter
    (fun jobs ->
      let rng_c = Rng.create ~seed:321 in
      let curve =
        Monte_carlo.estimate_curve ~jobs ~trials:800 ~rng:rng_c ~graph:g
          ~grid:[| (0.07, 0.05) |]
          sweep_event
      in
      let rng_s = Rng.create ~seed:321 in
      let single =
        Monte_carlo.estimate_event_scratch ~jobs ~trials:800 ~rng:rng_s
          ~graph:g ~eps_open:0.07 ~eps_close:0.05 sweep_event
      in
      check "one point" 1 (Array.length curve);
      check_estimate "1-point grid = estimate_event_scratch" curve.(0) single;
      Alcotest.(check int64)
        "parent stream advanced identically" (Rng.int64 rng_s)
        (Rng.int64 rng_c))
    [ 1; 3 ]

let test_curve_points_match_independent_runs () =
  (* every grid point equals an independent run at that (ε₁, ε₂): the
     coupling shares draws, never changes any single point's law *)
  let g = sweep_graph () in
  let grid = [| (0.01, 0.0); (0.05, 0.02); (0.2, 0.1) |] in
  let curve =
    let rng = Rng.create ~seed:99 in
    Monte_carlo.estimate_curve ~trials:600 ~rng ~graph:g ~grid sweep_event
  in
  Array.iteri
    (fun k (eps_open, eps_close) ->
      let rng = Rng.create ~seed:99 in
      let single =
        Monte_carlo.estimate_event_scratch ~trials:600 ~rng ~graph:g ~eps_open
          ~eps_close sweep_event
      in
      check_estimate (Printf.sprintf "grid point %d" k) curve.(k) single)
    grid

let test_sweep_jobs_trace_deterministic () =
  let g = sweep_graph () in
  let grid = [| (0.02, 0.01); (0.1, 0.05); (0.3, 0.2) |] in
  let run ~jobs ~traced =
    let rng = Rng.create ~seed:512 in
    let ests =
      if traced then begin
        let sink, _drain = Ftcsn_obs.Trace.memory () in
        let r =
          Monte_carlo.estimate_curve ~jobs ~trace:sink ~trials:700 ~rng
            ~graph:g ~grid sweep_event
        in
        Ftcsn_obs.Trace.close sink;
        r
      end
      else Monte_carlo.estimate_curve ~jobs ~trials:700 ~rng ~graph:g ~grid sweep_event
    in
    (ests, Rng.int64 rng)
  in
  let base, next0 = run ~jobs:1 ~traced:false in
  List.iter
    (fun (jobs, traced) ->
      let ests, next = run ~jobs ~traced in
      Array.iteri
        (fun k e ->
          check_estimate
            (Printf.sprintf "jobs=%d traced=%b point %d" jobs traced k)
            base.(k) e)
        ests;
      Alcotest.(check int64) "parent stream" next0 next)
    [ (1, true); (2, false); (4, true); (4, false) ]

let test_crn_curve_monotone_successes () =
  (* CRN couples trials across the curve, so the per-point success
     COUNTS — not just the means — are nondecreasing for a monotone
     event on an ascending grid: each trial's indicator is monotone *)
  let h = Hammock.make ~rows:4 ~width:5 in
  let eps = [| 0.01; 0.03; 0.08; 0.15; 0.3 |] in
  let rng = Rng.create ~seed:7 in
  let curve = Hammock.open_failure_prob_curve ~trials:500 ~rng ~eps h in
  for k = 1 to Array.length curve - 1 do
    checkb
      (Printf.sprintf "successes nondecreasing at point %d" k)
      true
      (curve.(k).Trials.successes >= curve.(k - 1).Trials.successes)
  done

let test_hammock_curve_matches_independent () =
  let h = Hammock.make ~rows:3 ~width:4 in
  let eps = [| 0.02; 0.07; 0.2 |] in
  let curve =
    let rng = Rng.create ~seed:31 in
    Hammock.open_failure_prob_curve ~trials:400 ~rng ~eps h
  in
  Array.iteri
    (fun k e ->
      let rng = Rng.create ~seed:31 in
      let single = Hammock.open_failure_prob ~trials:400 ~rng ~eps:e h in
      check_estimate (Printf.sprintf "eps %g" e) curve.(k) single)
    eps

(* ---------- persistent domain pool ---------- *)

let test_pool_vs_spawn_identical () =
  let run () =
    let rng = Rng.create ~seed:2024 in
    let est = Trials.run ~jobs:4 ~chunk:64 ~trials:1500 ~rng spiky_trial in
    (est, Rng.int64 rng)
  in
  let pooled, next_p = run () in
  let spawned, next_s =
    Trials.pool_enabled := false;
    Fun.protect ~finally:(fun () -> Trials.pool_enabled := true) run
  in
  check_estimate "pool vs spawn-per-round" pooled spawned;
  Alcotest.(check int64) "parent stream" next_p next_s

let test_pool_spawns_counted_once () =
  let c =
    Ftcsn_obs.Metrics.counter Ftcsn_obs.Metrics.default "trials.pool.spawns"
  in
  let run () =
    let rng = Rng.create ~seed:5 in
    ignore (Trials.run ~jobs:3 ~chunk:32 ~trials:300 ~rng spiky_trial)
  in
  run ();
  (* the pool now holds >= 2 workers: a second jobs=3 run is all reuse *)
  let before = Ftcsn_obs.Counter.get c in
  run ();
  check "warm pool spawns no new domains" before (Ftcsn_obs.Counter.get c)

(* ---------- properties ---------- *)

let prop_survivor_class_count =
  QCheck2.Test.make ~name:"contraction classes = n - rank(closed forest)"
    ~count:100
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2 + Rng.int rng 12 in
      let m = Rng.int rng 20 in
      let edges = Array.init m (fun _ -> (Rng.int rng n, Rng.int rng n)) in
      let g = Digraph.of_edges ~n edges in
      let pattern = Fault.sample rng ~eps_open:0.2 ~eps_close:0.3 ~m in
      let s = Survivor.apply g pattern in
      (* classes computed independently via union-find over closed edges *)
      let uf = Ftcsn_util.Union_find.create n in
      Array.iteri
        (fun e st ->
          if Fault.state_equal st Fault.Closed_failure then
            Ftcsn_util.Union_find.union uf (Digraph.edge_src g e)
              (Digraph.edge_dst g e))
        pattern;
      s.Survivor.contracted_classes = Ftcsn_util.Union_find.class_count uf)

let prop_survivor_edges_are_normal =
  QCheck2.Test.make ~name:"surviving edges come from normal switches" ~count:100
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2 + Rng.int rng 12 in
      let m = Rng.int rng 20 in
      let edges = Array.init m (fun _ -> (Rng.int rng n, Rng.int rng n)) in
      let g = Digraph.of_edges ~n edges in
      let pattern = Fault.sample rng ~eps_open:0.3 ~eps_close:0.3 ~m in
      let s = Survivor.apply g pattern in
      let ok = ref true in
      Array.iteri
        (fun e image ->
          if image >= 0 && not (Fault.state_equal pattern.(e) Fault.Normal) then
            ok := false)
        s.Survivor.edge_image;
      !ok)

let prop_sp_probs_in_range =
  QCheck2.Test.make ~name:"sp failure probabilities stay in [0,1]" ~count:100
    QCheck2.Gen.(pair (int_range 0 4) (int_range 1 20))
    (fun (k, e) ->
      let eps = float_of_int e /. 50.0 in
      let spec = Sp_network.iterate_quad k in
      let po = Sp_network.open_prob spec ~eps_open:eps ~eps_close:eps in
      let ps = Sp_network.short_prob spec ~eps_open:eps ~eps_close:eps in
      po >= 0.0 && po <= 1.0 && ps >= 0.0 && ps <= 1.0)

let prop_sample_into_matches_sample =
  QCheck2.Test.make ~name:"sample_into consumes the same stream as sample"
    ~count:200
    QCheck2.Gen.(triple (int_range 0 100000) (int_range 0 64) (int_range 0 10))
    (fun (seed, m, e) ->
      let eps_open = float_of_int e /. 25.0 in
      let eps_close = (1.0 -. eps_open) /. 3.0 in
      let a = Rng.create ~seed in
      let b = Rng.create ~seed in
      let fresh = Fault.sample a ~eps_open ~eps_close ~m in
      let buffer = Array.make m Fault.Closed_failure in
      Fault.sample_into b ~eps_open ~eps_close buffer;
      (* same pattern AND same post-state: interchangeable mid-stream *)
      Array.for_all2 Fault.state_equal fresh buffer
      && Rng.int64 a = Rng.int64 b)

let prop_workspace_survivor_matches_legacy =
  QCheck2.Test.make ~name:"workspace survivor ops match the legacy path"
    ~count:200
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 2 + Rng.int rng 12 in
      let m = Rng.int rng 24 in
      let edges = Array.init m (fun _ -> (Rng.int rng n, Rng.int rng n)) in
      let g = Digraph.of_edges ~n edges in
      let sc = Scratch.create g in
      let terminals =
        List.init (1 + Rng.int rng (min 4 n)) (fun _ -> Rng.int rng n)
      in
      let ok = ref true in
      (* two rounds on one workspace: reuse must behave like fresh state *)
      for _round = 0 to 1 do
        let pattern = Fault.sample rng ~eps_open:0.2 ~eps_close:0.3 ~m in
        let s = Survivor.apply g pattern in
        Survivor.apply_into sc pattern;
        if
          Survivor.terminals_distinct s terminals
          <> Survivor.terminals_distinct_into sc terminals
        then ok := false;
        if
          Survivor.merged_pairs s terminals
          <> Survivor.merged_pairs_into sc terminals
        then ok := false;
        let a = Rng.int rng n and b = Rng.int rng n in
        if
          Survivor.shorted_by_closure g pattern ~a ~b
          <> Survivor.shorted_by_closure_into sc pattern ~a ~b
        then ok := false;
        if
          Survivor.connected_ignoring_opens g pattern ~a ~b
          <> Survivor.connected_ignoring_opens_into sc pattern ~a ~b
        then ok := false
      done;
      !ok)

let prop_hammock_ws_matches_legacy =
  QCheck2.Test.make
    ~name:"hammock estimates: workspace path = legacy path, every jobs"
    ~count:10
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let h = Hammock.make ~rows:3 ~width:4 in
      let trials = 400 in
      let eps = 0.08 in
      let run jobs =
        let rng = Rng.create ~seed in
        Hammock.open_failure_prob ~jobs ~trials ~rng ~eps h
      in
      (* reference: the allocating per-trial pattern + legacy BFS *)
      let legacy =
        let rng = Rng.create ~seed in
        Monte_carlo.estimate_event ~trials ~rng ~graph:h.Hammock.graph
          ~eps_open:eps ~eps_close:eps (fun pattern ->
            not
              (Survivor.connected_ignoring_opens h.Hammock.graph pattern
                 ~a:h.Hammock.input ~b:h.Hammock.output))
      in
      let e1 = run 1 in
      run 2 = e1 && run 4 = e1 && legacy = e1)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_survivor_class_count;
      prop_survivor_edges_are_normal;
      prop_sp_probs_in_range;
      prop_sample_into_matches_sample;
      prop_workspace_survivor_matches_legacy;
      prop_hammock_ws_matches_legacy;
    ]

let () =
  Alcotest.run "ftcsn_reliability"
    [
      ( "fault",
        [
          Alcotest.test_case "sample frequencies" `Quick test_sample_frequencies;
          Alcotest.test_case "validation" `Quick test_sample_validation;
          Alcotest.test_case "pattern probability" `Quick test_pattern_probability;
          Alcotest.test_case "failed edges" `Quick test_failed_edges;
          Alcotest.test_case "faulty vertices" `Quick test_faulty_vertices;
        ] );
      ( "survivor",
        [
          Alcotest.test_case "all normal" `Quick test_survivor_all_normal;
          Alcotest.test_case "open removes" `Quick test_survivor_open_removes;
          Alcotest.test_case "closed contracts" `Quick test_survivor_closed_contracts;
          Alcotest.test_case "loop dropped" `Quick test_survivor_contraction_makes_loop;
          Alcotest.test_case "shorted by closure" `Quick test_shorted_by_closure;
          Alcotest.test_case "connected ignoring opens" `Quick
            test_connected_ignoring_opens;
        ] );
      ( "exact-vs-mc",
        [
          Alcotest.test_case "single edge" `Quick test_exact_single_edge;
          Alcotest.test_case "series" `Quick test_exact_two_edge_series;
          Alcotest.test_case "size guard" `Quick test_exact_rejects_large;
          Alcotest.test_case "mc matches exact" `Quick test_monte_carlo_matches_exact;
          Alcotest.test_case "mc extremes" `Quick test_monte_carlo_extremes;
        ] );
      ( "sp-network",
        [
          Alcotest.test_case "size/depth" `Quick test_sp_size_depth;
          Alcotest.test_case "single switch probs" `Quick test_sp_probs_single;
          Alcotest.test_case "recurrence vs exact" `Quick test_sp_recurrence_vs_exact;
          Alcotest.test_case "amplification monotone" `Quick
            test_sp_amplification_monotone;
          Alcotest.test_case "design meets target" `Quick test_sp_design_meets_target;
          Alcotest.test_case "design validation" `Quick test_sp_design_rejects_large_eps;
          Alcotest.test_case "proposition-1 scaling" `Quick test_sp_proposition1_scaling;
          Alcotest.test_case "built structure" `Quick test_sp_build_structure;
        ] );
      ( "rectangle",
        [
          Alcotest.test_case "structure" `Quick test_rectangle_structure;
          Alcotest.test_case "closed form" `Quick test_rectangle_probs_match_closed_form;
          Alcotest.test_case "meets targets" `Quick test_design_rectangle_meets_targets;
          Alcotest.test_case "asymmetric advantage" `Quick
            test_design_rectangle_asymmetric_beats_quad;
          Alcotest.test_case "infeasible" `Quick test_design_rectangle_infeasible;
        ] );
      ( "hammock",
        [
          Alcotest.test_case "structure" `Quick test_hammock_structure;
          Alcotest.test_case "single row" `Quick test_hammock_single_row;
          Alcotest.test_case "rows reduce opens" `Quick
            test_hammock_reliability_improves_with_rows;
          Alcotest.test_case "rows increase shorts" `Quick
            test_hammock_short_grows_with_rows;
        ] );
      ( "importance",
        [
          Alcotest.test_case "single wire" `Quick test_importance_single_wire;
          Alcotest.test_case "redundant pair" `Quick test_importance_redundant_pair;
          Alcotest.test_case "short event" `Quick test_importance_short_event;
          Alcotest.test_case "rank" `Quick test_importance_rank;
        ] );
      ( "poly",
        [
          Alcotest.test_case "single switch" `Quick test_poly_single_switch;
          Alcotest.test_case "matches exact" `Quick test_poly_matches_exact;
          Alcotest.test_case "delta rescaling" `Quick test_poly_delta_rescaling;
          Alcotest.test_case "size guard" `Quick test_poly_rejects_large;
        ] );
      ( "substitution",
        [
          Alcotest.test_case "counts" `Quick test_substitution_counts;
          Alcotest.test_case "connectivity" `Quick
            test_substitution_preserves_connectivity;
          Alcotest.test_case "logical identity" `Quick test_logical_pattern_identity;
          Alcotest.test_case "logical open" `Quick test_logical_pattern_open;
          Alcotest.test_case "logical short" `Quick test_logical_pattern_short;
          Alcotest.test_case "logical rates" `Quick test_logical_pattern_rates;
        ] );
      ( "trials-engine",
        [
          Alcotest.test_case "estimates identical at every jobs" `Quick
            test_trials_jobs_deterministic;
          Alcotest.test_case "adaptive stopping identical at every jobs" `Quick
            test_trials_adaptive_deterministic;
          Alcotest.test_case "estimate_event identical at every jobs" `Quick
            test_estimate_event_jobs_deterministic;
          Alcotest.test_case "search witness identical at every jobs" `Quick
            test_search_jobs_deterministic;
        ] );
      ( "crn-sweep",
        [
          Alcotest.test_case "1-point grid = single-point engine" `Quick
            test_sweep_one_point_matches_scratch;
          Alcotest.test_case "curve points = independent runs" `Quick
            test_curve_points_match_independent_runs;
          Alcotest.test_case "identical across jobs and tracing" `Quick
            test_sweep_jobs_trace_deterministic;
          Alcotest.test_case "CRN success counts monotone" `Quick
            test_crn_curve_monotone_successes;
          Alcotest.test_case "hammock curve = independent runs" `Quick
            test_hammock_curve_matches_independent;
        ] );
      ( "domain-pool",
        [
          Alcotest.test_case "pool estimates = spawn-per-round" `Quick
            test_pool_vs_spawn_identical;
          Alcotest.test_case "warm pool spawns nothing" `Quick
            test_pool_spawns_counted_once;
        ] );
      ("properties", props);
    ]
