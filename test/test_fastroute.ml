(* Tests for the fast routing layer: the epoch-stamped arena BFS's
   bit-identity with the fill-based search, Staged_route / Loop_route
   agreement with the BFS oracle on every registry family under random
   fault masks, busy-state accept/block agreement over call sequences,
   engine fallback resolution, zero-allocation of the DES call path, and
   fault-free policy-independence of the traffic statistics. *)

module Network = Ftcsn_networks.Network
module Topology = Ftcsn_networks.Topology
module Benes = Ftcsn_networks.Benes
module Crossbar = Ftcsn_networks.Crossbar
module Digraph = Ftcsn_graph.Digraph
module Traverse = Ftcsn_graph.Traverse
module Arena = Ftcsn_graph.Arena
module Greedy = Ftcsn_routing.Greedy
module Staged_route = Ftcsn_routing.Staged_route
module Loop_route = Ftcsn_routing.Loop_route
module Traffic = Ftcsn_des.Traffic
module Rng = Ftcsn_prng.Rng
module Metrics = Ftcsn_obs.Metrics
module Counter = Ftcsn_obs.Counter

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let registry_nets ~n =
  List.filter_map
    (fun name ->
      match
        Topology.build_string ~rng:(Rng.create ~seed:3)
          (Printf.sprintf "%s:%d" name n)
      with
      | Ok b -> Some (name, b.Topology.net)
      | Error _ -> None)
    (Topology.names ())

(* kill roughly [per_mille]/1000 of the edges, seeded *)
let fault_mask ~seed ~per_mille g =
  let m = Digraph.edge_count g in
  let bad = Array.make m false in
  let rng = Rng.create ~seed in
  for _ = 1 to 1 + (m * per_mille / 1000) do
    bad.(Rng.int rng m) <- true
  done;
  fun e -> not bad.(e)

let is_legal_path ~name g ~edge_ok ~src ~dst buf len =
  checkb (name ^ ": starts at src") true (buf.(0) = src);
  checkb (name ^ ": ends at dst") true (buf.(len - 1) = dst);
  for k = 0 to len - 2 do
    let found = ref false in
    Digraph.iter_out g buf.(k) (fun ~dst:v ~eid ->
        if v = buf.(k + 1) && edge_ok eid then found := true);
    checkb
      (Printf.sprintf "%s: hop %d->%d is a live switch" name buf.(k)
         buf.(k + 1))
      true !found
  done

(* ---------- arena BFS is bit-identical to the fill-based search ---------- *)

let test_arena_bit_identity () =
  List.iter
    (fun (name, net) ->
      let g = net.Network.graph in
      let n = Digraph.vertex_count g in
      let arena = Arena.create n in
      let parent = Array.make n (-1) and queue = Array.make n 0 in
      let buf = Array.make n 0 in
      List.iter
        (fun seed ->
          let edge_ok = fault_mask ~seed ~per_mille:30 g in
          let vrng = Rng.create ~seed:(seed + 100) in
          let vbad = Array.make n false in
          for _ = 1 to n / 10 do
            vbad.(Rng.int vrng n) <- true
          done;
          let allowed v = not vbad.(v) in
          Array.iter
            (fun src ->
              Array.iter
                (fun dst ->
                  let reference =
                    Traverse.shortest_path_into ~allowed ~edge_ok g ~src ~dst
                      ~parent ~queue
                  in
                  let len =
                    Traverse.shortest_path_arena_buf ~allowed ~edge_ok g
                      ~arena ~src ~dst ~buf
                  in
                  match reference with
                  | None ->
                      check
                        (Printf.sprintf "%s %d->%d: both blocked" name src dst)
                        (-1) len
                  | Some p ->
                      check
                        (Printf.sprintf "%s %d->%d: same length" name src dst)
                        (List.length p) len;
                      List.iteri
                        (fun k v ->
                          check
                            (Printf.sprintf "%s %d->%d: vertex %d" name src
                               dst k)
                            v buf.(k))
                        p)
                net.Network.outputs)
            net.Network.inputs)
        [ 1; 2 ])
    (registry_nets ~n:8)

(* ---------- staged/loop engines agree with the BFS engine ---------- *)

(* On an idle network the three engines must return the same
   accept/block verdict for every input/output pair, and — because a
   strictly staged graph gives every surviving path the same length —
   accepted paths of identical length, each a legal live path. *)
let engine_agreement ~n ~seeds () =
  List.iter
    (fun (name, net) ->
      let g = net.Network.graph in
      let nv = Digraph.vertex_count g in
      let buf = Array.make nv 0 in
      List.iter
        (fun seed ->
          let edge_ok = fault_mask ~seed ~per_mille:20 g in
          let mk engine = Greedy.create ~edge_ok ~engine net in
          let r_bfs = mk `Bfs and r_st = mk `Staged and r_lp = mk `Loop in
          Array.iter
            (fun src ->
              Array.iter
                (fun dst ->
                  let probe r =
                    let len = Greedy.route_into r ~input:src ~output:dst ~buf in
                    if len >= 0 then begin
                      is_legal_path ~name g ~edge_ok ~src ~dst buf len;
                      Greedy.release_buf r buf ~len
                    end;
                    len
                  in
                  let l0 = probe r_bfs in
                  let l1 = probe r_st in
                  let l2 = probe r_lp in
                  check
                    (Printf.sprintf "%s seed %d %d->%d: staged = bfs" name
                       seed src dst)
                    l0 l1;
                  check
                    (Printf.sprintf "%s seed %d %d->%d: loop = bfs" name seed
                       src dst)
                    l0 l2)
                net.Network.outputs)
            net.Network.inputs)
        seeds)
    (registry_nets ~n)

let test_engine_agreement_n8 () = engine_agreement ~n:8 ~seeds:[ 5; 6; 7 ] ()
let test_engine_agreement_n16 () = engine_agreement ~n:16 ~seeds:[ 8 ] ()

(* ---------- accept/block agreement along busy call sequences ---------- *)

(* Drive one router through an arrival/departure sequence and re-derive
   every verdict with the oracle BFS over the same busy set: the fast
   routers may pick different paths (which then shape the busy set), but
   at each decision point their accept/block answer must equal the plain
   search's on the state they created. *)
let busy_sequence engine () =
  let net = Benes.create 16 in
  let g = net.Network.graph in
  let nv = Digraph.vertex_count g in
  let edge_ok = fault_mask ~seed:21 ~per_mille:15 g in
  let r = Greedy.create ~edge_ok ~engine net in
  let parent = Array.make nv (-1) and queue = Array.make nv 0 in
  let buf = Array.make nv 0 in
  let rng = Rng.create ~seed:22 in
  let live = ref [] in
  let n_in = Network.n_inputs net in
  for step = 1 to 400 do
    let drop = !live <> [] && Rng.int rng 3 = 0 in
    if drop then begin
      match !live with
      | [] -> ()
      | (p, len) :: rest ->
          Greedy.release_buf r p ~len;
          live := rest
    end
    else begin
      let input = net.Network.inputs.(Rng.int rng n_in)
      and output = net.Network.outputs.(Rng.int rng n_in) in
      if not (Greedy.busy r input || Greedy.busy r output) then begin
        let allowed v = not (Greedy.busy r v) in
        let oracle =
          Traverse.shortest_path_into ~allowed ~edge_ok g ~src:input
            ~dst:output ~parent ~queue
        in
        let len = Greedy.route_into r ~input ~output ~buf in
        checkb
          (Printf.sprintf "step %d: %s verdict matches oracle" step
             (Greedy.engine_name r))
          (oracle <> None) (len >= 0);
        if len >= 0 then begin
          (match oracle with
          | Some p ->
              check
                (Printf.sprintf "step %d: same path length" step)
                (List.length p) len
          | None -> ());
          live := (Array.sub buf 0 len, len) :: !live
        end
      end
    end
  done;
  checkb "sequence exercised placements" true (!live <> [])

let test_busy_sequence_staged () = busy_sequence `Staged ()
let test_busy_sequence_loop () = busy_sequence `Loop ()

(* ---------- engine fallback resolution ---------- *)

let test_engine_fallbacks () =
  let benes = Benes.create 16 in
  checks "loop on benes" "loop"
    (Greedy.engine_name (Greedy.create ~engine:`Loop benes));
  checks "staged on benes" "staged"
    (Greedy.engine_name (Greedy.create ~engine:`Staged benes));
  checks "default stays bfs" "bfs" (Greedy.engine_name (Greedy.create benes));
  (* crossbar: strictly staged (all edges input->output) but not a
     Benes, so `Loop degrades to the staged search *)
  let xbar = Crossbar.square 4 in
  checks "loop on crossbar" "staged"
    (Greedy.engine_name (Greedy.create ~engine:`Loop xbar));
  (* a skip-level edge breaks strict stagedness: everything falls back
     to plain BFS *)
  let b = Digraph.Builder.create () in
  let v0 = Digraph.Builder.add_vertex b in
  let v1 = Digraph.Builder.add_vertex b in
  let v2 = Digraph.Builder.add_vertex b in
  ignore (Digraph.Builder.add_edge b ~src:v0 ~dst:v1);
  ignore (Digraph.Builder.add_edge b ~src:v1 ~dst:v2);
  ignore (Digraph.Builder.add_edge b ~src:v0 ~dst:v2);
  let skip =
    Network.make ~name:"skip" ~graph:(Digraph.Builder.freeze b)
      ~inputs:[| v0 |] ~outputs:[| v2 |]
  in
  checkb "skip net is not strictly staged" true
    (Staged_route.create skip = None);
  checkb "skip net is not a benes" true (Loop_route.create skip = None);
  checks "staged on skip net" "bfs"
    (Greedy.engine_name (Greedy.create ~engine:`Staged skip));
  checks "loop on skip net" "bfs"
    (Greedy.engine_name (Greedy.create ~engine:`Loop skip));
  (* the BFS fallback on the skip net still routes (via the short edge
     or the long way when masked) *)
  let r = Greedy.create ~engine:`Loop skip in
  let buf = Array.make 3 0 in
  check "skip net routes" 2 (Greedy.route_into r ~input:v0 ~output:v2 ~buf)

(* ---------- the DES call path allocates zero minor words ---------- *)

let c_search = Metrics.counter Metrics.default "greedy.search"

let alloc_free engine () =
  let net = Benes.create 64 in
  let g = net.Network.graph in
  let nv = Digraph.vertex_count g in
  let edge_ok = fault_mask ~seed:31 ~per_mille:10 g in
  let r = Greedy.create ~edge_ok ~engine net in
  let buf = Array.make nv 0 in
  let n_in = Network.n_inputs net in
  let rng = Rng.create ~seed:32 in
  let srcs = Array.init 64 (fun _ -> net.Network.inputs.(Rng.int rng n_in)) in
  let dsts = Array.init 64 (fun _ -> net.Network.outputs.(Rng.int rng n_in)) in
  (* one warm-up pass so lazy one-time costs don't bill the measured loop *)
  for k = 0 to 63 do
    let len = Greedy.route_into r ~input:srcs.(k) ~output:dsts.(k) ~buf in
    if len >= 0 then Greedy.release_buf r buf ~len
  done;
  let s0 = Counter.get c_search in
  let w0 = Gc.minor_words () in
  for k = 0 to 63 do
    let len = Greedy.route_into r ~input:srcs.(k) ~output:dsts.(k) ~buf in
    if len >= 0 then Greedy.release_buf r buf ~len
  done;
  let w1 = Gc.minor_words () in
  let searches = Counter.get c_search - s0 in
  check "the searches actually ran" 64 searches;
  Alcotest.(check (float 0.0))
    (Printf.sprintf "minor words allocated by 64 %s routes"
       (Greedy.engine_name r))
    0.0 (w1 -. w0)

let test_alloc_free_bfs () = alloc_free `Bfs ()
let test_alloc_free_staged () = alloc_free `Staged ()
let test_alloc_free_loop () = alloc_free `Loop ()

(* ---------- fault-free traffic statistics are policy-independent ---------- *)

(* Without failures no call is ever severed, so path choice cannot feed
   back into the event stream: accept/block is pure reachability and the
   RNG draw sequence is identical under every deterministic policy.  The
   whole stats record must therefore be bit-identical. *)
let test_fault_free_policy_identity () =
  let net = Benes.create 16 in
  let run policy =
    let config =
      Traffic.config ~load:6.0 ~policy
        ~stop:(Traffic.Calls { warmup = 100; measured = 1500 })
        ()
    in
    Traffic.run ~rng:(Rng.create ~seed:97) ~config net
  in
  let s_greedy = run Traffic.Route_greedy in
  let s_staged = run Traffic.Route_staged in
  let s_loop = run Traffic.Route_loop in
  checkb "served > 0" true (s_greedy.Traffic.served > 0);
  checkb "staged stats = greedy stats" true (s_staged = s_greedy);
  checkb "loop stats = greedy stats" true (s_loop = s_greedy)

(* ---------- router_name resolver ---------- *)

let test_router_name () =
  let benes = Benes.create 16 in
  let cfg policy = Traffic.config ~policy () in
  checks "loop policy on benes" "loop"
    (Traffic.router_name (cfg Traffic.Route_loop) benes);
  checks "staged policy on benes" "staged"
    (Traffic.router_name (cfg Traffic.Route_staged) benes);
  checks "greedy policy" "bfs"
    (Traffic.router_name (cfg Traffic.Route_greedy) benes);
  let xbar = Crossbar.square 4 in
  checks "loop policy on crossbar degrades" "staged"
    (Traffic.router_name (cfg Traffic.Route_loop) xbar)

(* ---------- qcheck: random masks keep the engines agreeing ---------- *)

let qcheck_mask_agreement =
  QCheck2.Test.make ~count:30
    ~name:"staged/loop verdicts match bfs under random masks"
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 60))
    (fun (seed, per_mille) ->
      let net = Benes.create 8 in
      let g = net.Network.graph in
      let nv = Digraph.vertex_count g in
      let buf = Array.make nv 0 in
      let edge_ok = fault_mask ~seed ~per_mille g in
      let mk engine = Greedy.create ~edge_ok ~engine net in
      let r_bfs = mk `Bfs and r_st = mk `Staged and r_lp = mk `Loop in
      let ok = ref true in
      Array.iter
        (fun src ->
          Array.iter
            (fun dst ->
              let probe r =
                let len = Greedy.route_into r ~input:src ~output:dst ~buf in
                if len >= 0 then Greedy.release_buf r buf ~len;
                len
              in
              let l0 = probe r_bfs and l1 = probe r_st and l2 = probe r_lp in
              if l0 <> l1 || l0 <> l2 then ok := false)
            net.Network.outputs)
        net.Network.inputs;
      !ok)

let () =
  Alcotest.run "ftcsn_fastroute"
    [
      ( "arena",
        [
          Alcotest.test_case "bit-identical to fill-based BFS" `Quick
            test_arena_bit_identity;
        ] );
      ( "engines",
        [
          Alcotest.test_case "agree on all registry families (n=8)" `Quick
            test_engine_agreement_n8;
          Alcotest.test_case "agree on all registry families (n=16)" `Quick
            test_engine_agreement_n16;
          Alcotest.test_case "staged agrees along busy sequences" `Quick
            test_busy_sequence_staged;
          Alcotest.test_case "loop agrees along busy sequences" `Quick
            test_busy_sequence_loop;
          Alcotest.test_case "fallback resolution" `Quick test_engine_fallbacks;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "bfs call path is allocation-free" `Quick
            test_alloc_free_bfs;
          Alcotest.test_case "staged call path is allocation-free" `Quick
            test_alloc_free_staged;
          Alcotest.test_case "loop call path is allocation-free" `Quick
            test_alloc_free_loop;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "fault-free stats are policy-independent" `Quick
            test_fault_free_policy_identity;
          Alcotest.test_case "router_name resolves fallbacks" `Quick
            test_router_name;
        ] );
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest [ qcheck_mask_agreement ] );
    ]
