(* Tests for the observability layer (Ftcsn_obs): JSON printing/parsing,
   histogram bucketing invariants, atomic counters under domains, trace
   event serialization (round-trip of every event kind), sinks, the
   metrics registry — and the headline guarantee that tracing never
   perturbs Monte-Carlo results. *)

module Json = Ftcsn_obs.Json
module Clock = Ftcsn_obs.Clock
module Counter = Ftcsn_obs.Counter
module Histogram = Ftcsn_obs.Histogram
module Timer = Ftcsn_obs.Timer
module Trace = Ftcsn_obs.Trace
module Metrics = Ftcsn_obs.Metrics
module Rng = Ftcsn_prng.Rng

(* ---------- Json ---------- *)

let sample_value =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("n", Json.Int (-42));
      ("big", Json.Int max_int);
      ("x", Json.Float 0.1);
      ("pi", Json.Float (4.0 *. atan 1.0));
      ("s", Json.String "line\nfeed \"quoted\" back\\slash\ttab");
      ("utf8", Json.String "ε-δ réseau");
      ("list", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "three" ]);
      ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
    ]

let test_json_roundtrip () =
  let s = Json.to_string sample_value in
  match Json.parse s with
  | Error e -> Alcotest.failf "parse of printed value failed: %s\ninput: %s" e s
  | Ok v ->
      Alcotest.(check bool) "round-trip equality" true (v = sample_value)

let test_json_float_repr () =
  List.iter
    (fun f ->
      let s = Json.to_string (Json.Float f) in
      match Json.parse s with
      | Ok (Json.Float f') ->
          Alcotest.(check bool)
            (Printf.sprintf "float %h round-trips via %s" f s)
            true
            (Int64.bits_of_float f = Int64.bits_of_float f')
      | Ok (Json.Int n) ->
          Alcotest.(check (float 0.0)) "integral float" f (float_of_int n)
      | Ok _ -> Alcotest.fail "float printed as non-number"
      | Error e -> Alcotest.failf "float repr unparseable: %s" e)
    [ 0.0; 1.0; -1.5; 0.1; 1e-300; 1.7976931348623157e308; 3.0000000000000004 ];
  (* JSON cannot represent non-finite floats; we document them as null *)
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string)
    "inf is null" "null"
    (Json.to_string (Json.Float infinity))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "{'a':1}" ]

let test_json_accessors () =
  let v = Json.Obj [ ("a", Json.Int 3); ("b", Json.Float 3.0) ] in
  Alcotest.(check (option int)) "member a" (Some 3)
    (Option.bind (Json.member "a" v) Json.to_int);
  Alcotest.(check (option int))
    "integral float as int" (Some 3)
    (Option.bind (Json.member "b" v) Json.to_int);
  Alcotest.(check bool) "missing member" true (Json.member "c" v = None);
  Alcotest.(check (option (float 0.0))) "int as float" (Some 3.0)
    (Option.bind (Json.member "a" v) Json.to_float)

(* ---------- Histogram ---------- *)

let test_histogram_buckets () =
  let check_value v =
    let lo, hi = Histogram.bucket_bounds (Histogram.bucket_index v) in
    if not (lo <= v && v <= hi) then
      Alcotest.failf "bounds [%d, %d] do not bracket %d" lo hi v;
    (* relative bucket width is at most 1/16 of the lower bound *)
    if v >= 16 && hi - lo + 1 > max 1 (lo / 16) then
      Alcotest.failf "bucket [%d, %d] wider than lower/16" lo hi
  in
  for v = 0 to 2000 do check_value v done;
  List.iter check_value
    [ 4095; 4096; 4097; 65535; 65536; 1_000_000; 123_456_789; max_int / 2 ]

let test_histogram_stats () =
  let h = Histogram.create () in
  for v = 1 to 1000 do Histogram.record h v done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  Alcotest.(check int) "sum" 500500 (Histogram.sum h);
  Alcotest.(check int) "min" 1 (Histogram.min_value h);
  Alcotest.(check int) "max" 1000 (Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 500.5 (Histogram.mean h);
  let p50 = Histogram.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "p50 = %d within bucket error of 500" p50)
    true
    (p50 >= 500 && p50 <= 500 + (500 / 16) + 1);
  Alcotest.(check int) "q=1 clamps to max" 1000 (Histogram.quantile h 1.0)

let test_histogram_merge () =
  let rng = Rng.create ~seed:7 in
  let all = Histogram.create () in
  let parts = Array.init 4 (fun _ -> Histogram.create ()) in
  for i = 0 to 9999 do
    let v = Rng.int rng 1_000_000 in
    Histogram.record all v;
    Histogram.record parts.(i mod 4) v
  done;
  let merged = Histogram.create () in
  Array.iter (fun p -> Histogram.merge ~into:merged p) parts;
  Alcotest.(check int) "count" (Histogram.count all) (Histogram.count merged);
  Alcotest.(check int) "sum" (Histogram.sum all) (Histogram.sum merged);
  Alcotest.(check int) "min" (Histogram.min_value all) (Histogram.min_value merged);
  Alcotest.(check int) "max" (Histogram.max_value all) (Histogram.max_value merged);
  List.iter
    (fun q ->
      Alcotest.(check int)
        (Printf.sprintf "q%.2f" q)
        (Histogram.quantile all q) (Histogram.quantile merged q))
    [ 0.1; 0.5; 0.9; 0.99 ]

(* ---------- Counter / Clock / Timer ---------- *)

let test_counter_domains () =
  let c = Counter.create "test.parallel" in
  let per_domain = 10_000 in
  let workers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do Counter.incr c done))
  in
  List.iter Domain.join workers;
  Alcotest.(check int) "no lost increments" (4 * per_domain) (Counter.get c);
  Counter.add c 5;
  Alcotest.(check int) "add" ((4 * per_domain) + 5) (Counter.get c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.get c)

let test_clock_monotone () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 1000 do
    let t = Clock.now_ns () in
    if t < !prev then Alcotest.failf "clock went backwards: %d < %d" t !prev;
    prev := t
  done;
  let sw = Timer.start () in
  Alcotest.(check bool) "elapsed non-negative" true (Timer.elapsed_ns sw >= 0)

let test_timer_accumulates () =
  let t = Timer.create () in
  let v = Timer.time t (fun () -> 41 + 1) in
  Alcotest.(check int) "returns value" 42 v;
  (try Timer.time t (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "failing section still recorded" 2 (Timer.count t);
  Alcotest.(check bool) "total >= max" true
    (Timer.total_ns t >= Timer.max_ns t)

(* ---------- Trace events ---------- *)

let all_event_kinds =
  [
    Trace.Span_begin { span = 1; name = "build-network" };
    Trace.Span_end { span = 1; name = "build-network"; elapsed_ns = 12345 };
    Trace.Run_begin
      {
        run = 2; label = "hammock.open_failure_prob"; cap = 60_000;
        chunk = 256; jobs = 4; target_ci = Some 0.005; min_trials = 1000;
      };
    Trace.Run_begin
      {
        run = 3; label = "trials.search"; cap = 10; chunk = 1; jobs = 1;
        target_ci = None; min_trials = 1000;
      };
    Trace.Chunk
      {
        run = 2; lo = 0; hi = 256; domain = 7; elapsed_ns = 987654;
        successes = Some 31;
      };
    Trace.Chunk
      { run = 3; lo = 256; hi = 512; domain = 0; elapsed_ns = 0; successes = None };
    Trace.Stop_check
      {
        run = 2; trials = 1024; successes = 130; half_width = 0.0123456789;
        target = 0.005; stop = false;
      };
    Trace.Stop_check
      {
        run = 2; trials = 4096; successes = 500; half_width = 0.004; target = 0.005;
        stop = true;
      };
    Trace.Run_end { run = 2; executed = 4096; successes = Some 500; elapsed_ns = 5_000_000 };
    Trace.Run_end { run = 3; executed = 10; successes = None; elapsed_ns = 42 };
  ]

let test_trace_roundtrip () =
  List.iteri
    (fun i ev ->
      let ts = 1_000_000 + i in
      let line = Trace.event_to_string ~ts_ns:ts ev in
      (* every line must itself be a complete JSON object *)
      (match Json.parse line with
      | Ok (Json.Obj _) -> ()
      | Ok _ -> Alcotest.failf "event %d: line is not an object: %s" i line
      | Error e -> Alcotest.failf "event %d: invalid JSON (%s): %s" i e line);
      match Trace.event_of_string line with
      | Error e -> Alcotest.failf "event %d: decode failed (%s): %s" i e line
      | Ok (ts', ev') ->
          Alcotest.(check int) (Printf.sprintf "event %d ts" i) ts ts';
          Alcotest.(check bool)
            (Printf.sprintf "event %d round-trips: %s" i line)
            true (ev = ev'))
    all_event_kinds

let test_trace_decode_errors () =
  List.iter
    (fun s ->
      match Trace.event_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected decode error for %S" s)
    [
      "";
      "{}";
      "{\"ts_ns\":1}";
      "{\"ts_ns\":1,\"ev\":\"nosuch\"}";
      "{\"ts_ns\":1,\"ev\":\"chunk\",\"run\":2}";
      "[1,2,3]";
    ]

let test_memory_sink () =
  let sink, events = Trace.memory () in
  let v = Trace.span (Some sink) "outer" (fun () -> 17) in
  Alcotest.(check int) "span returns value" 17 v;
  Trace.emit sink (Trace.Run_end { run = 9; executed = 1; successes = None; elapsed_ns = 1 });
  (try
     Trace.span (Some sink) "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  Trace.close sink;
  match events () with
  | [
      (t1, Trace.Span_begin { span = s1; name = "outer" });
      (t2, Trace.Span_end { span = s2; name = "outer"; _ });
      (t3, Trace.Run_end _);
      (t4, Trace.Span_begin { name = "failing"; _ });
      (t5, Trace.Span_end { name = "failing"; _ });
    ] ->
      Alcotest.(check int) "span ids pair up" s1 s2;
      Alcotest.(check bool) "timestamps non-decreasing" true
        (t1 <= t2 && t2 <= t3 && t3 <= t4 && t4 <= t5)
  | evs -> Alcotest.failf "unexpected event stream (%d events)" (List.length evs)

let test_span_none_is_identity () =
  Alcotest.(check int) "no sink" 5 (Trace.span None "phase" (fun () -> 5))

let test_channel_sink_jsonl () =
  let path = Filename.temp_file "ftcsn_obs" ".jsonl" in
  let oc = open_out path in
  let sink = Trace.to_channel oc in
  Trace.span (Some sink) "p1" (fun () ->
      Trace.emit sink
        (Trace.Chunk
           { run = 1; lo = 0; hi = 8; domain = 0; elapsed_ns = 5; successes = Some 2 }));
  Trace.close sink;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do lines := input_line ic :: !lines done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  List.iter
    (fun line ->
      match Trace.event_of_string line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "unparseable trace line (%s): %s" e line)
    lines

(* ---------- Metrics registry ---------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c1 = Metrics.counter m "ops" in
  let c2 = Metrics.counter m "ops" in
  Counter.add c1 3;
  Counter.add c2 4;
  Alcotest.(check int) "find-or-create shares the cell" 7 (Counter.get c1);
  ignore (Timer.time (Metrics.timer m "phase.x") (fun () -> ()));
  Metrics.set_gauge m "estimate.mean" 0.25;
  Metrics.set_gauge m "estimate.mean" 0.5;
  let j = Metrics.to_json m in
  let get path =
    List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path
  in
  Alcotest.(check (option int)) "counter in report" (Some 7)
    (Option.bind (get [ "counters"; "ops" ]) Json.to_int);
  Alcotest.(check (option (float 0.0))) "gauge overwritten" (Some 0.5)
    (Option.bind (get [ "gauges"; "estimate.mean" ]) Json.to_float);
  Alcotest.(check bool) "timer count serialized" true
    (Option.bind (get [ "timers"; "phase.x"; "count" ]) Json.to_int = Some 1);
  let path = Filename.temp_file "ftcsn_obs" ".json" in
  Metrics.write_file m path;
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (match Json.parse s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "written metrics file unparseable: %s" e);
  match Metrics.write_file m "/nonexistent-dir/x.json" with
  | () -> Alcotest.fail "expected Sys_error for unwritable path"
  | exception Sys_error _ -> ()

(* ---------- Determinism: tracing must not perturb estimates ---------- *)

let estimate_fields (e : Ftcsn_sim.Trials.estimate) =
  ( e.Ftcsn_sim.Trials.mean, e.Ftcsn_sim.Trials.ci_low,
    e.Ftcsn_sim.Trials.ci_high, e.Ftcsn_sim.Trials.trials,
    e.Ftcsn_sim.Trials.successes )

let hammock_estimate ?target_ci ~jobs ~traced () =
  let h = Ftcsn_reliability.Hammock.make ~rows:6 ~width:6 in
  let rng = Rng.create ~seed:11 in
  if traced then begin
    let sink, events = Trace.memory () in
    let est =
      Ftcsn_reliability.Hammock.open_failure_prob ~jobs ?target_ci
        ~trace:sink ~trials:3_000 ~rng ~eps:0.08 h
    in
    Trace.close sink;
    (estimate_fields est, List.length (events ()))
  end
  else
    let est =
      Ftcsn_reliability.Hammock.open_failure_prob ~jobs ?target_ci
        ~trials:3_000 ~rng ~eps:0.08 h
    in
    (estimate_fields est, 0)

let check_identical name a b =
  let (m1, l1, h1, t1, s1) = a and (m2, l2, h2, t2, s2) = b in
  if
    Int64.bits_of_float m1 <> Int64.bits_of_float m2
    || Int64.bits_of_float l1 <> Int64.bits_of_float l2
    || Int64.bits_of_float h1 <> Int64.bits_of_float h2
    || t1 <> t2 || s1 <> s2
  then
    Alcotest.failf "%s: estimates differ: (%h,%h,%h,%d,%d) vs (%h,%h,%h,%d,%d)"
      name m1 l1 h1 t1 s1 m2 l2 h2 t2 s2

let test_trace_does_not_perturb () =
  let baseline, _ = hammock_estimate ~jobs:1 ~traced:false () in
  List.iter
    (fun jobs ->
      let plain, _ = hammock_estimate ~jobs ~traced:false () in
      let traced, n_events = hammock_estimate ~jobs ~traced:true () in
      check_identical
        (Printf.sprintf "jobs=%d traced vs plain" jobs)
        plain traced;
      check_identical (Printf.sprintf "jobs=%d vs jobs=1" jobs) baseline plain;
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d trace captured events" jobs)
        true (n_events > 0))
    [ 1; 4 ]

let test_trace_does_not_perturb_adaptive () =
  (* adaptive stopping consults the trace-visible Wilson half-width; the
     decision sequence must be identical with tracing on or off *)
  let plain, _ = hammock_estimate ~target_ci:0.02 ~jobs:4 ~traced:false () in
  let traced, _ = hammock_estimate ~target_ci:0.02 ~jobs:4 ~traced:true () in
  check_identical "adaptive traced vs plain" plain traced

let () =
  Alcotest.run "ftcsn_obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float repr" `Quick test_json_float_repr;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bucket invariants" `Quick test_histogram_buckets;
          Alcotest.test_case "stats" `Quick test_histogram_stats;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "counters-clock-timer",
        [
          Alcotest.test_case "counter under domains" `Quick test_counter_domains;
          Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
          Alcotest.test_case "timer accumulates" `Quick test_timer_accumulates;
        ] );
      ( "trace",
        [
          Alcotest.test_case "event roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_trace_decode_errors;
          Alcotest.test_case "memory sink" `Quick test_memory_sink;
          Alcotest.test_case "span without sink" `Quick test_span_none_is_identity;
          Alcotest.test_case "channel sink JSONL" `Quick test_channel_sink_jsonl;
        ] );
      ( "metrics",
        [ Alcotest.test_case "registry" `Quick test_metrics_registry ] );
      ( "determinism",
        [
          Alcotest.test_case "trace on/off, jobs 1 and 4" `Slow
            test_trace_does_not_perturb;
          Alcotest.test_case "adaptive stopping traced" `Slow
            test_trace_does_not_perturb_adaptive;
        ] );
    ]
