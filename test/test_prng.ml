(* Tests for the deterministic PRNG layer. *)

module Rng = Ftcsn_prng.Rng
module Splitmix64 = Ftcsn_prng.Splitmix64
module Perm = Ftcsn_util.Perm

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

let test_splitmix_deterministic () =
  let g = Splitmix64.create 1234567L in
  let a = Splitmix64.next g in
  let b = Splitmix64.next g in
  checkb "distinct" true (a <> b);
  let g2 = Splitmix64.create 1234567L in
  Alcotest.(check int64) "deterministic a" a (Splitmix64.next g2);
  Alcotest.(check int64) "deterministic b" b (Splitmix64.next g2)

let test_splitmix_copy () =
  let g = Splitmix64.create 99L in
  let h = Splitmix64.copy g in
  Alcotest.(check int64) "same stream" (Splitmix64.next g) (Splitmix64.next h)

let test_split_independence () =
  let g = Rng.create ~seed:5 in
  let a = Rng.split g in
  let b = Rng.split g in
  let xs = List.init 10 (fun _ -> Rng.int64 a) in
  let ys = List.init 10 (fun _ -> Rng.int64 b) in
  checkb "substreams differ" true (xs <> ys)

(* substream i must be bit-equal to the (i+1)-th consecutive split, so the
   Trials engine can hand trial i its historical stream in O(1) *)
let test_substream_matches_split () =
  let root = Rng.create ~seed:7 in
  for i = 0 to 19 do
    let by_split =
      let g = Rng.copy root in
      let s = ref (Rng.split g) in
      for _ = 1 to i do
        s := Rng.split g
      done;
      !s
    in
    let by_index = Rng.substream root i in
    for k = 0 to 4 do
      Alcotest.(check int64)
        (Printf.sprintf "substream %d draw %d" i k)
        (Rng.int64 by_split) (Rng.int64 by_index)
    done
  done

let test_advance_matches_splits () =
  let a = Rng.create ~seed:11 in
  let b = Rng.create ~seed:11 in
  for _ = 1 to 13 do
    ignore (Rng.split a)
  done;
  Rng.advance b 13;
  Alcotest.(check int64) "same stream after advance" (Rng.int64 a) (Rng.int64 b)

let test_int_bounds () =
  let g = Rng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int g 0))

let test_int_uniformity () =
  let g = Rng.create ~seed:17 in
  let counts = Array.make 5 0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    let v = Rng.int g 5 in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int trials /. 5.0 in
  Array.iter
    (fun c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      if dev > 0.05 then Alcotest.failf "bucket deviation %.3f too large" dev)
    counts

let test_float_range () =
  let g = Rng.create ~seed:23 in
  for _ = 1 to 10_000 do
    let x = Rng.float g in
    if x < 0.0 || x >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_float_mean () =
  let g = Rng.create ~seed:29 in
  let s = ref 0.0 in
  let trials = 100_000 in
  for _ = 1 to trials do
    s := !s +. Rng.float g
  done;
  let mean = !s /. float_of_int trials in
  checkb "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.01)

let test_bernoulli_extremes () =
  let g = Rng.create ~seed:31 in
  checkb "p=0" false (Rng.bernoulli g 0.0);
  checkb "p=1" true (Rng.bernoulli g 1.0);
  let hits = ref 0 in
  for _ = 1 to 20_000 do
    if Rng.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 20_000.0 in
  checkb "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_binomial_moments () =
  let g = Rng.create ~seed:37 in
  (* small-p path exercises the waiting-time sampler *)
  let s = ref 0 in
  let trials = 5000 in
  for _ = 1 to trials do
    s := !s + Rng.binomial g ~n:1000 ~p:0.01
  done;
  let mean = float_of_int !s /. float_of_int trials in
  checkb "waiting-time mean near np" true (Float.abs (mean -. 10.0) < 0.5);
  let s2 = ref 0 in
  for _ = 1 to trials do
    s2 := !s2 + Rng.binomial g ~n:20 ~p:0.5
  done;
  let mean2 = float_of_int !s2 /. float_of_int trials in
  checkb "direct mean near np" true (Float.abs (mean2 -. 10.0) < 0.3)

let test_binomial_edges () =
  let g = Rng.create ~seed:41 in
  check "p=0" 0 (Rng.binomial g ~n:50 ~p:0.0);
  check "p=1" 50 (Rng.binomial g ~n:50 ~p:1.0);
  check "n=0" 0 (Rng.binomial g ~n:0 ~p:0.5)

let test_permutation_uniform_smell () =
  let g = Rng.create ~seed:43 in
  let tbl = Hashtbl.create 6 in
  let trials = 30_000 in
  for _ = 1 to trials do
    let p = Rng.permutation g 3 in
    let key = Array.to_list p in
    Hashtbl.replace tbl key
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  done;
  check "all 6 permutations seen" 6 (Hashtbl.length tbl);
  Hashtbl.iter
    (fun _ c ->
      let rate = float_of_int c /. float_of_int trials in
      if Float.abs (rate -. (1.0 /. 6.0)) > 0.01 then
        Alcotest.failf "permutation rate %.4f skewed" rate)
    tbl

let test_sample_without_replacement () =
  let g = Rng.create ~seed:47 in
  let s = Rng.sample_without_replacement g ~n:10 ~k:10 in
  Alcotest.(check (list int)) "full sample = 0..9" (List.init 10 Fun.id)
    (Array.to_list s);
  let empty = Rng.sample_without_replacement g ~n:100 ~k:0 in
  check "empty" 0 (Array.length empty)

let test_reproducibility () =
  let run seed =
    let g = Rng.create ~seed in
    List.init 20 (fun _ -> Rng.int g 1000)
  in
  Alcotest.(check (list int)) "same seed same stream" (run 1001) (run 1001);
  checkb "different seeds differ" true (run 1001 <> run 1002)

module Xoshiro256 = Ftcsn_prng.Xoshiro256

let test_xoshiro_deterministic () =
  let a = Xoshiro256.create 42L and b = Xoshiro256.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "streams equal" (Xoshiro256.next a) (Xoshiro256.next b)
  done

let test_xoshiro_of_state_validation () =
  Alcotest.check_raises "arity"
    (Invalid_argument "Xoshiro256.of_state: need 4 words") (fun () ->
      ignore (Xoshiro256.of_state [| 1L |]));
  Alcotest.check_raises "zero state"
    (Invalid_argument "Xoshiro256.of_state: all-zero state") (fun () ->
      ignore (Xoshiro256.of_state [| 0L; 0L; 0L; 0L |]))

let test_xoshiro_reference_vector () =
  (* reference: state (1,2,3,4); first output of xoshiro256** is
     rotl(2*5,7)*9 = rotl(10,7)*9 = 1280*9 = 11520 *)
  let g = Xoshiro256.of_state [| 1L; 2L; 3L; 4L |] in
  Alcotest.(check int64) "first output" 11520L (Xoshiro256.next g)

let test_xoshiro_jump_disjoint () =
  let g = Xoshiro256.create 7L in
  let h = Xoshiro256.jump g in
  let xs = List.init 50 (fun _ -> Xoshiro256.next g) in
  let ys = List.init 50 (fun _ -> Xoshiro256.next h) in
  checkb "jumped stream differs" true (xs <> ys)

let test_xoshiro_uniformity_smell () =
  let g = Xoshiro256.create 99L in
  (* high bit should be set about half the time *)
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Int64.compare (Xoshiro256.next g) 0L < 0 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  checkb "sign bit balanced" true (Float.abs (rate -. 0.5) < 0.02)

let prop_shuffle_preserves_multiset =
  QCheck2.Test.make ~name:"shuffle preserves elements" ~count:200
    QCheck2.Gen.(pair (list int) int)
    (fun (xs, seed) ->
      let g = Rng.create ~seed in
      let a = Array.of_list xs in
      Rng.shuffle_in_place g a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let prop_sample_sorted_distinct =
  QCheck2.Test.make ~name:"sample_without_replacement sorted distinct"
    ~count:200
    QCheck2.Gen.(triple (int_range 1 50) (int_range 0 50) int)
    (fun (n, k, seed) ->
      let k = min k n in
      let g = Rng.create ~seed in
      let s = Rng.sample_without_replacement g ~n ~k in
      let ok = ref (Array.length s = k) in
      Array.iteri
        (fun i x ->
          if x < 0 || x >= n then ok := false;
          if i > 0 && s.(i - 1) >= x then ok := false)
        s;
      !ok)

let prop_permutation_valid =
  QCheck2.Test.make ~name:"Rng.permutation is a permutation" ~count:200
    QCheck2.Gen.(pair (int_range 1 64) int)
    (fun (n, seed) ->
      let g = Rng.create ~seed in
      Perm.is_valid (Rng.permutation g n))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_shuffle_preserves_multiset;
      prop_sample_sorted_distinct;
      prop_permutation_valid;
    ]

let () =
  Alcotest.run "ftcsn_prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "copy" `Quick test_splitmix_copy;
          Alcotest.test_case "split" `Quick test_split_independence;
          Alcotest.test_case "substream = iterated split" `Quick
            test_substream_matches_split;
          Alcotest.test_case "advance = k splits" `Quick
            test_advance_matches_splits;
        ] );
      ( "xoshiro",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "of_state" `Quick test_xoshiro_of_state_validation;
          Alcotest.test_case "reference" `Quick test_xoshiro_reference_vector;
          Alcotest.test_case "jump" `Quick test_xoshiro_jump_disjoint;
          Alcotest.test_case "uniformity" `Quick test_xoshiro_uniformity_smell;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli_extremes;
          Alcotest.test_case "binomial moments" `Quick test_binomial_moments;
          Alcotest.test_case "binomial edges" `Quick test_binomial_edges;
          Alcotest.test_case "permutation uniform" `Quick
            test_permutation_uniform_smell;
          Alcotest.test_case "sampling" `Quick test_sample_without_replacement;
          Alcotest.test_case "reproducibility" `Quick test_reproducibility;
        ] );
      ("properties", props);
    ]
