(* End-to-end tests of the ftnet CLI binary: every subcommand is invoked
   as a subprocess with fixed seeds, and its stdout is checked for the
   expected, deterministic content. *)

(* the test binary lives in _build/default/test; the CLI sits next door in
   _build/default/bin regardless of the invocation directory *)
let exe =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "ftnet.exe"))

let run args =
  let tmp = Filename.temp_file "ftnet" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" exe args tmp in
  let code = Sys.command cmd in
  let ic = open_in tmp in
  let len = in_channel_length ic in
  let out = really_input_string ic len in
  close_in ic;
  Sys.remove tmp;
  (code, out)

(* like run, but keep stdout and stderr apart: several tests assert that
   machine-readable stdout stays clean of human chatter *)
let run_split ?stdin_file args =
  let out = Filename.temp_file "ftnet" ".out" in
  let err = Filename.temp_file "ftnet" ".err" in
  let redirect_in =
    match stdin_file with None -> "" | Some f -> Printf.sprintf " < %s" f
  in
  let cmd = Printf.sprintf "%s %s%s > %s 2> %s" exe args redirect_in out err in
  let code = Sys.command cmd in
  let slurp path =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    s
  in
  (code, slurp out, slurp err)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_contains name out needle =
  if not (contains out needle) then
    Alcotest.failf "%s: expected %S in output:\n%s" name needle out

let test_build () =
  let code, out = run "build --family benes -n 8 --seed 1" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "build" out "benes-8";
  check_contains "build" out "size=80";
  check_contains "build" out "acyclic: true";
  check_contains "build" out "degrees:"

let test_build_ft () =
  let code, out = run "build --family ft -n 8 --seed 1" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "build ft" out "n=8x8";
  check_contains "build ft" out "size=4352"

let test_faults () =
  let code, out = run "faults --family benes -n 16 --eps 0.02 --seed 3" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "faults" out "switches: 224";
  check_contains "faults" out "stripped vertices:";
  check_contains "faults" out "terminals shorted:"

let test_route () =
  let code, out = run "route --family ft -n 4 --eps 0.0 --seed 2" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "route" out "requests: 4, routed: 4, blocked: 0"

let test_route_verbose () =
  let code, out = run "route --family crossbar -n 3 --eps 0.0 -v --seed 2" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "route -v" out "0 ->"

let test_check () =
  let code, out = run "check --family benes -n 4 --seed 1" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "check" out "superconcentrator: yes (exhaustive)";
  check_contains "check" out "rearrangeable: yes (exhaustive)";
  check_contains "check" out "strictly nonblocking: NO"

let test_check_crossbar () =
  let code, out = run "check --family crossbar -n 3 --seed 1" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "check crossbar" out "strictly nonblocking: yes (exhaustive)"

let test_survive () =
  let code, out = run "survive --family butterfly -n 8 --eps 0.01 --trials 40 --seed 5" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "survive" out "P[survives eps=0.01";
  check_contains "survive" out "40 trials"

let test_degrade () =
  let code, out = run "degrade --family ft -n 8 --hazard 1e-5 --ticks 200 --seed 4" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "degrade" out "ticks=200";
  check_contains "degrade" out "placed="

let test_degrade_arrival () =
  let code, out =
    run "degrade --family ft -n 8 --hazard 1e-5 --arrival 0.3 --ticks 150 --seed 4"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "degrade arrival" out "ticks=150";
  check_contains "degrade arrival" out "placed="

let test_traffic () =
  let code, out =
    run
      "traffic --family crossbar -n 4 --load 2 --warmup 100 --calls 500 \
       --trials 2 --seed 3"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "traffic" out "offered load 2 Erlang, holding exp";
  check_contains "traffic" out "blocking:";
  check_contains "traffic" out "95% CI";
  check_contains "traffic" out "occupancy (Little's L):"

let test_traffic_json () =
  let code, out =
    run
      "traffic --family benes -n 8 --load 1 --warmup 50 --calls 300 \
       --trials 2 --seed 3 --json"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "traffic json" out "\"blocking\":";
  check_contains "traffic json" out "\"occupancy\":";
  check_contains "traffic json" out "\"replications\":2"

let test_traffic_effective_n () =
  let code, out =
    run
      "traffic --net benes:10 --load 1 --warmup 50 --calls 200 --trials 1 \
       --seed 3"
  in
  Alcotest.(check int) "exit code" 0 code;
  (* benes rounds the requested 10 terminals up to the next power of two *)
  check_contains "traffic effective n" out "effective n: 16 (requested 10)"

let test_traffic_router_report () =
  (* the table and the JSON must both say which router engaged, and the
     fast-policy runs must agree with the default engine's blocking *)
  let code, out =
    run
      "traffic --net benes:16 --load 1 --warmup 50 --calls 200 --trials 1 \
       --seed 3"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "traffic default router" out "router: bfs";
  let code, out =
    run
      "traffic --net benes:16 --load 1 --warmup 50 --calls 200 --trials 1 \
       --policy loop --seed 3"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "traffic loop router" out "router: loop";
  let code, out =
    run
      "traffic --net benes:16 --load 1 --warmup 50 --calls 200 --trials 1 \
       --policy staged --seed 3 --json"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "traffic staged router json" out "\"router\":\"staged\"";
  (* --policy loop off the Benes family degrades gracefully and says so *)
  let code, out =
    run
      "traffic --net crossbar:4 --load 1 --warmup 50 --calls 200 --trials 1 \
       --policy loop --seed 3"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "traffic loop fallback" out "router: staged"

let test_traffic_sharded () =
  let code, out =
    run
      "traffic --net benes:16 --load 1 --warmup 50 --calls 200 --trials 1 \
       --shards 2 --seed 3"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "traffic sharded" out "shards=2";
  check_contains "traffic sharded" out "blocking:";
  check_contains "traffic sharded" out "effective n: 16"

let test_traffic_json_effective_n () =
  let code, out =
    run
      "traffic --net benes:10 --load 1 --warmup 50 --calls 200 --trials 1 \
       --seed 3 --json"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "traffic json n" out "\"n_requested\":10";
  check_contains "traffic json n" out "\"n_effective\":16";
  check_contains "traffic json n" out "\"shards\":1"

let test_traffic_pareto_rearrange () =
  let code, out =
    run
      "traffic --family benes -n 8 --load 2 --holding pareto:2.5 --policy \
       rearrange:2000 --warmup 50 --calls 300 --trials 2 --seed 5"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "traffic pareto" out "holding pareto:2.5";
  check_contains "traffic pareto" out "blocking:"

let test_critical () =
  let code, out =
    run "critical --family benes -n 4 --eps 0.05 --sample 6 --trials 50 --seed 2"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "critical" out "most critical sampled switches";
  check_contains "critical" out "open +"

let test_render_grid () =
  let code, out = run "render --kind grid -n 4" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "render grid" out "o---o"

let test_render_census () =
  let code, out = run "render --kind census --family benes -n 8" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "render census" out "stage | vertices | out-edges"

let test_render_dot () =
  let code, out = run "render --kind dot --family crossbar -n 2" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "render dot" out "digraph";
  check_contains "render dot" out "v0 -> v2"

let test_unknown_family_fails () =
  let code, out = run "build --family nosuch -n 4" in
  Alcotest.(check int) "exit code" 2 code;
  check_contains "unknown family" out "ftnet: error:";
  check_contains "unknown family" out "unknown network family \"nosuch\""

(* ---------- topology registry: --net specs, topologies, tournament ---------- *)

let test_net_spec_build () =
  let code, out = run "build --net clos:8:rearr --seed 1" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "net spec" out "family: clos";
  (* clos snaps n=8 to its r*k grid and must say so *)
  check_contains "net spec" out "effective n: 9 (requested 8)";
  check_contains "net spec" out
    "warning: family clos snapped n=8 to its natural grid"

let test_net_spec_params () =
  (* spec parameters reach the constructor on every subcommand *)
  let code, out = run "survive --net multibutterfly:8:degree=3 --trials 20 --seed 5" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "net params" out "multibutterfly-8-d3";
  let code, out = run "build --net crossbar:n=3:m=5" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "net crossbar m" out "n=3x5"

let test_net_matches_family_alias () =
  (* --family FAM is an alias for --net FAM: identical network, identical
     estimate *)
  let go flag =
    let code, out = run ("survive " ^ flag ^ " -n 8 --trials 50 --seed 7") in
    Alcotest.(check int) "exit code" 0 code;
    (* drop the throughput line, which varies run to run *)
    String.concat "\n"
      (List.filter
         (fun l -> not (contains l "trials/s"))
         (String.split_on_char '\n' out))
  in
  Alcotest.(check string) "--net equals --family" (go "--family benes")
    (go "--net benes")

let test_net_and_family_conflict () =
  let code, out = run "build --net benes --family ft -n 4" in
  Alcotest.(check int) "exit code" 2 code;
  check_contains "conflict" out "ftnet: error:";
  check_contains "conflict" out "--net and --family cannot both be given"

let test_net_unknown_param () =
  let code, out = run "build --net benes:wings=3 -n 4" in
  Alcotest.(check int) "exit code" 2 code;
  check_contains "unknown param" out "ftnet: error:";
  check_contains "unknown param" out "unknown parameter \"wings\" for family benes"

let test_net_pow2_refused () =
  let code, out = run "build --net omega:12" in
  Alcotest.(check int) "exit code" 2 code;
  check_contains "pow2" out "ftnet: error:";
  check_contains "pow2" out
    "family omega requires n to be a power of two >= 2 (got 12; nearest is 16)"

let test_topologies () =
  let code, out = run "topologies" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "topologies" out "registered network families";
  List.iter
    (fun f -> check_contains "topologies lists" out f)
    [ "banyan"; "benes"; "butterfly-pair"; "delta"; "ft"; "omega" ];
  check_contains "topologies aliases" out "aliases: bradley";
  check_contains "topologies params" out "degree=INT"

let test_topologies_names () =
  let code, out = run "topologies --names" in
  Alcotest.(check int) "exit code" 0 code;
  let names =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' out)
  in
  Alcotest.(check bool) "at least 12 families" true (List.length names >= 12);
  (* bare canonical names only, fit for shell loops *)
  List.iter
    (fun l ->
      if String.contains l ' ' then
        Alcotest.failf "topologies --names line has spaces: %S" l)
    names;
  Alcotest.(check bool) "sorted" true (names = List.sort compare names)

let test_tournament () =
  let code, out =
    run
      "tournament -n 4 --trials 20 --traffic-trials 1 --calls 100 --warmup 20 \
       --seed 2"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "tournament" out
    "tournament: fault tolerance vs edges per terminal";
  check_contains "tournament" out "edges/term";
  check_contains "tournament" out "surv@0.05";
  (* every registered family shows up as a row *)
  List.iter
    (fun f -> check_contains "tournament row" out ("| " ^ f))
    [ "banyan"; "benes"; "butterfly-pair"; "cantor"; "delta"; "ft"; "omega" ];
  check_contains "tournament" out "Pareto-optimal"

let test_tournament_json () =
  let code, out =
    run
      "tournament -n 4 --trials 10 --traffic-trials 1 --calls 60 --warmup 20 \
       --seed 2 --json"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "tournament json" out "\"entries\":";
  check_contains "tournament json" out "\"family\":\"benes\"";
  check_contains "tournament json" out "\"edges_per_terminal\":";
  check_contains "tournament json" out "\"pareto\":";
  check_contains "tournament json" out "\"survival\":[{\"eps\":0.001,"

(* ---------- observability flags ---------- *)

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let read_lines path =
  String.split_on_char '\n' (read_file path)
  |> List.filter (fun l -> String.trim l <> "")

let with_tmp suffix f =
  let path = Filename.temp_file "ftnet_test" suffix in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_trace_jsonl () =
  with_tmp ".jsonl" @@ fun trace ->
  let code, _ =
    run
      (Printf.sprintf
         "faults --family benes -n 8 --trials 1500 --target-ci 0.5 --seed 3 \
          --trace %s"
         trace)
  in
  Alcotest.(check int) "exit code" 0 code;
  let lines = read_lines trace in
  Alcotest.(check bool) "trace non-empty" true (List.length lines > 0);
  let kinds = Hashtbl.create 8 in
  List.iter
    (fun line ->
      match Ftcsn_obs.Trace.event_of_string line with
      | Error e -> Alcotest.failf "invalid trace line (%s): %s" e line
      | Ok (_, ev) ->
          let kind =
            match ev with
            | Ftcsn_obs.Trace.Span_begin _ -> "span_begin"
            | Ftcsn_obs.Trace.Span_end _ -> "span_end"
            | Ftcsn_obs.Trace.Run_begin _ -> "run_begin"
            | Ftcsn_obs.Trace.Chunk _ -> "chunk"
            | Ftcsn_obs.Trace.Stop_check _ -> "stop_check"
            | Ftcsn_obs.Trace.Run_end _ -> "run_end"
          in
          Hashtbl.replace kinds kind ())
    lines;
  List.iter
    (fun kind ->
      if not (Hashtbl.mem kinds kind) then
        Alcotest.failf "trace is missing a %s event" kind)
    [ "span_begin"; "span_end"; "run_begin"; "chunk"; "stop_check"; "run_end" ]

let test_metrics_report () =
  with_tmp ".json" @@ fun metrics ->
  let code, _ =
    run
      (Printf.sprintf
         "survive --family benes -n 8 --trials 50 --seed 5 --metrics %s" metrics)
  in
  Alcotest.(check int) "exit code" 0 code;
  match Ftcsn_obs.Json.parse (read_file metrics) with
  | Error e -> Alcotest.failf "metrics file is not valid JSON: %s" e
  | Ok j ->
      let member path =
        List.fold_left
          (fun acc k -> Option.bind acc (Ftcsn_obs.Json.member k))
          (Some j) path
      in
      Alcotest.(check bool) "has phase.estimate timer" true
        (member [ "timers"; "phase.estimate" ] <> None);
      Alcotest.(check (option int))
        "trials counter matches the run" (Some 50)
        (Option.bind (member [ "counters"; "trials.executed" ])
           Ftcsn_obs.Json.to_int);
      Alcotest.(check bool) "survivor ops counted" true
        (match
           Option.bind (member [ "counters"; "survivor.apply" ])
             Ftcsn_obs.Json.to_int
         with
        | Some n -> n >= 50
        | None -> false)

(* estimates must be bit-identical with tracing on or off, at every job
   count; the throughput line varies run to run, so compare only the
   estimate line *)
let estimate_line args =
  let code, out = run args in
  Alcotest.(check int) ("exit of " ^ args) 0 code;
  match
    List.find_opt
      (fun l -> String.length l > 1 && l.[0] = 'P' && l.[1] = '[')
      (String.split_on_char '\n' out)
  with
  | Some l -> l
  | None -> Alcotest.failf "no estimate line in output of %s:\n%s" args out

let test_cli_determinism () =
  let base = "survive --family benes -n 8 --trials 200 --seed 7" in
  let reference = estimate_line (base ^ " --jobs 1") in
  with_tmp ".jsonl" @@ fun trace ->
  List.iter
    (fun args ->
      Alcotest.(check string) ("estimate of " ^ args) reference
        (estimate_line args))
    [
      base ^ " --jobs 1 --trace " ^ trace;
      base ^ " --jobs 4";
      base ^ " --jobs 4 --trace " ^ trace;
    ]

(* the blocking line must be bit-identical across --jobs and with tracing *)
let traffic_blocking_line args =
  let code, out = run args in
  Alcotest.(check int) ("exit of " ^ args) 0 code;
  match
    List.find_opt
      (fun l -> String.length l > 9 && String.sub l 0 9 = "blocking:")
      (String.split_on_char '\n' out)
  with
  | Some l -> l
  | None -> Alcotest.failf "no blocking line in output of %s:\n%s" args out

let test_traffic_determinism () =
  let base =
    "traffic --family crossbar -n 4 --load 2 --warmup 100 --calls 400 \
     --trials 4 --seed 7"
  in
  let reference = traffic_blocking_line (base ^ " --jobs 1") in
  with_tmp ".jsonl" @@ fun trace ->
  List.iter
    (fun args ->
      Alcotest.(check string) ("blocking of " ^ args) reference
        (traffic_blocking_line args))
    [
      base ^ " --jobs 1 --trace " ^ trace;
      base ^ " --jobs 4";
      base ^ " --jobs 4 --trace " ^ trace;
    ]

(* ---------- error normalization: message format and exit code 2 ---------- *)

let check_usage_error name args fragment =
  let code, out = run args in
  Alcotest.(check int) (name ^ " exit code") 2 code;
  check_contains name out "ftnet: error:";
  check_contains name out fragment

let test_error_trials_zero () =
  check_usage_error "trials 0" "faults --family benes -n 8 --trials 0"
    "invalid --trials value 0"

let test_error_trials_negative () =
  (* =-3 so cmdliner parses the negative number as the option's value *)
  check_usage_error "trials -3" "survive --family benes -n 8 --trials=-3"
    "invalid --trials value -3"

let test_error_jobs_zero () =
  check_usage_error "jobs 0" "survive --family benes -n 8 --jobs 0"
    "invalid --jobs value 0"

let test_error_target_ci_malformed () =
  check_usage_error "target-ci abc"
    "survive --family benes -n 8 --target-ci abc" "invalid --target-ci value"

let test_error_target_ci_range () =
  check_usage_error "target-ci 1.5"
    "survive --family benes -n 8 --target-ci 1.5" "invalid --target-ci value";
  check_usage_error "target-ci 0"
    "survive --family benes -n 8 --target-ci 0" "invalid --target-ci value"

let test_error_unwritable_metrics () =
  check_usage_error "unwritable metrics"
    "survive --family benes -n 8 --trials 10 --metrics /nonexistent/m.json"
    "cannot open --metrics"

let test_error_unwritable_trace () =
  check_usage_error "unwritable trace"
    "faults --family benes -n 8 --trace /nonexistent/t.jsonl"
    "cannot open --trace"

(* --progress chatter must go to stderr on every subcommand so that
   piped stdout stays machine-readable *)
let test_progress_on_stderr_stdout_clean_json () =
  let code, out, err =
    run_split
      "curve --family benes -n 8 --trials 40 --eps-grid 0.01:0.1:3 --seed 4 \
       --json --progress"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "progress on stderr" err "progress:";
  (match Ftcsn_obs.Json.parse (String.trim out) with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "stdout with --progress is not clean JSON (%s):\n%s" e out);
  (* same invariant for traffic --json *)
  let code, out, err =
    run_split
      "traffic --family benes -n 8 --load 1 --warmup 50 --calls 200 --trials \
       1 --seed 3 --json --progress"
  in
  Alcotest.(check int) "exit code" 0 code;
  ignore err;
  match Ftcsn_obs.Json.parse (String.trim out) with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "traffic --json stdout is not clean JSON (%s):\n%s" e out

(* ---------- serve: live daemon over the DES fabric ---------- *)

let write_request_file ?(metrics = false) ~calls () =
  let path = Filename.temp_file "ftnet_requests" ".jsonl" in
  let oc = open_out path in
  for i = 0 to calls - 1 do
    if i mod 6 = 5 then
      Printf.fprintf oc {|{"req":"hangup","id":"c%d"}|} (i - 2)
    else
      Printf.fprintf oc {|{"req":"call","id":"c%d","at":%d.%02d}|} i (i / 20)
        (5 * (i mod 20));
    output_char oc '\n'
  done;
  if metrics then output_string oc "{\"req\":\"metrics\"}\n";
  close_out oc;
  path

let with_request_file ?metrics ~calls f =
  let path = write_request_file ?metrics ~calls () in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let response_lines out =
  List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' out)

let test_serve_replay_smoke () =
  with_request_file ~metrics:true ~calls:60 @@ fun reqs ->
  let code, out, err =
    run_split
      (Printf.sprintf
         "serve --replay %s --net benes:16 --seed 3 --mtbf 5 --mttr 1" reqs)
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "banner" err "serve: benes-16";
  check_contains "banner says replay" err "replay from";
  check_contains "summary" err "decisions";
  check_contains "accepts" out "\"resp\":\"accept\"";
  check_contains "metrics snapshot" out "\"resp\":\"metrics\"";
  check_contains "snapshot counters" out "\"offered\":";
  (* stdout is exclusively one JSON object per line *)
  List.iter
    (fun l ->
      match Ftcsn_obs.Json.parse l with
      | Ok (Ftcsn_obs.Json.Obj _) -> ()
      | _ -> Alcotest.failf "serve stdout line is not a JSON object: %S" l)
    (response_lines out)

let test_serve_replay_deterministic () =
  (* no metrics request here: the latency histogram in the snapshot is
     wall-clock-dependent; everything else must be byte-identical *)
  with_request_file ~calls:120 @@ fun reqs ->
  let go extra =
    let code, out, _ =
      run_split
        (Printf.sprintf
           "serve --replay %s --net benes:16 --policy loop --seed 5 --mtbf 3 \
            --mttr 0.5 %s"
           reqs extra)
    in
    Alcotest.(check int) ("exit with " ^ extra) 0 code;
    out
  in
  let reference = go "" in
  Alcotest.(check bool) "stream non-empty" true (String.length reference > 0);
  Alcotest.(check string) "identical across runs" reference (go "");
  Alcotest.(check string) "identical at --shards 3" reference (go "--shards 3");
  Alcotest.(check string) "identical at --jobs 4" reference (go "--jobs 4")

let test_serve_calls_bound () =
  with_request_file ~calls:60 @@ fun reqs ->
  let code, out, err =
    run_split
      (Printf.sprintf "serve --replay %s --net benes:16 --seed 3 --calls 10"
         reqs)
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "stop reason" err "[stopped: --calls bound]";
  let decisions =
    List.length
      (List.filter
         (fun l ->
           contains l "\"resp\":\"accept\""
           || contains l "\"resp\":\"block\""
           || contains l "\"resp\":\"overload\"")
         (response_lines out))
  in
  Alcotest.(check int) "exactly --calls decisions" 10 decisions

let test_serve_stdin_live () =
  (* live mode on stdin: EOF after the scripted requests ends the run *)
  with_request_file ~metrics:true ~calls:12 @@ fun reqs ->
  let code, out, err =
    run_split ~stdin_file:reqs "serve --net benes:16 --seed 3 --speed 1e6"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "banner says stdin" err "live on stdin";
  check_contains "accepts" out "\"resp\":\"accept\"";
  check_contains "metrics snapshot" out "\"resp\":\"metrics\""

let test_serve_overload () =
  (* tiny --max-load plus never-expiring holds forces admission sheds *)
  let path = Filename.temp_file "ftnet_requests" ".jsonl" in
  let oc = open_out path in
  for i = 0 to 19 do
    Printf.fprintf oc
      {|{"req":"call","id":"c%d","hold":1e9,"at":%d.0}|} i i;
    output_char oc '\n'
  done;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let code, out, err =
    run_split
      (Printf.sprintf
         "serve --replay %s --net benes:16 --seed 3 --max-load 0.05" path)
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "admission in banner" err "max-load<0.05";
  check_contains "overload replies" out "\"resp\":\"overload\""

let test_serve_errors () =
  check_usage_error "serve rearrange"
    "serve --net benes:16 --replay /dev/null --policy rearrange"
    "serve routes one request at a time";
  check_usage_error "serve max-load 0"
    "serve --net benes:16 --replay /dev/null --max-load 0"
    "invalid --max-load value";
  check_usage_error "serve mttr 0"
    "serve --net benes:16 --replay /dev/null --mttr 0" "invalid --mttr value";
  check_usage_error "serve replay+socket"
    "serve --net benes:16 --replay /dev/null --socket /tmp/x.sock"
    "--replay and --socket cannot both be given";
  check_usage_error "serve missing replay file"
    "serve --net benes:16 --replay /nonexistent/reqs.jsonl"
    "cannot open --replay file";
  check_usage_error "serve shards too many"
    "serve --net benes:16 --replay /dev/null --shards 99" "shardable regions"

(* ---------- ε-grid curves ---------- *)

let test_curve () =
  let code, out = run "curve --family benes -n 8 --seed 4 --trials 60" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "curve" out "survival curve (superconcentrator probes";
  check_contains "curve" out "60 coupled trials";
  check_contains "curve" out "eps          mean     ci_low     ci_high";
  (* default grid is 0.001..0.1 log-spaced, 8 points *)
  check_contains "curve" out "0.001 ";
  check_contains "curve" out "0.1 ";
  check_contains "curve" out "/60"

let test_curve_json () =
  let code, out =
    run "curve --family benes -n 8 --seed 4 --trials 40 --eps-grid \
         0.01:0.1:3 --json"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "curve json" out "\"probe\":\"sc_probe_only\"";
  check_contains "curve json" out "\"curve\":[{\"eps\":0.01,";
  check_contains "curve json" out "\"trials\":40"

let test_curve_jobs_deterministic () =
  (* compare only the per-point estimate rows: the header names the jobs
     count and a warning may mention the core count *)
  let go jobs =
    let code, out =
      run
        (Printf.sprintf
           "curve --family benes -n 8 --seed 4 --trials 80 --jobs %d" jobs)
    in
    Alcotest.(check int) "exit code" 0 code;
    String.concat "\n"
      (List.filter (fun l -> contains l "/80") (String.split_on_char '\n' out))
  in
  let rows = go 1 in
  Alcotest.(check bool) "has estimate rows" true (String.length rows > 0);
  Alcotest.(check string) "curve identical at jobs 1 vs 4" rows (go 4)

(* ---------- rare-event estimation ---------- *)

let test_rare () =
  let code, out =
    run
      "rare --net benes -n 8 --eps 1e-5 --trials 400 --pilot-trials 200 \
       --tilt-iters 2 --seed 3 --jobs 2"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "rare" out "rare-event failure estimate at eps=1e-05";
  check_contains "rare" out "method";
  check_contains "rare" out "tilt";
  check_contains "rare" out "var_ratio"

let test_rare_json () =
  let code, out =
    run
      "rare --net benes -n 8 --eps 1e-5 --trials 300 --pilot-trials 200 \
       --tilt-iters 2 --seed 3 --json"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "rare json" out "\"method\":\"tilt\"";
  check_contains "rare json" out "\"tilt\":{\"mean\":";
  check_contains "rare json" out "\"variance_ratio\":";
  check_contains "rare json" out "\"trials\":300"

let test_rare_split () =
  let code, out =
    run
      "rare --net benes -n 8 --eps 1e-3 --method split --trials 400 \
       --particles 128 --seed 6"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "rare split" out "split";
  check_contains "rare split" out "level schedule";
  check_contains "rare split" out "entry rate"

let test_rare_curve () =
  let code, out =
    run
      "rare --net benes -n 8 --eps-grid 1e-5:1e-3:3:log --trials 300 \
       --pilot-trials 200 --tilt-iters 2 --seed 3"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "rare curve" out "rare-event failure curve";
  check_contains "rare curve" out "tuned at eps=1e-05";
  check_contains "rare curve" out "0.001 "

let test_rare_jobs_deterministic () =
  (* the output names no jobs count in the estimate rows; compare the
     full table minus the header line that echoes --jobs *)
  let go jobs =
    let code, out =
      run
        (Printf.sprintf
           "rare --net benes -n 8 --eps 1e-5 --trials 300 --pilot-trials \
            200 --tilt-iters 2 --seed 3 --jobs %d"
           jobs)
    in
    Alcotest.(check int) "exit code" 0 code;
    String.concat "\n"
      (List.filter
         (fun l -> not (contains l "jobs"))
         (String.split_on_char '\n' out))
  in
  let one = go 1 in
  Alcotest.(check bool) "has rows" true (contains one "tilt");
  Alcotest.(check string) "rare identical at jobs 1 vs 4" one (go 4)

let test_error_rare_method () =
  check_usage_error "rare bad method" "rare --net benes -n 8 --method nope"
    "invalid --method value \"nope\""

let test_error_rare_grid_with_split () =
  check_usage_error "rare grid + split"
    "rare --net benes -n 8 --eps-grid 1e-5:1e-3:3:log --method split"
    "only --method tilt supports it"

let test_error_rare_eps () =
  check_usage_error "rare eps 0" "rare --net benes -n 8 --eps 0"
    "invalid --eps value";
  check_usage_error "rare eps big" "rare --net benes -n 8 --eps 0.7"
    "invalid --eps value"

let test_error_eps_grid_degenerate () =
  (* a denormal LO with log spacing overflows the spacing arithmetic;
     must die with the normalized diagnostic, not crash mid-sweep *)
  check_usage_error "eps-grid denormal log"
    "curve --family benes -n 4 --trials 10 --eps-grid 4.9e-324:0.5:4:log"
    "degenerate spacing"

let test_faults_eps_grid () =
  let code, out =
    run "faults --family benes -n 8 --eps-grid 0.01:0.1:3 --trials 50 --seed 2"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "faults grid" out "P[survivor clean] curve (50 coupled trials";
  check_contains "faults grid" out "0.055 "

let test_route_eps_grid () =
  let code, out =
    run "route --family benes -n 8 --eps-grid 0.01:0.1:3 --trials 30 --seed 2"
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "route grid" out
    "P[random permutation fully routes] curve (30 coupled trials"

let test_error_eps_grid_malformed () =
  check_usage_error "eps-grid bad" "curve --family benes -n 8 --eps-grid bad"
    "expected LO:HI:STEPS[:log|:lin]";
  check_usage_error "eps-grid spacing"
    "curve --family benes -n 8 --eps-grid 0.01:0.1:3:cubic" "unknown spacing"

let test_error_eps_grid_range () =
  check_usage_error "eps-grid hi too large"
    "faults --family benes -n 8 --eps-grid 0.2:0.6:3" "need HI <= 0.5";
  check_usage_error "eps-grid log zero"
    "curve --family benes -n 8 --eps-grid 0:0.1:3:log" "log spacing needs LO > 0"

let test_error_eps_grid_with_target_ci () =
  check_usage_error "eps-grid + target-ci"
    "faults --family benes -n 8 --eps-grid 0.01:0.1:3 --target-ci 0.05"
    "--eps-grid cannot be combined with --target-ci"

let test_error_traffic_load () =
  check_usage_error "traffic load" "traffic --family benes -n 8 --load=-1"
    "invalid --load value"

let test_error_traffic_holding () =
  check_usage_error "traffic holding pareto:0.5"
    "traffic --family benes -n 8 --holding pareto:0.5" "invalid --holding value";
  check_usage_error "traffic holding gibberish"
    "traffic --family benes -n 8 --holding gibberish" "invalid --holding value"

let test_error_traffic_policy () =
  check_usage_error "traffic policy" "traffic --family benes -n 8 --policy bogus"
    "invalid --policy value";
  check_usage_error "traffic policy budget"
    "traffic --family benes -n 8 --policy rearrange:0" "must be an integer >= 1";
  check_usage_error "traffic policy list"
    "traffic --family benes -n 8 --policy bogus"
    "expected greedy, rearrange[:BUDGET], staged or loop"

let test_error_traffic_mtbf () =
  check_usage_error "traffic mtbf" "traffic --family benes -n 8 --mtbf 0"
    "invalid --mtbf value"

let test_error_traffic_shards () =
  check_usage_error "traffic shards 0"
    "traffic --family benes -n 8 --shards 0" "invalid --shards value 0";
  (* benes:16 has only a handful of shardable stage regions *)
  check_usage_error "traffic shards too many"
    "traffic --family benes -n 16 --load 1 --warmup 10 --calls 50 --shards 99"
    "shardable regions"

let test_error_degrade_arrival () =
  check_usage_error "degrade arrival 1.5"
    "degrade --family ft -n 8 --arrival 1.5" "invalid --arrival value";
  check_usage_error "degrade arrival negative"
    "degrade --family ft -n 8 --arrival=-0.1" "invalid --arrival value"

let test_help () =
  let code, out = run "--help=plain" in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "help" out "ftnet";
  List.iter
    (fun sub -> check_contains "help lists subcommand" out sub)
    [
      "build"; "topologies"; "faults"; "route"; "check"; "survive"; "curve";
      "rare"; "traffic"; "tournament"; "degrade"; "critical"; "render";
    ]

let () =
  (* run only when the binary exists (dune dependency guarantees it) *)
  Alcotest.run "ftnet_cli"
    [
      ( "subcommands",
        [
          Alcotest.test_case "build" `Quick test_build;
          Alcotest.test_case "build ft" `Quick test_build_ft;
          Alcotest.test_case "faults" `Quick test_faults;
          Alcotest.test_case "route" `Quick test_route;
          Alcotest.test_case "route verbose" `Quick test_route_verbose;
          Alcotest.test_case "check benes" `Slow test_check;
          Alcotest.test_case "check crossbar" `Quick test_check_crossbar;
          Alcotest.test_case "survive" `Quick test_survive;
          Alcotest.test_case "curve" `Quick test_curve;
          Alcotest.test_case "curve json" `Quick test_curve_json;
          Alcotest.test_case "curve deterministic across jobs" `Quick
            test_curve_jobs_deterministic;
          Alcotest.test_case "rare" `Quick test_rare;
          Alcotest.test_case "rare json" `Quick test_rare_json;
          Alcotest.test_case "rare split" `Slow test_rare_split;
          Alcotest.test_case "rare curve" `Quick test_rare_curve;
          Alcotest.test_case "rare deterministic across jobs" `Quick
            test_rare_jobs_deterministic;
          Alcotest.test_case "faults eps-grid" `Quick test_faults_eps_grid;
          Alcotest.test_case "route eps-grid" `Quick test_route_eps_grid;
          Alcotest.test_case "degrade" `Quick test_degrade;
          Alcotest.test_case "degrade arrival" `Quick test_degrade_arrival;
          Alcotest.test_case "traffic" `Quick test_traffic;
          Alcotest.test_case "traffic json" `Quick test_traffic_json;
          Alcotest.test_case "traffic effective n" `Quick
            test_traffic_effective_n;
          Alcotest.test_case "traffic sharded" `Quick test_traffic_sharded;
          Alcotest.test_case "traffic router report" `Quick
            test_traffic_router_report;
          Alcotest.test_case "traffic json effective n" `Quick
            test_traffic_json_effective_n;
          Alcotest.test_case "traffic pareto + rearrange" `Quick
            test_traffic_pareto_rearrange;
          Alcotest.test_case "traffic bit-identical across trace/jobs" `Slow
            test_traffic_determinism;
          Alcotest.test_case "critical" `Quick test_critical;
          Alcotest.test_case "render grid" `Quick test_render_grid;
          Alcotest.test_case "render census" `Quick test_render_census;
          Alcotest.test_case "render dot" `Quick test_render_dot;
          Alcotest.test_case "unknown family" `Quick test_unknown_family_fails;
          Alcotest.test_case "help" `Quick test_help;
        ] );
      ( "topology registry",
        [
          Alcotest.test_case "--net spec with rounding warning" `Quick
            test_net_spec_build;
          Alcotest.test_case "--net spec parameters" `Quick test_net_spec_params;
          Alcotest.test_case "--net equals --family" `Quick
            test_net_matches_family_alias;
          Alcotest.test_case "--net conflicts with --family" `Quick
            test_net_and_family_conflict;
          Alcotest.test_case "unknown parameter" `Quick test_net_unknown_param;
          Alcotest.test_case "power-of-two refusal" `Quick test_net_pow2_refused;
          Alcotest.test_case "topologies" `Quick test_topologies;
          Alcotest.test_case "topologies --names" `Quick test_topologies_names;
          Alcotest.test_case "tournament" `Slow test_tournament;
          Alcotest.test_case "tournament json" `Quick test_tournament_json;
        ] );
      ( "observability",
        [
          Alcotest.test_case "trace JSONL is valid and complete" `Slow
            test_trace_jsonl;
          Alcotest.test_case "metrics report" `Quick test_metrics_report;
          Alcotest.test_case "bit-identical across trace/jobs" `Slow
            test_cli_determinism;
          Alcotest.test_case "--progress on stderr, stdout clean JSON" `Quick
            test_progress_on_stderr_stdout_clean_json;
        ] );
      ( "serve",
        [
          Alcotest.test_case "replay smoke" `Quick test_serve_replay_smoke;
          Alcotest.test_case "replay byte-identical across runs/shards/jobs"
            `Quick test_serve_replay_deterministic;
          Alcotest.test_case "--calls bound" `Quick test_serve_calls_bound;
          Alcotest.test_case "live stdin until EOF" `Quick test_serve_stdin_live;
          Alcotest.test_case "admission overload" `Quick test_serve_overload;
          Alcotest.test_case "usage errors" `Quick test_serve_errors;
        ] );
      ( "errors",
        [
          Alcotest.test_case "trials 0" `Quick test_error_trials_zero;
          Alcotest.test_case "trials negative" `Quick test_error_trials_negative;
          Alcotest.test_case "jobs 0" `Quick test_error_jobs_zero;
          Alcotest.test_case "target-ci malformed" `Quick
            test_error_target_ci_malformed;
          Alcotest.test_case "target-ci out of range" `Quick
            test_error_target_ci_range;
          Alcotest.test_case "unwritable metrics path" `Quick
            test_error_unwritable_metrics;
          Alcotest.test_case "unwritable trace path" `Quick
            test_error_unwritable_trace;
          Alcotest.test_case "eps-grid malformed" `Quick
            test_error_eps_grid_malformed;
          Alcotest.test_case "eps-grid out of range" `Quick
            test_error_eps_grid_range;
          Alcotest.test_case "eps-grid with target-ci" `Quick
            test_error_eps_grid_with_target_ci;
          Alcotest.test_case "traffic load" `Quick test_error_traffic_load;
          Alcotest.test_case "traffic holding" `Quick test_error_traffic_holding;
          Alcotest.test_case "traffic policy" `Quick test_error_traffic_policy;
          Alcotest.test_case "traffic mtbf" `Quick test_error_traffic_mtbf;
          Alcotest.test_case "traffic shards" `Quick test_error_traffic_shards;
          Alcotest.test_case "rare method" `Quick test_error_rare_method;
          Alcotest.test_case "rare grid with split" `Quick
            test_error_rare_grid_with_split;
          Alcotest.test_case "rare eps range" `Quick test_error_rare_eps;
          Alcotest.test_case "eps-grid degenerate" `Quick
            test_error_eps_grid_degenerate;
          Alcotest.test_case "degrade arrival range" `Quick
            test_error_degrade_arrival;
        ] );
    ]
