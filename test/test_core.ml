(* Tests for the core library: directed grids, the FT construction,
   fault stripping, majority access, Lemma-1 tree paths, the Theorem-1
   certificates, and the end-to-end pipeline. *)

module Directed_grid = Ftcsn.Directed_grid
module Ft_params = Ftcsn.Ft_params
module Ft_network = Ftcsn.Ft_network
module Fault_strip = Ftcsn.Fault_strip
module Majority_access = Ftcsn.Majority_access
module Tree_paths = Ftcsn.Tree_paths
module Lower_bound = Ftcsn.Lower_bound
module Pipeline = Ftcsn.Pipeline
module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Rng = Ftcsn_prng.Rng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------- Directed_grid ---------- *)

let test_grid_counts () =
  let s = Directed_grid.make ~rows:4 ~stages:8 in
  check "vertices" 32 (Digraph.vertex_count s.Directed_grid.graph);
  check "edges" (Directed_grid.edge_count ~rows:4 ~stages:8)
    (Digraph.edge_count s.Directed_grid.graph);
  check "edge formula" (2 * 4 * 7) (Directed_grid.edge_count ~rows:4 ~stages:8)

let test_grid_structure_fig4 () =
  (* Fig. 4 is the (4, 8)-directed grid: every non-last-column vertex has a
     straight and a wrapping diagonal successor *)
  let s = Directed_grid.make ~rows:4 ~stages:8 in
  let g = s.Directed_grid.graph in
  for col = 0 to 6 do
    for row = 0 to 3 do
      let v = Directed_grid.vertex_at s.Directed_grid.grid ~row ~col in
      check "out degree" 2 (Digraph.out_degree g v);
      let targets = Array.to_list (Digraph.out_neighbours g v) in
      checkb "straight" true
        (List.mem (Directed_grid.vertex_at s.Directed_grid.grid ~row ~col:(col + 1)) targets);
      checkb "diagonal wraps" true
        (List.mem
           (Directed_grid.vertex_at s.Directed_grid.grid ~row:((row + 1) mod 4)
              ~col:(col + 1))
           targets)
    done
  done;
  (* last column has no successors *)
  for row = 0 to 3 do
    check "last col sinks" 0
      (Digraph.out_degree g (Directed_grid.vertex_at s.Directed_grid.grid ~row ~col:7))
  done

let test_grid_single_row () =
  let s = Directed_grid.make ~rows:1 ~stages:5 in
  check "chain edges" 4 (Digraph.edge_count s.Directed_grid.graph)

let test_grid_splice () =
  let b = Digraph.Builder.create () in
  let pre = Array.init 3 (fun _ -> Digraph.Builder.add_vertex b) in
  let grid = Directed_grid.build ~builder:b ~rows:3 ~stages:4 ~first_column:pre () in
  Alcotest.(check (array int)) "first column reused" pre grid.Directed_grid.columns.(0);
  let g = Digraph.Builder.freeze b in
  check "vertices" (3 * 4) (Digraph.vertex_count g);
  Alcotest.check_raises "arity"
    (Invalid_argument "Directed_grid.build: first_column arity") (fun () ->
      let b2 = Digraph.Builder.create () in
      let bad = Array.init 2 (fun _ -> Digraph.Builder.add_vertex b2) in
      ignore (Directed_grid.build ~builder:b2 ~rows:3 ~stages:4 ~first_column:bad ()))

let test_grid_render () =
  let s = Directed_grid.make ~rows:4 ~stages:8 in
  let art = Directed_grid.render s in
  checkb "rendered" true (String.length art > 50)

let test_grid_column_cut () =
  (* cutting one full column separates first and last columns: the min cut
     is exactly [rows] (Lemma 3's counting starts at cuts of size l) *)
  let s = Directed_grid.make ~rows:5 ~stages:6 in
  let grid = s.Directed_grid.grid in
  let sources = Array.to_list grid.Directed_grid.columns.(0) in
  let sinks = Array.to_list grid.Directed_grid.columns.(5) in
  let cut =
    Ftcsn_flow.Menger.max_vertex_disjoint s.Directed_grid.graph
      ~sources:(Array.of_list sources) ~sinks:(Array.of_list sinks)
  in
  check "min cut = rows" 5 cut

(* ---------- Ft_params ---------- *)

let test_params_paper () =
  let p = Ft_params.paper ~u:2 in
  check "n" 16 (Ft_params.n p);
  (* gamma = ceil(log4 68) = 4 (4^3=64 < 68 <= 256=4^4) *)
  check "gamma" 4 p.Ft_params.gamma;
  check "grid rows" (64 * 256) (Ft_params.grid_rows p);
  checkb "validates" true (Ft_params.validate p = Ok ())

let test_params_scaled_and_validation () =
  let p = Ft_params.scaled ~u:3 () in
  check "n" 8 (Ft_params.n p);
  check "levels" 5 (Ft_params.middle_levels p);
  checkb "validates" true (Ft_params.validate p = Ok ());
  Alcotest.check_raises "u=0" (Invalid_argument "Ft_params.scaled") (fun () ->
      ignore (Ft_params.scaled ~u:0 ()))

let test_params_predictions_match_build () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun u ->
      let p = Ft_params.scaled ~u () in
      let ft = Ft_network.make ~rng p in
      check
        (Printf.sprintf "size u=%d" u)
        (Ft_params.predicted_size p)
        (Network.size ft.Ft_network.net);
      check
        (Printf.sprintf "depth u=%d" u)
        (Ft_params.predicted_depth p)
        (Network.depth ft.Ft_network.net))
    [ 1; 2; 3; 4 ]

(* ---------- Ft_network ---------- *)

let build_small () =
  let rng = Rng.create ~seed:2 in
  Ft_network.make ~rng (Ft_params.scaled ~u:2 ())

let test_ft_structure () =
  let ft = build_small () in
  let net = ft.Ft_network.net in
  check "inputs" 4 (Network.n_inputs net);
  check "outputs" 4 (Network.n_outputs net);
  checkb "acyclic" true (Network.is_acyclic net);
  check "input grids" 4 (Array.length ft.Ft_network.input_grids);
  check "output grids" 4 (Array.length ft.Ft_network.output_grids)

let test_ft_grid_identification () =
  (* the middle's first stage must literally be the grids' last columns *)
  let ft = build_small () in
  let p = ft.Ft_network.params in
  let rows = Ft_params.grid_rows p in
  let first_stage = ft.Ft_network.middle.Ftcsn_networks.Recursive_nb.stages.(0) in
  Array.iteri
    (fun i grid ->
      let last_col = grid.Directed_grid.columns.(p.Ft_params.grid_stages - 1) in
      Alcotest.(check (array int))
        (Printf.sprintf "grid %d identified" i)
        last_col
        (Array.sub first_stage (i * rows) rows))
    ft.Ft_network.input_grids

let test_ft_input_fanout () =
  let ft = build_small () in
  let g = ft.Ft_network.net.Network.graph in
  let rows = Ft_params.grid_rows ft.Ft_network.params in
  Array.iter
    (fun i -> check "input fan-out = grid rows" rows (Digraph.out_degree g i))
    ft.Ft_network.net.Network.inputs;
  Array.iter
    (fun o -> check "output fan-in = grid rows" rows (Digraph.in_degree g o))
    ft.Ft_network.net.Network.outputs

let test_ft_every_pair_connected () =
  let ft = build_small () in
  let net = ft.Ft_network.net in
  Array.iter
    (fun i ->
      let d = Ftcsn_graph.Traverse.bfs_directed net.Network.graph ~sources:[ i ] in
      Array.iter (fun o -> checkb "pair connected" true (d.(o) >= 0)) net.Network.outputs)
    net.Network.inputs

let test_ft_stage_census () =
  let ft = build_small () in
  let census = Ft_network.stage_census ft in
  (match census with
  | ("inputs", n, _) :: _ -> check "first row inputs" 4 n
  | _ -> Alcotest.fail "census starts with inputs");
  (match List.rev census with
  | ("outputs", n, 0) :: _ -> check "last row outputs" 4 n
  | _ -> Alcotest.fail "census ends with outputs");
  (* interior stage widths all equal wf * beta^(u+gamma) = 4 * 2^4 = 64 *)
  List.iter
    (fun (label, width, _) ->
      if label <> "inputs" && label <> "outputs" then
        check ("width at " ^ label) 64 width)
    census

let test_ft_fault_free_routes_everything () =
  let ft = build_small () in
  let rng = Rng.create ~seed:3 in
  for _ = 1 to 10 do
    let r = Ftcsn_routing.Greedy.create ft.Ft_network.net in
    let pi = Rng.permutation rng 4 in
    let success = ref 0 in
    ignore (Ftcsn_routing.Greedy.route_permutation r pi ~success);
    check "all greedy-routed" 4 !success
  done

let test_ft_rejects_bad_params () =
  let rng = Rng.create ~seed:4 in
  let p = { (Ft_params.scaled ~u:2 ()) with Ft_params.gamma = 0 } in
  Alcotest.check_raises "gamma 0"
    (Invalid_argument
       "Ft_network.make: gamma must be >= 1 (grids need a block to land on)")
    (fun () -> ignore (Ft_network.make ~rng p))

(* ---------- Fault_strip ---------- *)

let test_strip_no_faults () =
  let ft = build_small () in
  let net = ft.Ft_network.net in
  let pattern = Fault.all_normal (Network.size net) in
  let s = Fault_strip.strip net pattern in
  checkb "healthy" true (Fault_strip.healthy s);
  Alcotest.(check (float 1e-9)) "nothing stripped" 0.0
    (Fault_strip.stripped_fraction net s);
  Alcotest.(check (list int)) "no isolation" [] (Fault_strip.isolated_inputs net s)

let test_strip_marks_faulty_endpoints () =
  let g = Digraph.of_edges ~n:4 [| (0, 1); (1, 2); (2, 3) |] in
  let net = Network.make ~name:"chain" ~graph:g ~inputs:[| 0 |] ~outputs:[| 3 |] in
  let pattern = [| Fault.Normal; Fault.Open_failure; Fault.Normal |] in
  let s = Fault_strip.strip net pattern in
  checkb "vertex 1 stripped" false (s.Fault_strip.allowed 1);
  checkb "vertex 2 stripped" false (s.Fault_strip.allowed 2);
  (* input becomes isolated: its only route used vertex 1 *)
  Alcotest.(check (list int)) "isolated" [ 0 ] (Fault_strip.isolated_inputs net s)

let test_strip_radius_one () =
  let g = Digraph.of_edges ~n:5 [| (0, 1); (1, 2); (2, 3); (3, 4) |] in
  let net = Network.make ~name:"chain" ~graph:g ~inputs:[| 0 |] ~outputs:[| 4 |] in
  let pattern = [| Fault.Normal; Fault.Open_failure; Fault.Normal; Fault.Normal |] in
  let s0 = Fault_strip.strip ~radius:0 net pattern in
  let s1 = Fault_strip.strip ~radius:1 net pattern in
  checkb "radius 0 keeps 3" true (s0.Fault_strip.allowed 3);
  checkb "radius 1 strips 3" false (s1.Fault_strip.allowed 3);
  checkb "radius 1 strips 0's neighbourhood correctly" true
    (Ftcsn_util.Bitset.cardinal s1.Fault_strip.stripped
    > Ftcsn_util.Bitset.cardinal s0.Fault_strip.stripped)

let test_strip_terminals_stay_allowed () =
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  let net = Network.make ~name:"chain" ~graph:g ~inputs:[| 0 |] ~outputs:[| 2 |] in
  let pattern = [| Fault.Open_failure; Fault.Normal |] in
  let s = Fault_strip.strip net pattern in
  checkb "faulty input still allowed (terminal)" true (s.Fault_strip.allowed 0)

let test_strip_detects_short () =
  let g = Digraph.of_edges ~n:2 [| (0, 1) |] in
  let net = Network.make ~name:"pair" ~graph:g ~inputs:[| 0 |] ~outputs:[| 1 |] in
  let s = Fault_strip.strip net [| Fault.Closed_failure |] in
  checkb "short detected" false (Fault_strip.healthy s);
  Alcotest.(check (list (pair int int))) "pair" [ (0, 1) ]
    s.Fault_strip.shorted_terminals

(* ---------- Majority_access ---------- *)

let test_majority_access_clean () =
  let ft = build_small () in
  let net = ft.Ft_network.net in
  checkb "fault-free majority access" true
    (Majority_access.is_majority_access net
       ~allowed:(fun _ -> true)
       ~busy:(fun _ -> false))

let test_majority_access_busy_input_skipped () =
  let net = Ftcsn_networks.Crossbar.square 3 in
  let busy v = v = net.Network.inputs.(0) in
  let counts =
    Majority_access.input_access_counts net ~allowed:(fun _ -> true) ~busy
  in
  check "busy marked" (-1) counts.(0);
  check "idle sees all" 3 counts.(1)

let test_majority_access_with_block () =
  (* an input with all its outputs cut off fails the majority test *)
  let g = Digraph.of_edges ~n:4 [| (0, 2); (1, 2); (2, 3) |] in
  let net = Network.make ~name:"y" ~graph:g ~inputs:[| 0; 1 |] ~outputs:[| 3 |] in
  checkb "fails when junction forbidden" false
    (Majority_access.is_majority_access net ~allowed:(fun v -> v <> 2)
       ~busy:(fun _ -> false))

let test_grid_access_lemma3 () =
  let s = Directed_grid.make ~rows:6 ~stages:5 in
  (* the row index can only grow by one per stage, so 4 transitions from
     one source row reach exactly 5 of the 6 last-column rows *)
  check "access when healthy" 5
    (Majority_access.grid_last_column_access s ~faulty:(fun _ -> false)
       ~source_row:2);
  (* kill one full column except one vertex: access drops to <= rows but
     stays positive through the surviving vertex *)
  let grid = s.Directed_grid.grid in
  let col2 = grid.Directed_grid.columns.(2) in
  let survivor = col2.(0) in
  let faulty v = Array.exists (fun w -> w = v) col2 && v <> survivor in
  let access =
    Majority_access.grid_last_column_access s ~faulty ~source_row:0
  in
  checkb "bottleneck narrows but keeps access" true (access >= 1 && access <= 6);
  (* kill the whole column: no access *)
  check "column cut isolates" 0
    (Majority_access.grid_last_column_access s
       ~faulty:(fun v -> Array.exists (fun w -> w = v) col2)
       ~source_row:0)

(* ---------- Tree_paths (Lemma 1) ---------- *)

let test_tree_paths_star () =
  (* star with 3 leaves: all pairs within distance 2 *)
  let t = Tree_paths.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check (list int)) "leaves" [ 1; 2; 3 ] (Tree_paths.leaves t);
  checkb "forest" true (Tree_paths.is_forest t);
  checkb "internal ok" true (Tree_paths.internal_degrees_ok t);
  let paths = Tree_paths.short_leaf_paths t in
  check "one disjoint path" 1 (List.length paths)

let test_tree_paths_two_cherries () =
  (* path of two internal nodes each with two leaves: two disjoint paths *)
  let t =
    Tree_paths.of_edges ~n:6 [ (0, 1); (0, 2); (0, 3); (3, 4); (3, 5) ]
  in
  let paths = Tree_paths.short_leaf_paths t in
  check "two paths" 2 (List.length paths);
  (* edge-disjointness *)
  let edges_of path =
    let rec go = function
      | a :: (b :: _ as rest) -> (min a b, max a b) :: go rest
      | _ -> []
    in
    go path
  in
  let all = List.concat_map edges_of paths in
  check "edge-disjoint" (List.length all) (List.length (List.sort_uniq compare all))

let test_tree_paths_lemma1_bound_random () =
  let rng = Rng.create ~seed:8 in
  List.iter
    (fun l ->
      let t = Tree_paths.random_internal3_tree ~rng ~leaves:l in
      check (Printf.sprintf "leaf count %d" l) l (List.length (Tree_paths.leaves t));
      checkb "forest" true (Tree_paths.is_forest t);
      checkb "degrees" true (Tree_paths.internal_degrees_ok t);
      let paths = Tree_paths.short_leaf_paths t in
      List.iter
        (fun p -> checkb "short" true (List.length p <= 4))
        paths;
      checkb
        (Printf.sprintf "lemma bound at l=%d" l)
        true
        (List.length paths >= Tree_paths.lemma1_lower_bound ~leaves:l))
    [ 3; 10; 50; 200; 1000 ]

let test_contract_stretches () =
  (* path a-b-c-d-e with internal degree-2 chain contracts to one edge *)
  let t = Tree_paths.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4) ] in
  let c = Tree_paths.contract_stretches t in
  check "endpoints joined" 1 (Tree_paths.degree c 0);
  Alcotest.(check (list int)) "0 adj 4" [ 4 ] (Array.to_list c.Tree_paths.adj.(0));
  check "interior isolated" 0 (Tree_paths.degree c 2)

let test_contract_preserves_branching () =
  (* Y with stretched arms: contraction restores degree-3 centre *)
  let t =
    Tree_paths.of_edges ~n:7
      [ (0, 1); (1, 2); (0, 3); (3, 4); (0, 5); (5, 6) ]
  in
  let c = Tree_paths.contract_stretches t in
  check "centre degree" 3 (Tree_paths.degree c 0);
  Alcotest.(check (list int)) "centre adj" [ 2; 4; 6 ]
    (List.sort compare (Array.to_list c.Tree_paths.adj.(0)));
  checkb "no degree-2 left" true (Tree_paths.internal_degrees_ok c)

let test_fig_gadgets () =
  let t1, bad = Tree_paths.fig1_bad_leaf () in
  checkb "fig1 forest" true (Tree_paths.is_forest t1);
  checkb "fig1 degrees" true (Tree_paths.internal_degrees_ok t1);
  check "bad leaf isolated at distance 4" 4 (Tree_paths.nearest_leaf_distance t1 bad);
  let t3, path = Tree_paths.fig3_path_with_unlucky () in
  checkb "fig3 forest" true (Tree_paths.is_forest t3);
  check "central path length 3" 4 (List.length path);
  (* the central path's ends are leaves at distance 3 *)
  (match path with
  | first :: _ -> check "end is leaf" 1 (Tree_paths.degree t3 first)
  | [] -> Alcotest.fail "empty path")

let test_of_edges_validation () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Tree_paths.of_edges: duplicate")
    (fun () -> ignore (Tree_paths.of_edges ~n:3 [ (0, 1); (1, 0) ]));
  Alcotest.check_raises "self loop" (Invalid_argument "Tree_paths.of_edges: bad edge")
    (fun () -> ignore (Tree_paths.of_edges ~n:3 [ (1, 1) ]))

(* ---------- Lower_bound (Theorem 1) ---------- *)

let test_lower_bound_defaults () =
  check "threshold at n=4096" 1 (Lower_bound.default_threshold ~n:4096);
  check "threshold large" 2 (Lower_bound.default_threshold ~n:(1 lsl 24));
  check "radius" 1 (Lower_bound.default_radius ~threshold:3);
  checkb "theorem bounds positive" true
    (Lower_bound.theorem1_size_bound ~n:1024 > 0.0
    && Lower_bound.theorem1_depth_bound ~n:1024 > 0.0)

let test_good_inputs_spread () =
  (* in a crossbar all inputs are within distance 2 of each other, so a
     threshold of 3 keeps only one good input *)
  let net = Ftcsn_networks.Crossbar.square 4 in
  check "one survivor" 1 (Array.length (Lower_bound.good_inputs ~threshold:3 net));
  (* threshold 1 keeps everything *)
  check "all survive" 4 (Array.length (Lower_bound.good_inputs ~threshold:1 net))

let test_zones_on_chain () =
  (* chain 0-1-2-3-4: zones around 0 have exactly one edge each *)
  let g = Digraph.of_edges ~n:5 [| (0, 1); (1, 2); (2, 3); (3, 4) |] in
  let net = Network.make ~name:"chain" ~graph:g ~inputs:[| 0 |] ~outputs:[| 4 |] in
  let z = Lower_bound.zones_of_input net ~radius:3 ~input_vertex:0 in
  Alcotest.(check (array int)) "zone sizes" [| 1; 1; 1 |] z.Lower_bound.zone_sizes;
  check "min" 1 z.Lower_bound.min_zone;
  check "total" 3 z.Lower_bound.neighbourhood_edges

let test_zones_on_ft_network () =
  let ft = build_small () in
  let report = Lower_bound.analyse ~threshold:3 ~radius:1 ft.Ft_network.net in
  checkb "some good inputs" true (Array.length report.Lower_bound.good_input_vertices >= 1);
  List.iter
    (fun z ->
      (* zone 1 around an input counts its fan-out switches *)
      check "first zone = grid rows"
        (Ft_params.grid_rows ft.Ft_network.params)
        z.Lower_bound.min_zone)
    report.Lower_bound.zones;
  check "depth certificate" 2 report.Lower_bound.depth_certificate

let test_analyse_depth_certificate_validity () =
  (* the certificate must never exceed the true depth *)
  let ft = build_small () in
  let report = Lower_bound.analyse ~threshold:3 ~radius:1 ft.Ft_network.net in
  checkb "certificate <= actual depth" true
    (report.Lower_bound.depth_certificate <= Network.depth ft.Ft_network.net)

let test_lemma2_certificate_crossbar () =
  (* crossbar inputs are all within distance 2: every input links, and
     short shorting families exist in quantity *)
  let net = Ftcsn_networks.Crossbar.square 8 in
  let cert = Lower_bound.lemma2_certificate ~threshold:3 net in
  check "all inputs linked" 8 cert.Lower_bound.linked_inputs;
  checkb "families found" true (List.length cert.Lower_bound.shorting_families >= 2);
  (* every family joins two distinct inputs via an edge-disjoint path *)
  let all_edges =
    List.concat_map
      (fun path ->
        let rec go = function
          | a :: (b :: _ as rest) -> (min a b, max a b) :: go rest
          | _ -> []
        in
        go path)
      cert.Lower_bound.shorting_families
  in
  check "edge-disjoint families" (List.length all_edges)
    (List.length (List.sort_uniq compare all_edges))

let test_lemma2_certificate_ft_sparse () =
  (* FT nets keep inputs far apart: at the same threshold no input links,
     so there are no cheap shorting opportunities — the structural
     dichotomy Lemma 2 turns into the depth bound *)
  let ft = build_small () in
  let cert = Lower_bound.lemma2_certificate ~threshold:3 ft.Ft_network.net in
  check "no inputs linked" 0 cert.Lower_bound.linked_inputs;
  check "no families" 0 (List.length cert.Lower_bound.shorting_families)

let test_lemma2_certificate_benes () =
  let net = Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make 16) in
  let cert = Lower_bound.lemma2_certificate ~threshold:3 net in
  (* sibling inputs share a switch: they all link at distance 2 *)
  check "all inputs linked" 16 cert.Lower_bound.linked_inputs;
  checkb "families found" true (cert.Lower_bound.shorting_families <> [])

(* ---------- Pipeline ---------- *)

let test_pipeline_no_faults_survive () =
  let ft = build_small () in
  let rng = Rng.create ~seed:9 in
  let v = Pipeline.trial ~rng ~eps:0.0 ft.Ft_network.net in
  Alcotest.(check string) "survives" "survived" (Pipeline.verdict_label v)

let test_pipeline_total_failure () =
  let ft = build_small () in
  let rng = Rng.create ~seed:10 in
  (* eps = 0.5/0.5: every switch fails; terminals short or isolate *)
  let v = Pipeline.trial ~rng ~eps:0.5 ft.Ft_network.net in
  checkb "fails" true (v <> Pipeline.Survived)

let test_pipeline_survival_monotone () =
  let ft = build_small () in
  let rng = Rng.create ~seed:11 in
  let at eps =
    (Pipeline.survival ~trials:30 ~rng ~eps ft.Ft_network.net)
      .Ftcsn_reliability.Monte_carlo.mean
  in
  let lo = at 1e-4 and hi = at 0.2 in
  checkb "more faults, less survival" true (lo >= hi);
  checkb "low eps survives mostly" true (lo > 0.8)

let test_pipeline_ft_beats_benes () =
  let ft = build_small () in
  let benes = Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make 4) in
  let rng = Rng.create ~seed:12 in
  let eps = 0.02 in
  let ft_s =
    (Pipeline.survival ~trials:40 ~rng ~eps ~probe:Pipeline.sc_probe_only
       ft.Ft_network.net)
      .Ftcsn_reliability.Monte_carlo.mean
  in
  let bn_s =
    (Pipeline.survival ~trials:40 ~rng ~eps ~probe:Pipeline.sc_probe_only benes)
      .Ftcsn_reliability.Monte_carlo.mean
  in
  checkb "headline: FT construction wins under faults" true (ft_s > bn_s)

let test_pipeline_probe_presets () =
  check "default greedy" 1 Pipeline.default_probe.Pipeline.greedy_permutations;
  check "sc-only has no perms" 0 Pipeline.sc_probe_only.Pipeline.greedy_permutations;
  check "rearrangeable uses exact" 1
    Pipeline.rearrangeable_probe.Pipeline.exact_permutations

let test_survival_curve_matches_independent () =
  (* the CRN curve with its memo and monotone short-circuits must be
     pointwise bit-identical to independent survival runs, for sorted
     and unsorted grids, flow-only and mixed probes, at every jobs *)
  let benes = Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make 8) in
  let trials = 120 in
  List.iter
    (fun eps ->
      List.iter
        (fun (pname, probe) ->
          List.iter
            (fun jobs ->
              let curve =
                let rng = Rng.create ~seed:2718 in
                Pipeline.survival_curve ~jobs ~trials ~rng ~eps ~probe benes
              in
              Array.iteri
                (fun k e ->
                  let rng = Rng.create ~seed:2718 in
                  let single =
                    Pipeline.survival ~trials ~rng ~eps:eps.(k) ~probe benes
                  in
                  check
                    (Printf.sprintf "%s jobs=%d point %d successes" pname jobs
                       k)
                    single.Ftcsn_reliability.Monte_carlo.successes
                    e.Ftcsn_reliability.Monte_carlo.successes;
                  check
                    (Printf.sprintf "%s jobs=%d point %d trials" pname jobs k)
                    single.Ftcsn_reliability.Monte_carlo.trials
                    e.Ftcsn_reliability.Monte_carlo.trials)
                curve)
            [ 1; 4 ])
        [
          ("sc", Pipeline.sc_probe_only); ("default", Pipeline.default_probe);
        ])
    [
      [| 1e-3; 1e-2; 0.05; 0.12 |] (* ascending: short-circuits live *);
      [| 0.05; 1e-3; 0.12 |] (* unsorted: every point evaluated *);
    ]

(* ---------- Paper_bounds ---------- *)

let test_paper_bounds_regimes () =
  let eps = Ftcsn.Paper_bounds.paper_epsilon in
  (* at the paper's eps = 1e-6 every bound is tiny for moderate u *)
  checkb "lemma3 tiny" true (Ftcsn.Paper_bounds.lemma3_access_bound ~v:8 ~eps < 1e-20);
  checkb "lemma7 tiny" true (Ftcsn.Paper_bounds.lemma7_shorting_bound ~u:8 ~eps < 1e-20);
  checkb "lemma4 decays in mu" true
    (Ftcsn.Paper_bounds.lemma4_outlet_bound ~mu:3
    < Ftcsn.Paper_bounds.lemma4_outlet_bound ~mu:2);
  checkb "lemma5 decays in u" true
    (Ftcsn.Paper_bounds.lemma5_union_bound ~u:12
    < Ftcsn.Paper_bounds.lemma5_union_bound ~u:6);
  (* theorem 2 total failure bound goes to 0 as u grows *)
  checkb "theorem2 vanishes" true
    (Ftcsn.Paper_bounds.theorem2_failure_bound ~u:20 ~eps
    < Ftcsn.Paper_bounds.theorem2_failure_bound ~u:10 ~eps);
  (* lemma 2's complement: with eps = 1/4 the no-short probability is
     small for large n, which is the contradiction the proof needs *)
  checkb "lemma2 shrinks with n" true
    (Ftcsn.Paper_bounds.lemma2_shorting_bound ~n:(1 lsl 16) ~eps:0.25
    < Ftcsn.Paper_bounds.lemma2_shorting_bound ~n:(1 lsl 8) ~eps:0.25)

(* ---------- Majority-access probe (Lemma 6) ---------- *)

let test_majority_probe_ft_clean () =
  let ft = build_small () in
  let rng = Rng.create ~seed:80 in
  checkb "fault-free ft keeps sampled majority access" true
    (Majority_access.sampled_busy_majority ~trials:5 ~rng
       ~allowed:(fun _ -> true)
       ft.Ft_network.net)

let test_majority_probe_detects_violation () =
  (* a funnel network loses majority access as soon as a call occupies the
     junction *)
  let g =
    Digraph.of_edges ~n:6 [| (0, 2); (1, 2); (2, 3); (3, 4); (3, 5) |]
  in
  let net =
    Network.make ~name:"funnel" ~graph:g ~inputs:[| 0; 1 |] ~outputs:[| 4; 5 |]
  in
  let rng = Rng.create ~seed:81 in
  checkb "funnel violates under load" false
    (Majority_access.sampled_busy_majority ~trials:20 ~load:0.5 ~rng
       ~allowed:(fun _ -> true)
       net)

let test_lemma6_probe_in_pipeline () =
  let ft = build_small () in
  let rng = Rng.create ~seed:82 in
  let est =
    Pipeline.survival ~trials:20 ~rng ~eps:1e-3
      ~probe:Pipeline.lemma6_probe ft.Ft_network.net
  in
  checkb "lemma-6 certified survival at 1e-3" true
    (est.Ftcsn_reliability.Monte_carlo.mean > 0.8)

(* ---------- Transfer (§3) ---------- *)

let test_transfer_harden_accounting () =
  let benes = Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make 4) in
  let h = Ftcsn.Transfer.harden ~eps:0.1 ~eps':0.01 benes in
  check "size multiplied"
    (Network.size benes * h.Ftcsn.Transfer.size_factor)
    (Network.size h.Ftcsn.Transfer.network);
  check "depth multiplied"
    (Network.depth benes * h.Ftcsn.Transfer.depth_factor)
    (Network.depth h.Ftcsn.Transfer.network);
  let po, ps = Ftcsn.Transfer.logical_failure_rates h ~eps:0.1 in
  checkb "logical open under target" true (po < 0.01);
  checkb "logical short under target" true (ps < 0.01)

let test_transfer_logical_roundtrip () =
  let benes = Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make 4) in
  let h = Ftcsn.Transfer.harden ~eps:0.1 ~eps':0.01 benes in
  let m = Network.size h.Ftcsn.Transfer.network in
  let logical = Ftcsn.Transfer.logical_pattern h (Fault.all_normal m) in
  check "logical arity" (Network.size benes) (Array.length logical);
  Array.iter
    (fun s -> checkb "healthy" true (Fault.state_equal s Fault.Normal))
    logical

let test_transfer_improves_survival () =
  (* hardened Benes must beat bare Benes at the component failure rate it
     was designed for, judged at the logical level *)
  let rng = Rng.create ~seed:70 in
  let benes = Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make 4) in
  let eps = 0.05 in
  let h = Ftcsn.Transfer.harden ~eps ~eps':1e-3 benes in
  let trials = 300 in
  let bare_fail = ref 0 and hard_fail = ref 0 in
  let logical_fails pattern =
    Array.exists (fun s -> not (Fault.state_equal s Fault.Normal)) pattern
  in
  for _ = 1 to trials do
    let bare = Fault.sample rng ~eps_open:eps ~eps_close:eps ~m:(Network.size benes) in
    if logical_fails bare then incr bare_fail;
    let phys =
      Fault.sample rng ~eps_open:eps ~eps_close:eps
        ~m:(Network.size h.Ftcsn.Transfer.network)
    in
    if logical_fails (Ftcsn.Transfer.logical_pattern h phys) then incr hard_fail
  done;
  checkb "hardening reduces logical failures" true (!hard_fail * 4 < !bare_fail)

let test_transfer_delta_shift () =
  Alcotest.(check (float 1e-12)) "halving delta halves eps" 0.005
    (Ftcsn.Transfer.delta_shift ~eps:0.01 ~delta_from:0.5 ~delta_to:0.25);
  Alcotest.(check (float 1e-12)) "growing delta caps at eps" 0.01
    (Ftcsn.Transfer.delta_shift ~eps:0.01 ~delta_from:0.25 ~delta_to:0.5)

(* ---------- Ft_session (degradation) ---------- *)

let test_session_no_hazard_is_clean () =
  let ft = build_small () in
  let rng = Rng.create ~seed:71 in
  let stats =
    Ftcsn.Ft_session.run ~rng ~hazard:0.0 ~arrival:0.6 ~ticks:300
      ft.Ft_network.net
  in
  check "full horizon" 300 stats.Ftcsn.Ft_session.ticks;
  check "no drops" 0 stats.Ftcsn.Ft_session.dropped;
  check "no blocks" 0 stats.Ftcsn.Ft_session.blocked;
  check "no failures" 0 stats.Ftcsn.Ft_session.failed_switches;
  checkb "no catastrophe" true (stats.Ftcsn.Ft_session.catastrophe_at = None);
  checkb "traffic flowed" true (stats.Ftcsn.Ft_session.placed > 20)

let test_session_hazard_accumulates () =
  let ft = build_small () in
  let rng = Rng.create ~seed:72 in
  let stats =
    Ftcsn.Ft_session.run ~rng ~hazard:1e-4 ~arrival:0.6 ~ticks:400
      ft.Ft_network.net
  in
  checkb "some switches failed" true (stats.Ftcsn.Ft_session.failed_switches > 0);
  checkb "reroutes covered drops" true
    (stats.Ftcsn.Ft_session.rerouted <= stats.Ftcsn.Ft_session.dropped)

let test_session_catastrophe_under_heavy_hazard () =
  let ft = build_small () in
  let rng = Rng.create ~seed:73 in
  let stats =
    Ftcsn.Ft_session.run ~rng ~hazard:0.05 ~arrival:0.6 ~ticks:500
      ft.Ft_network.net
  in
  (* at 5% per tick the fabric must melt within the horizon *)
  checkb "catastrophe happened" true
    (stats.Ftcsn.Ft_session.catastrophe_at <> None);
  checkb "ended early" true (stats.Ftcsn.Ft_session.ticks < 500)

let test_session_mttd_ordering () =
  (* Fair comparison: equal expected switch failures per tick (hazard
     scaled inversely to size), so MTTD measures pure redundancy — how
     many failures a fabric absorbs before service degrades.  At equal
     per-switch hazard the FT net's larger switch count means
     proportionally more exposure, which is the size-vs-tolerance trade
     the paper prices, not a defect. *)
  let ft = build_small () in
  let benes = Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make 4) in
  let rng = Rng.create ~seed:74 in
  let failures_per_tick = 0.05 in
  let mttd net =
    let hazard = failures_per_tick /. float_of_int (Network.size net) in
    Ftcsn.Ft_session.mean_time_to_degradation ~rng ~hazard ~trials:10
      ~max_ticks:4000 net
  in
  let t_ft = mttd ft.Ft_network.net and t_benes = mttd benes in
  checkb
    (Printf.sprintf "ft %.0f > benes %.0f" t_ft t_benes)
    true (t_ft > t_benes)

let test_session_mttd_monotone_in_hazard () =
  let ft = build_small () in
  let rng = Rng.create ~seed:75 in
  let mttd hazard =
    Ftcsn.Ft_session.mean_time_to_degradation ~rng ~hazard ~trials:8
      ~max_ticks:2000 ft.Ft_network.net
  in
  let slow = mttd 5e-5 and fast = mttd 2e-3 in
  checkb (Printf.sprintf "slow %.0f >= fast %.0f" slow fast) true (slow >= fast)

(* ---------- Ft_route (structured router) ---------- *)

let test_ft_route_fault_free_all_perms () =
  let ft = build_small () in
  let plan = Ftcsn.Ft_route.plan ft in
  Ftcsn_util.Perm.iter_all 4 (fun pi ->
      let _, success =
        Ftcsn.Ft_route.route_permutation plan ~allowed:(fun _ -> true)
          (Array.copy pi)
      in
      check "all 4 routed" 4 success)

let test_ft_route_paths_valid () =
  let rng = Rng.create ~seed:90 in
  let ft = Ft_network.make ~rng (Ft_params.scaled ~u:3 ()) in
  let plan = Ftcsn.Ft_route.plan ft in
  let g = ft.Ft_network.net.Network.graph in
  for _ = 1 to 10 do
    let pi = Rng.permutation rng 8 in
    let paths, success =
      Ftcsn.Ft_route.route_permutation plan ~allowed:(fun _ -> true) pi
    in
    check "all routed" 8 success;
    let all = Array.to_list paths |> List.filter_map Fun.id |> List.concat in
    check "disjoint" (List.length all) (List.length (List.sort_uniq compare all));
    Array.iteri
      (fun i p ->
        match p with
        | None -> ()
        | Some p ->
            check "starts at input" ft.Ft_network.net.Network.inputs.(i)
              (List.hd p);
            check "ends at output" ft.Ft_network.net.Network.outputs.(pi.(i))
              (List.hd (List.rev p));
            let rec edges = function
              | a :: (b :: _ as rest) ->
                  checkb "edge exists" true
                    (Digraph.fold_out g a ~init:false ~f:(fun acc ~dst ~eid:_ ->
                         acc || dst = b));
                  edges rest
              | _ -> ()
            in
            edges p)
      paths
  done

let test_ft_route_respects_allowed () =
  let ft = build_small () in
  let plan = Ftcsn.Ft_route.plan ft in
  (* forbid everything internal: no route can exist *)
  let terminals = Network.terminals ft.Ft_network.net in
  let allowed v = List.mem v terminals in
  checkb "no route through forbidden interior" true
    (Ftcsn.Ft_route.route plan ~allowed ~busy:(fun _ -> false) ~input:0
       ~output:0
    = None)

let test_ft_route_under_faults_matches_bfs () =
  let rng = Rng.create ~seed:91 in
  let ft = Ft_network.make ~rng (Ft_params.scaled ~u:3 ()) in
  let plan = Ftcsn.Ft_route.plan ft in
  let net = ft.Ft_network.net in
  for _ = 1 to 10 do
    let pattern =
      Fault.sample rng ~eps_open:0.01 ~eps_close:0.01 ~m:(Network.size net)
    in
    let strip = Fault_strip.strip net pattern in
    let pi = Rng.permutation rng 8 in
    let _, structured =
      Ftcsn.Ft_route.route_permutation plan
        ~allowed:strip.Fault_strip.allowed pi
    in
    let bfs_router =
      Ftcsn_routing.Greedy.create ~allowed:strip.Fault_strip.allowed net
    in
    let bfs = ref 0 in
    ignore (Ftcsn_routing.Greedy.route_permutation bfs_router pi ~success:bfs);
    (* the structured router must not be materially worse than BFS *)
    checkb
      (Printf.sprintf "structured %d vs bfs %d" structured !bfs)
      true
      (structured >= !bfs - 1)
  done

(* ---------- qcheck properties ---------- *)

let prop_ft_network_predictions =
  QCheck2.Test.make ~name:"Ft_network matches analytic size/depth for random params"
    ~count:30
    QCheck2.Gen.(
      tup5 (int_range 1 3) (int_range 1 2) (int_range 2 3) (int_range 1 3)
        (int_range 1 4))
    (fun (u, gamma, branching, width_factor, degree) ->
      let p =
        Ft_params.scaled ~branching ~width_factor ~degree ~gamma ~u ()
      in
      let rng = Rng.create ~seed:(Hashtbl.hash (u, gamma, branching, width_factor, degree)) in
      let ft = Ft_network.make ~rng p in
      Network.size ft.Ft_network.net = Ft_params.predicted_size p
      && Network.depth ft.Ft_network.net = Ft_params.predicted_depth p
      && Network.is_acyclic ft.Ft_network.net)

let prop_fault_strip_soundness =
  QCheck2.Test.make ~name:"stripped internal vertices are never allowed"
    ~count:60
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 30))
    (fun (seed, pct) ->
      let rng = Rng.create ~seed in
      let net = Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make 8) in
      let eps = float_of_int pct /. 100.0 /. 2.0 in
      let pattern =
        Fault.sample rng ~eps_open:eps ~eps_close:eps ~m:(Network.size net)
      in
      let strip = Fault_strip.strip net pattern in
      let terminals = Network.terminals net in
      let ok = ref true in
      Ftcsn_util.Bitset.iter
        (fun v ->
          if (not (List.mem v terminals)) && strip.Fault_strip.allowed v then
            ok := false)
        strip.Fault_strip.stripped;
      (* and the surviving graph carries exactly the normal switches *)
      !ok
      && Digraph.edge_count strip.Fault_strip.normal_graph
         = Fault.count pattern Fault.Normal)

let prop_grid_degrees =
  QCheck2.Test.make ~name:"directed grids have the Fig-4 degree structure"
    ~count:50
    QCheck2.Gen.(pair (int_range 1 10) (int_range 1 10))
    (fun (rows, stages) ->
      let s = Directed_grid.make ~rows ~stages in
      let g = s.Directed_grid.graph in
      let expected_out col = if col = stages - 1 then 0 else if rows > 1 then 2 else 1 in
      let ok = ref true in
      for col = 0 to stages - 1 do
        for row = 0 to rows - 1 do
          let v = Directed_grid.vertex_at s.Directed_grid.grid ~row ~col in
          if Digraph.out_degree g v <> expected_out col then ok := false
        done
      done;
      !ok
      && Digraph.edge_count g = Directed_grid.edge_count ~rows ~stages)

let prop_tree_paths_invariants =
  QCheck2.Test.make ~name:"short_leaf_paths: edge-disjoint, short, leaf-ended"
    ~count:40
    QCheck2.Gen.(pair (int_range 3 120) int)
    (fun (leaves, seed) ->
      let rng = Rng.create ~seed in
      let tree = Tree_paths.random_internal3_tree ~rng ~leaves in
      let paths = Tree_paths.short_leaf_paths tree in
      let edge_of a b = (min a b, max a b) in
      let edges =
        List.concat_map
          (fun path ->
            let rec go = function
              | a :: (b :: _ as rest) -> edge_of a b :: go rest
              | _ -> []
            in
            go path)
          paths
      in
      List.length edges = List.length (List.sort_uniq compare edges)
      && List.for_all
           (fun path ->
             List.length path <= 4
             && Tree_paths.degree tree (List.hd path) = 1
             && Tree_paths.degree tree (List.hd (List.rev path)) = 1)
           paths
      && List.length paths >= Tree_paths.lemma1_lower_bound ~leaves)

let prop_transfer_size_accounting =
  QCheck2.Test.make ~name:"harden multiplies size by the gadget size" ~count:20
    QCheck2.Gen.(int_range 2 4)
    (fun log_n ->
      let n = 1 lsl log_n in
      let net = Ftcsn_networks.Benes.network (Ftcsn_networks.Benes.make n) in
      let h = Ftcsn.Transfer.harden ~eps:0.1 ~eps':0.05 net in
      Network.size h.Ftcsn.Transfer.network
      = Network.size net * h.Ftcsn.Transfer.size_factor)

let prop_pipeline_ws_matches_trial =
  QCheck2.Test.make
    ~name:"Pipeline.trial_ws = Pipeline.trial on shared substreams" ~count:15
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 1 20))
    (fun (seed, pct) ->
      let ft = build_small () in
      let net = ft.Ft_network.net in
      let eps = float_of_int pct /. 100.0 in
      let ws = Pipeline.create_ws net in
      let root = Rng.create ~seed in
      let ok = ref true in
      (* the workspace is reused across trials, the legacy path allocates
         afresh; identical substreams must give identical verdicts *)
      for i = 0 to 9 do
        let legacy = Pipeline.trial ~rng:(Rng.substream root i) ~eps net in
        let ws_v = Pipeline.trial_ws ws ~rng:(Rng.substream root i) ~eps in
        if legacy <> ws_v then ok := false
      done;
      !ok)

let prop_pipeline_survival_jobs_identical =
  QCheck2.Test.make
    ~name:"Pipeline.survival: workspace engine = legacy loop, every jobs"
    ~count:5
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let ft = build_small () in
      let net = ft.Ft_network.net in
      let trials = 60 in
      let eps = 0.05 in
      let run jobs =
        let rng = Rng.create ~seed in
        Pipeline.survival ~jobs ~trials ~rng ~eps net
      in
      (* reference: the legacy allocating trial on the same substreams *)
      let legacy =
        let rng = Rng.create ~seed in
        Ftcsn_reliability.Monte_carlo.estimate ~trials ~rng (fun sub ->
            Pipeline.trial ~rng:sub ~eps net = Pipeline.Survived)
      in
      let e1 = run 1 in
      run 2 = e1 && run 4 = e1 && legacy = e1)

let core_props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_ft_network_predictions;
      prop_fault_strip_soundness;
      prop_grid_degrees;
      prop_tree_paths_invariants;
      prop_transfer_size_accounting;
      prop_pipeline_ws_matches_trial;
      prop_pipeline_survival_jobs_identical;
    ]

let () =
  Alcotest.run "ftcsn_core"
    [
      ( "directed-grid",
        [
          Alcotest.test_case "counts" `Quick test_grid_counts;
          Alcotest.test_case "fig4 structure" `Quick test_grid_structure_fig4;
          Alcotest.test_case "single row" `Quick test_grid_single_row;
          Alcotest.test_case "splice" `Quick test_grid_splice;
          Alcotest.test_case "render" `Quick test_grid_render;
          Alcotest.test_case "column cut" `Quick test_grid_column_cut;
        ] );
      ( "ft-params",
        [
          Alcotest.test_case "paper" `Quick test_params_paper;
          Alcotest.test_case "scaled" `Quick test_params_scaled_and_validation;
          Alcotest.test_case "predictions" `Quick test_params_predictions_match_build;
        ] );
      ( "ft-network",
        [
          Alcotest.test_case "structure" `Quick test_ft_structure;
          Alcotest.test_case "grid identification" `Quick test_ft_grid_identification;
          Alcotest.test_case "terminal fans" `Quick test_ft_input_fanout;
          Alcotest.test_case "pairs connected" `Quick test_ft_every_pair_connected;
          Alcotest.test_case "stage census" `Quick test_ft_stage_census;
          Alcotest.test_case "fault-free routing" `Quick
            test_ft_fault_free_routes_everything;
          Alcotest.test_case "param validation" `Quick test_ft_rejects_bad_params;
        ] );
      ( "fault-strip",
        [
          Alcotest.test_case "no faults" `Quick test_strip_no_faults;
          Alcotest.test_case "marks endpoints" `Quick test_strip_marks_faulty_endpoints;
          Alcotest.test_case "radius 1" `Quick test_strip_radius_one;
          Alcotest.test_case "terminals stay" `Quick test_strip_terminals_stay_allowed;
          Alcotest.test_case "detects short" `Quick test_strip_detects_short;
        ] );
      ( "majority-access",
        [
          Alcotest.test_case "clean" `Quick test_majority_access_clean;
          Alcotest.test_case "busy input" `Quick test_majority_access_busy_input_skipped;
          Alcotest.test_case "blocked junction" `Quick test_majority_access_with_block;
          Alcotest.test_case "lemma 3 grid access" `Quick test_grid_access_lemma3;
        ] );
      ( "tree-paths",
        [
          Alcotest.test_case "star" `Quick test_tree_paths_star;
          Alcotest.test_case "two cherries" `Quick test_tree_paths_two_cherries;
          Alcotest.test_case "lemma 1 bound" `Quick test_tree_paths_lemma1_bound_random;
          Alcotest.test_case "contract stretches" `Quick test_contract_stretches;
          Alcotest.test_case "contract branching" `Quick test_contract_preserves_branching;
          Alcotest.test_case "figure gadgets" `Quick test_fig_gadgets;
          Alcotest.test_case "validation" `Quick test_of_edges_validation;
        ] );
      ( "lower-bound",
        [
          Alcotest.test_case "defaults" `Quick test_lower_bound_defaults;
          Alcotest.test_case "good inputs" `Quick test_good_inputs_spread;
          Alcotest.test_case "zones chain" `Quick test_zones_on_chain;
          Alcotest.test_case "zones ft" `Quick test_zones_on_ft_network;
          Alcotest.test_case "certificate validity" `Quick
            test_analyse_depth_certificate_validity;
          Alcotest.test_case "lemma2 crossbar" `Quick test_lemma2_certificate_crossbar;
          Alcotest.test_case "lemma2 ft sparse" `Quick test_lemma2_certificate_ft_sparse;
          Alcotest.test_case "lemma2 benes" `Quick test_lemma2_certificate_benes;
        ] );
      ( "paper-bounds",
        [ Alcotest.test_case "regimes" `Quick test_paper_bounds_regimes ] );
      ( "majority-probe",
        [
          Alcotest.test_case "ft clean" `Quick test_majority_probe_ft_clean;
          Alcotest.test_case "funnel violation" `Quick
            test_majority_probe_detects_violation;
          Alcotest.test_case "lemma6 pipeline" `Quick test_lemma6_probe_in_pipeline;
        ] );
      ( "transfer",
        [
          Alcotest.test_case "accounting" `Quick test_transfer_harden_accounting;
          Alcotest.test_case "logical roundtrip" `Quick test_transfer_logical_roundtrip;
          Alcotest.test_case "improves survival" `Quick test_transfer_improves_survival;
          Alcotest.test_case "delta shift" `Quick test_transfer_delta_shift;
        ] );
      ( "ft-session",
        [
          Alcotest.test_case "no hazard" `Quick test_session_no_hazard_is_clean;
          Alcotest.test_case "hazard accumulates" `Quick test_session_hazard_accumulates;
          Alcotest.test_case "catastrophe" `Quick
            test_session_catastrophe_under_heavy_hazard;
          Alcotest.test_case "mttd ordering" `Slow test_session_mttd_ordering;
          Alcotest.test_case "mttd monotone" `Slow
            test_session_mttd_monotone_in_hazard;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "no faults" `Quick test_pipeline_no_faults_survive;
          Alcotest.test_case "total failure" `Quick test_pipeline_total_failure;
          Alcotest.test_case "monotone" `Quick test_pipeline_survival_monotone;
          Alcotest.test_case "ft beats benes" `Quick test_pipeline_ft_beats_benes;
          Alcotest.test_case "probe presets" `Quick test_pipeline_probe_presets;
          Alcotest.test_case "survival curve = independent runs" `Quick
            test_survival_curve_matches_independent;
        ] );
      ( "ft-route",
        [
          Alcotest.test_case "all perms" `Quick test_ft_route_fault_free_all_perms;
          Alcotest.test_case "paths valid" `Quick test_ft_route_paths_valid;
          Alcotest.test_case "respects allowed" `Quick test_ft_route_respects_allowed;
          Alcotest.test_case "matches bfs under faults" `Quick
            test_ft_route_under_faults_matches_bfs;
        ] );
      ("properties", core_props);
    ]
