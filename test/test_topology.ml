(* Tests for the topology registry: the spec mini-language (parse /
   to_string round-trips, normalized error messages), registry lookup,
   and registry-wide structural properties — every registered family
   must yield a valid acyclic network with distinct terminals. *)

module Topology = Ftcsn_networks.Topology
module Network = Ftcsn_networks.Network
module Rng = Ftcsn_prng.Rng

(* the paper's family registers from the core library *)
let () = Ftcsn.Ft_topology.install ()

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let check_contains name msg needle =
  if not (contains msg needle) then
    Alcotest.failf "%s: expected %S in %S" name needle msg

let spec_t =
  Alcotest.testable
    (fun fmt (s : Topology.spec) ->
      Format.fprintf fmt "%S" (Topology.to_string s))
    (fun (a : Topology.spec) b -> a = b)

let spec_result = Alcotest.(result spec_t string)

(* ---------- spec mini-language ---------- *)

let test_parse_basic () =
  Alcotest.check spec_result "bare int is n"
    (Ok { Topology.family = "benes"; args = [ ("n", "16") ] })
    (Topology.parse "benes:16");
  Alcotest.check spec_result "key=value plus flag"
    (Ok { Topology.family = "clos"; args = [ ("n", "64"); ("rearr", "") ] })
    (Topology.parse "clos:n=64:rearr");
  Alcotest.check spec_result "several parameters"
    (Ok
       {
         Topology.family = "multibutterfly";
         args = [ ("n", "32"); ("degree", "4") ];
       })
    (Topology.parse "multibutterfly:n=32:degree=4");
  Alcotest.check spec_result "bare family"
    (Ok { Topology.family = "ft"; args = [] })
    (Topology.parse "ft")

let test_parse_errors () =
  let err name s frag =
    match Topology.parse s with
    | Ok _ -> Alcotest.failf "%s: parse %S should fail" name s
    | Error msg -> check_contains name msg frag
  in
  err "empty" "" "empty network spec";
  err "empty family" ":16" "empty family";
  err "empty component" "benes::16" "empty component";
  err "duplicate key" "benes:n=4:n=8" "duplicate parameter \"n\"";
  err "duplicate via shorthand" "benes:4:n=8" "duplicate parameter \"n\"";
  err "empty parameter name" "benes:=4" "empty parameter name"

let test_to_string_canonical () =
  (* these strings are their own canonical rendering *)
  List.iter
    (fun s ->
      match Topology.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok spec ->
          Alcotest.(check string) ("canonical " ^ s) s (Topology.to_string spec))
    [
      "benes";
      "benes:16";
      "clos:64:rearr";
      "multibutterfly:32:degree=4";
      "ft:8:gamma=3";
    ];
  (* non-canonical input still round-trips through to_string *)
  match Topology.parse "clos:n=64:rearr" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok spec ->
      Alcotest.check spec_result "reparse of to_string" (Ok spec)
        (Topology.parse (Topology.to_string spec))

let spec_gen =
  let open QCheck2.Gen in
  let word = oneofl [ "benes"; "clos"; "zeta"; "x-y"; "ft" ] in
  let key = oneofl [ "degree"; "k"; "levels"; "rearr"; "grid-stages" ] in
  let arg =
    oneof
      [
        map (fun v -> ("n", string_of_int v)) (int_range 0 99);
        map2 (fun k v -> (k, string_of_int v)) key (int_range 0 99);
        map (fun k -> (k, "")) key;
      ]
  in
  map2
    (fun family args ->
      let seen = Hashtbl.create 8 in
      let args =
        List.filter
          (fun (k, _) ->
            if Hashtbl.mem seen k then false
            else (
              Hashtbl.add seen k ();
              true))
          args
      in
      { Topology.family; args })
    word
    (list_size (int_range 0 4) arg)

let prop_spec_round_trip =
  QCheck2.Test.make ~name:"parse (to_string spec) = Ok spec" ~count:300 spec_gen
    (fun spec -> Topology.parse (Topology.to_string spec) = Ok spec)

(* ---------- build-time diagnostics ---------- *)

let check_build_error name spec frag =
  match Topology.build_string ~n:8 ~rng:(Rng.create ~seed:3) spec with
  | Ok _ -> Alcotest.failf "%s: building %S should fail" name spec
  | Error msg -> check_contains name msg frag

let test_build_errors () =
  check_build_error "unknown family" "nosuch:8"
    "unknown network family \"nosuch\" (known:";
  check_build_error "unknown parameter" "benes:wings=3"
    "unknown parameter \"wings\" for family benes";
  check_build_error "non-integer value" "multibutterfly:degree=fat"
    "\"fat\" is not an integer";
  check_build_error "flag with value" "clos:rearr=2"
    "is a flag and takes no value";
  check_build_error "pow2 refused" "omega:12" "power of two";
  check_build_error "n too small" "benes:0" "n must be an integer >= 1"

let test_build_needs_n () =
  match Topology.build ~rng:(Rng.create ~seed:3)
          { Topology.family = "benes"; args = [] }
  with
  | Ok _ -> Alcotest.fail "build without n should fail"
  | Error msg -> check_contains "no n" msg "no terminal count"

let test_build_reports_rounding () =
  match Topology.build_string ~n:5 ~rng:(Rng.create ~seed:3) "benes" with
  | Error e -> Alcotest.failf "benes:5: %s" e
  | Ok b ->
      Alcotest.(check int) "requested" 5 b.Topology.n_requested;
      Alcotest.(check int) "effective" 8 b.Topology.n_effective;
      Alcotest.(check int) "matches the network" (Network.n_inputs b.Topology.net)
        b.Topology.n_effective

(* ---------- registry ---------- *)

let test_lookup_aliases () =
  List.iter
    (fun (alias, canonical) ->
      match Topology.find alias with
      | Some g -> Alcotest.(check string) alias canonical g.Topology.name
      | None -> Alcotest.failf "alias %s missing" alias)
    [
      ("valiant", "valiant-sc");
      ("bradley", "butterfly-pair");
      ("recursive", "recursive-nb");
      ("paper", "ft");
    ]

let test_registry_contents () =
  let names = Topology.names () in
  Alcotest.(check bool) "sorted" true (names = List.sort compare names);
  Alcotest.(check bool) "at least 12 families" true (List.length names >= 12);
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " registered") true (List.mem f names))
    [
      "banyan"; "benes"; "butterfly"; "butterfly-pair"; "cantor"; "clos";
      "crossbar"; "delta"; "ft"; "multibutterfly"; "multistage"; "omega";
      "recursive-nb"; "valiant-sc";
    ]

let test_register_duplicate_rejected () =
  match Topology.find "benes" with
  | None -> Alcotest.fail "benes missing"
  | Some g ->
      Alcotest.check_raises "duplicate registration"
        (Invalid_argument
           "Topology.register: family \"benes\" already registered")
        (fun () -> Topology.register g)

(* ---------- registry-wide structural properties ---------- *)

let distinct arr =
  let l = Array.to_list arr in
  List.length l = List.length (List.sort_uniq compare l)

let prop_every_family_builds =
  QCheck2.Test.make
    ~name:"every registered family builds valid acyclic nets at small n"
    ~count:30
    QCheck2.Gen.(pair (int_range 2 4) int)
    (fun (logn, seed) ->
      let n = 1 lsl logn in
      List.for_all
        (fun (g : Topology.gen) ->
          match
            Topology.build ~n ~rng:(Rng.create ~seed)
              { Topology.family = g.Topology.name; args = [] }
          with
          | Error _ -> false
          | Ok b ->
              let net = b.Topology.net in
              Network.is_acyclic net
              && b.Topology.n_effective = Network.n_inputs net
              && Network.n_inputs net >= 1
              && Network.n_outputs net >= 1
              && Network.size net >= 1
              && distinct net.Network.inputs
              && distinct net.Network.outputs)
        (Topology.all ()))

let prop_off_grid_n =
  QCheck2.Test.make
    ~name:"exact power-of-two families refuse an off-grid n, the rest round"
    ~count:30
    QCheck2.Gen.(pair (int_range 3 20) int)
    (fun (n, seed) ->
      QCheck2.assume (n land (n - 1) <> 0);
      List.for_all
        (fun (g : Topology.gen) ->
          match
            Topology.build ~n ~rng:(Rng.create ~seed)
              { Topology.family = g.Topology.name; args = [] }
          with
          | Error msg -> g.Topology.exact_pow2 && contains msg "power of two"
          | Ok b ->
              (not g.Topology.exact_pow2)
              && b.Topology.n_effective >= n - 1)
        (Topology.all ()))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_spec_round_trip; prop_every_family_builds; prop_off_grid_n ]

let () =
  Alcotest.run "ftcsn_topology"
    [
      ( "spec",
        [
          Alcotest.test_case "parse basics" `Quick test_parse_basic;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "canonical rendering" `Quick
            test_to_string_canonical;
        ] );
      ( "build",
        [
          Alcotest.test_case "diagnostics" `Quick test_build_errors;
          Alcotest.test_case "needs n" `Quick test_build_needs_n;
          Alcotest.test_case "reports rounding" `Quick
            test_build_reports_rounding;
        ] );
      ( "registry",
        [
          Alcotest.test_case "aliases" `Quick test_lookup_aliases;
          Alcotest.test_case "contents" `Quick test_registry_contents;
          Alcotest.test_case "duplicate rejected" `Quick
            test_register_duplicate_rejected;
        ] );
      ("properties", props);
    ]
