(* Tests for the live-serving subsystem (lib/serve): Proto codec
   round-trips (qcheck) and malformed-line diagnostics, admission
   policies, engine conservation laws, the replay-determinism pin
   (byte-identical response stream across runs, shard counts and
   engines), and the soak guard (steady-state allocation per decision
   stays flat between the first and last window). *)

module Rng = Ftcsn_prng.Rng
module Json = Ftcsn_obs.Json
module Benes = Ftcsn_networks.Benes
module Shard = Ftcsn_des.Shard
module Proto = Ftcsn_serve.Proto
module Admission = Ftcsn_serve.Admission
module Engine = Ftcsn_serve.Engine
module Loop = Ftcsn_serve.Loop

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---------- Proto: generators ---------- *)

let gen_id =
  QCheck2.Gen.(
    map
      (fun (c, s) -> Printf.sprintf "%c%s" c s)
      (pair (char_range 'a' 'z') (string_size ~gen:printable (0 -- 12))))

(* finite, non-NaN floats that exercise the shortest-round-trip printer *)
let gen_time = QCheck2.Gen.(map (fun f -> Float.abs f) pfloat)
let gen_opt g = QCheck2.Gen.(opt g)

let gen_request =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun (id, (src, dst, hold, at)) ->
            Proto.Call { id; src; dst; hold; at })
          (pair gen_id
             (quad
                (gen_opt (0 -- 1000))
                (gen_opt (0 -- 1000))
                (gen_opt (map (fun f -> 0.001 +. Float.abs f) pfloat))
                (gen_opt gen_time)));
        map (fun (id, at) -> Proto.Hangup { id; at }) (pair gen_id (gen_opt gen_time));
        map (fun at -> Proto.Metrics { at }) (gen_opt gen_time);
      ])

let gen_response =
  QCheck2.Gen.(
    oneof
      [
        map
          (fun (id, t, path_len) -> Proto.Accept { id; t; path_len })
          (triple gen_id gen_time (0 -- 64));
        map
          (fun (id, t, full) ->
            Proto.Block
              { id; t; reason = (if full then Proto.Full else Proto.No_path) })
          (triple gen_id gen_time bool);
        map (fun (id, t) -> Proto.Overload { id; t }) (pair gen_id gen_time);
        map
          (fun (id, t, path_len) -> Proto.Rerouted { id; t; path_len })
          (triple gen_id gen_time (0 -- 64));
        map (fun (id, t) -> Proto.Dropped { id; t }) (pair gen_id gen_time);
        map (fun (id, t) -> Proto.Released { id; t }) (pair gen_id gen_time);
        map (fun t -> Proto.Catastrophe { t }) gen_time;
        map
          (fun (t, k) ->
            Proto.Snapshot
              { t; data = Json.Obj [ ("k", Json.Int k) ] })
          (pair gen_time (0 -- 1000));
        map
          (fun (id, msg) -> Proto.Error { id; message = msg })
          (pair (gen_opt gen_id) (string_size ~gen:printable (0 -- 30)));
      ])

let qcheck_request_roundtrip =
  QCheck2.Test.make ~name:"request_to_string |> parse_request is identity"
    ~count:500 gen_request (fun req ->
      match Proto.parse_request (Proto.request_to_string req) with
      | Ok req' -> req' = req
      | Error (_, msg) -> QCheck2.Test.fail_reportf "parse failed: %s" msg)

let qcheck_response_roundtrip =
  QCheck2.Test.make ~name:"response_to_string |> response_of_string is identity"
    ~count:500 gen_response (fun resp ->
      match Proto.response_of_string (Proto.response_to_string resp) with
      | Ok resp' -> resp' = resp
      | Error msg -> QCheck2.Test.fail_reportf "parse failed: %s" msg)

(* every response line is one complete JSON object — what the CI smoke
   greps and any JSON-lines consumer assume *)
let qcheck_response_is_json =
  QCheck2.Test.make ~name:"every response line parses as one JSON object"
    ~count:500 gen_response (fun resp ->
      match Json.parse (Proto.response_to_string resp) with
      | Ok (Json.Obj _) -> true
      | _ -> false)

(* ---------- Proto: malformed lines ---------- *)

let test_malformed_lines () =
  let expect_err line needle =
    match Proto.parse_request line with
    | Ok _ -> Alcotest.failf "expected parse failure on %S" line
    | Error (_, msg) ->
        let found =
          let n = String.length needle and m = String.length msg in
          let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
          go 0
        in
        checkb (Printf.sprintf "%S diagnoses %S (got %S)" line needle msg)
          true found
  in
  expect_err "" "bad json";
  expect_err "{not json" "bad json";
  expect_err {|42|} {|"req"|};
  expect_err {|{"id":"x"}|} {|"req"|};
  expect_err {|{"req":"dance","id":"x"}|} "unknown request type";
  expect_err {|{"req":"call"}|} {|"id"|};
  expect_err {|{"req":"call","id":""}|} {|"id"|};
  expect_err {|{"req":"hangup"}|} {|"id"|};
  expect_err {|{"req":"call","id":"x","in":"zero"}|} {|"in"|};
  expect_err {|{"req":"call","id":"x","hold":-1}|} {|"hold"|};
  expect_err {|{"req":"call","id":"x","hold":"long"}|} {|"hold"|};
  expect_err {|{"req":"call","id":"x","at":-0.5}|} {|"at"|};
  expect_err {|{"req":"metrics","at":"never"}|} {|"at"|};
  (* the id is recovered when the line carries one, so the error reply
     can echo it back to the client *)
  (match Proto.parse_request {|{"req":"call","id":"c9","hold":-1}|} with
  | Error (Some "c9", _) -> ()
  | Error (id, _) ->
      Alcotest.failf "expected recovered id c9, got %s"
        (Option.value id ~default:"<none>")
  | Ok _ -> Alcotest.fail "expected failure");
  (* and the normalized error reply is itself valid JSON *)
  let reply =
    Proto.response_to_string (Proto.error_response ~id:(Some "c9") "boom")
  in
  match Json.parse reply with
  | Ok (Json.Obj fields) ->
      checkb "tagged as error" true
        (List.assoc_opt "resp" fields = Some (Json.String "error"))
  | _ -> Alcotest.fail "error reply is not a JSON object"

(* ---------- Admission ---------- *)

let test_admission () =
  let d p ~occupancy ~queue_depth = Admission.decide p ~occupancy ~queue_depth in
  checkb "unlimited admits" true
    (d Admission.unlimited ~occupancy:1.0 ~queue_depth:max_int = Admission.Admit);
  let ml = Admission.max_load 0.5 in
  checkb "below bound admits" true (d ml ~occupancy:0.49 ~queue_depth:0 = Admission.Admit);
  checkb "at bound sheds" true (d ml ~occupancy:0.5 ~queue_depth:0 = Admission.Shed);
  let ql = Admission.queue_limit 4 in
  checkb "short queue admits" true (d ql ~occupancy:1.0 ~queue_depth:3 = Admission.Admit);
  checkb "full queue sheds" true (d ql ~occupancy:0.0 ~queue_depth:4 = Admission.Shed);
  let both = Admission.combine [ ml; ql ] in
  checkb "combine sheds if any" true
    (d both ~occupancy:0.9 ~queue_depth:0 = Admission.Shed);
  checkb "combine admits if all" true
    (d both ~occupancy:0.1 ~queue_depth:1 = Admission.Admit);
  checks "combined name" "max-load<0.5+queue<4" (Admission.name both);
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Admission.max_load 0.0);
  raises (fun () -> Admission.queue_limit 0)

(* ---------- replay harness ---------- *)

let benes n = Benes.create n

(* a scripted request mix: calls (some with explicit endpoints, holds
   and timestamps), hangups (live, unknown and repeated), bad lines *)
let script ~calls =
  let b = Buffer.create (calls * 48) in
  for i = 0 to calls - 1 do
    let id = i mod 7 in
    if id = 5 then
      Buffer.add_string b
        (Printf.sprintf {|{"req":"hangup","id":"c%d"}|} (i - 3))
    else if id = 6 then Buffer.add_string b {|{"req":"oops"}|}
    else begin
      Buffer.add_string b
        (Printf.sprintf {|{"req":"call","id":"c%d","at":%.4f|} i
           (float_of_int i *. 0.05));
      if id = 1 then Buffer.add_string b {|,"hold":0.75|};
      if id = 2 then Buffer.add_string b {|,"in":1|};
      Buffer.add_string b "}"
    end;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let with_script text f =
  let path = Filename.temp_file "ftcsn_serve" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic))

(* run the full reactor stack over a script and return the response
   stream as one string plus the engine for post-hoc inspection *)
let run_replay ?(engine = `Bfs) ?(shards = 1) ?(seed = 11) ?admission
    ?(mtbf = 40.0) ~calls net_gen =
  let net = net_gen () in
  let out = Buffer.create 4096 in
  let emit r =
    Buffer.add_string out (Proto.response_to_string r);
    Buffer.add_char out '\n'
  in
  let eng =
    Engine.create ~engine ~mtbf ~mttr:2.0 ~shards ~emit
      ~rng:(Rng.create ~seed) net
  in
  let admission = Option.value admission ~default:Admission.unlimited in
  let reason =
    with_script (script ~calls) (fun ic ->
        Loop.replay ~engine:eng ~admission ~emit ic)
  in
  (Buffer.contents out, eng, reason)

let test_replay_deterministic () =
  (* byte-identical across runs, shard counts and routing engines; the
     engines may pick different equal-length paths, so cross-engine we
     pin only the verdict stream *)
  let net () = benes 64 in
  let regions = Shard.regions (net ()) in
  List.iter
    (fun engine ->
      let ref_out, _, _ = run_replay ~engine ~calls:600 net in
      let again, _, _ = run_replay ~engine ~calls:600 net in
      checks "identical across runs" ref_out again;
      List.iter
        (fun shards ->
          let sharded, _, _ = run_replay ~engine ~shards ~calls:600 net in
          checks
            (Printf.sprintf "identical at shards=%d" shards)
            ref_out sharded)
        [ 2; min 5 regions ])
    [ `Bfs; `Staged; `Loop ];
  (* verdict (accept/block per call id) agrees across engines *)
  let verdicts out =
    String.split_on_char '\n' out
    |> List.filter_map (fun l ->
           if l = "" then None
           else
             match Proto.response_of_string l with
             | Ok (Proto.Accept { id; _ }) -> Some (id ^ ":a")
             | Ok (Proto.Block { id; _ }) -> Some (id ^ ":b")
             | _ -> None)
  in
  let bfs, _, _ = run_replay ~engine:`Bfs ~calls:600 net in
  let loop, _, _ = run_replay ~engine:`Loop ~calls:600 net in
  Alcotest.(check (list string))
    "engines agree on accept vs block" (verdicts bfs) (verdicts loop)

let test_conservation_and_metrics () =
  let out, eng, _ =
    run_replay ~engine:`Loop ~calls:1200
      ~admission:(Admission.max_load 0.25)
      (fun () -> benes 32)
  in
  let j = Engine.metrics_json eng in
  let geti k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some v -> v
    | None -> Alcotest.failf "metrics field %s missing" k
  in
  let offered = geti "offered"
  and accepted = geti "accepted"
  and blocked = geti "blocked"
  and overload = geti "overload" in
  checki "offered = accepted + blocked + overload" offered
    (accepted + blocked + overload);
  checki "engine decisions = offered" (Engine.decisions eng) offered;
  checkb "admission actually shed" true (overload > 0);
  (* every response line in the stream is valid JSON and the accept
     count in the stream matches the counter *)
  let accepts = ref 0 in
  String.split_on_char '\n' out
  |> List.iter (fun l ->
         if l <> "" then
           match Proto.response_of_string l with
           | Ok (Proto.Accept _) -> incr accepts
           | Ok _ -> ()
           | Error e -> Alcotest.failf "unparseable response %S: %s" l e);
  checki "accept lines = accepted counter" accepted !accepts;
  (* releases/drops can't exceed what was ever placed *)
  checkb "released + dropped <= accepted" true
    (geti "released" + geti "dropped" <= accepted);
  (* the histogram saw every call decision that reached routing *)
  match Json.member "decision_latency_ns" j with
  | Some h ->
      let cnt = Option.bind (Json.member "count" h) Json.to_int in
      checkb "latency histogram populated" true (cnt <> None && cnt <> Some 0)
  | None -> Alcotest.fail "decision_latency_ns missing"

let test_explicit_endpoints_and_hangups () =
  let net = benes 16 in
  let out = Buffer.create 256 in
  let emit r =
    Buffer.add_string out (Proto.response_to_string r);
    Buffer.add_char out '\n'
  in
  let eng = Engine.create ~emit ~rng:(Rng.create ~seed:3) net in
  let handle l =
    match Proto.parse_request l with
    | Ok r -> Engine.handle eng r
    | Error (_, m) -> Alcotest.failf "bad test line %S: %s" l m
  in
  handle {|{"req":"call","id":"a","in":0,"out":0}|};
  handle {|{"req":"call","id":"a","in":1,"out":1}|} (* duplicate id *);
  handle {|{"req":"call","id":"b","in":0,"out":1}|} (* input 0 busy *);
  handle {|{"req":"call","id":"c","in":99,"out":1}|} (* out of range *);
  handle {|{"req":"hangup","id":"a"}|};
  handle {|{"req":"hangup","id":"a"}|} (* now unknown *);
  handle {|{"req":"call","id":"b2","in":0,"out":1}|} (* 0 idle again *);
  let lines =
    String.split_on_char '\n' (Buffer.contents out)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l -> Result.get_ok (Proto.response_of_string l))
  in
  (match lines with
  | [
   Proto.Accept { id = "a"; _ };
   Proto.Error { id = Some "a"; _ };
   Proto.Block { id = "b"; reason = Proto.Full; _ };
   Proto.Error { id = Some "c"; _ };
   Proto.Released { id = "a"; _ };
   Proto.Error { id = Some "a"; _ };
   Proto.Accept { id = "b2"; _ };
  ] ->
      ()
  | _ ->
      Alcotest.failf "unexpected response sequence:\n%s" (Buffer.contents out));
  checki "two live placements happened, one released" 1 (Engine.live_calls eng)

(* ---------- soak guard ---------- *)

(* minor words per decision must stay flat between the first and last
   10k-decision window of a --calls-bounded replay: the grow-once
   buffers and the hashtable reach steady state and nothing on the
   failure/repair path accumulates allocation *)
let test_soak_allocation_flat () =
  let net = benes 64 in
  let emit r = ignore (Proto.response_to_string r) in
  let eng =
    Engine.create ~engine:`Loop ~mtbf:20.0 ~mttr:1.0 ~emit
      ~rng:(Rng.create ~seed:9) net
  in
  let admission = Admission.unlimited in
  let window = 10_000 in
  let total = 40_000 in
  with_script (script ~calls:(total * 7 / 4)) (fun ic ->
      let words_for bound =
        let w0 = Gc.minor_words () in
        let _ = Loop.replay ~engine:eng ~admission ~emit ~max_calls:bound ic in
        Gc.minor_words () -. w0
      in
      let first = words_for window in
      let _middle = words_for (total - window) in
      let last = words_for total in
      checki "first window decided 10k" window (min window (Engine.decisions eng));
      let per_first = first /. float_of_int window
      and per_last = last /. float_of_int window in
      (* flat: the warm window can only be cheaper, plus headroom for
         GC noise; a leaking bookkeeping path shows up as a multiple *)
      checkb
        (Printf.sprintf
           "minor words/decision flat (first %.0f, last %.0f)" per_first
           per_last)
        true
        (per_last <= (per_first *. 1.25) +. 16.0))

(* ---------- runner ---------- *)

let () =
  Alcotest.run "ftcsn_serve"
    [
      ( "proto",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_request_roundtrip;
            qcheck_response_roundtrip;
            qcheck_response_is_json;
          ]
        @ [ Alcotest.test_case "malformed lines" `Quick test_malformed_lines ]
      );
      ( "admission",
        [ Alcotest.test_case "policies" `Quick test_admission ] );
      ( "engine",
        [
          Alcotest.test_case "replay determinism pin" `Quick
            test_replay_deterministic;
          Alcotest.test_case "conservation + metrics" `Quick
            test_conservation_and_metrics;
          Alcotest.test_case "endpoints, duplicates, hangups" `Quick
            test_explicit_endpoints_and_hangups;
        ] );
      ( "soak",
        [
          Alcotest.test_case "allocation flat across windows" `Slow
            test_soak_allocation_flat;
        ] );
    ]
