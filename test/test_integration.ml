(* Cross-module integration tests: full paper pipelines exercised
   end-to-end — substitution transfers, fault-injection + routing across
   network families, exact vs Monte-Carlo agreement on whole networks,
   and the §3 class inclusions. *)

module Network = Ftcsn_networks.Network
module Benes = Ftcsn_networks.Benes
module Crossbar = Ftcsn_networks.Crossbar
module Clos = Ftcsn_networks.Clos
module Butterfly = Ftcsn_networks.Butterfly
module Properties = Ftcsn_routing.Properties
module Fault = Ftcsn_reliability.Fault
module Survivor = Ftcsn_reliability.Survivor
module Sp_network = Ftcsn_reliability.Sp_network
module Substitution = Ftcsn_reliability.Substitution
module Digraph = Ftcsn_graph.Digraph
module Rng = Ftcsn_prng.Rng
module Ft_params = Ftcsn.Ft_params
module Ft_network = Ftcsn.Ft_network
module Pipeline = Ftcsn.Pipeline
module Fault_strip = Ftcsn.Fault_strip

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* §2 inclusion chain: nonblocking => rearrangeable => superconcentrator,
   exercised on concrete instances by the deciders *)
let test_class_inclusions_crossbar () =
  let net = Crossbar.square 3 in
  (match Properties.nonblocking_exhaustive ~max_states:100_000 net with
  | `Holds -> ()
  | _ -> Alcotest.fail "crossbar nonblocking");
  (match Properties.rearrangeable_exhaustive net with
  | `Holds -> ()
  | _ -> Alcotest.fail "nonblocking implies rearrangeable");
  match Properties.superconcentrator_exhaustive ~max_work:50_000 net with
  | `Holds -> ()
  | _ -> Alcotest.fail "rearrangeable implies superconcentrator"

let test_class_separation_examples () =
  (* Benes: rearrangeable but not nonblocking; butterfly: neither *)
  let benes = Benes.create 4 in
  (match Properties.rearrangeable_exhaustive benes with
  | `Holds -> ()
  | _ -> Alcotest.fail "Benes rearrangeable");
  (match Properties.nonblocking_exhaustive ~max_states:150_000 benes with
  | `Violated _ -> ()
  | `Holds -> Alcotest.fail "Benes is not strictly nonblocking"
  | `Budget_exceeded -> Alcotest.fail "budget");
  match Properties.rearrangeable_exhaustive (Butterfly.make 4) with
  | `Violated _ -> ()
  | _ -> Alcotest.fail "butterfly is not rearrangeable"

(* §3 edge substitution transfer: substituting an amplifier gadget into a
   Benes network keeps it routable and multiplies size by gadget size *)
let test_substitution_transfer_routability () =
  let benes = Benes.create 4 in
  let gadget = Sp_network.build (Sp_network.iterate_quad 1) in
  let sub = Substitution.substitute benes.Network.graph ~gadget in
  let net' =
    Network.make ~name:"benes-substituted" ~graph:sub.Substitution.graph
      ~inputs:(Array.map (fun v -> sub.Substitution.vertex_image.(v)) benes.Network.inputs)
      ~outputs:(Array.map (fun v -> sub.Substitution.vertex_image.(v)) benes.Network.outputs)
  in
  check "size multiplied" (4 * Network.size benes) (Network.size net');
  check "depth multiplied" (2 * Network.depth benes) (Network.depth net');
  match Properties.rearrangeable_exhaustive ~budget:2_000_000 net' with
  | `Holds -> ()
  | `Violated _ -> Alcotest.fail "substitution must preserve rearrangeability"
  | `Budget_exceeded -> Alcotest.fail "budget"

(* fault injection + survivor + routing, across families *)
let test_survivor_routing_consistency () =
  let rng = Rng.create ~seed:42 in
  let benes = Benes.create 8 in
  let g = benes.Network.graph in
  for _ = 1 to 20 do
    let pattern =
      Fault.sample rng ~eps_open:0.02 ~eps_close:0.02 ~m:(Digraph.edge_count g)
    in
    let strip = Fault_strip.strip benes pattern in
    (* any greedy route found through allowed vertices must avoid every
       faulty internal vertex *)
    let router = Ftcsn_routing.Greedy.create ~allowed:strip.Fault_strip.allowed benes in
    match
      Ftcsn_routing.Greedy.route router ~input:benes.Network.inputs.(0)
        ~output:benes.Network.outputs.(7)
    with
    | None -> ()
    | Some path ->
        List.iter
          (fun v ->
            if
              Ftcsn_util.Bitset.mem strip.Fault_strip.stripped v
              && not (List.mem v (Network.terminals benes))
            then Alcotest.fail "route through stripped vertex")
          path
  done

(* exact containment vs pipeline proxy on a tiny network: for a 1-edge
   network the (eps, delta) probability is exact *)
let test_exact_vs_pipeline_tiny () =
  let g = Digraph.of_edges ~n:2 [| (0, 1) |] in
  let net = Network.make ~name:"wire" ~graph:g ~inputs:[| 0 |] ~outputs:[| 1 |] in
  let eps = 0.2 in
  (* survival = the single switch is normal = 1 - 2 eps *)
  let rng = Rng.create ~seed:43 in
  let est =
    Pipeline.survival ~trials:4000 ~rng ~eps
      ~probe:
        {
          Pipeline.greedy_permutations = 1;
          exact_permutations = 0;
          exact_budget = 0;
          sc_probes = 0;
          majority_probes = 0;
        }
      net
  in
  let exact = 1.0 -. (2.0 *. eps) in
  checkb "within CI" true
    (est.Ftcsn_reliability.Monte_carlo.ci_low <= exact
    && exact <= est.Ftcsn_reliability.Monte_carlo.ci_high)

(* the FT construction's survivor still satisfies sampled
   superconcentration at moderate fault rates *)
let test_ft_survivor_superconcentrates () =
  let rng = Rng.create ~seed:44 in
  let ft = Ft_network.make ~rng (Ft_params.scaled ~u:2 ()) in
  let net = ft.Ft_network.net in
  let g = net.Network.graph in
  let ok = ref 0 in
  let trials = 15 in
  for _ = 1 to trials do
    let pattern =
      Fault.sample rng ~eps_open:0.005 ~eps_close:0.005 ~m:(Digraph.edge_count g)
    in
    let strip = Fault_strip.strip net pattern in
    if Fault_strip.healthy strip then begin
      let forbidden v = not (strip.Fault_strip.allowed v) in
      let all = Array.init (Network.n_inputs net) Fun.id in
      match
        Ftcsn_routing.Flow_route.connect ~forbidden net ~input_indices:all
          ~output_indices:all
      with
      | Some _ -> incr ok
      | None -> ()
    end
  done;
  checkb "most trials fully superconcentrate" true (!ok >= trials - 2)

(* §3 monotonicity: survival probability decreases as eps grows, across
   two families *)
let test_survival_monotone_families () =
  let rng = Rng.create ~seed:45 in
  let nets =
    [
      Benes.create 8;
      Clos.nonblocking ~n:8;
    ]
  in
  List.iter
    (fun net ->
      let at eps =
        (Pipeline.survival ~trials:30 ~rng ~eps ~probe:Pipeline.sc_probe_only net)
          .Ftcsn_reliability.Monte_carlo.mean
      in
      let s1 = at 0.001 and s2 = at 0.1 in
      checkb (net.Network.name ^ " monotone") true (s1 >= s2))
    nets

(* closed failures shorting terminals: measured rate roughly matches the
   exact enumeration on a 2-path toy *)
let test_short_rate_vs_exact () =
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  let net = Network.make ~name:"chain" ~graph:g ~inputs:[| 0 |] ~outputs:[| 2 |] in
  let eps = 0.25 in
  let exact =
    Ftcsn_reliability.Exact.probability g ~eps_open:eps ~eps_close:eps
      (fun pattern -> Survivor.shorted_by_closure g pattern ~a:0 ~b:2)
  in
  Alcotest.(check (float 1e-9)) "eps^2" (eps *. eps) exact;
  let rng = Rng.create ~seed:46 in
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let pattern = Fault.sample rng ~eps_open:eps ~eps_close:eps ~m:2 in
    let strip = Fault_strip.strip net pattern in
    if not (Ftcsn.Fault_strip.healthy strip) then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  checkb "measured matches" true (Float.abs (rate -. exact) < 0.01)

(* seeded builds are bit-reproducible across the whole stack *)
let test_reproducible_builds () =
  let build seed =
    let rng = Rng.create ~seed in
    let ft = Ft_network.make ~rng (Ft_params.scaled ~u:2 ()) in
    let g = ft.Ft_network.net.Network.graph in
    List.init (Digraph.edge_count g) (fun e -> Digraph.edge_endpoints g e)
  in
  checkb "same seed same network" true (build 7 = build 7);
  checkb "different seed differs" true (build 7 <> build 8)

let () =
  Alcotest.run "ftcsn_integration"
    [
      ( "class-hierarchy",
        [
          Alcotest.test_case "inclusions" `Quick test_class_inclusions_crossbar;
          Alcotest.test_case "separations" `Slow test_class_separation_examples;
        ] );
      ( "substitution",
        [
          Alcotest.test_case "transfer" `Slow test_substitution_transfer_routability;
        ] );
      ( "fault-pipeline",
        [
          Alcotest.test_case "survivor routing" `Quick test_survivor_routing_consistency;
          Alcotest.test_case "exact vs pipeline" `Quick test_exact_vs_pipeline_tiny;
          Alcotest.test_case "ft survivor sc" `Slow test_ft_survivor_superconcentrates;
          Alcotest.test_case "monotone families" `Slow test_survival_monotone_families;
          Alcotest.test_case "short rate" `Quick test_short_rate_vs_exact;
        ] );
      ( "reproducibility",
        [ Alcotest.test_case "seeded builds" `Quick test_reproducible_builds ] );
    ]
