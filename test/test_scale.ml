(* Tests for the million-switch scale layer: Dyn_conn incremental
   connectivity against batch oracles, Shard partitions, the
   single-shard bit-identity pin of the rewritten Traffic engine
   against the frozen Traffic_ref copy, and determinism/conservation of
   the sharded mode. *)

module Rng = Ftcsn_prng.Rng
module Digraph = Ftcsn_graph.Digraph
module Union_find = Ftcsn_util.Union_find
module Dyn_conn = Ftcsn_reliability.Dyn_conn
module Network = Ftcsn_networks.Network
module Topology = Ftcsn_networks.Topology
module Benes = Ftcsn_networks.Benes
module Shard = Ftcsn_des.Shard
module Traffic = Ftcsn_des.Traffic
module Traffic_ref = Ftcsn_des.Traffic_ref

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

let registry_nets ~n =
  List.filter_map
    (fun name ->
      match
        Topology.build_string ~rng:(Rng.create ~seed:3)
          (Printf.sprintf "%s:%d" name n)
      with
      | Ok b -> Some (name, b.Topology.net)
      | Error _ -> None)
    (Topology.names ())

(* ---------- Dyn_conn vs a from-scratch union-find oracle ---------- *)

(* the oracle is the engine's old terminals_shorted: a fresh union-find
   over the currently-closed edge set *)
let oracle_shorted g closed terminals =
  let uf = Union_find.create (Digraph.vertex_count g) in
  Array.iteri
    (fun e c ->
      if c then begin
        let u, v = Digraph.edge_endpoints g e in
        Union_find.union uf u v
      end)
    closed;
  let seen = Hashtbl.create 16 in
  List.exists
    (fun t ->
      let c = Union_find.find uf t in
      if Hashtbl.mem seen c then true
      else begin
        Hashtbl.add seen c ();
        false
      end)
    terminals

let oracle_connected g closed a b =
  let uf = Union_find.create (Digraph.vertex_count g) in
  Array.iteri
    (fun e c ->
      if c then begin
        let u, v = Digraph.edge_endpoints g e in
        Union_find.union uf u v
      end)
    closed;
  Union_find.equiv uf a b

(* random close/reopen sequence, checked against the oracle after every
   operation — exercises the epoch-rebuild path (reopen dirties, the
   next query flushes) on every registry family *)
let dyn_conn_agrees (name, net) seed ops =
  let g = net.Network.graph in
  let n = Digraph.vertex_count g and m = Digraph.edge_count g in
  let terminals = Network.terminals net in
  let rng = Rng.create ~seed in
  let dc = Dyn_conn.create ~terminals g in
  let closed = Array.make m false in
  let nclosed = ref 0 in
  for step = 1 to ops do
    (* bias towards closing so shorts actually appear *)
    let close = !nclosed = 0 || Rng.int rng 3 > 0 in
    if close then begin
      let e = Rng.int rng m in
      if not closed.(e) then begin
        closed.(e) <- true;
        incr nclosed;
        Dyn_conn.close dc e
      end
    end
    else begin
      (* reopen a uniformly-drawn closed edge *)
      let k = Rng.int rng !nclosed in
      let picked = ref (-1) and seen = ref 0 in
      Array.iteri
        (fun e c ->
          if c && !picked < 0 then begin
            if !seen = k then picked := e;
            incr seen
          end)
        closed;
      closed.(!picked) <- false;
      decr nclosed;
      Dyn_conn.reopen dc !picked
    end;
    let want = oracle_shorted g closed terminals in
    if Dyn_conn.terminals_shorted dc <> want then
      Alcotest.failf "%s: terminals_shorted diverged at step %d (seed %d)"
        name step seed;
    let a = Rng.int rng n and b = Rng.int rng n in
    if Dyn_conn.connected dc a b <> oracle_connected g closed a b then
      Alcotest.failf "%s: connected %d %d diverged at step %d (seed %d)"
        name a b step seed
  done;
  check (name ^ ": closed_count") !nclosed (Dyn_conn.closed_count dc)

let test_dyn_conn_oracle () =
  let nets = registry_nets ~n:8 in
  checkb "registry nonempty" true (nets <> []);
  List.iter
    (fun nn ->
      dyn_conn_agrees nn 11 120;
      dyn_conn_agrees nn 12 120)
    nets

let test_dyn_conn_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Dyn_conn = batch oracle (benes, random ops)"
       ~count:60
       QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 200))
       (fun (seed, ops) ->
         let net = Benes.create 8 in
         dyn_conn_agrees ("benes:8", net) seed ops;
         true))

(* ---------- Shard partitions ---------- *)

let test_shard_partition () =
  let nets = registry_nets ~n:8 in
  List.iter
    (fun (name, net) ->
      let m = Digraph.edge_count net.Network.graph in
      let r = Shard.regions net in
      checkb (name ^ ": regions >= 1") true (r >= 1);
      List.iter
        (fun shards ->
          if shards <= r then begin
            let b = Shard.partition net ~shards in
            check (name ^ ": bytes per edge") m (Bytes.length b);
            let seen = Array.make shards 0 in
            for e = 0 to m - 1 do
              let s = Shard.shard_of b e in
              checkb (name ^ ": id in range") true (s >= 0 && s < shards);
              seen.(s) <- seen.(s) + 1
            done;
            Array.iteri
              (fun s c ->
                checkb (Printf.sprintf "%s: shard %d nonempty" name s) true
                  (c > 0))
              seen
          end)
        [ 1; 2; 3; 5 ];
      (match Shard.partition net ~shards:(r + 1) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s: shards > regions should be refused" name);
      match Shard.partition net ~shards:0 with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "shards = 0 should be refused")
    nets

(* ---------- single-shard bit-identity against Traffic_ref ---------- *)

let test_bit_identity_run () =
  let nets = registry_nets ~n:16 in
  List.iter
    (fun (name, net) ->
      List.iter
        (fun (policy, seed) ->
          let config =
            Traffic.config ~load:4.0 ~mtbf:50.0 ~mttr:5.0 ~policy
              ~stop:(Traffic.Calls { warmup = 100; measured = 400 })
              ~batches:4 ()
          in
          let s_new = Traffic.run ~rng:(Rng.create ~seed) ~config net in
          let s_ref = Traffic_ref.run ~rng:(Rng.create ~seed) ~config net in
          if s_new <> s_ref then
            Alcotest.failf "%s: run diverged from Traffic_ref (seed %d)" name
              seed)
        [
          (Traffic.Route_greedy, 42);
          (Traffic.Route_greedy, 1337);
          (Traffic.Route_rearrange 20_000, 42);
        ])
    nets

let test_bit_identity_saturate () =
  let net = Benes.create 16 in
  let config =
    Traffic.config ~load:0.5 ~mtbf:30.0 ~mttr:3.0 ~saturate:true
      ~stop_on_degradation:true
      ~stop:(Traffic.Horizon 400.0) ()
  in
  List.iter
    (fun seed ->
      let s_new = Traffic.run ~rng:(Rng.create ~seed) ~config net in
      let s_ref = Traffic_ref.run ~rng:(Rng.create ~seed) ~config net in
      if s_new <> s_ref then
        Alcotest.failf "saturated run diverged from Traffic_ref (seed %d)"
          seed)
    [ 1; 2; 3; 4; 5 ]

let test_bit_identity_estimate () =
  let net = Benes.create 16 in
  let config =
    Traffic.config ~load:4.0 ~mtbf:50.0 ~mttr:5.0
      ~stop:(Traffic.Calls { warmup = 100; measured = 400 })
      ~batches:4 ()
  in
  let reference =
    Traffic_ref.estimate ~trials:6 ~rng:(Rng.create ~seed:9) ~config net
  in
  List.iter
    (fun jobs ->
      let s =
        Traffic.estimate ~jobs ~trials:6 ~rng:(Rng.create ~seed:9) ~config
          net
      in
      if s <> reference then
        Alcotest.failf "estimate diverged from Traffic_ref at jobs=%d" jobs)
    [ 1; 2; 4 ]

(* ---------- sharded mode: determinism and conservation ---------- *)

let shard_config ~shards ~shard_jobs =
  Traffic.config ~load:2.0 ~mtbf:20.0 ~mttr:2.0 ~shards ~shard_jobs
    ~stop:(Traffic.Horizon 150.0) ()

let test_sharded_deterministic () =
  let net = Benes.create 16 in
  let r = Shard.regions net in
  checkb "benes:16 has several regions" true (r >= 2);
  let shards = min 3 r in
  let baseline =
    Traffic.run ~rng:(Rng.create ~seed:77)
      ~config:(shard_config ~shards ~shard_jobs:1)
      net
  in
  (* repeatable, and identical at every shard_jobs *)
  List.iter
    (fun shard_jobs ->
      let s =
        Traffic.run ~rng:(Rng.create ~seed:77)
          ~config:(shard_config ~shards ~shard_jobs)
          net
      in
      if s <> baseline then
        Alcotest.failf "sharded run diverged at shard_jobs=%d" shard_jobs)
    [ 1; 2; 4 ];
  (* and under the Trials fan-out, at every jobs *)
  let est jobs =
    Traffic.estimate ~jobs ~trials:4 ~rng:(Rng.create ~seed:78)
      ~config:(shard_config ~shards ~shard_jobs:2)
      net
  in
  let e1 = est 1 in
  List.iter
    (fun jobs ->
      if est jobs <> e1 then
        Alcotest.failf "sharded estimate diverged at jobs=%d" jobs)
    [ 2; 4 ]

let test_sharded_conservation () =
  let net = Benes.create 16 in
  let shards = min 3 (Shard.regions net) in
  let s =
    Traffic.run ~rng:(Rng.create ~seed:5)
      ~config:(shard_config ~shards ~shard_jobs:2)
      net
  in
  checkb "events happened" true (s.Traffic.events > 0);
  checkb "failures happened" true (s.Traffic.failures > 0);
  checkb "repairs happened" true (s.Traffic.repairs > 0);
  check "offered conserved" s.Traffic.offered
    (s.Traffic.served + s.Traffic.blocked);
  checkb "blocked_full within blocked" true
    (s.Traffic.blocked_full <= s.Traffic.blocked);
  checkb "rerouted within dropped" true
    (s.Traffic.rerouted <= s.Traffic.dropped);
  checkb "repairs within failures" true
    (s.Traffic.repairs <= s.Traffic.failures);
  checkb "occupancy positive" true (s.Traffic.occupancy > 0.0);
  (* the run spans the full horizon unless a closed-failure catastrophe
     (a legitimate outcome at this failure intensity) ended it early *)
  checkb "sim time reached horizon or catastrophe" true
    (s.Traffic.sim_time = 150.0 || s.Traffic.catastrophe_at <> None)

let test_sharded_refusal () =
  let net = Benes.create 16 in
  let r = Shard.regions net in
  let config = shard_config ~shards:(r + 1) ~shard_jobs:1 in
  (match Traffic.run ~rng:(Rng.create ~seed:1) ~config net with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "shards > regions should be refused by run");
  match Traffic.config ~shards:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "config shards=0 should be refused"

let () =
  Alcotest.run "ftcsn_scale"
    [
      ( "dyn_conn",
        [
          Alcotest.test_case "oracle agreement on every family" `Quick
            test_dyn_conn_oracle;
          test_dyn_conn_qcheck;
        ] );
      ( "shard",
        [ Alcotest.test_case "partition properties" `Quick test_shard_partition ] );
      ( "bit identity",
        [
          Alcotest.test_case "run = Traffic_ref.run on every family" `Quick
            test_bit_identity_run;
          Alcotest.test_case "saturated degradation runs" `Quick
            test_bit_identity_saturate;
          Alcotest.test_case "estimate = Traffic_ref.estimate at every jobs"
            `Quick test_bit_identity_estimate;
        ] );
      ( "sharded mode",
        [
          Alcotest.test_case "deterministic at every shard_jobs/jobs" `Quick
            test_sharded_deterministic;
          Alcotest.test_case "conservation laws" `Quick
            test_sharded_conservation;
          Alcotest.test_case "refuses shards > regions" `Quick
            test_sharded_refusal;
        ] );
    ]
