(* Tests for the network constructions: crossbar, Clos, Benes (+ looping
   algorithm), butterfly, multibutterfly, Cantor, Valiant
   superconcentrator, and the recursive [P82] construction. *)

module Network = Ftcsn_networks.Network
module Crossbar = Ftcsn_networks.Crossbar
module Clos = Ftcsn_networks.Clos
module Benes = Ftcsn_networks.Benes
module Butterfly = Ftcsn_networks.Butterfly
module Multibutterfly = Ftcsn_networks.Multibutterfly
module Cantor = Ftcsn_networks.Cantor
module Valiant_sc = Ftcsn_networks.Valiant_sc
module Recursive_nb = Ftcsn_networks.Recursive_nb
module Delta = Ftcsn_networks.Delta
module Butterfly_pair = Ftcsn_networks.Butterfly_pair
module Digraph = Ftcsn_graph.Digraph
module Perm = Ftcsn_util.Perm
module Rng = Ftcsn_prng.Rng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let log2_exact n =
  let rec go k acc = if acc = n then k else go (k + 1) (acc * 2) in
  go 0 1

(* ---------- Network ---------- *)

let test_network_validation () =
  let g = Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  Alcotest.check_raises "duplicate terminal"
    (Invalid_argument "Network.make: duplicate terminal") (fun () ->
      ignore (Network.make ~name:"x" ~graph:g ~inputs:[| 0 |] ~outputs:[| 0 |]));
  Alcotest.check_raises "range"
    (Invalid_argument "Network.make: terminal out of range") (fun () ->
      ignore (Network.make ~name:"x" ~graph:g ~inputs:[| 7 |] ~outputs:[| 2 |]))

let test_network_reverse () =
  let net = Crossbar.square 3 in
  let rev = Network.reverse net in
  check "inputs swap" 3 (Network.n_inputs rev);
  check "size preserved" (Network.size net) (Network.size rev);
  check "depth preserved" (Network.depth net) (Network.depth rev);
  Alcotest.(check (array int)) "mirror inputs" net.Network.outputs rev.Network.inputs

(* ---------- Crossbar ---------- *)

let test_crossbar_counts () =
  let net = Crossbar.make ~n:3 ~m:5 () in
  check "size" 15 (Network.size net);
  check "depth" 1 (Network.depth net);
  check "inputs" 3 (Network.n_inputs net);
  check "outputs" 5 (Network.n_outputs net);
  checkb "acyclic" true (Network.is_acyclic net)

(* ---------- Clos ---------- *)

let test_clos_counts () =
  let p = { Clos.m = 3; k = 2; r = 2 } in
  let net = Clos.make p in
  check "terminals" 4 (Network.n_inputs net);
  (* 2rkm + mr^2 = 2*2*2*3 + 3*4 = 36 *)
  check "size" 36 (Network.size net);
  check "depth" 3 (Network.depth net);
  checkb "snb params" true (Clos.strictly_nonblocking_params p);
  checkb "rearr params" true (Clos.rearrangeable_params p);
  checkb "m=1 not rearr for k=2" false
    (Clos.rearrangeable_params { Clos.m = 1; k = 2; r = 2 })

let test_clos_presets () =
  let nb = Clos.nonblocking ~n:9 in
  check "nb terminals" 9 (Network.n_inputs nb);
  let re = Clos.rearrangeable ~n:9 in
  checkb "rearrangeable smaller" true (Network.size re < Network.size nb)

(* ---------- Clos routing (Slepian–Duguid) ---------- *)

let check_clos_routing built pi =
  let net = built.Clos.net in
  let paths = Clos.route built pi in
  let n = Array.length pi in
  check "one path per request" n (Array.length paths);
  let all = Array.to_list paths |> List.concat in
  check "vertex-disjoint" (List.length all)
    (List.length (List.sort_uniq compare all));
  Array.iteri
    (fun i path ->
      (match path with
      | first :: _ -> check "starts at input" net.Network.inputs.(i) first
      | [] -> Alcotest.fail "empty path");
      (match List.rev path with
      | last :: _ -> check "ends at output" net.Network.outputs.(pi.(i)) last
      | [] -> ());
      let rec edges = function
        | a :: (b :: _ as rest) ->
            let exists =
              Digraph.fold_out net.Network.graph a ~init:false
                ~f:(fun acc ~dst ~eid:_ -> acc || dst = b)
            in
            checkb "edge exists" true exists;
            edges rest
        | _ -> ()
      in
      edges path)
    paths

let test_clos_route_all_perms_small () =
  (* m = k = 2, r = 2: the tightest rearrangeable instance; every
     permutation of its 4 terminals must route *)
  let built = Clos.make_built { Clos.m = 2; k = 2; r = 2 } in
  Perm.iter_all 4 (fun pi -> check_clos_routing built (Array.copy pi))

let test_clos_route_random_larger () =
  let rng = Rng.create ~seed:55 in
  List.iter
    (fun (m, k, r) ->
      let built = Clos.make_built { Clos.m; k; r } in
      for _ = 1 to 15 do
        check_clos_routing built (Rng.permutation rng (r * k))
      done)
    [ (3, 3, 3); (4, 4, 5); (5, 4, 8); (7, 7, 7) ]

let test_clos_route_structured () =
  let built = Clos.make_built { Clos.m = 4; k = 4; r = 4 } in
  check_clos_routing built (Perm.identity 16);
  check_clos_routing built (Perm.reversal 16);
  check_clos_routing built (Perm.rotation 16 7);
  (* the "all traffic between one ingress and one egress" worst case *)
  check_clos_routing built
    (Array.init 16 (fun i -> (i + 4) mod 16))

let test_clos_route_validation () =
  let built = Clos.make_built { Clos.m = 1; k = 2; r = 2 } in
  Alcotest.check_raises "m < k rejected"
    (Invalid_argument "Clos.route: need m >= k (rearrangeable)") (fun () ->
      ignore (Clos.route built (Perm.identity 4)));
  let built2 = Clos.make_built { Clos.m = 2; k = 2; r = 2 } in
  Alcotest.check_raises "arity" (Invalid_argument "Clos.route: arity")
    (fun () -> ignore (Clos.route built2 (Perm.identity 3)))

let test_clos_route_spare_middles () =
  (* extra middles (m > k) must not confuse the decomposition *)
  let built = Clos.make_built { Clos.m = 6; k = 3; r = 4 } in
  let rng = Rng.create ~seed:56 in
  for _ = 1 to 10 do
    check_clos_routing built (Rng.permutation rng 12)
  done

(* ---------- Benes ---------- *)

let test_benes_size_depth () =
  List.iter
    (fun n ->
      let b = Benes.make n in
      let net = Benes.network b in
      let k = log2_exact n in
      (* (2k-1) columns of n/2 switches, 4 edges per switch *)
      check
        (Printf.sprintf "size n=%d" n)
        (4 * (n / 2) * ((2 * k) - 1))
        (Network.size net);
      check (Printf.sprintf "depth n=%d" n) ((2 * k) - 1) (Network.depth net);
      check "columns" ((2 * k) - 1) (Benes.switch_columns b))
    [ 2; 4; 8; 16; 32 ]

let test_benes_rejects_bad_n () =
  Alcotest.check_raises "not power of two"
    (Invalid_argument "Benes.make: n must be a power of two >= 2") (fun () ->
      ignore (Benes.make 6))

let check_routing b net pi =
  let paths = Benes.route b pi in
  let n = Array.length pi in
  check "one path per request" n (Array.length paths);
  (* vertex-disjointness *)
  let all = Array.to_list paths |> List.concat in
  check "disjoint" (List.length all) (List.length (List.sort_uniq compare all));
  (* endpoints and edge validity *)
  Array.iteri
    (fun i path ->
      (match path with
      | first :: _ -> check "starts at input" net.Network.inputs.(i) first
      | [] -> Alcotest.fail "empty path");
      (match List.rev path with
      | last :: _ -> check "ends at target" net.Network.outputs.(pi.(i)) last
      | [] -> ());
      let rec edges = function
        | a :: (b :: _ as rest) ->
            let exists =
              Digraph.fold_out net.Network.graph a ~init:false
                ~f:(fun acc ~dst ~eid:_ -> acc || dst = b)
            in
            checkb "edge exists" true exists;
            edges rest
        | _ -> ()
      in
      edges path)
    paths

let test_benes_routes_all_perms_n4 () =
  let b = Benes.make 4 in
  let net = Benes.network b in
  Perm.iter_all 4 (fun pi -> check_routing b net (Array.copy pi))

let test_benes_routes_random_perms () =
  let rng = Rng.create ~seed:20 in
  List.iter
    (fun n ->
      let b = Benes.make n in
      let net = Benes.network b in
      for _ = 1 to 10 do
        check_routing b net (Rng.permutation rng n)
      done)
    [ 8; 16; 32; 64 ]

let test_benes_routes_structured_perms () =
  let b = Benes.make 16 in
  let net = Benes.network b in
  check_routing b net (Perm.identity 16);
  check_routing b net (Perm.reversal 16);
  check_routing b net (Perm.rotation 16 5)

let test_benes_route_arity () =
  let b = Benes.make 8 in
  Alcotest.check_raises "arity" (Invalid_argument "Benes.route: arity")
    (fun () -> ignore (Benes.route b [| 0 |]))

(* ---------- Butterfly ---------- *)

let test_butterfly_counts () =
  let net = Butterfly.make 8 in
  check "size" (2 * 8 * 3) (Network.size net);
  check "depth" 3 (Network.depth net);
  check "vertices" (4 * 8) (Digraph.vertex_count net.Network.graph)

let test_butterfly_unique_path () =
  let n = 8 in
  let net = Butterfly.make n in
  for input = 0 to n - 1 do
    for output = 0 to n - 1 do
      let p = Butterfly.unique_path ~n ~input ~output in
      check "length" (log2_exact n + 1) (List.length p);
      (match p with
      | first :: _ -> check "start" net.Network.inputs.(input) first
      | [] -> Alcotest.fail "empty");
      match List.rev p with
      | last :: _ -> check "end" net.Network.outputs.(output) last
      | [] -> ()
    done
  done

(* ---------- Multibutterfly ---------- *)

let test_multibutterfly_structure () =
  let rng = Rng.create ~seed:21 in
  let net = Multibutterfly.make ~rng ~degree:2 16 in
  check "inputs" 16 (Network.n_inputs net);
  check "depth" 4 (Network.depth net);
  checkb "acyclic" true (Network.is_acyclic net);
  (* every input reaches every output (redundant splitters) *)
  let d =
    Ftcsn_graph.Traverse.bfs_directed net.Network.graph
      ~sources:[ net.Network.inputs.(0) ]
  in
  Array.iter (fun o -> checkb "reachable" true (d.(o) >= 0)) net.Network.outputs

let test_multibutterfly_degree_bound () =
  let rng = Rng.create ~seed:22 in
  let net = Multibutterfly.make ~rng ~degree:3 16 in
  (* out-degree of an internal vertex is at most 2*degree *)
  let g = net.Network.graph in
  for v = 0 to Digraph.vertex_count g - 1 do
    checkb "degree bound" true (Digraph.out_degree g v <= 6)
  done

let test_multibutterfly_structured_routing () =
  let rng = Rng.create ~seed:31 in
  let mb = Multibutterfly.make_structured ~rng ~degree:2 16 in
  let g = mb.Multibutterfly.net.Network.graph in
  for _ = 1 to 10 do
    let pi = Rng.permutation rng 16 in
    let paths, success =
      Multibutterfly.route_permutation mb ~allowed:(fun _ -> true) pi
    in
    (* greedy circuit-switching cannot serve full permutations on a
       multibutterfly (that is what [ALM]'s heavier machinery is for), but
       a degree-2 splitter carries well over half; every returned path
       must be valid and level-monotone *)
    checkb "majority routed" true (success >= 9);
    let all = Array.to_list paths |> List.filter_map Fun.id |> List.concat in
    check "disjoint" (List.length all) (List.length (List.sort_uniq compare all));
    Array.iteri
      (fun i p ->
        match p with
        | None -> ()
        | Some p ->
            check "length = levels + 1" (mb.Multibutterfly.levels + 1)
              (List.length p);
            check "start" mb.Multibutterfly.net.Network.inputs.(i) (List.hd p);
            check "end" mb.Multibutterfly.net.Network.outputs.(pi.(i))
              (List.hd (List.rev p));
            let rec edges = function
              | a :: (b :: _ as rest) ->
                  checkb "edge" true
                    (Digraph.fold_out g a ~init:false ~f:(fun acc ~dst ~eid:_ ->
                         acc || dst = b));
                  edges rest
              | _ -> ()
            in
            edges p)
      paths
  done

let test_multibutterfly_degree_helps () =
  (* the redundancy claim of [LM]: more splitter edges, more of the
     permutation served *)
  let rng = Rng.create ~seed:33 in
  let mean_success degree =
    let mb = Multibutterfly.make_structured ~rng ~degree 16 in
    let acc = ref 0 in
    for _ = 1 to 25 do
      let pi = Rng.permutation rng 16 in
      let _, s = Multibutterfly.route_permutation mb ~allowed:(fun _ -> true) pi in
      acc := !acc + s
    done;
    !acc
  in
  let s1 = mean_success 1 and s2 = mean_success 2 and s4 = mean_success 4 in
  checkb (Printf.sprintf "d=1 %d < d=2 %d" s1 s2) true (s1 < s2);
  checkb (Printf.sprintf "d=2 %d < d=4 %d" s2 s4) true (s2 < s4)

let test_multibutterfly_routes_around_faults () =
  (* the [LM] point: redundancy (d >= 2) routes single requests around
     faulty vertices that kill the unique-path butterfly *)
  let rng = Rng.create ~seed:32 in
  let mb = Multibutterfly.make_structured ~rng ~degree:3 16 in
  let g = mb.Multibutterfly.net.Network.graph in
  let ok_count = ref 0 in
  let trials = 40 in
  for _ = 1 to trials do
    (* disable a random internal vertex on the request's natural path *)
    let input = Rng.int rng 16 and output = Rng.int rng 16 in
    match
      Multibutterfly.route mb ~allowed:(fun _ -> true) ~busy:(fun _ -> false)
        ~input ~output
    with
    | None -> ()
    | Some path ->
        let interior = List.filteri (fun i _ -> i = 2) path in
        let blocked = List.hd interior in
        (match
           Multibutterfly.route mb
             ~allowed:(fun v -> v <> blocked)
             ~busy:(fun _ -> false) ~input ~output
         with
        | Some path' ->
            checkb "avoids blocked" true (not (List.mem blocked path'));
            incr ok_count
        | None -> ());
        ignore g
  done;
  checkb
    (Printf.sprintf "rerouted %d/%d" !ok_count trials)
    true
    (!ok_count >= trials * 3 / 5)

(* ---------- Cantor ---------- *)

let test_cantor_counts () =
  let n = 8 in
  let net = Cantor.make n in
  let k = log2_exact n in
  let benes_size = 4 * (n / 2) * ((2 * k) - 1) in
  check "size" ((k * benes_size) + (2 * n * k)) (Network.size net);
  check "depth" (((2 * k) - 1) + 2) (Network.depth net);
  check "inputs" n (Network.n_inputs net)

let test_cantor_copies_override () =
  let net = Cantor.make ~copies:2 8 in
  checkb "smaller than default" true
    (Network.size net < Network.size (Cantor.make 8))

(* ---------- Valiant superconcentrator ---------- *)

let test_valiant_sc_linear_size () =
  let rng = Rng.create ~seed:23 in
  let sizes =
    List.map
      (fun n -> float_of_int (Network.size (Valiant_sc.make ~rng n)) /. float_of_int n)
      [ 64; 128; 256; 512 ]
  in
  (* size/n should stay bounded (linear size) *)
  List.iter (fun r -> checkb "size/n bounded" true (r < 40.0)) sizes

let test_valiant_sc_is_sc_small () =
  let rng = Rng.create ~seed:24 in
  let net = Valiant_sc.make ~rng ~degree:4 ~cutoff:4 6 in
  match Ftcsn_routing.Properties.superconcentrator_exhaustive ~max_work:20000 net with
  | `Holds -> ()
  | `Violated v ->
      Alcotest.failf "violated at r=%d achieved=%d" v.Ftcsn_routing.Properties.r
        v.Ftcsn_routing.Properties.achieved
  | `Too_large -> Alcotest.fail "should be feasible"

let test_valiant_sc_sampled_larger () =
  let rng = Rng.create ~seed:25 in
  let net = Valiant_sc.make ~rng 64 in
  match Ftcsn_routing.Properties.superconcentrator_sampled ~trials:60 ~rng net with
  | None -> ()
  | Some v ->
      Alcotest.failf "sampled violation r=%d" v.Ftcsn_routing.Properties.r

(* ---------- Recursive [P82] construction ---------- *)

let test_recursive_nb_stage_shapes () =
  let rng = Rng.create ~seed:26 in
  let params = Recursive_nb.scaled_params ~branching:2 ~width_factor:4 ~degree:4 () in
  let net, t = Recursive_nb.make ~rng ~params ~levels:3 in
  check "inputs" 8 (Network.n_inputs net);
  check "outputs" 8 (Network.n_outputs net);
  check "stage count" 7 (Array.length t.Recursive_nb.stages);
  (* interior stages have width wf * beta^levels = 32 *)
  for s = 1 to 5 do
    check
      (Printf.sprintf "stage %d width" s)
      32
      (Array.length t.Recursive_nb.stages.(s))
  done;
  checkb "acyclic" true (Network.is_acyclic net)

let test_recursive_nb_degrees () =
  let rng = Rng.create ~seed:27 in
  let params = Recursive_nb.scaled_params ~branching:2 ~width_factor:4 ~degree:4 () in
  let net, t = Recursive_nb.make ~rng ~params ~levels:3 in
  let g = net.Network.graph in
  (* vertices on stage 1 (level-1 blocks) have out-degree exactly [degree]
     toward stage 2 *)
  Array.iter
    (fun v -> check "expander out-degree" 4 (Digraph.out_degree g v))
    t.Recursive_nb.stages.(1);
  (* mirrored: stage 5 vertices have in-degree [degree] *)
  Array.iter
    (fun v -> check "mirror in-degree" 4 (Digraph.in_degree g v))
    t.Recursive_nb.stages.(5)

let test_recursive_nb_blocks () =
  let rng = Rng.create ~seed:28 in
  let params = Recursive_nb.scaled_params ~branching:2 ~width_factor:4 ~degree:4 () in
  let _, t = Recursive_nb.make ~rng ~params ~levels:3 in
  let blocks1 = Recursive_nb.blocks_of_stage t 1 in
  check "level-1 blocks" 4 (Array.length blocks1);
  check "level-1 block width" 8 (Array.length blocks1.(0));
  let blocks3 = Recursive_nb.blocks_of_stage t 3 in
  check "level-3 single block" 1 (Array.length blocks3);
  check "level-3 width" 32 (Array.length blocks3.(0));
  let blocks5 = Recursive_nb.blocks_of_stage t 5 in
  check "mirror level-1 blocks" 4 (Array.length blocks5)

let test_recursive_nb_trim () =
  let rng = Rng.create ~seed:29 in
  let params = Recursive_nb.scaled_params ~branching:2 ~width_factor:4 ~degree:4 () in
  let builder = Digraph.Builder.create () in
  let t =
    Recursive_nb.build ~builder ~rng ~params ~levels:3 ~trim:1 ()
  in
  check "trimmed stages" 5 (Array.length t.Recursive_nb.stages);
  (* all retained stages have interior width *)
  Array.iter
    (fun st -> check "width" 32 (Array.length st))
    t.Recursive_nb.stages

let test_recursive_nb_first_stage_hook () =
  let rng = Rng.create ~seed:30 in
  let params = Recursive_nb.scaled_params ~branching:2 ~width_factor:4 ~degree:4 () in
  let builder = Digraph.Builder.create () in
  let pre = Array.init 32 (fun _ -> Digraph.Builder.add_vertex builder) in
  let t =
    Recursive_nb.build ~builder ~rng ~params ~levels:3 ~trim:1 ~first_stage:pre ()
  in
  Alcotest.(check (array int)) "first stage reused" pre t.Recursive_nb.stages.(0);
  Alcotest.check_raises "wrong width rejected"
    (Invalid_argument "Recursive_nb.build: first_stage has wrong width")
    (fun () ->
      let builder2 = Digraph.Builder.create () in
      let bad = Array.init 3 (fun _ -> Digraph.Builder.add_vertex builder2) in
      ignore
        (Recursive_nb.build ~builder:builder2 ~rng ~params ~levels:3 ~trim:1
           ~first_stage:bad ()))

let test_recursive_nb_reaches_everything () =
  let rng = Rng.create ~seed:31 in
  let params = Recursive_nb.scaled_params ~branching:2 ~width_factor:4 ~degree:4 () in
  let net, _ = Recursive_nb.make ~rng ~params ~levels:4 in
  let d =
    Ftcsn_graph.Traverse.bfs_directed net.Network.graph
      ~sources:[ net.Network.inputs.(0) ]
  in
  Array.iter (fun o -> checkb "output reachable" true (d.(o) >= 0)) net.Network.outputs

let test_recursive_nb_paper_params () =
  check "paper branching" 4 Recursive_nb.paper_params.Recursive_nb.branching;
  check "paper width" 64 Recursive_nb.paper_params.Recursive_nb.width_factor;
  check "paper degree" 10 Recursive_nb.paper_params.Recursive_nb.degree;
  check "block width" (64 * 16)
    (Recursive_nb.block_width Recursive_nb.paper_params ~level:2)

(* ---------- Concentrator ([M]/[GG] subject matter) ---------- *)

module Concentrator = Ftcsn_networks.Concentrator

let test_concentrator_complete_bipartite_certified () =
  (* K(6,3) concentrates any <= 3 inputs *)
  let adj = Array.make 6 [| 0; 1; 2 |] in
  let b = Ftcsn_expander.Bipartite.make ~inlets:6 ~outlets:3 ~adj in
  let c = Concentrator.of_expander b ~capacity:3 in
  (match Concentrator.verify_exhaustive c with
  | `Certified -> ()
  | `Refuted _ -> Alcotest.fail "complete bipartite concentrates");
  check "max concentration" 3 (Concentrator.max_concentration c ~k:5)

let test_concentrator_refutes_star () =
  (* all inputs share one output: any 2-subset is deficient *)
  let adj = Array.make 4 [| 0 |] in
  let b = Ftcsn_expander.Bipartite.make ~inlets:4 ~outlets:2 ~adj in
  let c = Concentrator.of_expander b ~capacity:2 in
  (match Concentrator.verify_exhaustive c with
  | `Refuted s -> check "deficient pair" 2 (Array.length s)
  | `Certified -> Alcotest.fail "star cannot concentrate");
  let rng = Rng.create ~seed:66 in
  checkb "sampled also refutes" true
    (Concentrator.verify_sampled c ~trials:200 ~rng <> None)

let test_concentrator_random_certifies () =
  let rng = Rng.create ~seed:67 in
  let c = Concentrator.random ~rng ~inputs:12 ~outputs:8 ~degree:5 in
  match Concentrator.verify_exhaustive c with
  | `Certified -> ()
  | `Refuted s -> Alcotest.failf "refuted with |S|=%d" (Array.length s)

let test_concentrator_gabber_galil () =
  (* the GG expander viewed as a concentrator of small capacity *)
  let b = Ftcsn_expander.Gabber_galil.make ~m:3 in
  let c = Concentrator.of_expander b ~capacity:4 in
  let rng = Rng.create ~seed:68 in
  checkb "no sampled violation" true
    (Concentrator.verify_sampled c ~trials:400 ~rng = None)

let test_concentrator_validation () =
  Alcotest.check_raises "capacity range"
    (Invalid_argument "Concentrator.of_expander: capacity exceeds outputs")
    (fun () ->
      let b =
        Ftcsn_expander.Bipartite.make ~inlets:2 ~outlets:1 ~adj:[| [| 0 |]; [| 0 |] |]
      in
      ignore (Concentrator.of_expander b ~capacity:5))

(* ---------- Multistage (recursive Clos, [PY]) ---------- *)

module Multistage = Ftcsn_networks.Multistage

let check_ms_routing t pi =
  let net = Multistage.network t in
  let paths = Multistage.route t pi in
  let all = Array.to_list paths |> List.concat in
  check "disjoint" (List.length all) (List.length (List.sort_uniq compare all));
  Array.iteri
    (fun i path ->
      (match path with
      | first :: _ -> check "start" net.Network.inputs.(i) first
      | [] -> Alcotest.fail "empty");
      match List.rev path with
      | last :: _ -> check "end" net.Network.outputs.(pi.(i)) last
      | [] -> ())
    paths

let test_multistage_structure () =
  let t = Multistage.make ~levels:2 27 in
  let net = Multistage.network t in
  check "terminals" 27 (Network.n_inputs net);
  check "stages" 5 (Multistage.stage_count t);
  check "depth" 5 (Network.depth net);
  checkb "acyclic" true (Network.is_acyclic net)

let test_multistage_degenerates_to_benes () =
  (* k = 2, levels = lg n - 1: the recursion is exactly a Benes network *)
  let t = Multistage.make ~k:2 ~levels:3 16 in
  let benes = Benes.create 16 in
  check "size equals Benes" (Network.size benes)
    (Network.size (Multistage.network t));
  check "depth equals Benes" (Network.depth benes)
    (Network.depth (Multistage.network t))

let test_multistage_levels_tradeoff () =
  (* size = (2t+1)·n·k with k ~ n^(1/(t+1)): adding levels shrinks the
     network steeply at first (k drops fast), then the (2t+1) stage factor
     takes over once k bottoms out at 2 — the [PY] depth/size tradeoff *)
  let n = 64 in
  let size levels =
    Network.size (Multistage.create ~levels n)
  in
  let s0 = size 0 and s1 = size 1 and s2 = size 2 and s5 = size 5 in
  checkb "crossbar largest" true (s0 > s1);
  checkb "3-stage > 5-stage" true (s1 > s2);
  (* the Benes-shaped deep end pays stages without gaining on k *)
  checkb "deep end rebounds" true (s5 > s2);
  checkb "deep end still beats 3-stage" true (s5 < s1)

let test_multistage_routes_all_perms_small () =
  let t = Multistage.make ~k:2 ~levels:1 4 in
  Perm.iter_all 4 (fun pi -> check_ms_routing t (Array.copy pi))

let test_multistage_routes_padded () =
  (* n not a power of k: padding must stay internal *)
  let t = Multistage.make ~k:3 ~levels:1 7 in
  let rng = Rng.create ~seed:77 in
  for _ = 1 to 20 do
    check_ms_routing t (Rng.permutation rng 7)
  done

let test_multistage_validation () =
  Alcotest.check_raises "k too small" (Invalid_argument "Multistage.make: k >= 2")
    (fun () -> ignore (Multistage.make ~k:1 ~levels:1 4));
  Alcotest.check_raises "k mismatch"
    (Invalid_argument "Multistage.make: k^(levels+1) < n") (fun () ->
      ignore (Multistage.make ~k:2 ~levels:1 16));
  let t = Multistage.make ~levels:1 6 in
  Alcotest.check_raises "arity" (Invalid_argument "Multistage.route: arity")
    (fun () -> ignore (Multistage.route t [| 0 |]))

let prop_multistage_routes_random =
  QCheck2.Test.make ~name:"multistage routes random permutations disjointly"
    ~count:40
    QCheck2.Gen.(triple (int_range 0 2) (int_range 2 20) int)
    (fun (levels, n, seed) ->
      let rng = Rng.create ~seed in
      let t = Multistage.make ~levels n in
      let pi = Rng.permutation rng n in
      let paths = Multistage.route t pi in
      let all = Array.to_list paths |> List.concat in
      List.length all = List.length (List.sort_uniq compare all))

(* ---------- delta / omega / banyan / butterfly-pair ---------- *)

let delta_zoo =
  [ ("delta", Delta.delta); ("omega", Delta.omega); ("banyan", Delta.banyan) ]

(* paths from [src] to every vertex, by DP in vertex-id order: these
   constructions are leveled with ids increasing stage by stage, so every
   predecessor of a vertex has a smaller id *)
let path_counts net src =
  let g = net.Network.graph in
  let counts = Array.make (Digraph.vertex_count g) 0 in
  counts.(src) <- 1;
  for v = 0 to Digraph.vertex_count g - 1 do
    if counts.(v) > 0 then
      Digraph.iter_out g v (fun ~dst ~eid:_ ->
          counts.(dst) <- counts.(dst) + counts.(v))
  done;
  counts

let test_delta_zoo_counts () =
  List.iter
    (fun (name, make) ->
      List.iter
        (fun n ->
          let k = log2_exact n in
          let net = make n in
          check (name ^ " size") (2 * n * k) (Network.size net);
          check (name ^ " depth") k (Network.depth net);
          check (name ^ " inputs") n (Network.n_inputs net);
          check (name ^ " outputs") n (Network.n_outputs net);
          checkb (name ^ " acyclic") true (Network.is_acyclic net))
        [ 2; 4; 8; 16 ])
    delta_zoo

let test_delta_zoo_unique_path () =
  (* the banyan-class defining property: exactly one path per terminal
     pair, whatever the inter-stage wiring *)
  List.iter
    (fun (name, make) ->
      let net = make 8 in
      Array.iter
        (fun input ->
          let counts = path_counts net input in
          Array.iter
            (fun output ->
              if counts.(output) <> 1 then
                Alcotest.failf "%s: %d paths between a terminal pair" name
                  counts.(output))
            net.Network.outputs)
        net.Network.inputs)
    delta_zoo

let test_delta_zoo_rejects_non_pow2 () =
  List.iter
    (fun (name, make) ->
      List.iter
        (fun n ->
          try
            ignore (make n);
            Alcotest.failf "%s %d should be rejected" name n
          with Invalid_argument _ -> ())
        [ 0; 1; 3; 6; 12 ])
    (("butterfly-pair", Butterfly_pair.make) :: delta_zoo)

let test_butterfly_pair_counts () =
  let n = 8 in
  let k = log2_exact n in
  let net = Butterfly_pair.make n in
  check "size" (4 * n * k) (Network.size net);
  check "depth" (2 * k) (Network.depth net);
  check "inputs" n (Network.n_inputs net);
  check "outputs" n (Network.n_outputs net);
  checkb "acyclic" true (Network.is_acyclic net)

let test_butterfly_pair_path_diversity () =
  (* butterfly reaches each middle row once, the mirror continues each
     middle row to every output once: n paths per terminal pair *)
  let n = 8 in
  let net = Butterfly_pair.make n in
  Array.iter
    (fun input ->
      let counts = path_counts net input in
      Array.iter
        (fun output -> check "paths per pair" n counts.(output))
        net.Network.outputs)
    net.Network.inputs

let test_butterfly_pair_superconcentrates () =
  let net = Butterfly_pair.make 4 in
  match
    Ftcsn_routing.Properties.superconcentrator_exhaustive ~max_work:20000 net
  with
  | `Holds -> ()
  | `Violated v ->
      Alcotest.failf "violated at r=%d achieved=%d" v.Ftcsn_routing.Properties.r
        v.Ftcsn_routing.Properties.achieved
  | `Too_large -> Alcotest.fail "should be feasible"

(* ---------- cross-construction sanity ---------- *)

let test_shannon_size_ordering () =
  (* Benes O(n log n) beats crossbar O(n^2) for large n; Cantor's
     O(n log^2 n) sits between once n is past the crossover (which falls
     at exactly n = 256 for these constants) *)
  let n = 512 in
  let benes = Network.size (Benes.create n) in
  let cantor = Network.size (Cantor.make n) in
  let crossbar = Network.size (Crossbar.square n) in
  checkb "benes < cantor" true (benes < cantor);
  checkb "cantor < crossbar at n=512" true (cantor < crossbar)

let prop_benes_looping_disjoint =
  QCheck2.Test.make ~name:"looping algorithm yields disjoint valid paths"
    ~count:40
    QCheck2.Gen.(pair (int_range 0 3) int)
    (fun (log_extra, seed) ->
      let n = 4 * (1 lsl log_extra) in
      let rng = Rng.create ~seed in
      let b = Benes.make n in
      let pi = Rng.permutation rng n in
      let paths = Benes.route b pi in
      let all = Array.to_list paths |> List.concat in
      List.length all = List.length (List.sort_uniq compare all))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_benes_looping_disjoint; prop_multistage_routes_random ]

let () =
  Alcotest.run "ftcsn_networks"
    [
      ( "network",
        [
          Alcotest.test_case "validation" `Quick test_network_validation;
          Alcotest.test_case "reverse" `Quick test_network_reverse;
        ] );
      ("crossbar", [ Alcotest.test_case "counts" `Quick test_crossbar_counts ]);
      ( "clos",
        [
          Alcotest.test_case "counts" `Quick test_clos_counts;
          Alcotest.test_case "presets" `Quick test_clos_presets;
          Alcotest.test_case "route all perms" `Quick test_clos_route_all_perms_small;
          Alcotest.test_case "route random" `Quick test_clos_route_random_larger;
          Alcotest.test_case "route structured" `Quick test_clos_route_structured;
          Alcotest.test_case "route validation" `Quick test_clos_route_validation;
          Alcotest.test_case "route spare middles" `Quick
            test_clos_route_spare_middles;
        ] );
      ( "benes",
        [
          Alcotest.test_case "size/depth" `Quick test_benes_size_depth;
          Alcotest.test_case "bad n" `Quick test_benes_rejects_bad_n;
          Alcotest.test_case "all perms n=4" `Quick test_benes_routes_all_perms_n4;
          Alcotest.test_case "random perms" `Quick test_benes_routes_random_perms;
          Alcotest.test_case "structured perms" `Quick
            test_benes_routes_structured_perms;
          Alcotest.test_case "route arity" `Quick test_benes_route_arity;
        ] );
      ( "butterfly",
        [
          Alcotest.test_case "counts" `Quick test_butterfly_counts;
          Alcotest.test_case "unique path" `Quick test_butterfly_unique_path;
        ] );
      ( "multibutterfly",
        [
          Alcotest.test_case "structure" `Quick test_multibutterfly_structure;
          Alcotest.test_case "degree bound" `Quick test_multibutterfly_degree_bound;
          Alcotest.test_case "structured routing" `Quick
            test_multibutterfly_structured_routing;
          Alcotest.test_case "degree helps" `Quick test_multibutterfly_degree_helps;
          Alcotest.test_case "routes around faults" `Quick
            test_multibutterfly_routes_around_faults;
        ] );
      ( "cantor",
        [
          Alcotest.test_case "counts" `Quick test_cantor_counts;
          Alcotest.test_case "copies" `Quick test_cantor_copies_override;
        ] );
      ( "valiant-sc",
        [
          Alcotest.test_case "linear size" `Quick test_valiant_sc_linear_size;
          Alcotest.test_case "sc small exhaustive" `Quick test_valiant_sc_is_sc_small;
          Alcotest.test_case "sc sampled" `Quick test_valiant_sc_sampled_larger;
        ] );
      ( "recursive-nb",
        [
          Alcotest.test_case "stage shapes" `Quick test_recursive_nb_stage_shapes;
          Alcotest.test_case "degrees" `Quick test_recursive_nb_degrees;
          Alcotest.test_case "blocks" `Quick test_recursive_nb_blocks;
          Alcotest.test_case "trim" `Quick test_recursive_nb_trim;
          Alcotest.test_case "first-stage hook" `Quick
            test_recursive_nb_first_stage_hook;
          Alcotest.test_case "reachability" `Quick
            test_recursive_nb_reaches_everything;
          Alcotest.test_case "paper params" `Quick test_recursive_nb_paper_params;
        ] );
      ( "concentrator",
        [
          Alcotest.test_case "complete bipartite" `Quick
            test_concentrator_complete_bipartite_certified;
          Alcotest.test_case "refutes star" `Quick test_concentrator_refutes_star;
          Alcotest.test_case "random certifies" `Quick
            test_concentrator_random_certifies;
          Alcotest.test_case "gabber-galil" `Quick test_concentrator_gabber_galil;
          Alcotest.test_case "validation" `Quick test_concentrator_validation;
        ] );
      ( "multistage",
        [
          Alcotest.test_case "structure" `Quick test_multistage_structure;
          Alcotest.test_case "degenerates to benes" `Quick
            test_multistage_degenerates_to_benes;
          Alcotest.test_case "levels tradeoff" `Quick test_multistage_levels_tradeoff;
          Alcotest.test_case "all perms small" `Quick
            test_multistage_routes_all_perms_small;
          Alcotest.test_case "padded n" `Quick test_multistage_routes_padded;
          Alcotest.test_case "validation" `Quick test_multistage_validation;
        ] );
      ( "delta-zoo",
        [
          Alcotest.test_case "counts" `Quick test_delta_zoo_counts;
          Alcotest.test_case "unique path" `Quick test_delta_zoo_unique_path;
          Alcotest.test_case "rejects non-pow2" `Quick
            test_delta_zoo_rejects_non_pow2;
        ] );
      ( "butterfly-pair",
        [
          Alcotest.test_case "counts" `Quick test_butterfly_pair_counts;
          Alcotest.test_case "path diversity" `Quick
            test_butterfly_pair_path_diversity;
          Alcotest.test_case "superconcentrates" `Quick
            test_butterfly_pair_superconcentrates;
        ] );
      ( "landscape",
        [ Alcotest.test_case "size ordering" `Quick test_shannon_size_ordering ] );
      ("properties", props);
    ]
