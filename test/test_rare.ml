(* Tests for the rare-event estimators: cross-entropy tilted importance
   sampling and multilevel splitting (Ftcsn_reliability.Splitting) plus
   the paper's failure-event glue (Ftcsn.Rare).

   Validation strategy: the estimators are checked against closed forms
   where they exist (Sp_network's series-parallel recurrences,
   Proposition 1) and against 3^m enumeration (Exact) on a crossbar small
   enough to enumerate, and pinned bit-identical across --jobs. *)

module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Survivor = Ftcsn_reliability.Survivor
module Exact = Ftcsn_reliability.Exact
module Sp_network = Ftcsn_reliability.Sp_network
module Splitting = Ftcsn_reliability.Splitting
module Rng = Ftcsn_prng.Rng
module Network = Ftcsn_networks.Network
module Topology = Ftcsn_networks.Topology
module Rare = Ftcsn.Rare

let checkb = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))

let build_net spec ~n =
  Ftcsn.Ft_topology.install ();
  match Topology.build_string ~n ~rng:(Rng.create ~seed:1) spec with
  | Ok b -> b.Topology.net
  | Error msg -> Alcotest.failf "cannot build %s: %s" spec msg

(* ---------- tilted IS vs series-parallel closed forms ---------- *)

(* the open event of a two-terminal SP network: no path of non-open
   switches from input to output; its exact probability is
   Sp_network.open_prob *)
let sp_open_event (built : Sp_network.built) _ws _rng pattern =
  not
    (Survivor.connected_ignoring_opens built.Sp_network.graph pattern
       ~a:built.Sp_network.input ~b:built.Sp_network.output)

let test_tilted_matches_rectangle () =
  let spec = Sp_network.rectangle ~j:2 ~k:3 in
  let built = Sp_network.build spec in
  let m = Digraph.edge_count built.Sp_network.graph in
  let eps = 0.02 in
  let exact = Sp_network.open_prob spec ~eps_open:eps ~eps_close:eps in
  let tilt = Splitting.uniform_tilt ~m ~eps_open:0.25 ~eps_close:eps in
  let est =
    Splitting.tilted ~trials:20_000 ~rng:(Rng.create ~seed:7) ~m
      ~eps_open:eps ~eps_close:eps ~tilt
      ~init:(fun () -> ())
      ~event:(sp_open_event built) ()
  in
  checkb "nonzero" true (est.Splitting.mean > 0.0);
  checkb "closed form within CI" true
    (est.Splitting.ci_low <= exact && exact <= est.Splitting.ci_high);
  checkb "tight" true (est.Splitting.rel_err < 0.10);
  checkb "beats MC variance" true (est.Splitting.variance_ratio > 10.0)

(* qcheck: random small rectangles, the closed form falls in the 95% CI
   (fixed seeds per case keep the suite deterministic; the CI check is a
   statistical statement, so allow the interval a 4-sigma widening) *)
let qcheck_tilted_rectangles =
  QCheck2.Test.make ~name:"tilted IS brackets rectangle closed forms"
    ~count:25
    QCheck2.Gen.(triple (int_range 1 3) (int_range 1 3) (int_range 0 1000))
    (fun (j, k, seed_off) ->
      let spec = Sp_network.rectangle ~j ~k in
      let built = Sp_network.build spec in
      let m = Digraph.edge_count built.Sp_network.graph in
      let eps = 0.02 +. (0.08 *. (float_of_int (seed_off mod 7) /. 7.0)) in
      let exact = Sp_network.open_prob spec ~eps_open:eps ~eps_close:eps in
      let tilt = Splitting.uniform_tilt ~m ~eps_open:0.3 ~eps_close:eps in
      let est =
        Splitting.tilted ~trials:4_000
          ~rng:(Rng.create ~seed:(1000 + seed_off))
          ~m ~eps_open:eps ~eps_close:eps ~tilt
          ~init:(fun () -> ())
          ~event:(sp_open_event built) ()
      in
      let slack =
        2.0 *. (est.Splitting.ci_high -. est.Splitting.ci_low) +. 1e-12
      in
      est.Splitting.ci_low -. slack <= exact
      && exact <= est.Splitting.ci_high +. slack)

(* ---------- splitting engine vs a closed form ---------- *)

(* generic-threshold test, independent of Ftcsn.Rare: phi(u) = the
   critical eps_open at which the rectangle's open event holds when the
   open set is {u < eps}.  P[phi <= eps] = open_prob(eps). *)
type sp_ws = { pattern : Fault.pattern; order : int array }

let sp_threshold built ws u =
  let m = Array.length ws.pattern in
  for e = 0 to m - 1 do
    ws.order.(e) <- e
  done;
  Array.sort (fun a b -> Float.compare u.(a) u.(b)) ws.order;
  let fails_with_prefix j =
    Array.fill ws.pattern 0 m Fault.Normal;
    for i = 0 to j - 1 do
      ws.pattern.(ws.order.(i)) <- Fault.Open_failure
    done;
    sp_open_event built () () ws.pattern
  in
  if not (fails_with_prefix m) then infinity
  else begin
    let lo = ref 0 and hi = ref m in
    (if fails_with_prefix 0 then hi := 0
     else
       while !hi - !lo > 1 do
         let mid = (!lo + !hi) / 2 in
         if fails_with_prefix mid then hi := mid else lo := mid
       done);
    if !hi = 0 then 0.0 else u.(ws.order.(!hi - 1))
  end

let test_splitting_matches_rectangle () =
  let spec = Sp_network.rectangle ~j:2 ~k:3 in
  let built = Sp_network.build spec in
  let m = Digraph.edge_count built.Sp_network.graph in
  let eps = 0.02 in
  let exact = Sp_network.open_prob spec ~eps_open:eps ~eps_close:eps in
  let init () =
    { pattern = Array.make m Fault.Normal; order = Array.make m 0 }
  in
  let prepare _ _ = () in
  let threshold = sp_threshold built in
  let rng = Rng.create ~seed:11 in
  let schedule =
    Splitting.pilot ~particles:128 ~rng ~m ~target:eps ~init ~prepare
      ~threshold ()
  in
  checkb "ladder reaches target" true
    (schedule.Splitting.levels.(Array.length schedule.Splitting.levels - 1)
    = eps);
  let est =
    Splitting.run ~trials:4_000 ~rng ~m ~schedule ~init ~prepare ~threshold ()
  in
  checkb "nonzero" true (est.Splitting.mean > 0.0);
  let se = est.Splitting.rel_err *. est.Splitting.mean in
  checkb "matches closed form within 5 se" true
    (Float.abs (est.Splitting.mean -. exact) <= (5.0 *. se) +. 1e-12)

(* a 1-level schedule is plain Monte-Carlo: the estimator must agree
   count-for-count with directly thresholding the root draws *)
let test_singleton_schedule_is_mc () =
  let spec = Sp_network.rectangle ~j:1 ~k:2 in
  let built = Sp_network.build spec in
  let m = Digraph.edge_count built.Sp_network.graph in
  let eps = 0.3 in
  let init () =
    { pattern = Array.make m Fault.Normal; order = Array.make m 0 }
  in
  let schedule =
    {
      Splitting.levels = [| eps |];
      Splitting.splits = [||];
      Splitting.entry_rate = 1.0;
    }
  in
  let est =
    Splitting.run ~trials:2_000 ~rng:(Rng.create ~seed:5) ~m ~schedule ~init
      ~prepare:(fun _ _ -> ())
      ~threshold:(sp_threshold built) ()
  in
  let exact = Sp_network.open_prob spec ~eps_open:eps ~eps_close:eps in
  (* per-trial Z is 0/1, so the normal CI is the classical binomial one *)
  checkb "plain-MC mean in [0,1] grid" true
    (Float.abs
       ((est.Splitting.mean *. 2000.0)
       -. Float.round (est.Splitting.mean *. 2000.0))
    < 1e-9);
  checkb "near exact" true (Float.abs (est.Splitting.mean -. exact) < 0.05)

(* ---------- unbiasedness vs Exact on a crossbar ---------- *)

let test_tilted_unbiased_vs_exact () =
  let net = build_net "crossbar" ~n:3 in
  let m = Digraph.edge_count net.Network.graph in
  checkb "crossbar:3 is enumerable" true (m <= 13);
  let eps = 0.05 in
  (* a fixed probe plan makes the event a pure pattern predicate that
     Exact can enumerate; a fresh seeded stream per call pins the plan *)
  let oracle = Rare.create_ws net in
  let exact =
    Exact.probability net.Network.graph ~eps_open:eps ~eps_close:eps
      (fun pattern -> Rare.fails oracle (Rng.create ~seed:99) pattern)
  in
  checkb "exact failure prob is nonzero" true (exact > 0.0);
  let runs = 24 in
  let means =
    Array.init runs (fun r ->
        let tilt = Splitting.uniform_tilt ~m ~eps_open:0.2 ~eps_close:0.2 in
        let est =
          Splitting.tilted ~trials:2_000
            ~rng:(Rng.create ~seed:(500 + r))
            ~m ~eps_open:eps ~eps_close:eps ~tilt
            ~init:(fun () -> Rare.create_ws net)
            ~event:(fun ws _sub pattern ->
              Rare.fails ws (Rng.create ~seed:99) pattern)
            ()
        in
        est.Splitting.mean)
  in
  let grand = Array.fold_left ( +. ) 0.0 means /. float_of_int runs in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. grand) ** 2.0)) 0.0 means
    /. float_of_int (runs - 1)
  in
  let se_grand = sqrt (var /. float_of_int runs) in
  checkb "grand mean within 4 se of exact" true
    (Float.abs (grand -. exact) <= (4.0 *. se_grand) +. 1e-9)

let test_splitting_unbiased_vs_exact () =
  let net = build_net "crossbar" ~n:3 in
  let m = Digraph.edge_count net.Network.graph in
  let eps = 0.05 in
  (* same fixed plan for the enumeration and for every splitting trial *)
  let fixed_plan_ws () =
    let ws = Rare.create_ws net in
    Rare.prepare ws (Rng.create ~seed:99);
    ws
  in
  let oracle = fixed_plan_ws () in
  let exact =
    Exact.probability net.Network.graph ~eps_open:eps ~eps_close:eps
      (fun pattern -> Rare.monotone_fails oracle pattern)
  in
  checkb "monotone exact prob is nonzero" true (exact > 0.0);
  let rng = Rng.create ~seed:21 in
  let init = fixed_plan_ws in
  let prepare _ _ = () in
  let schedule =
    Splitting.pilot ~particles:128 ~rng ~m ~target:eps ~init ~prepare
      ~threshold:Rare.threshold ()
  in
  let est =
    Splitting.run ~trials:6_000 ~rng ~m ~schedule ~init ~prepare
      ~threshold:Rare.threshold ()
  in
  let se = est.Splitting.rel_err *. est.Splitting.mean in
  checkb "within 5 se of enumeration" true
    (Float.abs (est.Splitting.mean -. exact) <= (5.0 *. se) +. 1e-12)

(* ---------- determinism: bit-identical at every --jobs ---------- *)

let test_jobs_bit_identity () =
  let net = build_net "benes" ~n:8 in
  let eps = 1e-3 in
  let run_tilt jobs =
    let rng = Rng.create ~seed:42 in
    let tilt = Rare.tune_tilt ~iters:2 ~trials:300 ~rng ~eps net in
    Rare.failure_tilted ~jobs ~trials:600 ~rng ~eps ~tilt net
  in
  let run_split jobs =
    let rng = Rng.create ~seed:43 in
    let schedule = Rare.pilot_schedule ~particles:64 ~rng ~eps net in
    Rare.failure_split ~jobs ~trials:400 ~rng ~schedule net
  in
  let t1 = run_tilt 1 and t2 = run_tilt 2 and t4 = run_tilt 4 in
  checkb "tilt jobs 1 = 2" true (t1 = t2);
  checkb "tilt jobs 1 = 4" true (t1 = t4);
  checkb "tilt nonzero" true (t1.Splitting.mean > 0.0);
  let s1 = run_split 1 and s2 = run_split 2 and s4 = run_split 4 in
  checkb "split jobs 1 = 2" true (s1 = s2);
  checkb "split jobs 1 = 4" true (s1 = s4);
  checkb "split nonzero" true (s1.Splitting.mean > 0.0)

(* ---------- tilted_curve coupling ---------- *)

let test_curve_point_matches_tilted () =
  let net = build_net "benes" ~n:8 in
  let m = Digraph.edge_count net.Network.graph in
  let tilt = Splitting.uniform_tilt ~m ~eps_open:0.02 ~eps_close:0.02 in
  let grid = [| 1e-3; 3e-3; 1e-2 |] in
  let curve =
    Rare.failure_tilted_curve ~trials:500 ~rng:(Rng.create ~seed:9) ~grid
      ~tilt net
  in
  Alcotest.(check int) "one estimate per point" 3 (Array.length curve);
  (* every curve point shares the trial patterns, so the middle point
     must agree exactly with a fresh single-point run on the same seed *)
  let single =
    Rare.failure_tilted ~trials:500 ~rng:(Rng.create ~seed:9) ~eps:grid.(1)
      ~tilt net
  in
  (checkf 0.0) "shared-pattern point is bit-identical"
    single.Splitting.mean curve.(1).Splitting.mean;
  (* weights against a larger eps are larger on every failing pattern *)
  checkb "curve is nonnegative" true
    (Array.for_all (fun e -> e.Splitting.mean >= 0.0) curve)

(* ---------- validation errors ---------- *)

let test_validation () =
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  let m = 4 in
  let init () = () in
  let threshold _ _ = 1.0 in
  expect_invalid "empty levels" (fun () ->
      Splitting.run ~trials:1 ~rng:(Rng.create ~seed:1) ~m
        ~schedule:
          { Splitting.levels = [||]; splits = [||]; entry_rate = 1.0 }
        ~init
        ~prepare:(fun _ _ -> ())
        ~threshold ());
  expect_invalid "non-decreasing levels" (fun () ->
      Splitting.run ~trials:1 ~rng:(Rng.create ~seed:1) ~m
        ~schedule:
          {
            Splitting.levels = [| 0.1; 0.1 |];
            splits = [| 2 |];
            entry_rate = 1.0;
          }
        ~init
        ~prepare:(fun _ _ -> ())
        ~threshold ());
  expect_invalid "split arity" (fun () ->
      Splitting.run ~trials:1 ~rng:(Rng.create ~seed:1) ~m
        ~schedule:
          { Splitting.levels = [| 0.1; 0.01 |]; splits = [||]; entry_rate = 1.0 }
        ~init
        ~prepare:(fun _ _ -> ())
        ~threshold ());
  expect_invalid "bad mutate" (fun () ->
      Splitting.run ~trials:1 ~rng:(Rng.create ~seed:1) ~m ~mutate:0.0
        ~schedule:
          { Splitting.levels = [| 0.1 |]; splits = [||]; entry_rate = 1.0 }
        ~init
        ~prepare:(fun _ _ -> ())
        ~threshold ());
  expect_invalid "tilt zero mass at positive target" (fun () ->
      Splitting.tilted ~trials:1 ~rng:(Rng.create ~seed:1) ~m ~eps_open:0.1
        ~eps_close:0.1
        ~tilt:(Splitting.uniform_tilt ~m ~eps_open:0.2 ~eps_close:0.0)
        ~init
        ~event:(fun _ _ _ -> true)
        ());
  expect_invalid "bad target" (fun () ->
      Splitting.tilted ~trials:1 ~rng:(Rng.create ~seed:1) ~m ~eps_open:0.0
        ~eps_close:0.0
        ~tilt:(Splitting.uniform_tilt ~m ~eps_open:0.2 ~eps_close:0.2)
        ~init
        ~event:(fun _ _ _ -> true)
        ());
  expect_invalid "pilot target 0" (fun () ->
      Splitting.pilot ~rng:(Rng.create ~seed:1) ~m ~target:0.0 ~init
        ~prepare:(fun _ _ -> ())
        ~threshold ())

(* ---------- the paper-regime smoke: benes:16 at eps = 1e-6 ---------- *)

let test_benes16_rare_regime () =
  let net = build_net "benes" ~n:16 in
  let eps = 1e-6 in
  let rng = Rng.create ~seed:3 in
  let tilt = Rare.tune_tilt ~iters:3 ~trials:500 ~rng ~eps net in
  let est = Rare.failure_tilted ~trials:3_000 ~rng ~eps ~tilt net in
  checkb "nonzero estimate where plain MC sees zero" true
    (est.Splitting.mean > 0.0);
  checkb "estimate is tiny" true (est.Splitting.mean < 1e-2);
  checkb "usable relative error" true (est.Splitting.rel_err < 0.25)

let () =
  Alcotest.run "rare"
    [
      ( "tilted",
        [
          Alcotest.test_case "rectangle closed form" `Quick
            test_tilted_matches_rectangle;
          QCheck_alcotest.to_alcotest qcheck_tilted_rectangles;
          Alcotest.test_case "unbiased vs Exact (crossbar)" `Slow
            test_tilted_unbiased_vs_exact;
          Alcotest.test_case "curve point = single point" `Quick
            test_curve_point_matches_tilted;
        ] );
      ( "splitting",
        [
          Alcotest.test_case "rectangle closed form" `Quick
            test_splitting_matches_rectangle;
          Alcotest.test_case "singleton schedule = plain MC" `Quick
            test_singleton_schedule_is_mc;
          Alcotest.test_case "unbiased vs Exact (crossbar)" `Slow
            test_splitting_unbiased_vs_exact;
        ] );
      ( "engine",
        [
          Alcotest.test_case "bit-identical at jobs 1/2/4" `Slow
            test_jobs_bit_identity;
          Alcotest.test_case "validation errors" `Quick test_validation;
          Alcotest.test_case "benes:16 at eps=1e-6" `Slow
            test_benes16_rare_regime;
        ] );
    ]
