(* Tests for the discrete-event traffic engine (lib/des): event-queue
   ordering, stochastic primitives, batch-means intervals, and the
   Traffic engine itself — conservation laws, Little's law, determinism
   across the Trials fan-out, and agreement with the Erlang-B formula on
   a crossbar (a true M/M/c/c loss system). *)

module Rng = Ftcsn_prng.Rng
module Heap = Ftcsn_des.Heap
module Dist = Ftcsn_des.Dist
module Batch_means = Ftcsn_des.Batch_means
module Traffic = Ftcsn_des.Traffic
module Crossbar = Ftcsn_networks.Crossbar
module Benes = Ftcsn_networks.Benes

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-9)) msg

(* ---------- Heap ---------- *)

let test_heap_order () =
  let h = Heap.create ~dummy:(-1) () in
  checkb "starts empty" true (Heap.is_empty h);
  let rng = Rng.create ~seed:42 in
  let n = 500 in
  let entries =
    Array.init n (fun i ->
        (* coarse times force plenty of exact ties *)
        (float_of_int (Rng.int rng 20), i))
  in
  Array.iter (fun (t, i) -> Heap.push h ~time:t i) entries;
  check "size" n (Heap.size h);
  let prev_t = ref neg_infinity and prev_i = ref (-1) in
  for _ = 1 to n do
    let t = Heap.min_time h in
    let i = Heap.pop h in
    checkb "times nondecreasing" true (t >= !prev_t);
    if t = !prev_t then
      (* stability: same-time events pop in push order *)
      checkb "FIFO within a timestamp" true (i > !prev_i);
    prev_t := t;
    prev_i := i
  done;
  checkb "drained" true (Heap.is_empty h)

let test_heap_validation () =
  let h = Heap.create ~dummy:0 () in
  let raises f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  raises (fun () -> Heap.push h ~time:nan 1);
  raises (fun () -> Heap.push h ~time:infinity 1);
  raises (fun () -> Heap.pop h);
  raises (fun () -> Heap.min_time h);
  Heap.push h ~time:1.0 7;
  Heap.clear h;
  checkb "clear empties" true (Heap.is_empty h)

(* ---------- Dist ---------- *)

let sample_mean rng dist n =
  let s = ref 0.0 in
  for _ = 1 to n do
    s := !s +. Dist.holding_time rng dist
  done;
  !s /. float_of_int n

let test_dist_means () =
  let rng = Rng.create ~seed:7 in
  let m_exp = sample_mean rng Dist.Exponential 20_000 in
  checkb "exponential unit mean" true (abs_float (m_exp -. 1.0) < 0.03);
  let m_par = sample_mean rng (Dist.Pareto 2.5) 20_000 in
  checkb "pareto rescaled to unit mean" true (abs_float (m_par -. 1.0) < 0.06)

let test_dist_parse () =
  (match Dist.holding_of_string "exp" with
  | Ok Dist.Exponential -> ()
  | _ -> Alcotest.fail "exp should parse");
  (match Dist.holding_of_string "pareto:2.5" with
  | Ok (Dist.Pareto a) -> checkf "alpha" 2.5 a
  | _ -> Alcotest.fail "pareto:2.5 should parse");
  (match Dist.holding_of_string "pareto:1.0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "alpha <= 1 has no mean; must be rejected");
  (match Dist.holding_of_string "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus must be rejected");
  Alcotest.(check string)
    "pp roundtrip" "pareto:2.5"
    (Format.asprintf "%a" Dist.pp_holding (Dist.Pareto 2.5))

(* ---------- Batch_means ---------- *)

let test_batch_means_basic () =
  let bm = Batch_means.create ~batches:5 ~total:100 in
  for i = 1 to 100 do
    Batch_means.add bm (float_of_int i)
  done;
  check "count" 100 (Batch_means.count bm);
  let ms = Batch_means.means bm in
  check "five batches" 5 (Array.length ms);
  checkf "first batch mean" 10.5 ms.(0);
  let s = Batch_means.summary bm in
  checkf "grand mean" 50.5 s.Batch_means.mean;
  check "summary count" 100 s.Batch_means.count;
  checkb "interval brackets the mean" true
    (s.Batch_means.ci_low < 50.5 && 50.5 < s.Batch_means.ci_high)

let test_batch_means_constant () =
  let bm = Batch_means.create ~batches:4 ~total:40 in
  for _ = 1 to 40 do
    Batch_means.add bm 3.0
  done;
  let s = Batch_means.summary bm in
  checkf "mean" 3.0 s.Batch_means.mean;
  checkf "zero-width low" 3.0 s.Batch_means.ci_low;
  checkf "zero-width high" 3.0 s.Batch_means.ci_high

let test_of_means_and_quantile () =
  let s = Batch_means.of_means ~count:400 [| 1.0; 2.0; 3.0; 4.0 |] in
  checkf "pooled mean" 2.5 s.Batch_means.mean;
  check "batches" 4 s.Batch_means.batches;
  check "count" 400 s.Batch_means.count;
  checkb "t(3) = 3.182" true
    (abs_float (Batch_means.t_quantile ~df:3 -. 3.182) < 1e-9);
  checkb "t(1000) -> normal limit" true
    (abs_float (Batch_means.t_quantile ~df:1000 -. 1.96) < 1e-9)

(* ---------- Traffic: conservation laws ---------- *)

let test_traffic_conservation () =
  let net = Benes.create 8 in
  let config =
    Traffic.config ~load:2.0 ~mtbf:2000.0 ~mttr:2.0
      ~stop:(Traffic.Horizon 200.0) ()
  in
  let s = Traffic.run ~rng:(Rng.create ~seed:10) ~config net in
  checkb "events happened" true (s.Traffic.events > 0);
  checkb "traffic flowed" true (s.Traffic.served > 50);
  check "offered conserved" s.Traffic.offered
    (s.Traffic.served + s.Traffic.blocked);
  checkb "blocked_full within blocked" true
    (s.Traffic.blocked_full <= s.Traffic.blocked);
  checkb "rerouted within dropped" true
    (s.Traffic.rerouted <= s.Traffic.dropped);
  checkb "repairs within failures" true
    (s.Traffic.repairs <= s.Traffic.failures);
  checkb "failures happened" true (s.Traffic.failures > 0);
  checkb "repairs happened" true (s.Traffic.repairs > 0);
  checkb "occupancy positive" true (s.Traffic.occupancy > 0.0);
  checkb "max_concurrent sane" true
    (s.Traffic.max_concurrent >= 1 && s.Traffic.max_concurrent <= 8)

(* Little's law: on the measured window, time-average occupancy L must
   match the carried load lambda * W-bar computed from holding times *)
let test_traffic_little () =
  let net = Crossbar.square 4 in
  let config =
    Traffic.config ~load:2.0
      ~stop:(Traffic.Calls { warmup = 500; measured = 20_000 })
      ()
  in
  let s = Traffic.run ~rng:(Rng.create ~seed:5) ~config net in
  checkb "occupancy matches carried (Little)" true
    (abs_float (s.Traffic.occupancy -. s.Traffic.carried)
    < 0.05 *. s.Traffic.carried);
  checkb "occupancy below server count" true (s.Traffic.occupancy < 4.0)

(* ---------- Traffic: Erlang-B validation ---------- *)

(* B(c, a) by the standard recurrence *)
let erlang_b ~servers ~load =
  let b = ref 1.0 in
  for k = 1 to servers do
    b := load *. !b /. (float_of_int k +. (load *. !b))
  done;
  !b

(* An n x n crossbar under Poisson arrivals to uniformly random idle
   pairs is a true M/M/c/c loss system with c = n: the simulated blocking
   must agree with the Erlang-B formula within the reported 95% CI. *)
let test_traffic_erlang_b () =
  let net = Crossbar.square 4 in
  List.iter
    (fun load ->
      let config =
        Traffic.config ~load
          ~stop:(Traffic.Calls { warmup = 500; measured = 10_000 })
          ()
      in
      let s =
        Traffic.estimate ~jobs:1 ~trials:4 ~rng:(Rng.create ~seed:10) ~config
          net
      in
      let b = erlang_b ~servers:4 ~load in
      let ci = s.Traffic.blocking in
      if not (ci.Batch_means.ci_low <= b && b <= ci.Batch_means.ci_high) then
        Alcotest.failf
          "load %g: Erlang-B %.5f outside reported CI [%.5f, %.5f] (mean %.5f)"
          load b ci.Batch_means.ci_low ci.Batch_means.ci_high
          ci.Batch_means.mean;
      (* every loss in a crossbar is a system-full loss: the network
         itself is strictly nonblocking *)
      check "no nonblocking violations" s.Traffic.t_blocked
        s.Traffic.t_blocked_full)
    [ 2.0; 0.8 ]

(* ---------- Traffic: saturation, degradation, catastrophe ---------- *)

let test_traffic_saturate_degrade () =
  (* saturated identity calls on a crossbar, aggressive permanent
     failures: the first failure either severs an unreroutable identity
     call (open) or contracts a terminal pair (closed) — the run must
     stop and say which *)
  let net = Crossbar.square 4 in
  let config =
    Traffic.config ~load:0.0 ~mtbf:1.0 ~mttr:infinity
      ~stop:(Traffic.Horizon 1000.0) ~saturate:true ~stop_on_degradation:true
      ()
  in
  let s = Traffic.run ~rng:(Rng.create ~seed:2) ~config net in
  check "saturation placed the identity calls" 4 s.Traffic.served;
  checkb "failures occurred" true (s.Traffic.failures >= 1);
  checkb "run ended in degradation or catastrophe" true
    (s.Traffic.degraded_at <> None || s.Traffic.catastrophe_at <> None);
  (match (s.Traffic.degraded_at, s.Traffic.catastrophe_at) with
  | Some t, _ | None, Some t ->
      checkb "stop time within horizon" true (t > 0.0 && t < 1000.0)
  | None, None -> ())

let test_config_validation () =
  let rejects f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  rejects (fun () -> Traffic.config ~load:(-1.0) ());
  rejects (fun () -> Traffic.config ~batches:1 ());
  rejects (fun () -> Traffic.config ~mtbf:0.0 ());
  rejects (fun () -> Traffic.config ~mttr:0.0 ());
  rejects (fun () ->
      Traffic.config ~load:0.0
        ~stop:(Traffic.Calls { warmup = 10; measured = 100 })
        ());
  rejects (fun () -> Traffic.config ~stop:(Traffic.Horizon infinity) ())

(* ---------- Traffic: determinism across the Trials fan-out ---------- *)

(* the full summary — floats included — must be bit-identical at every
   jobs count and with tracing on or off *)
let prop_estimate_deterministic =
  QCheck2.Test.make
    ~name:"Traffic.estimate bit-identical across jobs and tracing"
    ~count:6
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let net = Crossbar.square 4 in
      let config =
        Traffic.config ~load:2.0 ~mtbf:80.0 ~mttr:8.0
          ~stop:(Traffic.Calls { warmup = 50; measured = 300 })
          ~batches:5 ()
      in
      let go ~jobs ~traced =
        let run trace =
          Traffic.estimate ?trace ~jobs ~trials:3 ~rng:(Rng.create ~seed)
            ~config net
        in
        if traced then begin
          let sink, _events = Ftcsn_obs.Trace.memory () in
          let s = run (Some sink) in
          Ftcsn_obs.Trace.close sink;
          s
        end
        else run None
      in
      let reference = go ~jobs:1 ~traced:false in
      List.for_all
        (fun (jobs, traced) -> go ~jobs ~traced = reference)
        [ (1, true); (2, false); (4, false); (4, true) ])

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_estimate_deterministic ]

let () =
  Alcotest.run "ftcsn_des"
    [
      ( "heap",
        [
          Alcotest.test_case "stable (time, seq) order" `Quick test_heap_order;
          Alcotest.test_case "validation and clear" `Quick test_heap_validation;
        ] );
      ( "dist",
        [
          Alcotest.test_case "unit means" `Quick test_dist_means;
          Alcotest.test_case "CLI parsing" `Quick test_dist_parse;
        ] );
      ( "batch-means",
        [
          Alcotest.test_case "streaming batches" `Quick test_batch_means_basic;
          Alcotest.test_case "constant data" `Quick test_batch_means_constant;
          Alcotest.test_case "pooling and t-table" `Quick
            test_of_means_and_quantile;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "conservation laws" `Quick
            test_traffic_conservation;
          Alcotest.test_case "Little's law" `Slow test_traffic_little;
          Alcotest.test_case "Erlang-B on a crossbar" `Slow
            test_traffic_erlang_b;
          Alcotest.test_case "saturation degradation" `Quick
            test_traffic_saturate_degrade;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ("determinism", props);
    ]
