(* Tests for routing: greedy path-finding, exact backtracking, flow-based
   batch routing, online sessions, and the property deciders. *)

module Network = Ftcsn_networks.Network
module Crossbar = Ftcsn_networks.Crossbar
module Clos = Ftcsn_networks.Clos
module Benes = Ftcsn_networks.Benes
module Butterfly = Ftcsn_networks.Butterfly
module Greedy = Ftcsn_routing.Greedy
module Backtrack = Ftcsn_routing.Backtrack
module Flow_route = Ftcsn_routing.Flow_route
module Session = Ftcsn_routing.Session
module Properties = Ftcsn_routing.Properties
module Perm = Ftcsn_util.Perm
module Rng = Ftcsn_prng.Rng

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ---------- Greedy ---------- *)

let test_greedy_route_and_release () =
  let net = Crossbar.square 3 in
  let r = Greedy.create net in
  let p1 = Greedy.route r ~input:net.Network.inputs.(0) ~output:net.Network.outputs.(1) in
  checkb "routed" true (p1 <> None);
  checkb "input busy" true (Greedy.busy r net.Network.inputs.(0));
  (match p1 with
  | Some p ->
      Greedy.release r p;
      checkb "released" false (Greedy.busy r net.Network.inputs.(0))
  | None -> ());
  ignore (Greedy.route r ~input:net.Network.inputs.(0) ~output:net.Network.outputs.(0))

let test_greedy_busy_endpoint_raises () =
  let net = Crossbar.square 2 in
  let r = Greedy.create net in
  ignore (Greedy.route r ~input:net.Network.inputs.(0) ~output:net.Network.outputs.(0));
  Alcotest.check_raises "busy endpoint"
    (Invalid_argument "Greedy.route: endpoint already busy") (fun () ->
      ignore
        (Greedy.route r ~input:net.Network.inputs.(0)
           ~output:net.Network.outputs.(1)))

let test_greedy_crossbar_full_permutation () =
  (* a crossbar routes any permutation greedily: depth-1 paths never clash *)
  let net = Crossbar.square 5 in
  Perm.iter_all 4 (fun _ -> ());
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 20 do
    let r = Greedy.create net in
    let pi = Rng.permutation rng 5 in
    let success = ref 0 in
    ignore (Greedy.route_permutation r pi ~success);
    check "all routed" 5 !success
  done

let test_greedy_respects_allowed () =
  let net = Crossbar.square 2 in
  (* forbid everything except terminals of request 0-0 *)
  let allow = [ net.Network.inputs.(0); net.Network.outputs.(0) ] in
  let r = Greedy.create ~allowed:(fun v -> List.mem v allow) net in
  checkb "allowed pair routes" true
    (Greedy.route r ~input:net.Network.inputs.(0) ~output:net.Network.outputs.(0)
    <> None);
  checkb "forbidden output fails" true
    (Greedy.route r ~input:net.Network.inputs.(1) ~output:net.Network.outputs.(1)
    = None)

let test_greedy_clos_nonblocking_sequence () =
  (* strictly nonblocking Clos: greedy never blocks on any sequence *)
  let net = Clos.nonblocking ~n:4 in
  let rng = Rng.create ~seed:2 in
  for _ = 1 to 30 do
    let r = Greedy.create net in
    let pi = Rng.permutation rng 4 in
    let success = ref 0 in
    ignore (Greedy.route_permutation r pi ~success);
    check "all routed" 4 !success
  done

let test_greedy_clear () =
  let net = Crossbar.square 2 in
  let r = Greedy.create net in
  ignore (Greedy.route r ~input:net.Network.inputs.(0) ~output:net.Network.outputs.(0));
  Greedy.clear r;
  checkb "cleared" false (Greedy.busy r net.Network.inputs.(0))

(* ---------- Backtrack ---------- *)

let requests_of_perm net pi =
  Array.to_list
    (Array.mapi (fun i o -> (net.Network.inputs.(i), net.Network.outputs.(o))) pi)

let test_backtrack_routes_benes_all_perms () =
  let net = Benes.create 4 in
  Perm.iter_all 4 (fun pi ->
      match Backtrack.route_all net (requests_of_perm net (Array.copy pi)) with
      | Backtrack.Routed paths ->
          let all = List.concat paths in
          check "disjoint" (List.length all)
            (List.length (List.sort_uniq compare all))
      | Backtrack.Unroutable -> Alcotest.fail "Benes must route every perm"
      | Backtrack.Budget_exceeded -> Alcotest.fail "budget too small")

let test_backtrack_detects_unroutable () =
  (* butterfly has unique paths: requests 0->0 and 1->1 collide at n=2?
     use two requests sharing the single middle vertex *)
  let g = Ftcsn_graph.Digraph.of_edges ~n:5 [| (0, 2); (1, 2); (2, 3); (2, 4) |] in
  let net = Network.make ~name:"funnel" ~graph:g ~inputs:[| 0; 1 |] ~outputs:[| 3; 4 |] in
  (match Backtrack.route_all net [ (0, 3); (1, 4) ] with
  | Backtrack.Unroutable -> ()
  | _ -> Alcotest.fail "should be unroutable");
  (* single request routes fine *)
  match Backtrack.route_all net [ (0, 3) ] with
  | Backtrack.Routed [ p ] -> Alcotest.(check (list int)) "path" [ 0; 2; 3 ] p
  | _ -> Alcotest.fail "single request should route"

let test_backtrack_budget () =
  let net = Benes.create 8 in
  let rng = Rng.create ~seed:3 in
  let pi = Rng.permutation rng 8 in
  match Backtrack.route_all ~budget:3 net (requests_of_perm net pi) with
  | Backtrack.Budget_exceeded -> ()
  | _ -> Alcotest.fail "tiny budget must exhaust"

let test_backtrack_needs_backtracking () =
  (* instance where the greedy-first path choice for request 1 must be
     revised: requests (0->4) and (1->5); 0 can go via 2 or 3, 1 only
     via 2.  If request 0 grabs 2 first, backtracking must switch it. *)
  let g =
    Ftcsn_graph.Digraph.of_edges ~n:6
      [| (0, 2); (0, 3); (1, 2); (2, 4); (3, 4); (2, 5) |]
  in
  let net = Network.make ~name:"bt" ~graph:g ~inputs:[| 0; 1 |] ~outputs:[| 4; 5 |] in
  match Backtrack.route_all net [ (0, 4); (1, 5) ] with
  | Backtrack.Routed paths ->
      let all = List.concat paths in
      check "disjoint" (List.length all) (List.length (List.sort_uniq compare all))
  | _ -> Alcotest.fail "backtracking should find the assignment"

let test_count_paths () =
  let net = Benes.create 4 in
  (* Benes(4): each input-output pair has exactly 2 paths (one per half) *)
  check "two paths" 2
    (Backtrack.count_paths net ~src:net.Network.inputs.(0)
       ~dst:net.Network.outputs.(3));
  let bf = Butterfly.make 8 in
  check "butterfly unique" 1
    (Backtrack.count_paths bf ~src:bf.Network.inputs.(2)
       ~dst:bf.Network.outputs.(5))

(* ---------- Flow_route ---------- *)

let test_flow_route_connect () =
  let net = Benes.create 8 in
  match
    Flow_route.connect net ~input_indices:[| 0; 3; 5 |] ~output_indices:[| 1; 2; 7 |]
  with
  | Some paths ->
      check "three paths" 3 (List.length paths);
      let all = List.concat paths in
      check "disjoint" (List.length all) (List.length (List.sort_uniq compare all))
  | None -> Alcotest.fail "Benes superconcentrates"

let test_flow_route_forbidden_blocks () =
  let g = Ftcsn_graph.Digraph.of_edges ~n:3 [| (0, 1); (1, 2) |] in
  let net = Network.make ~name:"chain" ~graph:g ~inputs:[| 0 |] ~outputs:[| 2 |] in
  check "throughput" 1
    (Flow_route.max_throughput net ~input_indices:[| 0 |] ~output_indices:[| 0 |]);
  check "forbidden" 0
    (Flow_route.max_throughput
       ~forbidden:(fun v -> v = 1)
       net ~input_indices:[| 0 |] ~output_indices:[| 0 |])

let test_flow_route_arity () =
  let net = Crossbar.square 2 in
  Alcotest.check_raises "arity" (Invalid_argument "Flow_route.connect: arity")
    (fun () ->
      ignore (Flow_route.connect net ~input_indices:[| 0 |] ~output_indices:[||]))

(* ---------- Session ---------- *)

let test_session_lifecycle () =
  let net = Crossbar.square 3 in
  let s = Session.create ~choice:Session.Shortest net in
  checkb "call 0->1" true (Session.request s ~input:0 ~output:1 <> None);
  checkb "call 1->0" true (Session.request s ~input:1 ~output:0 <> None);
  Alcotest.(check (list (pair int int))) "live" [ (0, 1); (1, 0) ]
    (List.sort compare (Session.live_calls s));
  Session.hangup s ~input:0;
  check "released count" 1 (Session.stats s).Session.released;
  checkb "0 can call again" true (Session.request s ~input:0 ~output:2 <> None);
  let st = Session.stats s in
  check "served" 3 st.Session.served;
  check "blocked" 0 st.Session.blocked;
  check "max concurrent" 2 st.Session.max_concurrent

let test_session_busy_validation () =
  let net = Crossbar.square 2 in
  let s = Session.create ~choice:Session.Shortest net in
  ignore (Session.request s ~input:0 ~output:0);
  Alcotest.check_raises "busy input"
    (Invalid_argument "Session.request: input already in a call") (fun () ->
      ignore (Session.request s ~input:0 ~output:1));
  Alcotest.check_raises "busy output"
    (Invalid_argument "Session.request: output already in a call") (fun () ->
      ignore (Session.request s ~input:1 ~output:0));
  Alcotest.check_raises "hangup unknown" Not_found (fun () ->
      Session.hangup s ~input:1)

let test_session_random_traffic_crossbar () =
  (* crossbar: no blocking ever *)
  let net = Crossbar.square 4 in
  let s = Session.create ~choice:Session.Shortest net in
  let rng = Rng.create ~seed:4 in
  let st = Session.run_random_traffic s ~rng ~steps:500 ~arrival_prob:0.6 in
  check "no blocking" 0 st.Session.blocked;
  checkb "traffic flowed" true (st.Session.served > 50)

let test_session_blocking_on_funnel () =
  (* two inputs forced through one middle vertex: second concurrent call
     must block *)
  let g = Ftcsn_graph.Digraph.of_edges ~n:5 [| (0, 2); (1, 2); (2, 3); (2, 4) |] in
  let net = Network.make ~name:"funnel" ~graph:g ~inputs:[| 0; 1 |] ~outputs:[| 3; 4 |] in
  let s = Session.create ~choice:Session.Shortest net in
  checkb "first call ok" true (Session.request s ~input:0 ~output:0 <> None);
  checkb "second blocks" true (Session.request s ~input:1 ~output:1 = None);
  check "blocked recorded" 1 (Session.stats s).Session.blocked

(* ---------- Properties ---------- *)

let test_crossbar_nonblocking () =
  match Properties.nonblocking_exhaustive ~max_states:100_000 (Crossbar.square 3) with
  | `Holds -> ()
  | `Violated _ -> Alcotest.fail "crossbars are strictly nonblocking"
  | `Budget_exceeded -> Alcotest.fail "budget"

let test_clos_nonblocking_game () =
  (* m = 2k-1 = 3 with k=2, r=2: strictly nonblocking *)
  let net = Clos.make { Clos.m = 3; k = 2; r = 2 } in
  match Properties.nonblocking_exhaustive ~max_states:150_000 net with
  | `Holds -> ()
  | `Violated _ -> Alcotest.fail "Clos(3,2,2) is strictly nonblocking"
  | `Budget_exceeded -> Alcotest.fail "budget"

let test_clos_rearrangeable_not_nonblocking () =
  (* m = k = 2: rearrangeable but not strictly nonblocking *)
  let net = Clos.make { Clos.m = 2; k = 2; r = 2 } in
  (match Properties.nonblocking_exhaustive ~max_states:150_000 net with
  | `Violated v ->
      checkb "witness has established paths" true
        (List.length v.Properties.established >= 1)
  | `Holds -> Alcotest.fail "Clos(2,2,2) is not strictly nonblocking"
  | `Budget_exceeded -> Alcotest.fail "budget");
  match Properties.rearrangeable_exhaustive net with
  | `Holds -> ()
  | `Violated pi -> Alcotest.failf "should rearrange %s" (Format.asprintf "%a" Perm.pp pi)
  | `Budget_exceeded -> Alcotest.fail "budget"

let test_benes_rearrangeable_exhaustive () =
  match Properties.rearrangeable_exhaustive (Benes.create 4) with
  | `Holds -> ()
  | `Violated _ -> Alcotest.fail "Benes is rearrangeable"
  | `Budget_exceeded -> Alcotest.fail "budget"

let test_butterfly_not_rearrangeable () =
  match Properties.rearrangeable_exhaustive (Butterfly.make 4) with
  | `Violated _ -> ()
  | `Holds -> Alcotest.fail "butterfly cannot rearrange"
  | `Budget_exceeded -> Alcotest.fail "budget"

let test_butterfly_banyan () =
  checkb "butterfly is banyan" true (Properties.is_banyan (Butterfly.make 8));
  checkb "benes is not" false (Properties.is_banyan (Benes.create 4))

let test_superconcentrator_checks () =
  let benes = Benes.create 4 in
  (match Properties.superconcentrator_exhaustive ~max_work:50_000 benes with
  | `Holds -> ()
  | `Violated _ -> Alcotest.fail "Benes superconcentrates"
  | `Too_large -> Alcotest.fail "should fit");
  (* butterfly is not a superconcentrator: requests 0,1 -> both outputs
     reachable only through shared vertices at some r *)
  let bf = Butterfly.make 4 in
  match Properties.superconcentrator_exhaustive ~max_work:50_000 bf with
  | `Violated v -> checkb "achieved < r" true (v.Properties.achieved < v.Properties.r)
  | `Holds -> Alcotest.fail "butterfly should violate"
  | `Too_large -> Alcotest.fail "should fit"

let test_superconcentrator_sampled_agrees () =
  let rng = Rng.create ~seed:5 in
  let benes = Benes.create 8 in
  checkb "no violation" true
    (Properties.superconcentrator_sampled ~trials:50 ~rng benes = None);
  let bf = Butterfly.make 8 in
  checkb "violation found" true
    (Properties.superconcentrator_sampled ~trials:200 ~rng bf <> None)

let test_nonblocking_stress_crossbar () =
  let rng = Rng.create ~seed:6 in
  let st = Properties.nonblocking_stress ~steps:400 ~rng (Crossbar.square 4) in
  check "never blocks" 0 st.Session.blocked

let test_rearrangeable_sampled () =
  let rng = Rng.create ~seed:7 in
  checkb "benes fine" true
    (Properties.rearrangeable_sampled ~trials:10 ~rng
       (Benes.create 8)
    = None);
  checkb "butterfly caught" true
    (Properties.rearrangeable_sampled ~trials:30 ~rng (Butterfly.make 8) <> None)

(* ---------- Wide_sense ---------- *)

module Wide_sense = Ftcsn_routing.Wide_sense

let test_wsnb_greedy_wins_on_crossbar () =
  (* strictly nonblocking => every strategy wins the adversary game *)
  match Wide_sense.adversary_game Wide_sense.greedy_strategy (Crossbar.square 3) with
  | Wide_sense.Strategy_wins -> ()
  | Wide_sense.Adversary_wins _ -> Alcotest.fail "crossbar is strictly nonblocking"
  | Wide_sense.Budget_exceeded -> Alcotest.fail "budget"

let test_wsnb_greedy_wins_on_snb_clos () =
  match
    Wide_sense.adversary_game ~max_states:200_000 Wide_sense.greedy_strategy
      (Clos.make { Clos.m = 3; k = 2; r = 2 })
  with
  | Wide_sense.Strategy_wins -> ()
  | Wide_sense.Adversary_wins _ -> Alcotest.fail "Clos(3,2,2) is strictly nonblocking"
  | Wide_sense.Budget_exceeded -> Alcotest.fail "budget"

let test_wsnb_adversary_beats_rearrangeable () =
  (* on a merely-rearrangeable Clos NO memoryless strategy survives the
     exhaustive adversary; check both of ours lose *)
  let net = Clos.make { Clos.m = 2; k = 2; r = 2 } in
  List.iter
    (fun strategy ->
      match Wide_sense.adversary_game ~max_states:200_000 strategy net with
      | Wide_sense.Adversary_wins (live, _) ->
          checkb "loss needs established calls" true (live <> [])
      | Wide_sense.Strategy_wins ->
          Alcotest.fail "Clos(2,2,2) cannot be nonblocking under any strategy"
      | Wide_sense.Budget_exceeded -> Alcotest.fail "budget")
    [ Wide_sense.greedy_strategy; Wide_sense.packing_strategy ]

let test_wsnb_packing_valid_paths () =
  (* the packing strategy must return validated paths on a stress run *)
  let rng = Rng.create ~seed:60 in
  let offered, blocked =
    Wide_sense.stress ~steps:300 ~rng Wide_sense.packing_strategy
      (Clos.make { Clos.m = 3; k = 2; r = 2 })
  in
  checkb "traffic flowed" true (offered > 30);
  check "no blocking on snb clos" 0 blocked

let test_wsnb_stress_blocking_detected () =
  let rng = Rng.create ~seed:61 in
  let offered, blocked =
    Wide_sense.stress ~steps:500 ~rng Wide_sense.greedy_strategy
      (Benes.create 8)
  in
  checkb "offered" true (offered > 50);
  checkb "benes blocks under greedy" true (blocked > 0)

let prop_greedy_paths_valid =
  QCheck2.Test.make ~name:"greedy routes are idle-vertex paths with real edges"
    ~count:60
    QCheck2.Gen.(pair (int_range 0 100000) (int_range 2 4))
    (fun (seed, logn) ->
      let rng = Rng.create ~seed in
      let n = 1 lsl logn in
      let net = Benes.create n in
      let router = Greedy.create net in
      let g = net.Ftcsn_networks.Network.graph in
      let ok = ref true in
      for _ = 1 to n / 2 do
        let i = Rng.int rng n and o = Rng.int rng n in
        if
          (not (Greedy.busy router net.Ftcsn_networks.Network.inputs.(i)))
          && not (Greedy.busy router net.Ftcsn_networks.Network.outputs.(o))
        then begin
          match
            Greedy.route router
              ~input:net.Ftcsn_networks.Network.inputs.(i)
              ~output:net.Ftcsn_networks.Network.outputs.(o)
          with
          | None -> ()
          | Some path ->
              let rec edges = function
                | a :: (b :: _ as rest) ->
                    if
                      not
                        (Ftcsn_graph.Digraph.fold_out g a ~init:false
                           ~f:(fun acc ~dst ~eid:_ -> acc || dst = b))
                    then ok := false
                    else edges rest
                | _ -> ()
              in
              edges path
        end
      done;
      !ok)

let prop_session_conservation =
  QCheck2.Test.make ~name:"session stats conserve: served = blocked-complement"
    ~count:40
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let net = Crossbar.square 4 in
      let s = Session.create ~choice:Session.Shortest net in
      let st = Session.run_random_traffic s ~rng ~steps:100 ~arrival_prob:0.5 in
      st.Session.offered = st.Session.served + st.Session.blocked
      && st.Session.released <= st.Session.served)

(* drive a session by hand (tracking every path it returns) and check the
   §2 invariants at every step: live paths pairwise vertex-disjoint,
   counters conserved, max_concurrent the true running maximum *)
let prop_session_invariants =
  QCheck2.Test.make
    ~name:"session invariants: disjoint live paths, conserved counters"
    ~count:30
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n = 8 in
      let net = Benes.create n in
      let s =
        Session.create
          ~choice:(Session.Randomised (Rng.create ~seed:(seed + 1)))
          net
      in
      let paths = Hashtbl.create 8 in
      let my_max = ref 0 in
      let ok = ref true in
      for _ = 1 to 200 do
        let live = Session.live_calls s in
        let nlive = List.length live in
        if Rng.float rng < 0.6 && nlive < n then begin
          let all = List.init n Fun.id in
          let ins = List.filter (fun i -> not (List.mem_assoc i live)) all in
          let outs = List.map snd live in
          let louts = List.filter (fun o -> not (List.mem o outs)) all in
          if ins <> [] && louts <> [] then begin
            let i = List.nth ins (Rng.int rng (List.length ins)) in
            let o = List.nth louts (Rng.int rng (List.length louts)) in
            match Session.request s ~input:i ~output:o with
            | Some p -> Hashtbl.replace paths i p
            | None -> ()
          end
        end
        else if nlive > 0 then begin
          let i, _ = List.nth live (Rng.int rng nlive) in
          Session.hangup s ~input:i;
          Hashtbl.remove paths i
        end;
        let seen = Hashtbl.create 64 in
        Hashtbl.iter
          (fun _ p ->
            List.iter
              (fun v ->
                if Hashtbl.mem seen v then ok := false
                else Hashtbl.add seen v ())
              p)
          paths;
        let cur = List.length (Session.live_calls s) in
        if cur > !my_max then my_max := cur
      done;
      let st = Session.stats s in
      !ok
      && st.Session.offered = st.Session.served + st.Session.blocked
      && st.Session.released <= st.Session.served
      && st.Session.served - st.Session.released = Hashtbl.length paths
      && st.Session.max_concurrent = !my_max)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_greedy_paths_valid; prop_session_conservation;
      prop_session_invariants ]

let () =
  Alcotest.run "ftcsn_routing"
    [
      ( "greedy",
        [
          Alcotest.test_case "route/release" `Quick test_greedy_route_and_release;
          Alcotest.test_case "busy endpoint" `Quick test_greedy_busy_endpoint_raises;
          Alcotest.test_case "crossbar perms" `Quick
            test_greedy_crossbar_full_permutation;
          Alcotest.test_case "allowed" `Quick test_greedy_respects_allowed;
          Alcotest.test_case "clos nonblocking" `Quick
            test_greedy_clos_nonblocking_sequence;
          Alcotest.test_case "clear" `Quick test_greedy_clear;
        ] );
      ( "backtrack",
        [
          Alcotest.test_case "benes all perms" `Quick
            test_backtrack_routes_benes_all_perms;
          Alcotest.test_case "unroutable" `Quick test_backtrack_detects_unroutable;
          Alcotest.test_case "budget" `Quick test_backtrack_budget;
          Alcotest.test_case "needs backtracking" `Quick
            test_backtrack_needs_backtracking;
          Alcotest.test_case "count paths" `Quick test_count_paths;
        ] );
      ( "flow-route",
        [
          Alcotest.test_case "connect" `Quick test_flow_route_connect;
          Alcotest.test_case "forbidden" `Quick test_flow_route_forbidden_blocks;
          Alcotest.test_case "arity" `Quick test_flow_route_arity;
        ] );
      ( "session",
        [
          Alcotest.test_case "lifecycle" `Quick test_session_lifecycle;
          Alcotest.test_case "validation" `Quick test_session_busy_validation;
          Alcotest.test_case "random traffic" `Quick
            test_session_random_traffic_crossbar;
          Alcotest.test_case "blocking funnel" `Quick test_session_blocking_on_funnel;
        ] );
      ( "properties",
        [
          Alcotest.test_case "crossbar nonblocking" `Quick test_crossbar_nonblocking;
          Alcotest.test_case "clos nonblocking game" `Quick test_clos_nonblocking_game;
          Alcotest.test_case "clos rearrangeable-only" `Quick
            test_clos_rearrangeable_not_nonblocking;
          Alcotest.test_case "benes rearrangeable" `Quick
            test_benes_rearrangeable_exhaustive;
          Alcotest.test_case "butterfly not rearrangeable" `Quick
            test_butterfly_not_rearrangeable;
          Alcotest.test_case "banyan" `Quick test_butterfly_banyan;
          Alcotest.test_case "superconcentrator" `Quick test_superconcentrator_checks;
          Alcotest.test_case "sc sampled" `Quick test_superconcentrator_sampled_agrees;
          Alcotest.test_case "stress crossbar" `Quick test_nonblocking_stress_crossbar;
          Alcotest.test_case "rearrangeable sampled" `Quick test_rearrangeable_sampled;
        ] );
      ( "wide-sense",
        [
          Alcotest.test_case "greedy on crossbar" `Quick
            test_wsnb_greedy_wins_on_crossbar;
          Alcotest.test_case "greedy on snb clos" `Slow
            test_wsnb_greedy_wins_on_snb_clos;
          Alcotest.test_case "adversary beats rearrangeable" `Slow
            test_wsnb_adversary_beats_rearrangeable;
          Alcotest.test_case "packing paths valid" `Quick
            test_wsnb_packing_valid_paths;
          Alcotest.test_case "stress detects blocking" `Quick
            test_wsnb_stress_blocking_detected;
        ] );
      ("qcheck", props);
    ]
