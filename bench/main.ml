(* Experiment + benchmark driver.

   Usage:
     dune exec bench/main.exe                 # every experiment + timings
     dune exec bench/main.exe -- e7 f5        # selected experiments
     dune exec bench/main.exe -- --quick      # reduced trial counts
     dune exec bench/main.exe -- --jobs 4     # Monte-Carlo worker domains
     dune exec bench/main.exe -- --no-timings # tables only
     dune exec bench/main.exe -- --smoke      # engine sweep only, reduced
                                              # trials; CI smoke check
     dune exec bench/main.exe -- --engine     # engine sweep only, full
                                              # trials; refresh BENCH_timings *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let no_timings = List.mem "--no-timings" args in
  if List.mem "--smoke" args then (
    Timings.run_engine ~quick:true ();
    exit 0);
  if List.mem "--engine" args then (
    Timings.run_engine ();
    exit 0);
  (* strip "--jobs N" out of the positional arguments *)
  let jobs = ref 1 in
  let rec positionals = function
    | "--jobs" :: v :: rest ->
        jobs := int_of_string v;
        positionals rest
    | a :: rest ->
        if String.length a > 1 && a.[0] = '-' then positionals rest
        else a :: positionals rest
    | [] -> []
  in
  let selected = positionals args in
  let jobs = !jobs in
  Experiments.quick := quick;
  Experiments.jobs := jobs;
  let to_run =
    if selected = [] then Experiments.all
    else
      List.filter_map
        (fun id ->
          match
            List.find_opt (fun (eid, _, _) -> eid = id) Experiments.all
          with
          | Some exp -> Some exp
          | None ->
              Printf.eprintf "unknown experiment %S (known: %s)\n" id
                (String.concat ", "
                   (List.map (fun (eid, _, _) -> eid) Experiments.all));
              None)
        selected
  in
  Printf.printf
    "Fault-Tolerant Circuit-Switching Networks (Pippenger & Lin) — experiment \
     suite%s\n\n"
    (if quick then " [quick mode]" else "");
  List.iter
    (fun (id, description, run) ->
      Printf.printf "--- %s: %s ---\n%!" id description;
      let t0 = Unix.gettimeofday () in
      run ();
      Printf.printf "(%s finished in %.1fs)\n\n%!" id (Unix.gettimeofday () -. t0))
    to_run;
  if (not no_timings) && selected = [] then Timings.run ()
