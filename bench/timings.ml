(* Bechamel micro-benchmarks: one Test.make per experiment kernel, so the
   cost of each reproduction building block is tracked alongside its
   correctness tables. *)

open Bechamel
open Toolkit
module Rng = Ftcsn_prng.Rng
module Network = Ftcsn_networks.Network
module Benes = Ftcsn_networks.Benes
module Digraph = Ftcsn_graph.Digraph

let ft_build =
  Test.make ~name:"e2/e3: build FT network (u=3 scaled)"
    (Staged.stage (fun () ->
         let rng = Rng.create ~seed:1 in
         ignore (Ftcsn.Ft_network.make ~rng (Ftcsn.Ft_params.scaled ~u:3 ()))))

let benes_looping =
  let benes = Benes.make 256 in
  let rng = Rng.create ~seed:2 in
  let pi = Rng.permutation rng 256 in
  Test.make ~name:"baseline: Benes looping route (n=256)"
    (Staged.stage (fun () -> ignore (Benes.route benes pi)))

let sc_probe =
  let benes = Benes.create 64 in
  let rng = Rng.create ~seed:3 in
  Test.make ~name:"e7: superconcentrator flow probe (benes-64)"
    (Staged.stage (fun () ->
         let r = 1 + Rng.int rng 64 in
         let s = Rng.sample_without_replacement rng ~n:64 ~k:r in
         let t = Rng.sample_without_replacement rng ~n:64 ~k:r in
         ignore
           (Ftcsn_routing.Flow_route.max_throughput benes ~input_indices:s
              ~output_indices:t)))

let fault_strip =
  let rng = Rng.create ~seed:4 in
  let ft = Ftcsn.Ft_network.make ~rng (Ftcsn.Ft_params.scaled ~u:3 ()) in
  let net = ft.Ftcsn.Ft_network.net in
  let m = Network.size net in
  Test.make ~name:"e6/e7: fault sample + strip (ft u=3)"
    (Staged.stage (fun () ->
         let pattern =
           Ftcsn_reliability.Fault.sample rng ~eps_open:0.01 ~eps_close:0.01 ~m
         in
         ignore (Ftcsn.Fault_strip.strip net pattern)))

let hammock_trial =
  let h = Ftcsn_reliability.Hammock.make ~rows:8 ~width:8 in
  let rng = Rng.create ~seed:5 in
  Test.make ~name:"e1: hammock Monte-Carlo trial (8x8)"
    (Staged.stage (fun () ->
         let pattern =
           Ftcsn_reliability.Fault.sample rng ~eps_open:0.05 ~eps_close:0.05
             ~m:(Digraph.edge_count h.Ftcsn_reliability.Hammock.graph)
         in
         ignore
           (Ftcsn_reliability.Survivor.connected_ignoring_opens
              h.Ftcsn_reliability.Hammock.graph pattern
              ~a:h.Ftcsn_reliability.Hammock.input
              ~b:h.Ftcsn_reliability.Hammock.output)))

let tree_extraction =
  let rng = Rng.create ~seed:6 in
  let tree = Ftcsn.Tree_paths.random_internal3_tree ~rng ~leaves:1000 in
  Test.make ~name:"e9: Lemma-1 path extraction (1000 leaves)"
    (Staged.stage (fun () -> ignore (Ftcsn.Tree_paths.short_leaf_paths tree)))

let zone_analysis =
  let rng = Rng.create ~seed:7 in
  let ft = Ftcsn.Ft_network.make ~rng (Ftcsn.Ft_params.scaled ~u:3 ()) in
  Test.make ~name:"e10: Theorem-1 zone analysis (ft u=3)"
    (Staged.stage (fun () ->
         ignore
           (Ftcsn.Lower_bound.analyse ~threshold:3 ~radius:1 ~max_inputs:8
              ft.Ftcsn.Ft_network.net)))

let structured_route =
  let rng = Rng.create ~seed:8 in
  let ft = Ftcsn.Ft_network.make ~rng (Ftcsn.Ft_params.scaled ~u:4 ()) in
  let plan = Ftcsn.Ft_route.plan ft in
  let pi = Rng.permutation rng 16 in
  Test.make ~name:"ft-route: structured permutation route (u=4)"
    (Staged.stage (fun () ->
         ignore
           (Ftcsn.Ft_route.route_permutation plan ~allowed:(fun _ -> true) pi)))

let bfs_route =
  let rng = Rng.create ~seed:9 in
  let ft = Ftcsn.Ft_network.make ~rng (Ftcsn.Ft_params.scaled ~u:4 ()) in
  let pi = Rng.permutation rng 16 in
  Test.make ~name:"ft-route: generic BFS permutation route (u=4)"
    (Staged.stage (fun () ->
         let r = Ftcsn_routing.Greedy.create ft.Ftcsn.Ft_network.net in
         let s = ref 0 in
         ignore (Ftcsn_routing.Greedy.route_permutation r pi ~success:s)))

let tests =
  [
    ft_build;
    structured_route;
    bfs_route;
    benes_looping;
    sc_probe;
    fault_strip;
    hammock_trial;
    tree_extraction;
    zone_analysis;
  ]

(* ------------------------------------------------------------------ *)
(* Engine throughput: wall-clock measurements of the Ftcsn_sim.Trials   *)
(* engine on representative Monte-Carlo sweeps, at several job counts.  *)
(* Emitted both as a printed table and as machine-readable               *)
(* BENCH_timings.json for tracking across commits.                      *)
(* ------------------------------------------------------------------ *)

type engine_sample = {
  bench : string;
  jobs : int;
  trials : int;
  seconds : float;  (** wall-clock time of the whole sweep *)
  rate : float;  (** trials per second *)
  chunks : int;  (** chunk dispatches the engine made *)
  worker_seconds : float;  (** on-domain chunk time, summed over workers *)
  overhead_seconds : float;
      (** wall time not explained by achievable parallel chunk execution:
          [seconds - worker_seconds / min jobs cores], i.e. worker
          dispatch, scheduling and result merging.  The divisor is capped
          at the core count because [jobs] beyond it cannot execute
          concurrently — on a 1-core host a jobs=2 run's ideal wall time
          is [worker_seconds], not [worker_seconds / 2], and dividing by
          [jobs] would book the missing hardware as engine overhead. *)
  pool_spawns : int;
      (** worker domains the persistent pool spawned during this sample;
          0 on every run whose [jobs] the pool has already reached *)
  pool_reused : bool;  (** [jobs > 1] with no spawn: the pool was warm *)
  extras : (string * Ftcsn_obs.Json.t) list;
      (** bench-specific extra metrics appended to the JSON record
          (e.g. the traffic engine's events/s and blocking CI width) *)
  minor_words_per_trial : float;
      (** minor-heap words allocated per trial on the scheduling domain.
          At [jobs=1] every chunk runs on the calling domain, so this is
          the exact per-trial allocation; at [jobs>1] it only covers the
          chunks the scheduler ran itself plus dispatch costs. *)
  promoted_words_per_trial : float;
      (** words promoted minor→major per trial, same caveat as above *)
}

let c_pool_spawns =
  Ftcsn_obs.Metrics.counter Ftcsn_obs.Metrics.default "trials.pool.spawns"

(* Each sweep runs with an in-memory trace sink attached; the engine's
   per-chunk events give the phase breakdown without touching the clock
   inside any trial. *)
let timed_once ~bench ~jobs ~trials f =
  let sink, drain = Ftcsn_obs.Trace.memory () in
  let sp0 = Ftcsn_obs.Counter.get c_pool_spawns in
  let mw0 = Gc.minor_words () in
  let pw0 = (Gc.quick_stat ()).Gc.promoted_words in
  let t0 = Unix.gettimeofday () in
  f ~jobs ~trials ~trace:sink;
  let seconds = Unix.gettimeofday () -. t0 in
  let minor_words = Gc.minor_words () -. mw0 in
  let promoted_words = (Gc.quick_stat ()).Gc.promoted_words -. pw0 in
  let pool_spawns = Ftcsn_obs.Counter.get c_pool_spawns - sp0 in
  Ftcsn_obs.Trace.close sink;
  let chunks = ref 0 in
  let busy_ns = ref 0 in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Ftcsn_obs.Trace.Chunk { elapsed_ns; _ } ->
          incr chunks;
          busy_ns := !busy_ns + elapsed_ns
      | _ -> ())
    (drain ());
  let worker_seconds = float_of_int !busy_ns *. 1e-9 in
  let parallelism = min jobs (Domain.recommended_domain_count ()) in
  let overhead_seconds =
    Float.max 0.0 (seconds -. (worker_seconds /. float_of_int parallelism))
  in
  {
    bench;
    jobs;
    trials;
    seconds;
    rate = float_of_int trials /. seconds;
    chunks = !chunks;
    worker_seconds;
    overhead_seconds;
    pool_spawns;
    pool_reused = jobs > 1 && pool_spawns = 0;
    extras = [];
    minor_words_per_trial = minor_words /. float_of_int trials;
    promoted_words_per_trial = promoted_words /. float_of_int trials;
  }

(* Repeat each sweep [reps] times and report the fastest repetition —
   the standard defense against co-tenant load spikes on a shared host.
   Estimates are deterministic, so every repetition computes the same
   numbers; only the wall clock differs.  [pool_spawns] is summed over
   the repetitions: a spawn happens at most once per pool level no
   matter how often the sweep reruns, and folding it in keeps
   [pool_reused] meaning "this sample never had to spawn". *)
let timed ?(reps = 1) ~bench ~jobs ~trials f =
  let first = timed_once ~bench ~jobs ~trials f in
  let best = ref first in
  let spawns = ref first.pool_spawns in
  for _ = 2 to reps do
    let s = timed_once ~bench ~jobs ~trials f in
    spawns := !spawns + s.pool_spawns;
    if s.seconds < !best.seconds then best := s
  done;
  {
    !best with
    pool_spawns = !spawns;
    pool_reused = jobs > 1 && !spawns = 0;
  }

let engine_samples ?(quick = false) ~jobs_list () =
  let h = Ftcsn_reliability.Hammock.make ~rows:8 ~width:8 in
  let hammock_sweep ~jobs ~trials ~trace =
    let rng = Rng.create ~seed:42 in
    ignore
      (Ftcsn_reliability.Hammock.open_failure_prob ~jobs ~trace ~trials ~rng
         ~eps:0.05 h)
  in
  let benes = Benes.create 16 in
  let survival_sweep ~jobs ~trials ~trace =
    let rng = Rng.create ~seed:43 in
    ignore
      (Ftcsn.Pipeline.survival ~jobs ~trace ~trials ~rng ~eps:0.03
         ~probe:Ftcsn.Pipeline.sc_probe_only benes)
  in
  let hammock_trials = if quick then 6_000 else 60_000 in
  let survival_trials = if quick then 200 else 2_000 in
  (* Curve pair: one coupled 8-point sweep vs eight independent runs at
     the same per-point trial budget.  Same seed per point on the
     independent side, so both paths compute bit-identical estimates —
     the timing difference is purely the CRN sharing (one draw pass per
     trial) plus the monotone short-circuit once a trial dies. *)
  (* log-spaced over the rare-failure regime, where curves need their
     resolution: at small ε most trials flip no edge classification
     between neighbouring points, so the coupled sweep skips most of
     the per-point work that independent runs must repeat *)
  let curve_eps =
    Array.init 8 (fun k -> 1e-4 *. ((1e-1 /. 1e-4) ** (float_of_int k /. 7.)))
  in
  let curve_sweep ~jobs ~trials ~trace =
    let rng = Rng.create ~seed:44 in
    ignore
      (Ftcsn.Pipeline.survival_curve ~jobs ~trace ~trials ~rng ~eps:curve_eps
         ~probe:Ftcsn.Pipeline.sc_probe_only benes)
  in
  let independent_runs ~jobs ~trials ~trace =
    let per_point = trials / Array.length curve_eps in
    Array.iter
      (fun eps ->
        let rng = Rng.create ~seed:44 in
        ignore
          (Ftcsn.Pipeline.survival ~jobs ~trace ~trials:per_point ~rng ~eps
             ~probe:Ftcsn.Pipeline.sc_probe_only benes))
      curve_eps
  in
  let reps = if quick then 1 else 3 in
  (* explicit bindings pin the execution order to the listed order
     (OCaml evaluates list elements right-to-left), so the first jobs>1
     sample is the one that pays the pool spawn *)
  let per_jobs =
    List.concat_map
      (fun jobs ->
        let h =
          timed ~reps ~bench:"hammock-open-prob-8x8" ~jobs
            ~trials:hammock_trials hammock_sweep
        in
        let s =
          timed ~reps ~bench:"survival-benes-16" ~jobs ~trials:survival_trials
            survival_sweep
        in
        [ h; s ])
      jobs_list
  in
  let curve =
    timed ~reps ~bench:"survival-benes-16-curve-8pt" ~jobs:1
      ~trials:survival_trials curve_sweep
  in
  let independent =
    timed ~reps ~bench:"survival-benes-16-8runs" ~jobs:1
      ~trials:(8 * survival_trials) independent_runs
  in
  (* Continuous-time traffic engine (Ftcsn_des.Traffic): replications of
     a steady-state blocking estimate on benes-16 under offered load with
     mild failure/repair clocks.  Headline rates are events/s and
     offered calls/s rather than trials/s, plus the width of the pooled
     blocking CI the run buys. *)
  let traffic_last = ref None in
  let traffic_config =
    Ftcsn_des.Traffic.config ~load:8.0 ~mtbf:2000.0 ~mttr:5.0
      ~stop:(Ftcsn_des.Traffic.Calls { warmup = 200; measured = 2000 })
      ()
  in
  let traffic_sweep ~jobs ~trials ~trace =
    let rng = Rng.create ~seed:45 in
    traffic_last :=
      Some
        (Ftcsn_des.Traffic.estimate ~jobs ~trace ~trials ~rng
           ~config:traffic_config benes)
  in
  let traffic_trials = if quick then 4 else 16 in
  (* wall-clock upper bound on the deterministic router's share of a
     traffic sweep: total seconds over the number of route searches the
     run issued (arrivals that reached the router = offered minus
     system-full losses, plus one reroute attempt per severed call).
     An upper bound because the numerator also pays for event handling,
     fault clocks and statistics. *)
  let router_ns_extra t s =
    let calls =
      s.Ftcsn_des.Traffic.t_served
      + (s.Ftcsn_des.Traffic.t_blocked - s.Ftcsn_des.Traffic.t_blocked_full)
      + s.Ftcsn_des.Traffic.t_dropped
    in
    ( "router_ns_per_call",
      Ftcsn_obs.Json.Float
        (if calls = 0 then nan else t.seconds *. 1e9 /. float_of_int calls) )
  in
  let traffic =
    let t =
      timed ~reps ~bench:"traffic-benes-16" ~jobs:1 ~trials:traffic_trials
        traffic_sweep
    in
    match !traffic_last with
    | None -> t
    | Some s ->
        let open Ftcsn_obs.Json in
        let b = s.Ftcsn_des.Traffic.blocking in
        {
          t with
          extras =
            [
              ( "events_per_sec",
                Float (float_of_int s.Ftcsn_des.Traffic.t_events /. t.seconds)
              );
              ( "calls_per_sec",
                Float (float_of_int s.Ftcsn_des.Traffic.t_offered /. t.seconds)
              );
              ("blocking_mean", Float b.Ftcsn_des.Batch_means.mean);
              ( "blocking_ci_width",
                Float
                  (b.Ftcsn_des.Batch_means.ci_high
                  -. b.Ftcsn_des.Batch_means.ci_low) );
              ( "minor_words_per_event",
                Float
                  (t.minor_words_per_trial *. float_of_int t.trials
                  /. float_of_int s.Ftcsn_des.Traffic.t_events) );
              router_ns_extra t s;
            ];
        }
  in
  (* Live daemon (lib/serve): the full decision path a request pays in
     `ftnet serve --replay` — line-JSON parse, admission, one routing
     decision, response serialization — with failure/repair churn on.
     trials = call decisions, so trials/s is the daemon's decisions/s;
     the engine's own latency histogram supplies the per-decision p99. *)
  let serve_lines =
    let calls = if quick then 10_000 else 60_000 in
    Array.init calls (fun i ->
        if i mod 6 = 5 then
          Printf.sprintf {|{"req":"hangup","id":"c%d"}|} (i - 2)
        else
          Printf.sprintf {|{"req":"call","id":"c%d","at":%d.%02d}|} i (i / 20)
            (5 * (i mod 20)))
  in
  let serve_last = ref None in
  let serve_sweep ~jobs:_ ~trials ~trace:_ =
    let rng = Rng.create ~seed:49 in
    let eng =
      Ftcsn_serve.Engine.create ~engine:`Loop ~mtbf:50.0 ~mttr:2.0
        ~emit:(fun r -> ignore (Ftcsn_serve.Proto.response_to_string r))
        ~rng benes
    in
    let n_lines = Array.length serve_lines in
    let k = ref 0 in
    while Ftcsn_serve.Engine.decisions eng < trials do
      (match Ftcsn_serve.Proto.parse_request serve_lines.(!k mod n_lines) with
      | Ok req -> Ftcsn_serve.Engine.handle eng req
      | Error _ -> ());
      incr k
    done;
    serve_last := Some eng
  in
  let serve =
    let t =
      timed ~reps ~bench:"serve-benes-16" ~jobs:1
        ~trials:(if quick then 8_000 else 50_000)
        serve_sweep
    in
    match !serve_last with
    | None -> t
    | Some eng ->
        let open Ftcsn_obs.Json in
        let p99 =
          match
            Option.bind
              (member "decision_latency_ns"
                 (Ftcsn_serve.Engine.metrics_json eng))
              (member "p99")
          with
          | Some (Int v) -> v
          | _ -> 0
        in
        {
          t with
          extras =
            [
              ("decisions_per_sec", Float t.rate);
              ("p99_decision_ns", Int p99);
              ("live_calls", Int (Ftcsn_serve.Engine.live_calls eng));
            ];
        }
  in
  (* Million-switch scale pair (the scale-layer headline): the sharded
     engine with incremental Dyn_conn catastrophe checks on the largest
     Benes that fits the run budget, raced against {!Traffic_ref} — the
     frozen pre-scale-layer engine — on the {e same} network.  The
     baseline rebuilds terminal connectivity from scratch on every
     closed failure (O(V + E) per event at ~2M edges), so it only
     affords a much shorter horizon; events/s is horizon-independent
     once clock bootstrap is amortized, so the rates stay comparable.
     Quick mode shrinks the network but keeps the row names: CI greps
     for them, and the [switches] extra records the honest size. *)
  let scale_n = if quick then 1_024 else 32_768 in
  let scale_net = Benes.create scale_n in
  let scale_switches = Network.size scale_net in
  (* the scale row runs the Benes looping router (the realistic operating
     point at this size); the reference engine ignores the policy and
     routes with its plain BFS, so speedup_vs_ref prices exactly the
     routing change plus the scale-layer machinery *)
  let scale_config ~horizon =
    Ftcsn_des.Traffic.config ~load:50.0 ~mtbf:1000.0 ~mttr:1.0
      ~policy:Ftcsn_des.Traffic.Route_loop
      ~stop:(Ftcsn_des.Traffic.Horizon horizon) ~shards:8 ()
  in
  let scale_horizon = if quick then 20.0 else 50.0 in
  let ref_horizon = if quick then 5.0 else 1.0 in
  let scale_last = ref None in
  let scale_sweep ~jobs ~trials ~trace =
    let rng = Rng.create ~seed:49 in
    scale_last :=
      Some
        (Ftcsn_des.Traffic.estimate ~jobs ~trace ~trials ~rng
           ~config:(scale_config ~horizon:scale_horizon) scale_net)
  in
  let ref_last = ref None in
  let ref_sweep ~jobs ~trials ~trace =
    let rng = Rng.create ~seed:49 in
    ref_last :=
      Some
        (Ftcsn_des.Traffic_ref.estimate ~jobs ~trace ~trials ~rng
           ~config:(scale_config ~horizon:ref_horizon) scale_net)
  in
  let events_per_sec last t =
    match !last with
    | None -> nan
    | Some s -> float_of_int s.Ftcsn_des.Traffic.t_events /. t.seconds
  in
  let scale_baseline =
    let t =
      timed ~reps:1 ~bench:"traffic-benes-1M-baseline" ~jobs:1 ~trials:1
        ref_sweep
    in
    let open Ftcsn_obs.Json in
    {
      t with
      extras =
        [
          ("switches", Int scale_switches);
          ("n", Int scale_n);
          ("horizon", Float ref_horizon);
          ("events_per_sec", Float (events_per_sec ref_last t));
        ];
    }
  in
  let scale =
    let t =
      timed ~reps:1 ~bench:"traffic-benes-1M" ~jobs:1 ~trials:1 scale_sweep
    in
    let open Ftcsn_obs.Json in
    let eps_new = events_per_sec scale_last t in
    let eps_ref =
      match List.assoc_opt "events_per_sec" scale_baseline.extras with
      | Some (Float v) -> v
      | _ -> nan
    in
    let events =
      match !scale_last with
      | Some s -> s.Ftcsn_des.Traffic.t_events
      | None -> 0
    in
    {
      t with
      extras =
        [
          ("switches", Int scale_switches);
          ("n", Int scale_n);
          ("horizon", Float scale_horizon);
          ("shards", Int 8);
          ("events", Int events);
          ("events_per_sec", Float eps_new);
          ("speedup_vs_ref", Float (eps_new /. eps_ref));
          ( "minor_words_per_event",
            Float
              (if events = 0 then nan
               else t.minor_words_per_trial /. float_of_int events) );
          ("router", String (Ftcsn_des.Traffic.router_name
                               (scale_config ~horizon:scale_horizon)
                               scale_net));
        ]
        @ (match !scale_last with
          | None -> []
          | Some s ->
              [
                ( "blocking_mean",
                  Float s.Ftcsn_des.Traffic.blocking.Ftcsn_des.Batch_means.mean
                );
                router_ns_extra t s;
              ]);
    }
  in
  (* Single-request routing micro-rows on the same million-switch Benes:
     route one random input->output request through a lightly faulted
     mask (~0.1% of switches down) and tear it down, repeatedly.  The
     baseline is the pre-arena masked-CSR BFS — an O(V) parent refill
     plus a near-full graph scan per call; the stamped row is the same
     BFS on the epoch-stamped arena (identical paths, no refill); the
     staged row is the level-bounded bidirectional search; the headline
     row is the Benes looping router.  trials = routes, so trials/s is
     routes/s and minor_words_per_trial is words per route. *)
  let route_g = scale_net.Network.graph in
  let route_nv = Digraph.vertex_count route_g in
  let route_m = Digraph.edge_count route_g in
  let route_bad = Array.make route_m false in
  let () =
    let rng = Rng.create ~seed:51 in
    for _ = 1 to route_m / 1000 do
      route_bad.(Rng.int rng route_m) <- true
    done
  in
  let route_edge_ok e = not route_bad.(e) in
  let route_pairs =
    let rng = Rng.create ~seed:52 in
    Array.init 256 (fun _ ->
        ( scale_net.Network.inputs.(Rng.int rng scale_n),
          scale_net.Network.outputs.(Rng.int rng scale_n) ))
  in
  let route_buf = Array.make route_nv 0 in
  let route_row ~bench ~trials ~engine =
    let router =
      Ftcsn_routing.Greedy.create ~edge_ok:route_edge_ok ~engine scale_net
    in
    let sweep ~jobs:_ ~trials ~trace:_ =
      for k = 0 to trials - 1 do
        let i, o = route_pairs.(k land 255) in
        let len =
          Ftcsn_routing.Greedy.route_into router ~input:i ~output:o
            ~buf:route_buf
        in
        if len >= 0 then
          Ftcsn_routing.Greedy.release_buf router ~len route_buf
      done
    in
    let t = timed ~reps:1 ~bench ~jobs:1 ~trials sweep in
    let open Ftcsn_obs.Json in
    {
      t with
      extras =
        [
          ("switches", Int scale_switches);
          ("n", Int scale_n);
          ("routes_per_sec", Float t.rate);
          ("router", String (Ftcsn_routing.Greedy.engine_name router));
        ];
    }
  in
  let route_baseline =
    (* the frozen pre-arena search, driven directly: same mask, same
       request stream, its own parent/queue scratch with the historical
       per-call refill *)
    let parent = Array.make route_nv (-1) and queue = Array.make route_nv 0 in
    let sweep ~jobs:_ ~trials ~trace:_ =
      for k = 0 to trials - 1 do
        let i, o = route_pairs.(k land 255) in
        ignore
          (Ftcsn_graph.Traverse.shortest_path_into_buf ~edge_ok:route_edge_ok
             route_g ~src:i ~dst:o ~parent ~queue ~buf:route_buf)
      done
    in
    let t =
      timed ~reps:1 ~bench:"route-benes-1M-baseline" ~jobs:1
        ~trials:(if quick then 500 else 100)
        sweep
    in
    let open Ftcsn_obs.Json in
    {
      t with
      extras =
        [
          ("switches", Int scale_switches);
          ("n", Int scale_n);
          ("routes_per_sec", Float t.rate);
          ("router", String "refbfs");
        ];
    }
  in
  let with_speedup t =
    let open Ftcsn_obs.Json in
    {
      t with
      extras = t.extras @ [ ("speedup_vs_ref", Float (t.rate /. route_baseline.rate)) ];
    }
  in
  let route_stamped =
    with_speedup
      (route_row ~bench:"route-benes-1M-stamped"
         ~trials:(if quick then 1_000 else 200)
         ~engine:`Bfs)
  in
  let route_staged =
    with_speedup
      (route_row ~bench:"route-benes-1M-staged"
         ~trials:(if quick then 5_000 else 2_000)
         ~engine:`Staged)
  in
  let route_loop =
    with_speedup
      (route_row ~bench:"route-benes-1M"
         ~trials:(if quick then 20_000 else 100_000)
         ~engine:`Loop)
  in
  (* Rare-event pair: the cross-entropy-tilted estimator at the paper's
     eps = 1e-6 on benes-16, against a plain-MC sweep at the same eps
     whose only job is to price a Monte-Carlo trial.  Plain MC at 1e-6
     sees zero failures at any affordable trial count, so its relative
     error is priced analytically: RE_mc = sqrt((1-p)/(p·T)) with p the
     tilted estimate and T the trials plain MC executes in the tilted
     run's wall-clock budget.  The headline ratio (RE_mc/RE_is)^2 is the
     relative-error-per-second improvement: how many times longer plain
     MC would need to run for the same precision. *)
  let rare_last = ref None in
  let rare_sweep ~jobs ~trials ~trace =
    let rng = Rng.create ~seed:47 in
    let tilt =
      Ftcsn.Rare.tune_tilt ~iters:3 ~trials:500 ~trace ~rng ~eps:1e-6 benes
    in
    rare_last :=
      Some
        (Ftcsn.Rare.failure_tilted ~jobs ~trace ~trials ~rng ~eps:1e-6 ~tilt
           benes)
  in
  let mc_sweep ~jobs ~trials ~trace =
    let rng = Rng.create ~seed:48 in
    ignore
      (Ftcsn.Pipeline.survival ~jobs ~trace ~trials ~rng ~eps:1e-6
         ~probe:Ftcsn.Pipeline.sc_probe_only benes)
  in
  let rare_trials = if quick then 2_000 else 20_000 in
  let mc_price =
    timed ~reps ~bench:"mc-benes-16-eps1e-6" ~jobs:1
      ~trials:(if quick then 2_000 else 10_000)
      mc_sweep
  in
  let rare =
    let t =
      timed ~reps ~bench:"rare-benes-16" ~jobs:1 ~trials:rare_trials rare_sweep
    in
    match !rare_last with
    | None -> t
    | Some e ->
        let open Ftcsn_obs.Json in
        let module Sp = Ftcsn_reliability.Splitting in
        let p = e.Sp.mean and re_is = e.Sp.rel_err in
        let mc_trials_same_budget = mc_price.rate *. t.seconds in
        let re_mc = sqrt ((1.0 -. p) /. (p *. mc_trials_same_budget)) in
        {
          t with
          extras =
            [
              ("eps", Float 1e-6);
              ("mean", Float p);
              ("rel_err", Float re_is);
              ("variance_ratio", Float e.Sp.variance_ratio);
              ("mc_trials_per_sec", Float mc_price.rate);
              ("re_per_sec_improvement", Float ((re_mc /. re_is) ** 2.0));
            ];
        }
  in
  (* Tournament smoke: the whole topology registry raced once at small
     trial counts.  Tracks the wall-clock cost of the cross-family sweep
     (rate = families/s) and hands `bench --smoke` a grep-able
     tournament table. *)
  Ftcsn.Ft_topology.install ();
  let family_count = List.length (Ftcsn_networks.Topology.all ()) in
  let tournament_last = ref None in
  let tournament_sweep ~jobs ~trials:_ ~trace =
    tournament_last :=
      Some
        (Ftcsn.Tournament.run ~jobs ~trace
           ~trials:(if quick then 30 else 150)
           ~eps:[| 1e-3; 1e-2; 5e-2 |]
           ~traffic_trials:(if quick then 1 else 2)
           ~calls:(if quick then 200 else 800)
           ~warmup:(if quick then 50 else 100)
           ~n:8 ~seed:46 ())
  in
  let tournament =
    let t =
      timed ~reps:1 ~bench:"tournament-smoke" ~jobs:1 ~trials:family_count
        tournament_sweep
    in
    match !tournament_last with
    | None -> t
    | Some o ->
        let open Ftcsn_obs.Json in
        let entries = o.Ftcsn.Tournament.entries in
        {
          t with
          extras =
            [
              ("families", Int (List.length entries));
              ("skipped", Int (List.length o.Ftcsn.Tournament.skipped));
              ( "pareto_front",
                Int
                  (List.length
                     (List.filter
                        (fun e -> e.Ftcsn.Tournament.pareto)
                        entries)) );
            ];
        }
  in
  ( tournament_last,
    per_jobs
    @ [
        curve; independent; traffic; serve; scale_baseline; scale;
        route_baseline; route_stamped; route_staged; route_loop; mc_price;
        rare; tournament;
      ] )

let write_json path samples =
  let open Ftcsn_obs.Json in
  let cores = Domain.recommended_domain_count () in
  let sample_json s =
    Obj
      ([
         ("name", String s.bench);
         ("jobs", Int s.jobs);
         ("trials", Int s.trials);
         ("seconds", Float s.seconds);
         ("trials_per_sec", Float s.rate);
         ("chunks", Int s.chunks);
         ("worker_seconds", Float s.worker_seconds);
         ("overhead_seconds", Float s.overhead_seconds);
         ("pool_spawns", Int s.pool_spawns);
         ("pool_reused", Bool s.pool_reused);
         ("minor_words_per_trial", Float s.minor_words_per_trial);
         ("promoted_words_per_trial", Float s.promoted_words_per_trial);
       ]
      (* a jobs>cores run cannot execute its domains concurrently; flag
         it so rate comparisons across hosts don't read the missing
         hardware as an engine regression *)
      @ (if s.jobs > cores then [ ("oversubscribed", Bool true) ] else [])
      @ s.extras)
  in
  let doc =
    Obj
      [
        ("cores", Int (Domain.recommended_domain_count ()));
        ("benchmarks", List (List.map sample_json samples));
      ]
  in
  let oc = open_out path in
  output_string oc (to_string doc);
  output_char oc '\n';
  close_out oc

let run_engine ?(quick = false) ?(json_path = "BENCH_timings.json") () =
  print_endline "== engine throughput (Ftcsn_sim.Trials, wall clock) ==";
  let jobs_list = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  let tournament_outcome, samples = engine_samples ~quick ~jobs_list () in
  List.iter
    (fun s ->
      Printf.printf
        "%-28s jobs=%d %8d trials  %6.2fs  %10.0f trials/s  (%d chunks, \
         %.2fs busy, %.2fs overhead, %d spawns%s, %.1f minor w/trial, %.1f \
         promoted w/trial)\n"
        s.bench s.jobs s.trials s.seconds s.rate s.chunks s.worker_seconds
        s.overhead_seconds s.pool_spawns
        (if s.pool_reused then " [pool reused]" else "")
        s.minor_words_per_trial s.promoted_words_per_trial)
    samples;
  (* speedup of the hammock sweep vs jobs=1, the headline number *)
  (match
     ( List.find_opt (fun s -> s.bench = "hammock-open-prob-8x8" && s.jobs = 1) samples,
       List.find_opt (fun s -> s.bench = "hammock-open-prob-8x8" && s.jobs = 4) samples )
   with
  | Some s1, Some s4 ->
      Printf.printf "hammock sweep speedup at jobs=4: %.2fx (%d cores available)\n"
        (s4.rate /. s1.rate)
        (Domain.recommended_domain_count ())
  | _ -> ());
  (* traffic engine headline: events/s and calls/s, and how tight a
     blocking interval the run bought *)
  (match List.find_opt (fun s -> s.bench = "traffic-benes-16") samples with
  | Some t ->
      let f key =
        match List.assoc_opt key t.extras with
        | Some (Ftcsn_obs.Json.Float v) -> v
        | _ -> nan
      in
      Printf.printf
        "traffic-benes-16: %.0f events/s, %.0f calls/s, blocking %.4f (CI \
         width %.4f) over %d replications\n"
        (f "events_per_sec") (f "calls_per_sec") (f "blocking_mean")
        (f "blocking_ci_width") t.trials
  | None -> ());
  (* live-daemon headline: full parse->admit->route->serialize decisions/s *)
  (match List.find_opt (fun s -> s.bench = "serve-benes-16") samples with
  | Some t ->
      let p99 =
        match List.assoc_opt "p99_decision_ns" t.extras with
        | Some (Ftcsn_obs.Json.Int v) -> v
        | _ -> 0
      in
      Printf.printf
        "serve-benes-16: %.0f decisions/s end to end (p99 decision latency \
         %d ns)\n"
        t.rate p99
  | None -> ());
  (* scale-layer headline: the sharded incremental engine's event rate
     on the million-switch network against the frozen pre-scale-layer
     engine on the same network *)
  (match List.find_opt (fun s -> s.bench = "traffic-benes-1M") samples with
  | Some t ->
      let f key =
        match List.assoc_opt key t.extras with
        | Some (Ftcsn_obs.Json.Float v) -> v
        | _ -> nan
      in
      let i key =
        match List.assoc_opt key t.extras with
        | Some (Ftcsn_obs.Json.Int v) -> v
        | _ -> 0
      in
      let router =
        match List.assoc_opt "router" t.extras with
        | Some (Ftcsn_obs.Json.String s) -> s
        | _ -> "?"
      in
      Printf.printf
        "traffic-benes-1M: %d switches, %d events in %.2fs = %.0f events/s \
         (%.1f minor w/event, router %s at <= %.0f ns/call); %.1fx the \
         pre-scale-layer engine\n"
        (i "switches") (i "events") t.seconds (f "events_per_sec")
        (f "minor_words_per_event") router (f "router_ns_per_call")
        (f "speedup_vs_ref")
  | None -> ());
  (* single-request routing headline: the Benes looping router against
     the pre-arena masked-CSR BFS on the same million-switch network *)
  (match
     ( List.find_opt (fun s -> s.bench = "route-benes-1M") samples,
       List.find_opt (fun s -> s.bench = "route-benes-1M-staged") samples )
   with
  | Some lp, Some st ->
      let f t key =
        match List.assoc_opt key t.extras with
        | Some (Ftcsn_obs.Json.Float v) -> v
        | _ -> nan
      in
      Printf.printf
        "route-benes-1M: loop router %.0f routes/s (%.0fx the masked-CSR \
         BFS baseline); staged bidirectional %.0f routes/s (%.1fx)\n"
        (f lp "routes_per_sec")
        (f lp "speedup_vs_ref")
        (f st "routes_per_sec")
        (f st "speedup_vs_ref")
  | _ -> ());
  (* rare-event headline: the tilted estimator's precision priced
     against plain MC in the same wall-clock budget *)
  (match List.find_opt (fun s -> s.bench = "rare-benes-16") samples with
  | Some t ->
      let f key =
        match List.assoc_opt key t.extras with
        | Some (Ftcsn_obs.Json.Float v) -> v
        | _ -> nan
      in
      Printf.printf
        "rare-benes-16: delta(1e-6) = %.3e (rel err %.3f) in %.2fs; plain MC \
         at %.0f trials/s would need %.0fx the time for the same precision\n"
        (f "mean") (f "rel_err") t.seconds (f "mc_trials_per_sec")
        (f "re_per_sec_improvement")
  | None -> ());
  (* coupled-curve speedup: one 8-point sweep vs 8 independent runs at
     the same per-point trial count (identical estimates either way) *)
  (match
     ( List.find_opt (fun s -> s.bench = "survival-benes-16-curve-8pt") samples,
       List.find_opt (fun s -> s.bench = "survival-benes-16-8runs") samples )
   with
  | Some c, Some r ->
      Printf.printf "survival curve (8pt) vs 8 independent runs: %.2fx faster\n"
        (r.seconds /. c.seconds)
  | _ -> ());
  (* the registry-wide reliability-per-edge race at smoke trial counts;
     printing it here puts a grep-able tournament table in `bench
     --smoke` output *)
  (match !tournament_outcome with
  | Some o -> Ftcsn_util.Table.print (Ftcsn.Tournament.to_table o)
  | None -> ());
  write_json json_path samples;
  Printf.printf "wrote %s\n\n" json_path;
  (* Regression guard (drives `bench --smoke` in CI): once one jobs>1
     sweep has run, every later jobs<=that run must reuse the warm pool
     rather than spawning fresh domains. *)
  if not (List.exists (fun s -> s.jobs > 1 && s.pool_reused) samples) then begin
    prerr_endline
      "bench: FAIL: no jobs>1 sample reused the persistent domain pool \
       (every parallel sweep spawned fresh domains)";
    exit 1
  end

let run () =
  run_engine ();
  print_endline "== timings (Bechamel, monotonic clock) ==";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let grouped = Test.make_grouped ~name:"g" [ test ] in
      let raw = Benchmark.all cfg instances grouped in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let clean name =
        match String.index_opt name '/' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "%-48s %12.0f ns/run\n" (clean name) est
          | _ -> Printf.printf "%-48s (no estimate)\n" (clean name))
        results)
    tests;
  print_newline ()
