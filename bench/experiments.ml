(* Experiment harness: regenerates every theorem / lemma / figure of the
   paper as a printed table (see DESIGN.md section 4 for the index and
   EXPERIMENTS.md for recorded outcomes).

   All workloads are seeded; [scale] (set from the command line) divides
   Monte-Carlo trial counts so `--quick` runs finish fast. *)

module Table = Ftcsn_util.Table
module Prob = Ftcsn_util.Prob
module Stats = Ftcsn_util.Stats
module Rng = Ftcsn_prng.Rng
module Digraph = Ftcsn_graph.Digraph
module Traverse = Ftcsn_graph.Traverse
module Fault = Ftcsn_reliability.Fault
module Monte_carlo = Ftcsn_reliability.Monte_carlo
module Scratch = Ftcsn_reliability.Scratch
module Sp_network = Ftcsn_reliability.Sp_network
module Hammock = Ftcsn_reliability.Hammock
module Bipartite = Ftcsn_expander.Bipartite
module Random_regular = Ftcsn_expander.Random_regular
module Check = Ftcsn_expander.Check
module Spectral = Ftcsn_expander.Spectral
module Network = Ftcsn_networks.Network
module Topology = Ftcsn_networks.Topology
module Benes = Ftcsn_networks.Benes
module Butterfly = Ftcsn_networks.Butterfly
module Multibutterfly = Ftcsn_networks.Multibutterfly
module Cantor = Ftcsn_networks.Cantor
module Crossbar = Ftcsn_networks.Crossbar
module Clos = Ftcsn_networks.Clos
module Valiant_sc = Ftcsn_networks.Valiant_sc
module Ft_params = Ftcsn.Ft_params
module Ft_network = Ftcsn.Ft_network
module Fault_strip = Ftcsn.Fault_strip
module Pipeline = Ftcsn.Pipeline
module Directed_grid = Ftcsn.Directed_grid
module Tree_paths = Ftcsn.Tree_paths
module Lower_bound = Ftcsn.Lower_bound
module Tournament = Ftcsn.Tournament

let quick = ref false

let jobs = ref 1 (* worker domains for Monte-Carlo workloads (--jobs) *)

let trials base = if !quick then max 10 (base / 10) else base

let seed_of name = Hashtbl.hash name land 0xFFFF

let rng_for name = Rng.create ~seed:(seed_of name)

(* Every registered topology family built at a requested n with default
   parameters and a per-(experiment, family) deterministic rng; families
   that refuse the size (exact power-of-two generators asked for an
   off-grid n) are dropped, so registry-driven experiments pick up new
   generators automatically. *)
let registry_nets ~who ~n =
  Ftcsn.Ft_topology.install ();
  List.filter_map
    (fun (gen : Topology.gen) ->
      let name = gen.Topology.name in
      match
        Topology.build ~n
          ~rng:(rng_for (Printf.sprintf "%s-build-%s" who name))
          { Topology.family = name; args = [] }
      with
      | Ok b -> Some (name, b.Topology.net)
      | Error _ -> None)
    (Topology.all ())

(* One network from a spec string, for experiments that compare a fixed
   shortlist rather than the whole registry. *)
let net_of_spec ~who ~n spec =
  Ftcsn.Ft_topology.install ();
  match Topology.build_string ~n ~rng:(rng_for (who ^ "-" ^ spec)) spec with
  | Ok b -> b.Topology.net
  | Error msg -> failwith msg

let log2f x = log x /. log 2.0

let log4f x = log x /. log 4.0

(* ------------------------------------------------------------------ *)
(* E1 — Proposition 1: Moore–Shannon amplification                     *)
(* ------------------------------------------------------------------ *)

let e1_hammock () =
  let eps = 0.1 in
  let t =
    Table.create ~title:"E1  Proposition 1: (eps,eps')-1-networks at eps=0.1"
      ~columns:
        [
          ("target eps'", Table.Right);
          ("quad iters", Table.Right);
          ("size", Table.Right);
          ("depth", Table.Right);
          ("size/(lg 1/e')^2", Table.Right);
          ("depth/lg 1/e'", Table.Right);
          ("exact open", Table.Right);
          ("exact short", Table.Right);
        ]
  in
  List.iter
    (fun k ->
      let eps' = Prob.pow 0.5 k in
      let spec = Sp_network.design ~eps ~eps' in
      let size = Sp_network.size spec and depth = Sp_network.depth spec in
      let iters =
        (* quad count recoverable from size = 4^i *)
        int_of_float (Float.round (log (float_of_int size) /. log 4.0))
      in
      let lg = float_of_int k in
      Table.add_row t
        [
          Table.fe eps';
          Table.fi iters;
          Table.fi size;
          Table.fi depth;
          Table.ff (float_of_int size /. (lg *. lg));
          Table.ff (float_of_int depth /. lg);
          Table.fe (Sp_network.open_prob spec ~eps_open:eps ~eps_close:eps);
          Table.fe (Sp_network.short_prob spec ~eps_open:eps ~eps_close:eps);
        ])
    [ 2; 4; 6; 8; 10; 14; 20 ];
  Table.print t;
  (* hammock flavour: grid fabrics measured by Monte-Carlo *)
  let rng = rng_for "e1" in
  let t2 =
    Table.create ~title:"E1b  hammock (l,w) grids, measured at eps=0.05"
      ~columns:
        [
          ("rows", Table.Right);
          ("width", Table.Right);
          ("size", Table.Right);
          ("P[open]", Table.Right);
          ("P[short]", Table.Right);
        ]
  in
  List.iter
    (fun (rows, width) ->
      let h = Hammock.make ~rows ~width in
      let po =
        Hammock.open_failure_prob ~jobs:!jobs ~trials:(trials 20000) ~rng
          ~eps:0.05 h
      in
      let ps =
        Hammock.short_failure_prob ~jobs:!jobs ~trials:(trials 20000) ~rng
          ~eps:0.05 h
      in
      Table.add_row t2
        [
          Table.fi rows;
          Table.fi width;
          Table.fi (Hammock.size h);
          Table.fe po.Monte_carlo.mean;
          Table.fe ps.Monte_carlo.mean;
        ])
    [ (1, 4); (2, 4); (4, 4); (8, 8); (16, 8) ];
  Table.print t2

(* ------------------------------------------------------------------ *)
(* E2/E3 — Theorem 1 and 2: size and depth scaling                     *)
(* ------------------------------------------------------------------ *)

let scaled_ft ~u =
  let rng = rng_for (Printf.sprintf "ft-%d" u) in
  Ft_network.make ~rng (Ft_params.scaled ~u ())

(* the paper's gamma grows like log(34 u); mirror that shape at test scale
   (gamma ~ log2(2u)) so the n log^2 n asymptotics are visible *)
let growing_ft ~u =
  let gamma =
    max 2 (int_of_float (ceil (log (float_of_int (2 * u)) /. log 2.0)))
  in
  let rng = rng_for (Printf.sprintf "ftg-%d" u) in
  Ft_network.make ~rng (Ft_params.scaled ~gamma ~u ())

let e2_size () =
  let t =
    Table.create ~title:"E2  size scaling: FT construction vs baselines"
      ~columns:
        [
          ("n", Table.Right);
          ("FT size", Table.Right);
          ("FT/(n lg^2 n)", Table.Right);
          ("Benes", Table.Right);
          ("Cantor", Table.Right);
          ("crossbar", Table.Right);
          ("Thm1 bound", Table.Right);
        ]
  in
  List.iter
    (fun u ->
      let ft = growing_ft ~u in
      let n = Ft_params.n ft.Ft_network.params in
      let size = Network.size ft.Ft_network.net in
      let lg = log2f (float_of_int n) in
      let benes = Network.size (Benes.create n) in
      let cantor = Network.size (Cantor.make n) in
      Table.add_row t
        [
          Table.fi n;
          Table.fi size;
          Table.ff (float_of_int size /. (float_of_int n *. lg *. lg));
          Table.fi benes;
          Table.fi cantor;
          Table.fi (n * n);
          Table.ff (Lower_bound.theorem1_size_bound ~n);
        ])
    [ 2; 3; 4; 5; 6 ];
  Table.print t;
  (* paper-constant instances, predicted analytically *)
  let t2 =
    Table.create ~title:"E2b  paper constants (predicted, Theorem 2: <= 49 n (log4 n)^2)"
      ~columns:
        [
          ("u", Table.Right);
          ("n", Table.Right);
          ("gamma", Table.Right);
          ("predicted size", Table.Right);
          ("size/(1408 u 4^(u+g))", Table.Right);
          ("size/(n lg4^2 n)", Table.Right);
          ("predicted depth", Table.Right);
          ("depth/log4 n", Table.Right);
        ]
  in
  List.iter
    (fun u ->
      let p = Ft_params.paper ~u in
      let n = Ft_params.n p in
      let size = Ft_params.predicted_size p in
      let depth = Ft_params.predicted_depth p in
      let l4 = log4f (float_of_int n) in
      let paper_count =
        (* the paper's own stated edge count for network N *)
        1408.0 *. float_of_int u
        *. (4.0 ** float_of_int (u + p.Ft_params.gamma))
      in
      Table.add_row t2
        [
          Table.fi u;
          Table.fi n;
          Table.fi p.Ft_params.gamma;
          Table.fi size;
          Table.ff (float_of_int size /. paper_count);
          Table.ff (float_of_int size /. (float_of_int n *. l4 *. l4));
          Table.fi depth;
          Table.ff (float_of_int depth /. l4);
        ])
    [ 2; 3; 4; 5; 6; 8 ];
  Table.print t2

let e3_depth () =
  let t =
    Table.create ~title:"E3  depth scaling (Theorem 2: <= 5 log4 n; Theorem 1: >= (1/12) log2 n)"
      ~columns:
        [
          ("n", Table.Right);
          ("FT depth", Table.Right);
          ("depth/log4 n", Table.Right);
          ("Benes depth", Table.Right);
          ("Thm1 bound", Table.Right);
        ]
  in
  List.iter
    (fun u ->
      let ft = growing_ft ~u in
      let n = Ft_params.n ft.Ft_network.params in
      let depth = Network.depth ft.Ft_network.net in
      Table.add_row t
        [
          Table.fi n;
          Table.fi depth;
          Table.ff (float_of_int depth /. log4f (float_of_int n));
          Table.fi (Network.depth (Benes.create n));
          Table.ff (Lower_bound.theorem1_depth_bound ~n);
        ])
    [ 2; 3; 4; 5; 6 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E4 — Lemma 3: grid access probability                               *)
(* ------------------------------------------------------------------ *)

(* the lemma's setting: a terminal feeding every first-column vertex;
   majority access to the last column through non-faulty vertices.
   Runs on the Scratch workspace: the classified pattern, faulty bitset
   and BFS arrays are all per-worker buffers. *)
let grid_majority_access_event grid_s sc =
  let g = Scratch.graph sc in
  let grid = grid_s.Directed_grid.grid in
  let faulty = Scratch.faulty sc in
  Fault.faulty_vertices_into g (Scratch.pattern sc) faulty;
  let ok v = not (Ftcsn_util.Bitset.mem faulty v) in
  let sources =
    Array.to_list grid.Directed_grid.columns.(0)
    |> List.filter ok
  in
  if sources = [] then false
  else begin
    Traverse.bfs_directed_into ~allowed:ok g ~sources
      ~queue:sc.Scratch.queue ~dist:sc.Scratch.dist;
    let last = grid.Directed_grid.columns.(grid.Directed_grid.stages - 1) in
    let reached =
      Array.fold_left
        (fun acc v ->
          if sc.Scratch.dist.(v) >= 0 && ok v then acc + 1 else acc)
        0 last
    in
    2 * reached > Array.length last
  end

let e4_eps = [| 1e-3; 1e-2; 5e-2; 1e-1 |]

let e4_grid_access () =
  let t =
    Table.create ~title:"E4  Lemma 3: P[input keeps majority access to grid outputs]"
      ~columns:
        [
          ("rows", Table.Right);
          ("stages", Table.Right);
          ("eps", Table.Right);
          ("P[majority access]", Table.Right);
          ("95% CI", Table.Left);
        ]
  in
  List.iter
    (fun (rows, stages) ->
      let s = Directed_grid.make ~rows ~stages in
      (* one CRN sweep over the ε grid: every grid point shares each
         trial's per-edge draws, and because the historical loop re-seeded
         the same rng for every ε, the per-point numbers are unchanged *)
      let rng = rng_for (Printf.sprintf "e4-%d-%d" rows stages) in
      let ests =
        Monte_carlo.estimate_curve ~jobs:!jobs ~label:"e4.curve"
          ~trials:(trials 6000) ~rng ~graph:s.Directed_grid.graph
          ~grid:(Array.map (fun e -> (e, e)) e4_eps)
          (grid_majority_access_event s)
      in
      Array.iteri
        (fun k est ->
          Table.add_row t
            [
              Table.fi rows;
              Table.fi stages;
              Table.fe e4_eps.(k);
              Table.ff est.Monte_carlo.mean;
              Printf.sprintf "[%s, %s]"
                (Table.ff est.Monte_carlo.ci_low)
                (Table.ff est.Monte_carlo.ci_high);
            ])
        ests)
    [ (8, 4); (16, 4); (32, 6) ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E5 — Lemmas 4/5: expander faulty-outlet tails                       *)
(* ------------------------------------------------------------------ *)

let e5_expander_faults () =
  let t =
    Table.create
      ~title:"E5  Lemmas 4-5: P[> 7% of expander outlets faulty] vs Chernoff"
      ~columns:
        [
          ("outlets", Table.Right);
          ("degree", Table.Right);
          ("eps", Table.Right);
          ("measured", Table.Right);
          ("Chernoff bound", Table.Right);
        ]
  in
  let eps_grid = [| 1e-4; 1e-3; 3e-3; 1e-2 |] in
  List.iter
    (fun outlets ->
      let rng = rng_for (Printf.sprintf "e5-%d" outlets) in
      let b =
        Random_regular.matching_union ~rng ~inlets:outlets ~outlets ~degree:10
      in
      let g, _, outlet_ids = Bipartite.to_digraph b in
      let threshold = max 1 (7 * outlets / 100) in
      (* coupled CRN sweep on the workspace path; the tail event is
         monotone (the faulty set only grows with ε on shared draws), so
         once a trial crosses the threshold its later points are free.
         Unlike the historical loop, which threaded one rng through all
         four ε runs, each point now sees the same coupled draws — the
         estimates are equally valid but not bit-identical to the old
         table. *)
      let ests =
        Monte_carlo.estimate_curve ~jobs:!jobs ~label:"e5.curve"
          ~monotone_event:true ~trials:(trials 8000) ~rng ~graph:g
          ~grid:(Array.map (fun e -> (e, e)) eps_grid)
          (fun sc ->
            let faulty = Scratch.faulty sc in
            Fault.faulty_vertices_into g (Scratch.pattern sc) faulty;
            let count =
              Array.fold_left
                (fun acc v ->
                  if Ftcsn_util.Bitset.mem faulty v then acc + 1 else acc)
                0 outlet_ids
            in
            count > threshold)
      in
      Array.iteri
        (fun k est ->
          let eps = eps_grid.(k) in
          (* an outlet has 20 incident switches; P[faulty] <= 40 eps *)
          let p_faulty = Float.min 1.0 (40.0 *. eps) in
          let bound =
            Prob.chernoff_upper ~n:outlets ~p:p_faulty ~k:(threshold + 1)
          in
          Table.add_row t
            [
              Table.fi outlets;
              Table.fi 10;
              Table.fe eps;
              Table.fe est.Monte_carlo.mean;
              Table.fe bound;
            ])
        ests)
    [ 64; 256 ];
  Table.print t

(* expander flavours side by side: the constructions the paper cites
   ([BP] random, [GG], [M], [LPS]) measured with our own spectral and
   combinatorial certifiers *)
let e5c_expander_zoo () =
  let t =
    Table.create ~title:"E5c  expander constructions: spectral gap vs Ramanujan"
      ~columns:
        [
          ("construction", Table.Left);
          ("side", Table.Right);
          ("degree", Table.Right);
          ("sigma2/d", Table.Right);
          ("ramanujan", Table.Right);
          ("min |G(S)|, |S|=4", Table.Right);
        ]
  in
  let rng = rng_for "e5c" in
  let row name b =
    let degree = Bipartite.max_degree b in
    let s2 = Spectral.second_singular_value b in
    let nb = Check.min_neighbourhood_sampled b ~c:4 ~samples:400 ~rng in
    Table.add_row t
      [
        name;
        Table.fi b.Bipartite.inlets;
        Table.fi degree;
        Table.ff s2;
        Table.ff (Spectral.ramanujan_bound ~degree);
        Table.fi nb;
      ]
  in
  row "random matching-union d=6"
    (Random_regular.matching_union ~rng ~inlets:2448 ~outlets:2448 ~degree:6);
  row "gabber-galil m=13" (Ftcsn_expander.Gabber_galil.make ~m:13);
  row "margulis m=13" (Ftcsn_expander.Margulis.make ~m:13);
  row "lps p=5 q=13 (PGL2, bipartite)" (Ftcsn_expander.Lps.make ~p:5 ~q:13);
  row "lps p=13 q=17 (PSL2, ramanujan)" (Ftcsn_expander.Lps.make ~p:13 ~q:17);
  Table.print t

(* ------------------------------------------------------------------ *)
(* E6 — Lemma 7: terminal shorting probability                         *)
(* ------------------------------------------------------------------ *)

let e6_shorting () =
  let t =
    Table.create ~title:"E6  Lemma 7: P[two terminals contract] vs eps"
      ~columns:
        [
          ("network", Table.Left);
          ("n", Table.Right);
          ("eps", Table.Right);
          ("P[short]", Table.Right);
          ("Lemma 7 formula", Table.Right);
        ]
  in
  let nets =
    [
      (let ft = scaled_ft ~u:2 in ft.Ft_network.net);
      (let ft = scaled_ft ~u:3 in ft.Ft_network.net);
      Benes.create 8;
    ]
  in
  let eps_grid = [| 1e-2; 5e-2; 1e-1; 2e-1 |] in
  List.iter
    (fun net ->
      (* CRN sweep on the Fault_strip workspace.  The historical loop
         re-seeded the same rng at every ε, so per-point numbers are
         unchanged; shorting is not monotone in ε (the closed-edge set is
         not nested), so every point is evaluated. *)
      let rng = rng_for ("e6" ^ net.Network.name) in
      let ests =
        Ftcsn_sim.Trials.sweep ~jobs:!jobs ~label:"e6.curve"
          ~trials:(trials 4000) ~rng ~points:(Array.length eps_grid)
          ~init:(fun () -> Fault_strip.create_ws net)
          (fun ws sub outcomes ->
            let uniforms = Scratch.uniforms (Fault_strip.ws_scratch ws) in
            let pattern = Fault_strip.ws_pattern ws in
            Fault.sample_uniforms_into sub uniforms;
            Array.iteri
              (fun k eps ->
                Fault.classify_into ~uniforms ~eps_open:eps ~eps_close:eps
                  pattern;
                Fault_strip.strip_into ws pattern;
                if not (Fault_strip.ws_healthy ws) then
                  Bytes.set outcomes k '\001')
              eps_grid)
      in
      Array.iteri
        (fun k est ->
          let eps = eps_grid.(k) in
          let u =
            max 1
              (int_of_float
                 (log (float_of_int (Network.n_inputs net)) /. log 2.0))
          in
          Table.add_row t
            [
              net.Network.name;
              Table.fi (Network.n_inputs net);
              Table.fe eps;
              Table.fe est.Ftcsn_sim.Trials.mean;
              Table.fe
                (Float.min 1.0
                   (Ftcsn.Paper_bounds.lemma7_shorting_bound ~u ~eps));
            ])
        ests)
    nets;
  Table.print t;
  Printf.printf
    "note: the Lemma 7 formula only binds in the paper's regime (its c2 =\n\
     4^15 constant is tuned for eps = 1e-6 and large u); at eps = 1e-6,\n\
     u = 8 it gives %.2e.\n\n"
    (Ftcsn.Paper_bounds.lemma7_shorting_bound ~u:8
       ~eps:Ftcsn.Paper_bounds.paper_epsilon)

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 2 headline: survival under faults (who wins)           *)
(* ------------------------------------------------------------------ *)

let e7_survival () =
  let n = 16 in
  let nets = registry_nets ~who:"e7" ~n in
  let eps_list = [ 1e-4; 1e-3; 1e-2; 3e-2; 1e-1 ] in
  let eps_grid = Array.of_list eps_list in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E7  survival under faults (superconcentrator probes), every \
            registered family, n=%d"
           n)
      ~columns:
        (("family", Table.Left)
        :: List.map (fun e -> (Table.fe e, Table.Right)) eps_list)
  in
  (* one coupled sweep per network instead of five independent runs; each
     point of the curve is bit-identical to the historical per-ε run (the
     old loop re-seeded the same rng at every ε, and survival_curve's
     per-point probe streams match an independent run's), and the
     ascending grid lets flow-only trials short-circuit after a monotone
     failure *)
  List.iter
    (fun (name, net) ->
      let rng = rng_for ("e7" ^ name) in
      let ests =
        Pipeline.survival_curve ~jobs:!jobs ~trials:(trials 200) ~rng
          ~eps:eps_grid ~probe:Pipeline.sc_probe_only net
      in
      let row =
        Array.to_list
          (Array.map
             (fun (est : Monte_carlo.estimate) ->
               Table.ff ~decimals:2 est.Monte_carlo.mean)
             ests)
      in
      Table.add_row t (name :: row))
    nets;
  Table.print t;
  (* nonblocking-style greedy operation: only meaningful on (near-)
     nonblocking networks; Benes shown to document that greedy fails on a
     merely-rearrangeable network even fault-free *)
  let t2 =
    Table.create
      ~title:"E7b  greedy nonblocking-style operation (paper section 4 remark)"
      ~columns:
        (("network", Table.Left)
        :: List.map (fun e -> (Table.fe e, Table.Right)) eps_list)
  in
  List.iter
    (fun (name, net) ->
      let rng = rng_for ("e7b" ^ name) in
      let ests =
        Pipeline.survival_curve ~jobs:!jobs ~trials:(trials 200) ~rng
          ~eps:eps_grid ~probe:Pipeline.default_probe net
      in
      let row =
        Array.to_list
          (Array.map
             (fun (est : Monte_carlo.estimate) ->
               Table.ff ~decimals:2 est.Monte_carlo.mean)
             ests)
      in
      Table.add_row t2 (name :: row))
    (List.map (fun spec -> (spec, net_of_spec ~who:"e7b" ~n spec))
       [ "ft"; "clos"; "benes" ]);
  Table.print t2

(* ------------------------------------------------------------------ *)
(* E8 — complexity landscape                                           *)
(* ------------------------------------------------------------------ *)

let e8_landscape () =
  Ftcsn.Ft_topology.install ();
  let ns = [ 4; 8; 16; 32; 64 ] in
  let t =
    Table.create
      ~title:"E8  size & depth landscape (size | depth), every registered family"
      ~columns:
        (("family", Table.Left)
        :: List.map (fun n -> (Printf.sprintf "n=%d" n, Table.Right)) ns)
  in
  List.iter
    (fun (gen : Topology.gen) ->
      let name = gen.Topology.name in
      let cells =
        List.map
          (fun n ->
            match
              Topology.build ~n
                ~rng:(rng_for (Printf.sprintf "e8-%s-%d" name n))
                { Topology.family = name; args = [] }
            with
            | Ok b ->
                Printf.sprintf "%d | %d"
                  (Network.size b.Topology.net)
                  (Network.depth b.Topology.net)
            | Error _ -> "-")
          ns
      in
      Table.add_row t (name :: cells))
    (Topology.all ());
  Table.print t;
  (* the headline constant-factor comparison of the old table: the paper
     construction against Benes, sizes from the registry builds *)
  Printf.printf "FT/benes size ratio: %s\n"
    (String.concat "  "
       (List.map
          (fun n ->
            let size spec =
              float_of_int (Network.size (net_of_spec ~who:"e8r" ~n spec))
            in
            Printf.sprintf "n=%d: %.1fx" n (size "ft" /. size "benes"))
          ns));
  (* the [PY] depth/size tradeoff: recursive Clos at n = 64 *)
  let t2 =
    Table.create
      ~title:"E8b  depth vs size: recursive Clos ([PY] tradeoff), n = 64"
      ~columns:
        [
          ("levels", Table.Right);
          ("stages", Table.Right);
          ("k", Table.Right);
          ("size", Table.Right);
          ("depth", Table.Right);
        ]
  in
  List.iter
    (fun levels ->
      let ms = Ftcsn_networks.Multistage.make ~levels 64 in
      let net = Ftcsn_networks.Multistage.network ms in
      (* each input feeds the k link vertices of its ingress crossbar *)
      let k =
        Ftcsn_graph.Digraph.out_degree net.Network.graph net.Network.inputs.(0)
      in
      Table.add_row t2
        [
          Table.fi levels;
          Table.fi (Ftcsn_networks.Multistage.stage_count ms);
          Table.fi k;
          Table.fi (Network.size net);
          Table.fi (Network.depth net);
        ])
    [ 0; 1; 2; 3; 5 ];
  Table.print t2

(* ------------------------------------------------------------------ *)
(* E9 — Lemma 1: edge-disjoint short leaf paths                        *)
(* ------------------------------------------------------------------ *)

let e9_tree_paths () =
  let t =
    Table.create
      ~title:"E9  Lemma 1: maximal families of edge-disjoint length-<=3 leaf paths"
      ~columns:
        [
          ("leaves", Table.Right);
          ("paths found", Table.Right);
          ("paths/leaves", Table.Right);
          ("lemma bound 1/42", Table.Right);
          ("remark bound 1/4", Table.Right);
        ]
  in
  let rng = rng_for "e9" in
  List.iter
    (fun l ->
      let stats = Stats.create () in
      let reps = if !quick then 2 else 5 in
      for _ = 1 to reps do
        let tree = Tree_paths.random_internal3_tree ~rng ~leaves:l in
        let paths = Tree_paths.short_leaf_paths tree in
        Stats.add stats (float_of_int (List.length paths) /. float_of_int l)
      done;
      Table.add_row t
        [
          Table.fi l;
          Table.fi (int_of_float (Stats.mean stats *. float_of_int l));
          Table.ff (Stats.mean stats);
          Table.ff (1.0 /. 42.0);
          Table.ff 0.25;
        ])
    [ 30; 100; 1000; 10_000 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E10 — Theorem 1 zones                                               *)
(* ------------------------------------------------------------------ *)

let e10_zones () =
  let t =
    Table.create ~title:"E10  Theorem 1 certificates: good inputs and zones"
      ~columns:
        [
          ("network", Table.Left);
          ("n", Table.Right);
          ("good frac", Table.Right);
          ("depth cert", Table.Right);
          ("min zone", Table.Right);
          ("B(v) total", Table.Right);
          ("linked inputs", Table.Right);
          ("shorting families", Table.Right);
          ("Thm1 size bound", Table.Right);
        ]
  in
  let analyse name net =
    let report = Lower_bound.analyse ~threshold:3 ~radius:1 net in
    let lemma2 = Lower_bound.lemma2_certificate ~threshold:3 net in
    let min_zone =
      List.fold_left
        (fun acc z -> min acc z.Lower_bound.min_zone)
        max_int report.Lower_bound.zones
    in
    Table.add_row t
      [
        name;
        Table.fi report.Lower_bound.n;
        Table.ff report.Lower_bound.good_fraction;
        Table.fi report.Lower_bound.depth_certificate;
        Table.fi (if min_zone = max_int then 0 else min_zone);
        Table.fi report.Lower_bound.neighbourhood_total;
        Table.fi lemma2.Lower_bound.linked_inputs;
        Table.fi (List.length lemma2.Lower_bound.shorting_families);
        Table.ff (Lower_bound.theorem1_size_bound ~n:report.Lower_bound.n);
      ]
  in
  List.iter
    (fun u ->
      let ft = scaled_ft ~u in
      analyse (Printf.sprintf "ft u=%d" u) ft.Ft_network.net)
    [ 2; 3; 4 ];
  analyse "benes-64" (Benes.create 64);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let f1_f3_gadgets () =
  print_endline "== F1-F3  Lemma 1 proof gadgets ==";
  let t1, bad = Tree_paths.fig1_bad_leaf () in
  Printf.printf
    "F1 (bad leaf): tree with %d vertices, %d leaves; leaf %d has nearest \
     other leaf at distance %d (> 3, hence bad)\n"
    t1.Tree_paths.n
    (List.length (Tree_paths.leaves t1))
    bad
    (Tree_paths.nearest_leaf_distance t1 bad);
  let t2, collector = Tree_paths.fig2_crowded_internal () in
  Printf.printf
    "F2 (six dollars): internal node %d of the gadget has degree %d and \
     collects the bad-leaf payments of the proof\n"
    collector (Tree_paths.degree t2 collector);
  let t3, path = Tree_paths.fig3_path_with_unlucky () in
  let leaves3 = Tree_paths.leaves t3 in
  Printf.printf
    "F3 (four dollars): central leaf path [%s] of length %d; %d further \
     leaves sit within distance 2 and become 'unlucky'\n\n"
    (String.concat "; " (List.map string_of_int path))
    (List.length path - 1)
    (List.length leaves3 - 2)

let f4_grid () =
  print_endline "== F4  the (4,8)-directed grid of Fig. 4 ==";
  let s = Directed_grid.make ~rows:4 ~stages:8 in
  print_string (Directed_grid.render s);
  Printf.printf "vertices=%d switches=%d depth(first->last column)=%d\n\n"
    (Digraph.vertex_count s.Directed_grid.graph)
    (Digraph.edge_count s.Directed_grid.graph)
    (s.Directed_grid.grid.Directed_grid.stages - 1)

let f5_composition () =
  print_endline "== F5  network N composition census (Fig. 5) ==";
  let ft = scaled_ft ~u:3 in
  let p = ft.Ft_network.params in
  Printf.printf "instance: %s\n" (Format.asprintf "%a" Ft_params.pp p);
  Printf.printf "%-14s %10s %10s\n" "stage" "vertices" "out-edges";
  List.iter
    (fun (label, v, e) -> Printf.printf "%-14s %10d %10d\n" label v e)
    (Ft_network.stage_census ft);
  Printf.printf "total: size=%d (predicted %d), depth=%d (predicted %d)\n\n"
    (Network.size ft.Ft_network.net)
    (Ft_params.predicted_size p)
    (Network.depth ft.Ft_network.net)
    (Ft_params.predicted_depth p)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5)                                     *)
(* ------------------------------------------------------------------ *)

let a1_ablations () =
  let eps = 3e-2 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "A1  ablations: survival at eps=%g (sc probes)" eps)
      ~columns:
        [ ("variant", Table.Left); ("size", Table.Right); ("survival", Table.Right) ]
  in
  let survival name net =
    let rng = rng_for ("a1" ^ name) in
    let est =
      Pipeline.survival ~jobs:!jobs ~trials:(trials 200) ~rng ~eps
        ~probe:Pipeline.sc_probe_only net
    in
    Table.add_row t
      [ name; Table.fi (Network.size net); Table.ff ~decimals:2 est.Monte_carlo.mean ]
  in
  (* full construction *)
  let ft = scaled_ft ~u:3 in
  survival "full (grids + oversizing)" ft.Ft_network.net;
  (* no grids / no oversizing: plain recursive construction at same n *)
  let rng = rng_for "a1-plain" in
  let plain, _ =
    Ftcsn_networks.Recursive_nb.make ~rng
      ~params:(Ftcsn_networks.Recursive_nb.scaled_params ~branching:2 ~width_factor:4 ~degree:4 ())
      ~levels:3
  in
  survival "no grids, gamma=0 (plain P82)" plain;
  (* shallower grids *)
  let rng2 = rng_for "a1-shallow" in
  let shallow =
    Ft_network.make ~rng:rng2 (Ft_params.scaled ~u:3 ~gamma:1 ())
  in
  survival "gamma=1 (less oversizing)" shallow.Ft_network.net;
  (* degree ablation *)
  let rng3 = rng_for "a1-deg" in
  let thin = Ft_network.make ~rng:rng3 (Ft_params.scaled ~u:3 ~degree:2 ()) in
  survival "expander degree 2" thin.Ft_network.net;
  (* strip radius 1 on the full construction *)
  let rng4 = rng_for "a1-radius" in
  let est =
    Pipeline.survival ~jobs:!jobs ~trials:(trials 200) ~rng:rng4 ~eps
      ~strip_radius:1 ~probe:Pipeline.sc_probe_only ft.Ft_network.net
  in
  Table.add_row t
    [
      "full, strip radius 1";
      Table.fi (Network.size ft.Ft_network.net);
      Table.ff ~decimals:2 est.Monte_carlo.mean;
    ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* E11 — degradation: switches failing during operation               *)
(* ------------------------------------------------------------------ *)

let e11_degradation () =
  let t =
    Table.create
      ~title:
        "E11  degradation under live failures (equal expected failures/tick)"
      ~columns:
        [
          ("family", Table.Left);
          ("size", Table.Right);
          ("failures/tick", Table.Right);
          ("mean ticks to degradation", Table.Right);
          ("switch failures absorbed", Table.Right);
        ]
  in
  let nets = registry_nets ~who:"e11" ~n:8 in
  let lambda = 0.05 in
  List.iter
    (fun (name, net) ->
      let rng = rng_for ("e11-" ^ name) in
      let hazard = lambda /. float_of_int (Network.size net) in
      let mttd =
        Ftcsn.Ft_session.mean_time_to_degradation ~jobs:!jobs ~rng ~hazard
          ~trials:(max 3 (trials 20)) ~max_ticks:20_000 net
      in
      Table.add_row t
        [
          name;
          Table.fi (Network.size net);
          Table.ff lambda;
          Table.ff ~decimals:0 mttd;
          Table.ff ~decimals:1 (mttd *. lambda);
        ])
    nets;
  Table.print t

(* ------------------------------------------------------------------ *)
(* E12 — the reliability-per-edge tournament                           *)
(* ------------------------------------------------------------------ *)

let e12_tournament () =
  (* every registered family through the same survival sweep and call
     workload, scored on fault tolerance per switch (Tournament docs) *)
  let eps = [| 1e-3; 1e-2; 5e-2 |] in
  let traffic_trials = if !quick then 1 else 3 in
  let calls = if !quick then 300 else 2000 in
  let warmup = if !quick then 50 else 200 in
  let outcome =
    Tournament.run ~jobs:!jobs ~trials:(trials 200) ~eps ~traffic_trials
      ~calls ~warmup ~n:16 ~seed:(seed_of "e12") ()
  in
  Table.print (Tournament.to_table outcome);
  Printf.printf "front: * marks Pareto-optimal families (no rival with \
                 fewer edges/terminal and better survival at eps=%g)\n"
    eps.(Array.length eps - 1);
  List.iter
    (fun (family, reason) -> Printf.printf "skipped %s: %s\n" family reason)
    outcome.Tournament.skipped

(* ------------------------------------------------------------------ *)
(* A2 — wide-sense strategies ([FFP])                                 *)
(* ------------------------------------------------------------------ *)

let a2_wide_sense () =
  let t =
    Table.create
      ~title:"A2  routing strategies under adversarial traffic (blocked/offered)"
      ~columns:
        [
          ("network", Table.Left);
          ("greedy", Table.Right);
          ("packing", Table.Right);
        ]
  in
  let module Ws = Ftcsn_routing.Wide_sense in
  let stress name net =
    let cell strategy =
      let rng = rng_for ("a2" ^ name) in
      let offered, blocked =
        Ws.stress ~steps:(trials 2000) ~rng strategy net
      in
      Printf.sprintf "%d/%d" blocked offered
    in
    Table.add_row t [ name; cell Ws.greedy_strategy; cell Ws.packing_strategy ]
  in
  stress "crossbar-4" (Crossbar.square 4);
  stress "clos-snb-4" (Clos.make { Clos.m = 3; k = 2; r = 2 });
  stress "clos-rearr-4" (Clos.make { Clos.m = 2; k = 2; r = 2 });
  stress "benes-8" (Benes.create 8);
  Table.print t

(* ------------------------------------------------------------------ *)
(* A3 — [LM]: routing around faults on multibutterflies                *)
(* ------------------------------------------------------------------ *)

let a3_multibutterfly () =
  let t =
    Table.create
      ~title:
        "A3  multibutterfly splitter redundancy: mean fraction of a \
         permutation served (levelled greedy), n = 32"
      ~columns:
        [
          ("degree", Table.Right);
          ("eps=0", Table.Right);
          ("eps=1e-3", Table.Right);
          ("eps=1e-2", Table.Right);
          ("eps=5e-2", Table.Right);
        ]
  in
  let n = 32 in
  List.iter
    (fun degree ->
      let rng = rng_for (Printf.sprintf "a3-%d" degree) in
      let mb = Multibutterfly.make_structured ~rng ~degree n in
      (* re-strip in place on a Fault_strip workspace instead of
         allocating a pattern and strip record per rep; sample_into
         consumes the stream exactly as sample did, so numbers match *)
      let fs = Fault_strip.create_ws mb.Multibutterfly.net in
      let cell eps =
        let reps = max 5 (trials 30) in
        let acc = ref 0 in
        for _ = 1 to reps do
          let allowed =
            if eps = 0.0 then fun _ -> true
            else begin
              let pattern = Fault_strip.ws_pattern fs in
              Fault.sample_into rng ~eps_open:eps ~eps_close:eps pattern;
              Fault_strip.strip_into fs pattern;
              Fault_strip.ws_allowed fs
            end
          in
          let pi = Rng.permutation rng n in
          let _, s = Multibutterfly.route_permutation mb ~allowed pi in
          acc := !acc + s
        done;
        Table.ff ~decimals:2
          (float_of_int !acc /. float_of_int (reps * n))
      in
      Table.add_row t
        [ Table.fi degree; cell 0.0; cell 1e-3; cell 1e-2; cell 5e-2 ])
    [ 1; 2; 3; 4 ];
  Table.print t

(* ------------------------------------------------------------------ *)
(* registry                                                            *)
(* ------------------------------------------------------------------ *)

let all : (string * string * (unit -> unit)) list =
  [
    ("e1", "Proposition 1: Moore-Shannon amplification", e1_hammock);
    ("e2", "Theorem 1/2: size scaling", e2_size);
    ("e3", "Theorem 1/2: depth scaling", e3_depth);
    ("e4", "Lemma 3: grid majority access", e4_grid_access);
    ("e5", "Lemmas 4-5: expander fault tails", e5_expander_faults);
    ("e5c", "expander construction zoo", e5c_expander_zoo);
    ("e6", "Lemma 7: terminal shorting", e6_shorting);
    ("e7", "Theorem 2: survival under faults", e7_survival);
    ("e8", "complexity landscape", e8_landscape);
    ("e9", "Lemma 1: tree leaf paths", e9_tree_paths);
    ("e10", "Theorem 1: zone certificates", e10_zones);
    ("e11", "degradation under live failures", e11_degradation);
    ("e12", "reliability-per-edge tournament", e12_tournament);
    ("f1", "Figures 1-3: proof gadgets", f1_f3_gadgets);
    ("f4", "Figure 4: directed grid", f4_grid);
    ("f5", "Figure 5: composition census", f5_composition);
    ("a1", "ablations", a1_ablations);
    ("a2", "wide-sense routing strategies", a2_wide_sense);
    ("a3", "[LM] multibutterfly fault routing", a3_multibutterfly);
  ]
