(** Deterministic trial-execution engine for Monte-Carlo simulation.

    Every empirical estimate in this repository — the (ε, δ) survival
    probabilities of Theorem 2, the Moore–Shannon hammock curves of
    Proposition 1, Birnbaum criticality, the sampled rearrangeability and
    superconcentrator deciders — is a loop of independent seeded trials.
    This module is the single substrate those loops run on.

    {2 Determinism under parallelism}

    Trial [i] always executes on [Rng.substream root i], where [root] is a
    copy of the caller's stream taken before the run.  A trial's outcome is
    therefore a pure function of the root seed and its index, and results
    are bit-identical whether the index space is swept by one domain or
    fanned out across many ([jobs] only changes wall-clock time, never the
    returned record).  [Rng.substream root i] coincides with the [(i+1)]-th
    consecutive [Rng.split] of the root, so a [jobs:1] run also reproduces
    the historical sequential split-per-trial loops bit-for-bit.  On
    return, the caller's stream is advanced past every executed trial,
    exactly as the sequential loop would have left it.

    Adaptive stopping is evaluated on chunk boundaries in index order, so
    the executed trial count is deterministic too.

    {2 Parallel execution}

    [jobs] > 1 fans chunks of trials out with [Domain.spawn] (OCaml 5
    map-reduce; no dependencies).  Trial functions must therefore be safe
    to run concurrently: they may freely read shared immutable data (the
    network under test) but must keep all mutable state in the per-chunk
    [scratch] created by [init], which is never shared between domains. *)

type estimate = {
  successes : int;
  trials : int;
  mean : float;
  ci_low : float;
  ci_high : float;
}

val of_counts : successes:int -> trials:int -> estimate
(** Estimate with a Wilson 95% interval. *)

val half_width : estimate -> float
(** Half the Wilson interval width — the quantity [target_ci] bounds. *)

val pp : Format.formatter -> estimate -> unit

type progress = {
  completed : int;  (** trials finished so far *)
  cap : int;  (** the trial cap for this run *)
  successes : int;
  elapsed : float;  (** seconds since the run started *)
  rate : float;  (** throughput in trials per second *)
  jobs : int;
}

val default_chunk : int
(** Trials per work unit (256): small enough that adaptive stopping is
    responsive, large enough that domain dispatch cost is amortised. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [~jobs] for "use
    the whole machine". *)

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?target_ci:float ->
  ?min_trials:int ->
  ?progress:(progress -> unit) ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  (Ftcsn_prng.Rng.t -> bool) ->
  estimate
(** [run ~trials ~rng f] estimates P[f = true] from up to [trials]
    independent executions of [f], each on its own substream of [rng].

    - [jobs] (default 1): worker domains.
    - [chunk] (default {!default_chunk}): trials per work unit.
    - [target_ci]: adaptive stopping — stop at the first chunk boundary
      (after [min_trials], default 1000) where the Wilson 95% half-width
      drops to [target_ci] or below; [trials] remains a hard cap.
    - [progress]: called on the scheduling domain after every consumed
      chunk with cumulative counts and throughput. *)

val run_scratch :
  ?jobs:int ->
  ?chunk:int ->
  ?target_ci:float ->
  ?min_trials:int ->
  ?progress:(progress -> unit) ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  init:(unit -> 'scratch) ->
  ('scratch -> Ftcsn_prng.Rng.t -> bool) ->
  estimate
(** {!run} with per-worker scratch state: [init] is called once per chunk
    on the executing domain and its result is threaded through that
    chunk's trials — the hook for zero-allocation inner loops (reusable
    fault-pattern buffers, bitsets, …).  Trials must not retain the
    scratch beyond their own call. *)

val map_reduce :
  ?jobs:int ->
  ?chunk:int ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  init:(unit -> 'scratch) ->
  create_acc:(unit -> 'acc) ->
  trial:('scratch -> 'acc -> Ftcsn_prng.Rng.t -> unit) ->
  combine:('acc -> 'acc -> unit) ->
  unit ->
  'acc
(** General deterministic fan-out for non-Bernoulli statistics (paired
    Birnbaum counters, time-to-degradation sums, …).  Each chunk folds
    its trials into a fresh accumulator from [create_acc]; chunk
    accumulators are [combine]d into the first accumulator (the return
    value) strictly in index order, so any combine — even a non-
    commutative one — yields the same result at every [jobs]. *)

val search :
  ?jobs:int ->
  ?chunk:int ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  (Ftcsn_prng.Rng.t -> 'witness option) ->
  'witness option
(** Witness hunt with early exit: runs up to [trials] probes and returns
    the witness of the {e lowest-indexed} probe that produces one (so the
    result is independent of [jobs]), or [None].  Rounds dispatched after
    a hit are skipped. *)
