(** Deterministic trial-execution engine for Monte-Carlo simulation.

    Every empirical estimate in this repository — the (ε, δ) survival
    probabilities of Theorem 2, the Moore–Shannon hammock curves of
    Proposition 1, Birnbaum criticality, the sampled rearrangeability and
    superconcentrator deciders — is a loop of independent seeded trials.
    This module is the single substrate those loops run on.

    {2 Determinism under parallelism}

    Trial [i] always executes on [Rng.substream root i], where [root] is a
    copy of the caller's stream taken before the run.  A trial's outcome is
    therefore a pure function of the root seed and its index, and results
    are bit-identical whether the index space is swept by one domain or
    fanned out across many ([jobs] only changes wall-clock time, never the
    returned record).  [Rng.substream root i] coincides with the [(i+1)]-th
    consecutive [Rng.split] of the root, so a [jobs:1] run also reproduces
    the historical sequential split-per-trial loops bit-for-bit.  On
    return, the caller's stream is advanced past every executed trial,
    exactly as the sequential loop would have left it.

    Adaptive stopping is evaluated on chunk boundaries in index order, so
    the executed trial count is deterministic too.

    {2 Parallel execution}

    [jobs] > 1 fans chunks of trials out to a persistent, lazily-created
    domain pool (OCaml 5 map-reduce; no dependencies).  Worker domains
    are spawned on first parallel use — never more than the largest
    [jobs - 1] requested so far — parked on a condition variable between
    batches, reused for every subsequent run in the process, and joined
    by an [at_exit] hook.  The pool only decides {e where} a chunk
    executes; chunk boundaries, PRNG substream indexing and consumption
    order are fixed by the scheduler, so every estimate is bit-identical
    to the historical spawn-per-round engine (and [pool_enabled] keeps
    that engine available for A/B verification).  Spawns are counted in
    [Ftcsn_obs.Metrics.default] under [trials.pool.spawns]: a healthy
    multi-run process shows the counter frozen at [jobs - 1] while work
    keeps flowing.  Trial functions must be safe to run concurrently:
    they may freely read shared immutable data (the network under test)
    but must keep all mutable state in the per-chunk [scratch] created by
    [init], which is never shared between domains.

    {2 Observability}

    Every entry point accepts an optional [trace] sink
    ([Ftcsn_obs.Trace.sink]).  When present, the engine emits a
    [Run_begin] event, one [Chunk] event per consumed work unit (worker
    domain id, wall-clock cost, and the chunk's trial-index range — which
    is also its RNG substream-id range), a [Stop_check] event for every
    adaptive-stopping evaluation with its Wilson half-width, and a
    [Run_end] event.  Tracing is strictly observational: chunks are timed
    on their executing domain but all events are emitted on the
    scheduling domain in index order, no event touches a PRNG stream, and
    the per-trial hot path is untouched (the clock is read at chunk
    granularity only).  Estimates are therefore bit-identical with
    tracing on or off, at every [jobs] — the test suite pins this.
    [label] names the run in its [Run_begin] event; defaults identify the
    entry point ([trials.run], [trials.map_reduce], [trials.search]). *)

type estimate = {
  successes : int;  (** trials for which the Bernoulli event held *)
  trials : int;  (** trials actually executed (≤ the requested cap) *)
  mean : float;  (** point estimate [successes / trials] *)
  ci_low : float;  (** Wilson 95% interval, lower end *)
  ci_high : float;  (** Wilson 95% interval, upper end *)
}

val of_counts : successes:int -> trials:int -> estimate
(** Estimate with a Wilson 95% interval. *)

val half_width : estimate -> float
(** Half the Wilson interval width — the quantity [target_ci] bounds. *)

val pp : Format.formatter -> estimate -> unit
(** Render as ["mean [lo, hi] (successes/trials)"]. *)

type progress = {
  completed : int;  (** trials finished so far *)
  cap : int;  (** the trial cap for this run *)
  successes : int;  (** successes among the completed trials *)
  elapsed : float;  (** seconds since the run started *)
  rate : float;  (** throughput in trials per second *)
  jobs : int;  (** worker domains in use *)
}

val default_chunk : int
(** Trials per work unit (256): small enough that adaptive stopping is
    responsive, large enough that domain dispatch cost is amortised. *)

val recommended_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [~jobs] for "use
    the whole machine". *)

val pool_enabled : bool ref
(** When [true] (the default), parallel rounds execute on the persistent
    domain pool; when [false], every round spawns and joins fresh
    domains, reproducing the pre-pool engine exactly.  An A/B switch for
    tests and benchmarks — results are bit-identical either way. *)

val parallel_tasks : ?jobs:int -> (unit -> unit) array -> unit
(** Intra-trial pool lease: run the tasks to completion, borrowing up to
    [jobs - 1] persistent pool workers alongside the calling domain
    (sequential, in array order, when [jobs <= 1] or there is only one
    task).  Tasks must write disjoint state; on return all tasks have
    completed and their writes are published to the caller.  Nested use
    from inside a pool task is safe (the wait help-drains the queue).
    The first exception any task raised is re-raised after all complete.
    This is how one sharded DES replication uses the same domain pool
    {e within} itself that {!map_reduce} uses {e across} replications. *)

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?target_ci:float ->
  ?min_trials:int ->
  ?progress:(progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  (Ftcsn_prng.Rng.t -> bool) ->
  estimate
(** [run ~trials ~rng f] estimates P[f = true] from up to [trials]
    independent executions of [f], each on its own substream of [rng].

    - [jobs] (default 1): worker domains.
    - [chunk] (default {!default_chunk}): trials per work unit.
    - [target_ci]: adaptive stopping — stop at the first chunk boundary
      (after [min_trials], default 1000) where the Wilson 95% half-width
      drops to [target_ci] or below; [trials] remains a hard cap.
    - [progress]: called on the scheduling domain after every consumed
      chunk with cumulative counts and throughput.
    - [trace]/[label]: structured JSONL events, see {i Observability}
      above. *)

val run_scratch :
  ?jobs:int ->
  ?chunk:int ->
  ?target_ci:float ->
  ?min_trials:int ->
  ?progress:(progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  init:(unit -> 'scratch) ->
  ('scratch -> Ftcsn_prng.Rng.t -> bool) ->
  estimate
(** {!run} with per-worker scratch state: [init] is called once per chunk
    on the executing domain and its result is threaded through that
    chunk's trials — the hook for zero-allocation inner loops (reusable
    fault-pattern buffers, bitsets, …).  Trials must not retain the
    scratch beyond their own call. *)

val sweep :
  ?jobs:int ->
  ?chunk:int ->
  ?progress:(progress -> unit) ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  points:int ->
  init:(unit -> 'scratch) ->
  ('scratch -> Ftcsn_prng.Rng.t -> Bytes.t -> unit) ->
  estimate array
(** Coupled multi-point estimation over one fan-out of trials — the
    engine under the common-random-numbers ε-curve sweeps.  Each trial
    receives its substream once and an [outcomes] byte buffer of length
    [points], pre-zeroed; it sets byte [k] non-zero iff the Bernoulli
    event holds at grid point [k].  Because all [points] outcomes of a
    trial derive from one substream, the returned [points] estimates are
    positively correlated (curve differences have far lower variance
    than independent runs) and cost one sampling pass instead of
    [points].  Returns one {!estimate} per grid point, all over the same
    [trials] executions.

    Determinism is inherited from the scheduler: results are
    bit-identical at every [jobs] and with tracing on or off, and a
    1-point sweep whose trial sets byte 0 to the event indicator matches
    {!run_scratch} of the same event count-for-count.  No adaptive
    stopping (a single half-width target is ill-defined across a curve);
    [progress.successes] reports grid point 0.  Traced [Chunk] events
    carry no success counts. *)

val map_reduce :
  ?jobs:int ->
  ?chunk:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  init:(unit -> 'scratch) ->
  create_acc:(unit -> 'acc) ->
  trial:('scratch -> 'acc -> Ftcsn_prng.Rng.t -> unit) ->
  combine:('acc -> 'acc -> unit) ->
  unit ->
  'acc
(** General deterministic fan-out for non-Bernoulli statistics (paired
    Birnbaum counters, time-to-degradation sums, …).  Each chunk folds
    its trials into a fresh accumulator from [create_acc]; chunk
    accumulators are [combine]d into the first accumulator (the return
    value) strictly in index order, so any combine — even a non-
    commutative one — yields the same result at every [jobs].  Traced
    [Chunk] events carry no success counts (the accumulator is opaque
    to the engine). *)

val search :
  ?jobs:int ->
  ?chunk:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  (Ftcsn_prng.Rng.t -> 'witness option) ->
  'witness option
(** Witness hunt with early exit: runs up to [trials] probes and returns
    the witness of the {e lowest-indexed} probe that produces one (so the
    result is independent of [jobs]), or [None].  Rounds dispatched after
    a hit are skipped. *)
