module Rng = Ftcsn_prng.Rng
module Prob = Ftcsn_util.Prob

type estimate = {
  successes : int;
  trials : int;
  mean : float;
  ci_low : float;
  ci_high : float;
}

let of_counts ~successes ~trials =
  let mean =
    if trials = 0 then 0.0 else float_of_int successes /. float_of_int trials
  in
  let ci_low, ci_high = Prob.wilson_interval ~successes ~trials ~z:1.96 in
  { successes; trials; mean; ci_low; ci_high }

let half_width e = (e.ci_high -. e.ci_low) /. 2.0

let pp ppf e =
  Format.fprintf ppf "%.4f [%.4f, %.4f] (%d/%d)" e.mean e.ci_low e.ci_high
    e.successes e.trials

type progress = {
  completed : int;
  cap : int;
  successes : int;
  elapsed : float;
  rate : float;
  jobs : int;
}

let default_chunk = 256

let recommended_jobs () = Domain.recommended_domain_count ()

(* The scheduler: trial [i] always runs on [Rng.substream root i], so its
   outcome is a pure function of (root seed, i) and the partition of the
   index space into chunks/domains cannot affect any result.  Chunks are
   dispatched in rounds of [jobs] (one chunk stays on the calling domain,
   the rest go to fresh domains), then consumed strictly in index order;
   a [`Stop] verdict discards every later chunk, including ones another
   domain already computed, so adaptive stopping is also scheduling-
   independent.  Returns the number of trials actually consumed. *)
let exec ~jobs ~chunk ~cap ~run_chunk ~consume =
  if jobs < 1 then invalid_arg "Trials: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Trials: chunk must be >= 1";
  if cap < 0 then invalid_arg "Trials: trials must be >= 0";
  let n_chunks = (cap + chunk - 1) / chunk in
  let bounds c = (c * chunk, min cap ((c + 1) * chunk)) in
  let stopped = ref false in
  let executed = ref 0 in
  let c = ref 0 in
  while (not !stopped) && !c < n_chunks do
    let batch = min jobs (n_chunks - !c) in
    let accs = Array.make batch None in
    if batch = 1 then begin
      let lo, hi = bounds !c in
      accs.(0) <- Some (run_chunk ~lo ~hi)
    end
    else begin
      let workers =
        Array.init (batch - 1) (fun k ->
            let lo, hi = bounds (!c + k + 1) in
            Domain.spawn (fun () -> run_chunk ~lo ~hi))
      in
      let lo, hi = bounds !c in
      accs.(0) <- Some (run_chunk ~lo ~hi);
      Array.iteri (fun k d -> accs.(k + 1) <- Some (Domain.join d)) workers
    end;
    Array.iteri
      (fun k acc ->
        if not !stopped then begin
          let lo, hi = bounds (!c + k) in
          executed := hi;
          match consume (Option.get acc) ~lo ~hi with
          | `Stop -> stopped := true
          | `Continue -> ()
        end)
      accs;
    c := !c + batch
  done;
  !executed

let run_scratch ?(jobs = 1) ?(chunk = default_chunk) ?target_ci
    ?(min_trials = 1000) ?progress ~trials:cap ~rng ~init f =
  let root = Rng.copy rng in
  let successes = ref 0 in
  let t0 = Unix.gettimeofday () in
  let run_chunk ~lo ~hi =
    let scratch = init () in
    let s = ref 0 in
    for i = lo to hi - 1 do
      if f scratch (Rng.substream root i) then incr s
    done;
    !s
  in
  let consume s ~lo:_ ~hi =
    successes := !successes + s;
    (match progress with
    | None -> ()
    | Some cb ->
        let elapsed = Unix.gettimeofday () -. t0 in
        cb
          {
            completed = hi;
            cap;
            successes = !successes;
            elapsed;
            rate = (if elapsed > 0.0 then float_of_int hi /. elapsed else 0.0);
            jobs;
          });
    match target_ci with
    | Some target when hi >= min_trials ->
        let est = of_counts ~successes:!successes ~trials:hi in
        if half_width est <= target then `Stop else `Continue
    | _ -> `Continue
  in
  let executed = exec ~jobs ~chunk ~cap ~run_chunk ~consume in
  Rng.advance rng executed;
  of_counts ~successes:!successes ~trials:executed

let run ?jobs ?chunk ?target_ci ?min_trials ?progress ~trials ~rng f =
  run_scratch ?jobs ?chunk ?target_ci ?min_trials ?progress ~trials ~rng
    ~init:(fun () -> ())
    (fun () sub -> f sub)

let map_reduce ?(jobs = 1) ?(chunk = default_chunk) ~trials:cap ~rng ~init
    ~create_acc ~trial ~combine () =
  let root = Rng.copy rng in
  let global = create_acc () in
  let run_chunk ~lo ~hi =
    let scratch = init () in
    let acc = create_acc () in
    for i = lo to hi - 1 do
      trial scratch acc (Rng.substream root i)
    done;
    acc
  in
  let consume acc ~lo:_ ~hi:_ =
    combine global acc;
    `Continue
  in
  let executed = exec ~jobs ~chunk ~cap ~run_chunk ~consume in
  Rng.advance rng executed;
  global

let search ?(jobs = 1) ?(chunk = default_chunk) ~trials:cap ~rng f =
  let root = Rng.copy rng in
  let found = ref None in
  let run_chunk ~lo ~hi =
    let rec go i =
      if i >= hi then None
      else
        match f (Rng.substream root i) with
        | Some _ as w -> w
        | None -> go (i + 1)
    in
    go lo
  in
  let consume acc ~lo:_ ~hi:_ =
    match acc with
    | Some _ ->
        found := acc;
        `Stop
    | None -> `Continue
  in
  let executed = exec ~jobs ~chunk ~cap ~run_chunk ~consume in
  Rng.advance rng executed;
  !found
