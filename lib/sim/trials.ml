module Rng = Ftcsn_prng.Rng
module Prob = Ftcsn_util.Prob
module Trace = Ftcsn_obs.Trace
module Clock = Ftcsn_obs.Clock

type estimate = {
  successes : int;
  trials : int;
  mean : float;
  ci_low : float;
  ci_high : float;
}

let of_counts ~successes ~trials =
  let mean =
    if trials = 0 then 0.0 else float_of_int successes /. float_of_int trials
  in
  let ci_low, ci_high = Prob.wilson_interval ~successes ~trials ~z:1.96 in
  { successes; trials; mean; ci_low; ci_high }

let half_width e = (e.ci_high -. e.ci_low) /. 2.0

let pp ppf e =
  Format.fprintf ppf "%.4f [%.4f, %.4f] (%d/%d)" e.mean e.ci_low e.ci_high
    e.successes e.trials

type progress = {
  completed : int;
  cap : int;
  successes : int;
  elapsed : float;
  rate : float;
  jobs : int;
}

let default_chunk = 256

let recommended_jobs () = Domain.recommended_domain_count ()

(* ---------- persistent domain pool ----------

   Per-round [Domain.spawn]/[Domain.join] costs milliseconds per chunk
   round; on short runs that overhead dominates and makes jobs>1 a
   measured slowdown (see BENCH_timings.json).  Instead, worker domains
   are created lazily on first parallel use, parked on a condition
   variable between batches, and reused for every subsequent run in the
   process.  The pool only changes *where* a chunk executes — chunk
   boundaries, PRNG substream indexing and consumption order are decided
   by [exec] exactly as before — so every estimate stays bit-identical
   to the spawn-per-round engine ([pool_enabled := false] keeps that
   path alive for A/B tests).

   Publication safety: a task writes its result slot on a worker domain,
   then decrements the batch counter under the batch mutex (release);
   the scheduler observes the zero under the same mutex (acquire) before
   reading the slots. *)

module Pool = struct
  let c_spawns = Ftcsn_obs.Metrics.counter Ftcsn_obs.Metrics.default "trials.pool.spawns"

  type t = {
    m : Mutex.t;
    work : Condition.t;  (* signalled when tasks arrive or at shutdown *)
    queue : (unit -> unit) Queue.t;
    mutable size : int;  (* worker domains spawned so far *)
    mutable shutdown : bool;
    mutable domains : unit Domain.t list;
  }

  let pool =
    {
      m = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      size = 0;
      shutdown = false;
      domains = [];
    }

  let rec worker_loop () =
    Mutex.lock pool.m;
    let rec next () =
      if pool.shutdown then None
      else
        match Queue.take_opt pool.queue with
        | Some _ as t -> t
        | None ->
            Condition.wait pool.work pool.m;
            next ()
    in
    match next () with
    | None -> Mutex.unlock pool.m
    | Some task ->
        Mutex.unlock pool.m;
        (* tasks carry their own exception handling; a raise here would
           kill the worker for the rest of the process *)
        (try task () with _ -> ());
        worker_loop ()

  let teardown () =
    Mutex.lock pool.m;
    pool.shutdown <- true;
    Condition.broadcast pool.work;
    let ds = pool.domains in
    pool.domains <- [];
    Mutex.unlock pool.m;
    List.iter Domain.join ds

  let registered = Atomic.make false

  let ensure n =
    if Atomic.compare_and_set registered false true then at_exit teardown;
    Mutex.lock pool.m;
    while pool.size < n && not pool.shutdown do
      pool.size <- pool.size + 1;
      Ftcsn_obs.Counter.incr c_spawns;
      pool.domains <- Domain.spawn worker_loop :: pool.domains
    done;
    Mutex.unlock pool.m

  type batch = {
    bm : Mutex.t;
    finished : Condition.t;
    mutable remaining : int;
  }

  let submit tasks =
    let b =
      {
        bm = Mutex.create ();
        finished = Condition.create ();
        remaining = Array.length tasks;
      }
    in
    let wrap task () =
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock b.bm;
          b.remaining <- b.remaining - 1;
          if b.remaining = 0 then Condition.signal b.finished;
          Mutex.unlock b.bm)
        task
    in
    Mutex.lock pool.m;
    Array.iter
      (fun task ->
        Queue.add (wrap task) pool.queue;
        Condition.signal pool.work)
      tasks;
    Mutex.unlock pool.m;
    b

  (* Help-draining wait: before parking, the scheduler runs any still-
     queued tasks itself.  This keeps undersized pools (fewer workers
     than queued tasks, e.g. after an exception killed none but the
     machine is 1-core) deadlock-free and productive: every submitted
     task is guaranteed to execute on *some* domain. *)
  let await b =
    let rec drain () =
      Mutex.lock pool.m;
      match Queue.take_opt pool.queue with
      | Some task ->
          Mutex.unlock pool.m;
          task ();
          drain ()
      | None -> Mutex.unlock pool.m
    in
    drain ();
    Mutex.lock b.bm;
    while b.remaining > 0 do
      Condition.wait b.finished b.bm
    done;
    Mutex.unlock b.bm
end

let pool_enabled = ref true

(* ---------- intra-trial pool lease ----------

   [exec] fans whole trials across the pool; the sharded DES wants the
   opposite grain — one replication briefly borrowing the same workers
   for a window of per-shard event draining, then giving them back.
   Tasks must touch disjoint state; the lease only promises that all of
   them have completed (with their writes published, via the batch
   mutex) when the call returns.  A task that runs *on* a pool worker
   can itself lease: [Pool.await] help-drains the queue, so nested use
   cannot deadlock even on a 1-core host. *)
let parallel_tasks ?(jobs = 1) tasks =
  let k = Array.length tasks in
  if jobs <= 1 || k <= 1 then Array.iter (fun f -> f ()) tasks
  else begin
    let fail = Atomic.make None in
    let guard f () =
      try f () with e -> Atomic.set fail (Some e)
    in
    if !pool_enabled then begin
      Pool.ensure (min (jobs - 1) (k - 1));
      let b = Pool.submit (Array.init (k - 1) (fun i -> guard tasks.(i + 1))) in
      guard tasks.(0) ();
      Pool.await b
    end
    else begin
      let ds =
        Array.init (k - 1) (fun i -> Domain.spawn (guard tasks.(i + 1)))
      in
      guard tasks.(0) ();
      Array.iter Domain.join ds
    end;
    match Atomic.get fail with Some e -> raise e | None -> ()
  end

(* The scheduler: trial [i] always runs on [Rng.substream root i], so its
   outcome is a pure function of (root seed, i) and the partition of the
   index space into chunks/domains cannot affect any result.  Chunks are
   dispatched in rounds of [jobs] (one chunk stays on the calling domain,
   the rest go to pool workers), then consumed strictly in index order;
   a [`Stop] verdict discards every later chunk, including ones another
   domain already computed, so adaptive stopping is also scheduling-
   independent.  Returns the number of trials actually consumed. *)
let exec ~jobs ~chunk ~cap ~run_chunk ~consume =
  if jobs < 1 then invalid_arg "Trials: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Trials: chunk must be >= 1";
  if cap < 0 then invalid_arg "Trials: trials must be >= 0";
  let n_chunks = (cap + chunk - 1) / chunk in
  let bounds c = (c * chunk, min cap ((c + 1) * chunk)) in
  let stopped = ref false in
  let executed = ref 0 in
  let c = ref 0 in
  while (not !stopped) && !c < n_chunks do
    let batch = min jobs (n_chunks - !c) in
    let accs = Array.make batch None in
    if batch = 1 then begin
      let lo, hi = bounds !c in
      accs.(0) <- Some (run_chunk ~lo ~hi)
    end
    else begin
      let c0 = !c in
      let fail = Atomic.make None in
      let task k () =
        let lo, hi = bounds (c0 + k) in
        match run_chunk ~lo ~hi with
        | r -> accs.(k) <- Some r
        | exception e -> Atomic.set fail (Some e)
      in
      let tasks = Array.init (batch - 1) (fun k -> task (k + 1)) in
      if !pool_enabled then begin
        Pool.ensure (jobs - 1);
        let b = Pool.submit tasks in
        task 0 ();
        Pool.await b
      end
      else begin
        let workers = Array.map Domain.spawn tasks in
        task 0 ();
        Array.iter Domain.join workers
      end;
      match Atomic.get fail with Some e -> raise e | None -> ()
    end;
    Array.iteri
      (fun k acc ->
        if not !stopped then begin
          let lo, hi = bounds (!c + k) in
          executed := hi;
          match consume (Option.get acc) ~lo ~hi with
          | `Stop -> stopped := true
          | `Continue -> ()
        end)
      accs;
    c := !c + batch
  done;
  !executed

(* ---------- tracing (strictly observational) ----------

   When a sink is present, each chunk is timed on its executing domain
   and the measurement rides back alongside the chunk's accumulator;
   events are emitted on the scheduling domain, in consumption (index)
   order.  Nothing here reads or writes a PRNG stream, so estimates are
   bit-identical with tracing on or off, at every job count. *)

type tracer = { sink : Trace.sink; run : int; t0 : int }

let tracer_start trace ~label ~cap ~chunk ~jobs ~target_ci ~min_trials =
  match trace with
  | None -> None
  | Some sink ->
      let run = Trace.fresh_id sink in
      Trace.emit sink
        (Trace.Run_begin { run; label; cap; chunk; jobs; target_ci; min_trials });
      Some { sink; run; t0 = Clock.now_ns () }

(* wrap a chunk runner to report (acc, elapsed_ns, domain_id); the clock
   is only read when tracing is active *)
let timed_chunk tr run_chunk ~lo ~hi =
  match tr with
  | None -> (run_chunk ~lo ~hi, 0, 0)
  | Some _ ->
      let t0 = Clock.now_ns () in
      let acc = run_chunk ~lo ~hi in
      (acc, Clock.elapsed_ns ~since:t0, (Domain.self () :> int))

let tracer_chunk tr ~lo ~hi ~domain ~elapsed_ns ~successes =
  match tr with
  | None -> ()
  | Some { sink; run; _ } ->
      Trace.emit sink
        (Trace.Chunk { run; lo; hi; domain; elapsed_ns; successes })

let tracer_stop_check tr ~trials ~successes ~half_width ~target ~stop =
  match tr with
  | None -> ()
  | Some { sink; run; _ } ->
      Trace.emit sink
        (Trace.Stop_check { run; trials; successes; half_width; target; stop })

let tracer_end tr ~executed ~successes =
  match tr with
  | None -> ()
  | Some { sink; run; t0 } ->
      Trace.emit sink
        (Trace.Run_end
           { run; executed; successes; elapsed_ns = Clock.elapsed_ns ~since:t0 })

let run_scratch ?(jobs = 1) ?(chunk = default_chunk) ?target_ci
    ?(min_trials = 1000) ?progress ?trace ?(label = "trials.run") ~trials:cap
    ~rng ~init f =
  let root = Rng.copy rng in
  let successes = ref 0 in
  let t0 = Unix.gettimeofday () in
  let tr =
    tracer_start trace ~label ~cap ~chunk ~jobs ~target_ci ~min_trials
  in
  let run_chunk ~lo ~hi =
    let scratch = init () in
    let s = ref 0 in
    for i = lo to hi - 1 do
      if f scratch (Rng.substream root i) then incr s
    done;
    !s
  in
  let consume (s, elapsed_ns, domain) ~lo ~hi =
    successes := !successes + s;
    tracer_chunk tr ~lo ~hi ~domain ~elapsed_ns ~successes:(Some s);
    (match progress with
    | None -> ()
    | Some cb ->
        let elapsed = Unix.gettimeofday () -. t0 in
        cb
          {
            completed = hi;
            cap;
            successes = !successes;
            elapsed;
            rate = (if elapsed > 0.0 then float_of_int hi /. elapsed else 0.0);
            jobs;
          });
    match target_ci with
    | Some target when hi >= min_trials ->
        let est = of_counts ~successes:!successes ~trials:hi in
        let hw = half_width est in
        let stop = hw <= target in
        tracer_stop_check tr ~trials:hi ~successes:!successes ~half_width:hw
          ~target ~stop;
        if stop then `Stop else `Continue
    | _ -> `Continue
  in
  let executed =
    exec ~jobs ~chunk ~cap ~run_chunk:(timed_chunk tr run_chunk) ~consume
  in
  tracer_end tr ~executed ~successes:(Some !successes);
  Rng.advance rng executed;
  of_counts ~successes:!successes ~trials:executed

let run ?jobs ?chunk ?target_ci ?min_trials ?progress ?trace ?label ~trials
    ~rng f =
  run_scratch ?jobs ?chunk ?target_ci ?min_trials ?progress ?trace ?label
    ~trials ~rng
    ~init:(fun () -> ())
    (fun () sub -> f sub)

let sweep ?(jobs = 1) ?(chunk = default_chunk) ?progress ?trace
    ?(label = "trials.sweep") ~trials:cap ~rng ~points ~init f =
  if points < 1 then invalid_arg "Trials.sweep: points must be >= 1";
  let root = Rng.copy rng in
  let totals = Array.make points 0 in
  let t0 = Unix.gettimeofday () in
  let tr =
    tracer_start trace ~label ~cap ~chunk ~jobs ~target_ci:None ~min_trials:0
  in
  let run_chunk ~lo ~hi =
    let scratch = init () in
    let outcomes = Bytes.make points '\000' in
    let counts = Array.make points 0 in
    for i = lo to hi - 1 do
      Bytes.fill outcomes 0 points '\000';
      f scratch (Rng.substream root i) outcomes;
      for k = 0 to points - 1 do
        if Bytes.unsafe_get outcomes k <> '\000' then
          counts.(k) <- counts.(k) + 1
      done
    done;
    counts
  in
  let consume (counts, elapsed_ns, domain) ~lo ~hi =
    for k = 0 to points - 1 do
      totals.(k) <- totals.(k) + counts.(k)
    done;
    tracer_chunk tr ~lo ~hi ~domain ~elapsed_ns ~successes:None;
    (match progress with
    | None -> ()
    | Some cb ->
        let elapsed = Unix.gettimeofday () -. t0 in
        cb
          {
            completed = hi;
            cap;
            successes = totals.(0);
            elapsed;
            rate = (if elapsed > 0.0 then float_of_int hi /. elapsed else 0.0);
            jobs;
          });
    `Continue
  in
  let executed =
    exec ~jobs ~chunk ~cap ~run_chunk:(timed_chunk tr run_chunk) ~consume
  in
  tracer_end tr ~executed ~successes:None;
  Rng.advance rng executed;
  Array.map (fun s -> of_counts ~successes:s ~trials:executed) totals

let map_reduce ?(jobs = 1) ?(chunk = default_chunk) ?trace
    ?(label = "trials.map_reduce") ~trials:cap ~rng ~init ~create_acc ~trial
    ~combine () =
  let root = Rng.copy rng in
  let global = create_acc () in
  let tr =
    tracer_start trace ~label ~cap ~chunk ~jobs ~target_ci:None ~min_trials:0
  in
  let run_chunk ~lo ~hi =
    let scratch = init () in
    let acc = create_acc () in
    for i = lo to hi - 1 do
      trial scratch acc (Rng.substream root i)
    done;
    acc
  in
  let consume (acc, elapsed_ns, domain) ~lo ~hi =
    tracer_chunk tr ~lo ~hi ~domain ~elapsed_ns ~successes:None;
    combine global acc;
    `Continue
  in
  let executed =
    exec ~jobs ~chunk ~cap ~run_chunk:(timed_chunk tr run_chunk) ~consume
  in
  tracer_end tr ~executed ~successes:None;
  Rng.advance rng executed;
  global

let search ?(jobs = 1) ?(chunk = default_chunk) ?trace
    ?(label = "trials.search") ~trials:cap ~rng f =
  let root = Rng.copy rng in
  let found = ref None in
  let tr =
    tracer_start trace ~label ~cap ~chunk ~jobs ~target_ci:None ~min_trials:0
  in
  let run_chunk ~lo ~hi =
    let rec go i =
      if i >= hi then None
      else
        match f (Rng.substream root i) with
        | Some _ as w -> w
        | None -> go (i + 1)
    in
    go lo
  in
  let consume (acc, elapsed_ns, domain) ~lo ~hi =
    tracer_chunk tr ~lo ~hi ~domain ~elapsed_ns ~successes:None;
    match acc with
    | Some _ ->
        found := acc;
        `Stop
    | None -> `Continue
  in
  let executed =
    exec ~jobs ~chunk ~cap ~run_chunk:(timed_chunk tr run_chunk) ~consume
  in
  tracer_end tr ~executed ~successes:None;
  Rng.advance rng executed;
  !found
