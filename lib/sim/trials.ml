module Rng = Ftcsn_prng.Rng
module Prob = Ftcsn_util.Prob
module Trace = Ftcsn_obs.Trace
module Clock = Ftcsn_obs.Clock

type estimate = {
  successes : int;
  trials : int;
  mean : float;
  ci_low : float;
  ci_high : float;
}

let of_counts ~successes ~trials =
  let mean =
    if trials = 0 then 0.0 else float_of_int successes /. float_of_int trials
  in
  let ci_low, ci_high = Prob.wilson_interval ~successes ~trials ~z:1.96 in
  { successes; trials; mean; ci_low; ci_high }

let half_width e = (e.ci_high -. e.ci_low) /. 2.0

let pp ppf e =
  Format.fprintf ppf "%.4f [%.4f, %.4f] (%d/%d)" e.mean e.ci_low e.ci_high
    e.successes e.trials

type progress = {
  completed : int;
  cap : int;
  successes : int;
  elapsed : float;
  rate : float;
  jobs : int;
}

let default_chunk = 256

let recommended_jobs () = Domain.recommended_domain_count ()

(* The scheduler: trial [i] always runs on [Rng.substream root i], so its
   outcome is a pure function of (root seed, i) and the partition of the
   index space into chunks/domains cannot affect any result.  Chunks are
   dispatched in rounds of [jobs] (one chunk stays on the calling domain,
   the rest go to fresh domains), then consumed strictly in index order;
   a [`Stop] verdict discards every later chunk, including ones another
   domain already computed, so adaptive stopping is also scheduling-
   independent.  Returns the number of trials actually consumed. *)
let exec ~jobs ~chunk ~cap ~run_chunk ~consume =
  if jobs < 1 then invalid_arg "Trials: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Trials: chunk must be >= 1";
  if cap < 0 then invalid_arg "Trials: trials must be >= 0";
  let n_chunks = (cap + chunk - 1) / chunk in
  let bounds c = (c * chunk, min cap ((c + 1) * chunk)) in
  let stopped = ref false in
  let executed = ref 0 in
  let c = ref 0 in
  while (not !stopped) && !c < n_chunks do
    let batch = min jobs (n_chunks - !c) in
    let accs = Array.make batch None in
    if batch = 1 then begin
      let lo, hi = bounds !c in
      accs.(0) <- Some (run_chunk ~lo ~hi)
    end
    else begin
      let workers =
        Array.init (batch - 1) (fun k ->
            let lo, hi = bounds (!c + k + 1) in
            Domain.spawn (fun () -> run_chunk ~lo ~hi))
      in
      let lo, hi = bounds !c in
      accs.(0) <- Some (run_chunk ~lo ~hi);
      Array.iteri (fun k d -> accs.(k + 1) <- Some (Domain.join d)) workers
    end;
    Array.iteri
      (fun k acc ->
        if not !stopped then begin
          let lo, hi = bounds (!c + k) in
          executed := hi;
          match consume (Option.get acc) ~lo ~hi with
          | `Stop -> stopped := true
          | `Continue -> ()
        end)
      accs;
    c := !c + batch
  done;
  !executed

(* ---------- tracing (strictly observational) ----------

   When a sink is present, each chunk is timed on its executing domain
   and the measurement rides back alongside the chunk's accumulator;
   events are emitted on the scheduling domain, in consumption (index)
   order.  Nothing here reads or writes a PRNG stream, so estimates are
   bit-identical with tracing on or off, at every job count. *)

type tracer = { sink : Trace.sink; run : int; t0 : int }

let tracer_start trace ~label ~cap ~chunk ~jobs ~target_ci ~min_trials =
  match trace with
  | None -> None
  | Some sink ->
      let run = Trace.fresh_id sink in
      Trace.emit sink
        (Trace.Run_begin { run; label; cap; chunk; jobs; target_ci; min_trials });
      Some { sink; run; t0 = Clock.now_ns () }

(* wrap a chunk runner to report (acc, elapsed_ns, domain_id); the clock
   is only read when tracing is active *)
let timed_chunk tr run_chunk ~lo ~hi =
  match tr with
  | None -> (run_chunk ~lo ~hi, 0, 0)
  | Some _ ->
      let t0 = Clock.now_ns () in
      let acc = run_chunk ~lo ~hi in
      (acc, Clock.elapsed_ns ~since:t0, (Domain.self () :> int))

let tracer_chunk tr ~lo ~hi ~domain ~elapsed_ns ~successes =
  match tr with
  | None -> ()
  | Some { sink; run; _ } ->
      Trace.emit sink
        (Trace.Chunk { run; lo; hi; domain; elapsed_ns; successes })

let tracer_stop_check tr ~trials ~successes ~half_width ~target ~stop =
  match tr with
  | None -> ()
  | Some { sink; run; _ } ->
      Trace.emit sink
        (Trace.Stop_check { run; trials; successes; half_width; target; stop })

let tracer_end tr ~executed ~successes =
  match tr with
  | None -> ()
  | Some { sink; run; t0 } ->
      Trace.emit sink
        (Trace.Run_end
           { run; executed; successes; elapsed_ns = Clock.elapsed_ns ~since:t0 })

let run_scratch ?(jobs = 1) ?(chunk = default_chunk) ?target_ci
    ?(min_trials = 1000) ?progress ?trace ?(label = "trials.run") ~trials:cap
    ~rng ~init f =
  let root = Rng.copy rng in
  let successes = ref 0 in
  let t0 = Unix.gettimeofday () in
  let tr =
    tracer_start trace ~label ~cap ~chunk ~jobs ~target_ci ~min_trials
  in
  let run_chunk ~lo ~hi =
    let scratch = init () in
    let s = ref 0 in
    for i = lo to hi - 1 do
      if f scratch (Rng.substream root i) then incr s
    done;
    !s
  in
  let consume (s, elapsed_ns, domain) ~lo ~hi =
    successes := !successes + s;
    tracer_chunk tr ~lo ~hi ~domain ~elapsed_ns ~successes:(Some s);
    (match progress with
    | None -> ()
    | Some cb ->
        let elapsed = Unix.gettimeofday () -. t0 in
        cb
          {
            completed = hi;
            cap;
            successes = !successes;
            elapsed;
            rate = (if elapsed > 0.0 then float_of_int hi /. elapsed else 0.0);
            jobs;
          });
    match target_ci with
    | Some target when hi >= min_trials ->
        let est = of_counts ~successes:!successes ~trials:hi in
        let hw = half_width est in
        let stop = hw <= target in
        tracer_stop_check tr ~trials:hi ~successes:!successes ~half_width:hw
          ~target ~stop;
        if stop then `Stop else `Continue
    | _ -> `Continue
  in
  let executed =
    exec ~jobs ~chunk ~cap ~run_chunk:(timed_chunk tr run_chunk) ~consume
  in
  tracer_end tr ~executed ~successes:(Some !successes);
  Rng.advance rng executed;
  of_counts ~successes:!successes ~trials:executed

let run ?jobs ?chunk ?target_ci ?min_trials ?progress ?trace ?label ~trials
    ~rng f =
  run_scratch ?jobs ?chunk ?target_ci ?min_trials ?progress ?trace ?label
    ~trials ~rng
    ~init:(fun () -> ())
    (fun () sub -> f sub)

let map_reduce ?(jobs = 1) ?(chunk = default_chunk) ?trace
    ?(label = "trials.map_reduce") ~trials:cap ~rng ~init ~create_acc ~trial
    ~combine () =
  let root = Rng.copy rng in
  let global = create_acc () in
  let tr =
    tracer_start trace ~label ~cap ~chunk ~jobs ~target_ci:None ~min_trials:0
  in
  let run_chunk ~lo ~hi =
    let scratch = init () in
    let acc = create_acc () in
    for i = lo to hi - 1 do
      trial scratch acc (Rng.substream root i)
    done;
    acc
  in
  let consume (acc, elapsed_ns, domain) ~lo ~hi =
    tracer_chunk tr ~lo ~hi ~domain ~elapsed_ns ~successes:None;
    combine global acc;
    `Continue
  in
  let executed =
    exec ~jobs ~chunk ~cap ~run_chunk:(timed_chunk tr run_chunk) ~consume
  in
  tracer_end tr ~executed ~successes:None;
  Rng.advance rng executed;
  global

let search ?(jobs = 1) ?(chunk = default_chunk) ?trace
    ?(label = "trials.search") ~trials:cap ~rng f =
  let root = Rng.copy rng in
  let found = ref None in
  let tr =
    tracer_start trace ~label ~cap ~chunk ~jobs ~target_ci:None ~min_trials:0
  in
  let run_chunk ~lo ~hi =
    let rec go i =
      if i >= hi then None
      else
        match f (Rng.substream root i) with
        | Some _ as w -> w
        | None -> go (i + 1)
    in
    go lo
  in
  let consume (acc, elapsed_ns, domain) ~lo ~hi =
    tracer_chunk tr ~lo ~hi ~domain ~elapsed_ns ~successes:None;
    match acc with
    | Some _ ->
        found := acc;
        `Stop
    | None -> `Continue
  in
  let executed =
    exec ~jobs ~chunk ~cap ~run_chunk:(timed_chunk tr run_chunk) ~consume
  in
  tracer_end tr ~executed ~successes:None;
  Rng.advance rng executed;
  !found
