module Rng = Ftcsn_prng.Rng

(* 1 - Rng.float is in (0, 1], so log never sees 0 and variates are
   finite; inversion keeps one uniform per draw, which the determinism
   contract (fixed draws per event) relies on *)
let exponential rng ~rate =
  if not (rate > 0.0) then invalid_arg "Dist.exponential: rate must be > 0";
  -.log (1.0 -. Rng.float rng) /. rate

let pareto rng ~alpha ~scale =
  if not (alpha > 0.0) then invalid_arg "Dist.pareto: alpha must be > 0";
  if not (scale > 0.0) then invalid_arg "Dist.pareto: scale must be > 0";
  scale /. ((1.0 -. Rng.float rng) ** (1.0 /. alpha))

type holding = Exponential | Pareto of float

let holding_time rng = function
  | Exponential -> exponential rng ~rate:1.0
  | Pareto alpha -> pareto rng ~alpha ~scale:((alpha -. 1.0) /. alpha)

let holding_of_string s =
  match String.lowercase_ascii s with
  | "exp" | "exponential" -> Ok Exponential
  | s -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "pareto" -> (
          let a = String.sub s (i + 1) (String.length s - i - 1) in
          match float_of_string_opt a with
          | Some alpha when alpha > 1.0 -> Ok (Pareto alpha)
          | Some _ ->
              Error
                (Printf.sprintf
                   "pareto shape %s has no finite mean (need ALPHA > 1)" a)
          | None -> Error (Printf.sprintf "pareto shape %S is not a number" a))
      | _ -> Error "expected exp or pareto:ALPHA")

let pp_holding fmt = function
  | Exponential -> Format.fprintf fmt "exp"
  | Pareto alpha -> Format.fprintf fmt "pareto:%g" alpha
