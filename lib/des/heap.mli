(** The event queue of the discrete-event engine: a binary min-heap of
    timestamped payloads with {e stable} ordering.

    Entries are ordered by [(time, seq)] where [seq] is the push serial
    number, so two events scheduled for the same instant pop in the order
    they were scheduled.  This tie-break is the determinism contract of
    the whole DES subsystem: event execution order — and therefore every
    PRNG draw made while handling events — is a pure function of the
    schedule, never of heap internals or float coincidences. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** Empty queue.  [dummy] is a throwaway payload used to fill unused
    slots (the heap stores payloads in a flat array); it is never
    returned by {!pop}. *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Schedule a payload.  [time] must be finite;
    @raise Invalid_argument otherwise. *)

val min_time : 'a t -> float
(** Timestamp of the next event to pop.
    @raise Invalid_argument when empty. *)

val pop : 'a t -> 'a
(** Remove and return the payload with the smallest [(time, seq)] key.
    Read {!min_time} first if the timestamp is needed.
    @raise Invalid_argument when empty. *)

val clear : 'a t -> unit
(** Forget all pending events (the seq counter keeps advancing, so
    ordering stays stable across reuse). *)
