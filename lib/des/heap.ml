type 'a t = {
  mutable time : float array;
  mutable seq : int array;
  mutable payload : 'a array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a;
}

let create ?(capacity = 64) ~dummy () =
  let capacity = max 1 capacity in
  {
    time = Array.make capacity 0.0;
    seq = Array.make capacity 0;
    payload = Array.make capacity dummy;
    size = 0;
    next_seq = 0;
    dummy;
  }

let size h = h.size

let is_empty h = h.size = 0

(* lexicographic (time, seq) *)
let before h i j =
  h.time.(i) < h.time.(j)
  || (h.time.(i) = h.time.(j) && h.seq.(i) < h.seq.(j))

let swap h i j =
  let t = h.time.(i) in
  h.time.(i) <- h.time.(j);
  h.time.(j) <- t;
  let s = h.seq.(i) in
  h.seq.(i) <- h.seq.(j);
  h.seq.(j) <- s;
  let p = h.payload.(i) in
  h.payload.(i) <- h.payload.(j);
  h.payload.(j) <- p

let grow h =
  let cap = Array.length h.time in
  let cap' = 2 * cap in
  let time = Array.make cap' 0.0 in
  let seq = Array.make cap' 0 in
  let payload = Array.make cap' h.dummy in
  Array.blit h.time 0 time 0 cap;
  Array.blit h.seq 0 seq 0 cap;
  Array.blit h.payload 0 payload 0 cap;
  h.time <- time;
  h.seq <- seq;
  h.payload <- payload

let push h ~time x =
  if not (Float.is_finite time) then
    invalid_arg "Heap.push: non-finite event time";
  if h.size = Array.length h.time then grow h;
  let i = h.size in
  h.time.(i) <- time;
  h.seq.(i) <- h.next_seq;
  h.payload.(i) <- x;
  h.next_seq <- h.next_seq + 1;
  h.size <- h.size + 1;
  (* sift up *)
  let i = ref i in
  while !i > 0 && before h !i ((!i - 1) / 2) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let min_time h =
  if h.size = 0 then invalid_arg "Heap.min_time: empty";
  h.time.(0)

let pop h =
  if h.size = 0 then invalid_arg "Heap.pop: empty";
  let x = h.payload.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.time.(0) <- h.time.(h.size);
    h.seq.(0) <- h.seq.(h.size);
    h.payload.(0) <- h.payload.(h.size)
  end;
  h.payload.(h.size) <- h.dummy;
  (* sift down *)
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < h.size && before h l !smallest then smallest := l;
    if r < h.size && before h r !smallest then smallest := r;
    if !smallest = !i then continue := false
    else begin
      swap h !i !smallest;
      i := !smallest
    end
  done;
  x

let clear h =
  Array.fill h.payload 0 h.size h.dummy;
  h.size <- 0
