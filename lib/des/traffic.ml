module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Dyn_conn = Ftcsn_reliability.Dyn_conn
module Greedy = Ftcsn_routing.Greedy
module Backtrack = Ftcsn_routing.Backtrack
module Rng = Ftcsn_prng.Rng
module Trials = Ftcsn_sim.Trials
module Metrics = Ftcsn_obs.Metrics
module Counter = Ftcsn_obs.Counter

type stop = Horizon of float | Calls of { warmup : int; measured : int }

type policy =
  | Route_greedy
  | Route_rearrange of int
  | Route_staged
  | Route_loop

type config = {
  load : float;
  holding : Dist.holding;
  mtbf : float;
  mttr : float;
  stop : stop;
  batches : int;
  policy : policy;
  saturate : bool;
  stop_on_degradation : bool;
  shards : int;
  shard_jobs : int;
}

let config ?(load = 1.0) ?(holding = Dist.Exponential) ?(mtbf = infinity)
    ?(mttr = 10.0) ?(stop = Calls { warmup = 500; measured = 5000 })
    ?(batches = 10) ?(policy = Route_greedy) ?(saturate = false)
    ?(stop_on_degradation = false) ?(shards = 1) ?(shard_jobs = 1) () =
  if not (load >= 0.0 && load < infinity) then
    invalid_arg "Traffic.config: load must be finite and >= 0";
  if not (mtbf > 0.0) then invalid_arg "Traffic.config: mtbf must be > 0";
  if not (mttr > 0.0) then invalid_arg "Traffic.config: mttr must be > 0";
  if batches < 2 then invalid_arg "Traffic.config: need batches >= 2";
  if shards < 1 then invalid_arg "Traffic.config: need shards >= 1";
  if shards > Shard.max_shards then
    invalid_arg "Traffic.config: at most 255 shards";
  if shard_jobs < 1 then invalid_arg "Traffic.config: need shard_jobs >= 1";
  (match holding with
  | Dist.Pareto alpha when not (alpha > 1.0) ->
      invalid_arg "Traffic.config: pareto shape must be > 1"
  | _ -> ());
  (match policy with
  | Route_rearrange budget when budget <= 0 ->
      invalid_arg "Traffic.config: rearrange budget must be > 0"
  | _ -> ());
  (match stop with
  | Horizon t ->
      if not (t > 0.0 && t < infinity) then
        invalid_arg "Traffic.config: horizon must be finite and > 0"
  | Calls { warmup; measured } ->
      if warmup < 0 then invalid_arg "Traffic.config: warmup must be >= 0";
      if measured < batches then
        invalid_arg "Traffic.config: need measured >= batches";
      if not (load > 0.0) then
        invalid_arg "Traffic.config: a Calls stop needs load > 0");
  { load; holding; mtbf; mttr; stop; batches; policy; saturate;
    stop_on_degradation; shards; shard_jobs }

(* which deterministic search engine the policy asks for; Greedy resolves
   fallbacks (loop off-Benes -> staged -> bfs) at create time *)
let engine_of_policy = function
  | Route_staged -> `Staged
  | Route_loop -> `Loop
  | Route_greedy | Route_rearrange _ -> `Bfs

let router_name cfg net =
  Greedy.engine_name (Greedy.create ~engine:(engine_of_policy cfg.policy) net)

type stats = {
  sim_time : float;
  events : int;
  offered : int;
  served : int;
  blocked : int;
  blocked_full : int;
  dropped : int;
  rerouted : int;
  rearranged : int;
  failures : int;
  repairs : int;
  max_concurrent : int;
  occupancy : float;
  carried : float;
  measured_offered : int;
  blocking : float;
  batch_blocking : float array;
  degraded_at : float option;
  catastrophe_at : float option;
}

(* Events are unboxed ints: [(arg lsl 2) lor tag].  Tag 0 = Arrival
   (arg 0), 1 = Hangup (arg = stamp * cap + slot, see the call store),
   2 = Fail e, 3 = Repair e.  Pushing an immediate int onto the heap
   allocates nothing, and the [(time, push-seq)] determinism contract
   only cares about push order, which is unchanged from the variant
   encoding this replaced. *)
let ev_arrival = 0
let ev_hangup key = (key lsl 2) lor 1
let ev_fail e = (e lsl 2) lor 2
let ev_repair e = (e lsl 2) lor 3

(* idle-terminal index pool: [items] is always a permutation of [0, n)
   whose prefix [0, size) is the idle set, with [pos] the inverse map —
   O(1) remove/add and an exactly-uniform draw over the idle set *)
type pool = { items : int array; pos : int array; mutable size : int }

let pool_create n =
  { items = Array.init n Fun.id; pos = Array.init n Fun.id; size = n }

let pool_remove p x =
  let i = p.pos.(x) in
  let last = p.size - 1 in
  let y = p.items.(last) in
  p.items.(i) <- y;
  p.pos.(y) <- i;
  p.items.(last) <- x;
  p.pos.(x) <- last;
  p.size <- last

let pool_add p x =
  let i = p.pos.(x) in
  let y = p.items.(p.size) in
  p.items.(p.size) <- x;
  p.pos.(x) <- p.size;
  p.items.(i) <- y;
  p.pos.(y) <- i;
  p.size <- p.size + 1

let pool_draw rng p = p.items.(Rng.int rng p.size)

(* Structure-of-arrays call store.  At most [min n_inputs n_outputs]
   calls are ever live (each holds one input and one output), so slots
   are preallocated and recycled through an intrusive freelist; the
   live set is an intrusive doubly-linked list through [c_prev]/[c_next]
   (order is irrelevant — the only order-sensitive consumer, the
   rearrangement re-lay, sorts by call id).  Per-slot path/edge arrays
   grow once to the path length and are reused, so the steady-state
   call path — place, sever, reroute, hang up — allocates nothing.

   Hangup staleness: a pending hangup event carries [stamp * cap +
   slot].  [c_stamp] bumps only when a slot is {e permanently} freed
   (hangup or sever-without-reroute), never on a sever that reroutes
   the same call, so a rerouted call's pending hangup stays valid —
   exactly the semantics of the hashtable re-add it replaces. *)
type store = {
  cap : int;
  call_id : int array;  (* unique id (legacy next_id); -1 when free *)
  c_in : int array;  (* input index, not vertex id *)
  c_out : int array;
  c_stamp : int array;
  c_plen : int array;
  c_path : int array array;
  c_edges : int array array;
  c_prev : int array;
  c_next : int array;  (* live-list next, or freelist next when free *)
  mutable live_head : int;
  mutable live_count : int;
  mutable free_head : int;
}

let store_create cap =
  {
    cap;
    call_id = Array.make cap (-1);
    c_in = Array.make cap (-1);
    c_out = Array.make cap (-1);
    c_stamp = Array.make cap 0;
    c_plen = Array.make cap 0;
    c_path = Array.make cap [||];
    c_edges = Array.make cap [||];
    c_prev = Array.make cap (-1);
    c_next = Array.init cap (fun i -> if i + 1 < cap then i + 1 else -1);
    live_head = -1;
    live_count = 0;
    free_head = (if cap > 0 then 0 else -1);
  }

(* One event shard: a contiguous block of topological edge levels with
   its own heap, PRNG stream and scratch buffers.  During a drain the
   shard touches only its own fields, the [fstate] entries of its own
   edges, and (read-only) the frozen [owner] array; everything that
   crosses shard boundaries — faulty-degree updates, closed failures,
   severs — is buffered here and applied at window commit. *)
type shard_st = {
  sheap : int Heap.t;
  srng : Rng.t;
  mutable esc_t : float array;  (* severs to run at commit: times *)
  mutable esc_e : int array;  (* ... and failed-edge ids *)
  mutable esc_len : int;
  mutable ctl_t : float array;  (* closed failures bound for control *)
  mutable ctl_ev : int array;
  mutable ctl_len : int;
  mutable deg_v : int array;  (* (v lsl 1) lor (1 = decrement) *)
  mutable deg_len : int;
  mutable s_failures : int;
  mutable s_repairs : int;
  mutable s_events : int;
}

type state = {
  net : Network.t;
  cfg : config;
  crng : Rng.t;  (* the trial stream (shards = 1) or its control substream *)
  heap : int Heap.t;  (* control heap; the only heap when shards = 1 *)
  router : Greedy.t;
  fstate : Fault.state array;
  faulty_deg : int array;  (* failed edges incident to each vertex *)
  is_terminal : bool array;
  owner : int array;  (* vertex -> slot of the call whose path holds it *)
  calls : store;
  mutable next_id : int;
  idle_in : pool;
  idle_out : pool;
  conn : Dyn_conn.t;  (* incremental Lemma-7 catastrophe check *)
  route_buf : int array;  (* shared allocation-free routing target *)
  (* hot float scalars live in a flat float array so per-event updates
     don't box: 0 = now, 1 = area (∫ live-call count dt since
     window_start), 2 = holding_sum, 3 = current drain window end *)
  fs : float array;
  mutable offered : int;
  mutable served : int;
  mutable blocked : int;
  mutable blocked_full : int;
  mutable dropped : int;
  mutable rerouted : int;
  mutable rearranged : int;
  mutable failures : int;
  mutable repairs : int;
  mutable events : int;
  mutable max_concurrent : int;
  mutable window_start : float;
  mutable measuring : bool;
  mutable w_offered : int;
  mutable w_blocked : int;
  bm : Batch_means.t option;
  mutable degraded_at : float option;
  mutable catastrophe_at : float option;
  mutable stopped : bool;
  shs : shard_st array;  (* [||] when cfg.shards = 1 *)
  eshard : Bytes.t;  (* edge -> shard id; empty when unsharded *)
  esc_idx : int array;  (* k-way merge cursors, one per shard *)
}

let is_normal s = Fault.state_equal s Fault.Normal

let init ~rng ~cfg net =
  let g = net.Network.graph in
  let n = Digraph.vertex_count g and m = Digraph.edge_count g in
  let is_terminal = Array.make n false in
  List.iter (fun v -> is_terminal.(v) <- true) (Network.terminals net);
  let fstate = Array.make m Fault.Normal in
  let faulty_deg = Array.make n 0 in
  (* terminals stay routable with faulty incident switches (the switches
     themselves are unusable via edge_ok); internal vertices are stripped
     once faulty, mirroring Fault_strip and Ft_session *)
  let allowed v = is_terminal.(v) || faulty_deg.(v) = 0 in
  let edge_ok e = is_normal fstate.(e) in
  let sharded = cfg.shards > 1 in
  (* substreams are derived without advancing [rng], so the unsharded
     engine — which consumes [rng] directly — is untouched by this *)
  let crng = if sharded then Rng.substream rng 0 else rng in
  let shards =
    if not sharded then [||]
    else
      Array.init cfg.shards (fun k ->
          {
            sheap = Heap.create ~dummy:0 ();
            srng = Rng.substream rng (k + 1);
            esc_t = [||];
            esc_e = [||];
            esc_len = 0;
            ctl_t = [||];
            ctl_ev = [||];
            ctl_len = 0;
            deg_v = [||];
            deg_len = 0;
            s_failures = 0;
            s_repairs = 0;
            s_events = 0;
          })
  in
  let eshard =
    if sharded then Shard.partition net ~shards:cfg.shards else Bytes.empty
  in
  {
    net;
    cfg;
    crng;
    heap = Heap.create ~dummy:0 ();
    router =
      Greedy.create ~allowed ~edge_ok ~engine:(engine_of_policy cfg.policy)
        net;
    fstate;
    faulty_deg;
    is_terminal;
    owner = Array.make n (-1);
    calls = store_create (min (Network.n_inputs net) (Network.n_outputs net));
    next_id = 0;
    idle_in = pool_create (Network.n_inputs net);
    idle_out = pool_create (Network.n_outputs net);
    conn = Dyn_conn.create ~terminals:(Network.terminals net) g;
    route_buf = Array.make n 0;
    fs = Array.make 4 0.0;
    offered = 0;
    served = 0;
    blocked = 0;
    blocked_full = 0;
    dropped = 0;
    rerouted = 0;
    rearranged = 0;
    failures = 0;
    repairs = 0;
    events = 0;
    max_concurrent = 0;
    window_start = 0.0;
    measuring = (match cfg.stop with Horizon _ -> true | Calls _ -> false);
    w_offered = 0;
    w_blocked = 0;
    bm =
      (match cfg.stop with
      | Calls { measured; _ } ->
          Some (Batch_means.create ~batches:cfg.batches ~total:measured)
      | Horizon _ -> None);
    degraded_at = None;
    catastrophe_at = None;
    stopped = false;
    shs = shards;
    eshard;
    esc_idx = Array.make (max cfg.shards 1) 0;
  }

let advance st t =
  if t > st.fs.(0) then begin
    st.fs.(1) <-
      st.fs.(1) +. (float_of_int st.calls.live_count *. (t -. st.fs.(0)));
    st.fs.(0) <- t
  end

let schedule st dt ev = Heap.push st.heap ~time:(st.fs.(0) +. dt) ev

(* grow-once per-slot buffers: steady state reuses them *)
let slot_path st slot len =
  let p = st.calls.c_path.(slot) in
  if Array.length p >= len then p
  else begin
    let p' = Array.make (max len (2 * Array.length p)) 0 in
    st.calls.c_path.(slot) <- p';
    p'
  end

let slot_edges st slot len =
  let p = st.calls.c_edges.(slot) in
  if Array.length p >= len then p
  else begin
    let p' = Array.make (max len (2 * Array.length p)) 0 in
    st.calls.c_edges.(slot) <- p';
    p'
  end

(* the BFS only crossed normal switches, so every hop has a normal edge;
   with parallel edges the first normal edge in CSR order is the switch
   the call occupies (a deterministic choice) *)
let edges_of_slot st slot =
  let g = st.net.Network.graph in
  let plen = st.calls.c_plen.(slot) in
  let path = st.calls.c_path.(slot) in
  let edges = slot_edges st slot (max (plen - 1) 0) in
  for i = 0 to plen - 2 do
    let u = path.(i) and v = path.(i + 1) in
    let e = ref (-1) in
    Digraph.iter_out g u (fun ~dst ~eid ->
        if !e < 0 && dst = v && is_normal st.fstate.(eid) then e := eid);
    if !e < 0 then invalid_arg "Traffic: path hop has no normal switch";
    edges.(i) <- !e
  done

let note_concurrency st =
  if st.calls.live_count > st.max_concurrent then
    st.max_concurrent <- st.calls.live_count

let link_live st slot =
  let s = st.calls in
  s.c_prev.(slot) <- -1;
  s.c_next.(slot) <- s.live_head;
  if s.live_head >= 0 then s.c_prev.(s.live_head) <- slot;
  s.live_head <- slot;
  s.live_count <- s.live_count + 1

let unlink_live st slot =
  let s = st.calls in
  let p = s.c_prev.(slot) and n = s.c_next.(slot) in
  if p >= 0 then s.c_next.(p) <- n else s.live_head <- n;
  if n >= 0 then s.c_prev.(n) <- p;
  s.live_count <- s.live_count - 1

let alloc_slot st ~input ~output =
  let s = st.calls in
  let slot = s.free_head in
  (* an idle input/output pair existed, so a free slot must too *)
  s.free_head <- s.c_next.(slot);
  s.call_id.(slot) <- st.next_id;
  st.next_id <- st.next_id + 1;
  s.c_in.(slot) <- input;
  s.c_out.(slot) <- output;
  slot

(* permanent release: the stamp bump is what invalidates any pending
   hangup event for this occupancy *)
let free_slot st slot =
  let s = st.calls in
  s.c_stamp.(slot) <- s.c_stamp.(slot) + 1;
  s.call_id.(slot) <- -1;
  s.c_next.(slot) <- s.free_head;
  s.free_head <- slot

(* adopt a path already marked busy in the router, from route_buf *)
let adopt_buf st slot ~len =
  let s = st.calls in
  let p = slot_path st slot len in
  Array.blit st.route_buf 0 p 0 len;
  s.c_plen.(slot) <- len;
  edges_of_slot st slot;
  for i = 0 to len - 1 do
    st.owner.(p.(i)) <- slot
  done;
  pool_remove st.idle_in s.c_in.(slot);
  pool_remove st.idle_out s.c_out.(slot);
  link_live st slot;
  note_concurrency st

(* cold-path variant taking a list path (saturation, rearrangement) *)
let set_path_list st slot path =
  let len = List.length path in
  let p = slot_path st slot len in
  List.iteri (fun i v -> p.(i) <- v) path;
  st.calls.c_plen.(slot) <- len;
  edges_of_slot st slot

let adopt_list st slot path =
  set_path_list st slot path;
  let s = st.calls in
  let p = s.c_path.(slot) in
  for i = 0 to s.c_plen.(slot) - 1 do
    st.owner.(p.(i)) <- slot
  done;
  pool_remove st.idle_in s.c_in.(slot);
  pool_remove st.idle_out s.c_out.(slot);
  link_live st slot;
  note_concurrency st

(* take the call off the network but keep its slot (the sever path may
   immediately re-adopt it under the same id and stamp) *)
let vacate st slot =
  let s = st.calls in
  let p = s.c_path.(slot) and len = s.c_plen.(slot) in
  Greedy.release_buf st.router p ~len;
  for i = 0 to len - 1 do
    st.owner.(p.(i)) <- -1
  done;
  pool_add st.idle_in s.c_in.(slot);
  pool_add st.idle_out s.c_out.(slot);
  unlink_live st slot

(* a new call goes live: draw its holding time, schedule its hangup *)
let place_new_buf st ~i ~o ~len =
  let slot = alloc_slot st ~input:i ~output:o in
  adopt_buf st slot ~len;
  let h = Dist.holding_time st.crng st.cfg.holding in
  schedule st h (ev_hangup ((st.calls.c_stamp.(slot) * st.calls.cap) + slot));
  if st.measuring then st.fs.(2) <- st.fs.(2) +. h

let place_new_list st ~i ~o path =
  let slot = alloc_slot st ~input:i ~output:o in
  adopt_list st slot path;
  let h = Dist.holding_time st.crng st.cfg.holding in
  schedule st h (ev_hangup ((st.calls.c_stamp.(slot) * st.calls.cap) + slot));
  if st.measuring then st.fs.(2) <- st.fs.(2) +. h

(* identity calls input i -> output i that never hang up — the
   saturating workload of the time-to-degradation experiments *)
let saturate st =
  let k = min (Network.n_inputs st.net) (Network.n_outputs st.net) in
  for i = 0 to k - 1 do
    let input = st.net.Network.inputs.(i)
    and output = st.net.Network.outputs.(i) in
    match Greedy.route st.router ~input ~output with
    | Some path ->
        let slot = alloc_slot st ~input:i ~output:i in
        adopt_list st slot path;
        st.served <- st.served + 1
    | None -> st.blocked <- st.blocked + 1
  done

(* rearrangeable fallback: re-lay every live call plus the new request
   from scratch over the fault-masked graph; on success the whole layout
   migrates at once.  Cold path — list allocations are fine here. *)
let try_rearrange st ~budget ~i ~o =
  let s = st.calls in
  let live = ref [] in
  let sl = ref s.live_head in
  while !sl >= 0 do
    live := !sl :: !live;
    sl := s.c_next.(!sl)
  done;
  let live =
    List.sort (fun a b -> Int.compare s.call_id.(a) s.call_id.(b)) !live
  in
  let inputs = st.net.Network.inputs and outputs = st.net.Network.outputs in
  let reqs =
    List.map (fun sl -> (inputs.(s.c_in.(sl)), outputs.(s.c_out.(sl)))) live
    @ [ (inputs.(i), outputs.(o)) ]
  in
  let allowed v = st.is_terminal.(v) || st.faulty_deg.(v) = 0 in
  let edge_ok e = is_normal st.fstate.(e) in
  match Backtrack.route_all ~budget ~allowed ~edge_ok st.net reqs with
  | Backtrack.Unroutable | Backtrack.Budget_exceeded -> false
  | Backtrack.Routed paths ->
      List.iter
        (fun sl ->
          Greedy.release_buf st.router s.c_path.(sl) ~len:s.c_plen.(sl);
          for j = 0 to s.c_plen.(sl) - 1 do
            st.owner.(s.c_path.(sl).(j)) <- -1
          done)
        live;
      let rec go cs ps =
        match (cs, ps) with
        | [], [ p_new ] ->
            Greedy.occupy st.router p_new;
            place_new_list st ~i ~o p_new
        | sl :: cs', p :: ps' ->
            Greedy.occupy st.router p;
            set_path_list st sl p;
            List.iter (fun v -> st.owner.(v) <- sl) p;
            go cs' ps'
        | _ -> assert false
      in
      go live paths;
      st.rearranged <- st.rearranged + 1;
      true

let handle_arrival st =
  st.offered <- st.offered + 1;
  (match st.cfg.stop with
  | Calls { warmup; _ } when (not st.measuring) && st.offered > warmup ->
      (* warm-up over: the measured window starts now *)
      st.measuring <- true;
      st.window_start <- st.fs.(0);
      st.fs.(1) <- 0.0
  | _ -> ());
  let blocked, full =
    if st.idle_in.size = 0 || st.idle_out.size = 0 then (true, true)
    else begin
      (* draws, in fixed order: input pick, output pick, then (on
         placement) the holding time *)
      let i = pool_draw st.crng st.idle_in in
      let o = pool_draw st.crng st.idle_out in
      let input = st.net.Network.inputs.(i)
      and output = st.net.Network.outputs.(o) in
      let len =
        Greedy.route_into st.router ~input ~output ~buf:st.route_buf
      in
      if len >= 0 then begin
        place_new_buf st ~i ~o ~len;
        (false, false)
      end
      else
        match st.cfg.policy with
        (* the fast routers only change how a path is found; a request
           they block is unroutable, so the verdict is greedy's *)
        | Route_greedy | Route_staged | Route_loop -> (true, false)
        | Route_rearrange budget ->
            (not (try_rearrange st ~budget ~i ~o), false)
    end
  in
  if blocked then begin
    st.blocked <- st.blocked + 1;
    if full then st.blocked_full <- st.blocked_full + 1
  end
  else st.served <- st.served + 1;
  if st.measuring then begin
    st.w_offered <- st.w_offered + 1;
    if blocked then st.w_blocked <- st.w_blocked + 1;
    match st.bm with
    | Some bm -> Batch_means.add bm (if blocked then 1.0 else 0.0)
    | None -> ()
  end;
  if blocked && (not full) && st.cfg.stop_on_degradation then begin
    st.degraded_at <- Some st.fs.(0);
    st.stopped <- true
  end;
  (match st.cfg.stop with
  | Calls { measured; _ } when st.measuring && st.w_offered >= measured ->
      st.stopped <- true
  | _ -> ());
  if not st.stopped then
    schedule st (Dist.exponential st.crng ~rate:st.cfg.load) ev_arrival

let handle_hangup st key =
  let slot = key mod st.calls.cap and stamp = key / st.calls.cap in
  (* stamp mismatch = the call was severed earlier and its slot
     permanently freed; this hangup event is stale *)
  if st.calls.c_stamp.(slot) = stamp then begin
    vacate st slot;
    free_slot st slot
  end

let crosses st slot e =
  let edges = st.calls.c_edges.(slot) in
  let k = st.calls.c_plen.(slot) - 1 in
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < k do
    if edges.(!i) = e then found := true;
    incr i
  done;
  !found

(* drop the call (if any) whose path crosses the failed switch, then
   attempt an immediate greedy reroute of the same endpoint pair *)
let sever st e ~u ~v =
  let try_drop vtx =
    let slot = st.owner.(vtx) in
    if slot >= 0 && crosses st slot e then begin
      st.dropped <- st.dropped + 1;
      vacate st slot;
      let input = st.net.Network.inputs.(st.calls.c_in.(slot))
      and output = st.net.Network.outputs.(st.calls.c_out.(slot)) in
      let len =
        Greedy.route_into st.router ~input ~output ~buf:st.route_buf
      in
      if len >= 0 then begin
        (* same slot, same stamp: the pending hangup stays valid *)
        adopt_buf st slot ~len;
        st.rerouted <- st.rerouted + 1
      end
      else begin
        free_slot st slot;
        if st.cfg.stop_on_degradation && not st.stopped then begin
          st.degraded_at <- Some st.fs.(0);
          st.stopped <- true
        end
      end
    end
  in
  try_drop u;
  if v <> u then try_drop v

let note_catastrophe st =
  st.catastrophe_at <- Some st.fs.(0);
  if st.cfg.stop_on_degradation && st.degraded_at = None then
    st.degraded_at <- Some st.fs.(0);
  st.stopped <- true

(* unsharded failure/repair: the open/closed coin is drawn when the
   event fires, exactly as the engine always did *)
let handle_fail st e =
  st.failures <- st.failures + 1;
  (* draws, in fixed order: the open/closed coin, then the repair clock *)
  let closed = Rng.bool st.crng in
  if st.cfg.mttr < infinity then
    schedule st
      (Dist.exponential st.crng ~rate:(1.0 /. st.cfg.mttr))
      (ev_repair e);
  st.fstate.(e) <-
    (if closed then Fault.Closed_failure else Fault.Open_failure);
  let u, v = Digraph.edge_endpoints st.net.Network.graph e in
  st.faulty_deg.(u) <- st.faulty_deg.(u) + 1;
  if v <> u then st.faulty_deg.(v) <- st.faulty_deg.(v) + 1;
  if closed then begin
    (* two terminals in one closed-contraction class is the Lemma 7
       catastrophe; Dyn_conn maintains the verdict incrementally *)
    Dyn_conn.close st.conn e;
    if Dyn_conn.terminals_shorted st.conn then note_catastrophe st
    else sever st e ~u ~v
  end
  else sever st e ~u ~v

let handle_repair st e =
  st.repairs <- st.repairs + 1;
  if Fault.state_equal st.fstate.(e) Fault.Closed_failure then
    Dyn_conn.reopen st.conn e;
  st.fstate.(e) <- Fault.Normal;
  let u, v = Digraph.edge_endpoints st.net.Network.graph e in
  st.faulty_deg.(u) <- st.faulty_deg.(u) - 1;
  if v <> u then st.faulty_deg.(v) <- st.faulty_deg.(v) - 1;
  (* back in service with a fresh failure clock *)
  schedule st (Dist.exponential st.crng ~rate:(1.0 /. st.cfg.mtbf)) (ev_fail e)

(* sharded failure/repair: the coin is pre-drawn when the failure is
   scheduled, which routes closed failures (the only kind that touches
   global connectivity) to the control heap and leaves open failures
   shard-local *)
let handle_fail_closed st e =
  st.failures <- st.failures + 1;
  let sh = st.shs.(Shard.shard_of st.eshard e) in
  if st.cfg.mttr < infinity then
    schedule st
      (Dist.exponential sh.srng ~rate:(1.0 /. st.cfg.mttr))
      (ev_repair e);
  st.fstate.(e) <- Fault.Closed_failure;
  let u, v = Digraph.edge_endpoints st.net.Network.graph e in
  st.faulty_deg.(u) <- st.faulty_deg.(u) + 1;
  if v <> u then st.faulty_deg.(v) <- st.faulty_deg.(v) + 1;
  Dyn_conn.close st.conn e;
  if Dyn_conn.terminals_shorted st.conn then note_catastrophe st
  else sever st e ~u ~v

let handle_repair_closed st e =
  st.repairs <- st.repairs + 1;
  Dyn_conn.reopen st.conn e;
  st.fstate.(e) <- Fault.Normal;
  let u, v = Digraph.edge_endpoints st.net.Network.graph e in
  st.faulty_deg.(u) <- st.faulty_deg.(u) - 1;
  if v <> u then st.faulty_deg.(v) <- st.faulty_deg.(v) - 1;
  let sh = st.shs.(Shard.shard_of st.eshard e) in
  let dt = Dist.exponential sh.srng ~rate:(1.0 /. st.cfg.mtbf) in
  let closed = Rng.bool sh.srng in
  if closed then Heap.push st.heap ~time:(st.fs.(0) +. dt) (ev_fail e)
  else Heap.push sh.sheap ~time:(st.fs.(0) +. dt) (ev_fail e)

(* shard scratch-buffer appends, grow-once *)
let grow_f a len = Array.append a (Array.make (max 8 (Array.length a + len)) 0.0)
let grow_i a len = Array.append a (Array.make (max 8 (Array.length a + len)) 0)

let esc_push sh t e =
  if sh.esc_len = Array.length sh.esc_t then begin
    sh.esc_t <- grow_f sh.esc_t sh.esc_len;
    sh.esc_e <- grow_i sh.esc_e sh.esc_len
  end;
  sh.esc_t.(sh.esc_len) <- t;
  sh.esc_e.(sh.esc_len) <- e;
  sh.esc_len <- sh.esc_len + 1

let ctl_push sh t ev =
  if sh.ctl_len = Array.length sh.ctl_t then begin
    sh.ctl_t <- grow_f sh.ctl_t sh.ctl_len;
    sh.ctl_ev <- grow_i sh.ctl_ev sh.ctl_len
  end;
  sh.ctl_t.(sh.ctl_len) <- t;
  sh.ctl_ev.(sh.ctl_len) <- ev;
  sh.ctl_len <- sh.ctl_len + 1

let deg_push sh v ~dec =
  if sh.deg_len = Array.length sh.deg_v then
    sh.deg_v <- grow_i sh.deg_v sh.deg_len;
  sh.deg_v.(sh.deg_len) <- (v lsl 1) lor (if dec then 1 else 0);
  sh.deg_len <- sh.deg_len + 1

(* Drain shard [k] up to the window end fs.(3): process its open
   failures and repairs, keeping every cross-shard-visible effect in
   the shard's buffers.  Safe to run concurrently with the other
   shards' drains: this touches only the shard's own heap/rng/buffers,
   the fstate entries of its own edges, and reads the frozen [owner]
   array.  No global-time or statistics access. *)
let drain_shard st k =
  let sh = st.shs.(k) in
  let w = st.fs.(3) in
  let g = st.net.Network.graph in
  let continue_ = ref true in
  while !continue_ do
    if Heap.is_empty sh.sheap || Heap.min_time sh.sheap > w then
      continue_ := false
    else begin
      let t = Heap.min_time sh.sheap in
      let ev = Heap.pop sh.sheap in
      sh.s_events <- sh.s_events + 1;
      let e = ev lsr 2 in
      let u, v = Digraph.edge_endpoints g e in
      if ev land 3 = 2 then begin
        (* open failure *)
        sh.s_failures <- sh.s_failures + 1;
        if st.cfg.mttr < infinity then begin
          let dt = Dist.exponential sh.srng ~rate:(1.0 /. st.cfg.mttr) in
          Heap.push sh.sheap ~time:(t +. dt) (ev_repair e)
        end;
        st.fstate.(e) <- Fault.Open_failure;
        deg_push sh u ~dec:false;
        if v <> u then deg_push sh v ~dec:false;
        (* escalate the sever to commit time only if a live call can be
           crossing this switch.  [owner] is frozen during the window,
           and any call placed or rerouted at commit routes over the
           fully-committed fault mask — so it cannot cross this edge,
           and no sever is ever missed. *)
        if st.owner.(u) >= 0 || (v <> u && st.owner.(v) >= 0) then
          esc_push sh t e
      end
      else begin
        (* open repair *)
        sh.s_repairs <- sh.s_repairs + 1;
        st.fstate.(e) <- Fault.Normal;
        deg_push sh u ~dec:true;
        if v <> u then deg_push sh v ~dec:true;
        (* fresh failure clock: the clock draw, then the coin that
           decides whether the next failure is control-bound *)
        let dt = Dist.exponential sh.srng ~rate:(1.0 /. st.cfg.mtbf) in
        let closed = Rng.bool sh.srng in
        if closed then ctl_push sh (t +. dt) (ev_fail e)
        else Heap.push sh.sheap ~time:(t +. dt) (ev_fail e)
      end
    end
  done

(* Apply everything the drains buffered, in deterministic order:
   faulty-degree deltas and counters shard by shard, control-bound
   closed failures shard by shard (heap seq breaks same-time ties by
   shard id), then the escalated severs merged across shards by
   (time, shard). *)
let commit_window st =
  let ns = Array.length st.shs in
  for k = 0 to ns - 1 do
    let sh = st.shs.(k) in
    for j = 0 to sh.deg_len - 1 do
      let enc = sh.deg_v.(j) in
      let v = enc lsr 1 in
      st.faulty_deg.(v) <-
        (st.faulty_deg.(v) + if enc land 1 = 1 then -1 else 1)
    done;
    sh.deg_len <- 0;
    st.failures <- st.failures + sh.s_failures;
    sh.s_failures <- 0;
    st.repairs <- st.repairs + sh.s_repairs;
    sh.s_repairs <- 0;
    st.events <- st.events + sh.s_events;
    sh.s_events <- 0;
    for j = 0 to sh.ctl_len - 1 do
      Heap.push st.heap ~time:sh.ctl_t.(j) sh.ctl_ev.(j)
    done;
    sh.ctl_len <- 0
  done;
  let idx = st.esc_idx in
  Array.fill idx 0 ns 0;
  let remaining = ref 0 in
  Array.iter (fun sh -> remaining := !remaining + sh.esc_len) st.shs;
  while !remaining > 0 && not st.stopped do
    let best = ref (-1) and bt = ref infinity in
    for k = 0 to ns - 1 do
      let sh = st.shs.(k) in
      if idx.(k) < sh.esc_len && sh.esc_t.(idx.(k)) < !bt then begin
        best := k;
        bt := sh.esc_t.(idx.(k))
      end
    done;
    let sh = st.shs.(!best) in
    let e = sh.esc_e.(idx.(!best)) in
    idx.(!best) <- idx.(!best) + 1;
    decr remaining;
    advance st !bt;
    let u, v = Digraph.edge_endpoints st.net.Network.graph e in
    sever st e ~u ~v
  done;
  Array.iter (fun sh -> sh.esc_len <- 0) st.shs

let dispatch_mono st ev =
  match ev land 3 with
  | 0 -> handle_arrival st
  | 1 -> handle_hangup st (ev lsr 2)
  | 2 -> handle_fail st (ev lsr 2)
  | _ -> handle_repair st (ev lsr 2)

let dispatch_sharded st ev =
  match ev land 3 with
  | 0 -> handle_arrival st
  | 1 -> handle_hangup st (ev lsr 2)
  | 2 -> handle_fail_closed st (ev lsr 2)
  | _ -> handle_repair_closed st (ev lsr 2)

let run_mono st horizon =
  let continue_ = ref true in
  while !continue_ do
    if st.stopped || Heap.is_empty st.heap then continue_ := false
    else begin
      let t = Heap.min_time st.heap in
      if t > horizon then begin
        advance st horizon;
        st.stopped <- true;
        continue_ := false
      end
      else begin
        let ev = Heap.pop st.heap in
        advance st t;
        st.events <- st.events + 1;
        dispatch_mono st ev
      end
    end
  done

(* Conservative time-window synchronizer: the safe horizon for a drain
   is the next control event (arrivals, hangups and closed failures all
   live on the control heap, and they are the only events that mutate
   call state), capped by the stop horizon.  Each iteration drains all
   shards up to that window, commits, then executes exactly one control
   event. *)
let run_sharded st horizon =
  let ns = Array.length st.shs in
  let tasks = Array.init ns (fun k () -> drain_shard st k) in
  let jobs = st.cfg.shard_jobs in
  let continue_ = ref true in
  while !continue_ do
    if st.stopped then continue_ := false
    else begin
      let wc =
        if Heap.is_empty st.heap then infinity else Heap.min_time st.heap
      in
      let w = min wc horizon in
      if w = infinity then
        (* no control events and no horizon: the remaining shard-local
           open-failure churn cannot affect any statistic *)
        continue_ := false
      else begin
        st.fs.(3) <- w;
        Trials.parallel_tasks ~jobs tasks;
        commit_window st;
        if not st.stopped then begin
          (* a drain may have delivered a closed failure below [w] *)
          let wc' =
            if Heap.is_empty st.heap then infinity else Heap.min_time st.heap
          in
          if wc' > horizon then begin
            advance st horizon;
            st.stopped <- true;
            continue_ := false
          end
          else begin
            let ev = Heap.pop st.heap in
            advance st wc';
            st.events <- st.events + 1;
            dispatch_sharded st ev
          end
        end
      end
    end
  done

let finish st =
  let window = st.fs.(0) -. st.window_start in
  let occupancy = if window > 0.0 then st.fs.(1) /. window else 0.0 in
  let carried = if window > 0.0 then st.fs.(2) /. window else 0.0 in
  let blocking =
    if st.w_offered > 0 then
      float_of_int st.w_blocked /. float_of_int st.w_offered
    else 0.0
  in
  let batch_blocking =
    match st.bm with Some bm -> Batch_means.means bm | None -> [||]
  in
  let c name v = Counter.add (Metrics.counter Metrics.default name) v in
  c "traffic.runs" 1;
  c "traffic.events" st.events;
  c "traffic.offered" st.offered;
  c "traffic.served" st.served;
  c "traffic.blocked" st.blocked;
  c "traffic.blocked_full" st.blocked_full;
  c "traffic.dropped" st.dropped;
  c "traffic.rerouted" st.rerouted;
  c "traffic.failures" st.failures;
  c "traffic.repairs" st.repairs;
  if st.catastrophe_at <> None then c "traffic.catastrophes" 1;
  {
    sim_time = st.fs.(0);
    events = st.events;
    offered = st.offered;
    served = st.served;
    blocked = st.blocked;
    blocked_full = st.blocked_full;
    dropped = st.dropped;
    rerouted = st.rerouted;
    rearranged = st.rearranged;
    failures = st.failures;
    repairs = st.repairs;
    max_concurrent = st.max_concurrent;
    occupancy;
    carried;
    measured_offered = st.w_offered;
    blocking;
    batch_blocking;
    degraded_at = st.degraded_at;
    catastrophe_at = st.catastrophe_at;
  }

let run ~rng ~config:cfg net =
  if Network.n_inputs net = 0 || Network.n_outputs net = 0 then
    invalid_arg "Traffic.run: network has no terminals";
  let st = init ~rng ~cfg net in
  (* deterministic bootstrap: saturation placements (no draws), one
     failure clock per switch in ascending edge order, then the first
     arrival *)
  if cfg.saturate then saturate st;
  if cfg.mtbf < infinity then begin
    let m = Digraph.edge_count net.Network.graph in
    if cfg.shards = 1 then
      for e = 0 to m - 1 do
        schedule st
          (Dist.exponential st.crng ~rate:(1.0 /. cfg.mtbf))
          (ev_fail e)
      done
    else
      for e = 0 to m - 1 do
        let sh = st.shs.(Shard.shard_of st.eshard e) in
        let dt = Dist.exponential sh.srng ~rate:(1.0 /. cfg.mtbf) in
        let closed = Rng.bool sh.srng in
        if closed then Heap.push st.heap ~time:dt (ev_fail e)
        else Heap.push sh.sheap ~time:dt (ev_fail e)
      done
  end;
  if cfg.load > 0.0 then
    schedule st (Dist.exponential st.crng ~rate:cfg.load) ev_arrival;
  let horizon = match cfg.stop with Horizon h -> h | Calls _ -> infinity in
  if cfg.shards = 1 then run_mono st horizon else run_sharded st horizon;
  (* a horizon run whose queue dried up still spans [0, h] *)
  (match cfg.stop with
  | Horizon h when (not st.stopped) && st.fs.(0) < h -> advance st h
  | _ -> ());
  finish st

type summary = {
  replications : int;
  blocking : Batch_means.summary;
  occupancy : float;
  carried : float;
  t_offered : int;
  t_served : int;
  t_blocked : int;
  t_blocked_full : int;
  t_dropped : int;
  t_rerouted : int;
  t_failures : int;
  t_repairs : int;
  t_events : int;
  t_sim_time : float;
  catastrophes : int;
}

let estimate ?jobs ?trace ?(label = "traffic.estimate") ~trials ~rng
    ~config net =
  if trials < 1 then invalid_arg "Traffic.estimate: need trials >= 1";
  let acc =
    Trials.map_reduce ?jobs ?trace ~label ~trials ~rng
      ~init:(fun () -> ())
      ~create_acc:(fun () -> ref [])
      ~trial:(fun () acc sub -> acc := run ~rng:sub ~config net :: !acc)
        (* chunks combine in index order, each list reverse-ordered, so
           prepending keeps the whole accumulator reverse-ordered *)
      ~combine:(fun global chunk -> global := !chunk @ !global)
      ()
  in
  let stats = List.rev !acc in
  let reps = List.length stats in
  let sum f = List.fold_left (fun a (s : stats) -> a + f s) 0 stats in
  let sumf f = List.fold_left (fun a (s : stats) -> a +. f s) 0.0 stats in
  let count = sum (fun s -> s.measured_offered) in
  let pooled =
    Array.of_list
      (List.concat_map (fun (s : stats) -> Array.to_list s.batch_blocking)
         stats)
  in
  let blocking =
    if Array.length pooled >= 2 then Batch_means.of_means ~count pooled
    else begin
      (* no batch records (horizon stops or truncated runs): fall back
         to replication-level blocking means *)
      let rep_means =
        Array.of_list (List.map (fun (s : stats) -> s.blocking) stats)
      in
      if Array.length rep_means >= 2 then
        Batch_means.of_means ~count rep_means
      else begin
        let mean = rep_means.(0) in
        { Batch_means.mean; ci_low = mean; ci_high = mean; batches = 1;
          count }
      end
    end
  in
  {
    replications = reps;
    blocking;
    occupancy = sumf (fun s -> s.occupancy) /. float_of_int reps;
    carried = sumf (fun s -> s.carried) /. float_of_int reps;
    t_offered = sum (fun s -> s.offered);
    t_served = sum (fun s -> s.served);
    t_blocked = sum (fun s -> s.blocked);
    t_blocked_full = sum (fun s -> s.blocked_full);
    t_dropped = sum (fun s -> s.dropped);
    t_rerouted = sum (fun s -> s.rerouted);
    t_failures = sum (fun s -> s.failures);
    t_repairs = sum (fun s -> s.repairs);
    t_events = sum (fun s -> s.events);
    t_sim_time = sumf (fun s -> s.sim_time);
    catastrophes = sum (fun s -> if s.catastrophe_at <> None then 1 else 0);
  }
