(* The PRE-SCALE-LAYER traffic engine, kept verbatim as a same-commit
   baseline: every failure/repair event pays the full O(n + m)
   union-find rebuild for the Lemma-7 check, call records are heap
   structures (lists, hashtable) and the event queue is monolithic.
   Two consumers depend on this copy staying byte-for-byte faithful to
   the engine it was forked from:

   - the qcheck bit-identity pin ([Traffic.estimate] with [shards = 1]
     must reproduce this engine's summaries exactly, at every [jobs]);
   - the [traffic-benes-1M-baseline] bench row, which prices the
     incremental-connectivity + allocation-free rewrite against the
     non-incremental original on the same commit.

   Do not "improve" this module; that would erase the baseline. *)

module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Union_find = Ftcsn_util.Union_find
module Greedy = Ftcsn_routing.Greedy
module Backtrack = Ftcsn_routing.Backtrack
module Rng = Ftcsn_prng.Rng
module Trials = Ftcsn_sim.Trials
module Metrics = Ftcsn_obs.Metrics
module Counter = Ftcsn_obs.Counter
open Traffic
(* [open Traffic] supplies the shared public types (config, stats,
   summary, stop, policy); the engine internals below are this module's
   own frozen copies. *)

(* idle-terminal index pool: [items] is always a permutation of [0, n)
   whose prefix [0, size) is the idle set, with [pos] the inverse map —
   O(1) remove/add and an exactly-uniform draw over the idle set *)
type pool = { items : int array; pos : int array; mutable size : int }

let pool_create n =
  { items = Array.init n Fun.id; pos = Array.init n Fun.id; size = n }

let pool_remove p x =
  let i = p.pos.(x) in
  let last = p.size - 1 in
  let y = p.items.(last) in
  p.items.(i) <- y;
  p.pos.(y) <- i;
  p.items.(last) <- x;
  p.pos.(x) <- last;
  p.size <- last

let pool_add p x =
  let i = p.pos.(x) in
  let y = p.items.(p.size) in
  p.items.(p.size) <- x;
  p.pos.(x) <- p.size;
  p.items.(i) <- y;
  p.pos.(y) <- i;
  p.size <- p.size + 1

let pool_draw rng p = p.items.(Rng.int rng p.size)

type call = {
  id : int;
  input : int;  (* input index, not vertex id *)
  output : int;
  mutable path : int list;
  mutable edges : int list;
}

type ev = Arrival | Hangup of int | Fail of int | Repair of int

type state = {
  net : Network.t;
  cfg : config;
  rng : Rng.t;
  heap : ev Heap.t;
  router : Greedy.t;
  fstate : Fault.state array;
  faulty_deg : int array;  (* failed edges incident to each vertex *)
  is_terminal : bool array;
  owner : int array;  (* vertex -> id of the call whose path holds it *)
  calls : (int, call) Hashtbl.t;
  mutable next_id : int;
  idle_in : pool;
  idle_out : pool;
  shorts : Union_find.t;
  mutable offered : int;
  mutable served : int;
  mutable blocked : int;
  mutable blocked_full : int;
  mutable dropped : int;
  mutable rerouted : int;
  mutable rearranged : int;
  mutable failures : int;
  mutable repairs : int;
  mutable events : int;
  mutable max_concurrent : int;
  mutable now : float;
  mutable area : float;  (* ∫ live-call count dt since [window_start] *)
  mutable window_start : float;
  mutable measuring : bool;
  mutable w_offered : int;
  mutable w_blocked : int;
  mutable holding_sum : float;
  bm : Batch_means.t option;
  mutable degraded_at : float option;
  mutable catastrophe_at : float option;
  mutable stopped : bool;
}

let is_normal s = Fault.state_equal s Fault.Normal

let init ~rng ~cfg net =
  let g = net.Network.graph in
  let n = Digraph.vertex_count g and m = Digraph.edge_count g in
  let is_terminal = Array.make n false in
  List.iter (fun v -> is_terminal.(v) <- true) (Network.terminals net);
  let fstate = Array.make m Fault.Normal in
  let faulty_deg = Array.make n 0 in
  (* terminals stay routable with faulty incident switches (the switches
     themselves are unusable via edge_ok); internal vertices are stripped
     once faulty, mirroring Fault_strip and Ft_session *)
  let allowed v = is_terminal.(v) || faulty_deg.(v) = 0 in
  let edge_ok e = is_normal fstate.(e) in
  {
    net;
    cfg;
    rng;
    heap = Heap.create ~dummy:Arrival ();
    router = Greedy.create ~allowed ~edge_ok net;
    fstate;
    faulty_deg;
    is_terminal;
    owner = Array.make n (-1);
    calls = Hashtbl.create 64;
    next_id = 0;
    idle_in = pool_create (Network.n_inputs net);
    idle_out = pool_create (Network.n_outputs net);
    shorts = Union_find.create n;
    offered = 0;
    served = 0;
    blocked = 0;
    blocked_full = 0;
    dropped = 0;
    rerouted = 0;
    rearranged = 0;
    failures = 0;
    repairs = 0;
    events = 0;
    max_concurrent = 0;
    now = 0.0;
    area = 0.0;
    window_start = 0.0;
    measuring = (match cfg.stop with Horizon _ -> true | Calls _ -> false);
    w_offered = 0;
    w_blocked = 0;
    holding_sum = 0.0;
    bm =
      (match cfg.stop with
      | Calls { measured; _ } ->
          Some (Batch_means.create ~batches:cfg.batches ~total:measured)
      | Horizon _ -> None);
    degraded_at = None;
    catastrophe_at = None;
    stopped = false;
  }

let advance st t =
  if t > st.now then begin
    st.area <-
      st.area +. (float_of_int (Hashtbl.length st.calls) *. (t -. st.now));
    st.now <- t
  end

let schedule st dt ev = Heap.push st.heap ~time:(st.now +. dt) ev

(* the BFS only crossed normal switches, so every hop has a normal edge;
   with parallel edges the lowest normal edge id is the switch the call
   occupies (a deterministic choice) *)
let edges_of_path st path =
  let g = st.net.Network.graph in
  let rec go u = function
    | [] -> []
    | v :: rest ->
        let e = ref (-1) in
        Digraph.iter_out g u (fun ~dst ~eid ->
            if !e < 0 && dst = v && is_normal st.fstate.(eid) then e := eid);
        if !e < 0 then invalid_arg "Traffic: path hop has no normal switch";
        !e :: go v rest
  in
  match path with [] -> [] | u :: rest -> go u rest

let note_concurrency st =
  let live = Hashtbl.length st.calls in
  if live > st.max_concurrent then st.max_concurrent <- live

(* adopt a path already marked busy in the router *)
let adopt st c path =
  c.path <- path;
  c.edges <- edges_of_path st path;
  List.iter (fun v -> st.owner.(v) <- c.id) path;
  pool_remove st.idle_in c.input;
  pool_remove st.idle_out c.output;
  Hashtbl.replace st.calls c.id c;
  note_concurrency st

let teardown st c =
  Greedy.release st.router c.path;
  List.iter (fun v -> st.owner.(v) <- -1) c.path;
  pool_add st.idle_in c.input;
  pool_add st.idle_out c.output;
  Hashtbl.remove st.calls c.id

let fresh_call st ~input ~output =
  let c = { id = st.next_id; input; output; path = []; edges = [] } in
  st.next_id <- st.next_id + 1;
  c

(* a new call goes live: draw its holding time, schedule its hangup *)
let place_new st ~i ~o path =
  let c = fresh_call st ~input:i ~output:o in
  adopt st c path;
  let h = Dist.holding_time st.rng st.cfg.holding in
  schedule st h (Hangup c.id);
  if st.measuring then st.holding_sum <- st.holding_sum +. h

(* identity calls input i -> output i that never hang up — the
   saturating workload of the time-to-degradation experiments *)
let saturate st =
  let k = min (Network.n_inputs st.net) (Network.n_outputs st.net) in
  for i = 0 to k - 1 do
    let input = st.net.Network.inputs.(i)
    and output = st.net.Network.outputs.(i) in
    match Greedy.route st.router ~input ~output with
    | Some path ->
        let c = fresh_call st ~input:i ~output:i in
        adopt st c path;
        st.served <- st.served + 1
    | None -> st.blocked <- st.blocked + 1
  done

(* rearrangeable fallback: re-lay every live call plus the new request
   from scratch over the fault-masked graph; on success the whole layout
   migrates at once *)
let try_rearrange st ~budget ~i ~o =
  let live =
    Hashtbl.fold (fun _ c acc -> c :: acc) st.calls []
    |> List.sort (fun a b -> Int.compare a.id b.id)
  in
  let inputs = st.net.Network.inputs and outputs = st.net.Network.outputs in
  let reqs =
    List.map (fun c -> (inputs.(c.input), outputs.(c.output))) live
    @ [ (inputs.(i), outputs.(o)) ]
  in
  let allowed v = st.is_terminal.(v) || st.faulty_deg.(v) = 0 in
  let edge_ok e = is_normal st.fstate.(e) in
  match Backtrack.route_all ~budget ~allowed ~edge_ok st.net reqs with
  | Backtrack.Unroutable | Backtrack.Budget_exceeded -> false
  | Backtrack.Routed paths ->
      List.iter
        (fun c ->
          Greedy.release st.router c.path;
          List.iter (fun v -> st.owner.(v) <- -1) c.path)
        live;
      let rec go cs ps =
        match (cs, ps) with
        | [], [ p_new ] ->
            Greedy.occupy st.router p_new;
            place_new st ~i ~o p_new
        | c :: cs', p :: ps' ->
            Greedy.occupy st.router p;
            c.path <- p;
            c.edges <- edges_of_path st p;
            List.iter (fun v -> st.owner.(v) <- c.id) p;
            go cs' ps'
        | _ -> assert false
      in
      go live paths;
      st.rearranged <- st.rearranged + 1;
      true

let handle_arrival st =
  st.offered <- st.offered + 1;
  (match st.cfg.stop with
  | Calls { warmup; _ } when (not st.measuring) && st.offered > warmup ->
      (* warm-up over: the measured window starts now *)
      st.measuring <- true;
      st.window_start <- st.now;
      st.area <- 0.0
  | _ -> ());
  let blocked, full =
    if st.idle_in.size = 0 || st.idle_out.size = 0 then (true, true)
    else begin
      (* draws, in fixed order: input pick, output pick, then (on
         placement) the holding time *)
      let i = pool_draw st.rng st.idle_in in
      let o = pool_draw st.rng st.idle_out in
      let input = st.net.Network.inputs.(i)
      and output = st.net.Network.outputs.(o) in
      match Greedy.route st.router ~input ~output with
      | Some path ->
          place_new st ~i ~o path;
          (false, false)
      | None -> (
          match st.cfg.policy with
          (* the fast-router policies change path choice, not the
             accept/block verdict, so the reference treats them as
             greedy (and keeps routing with its own plain BFS) *)
          | Route_greedy | Route_staged | Route_loop -> (true, false)
          | Route_rearrange budget ->
              (not (try_rearrange st ~budget ~i ~o), false))
    end
  in
  if blocked then begin
    st.blocked <- st.blocked + 1;
    if full then st.blocked_full <- st.blocked_full + 1
  end
  else st.served <- st.served + 1;
  if st.measuring then begin
    st.w_offered <- st.w_offered + 1;
    if blocked then st.w_blocked <- st.w_blocked + 1;
    match st.bm with
    | Some bm -> Batch_means.add bm (if blocked then 1.0 else 0.0)
    | None -> ()
  end;
  if blocked && (not full) && st.cfg.stop_on_degradation then begin
    st.degraded_at <- Some st.now;
    st.stopped <- true
  end;
  (match st.cfg.stop with
  | Calls { measured; _ } when st.measuring && st.w_offered >= measured ->
      st.stopped <- true
  | _ -> ());
  if not st.stopped then
    schedule st (Dist.exponential st.rng ~rate:st.cfg.load) Arrival

let handle_hangup st id =
  match Hashtbl.find_opt st.calls id with
  | None -> ()  (* severed earlier; its hangup event is stale *)
  | Some c -> teardown st c

(* two terminals in one closed-contraction class is the Lemma 7
   catastrophe; repairs make the closed edge set non-monotone, so the
   forest is rebuilt from the currently-closed edges *)
let terminals_shorted st =
  Union_find.reset st.shorts;
  let g = st.net.Network.graph in
  Array.iteri
    (fun e s ->
      if Fault.state_equal s Fault.Closed_failure then begin
        let u, v = Digraph.edge_endpoints g e in
        Union_find.union st.shorts u v
      end)
    st.fstate;
  let seen = Hashtbl.create 16 in
  List.exists
    (fun t ->
      let c = Union_find.find st.shorts t in
      if Hashtbl.mem seen c then true
      else begin
        Hashtbl.add seen c ();
        false
      end)
    (Network.terminals st.net)

(* drop the call (if any) whose path crosses the failed switch, then
   attempt an immediate greedy reroute of the same endpoint pair *)
let sever st e ~u ~v =
  let try_drop vtx =
    let id = st.owner.(vtx) in
    if id >= 0 then
      match Hashtbl.find_opt st.calls id with
      | Some c when List.mem e c.edges ->
          st.dropped <- st.dropped + 1;
          teardown st c;
          let input = st.net.Network.inputs.(c.input)
          and output = st.net.Network.outputs.(c.output) in
          (match Greedy.route st.router ~input ~output with
          | Some path ->
              adopt st c path;
              st.rerouted <- st.rerouted + 1
          | None ->
              if st.cfg.stop_on_degradation && not st.stopped then begin
                st.degraded_at <- Some st.now;
                st.stopped <- true
              end)
      | _ -> ()
  in
  try_drop u;
  if v <> u then try_drop v

let handle_fail st e =
  st.failures <- st.failures + 1;
  (* draws, in fixed order: the open/closed coin, then the repair clock *)
  let closed = Rng.bool st.rng in
  if st.cfg.mttr < infinity then
    schedule st (Dist.exponential st.rng ~rate:(1.0 /. st.cfg.mttr)) (Repair e);
  st.fstate.(e) <-
    (if closed then Fault.Closed_failure else Fault.Open_failure);
  let u, v = Digraph.edge_endpoints st.net.Network.graph e in
  st.faulty_deg.(u) <- st.faulty_deg.(u) + 1;
  if v <> u then st.faulty_deg.(v) <- st.faulty_deg.(v) + 1;
  if closed && terminals_shorted st then begin
    st.catastrophe_at <- Some st.now;
    if st.cfg.stop_on_degradation && st.degraded_at = None then
      st.degraded_at <- Some st.now;
    st.stopped <- true
  end
  else sever st e ~u ~v

let handle_repair st e =
  st.repairs <- st.repairs + 1;
  st.fstate.(e) <- Fault.Normal;
  let u, v = Digraph.edge_endpoints st.net.Network.graph e in
  st.faulty_deg.(u) <- st.faulty_deg.(u) - 1;
  if v <> u then st.faulty_deg.(v) <- st.faulty_deg.(v) - 1;
  (* back in service with a fresh failure clock *)
  schedule st (Dist.exponential st.rng ~rate:(1.0 /. st.cfg.mtbf)) (Fail e)

let finish st =
  let window = st.now -. st.window_start in
  let occupancy = if window > 0.0 then st.area /. window else 0.0 in
  let carried = if window > 0.0 then st.holding_sum /. window else 0.0 in
  let blocking =
    if st.w_offered > 0 then
      float_of_int st.w_blocked /. float_of_int st.w_offered
    else 0.0
  in
  let batch_blocking =
    match st.bm with Some bm -> Batch_means.means bm | None -> [||]
  in
  let c name v = Counter.add (Metrics.counter Metrics.default name) v in
  c "traffic.runs" 1;
  c "traffic.events" st.events;
  c "traffic.offered" st.offered;
  c "traffic.served" st.served;
  c "traffic.blocked" st.blocked;
  c "traffic.blocked_full" st.blocked_full;
  c "traffic.dropped" st.dropped;
  c "traffic.rerouted" st.rerouted;
  c "traffic.failures" st.failures;
  c "traffic.repairs" st.repairs;
  if st.catastrophe_at <> None then c "traffic.catastrophes" 1;
  {
    sim_time = st.now;
    events = st.events;
    offered = st.offered;
    served = st.served;
    blocked = st.blocked;
    blocked_full = st.blocked_full;
    dropped = st.dropped;
    rerouted = st.rerouted;
    rearranged = st.rearranged;
    failures = st.failures;
    repairs = st.repairs;
    max_concurrent = st.max_concurrent;
    occupancy;
    carried;
    measured_offered = st.w_offered;
    blocking;
    batch_blocking;
    degraded_at = st.degraded_at;
    catastrophe_at = st.catastrophe_at;
  }

let run ~rng ~config:cfg net =
  if Network.n_inputs net = 0 || Network.n_outputs net = 0 then
    invalid_arg "Traffic.run: network has no terminals";
  let st = init ~rng ~cfg net in
  (* deterministic bootstrap: saturation placements (no draws), one
     failure clock per switch in ascending edge order, then the first
     arrival *)
  if cfg.saturate then saturate st;
  if cfg.mtbf < infinity then begin
    let m = Digraph.edge_count net.Network.graph in
    for e = 0 to m - 1 do
      schedule st (Dist.exponential st.rng ~rate:(1.0 /. cfg.mtbf)) (Fail e)
    done
  end;
  if cfg.load > 0.0 then
    schedule st (Dist.exponential st.rng ~rate:cfg.load) Arrival;
  let horizon = match cfg.stop with Horizon h -> h | Calls _ -> infinity in
  let continue_ = ref true in
  while !continue_ do
    if st.stopped || Heap.is_empty st.heap then continue_ := false
    else begin
      let t = Heap.min_time st.heap in
      if t > horizon then begin
        advance st horizon;
        st.stopped <- true;
        continue_ := false
      end
      else begin
        let ev = Heap.pop st.heap in
        advance st t;
        st.events <- st.events + 1;
        match ev with
        | Arrival -> handle_arrival st
        | Hangup id -> handle_hangup st id
        | Fail e -> handle_fail st e
        | Repair e -> handle_repair st e
      end
    end
  done;
  (* a horizon run whose queue dried up still spans [0, h] *)
  (match cfg.stop with
  | Horizon h when (not st.stopped) && st.now < h -> advance st h
  | _ -> ());
  finish st

let estimate ?jobs ?trace ?(label = "traffic.estimate") ~trials ~rng
    ~config net =
  if trials < 1 then invalid_arg "Traffic.estimate: need trials >= 1";
  let acc =
    Trials.map_reduce ?jobs ?trace ~label ~trials ~rng
      ~init:(fun () -> ())
      ~create_acc:(fun () -> ref [])
      ~trial:(fun () acc sub -> acc := run ~rng:sub ~config net :: !acc)
        (* chunks combine in index order, each list reverse-ordered, so
           prepending keeps the whole accumulator reverse-ordered *)
      ~combine:(fun global chunk -> global := !chunk @ !global)
      ()
  in
  let stats = List.rev !acc in
  let reps = List.length stats in
  let sum f = List.fold_left (fun a (s : stats) -> a + f s) 0 stats in
  let sumf f = List.fold_left (fun a (s : stats) -> a +. f s) 0.0 stats in
  let count = sum (fun s -> s.measured_offered) in
  let pooled =
    Array.of_list
      (List.concat_map (fun (s : stats) -> Array.to_list s.batch_blocking)
         stats)
  in
  let blocking =
    if Array.length pooled >= 2 then Batch_means.of_means ~count pooled
    else begin
      (* no batch records (horizon stops or truncated runs): fall back
         to replication-level blocking means *)
      let rep_means =
        Array.of_list (List.map (fun (s : stats) -> s.blocking) stats)
      in
      if Array.length rep_means >= 2 then
        Batch_means.of_means ~count rep_means
      else begin
        let mean = rep_means.(0) in
        { Batch_means.mean; ci_low = mean; ci_high = mean; batches = 1;
          count }
      end
    end
  in
  {
    replications = reps;
    blocking;
    occupancy = sumf (fun s -> s.occupancy) /. float_of_int reps;
    carried = sumf (fun s -> s.carried) /. float_of_int reps;
    t_offered = sum (fun s -> s.offered);
    t_served = sum (fun s -> s.served);
    t_blocked = sum (fun s -> s.blocked);
    t_blocked_full = sum (fun s -> s.blocked_full);
    t_dropped = sum (fun s -> s.dropped);
    t_rerouted = sum (fun s -> s.rerouted);
    t_failures = sum (fun s -> s.failures);
    t_repairs = sum (fun s -> s.repairs);
    t_events = sum (fun s -> s.events);
    t_sim_time = sumf (fun s -> s.sim_time);
    catastrophes = sum (fun s -> if s.catastrophe_at <> None then 1 else 0);
  }
