(** Stochastic primitives of the traffic engine.

    All draws come from an explicit {!Ftcsn_prng.Rng.t}, one uniform per
    variate, so event streams are reproducible from their seeds and
    bit-identical under the {!Ftcsn_sim.Trials} fan-out.

    Holding-time distributions are normalised to {e unit mean}: the
    engine's time unit is the mean call duration, so the offered load in
    Erlangs equals the arrival rate numerically.  [Pareto alpha] models
    the heavy-tailed sessions of real traffic (file transfers, video);
    [alpha <= 1] has no mean and is rejected. *)

val exponential : Ftcsn_prng.Rng.t -> rate:float -> float
(** Exponential variate with the given rate (mean [1/rate]), by
    inversion: one uniform per draw.  Requires [rate > 0]. *)

val pareto : Ftcsn_prng.Rng.t -> alpha:float -> scale:float -> float
(** Pareto(Type I) variate on [[scale, ∞)] with shape [alpha], by
    inversion: one uniform per draw.  Requires [alpha > 0], [scale > 0]. *)

type holding =
  | Exponential  (** memoryless, mean 1 — the M/M/· classical model *)
  | Pareto of float
      (** heavy-tailed with shape [alpha > 1], rescaled to mean 1
          (scale [(alpha-1)/alpha]); variance is infinite for
          [alpha <= 2] *)

val holding_time : Ftcsn_prng.Rng.t -> holding -> float
(** One unit-mean holding-time draw (exactly one uniform consumed). *)

val holding_of_string : string -> (holding, string) result
(** Parse the CLI syntax ["exp"] | ["pareto:ALPHA"] (with [ALPHA > 1]). *)

val pp_holding : Format.formatter -> holding -> unit
(** Renders back the CLI syntax. *)
