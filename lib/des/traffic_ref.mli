(** Frozen pre-scale-layer traffic engine — oracle and baseline.

    This is the continuous-time DES traffic engine exactly as it stood
    before the million-switch scale layer landed: one monolithic event
    heap, heap-allocated call records (lists and a hashtable), and a
    full O(n + m) union-find sweep for every Lemma-7 catastrophe check.
    It shares {!Traffic}'s public [config] / [stats] / [summary] types
    (the [shards] / [shard_jobs] fields of [config] are ignored — this
    engine is always monolithic) and serves two purposes:

    - {b bit-identity oracle}: the test suite pins
      [Traffic.estimate ~config:{... shards = 1}] against
      {!estimate} — structurally equal summaries across seeds, [jobs]
      and tracing — so the allocation-free rewrite provably changed
      nothing observable in single-shard mode;
    - {b same-commit bench baseline}: the [traffic-benes-1M-baseline]
      row in [BENCH_timings.json] runs this engine on the same network
      and commit as the incremental engine, so the reported speedup is
      an apples-to-apples events/s ratio, not a cross-version guess.

    Do not extend or optimise this module — its value is that it does
    not move. *)

val run :
  rng:Ftcsn_prng.Rng.t -> config:Traffic.config -> Ftcsn_networks.Network.t
  -> Traffic.stats
(** One replication under the pre-PR engine.  Same determinism contract
    as the original [Traffic.run]: all stochastic draws come from [rng]
    in a fixed documented order, so equal seeds give equal stats. *)

val estimate :
  ?jobs:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  config:Traffic.config ->
  Ftcsn_networks.Network.t ->
  Traffic.summary
(** Multi-replication estimate under the pre-PR engine ([label]
    defaults to ["traffic.estimate"], matching the original).  Trial
    [i] runs on [Rng.substream rng i]; results are bit-identical at
    every [jobs] and with tracing on or off. *)
