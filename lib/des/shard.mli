(** Stage-level edge sharding for the scaled traffic engine.

    A layered switching network (every registry family except the
    explicitly cyclic ones) admits a natural partition of its {e edges}
    by topological level: the level of an edge is the longest-path
    depth of its source vertex.  Open-switch failure and repair clocks
    on edges of disjoint level blocks never interact except through
    live calls, so the sharded engine ({!Traffic} with [shards > 1])
    gives each contiguous block of levels its own event heap, RNG
    stream and scratch buffers, and only escalates an event to the
    global control heap when it can touch shared state.

    Shard ids are bytes: at most 255 shards, stored as one byte per
    edge in a [Bytes.t] of length [edge_count]. *)

val regions : Ftcsn_networks.Network.t -> int
(** Number of shardable regions: the count of nonempty edge levels of
    the (acyclic) network, or [1] for a cyclic network.  [partition]
    accepts any [shards] between [1] and this value; [ftnet traffic]
    refuses larger [--shards] up front with this number in the
    message. *)

val max_shards : int
(** 255 — shard ids are stored one byte per edge. *)

val partition : Ftcsn_networks.Network.t -> shards:int -> Bytes.t
(** [partition net ~shards] maps every edge id to a shard id in
    [0 .. shards-1] ([Bytes.get] the edge id; see {!shard_of}).  Shards
    own contiguous level blocks, balanced by edge count, and every
    shard owns at least one nonempty level.  Deterministic: depends
    only on the graph structure.
    @raise Invalid_argument if [shards < 1], [shards > max_shards], or
    [shards > regions net]. *)

val shard_of : Bytes.t -> int -> int
(** [shard_of b e] is the shard id of edge [e] under partition [b]. *)
