module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Traverse = Ftcsn_graph.Traverse

(* Vertex levels: longest directed path (in edges) from any source
   (in-degree-0 vertex) — computed by one relaxation sweep in
   topological order.  An edge inherits the level of its source vertex,
   so edges of one level form an antichain-of-stages slice: two edges in
   the same slice never lie on a common directed path "at the same
   time", which is what lets one shard own a contiguous block of levels
   and drain its open-failure clocks independently. *)
let vertex_levels g =
  match Traverse.topological_order g with
  | None -> None
  | Some ord ->
      let n = Digraph.vertex_count g in
      let level = Array.make n 0 in
      Array.iter
        (fun u ->
          let lu = level.(u) in
          Digraph.iter_out g u (fun ~dst ~eid:_ ->
              if level.(dst) < lu + 1 then level.(dst) <- lu + 1))
        ord;
      Some level

(* Per-level edge counts, or None for a cyclic graph.  Level k's count
   is the number of edges whose source vertex sits at level k. *)
let level_edge_counts net =
  let g = net.Network.graph in
  match vertex_levels g with
  | None -> None
  | Some level ->
      let m = Digraph.edge_count g in
      let maxl = ref 0 in
      for e = 0 to m - 1 do
        let l = level.(Digraph.edge_src g e) in
        if l > !maxl then maxl := l
      done;
      let counts = Array.make (!maxl + 1) 0 in
      for e = 0 to m - 1 do
        let l = level.(Digraph.edge_src g e) in
        counts.(l) <- counts.(l) + 1
      done;
      Some (level, counts)

let regions net =
  match level_edge_counts net with
  | None -> 1 (* cyclic: no layer structure to exploit, one region *)
  | Some (_, counts) ->
      let r = Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 counts in
      max r 1

let max_shards = 255 (* shard ids live in a Bytes.t, one byte per edge *)

let partition net ~shards =
  if shards < 1 then invalid_arg "Shard.partition: need shards >= 1";
  if shards > max_shards then
    invalid_arg "Shard.partition: at most 255 shards";
  let g = net.Network.graph in
  let m = Digraph.edge_count g in
  match level_edge_counts net with
  | None ->
      if shards > 1 then
        invalid_arg "Shard.partition: cyclic network has a single region";
      Bytes.make m '\000'
  | Some (level, counts) ->
      let nonempty =
        Array.fold_left (fun a c -> if c > 0 then a + 1 else a) 0 counts
      in
      if shards > max nonempty 1 then
        invalid_arg
          (Printf.sprintf
             "Shard.partition: %d shards exceed the %d shardable regions"
             shards (max nonempty 1));
      (* Assign contiguous level blocks to shards, balancing cumulative
         edge count, while reserving one nonempty level for every shard
         still unassigned. *)
      let shard_of_level = Array.make (Array.length counts) 0 in
      let s = ref 0 and acc = ref 0 and left = ref nonempty in
      Array.iteri
        (fun l c ->
          if c > 0 then begin
            (* close the current shard before [l] if it is already at
               or past its proportional share, or if the remaining
               nonempty levels are only just enough for the remaining
               shards *)
            if
              !s < shards - 1
              && !acc > 0
              && (!acc * shards >= (!s + 1) * m || !left <= shards - 1 - !s)
            then incr s;
            decr left
          end;
          shard_of_level.(l) <- !s;
          if c > 0 then acc := !acc + c)
        counts;
      let b = Bytes.make m '\000' in
      for e = 0 to m - 1 do
        let sh = shard_of_level.(level.(Digraph.edge_src g e)) in
        Bytes.unsafe_set b e (Char.unsafe_chr sh)
      done;
      b

let shard_of b e = Char.code (Bytes.unsafe_get b e)
