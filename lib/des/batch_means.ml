type t = {
  batches : int;
  batch_size : int;
  sums : float array;
  counts : int array;
  mutable seen : int;
}

let create ~batches ~total =
  if batches < 2 then invalid_arg "Batch_means.create: need batches >= 2";
  if total < batches then
    invalid_arg "Batch_means.create: need total >= batches";
  {
    batches;
    batch_size = total / batches;
    sums = Array.make batches 0.0;
    counts = Array.make batches 0;
    seen = 0;
  }

let add t x =
  let b = min (t.seen / t.batch_size) (t.batches - 1) in
  t.sums.(b) <- t.sums.(b) +. x;
  t.counts.(b) <- t.counts.(b) + 1;
  t.seen <- t.seen + 1

let count t = t.seen

let completed t =
  let rec go b = if b < t.batches && t.counts.(b) >= t.batch_size then go (b + 1) else b in
  go 0

let batch_mean t b =
  if b < 0 || b >= completed t then invalid_arg "Batch_means.batch_mean";
  t.sums.(b) /. float_of_int t.counts.(b)

let means t = Array.init (completed t) (fun b -> batch_mean t b)

type summary = {
  mean : float;
  ci_low : float;
  ci_high : float;
  batches : int;
  count : int;
}

(* two-sided 95% Student-t critical values; exact through 30 df, stepped
   beyond, normal limit as the tail *)
let t_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t_quantile ~df =
  if df < 1 then invalid_arg "Batch_means.t_quantile: df must be >= 1";
  if df <= 30 then t_table.(df - 1)
  else if df <= 40 then 2.021
  else if df <= 60 then 2.000
  else if df <= 120 then 1.980
  else 1.960

let of_means ?count ms =
  let b = Array.length ms in
  if b < 2 then invalid_arg "Batch_means.of_means: need at least two batches";
  let mean = Array.fold_left ( +. ) 0.0 ms /. float_of_int b in
  let ss =
    Array.fold_left (fun acc m -> acc +. ((m -. mean) ** 2.0)) 0.0 ms
  in
  let var = ss /. float_of_int (b - 1) in
  let half = t_quantile ~df:(b - 1) *. sqrt (var /. float_of_int b) in
  {
    mean;
    ci_low = mean -. half;
    ci_high = mean +. half;
    batches = b;
    count = (match count with Some c -> c | None -> b);
  }

let summary t = of_means ~count:t.seen (means t)

let pp fmt s =
  Format.fprintf fmt "%.4f [%.4f, %.4f] (%d batches / %d obs)" s.mean
    s.ci_low s.ci_high s.batches s.count
