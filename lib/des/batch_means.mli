(** Steady-state interval estimation by the method of batch means.

    A DES run produces one long {e correlated} sequence of observations
    (consecutive calls share the network state), so the i.i.d. Wilson
    interval of {!Ftcsn_sim.Trials} does not apply.  The standard remedy
    (Law & Kelton): discard a warm-up prefix, split the remaining
    observations into [b] equal batches, and treat the batch means as
    approximately independent normal samples — a Student-t interval over
    them is then asymptotically valid despite the in-batch correlation.

    The accumulator is streaming and allocation-free after creation, so
    it can sit inside the engine's per-call hot path. *)

type t

val create : batches:int -> total:int -> t
(** Accumulator for [total] observations split into [batches] equal
    batches (the remainder, [total mod batches], spills into the last).
    Requires [batches >= 2] and [total >= batches]. *)

val add : t -> float -> unit
(** Append one observation (e.g. a 0/1 blocking indicator).
    Observations beyond [total] extend the last batch. *)

val count : t -> int
(** Observations seen so far. *)

val batch_mean : t -> int -> float
(** Mean of a completed batch.  @raise Invalid_argument out of range. *)

val means : t -> float array
(** Means of the batches completed so far (a fresh array). *)

type summary = {
  mean : float;  (** grand mean of the batch means *)
  ci_low : float;  (** Student-t 95% interval, lower end *)
  ci_high : float;
  batches : int;  (** batch means the interval is built on *)
  count : int;  (** observations behind those batches *)
}

val summary : t -> summary
(** Interval over the completed batches.
    @raise Invalid_argument with fewer than two completed batches. *)

val of_means : ?count:int -> float array -> summary
(** Student-t 95% interval treating each array element as one batch mean —
    the pooling hook for multi-replication estimates (each replication
    contributes its batch means to one pooled sample).  [count] reports
    the underlying observation count in the summary (defaults to the
    array length).  @raise Invalid_argument on fewer than two values. *)

val t_quantile : df:int -> float
(** Two-sided 95% Student-t critical value (the 0.975 quantile) for the
    given degrees of freedom; tabulated through df = 30, then stepped at
    40/60/120, then the normal limit 1.96. *)

val pp : Format.formatter -> summary -> unit
(** Render as ["mean [lo, hi] (b batches / n obs)"]. *)
