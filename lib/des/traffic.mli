(** Continuous-time circuit-switching traffic: the operational meaning of
    the paper's claims, as a discrete-event simulation.

    A nonblocking network "keeps serving an online sequence of call
    requests" (§2); an (ε, δ)-network keeps doing so while switches
    fail.  This engine makes those statements quantitative: calls arrive
    as a Poisson process (offered load in Erlangs), hold for unit-mean
    exponential or Pareto times, and are routed through the network by
    the maskable {!Ftcsn_routing.Greedy} router ([~allowed]/[~edge_ok])
    — optionally falling back to a {!Ftcsn_routing.Backtrack}
    rearrangement when the greedy probe blocks.  Meanwhile each switch
    carries exponential failure and repair clocks; a failure is open or
    closed with equal probability (the paper's ε₁/ε₂ split), severs the
    call using that switch (the engine immediately attempts a greedy
    reroute), and a closed failure that contracts two terminals — the
    Lemma 7 catastrophe — ends the run.

    {2 Determinism contract}

    Events execute in [(time, push-sequence)] order ({!Heap}), and every
    PRNG draw happens while handling some event, in a fixed documented
    order (arrival: endpoint picks, holding time, next interarrival;
    failure: open/closed coin, repair time).  A replication's trace is
    therefore a pure function of its substream, and {!estimate}
    fan-outs on {!Ftcsn_sim.Trials} are bit-identical at every [jobs]
    and with tracing on or off.

    {2 Steady-state statistics}

    Blocking probability is estimated on the measured window (after a
    warm-up prefix of offered calls) with batch-means Student-t
    intervals ({!Batch_means}); the engine also integrates the number of
    concurrent calls over the window so estimates can be cross-checked
    against Little's law (time-average occupancy [L] versus carried
    load [λ·W̄]).

    {2 The scale layer: sharded execution}

    With [shards > 1] the engine switches to event-sharded execution
    for million-switch networks: {!Shard.partition} splits the edges
    into contiguous topological-level blocks, each with its own event
    heap, PRNG substream and scratch buffers.  Open-switch failures and
    repairs — the overwhelming bulk of events at scale, and the only
    ones that never touch global connectivity — stay shard-local; calls
    (arrivals, hangups) and closed failures stay on a global control
    heap.  Each step drains every shard up to the next control event (a
    conservative safe window), merges the buffered cross-shard effects
    deterministically, and executes one control event.  [shard_jobs]
    leases that many domains from the {!Ftcsn_sim.Trials} pool to run
    the drains concurrently {e within} one replication.

    The sharded mode is deterministic — a pure function of the seed,
    identical at every [shard_jobs] and [jobs] and with tracing on or
    off — but it is a {e different documented discretization} from
    [shards = 1], not bit-identical to it: the open/closed coin is
    pre-drawn at scheduling time, per-edge clocks come from the owning
    shard's substream, and a call severed by an open failure inside a
    window is rerouted at window commit over the fault mask as of the
    window end (a bounded relaxation — one control-event interarrival —
    of the instantaneous-reroute rule).  No sever is ever missed: calls
    placed or rerouted at commit route over the fully-committed mask,
    so they cannot cross an edge that failed during the window.

    With [shards = 1] (the default) the engine is bit-identical to the
    pre-scale-layer implementation, event for event and draw for draw
    — {!Traffic_ref} keeps that engine frozen and the test suite pins
    the equivalence. *)

type stop =
  | Horizon of float
      (** run until simulated time [t] (no blocking interval) *)
  | Calls of { warmup : int; measured : int }
      (** discard the first [warmup] offered calls, then measure the
          next [measured] and stop; requires an arrival process
          ([load > 0]) *)

type policy =
  | Route_greedy  (** strictly-nonblocking operation: greedy BFS only *)
  | Route_rearrange of int
      (** rearrangeably-nonblocking operation: when the greedy probe
          blocks, re-lay {e all} live calls plus the new request with
          {!Ftcsn_routing.Backtrack.route_all} under the given search
          budget, migrating every call on success *)
  | Route_staged
      (** greedy operation on {!Ftcsn_routing.Staged_route}'s
          level-bounded bidirectional BFS — O(depth × frontier) per
          request on strictly staged families, plain BFS elsewhere.
          Accept/block decisions (hence blocking estimates) match
          [Route_greedy]; the chosen equal-length paths may differ, so
          fault-time sever selection — and with it individual sample
          paths — is not bit-identical to the greedy run *)
  | Route_loop
      (** greedy operation on {!Ftcsn_routing.Loop_route}'s Beneš
          block-tree descent, falling back to [Route_staged] search
          off the Beneš family or inside heavily faulted blocks; same
          accept/block equivalence as [Route_staged] *)

type config = private {
  load : float;  (** offered Erlangs (= arrival rate; holding mean is 1) *)
  holding : Dist.holding;
  mtbf : float;  (** per-switch mean time between failures; [infinity] = none *)
  mttr : float;  (** per-switch mean time to repair; [infinity] = permanent *)
  stop : stop;
  batches : int;  (** batch-means batches over the measured window *)
  policy : policy;
  saturate : bool;
      (** pre-place identity calls (input i → output i) at t = 0 that
          never hang up — the saturating workload of the
          time-to-degradation experiments *)
  stop_on_degradation : bool;
      (** halt at the first service failure: a request between idle
          terminals that could not be routed, a severed call that could
          not be rerouted, or a catastrophe (system-full losses are a
          capacity limit, not degradation) *)
  shards : int;
      (** event shards (default 1 = the monolithic engine); must not
          exceed {!Shard.regions} of the simulated network *)
  shard_jobs : int;
      (** domains leased from the {!Ftcsn_sim.Trials} pool to drain
          shards concurrently within one replication (default 1;
          results are identical at every value) *)
}

val config :
  ?load:float ->
  ?holding:Dist.holding ->
  ?mtbf:float ->
  ?mttr:float ->
  ?stop:stop ->
  ?batches:int ->
  ?policy:policy ->
  ?saturate:bool ->
  ?stop_on_degradation:bool ->
  ?shards:int ->
  ?shard_jobs:int ->
  unit ->
  config
(** Validated constructor (defaults: load 1.0 Erlang, exponential
    holding, no failures, mttr 10, [Calls {warmup = 500; measured =
    5000}], 10 batches, greedy policy, 1 shard).
    @raise Invalid_argument on out-of-range values, e.g. [load < 0],
    [mtbf <= 0], [batches < 2], a [Calls] stop with [load = 0], a
    non-finite horizon, or [shards < 1].  ([shards] against the
    network's region count is checked by {!run}, which knows the
    network.) *)

val router_name : config -> Ftcsn_networks.Network.t -> string
(** Which deterministic router a {!run} with this config on this network
    would engage after fallback resolution: ["bfs"], ["staged"] or
    ["loop"] — e.g. [Route_loop] resolves to ["staged"] on a non-Beneš
    staged family.  Builds (and discards) a router to ask it, so this
    costs one engine construction — fine for reporting, not for a hot
    loop. *)

type stats = {
  sim_time : float;  (** simulated time at the end of the run *)
  events : int;  (** events executed *)
  offered : int;  (** arrivals (excluding saturation pre-placement) *)
  served : int;  (** calls successfully placed on arrival *)
  blocked : int;
      (** arrivals lost for any reason — no idle terminals left, or no
          fault-free idle path between the chosen pair.  This is the
          loss-system count Erlang-B predicts. *)
  blocked_full : int;
      (** the subset of [blocked] lost because every input (or output)
          was already in a call — a capacity limit, not a routing
          failure.  [blocked - blocked_full] is the paper's nonblocking
          violation count: requests between {e idle} terminals that
          could not be served. *)
  dropped : int;  (** live calls severed by a switch failure *)
  rerouted : int;  (** severed calls immediately re-placed *)
  rearranged : int;  (** blocked arrivals saved by a backtrack re-lay *)
  failures : int;
  repairs : int;
  max_concurrent : int;
  occupancy : float;
      (** time-average concurrent calls over the measured window
          (whole run for a {!Horizon} stop) — Little's law [L] *)
  carried : float;
      (** carried load predicted by Little's law: the summed holding
          times of calls placed in the window divided by its length
          ([λ·W̄]); compare with [occupancy] *)
  measured_offered : int;
      (** offered calls inside the measured window (all of them for a
          {!Horizon} stop) *)
  blocking : float;  (** blocked / offered over the measured window *)
  batch_blocking : float array;
      (** per-batch blocking means ([[||]] for a {!Horizon} stop) *)
  degraded_at : float option;
      (** first service failure, when [stop_on_degradation] *)
  catastrophe_at : float option;  (** Lemma 7 terminal contraction *)
}

val run : rng:Ftcsn_prng.Rng.t -> config:config -> Ftcsn_networks.Network.t -> stats
(** One replication.  All draws come from [rng] in event order. *)

type summary = {
  replications : int;
  blocking : Batch_means.summary;
      (** batch means pooled across replications (replication-level
          means when no batches were recorded) *)
  occupancy : float;  (** mean over replications *)
  carried : float;
  t_offered : int;  (** totals over all replications *)
  t_served : int;
  t_blocked : int;
  t_blocked_full : int;
  t_dropped : int;
  t_rerouted : int;
  t_failures : int;
  t_repairs : int;
  t_events : int;
  t_sim_time : float;
  catastrophes : int;  (** replications that ended in a catastrophe *)
}

val estimate :
  ?jobs:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  ?label:string ->
  trials:int ->
  rng:Ftcsn_prng.Rng.t ->
  config:config ->
  Ftcsn_networks.Network.t ->
  summary
(** [trials] independent replications on the {!Ftcsn_sim.Trials} engine
    (one substream each, default label ["traffic.estimate"]) — the
    result is bit-identical at every [jobs] and with tracing on or off.
    Aggregate event counts accumulate in [Ftcsn_obs.Metrics.default]
    under [traffic.*]. *)
