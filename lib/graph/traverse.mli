(** Graph traversals: BFS distances (directed and undirected), DFS,
    topological order, reachability.

    The paper's lower bound (§5) measures distances "ignoring the direction
    of each edge"; {!bfs_undirected} implements exactly that metric, while
    {!bfs_directed} serves routing and depth computation.

    Every traversal takes an optional [edge_ok : eid -> bool] mask that
    hides edges from the walk without rebuilding the graph.  Because CSR
    adjacency lists keep edges in ascending edge-id order, traversing the
    original graph under a mask visits vertices in exactly the order a
    rebuilt {!Digraph.subgraph_by_edges} would — masked traversals are
    bit-identical to their rebuild-based equivalents.  The [_into]
    variants additionally take caller-owned scratch arrays so the
    Monte-Carlo hot path performs no per-trial allocation. *)

val bfs_directed :
  ?allowed:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  Digraph.t ->
  sources:int list ->
  int array
(** [bfs_directed g ~sources] is the array of directed hop distances from
    the source set; [-1] marks unreachable vertices.  [allowed] restricts the
    traversal to permitted vertices (sources are visited regardless);
    [edge_ok] restricts it to permitted edges. *)

val bfs_undirected :
  ?allowed:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  Digraph.t ->
  sources:int list ->
  int array
(** As {!bfs_directed} but edges are traversed in both directions — the
    paper's [dist] metric of §5. *)

val bfs_directed_into :
  ?allowed:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  Digraph.t ->
  sources:int list ->
  queue:int array ->
  dist:int array ->
  unit
(** Allocation-free {!bfs_directed}: distances are written into [dist]
    (fully re-initialised to [-1] first) using [queue] as the BFS ring
    buffer.  Both arrays must have length at least [vertex_count g]. *)

val bfs_directed_max_dist : Digraph.t -> sources:int list -> int
(** Largest finite directed distance from the source set. *)

val reachable : ?allowed:(int -> bool) -> Digraph.t -> sources:int list -> Ftcsn_util.Bitset.t
(** Directed reachability set. *)

val shortest_path :
  ?allowed:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  Digraph.t ->
  src:int ->
  dst:int ->
  int list option
(** Vertices of one shortest directed path [src ... dst], or [None]. *)

val shortest_path_undirected :
  ?allowed:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  Digraph.t ->
  src:int ->
  dst:int ->
  int list option

val shortest_path_into :
  ?allowed:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  Digraph.t ->
  src:int ->
  dst:int ->
  parent:int array ->
  queue:int array ->
  int list option
(** Allocation-free {!shortest_path} (directed): [parent] and [queue] are
    caller-owned scratch of length at least [vertex_count g]; the returned
    path list is the only allocation.  Same FIFO discipline as
    {!shortest_path}, hence the same path. *)

val shortest_path_into_buf :
  ?allowed:(int -> bool) ->
  ?edge_ok:(int -> bool) ->
  Digraph.t ->
  src:int ->
  dst:int ->
  parent:int array ->
  queue:int array ->
  buf:int array ->
  int
(** Fully allocation-free {!shortest_path_into}: the path is written into
    [buf.(0 .. len-1)] (caller-owned, length at least [vertex_count g])
    and its length returned, or [-1] when no path exists.  Identical BFS
    discipline, so [buf] holds exactly the vertices
    {!shortest_path_into} would have returned as a list. *)

val topological_order : ?edge_ok:(int -> bool) -> Digraph.t -> int array option
(** Kahn's algorithm; [None] when the graph (restricted to [edge_ok]
    edges) has a directed cycle. *)

val is_acyclic : Digraph.t -> bool

val longest_path_dag :
  ?edge_ok:(int -> bool) -> Digraph.t -> sources:int list -> int array
(** For a DAG: longest directed path length (in edges) from the source set
    to each vertex, [-1] if unreachable.  [edge_ok] masks edges out of the
    DAG first.  @raise Invalid_argument on cyclic input. *)

val depth : Digraph.t -> inputs:int list -> outputs:int list -> int
(** The network-depth measure of the paper (§2): the largest number of
    edges on any directed input→output path.  Requires acyclicity.
    Returns [-1] when no output is reachable. *)

val shortest_path_arena_buf :
  allowed:(int -> bool) ->
  edge_ok:(int -> bool) ->
  Digraph.t ->
  arena:Arena.t ->
  src:int ->
  dst:int ->
  buf:int array ->
  int
(** {!shortest_path_into_buf} on an epoch-stamped {!Arena}: same FIFO
    discipline and hence the same path, but starting a search is a
    generation bump instead of an O(vertex-count) parent refill, and the
    call allocates zero minor words ([allowed]/[edge_ok] are required
    rather than optional precisely so the call site builds no [Some]
    wrappers).  The path is written into [buf.(0 .. len-1)] and its
    length returned, or [-1] when no path exists. *)
