(** Directed multigraphs in frozen CSR form.

    Vertices are dense ints [0, n); edges carry dense ids [0, m) so that
    per-switch failure states (paper, §2: one edge = one switch) can live in
    plain arrays indexed by edge id.  Graphs are built once through
    {!Builder} and then immutable, which keeps the simulation inner loops
    allocation-free. *)

type t

(** {1 Construction} *)

module Builder : sig
  type graph := t

  type t

  val create : ?expected_vertices:int -> unit -> t

  val add_vertex : t -> int
  (** Returns the fresh vertex id (dense, starting at 0). *)

  val add_vertices : t -> int -> int
  (** [add_vertices b k] adds [k] vertices and returns the id of the first. *)

  val vertex_count : t -> int

  val add_edge : t -> src:int -> dst:int -> int
  (** Returns the fresh edge id.  Parallel edges and self-loops are allowed
      (they arise naturally from contraction quotients). *)

  val edge_count : t -> int

  val freeze : t -> graph
end

val of_edges : n:int -> (int * int) array -> t
(** [of_edges ~n edges] freezes a graph with [n] vertices; edge ids follow
    array order. *)

(** {1 Observation} *)

val vertex_count : t -> int

val edge_count : t -> int

val edge_src : t -> int -> int

val edge_dst : t -> int -> int

val edge_endpoints : t -> int -> int * int

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val iter_out : t -> int -> (dst:int -> eid:int -> unit) -> unit
(** Iterate outgoing edges of a vertex. *)

val iter_in : t -> int -> (src:int -> eid:int -> unit) -> unit

val fold_out : t -> int -> init:'a -> f:('a -> dst:int -> eid:int -> 'a) -> 'a

val fold_in : t -> int -> init:'a -> f:('a -> src:int -> eid:int -> 'a) -> 'a

val iter_edges : t -> (eid:int -> src:int -> dst:int -> unit) -> unit

val out_neighbours : t -> int -> int array

val in_neighbours : t -> int -> int array

val max_degree : t -> int
(** Maximum of in+out degree over all vertices — the "adjacent to at most
    twelve edges" quantity in the paper's Lemma 3. *)

(** {1 Derived graphs} *)

val reverse : t -> t
(** Mirror image in the paper's sense: edge directions flipped.  Edge ids
    are preserved. *)

val subgraph_by_edges : t -> keep:(int -> bool) -> t
(** Same vertex set, only edges whose id satisfies [keep]; edge ids are
    renumbered densely, with the mapping returned by
    {!subgraph_by_edges_map}. *)

val subgraph_by_edges_map : t -> keep:(int -> bool) -> t * int array
(** As {!subgraph_by_edges}; the array maps new edge ids to old ones. *)

val quotient : t -> label:int array -> classes:int -> drop_self_loops:bool -> t * int array
(** [quotient g ~label ~classes ~drop_self_loops] contracts each label class
    to a single vertex (closed-failure semantics).  Returns the quotient and
    an array mapping old edge ids to new ones ([-1] for dropped loops). *)

val pp_summary : Format.formatter -> t -> unit

(** {1 Raw CSR access}

    The frozen adjacency arrays themselves, for inner loops that cannot
    afford the per-edge closure of {!iter_out}/{!iter_in} (the
    allocation-free routers index them directly).  The arrays are shared
    with the graph — callers must not mutate them.  Layout: the out-edges
    of vertex [v] occupy slots [out_off.(v) .. out_off.(v+1) - 1] of
    [out_dst]/[out_eid], in ascending edge-id order (the order
    {!iter_out} visits); [in_off]/[in_src]/[in_eid] mirror this for
    in-edges. *)
module Csr : sig
  val out_off : t -> int array
  val out_dst : t -> int array
  val out_eid : t -> int array
  val in_off : t -> int array
  val in_src : t -> int array
  val in_eid : t -> int array
end
