type t = {
  stage : int array;
  stages : int;
}

let of_sources ?edge_ok g ~sources =
  let stage = Traverse.longest_path_dag ?edge_ok g ~sources in
  let stages = 1 + Array.fold_left max (-1) stage in
  { stage; stages }

let is_strictly_staged g t =
  let ok = ref true in
  Digraph.iter_edges g (fun ~eid:_ ~src ~dst ->
      if t.stage.(src) < 0 || t.stage.(dst) <> t.stage.(src) + 1 then ok := false);
  !ok

let vertices_at t s =
  let acc = ref [] in
  for v = Array.length t.stage - 1 downto 0 do
    if t.stage.(v) = s then acc := v :: !acc
  done;
  !acc

let stage_sizes t =
  let sizes = Array.make (max t.stages 0) 0 in
  Array.iter (fun s -> if s >= 0 then sizes.(s) <- sizes.(s) + 1) t.stage;
  sizes

let stage_edge_counts g t =
  let counts = Array.make (max t.stages 1) 0 in
  Digraph.iter_edges g (fun ~eid:_ ~src ~dst:_ ->
      let s = t.stage.(src) in
      if s >= 0 then counts.(s) <- counts.(s) + 1);
  counts
