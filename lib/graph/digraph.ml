module Vec = Ftcsn_util.Vec

type t = {
  n : int;
  m : int;
  out_off : int array;
  out_dst : int array;
  out_eid : int array;
  in_off : int array;
  in_src : int array;
  in_eid : int array;
  esrc : int array;
  edst : int array;
}

(* Build CSR offsets/adjacency from flat endpoint arrays by counting sort. *)
let csr_of_endpoints n m esrc edst =
  let out_off = Array.make (n + 1) 0 in
  let in_off = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    out_off.(esrc.(e) + 1) <- out_off.(esrc.(e) + 1) + 1;
    in_off.(edst.(e) + 1) <- in_off.(edst.(e) + 1) + 1
  done;
  for v = 0 to n - 1 do
    out_off.(v + 1) <- out_off.(v + 1) + out_off.(v);
    in_off.(v + 1) <- in_off.(v + 1) + in_off.(v)
  done;
  let out_dst = Array.make m 0 and out_eid = Array.make m 0 in
  let in_src = Array.make m 0 and in_eid = Array.make m 0 in
  let out_cursor = Array.copy out_off and in_cursor = Array.copy in_off in
  for e = 0 to m - 1 do
    let s = esrc.(e) and d = edst.(e) in
    out_dst.(out_cursor.(s)) <- d;
    out_eid.(out_cursor.(s)) <- e;
    out_cursor.(s) <- out_cursor.(s) + 1;
    in_src.(in_cursor.(d)) <- s;
    in_eid.(in_cursor.(d)) <- e;
    in_cursor.(d) <- in_cursor.(d) + 1
  done;
  { n; m; out_off; out_dst; out_eid; in_off; in_src; in_eid; esrc; edst }

module Builder = struct
  type t = {
    mutable vertices : int;
    srcs : int Vec.t;
    dsts : int Vec.t;
  }

  let create ?expected_vertices:_ () =
    { vertices = 0; srcs = Vec.create (); dsts = Vec.create () }

  let add_vertex b =
    let v = b.vertices in
    b.vertices <- v + 1;
    v

  let add_vertices b k =
    if k < 0 then invalid_arg "Builder.add_vertices";
    let first = b.vertices in
    b.vertices <- first + k;
    first

  let vertex_count b = b.vertices

  let add_edge b ~src ~dst =
    if src < 0 || src >= b.vertices || dst < 0 || dst >= b.vertices then
      invalid_arg "Builder.add_edge: unknown vertex";
    let e = Vec.length b.srcs in
    Vec.push b.srcs src;
    Vec.push b.dsts dst;
    e

  let edge_count b = Vec.length b.srcs

  let freeze b =
    let esrc = Vec.to_array b.srcs and edst = Vec.to_array b.dsts in
    csr_of_endpoints b.vertices (Array.length esrc) esrc edst
end

let of_edges ~n edges =
  let m = Array.length edges in
  let esrc = Array.make m 0 and edst = Array.make m 0 in
  Array.iteri
    (fun e (s, d) ->
      if s < 0 || s >= n || d < 0 || d >= n then invalid_arg "Digraph.of_edges";
      esrc.(e) <- s;
      edst.(e) <- d)
    edges;
  csr_of_endpoints n m esrc edst

let vertex_count g = g.n

let edge_count g = g.m

let edge_src g e = g.esrc.(e)

let edge_dst g e = g.edst.(e)

let edge_endpoints g e = (g.esrc.(e), g.edst.(e))

let out_degree g v = g.out_off.(v + 1) - g.out_off.(v)

let in_degree g v = g.in_off.(v + 1) - g.in_off.(v)

let iter_out g v f =
  for i = g.out_off.(v) to g.out_off.(v + 1) - 1 do
    f ~dst:g.out_dst.(i) ~eid:g.out_eid.(i)
  done

let iter_in g v f =
  for i = g.in_off.(v) to g.in_off.(v + 1) - 1 do
    f ~src:g.in_src.(i) ~eid:g.in_eid.(i)
  done

let fold_out g v ~init ~f =
  let acc = ref init in
  iter_out g v (fun ~dst ~eid -> acc := f !acc ~dst ~eid);
  !acc

let fold_in g v ~init ~f =
  let acc = ref init in
  iter_in g v (fun ~src ~eid -> acc := f !acc ~src ~eid);
  !acc

let iter_edges g f =
  for e = 0 to g.m - 1 do
    f ~eid:e ~src:g.esrc.(e) ~dst:g.edst.(e)
  done

let out_neighbours g v =
  Array.sub g.out_dst g.out_off.(v) (out_degree g v)

let in_neighbours g v =
  Array.sub g.in_src g.in_off.(v) (in_degree g v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    let d = out_degree g v + in_degree g v in
    if d > !best then best := d
  done;
  !best

let reverse g =
  csr_of_endpoints g.n g.m (Array.copy g.edst) (Array.copy g.esrc)

let subgraph_by_edges_map g ~keep =
  let srcs = Vec.create () and dsts = Vec.create () and old_ids = Vec.create () in
  for e = 0 to g.m - 1 do
    if keep e then begin
      Vec.push srcs g.esrc.(e);
      Vec.push dsts g.edst.(e);
      Vec.push old_ids e
    end
  done;
  let esrc = Vec.to_array srcs and edst = Vec.to_array dsts in
  (csr_of_endpoints g.n (Array.length esrc) esrc edst, Vec.to_array old_ids)

let subgraph_by_edges g ~keep = fst (subgraph_by_edges_map g ~keep)

let quotient g ~label ~classes ~drop_self_loops =
  if Array.length label <> g.n then invalid_arg "Digraph.quotient";
  let srcs = Vec.create () and dsts = Vec.create () in
  let edge_image = Array.make g.m (-1) in
  for e = 0 to g.m - 1 do
    let s = label.(g.esrc.(e)) and d = label.(g.edst.(e)) in
    if not (drop_self_loops && s = d) then begin
      edge_image.(e) <- Vec.length srcs;
      Vec.push srcs s;
      Vec.push dsts d
    end
  done;
  let esrc = Vec.to_array srcs and edst = Vec.to_array dsts in
  (csr_of_endpoints classes (Array.length esrc) esrc edst, edge_image)

let pp_summary ppf g =
  Format.fprintf ppf "digraph: %d vertices, %d edges, max degree %d" g.n g.m
    (max_degree g)

(* Raw CSR access for the allocation-free routers: closure-free loops
   over the adjacency need the arrays themselves, not an iterator. *)
module Csr = struct
  let out_off g = g.out_off
  let out_dst g = g.out_dst
  let out_eid g = g.out_eid
  let in_off g = g.in_off
  let in_src g = g.in_src
  let in_eid g = g.in_eid
end
