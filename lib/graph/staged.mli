(** Staged-DAG views.

    Both the recursive nonblocking construction and the directed grids of
    the paper are staged graphs: every edge goes from stage [i] to stage
    [i+1].  This module assigns stages and audits stagedness, which the
    construction code relies on (Lemma 3's "directed and staged graph"
    remark). *)

type t = {
  stage : int array;  (** stage of each vertex, [-1] if unreachable *)
  stages : int;  (** number of stages = max stage + 1 *)
}

val of_sources : ?edge_ok:(int -> bool) -> Digraph.t -> sources:int list -> t
(** Stage = longest-path distance from the sources (DAG required).
    [edge_ok] masks edges out before staging, so a surviving subnetwork
    can be staged without rebuilding it. *)

val is_strictly_staged : Digraph.t -> t -> bool
(** True iff every edge joins consecutive stages. *)

val vertices_at : t -> int -> int list
(** Vertices on the given stage, ascending. *)

val stage_sizes : t -> int array

val stage_edge_counts : Digraph.t -> t -> int array
(** [counts.(i)] = number of edges leaving stage [i]. *)
