(** Epoch-stamped BFS search arenas.

    The [_into] traversal scratch (parent + queue arrays) costs an
    O(vertex-count) [Array.fill] per search to reset, which dominates the
    per-call price of routing on million-switch networks where a search
    touches only a few thousand vertices.  An arena replaces the refill
    with the generation-stamp trick of {!Ftcsn_util.Union_find.Stamped}:
    [stamp.(v) = gen] means "visited in the current search", and starting
    a new search is a counter bump ({!next_generation}) — O(1), touching
    nothing.  [parent.(v)] is only meaningful when [v] is stamped with
    the current generation.

    The [head]/[tail]/[gen] cursors are mutable record fields rather than
    caller-side [ref]s so that a search performs {e zero} minor-heap
    allocation — the DES call path asserts this in the test suite. *)

type t = {
  parent : int array;  (** BFS tree parent; valid iff stamped current *)
  stamp : int array;  (** visit mark: [stamp.(v) = gen] means visited *)
  queue : int array;  (** FIFO ring storage *)
  mutable gen : int;  (** current search generation *)
  mutable head : int;  (** FIFO cursor, owned by the running search *)
  mutable tail : int;  (** FIFO cursor, owned by the running search *)
}

val create : int -> t
(** Arena for graphs of at most the given vertex count.  All vertices
    start unvisited. *)

val size : t -> int

val generation : t -> int

val next_generation : t -> int
(** Invalidate every visit mark in O(1) and return the fresh
    generation. *)
