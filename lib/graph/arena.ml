type t = {
  parent : int array;
  stamp : int array;
  queue : int array;
  mutable gen : int;
  mutable head : int;
  mutable tail : int;
}

let create n =
  if n < 0 then invalid_arg "Arena.create: negative size";
  (* stamps start at 0 and [gen] at 0; the first search bumps [gen] to 1,
     so every vertex begins unvisited *)
  {
    parent = Array.make n 0;
    stamp = Array.make n 0;
    queue = Array.make n 0;
    gen = 0;
    head = 0;
    tail = 0;
  }

let size t = Array.length t.parent

let generation t = t.gen

let next_generation t =
  t.gen <- t.gen + 1;
  t.gen
