module Bitset = Ftcsn_util.Bitset

let always _ = true

let bfs_core ~undirected ?(allowed = always) ?(edge_ok = always) g ~sources =
  let n = Digraph.vertex_count g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) = -1 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    sources;
  let visit d v = if dist.(v) = -1 && allowed v then begin
    dist.(v) <- d;
    Queue.add v queue
  end
  in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    let d = dist.(v) + 1 in
    Digraph.iter_out g v (fun ~dst ~eid -> if edge_ok eid then visit d dst);
    if undirected then
      Digraph.iter_in g v (fun ~src ~eid -> if edge_ok eid then visit d src)
  done;
  dist

let bfs_directed ?allowed ?edge_ok g ~sources =
  bfs_core ~undirected:false ?allowed ?edge_ok g ~sources

let bfs_undirected ?allowed ?edge_ok g ~sources =
  bfs_core ~undirected:true ?allowed ?edge_ok g ~sources

(* Scratch-buffer BFS: same visit discipline as [bfs_core ~undirected:false]
   (FIFO over out-edges in CSR order), but the queue and distance arrays are
   caller-provided so the steady state of a Monte-Carlo sweep performs no
   allocation.  BFS distances are independent of tie-breaking, so this is
   bit-identical to the allocating variant wherever only [dist] is read. *)
let bfs_directed_into ?(allowed = always) ?(edge_ok = always) g ~sources ~queue
    ~dist =
  let n = Digraph.vertex_count g in
  if Array.length queue < n || Array.length dist < n then
    invalid_arg "Traverse.bfs_directed_into: scratch arrays too small";
  Array.fill dist 0 n (-1);
  let head = ref 0 and tail = ref 0 in
  List.iter
    (fun s ->
      if dist.(s) = -1 then begin
        dist.(s) <- 0;
        queue.(!tail) <- s;
        incr tail
      end)
    sources;
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    let d = dist.(v) + 1 in
    Digraph.iter_out g v (fun ~dst ~eid ->
        if edge_ok eid && dist.(dst) = -1 && allowed dst then begin
          dist.(dst) <- d;
          queue.(!tail) <- dst;
          incr tail
        end)
  done

let bfs_directed_max_dist g ~sources =
  Array.fold_left max 0 (bfs_directed g ~sources)

let reachable ?allowed g ~sources =
  let dist = bfs_directed ?allowed g ~sources in
  let set = Bitset.create (Digraph.vertex_count g) in
  Array.iteri (fun v d -> if d >= 0 then Bitset.add set v) dist;
  set

let path_of_parents parents ~src ~dst =
  let rec walk v acc = if v = src then v :: acc else walk parents.(v) (v :: acc) in
  walk dst []

let shortest_path_core ~undirected ?(allowed = always) ?(edge_ok = always) g
    ~src ~dst =
  let n = Digraph.vertex_count g in
  if src = dst then Some [ src ]
  else begin
    let parent = Array.make n (-1) in
    let seen = Array.make n false in
    seen.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    let visit u v =
      if (not seen.(v)) && (v = dst || allowed v) then begin
        seen.(v) <- true;
        parent.(v) <- u;
        if v = dst then found := true else Queue.add v queue
      end
    in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Digraph.iter_out g u (fun ~dst:v ~eid -> if edge_ok eid then visit u v);
      if undirected then
        Digraph.iter_in g u (fun ~src:v ~eid -> if edge_ok eid then visit u v)
    done;
    if !found then Some (path_of_parents parent ~src ~dst) else None
  end

let shortest_path ?allowed ?edge_ok g ~src ~dst =
  shortest_path_core ~undirected:false ?allowed ?edge_ok g ~src ~dst

let shortest_path_undirected ?allowed ?edge_ok g ~src ~dst =
  shortest_path_core ~undirected:true ?allowed ?edge_ok g ~src ~dst

(* Scratch-buffer shortest path, directed only: mirrors
   [shortest_path_core ~undirected:false] exactly — same FIFO order, same
   visit condition — with caller-provided parent/queue arrays instead of
   fresh ones.  "Seen" is encoded as [v = src || parent.(v) >= 0], so only
   the parent array needs refilling per call.  The returned path list is
   the one remaining allocation. *)
let shortest_path_into ?(allowed = always) ?(edge_ok = always) g ~src ~dst
    ~parent ~queue =
  let n = Digraph.vertex_count g in
  if Array.length parent < n || Array.length queue < n then
    invalid_arg "Traverse.shortest_path_into: scratch arrays too small";
  if src = dst then Some [ src ]
  else begin
    Array.fill parent 0 n (-1);
    let head = ref 0 and tail = ref 0 in
    queue.(!tail) <- src;
    incr tail;
    let found = ref false in
    (* the expansion callback is hoisted out of the dequeue loop and
       reads the current vertex through [cur]: a closure capturing [u]
       directly would be freshly allocated for every dequeued vertex,
       and that O(V)-words-per-call cost dominates the DES call path on
       large networks *)
    let cur = ref src in
    let visit ~dst:v ~eid =
      if
        edge_ok eid
        && (not (v = src || parent.(v) >= 0))
        && (v = dst || allowed v)
      then begin
        parent.(v) <- !cur;
        if v = dst then found := true
        else begin
          queue.(!tail) <- v;
          incr tail
        end
      end
    in
    while (not !found) && !head < !tail do
      let u = queue.(!head) in
      incr head;
      cur := u;
      Digraph.iter_out g u visit
    done;
    if !found then Some (path_of_parents parent ~src ~dst) else None
  end

(* [shortest_path_into] with the path written into a caller buffer
   instead of a fresh list — the zero-allocation route of the DES call
   path.  The BFS loop is kept textually in sync with the list variant
   above; only the extraction differs (reverse parent walk into [buf],
   then an in-place reversal). *)
let shortest_path_into_buf ?(allowed = always) ?(edge_ok = always) g ~src ~dst
    ~parent ~queue ~buf =
  let n = Digraph.vertex_count g in
  if Array.length parent < n || Array.length queue < n || Array.length buf < n
  then invalid_arg "Traverse.shortest_path_into_buf: scratch arrays too small";
  if src = dst then begin
    buf.(0) <- src;
    1
  end
  else begin
    Array.fill parent 0 n (-1);
    let head = ref 0 and tail = ref 0 in
    queue.(!tail) <- src;
    incr tail;
    let found = ref false in
    (* hoisted expansion callback; see the note in [shortest_path_into] *)
    let cur = ref src in
    let visit ~dst:v ~eid =
      if
        edge_ok eid
        && (not (v = src || parent.(v) >= 0))
        && (v = dst || allowed v)
      then begin
        parent.(v) <- !cur;
        if v = dst then found := true
        else begin
          queue.(!tail) <- v;
          incr tail
        end
      end
    in
    while (not !found) && !head < !tail do
      let u = queue.(!head) in
      incr head;
      cur := u;
      Digraph.iter_out g u visit
    done;
    if not !found then -1
    else begin
      let len = ref 0 in
      let v = ref dst in
      while !v <> src do
        buf.(!len) <- !v;
        incr len;
        v := parent.(!v)
      done;
      buf.(!len) <- src;
      incr len;
      let i = ref 0 and j = ref (!len - 1) in
      while !i < !j do
        let tmp = buf.(!i) in
        buf.(!i) <- buf.(!j);
        buf.(!j) <- tmp;
        incr i;
        decr j
      done;
      !len
    end
  end

let topological_order ?(edge_ok = always) g =
  let n = Digraph.vertex_count g in
  let indeg = Array.make n 0 in
  Digraph.iter_edges g (fun ~eid ~src:_ ~dst ->
      if edge_ok eid then indeg.(dst) <- indeg.(dst) + 1);
  let queue = Queue.create () in
  Array.iteri (fun v d -> if d = 0 then Queue.add v queue) indeg;
  let order = Array.make n (-1) in
  let filled = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order.(!filled) <- v;
    incr filled;
    Digraph.iter_out g v (fun ~dst ~eid ->
        if edge_ok eid then begin
          indeg.(dst) <- indeg.(dst) - 1;
          if indeg.(dst) = 0 then Queue.add dst queue
        end)
  done;
  if !filled = n then Some order else None

let is_acyclic g = topological_order g <> None

let longest_path_dag ?edge_ok g ~sources =
  match topological_order ?edge_ok g with
  | None -> invalid_arg "Traverse.longest_path_dag: cyclic graph"
  | Some order ->
      let edge_ok = Option.value edge_ok ~default:always in
      let n = Digraph.vertex_count g in
      let dist = Array.make n (-1) in
      List.iter (fun s -> dist.(s) <- 0) sources;
      Array.iter
        (fun v ->
          if dist.(v) >= 0 then
            Digraph.iter_out g v (fun ~dst ~eid ->
                if edge_ok eid && dist.(v) + 1 > dist.(dst) then
                  dist.(dst) <- dist.(v) + 1))
        order;
      dist

let depth g ~inputs ~outputs =
  let dist = longest_path_dag g ~sources:inputs in
  List.fold_left (fun acc o -> max acc dist.(o)) (-1) outputs

(* Arena-based shortest path: the same visit discipline as
   [shortest_path_into_buf] — FIFO over out-edges in CSR order, same
   seen/allowed condition — but "seen" is an epoch stamp instead of a
   refilled parent array, so a call touches only the vertices it visits
   (no O(V) [Array.fill]), and the loop state lives in the arena's
   mutable int fields, so a call allocates zero minor words.  Because the
   parent assignments mirror [shortest_path_into_buf] exactly (a vertex
   is stamped iff the into-variant would have set its parent), the
   extracted path is identical — the routers built on this are
   bit-compatible with the fill-based ones. *)
let shortest_path_arena_buf ~allowed ~edge_ok g ~(arena : Arena.t) ~src ~dst
    ~buf =
  let n = Digraph.vertex_count g in
  if Arena.size arena < n || Array.length buf < n then
    invalid_arg "Traverse.shortest_path_arena_buf: scratch too small";
  if src = dst then begin
    buf.(0) <- src;
    1
  end
  else begin
    let a = arena in
    let gen = Arena.next_generation a in
    let stamp = a.Arena.stamp
    and parent = a.Arena.parent
    and queue = a.Arena.queue in
    let out_off = Digraph.Csr.out_off g
    and out_dst = Digraph.Csr.out_dst g
    and out_eid = Digraph.Csr.out_eid g in
    stamp.(src) <- gen;
    queue.(0) <- src;
    a.Arena.head <- 0;
    a.Arena.tail <- 1;
    (* like the into-variant, the scan of the current vertex's out-edges
       completes even once [dst] is found (the extra parent assignments
       are identical there and here); the outer loop then stops *)
    while stamp.(dst) <> gen && a.Arena.head < a.Arena.tail do
      let u = queue.(a.Arena.head) in
      a.Arena.head <- a.Arena.head + 1;
      for i = out_off.(u) to out_off.(u + 1) - 1 do
        let v = out_dst.(i) in
        if edge_ok out_eid.(i) && stamp.(v) <> gen && (v = dst || allowed v)
        then begin
          stamp.(v) <- gen;
          parent.(v) <- u;
          if v <> dst then begin
            queue.(a.Arena.tail) <- v;
            a.Arena.tail <- a.Arena.tail + 1
          end
        end
      done
    done;
    if stamp.(dst) <> gen then -1
    else begin
      (* walk the parent chain twice — once to count, once to fill [buf]
         front-to-back — reusing the FIFO cursors as walk state so the
         extraction allocates nothing either *)
      a.Arena.tail <- 0;
      a.Arena.head <- dst;
      while a.Arena.head <> src do
        a.Arena.tail <- a.Arena.tail + 1;
        a.Arena.head <- parent.(a.Arena.head)
      done;
      let len = a.Arena.tail + 1 in
      a.Arena.head <- dst;
      a.Arena.tail <- len - 1;
      while a.Arena.tail >= 0 do
        buf.(a.Arena.tail) <- a.Arena.head;
        if a.Arena.tail > 0 then a.Arena.head <- parent.(a.Arena.head);
        a.Arena.tail <- a.Arena.tail - 1
      done;
      len
    end
  end
