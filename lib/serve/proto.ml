module Json = Ftcsn_obs.Json

type request =
  | Call of {
      id : string;
      src : int option;
      dst : int option;
      hold : float option;
      at : float option;
    }
  | Hangup of { id : string; at : float option }
  | Metrics of { at : float option }

type reason = Full | No_path

type response =
  | Accept of { id : string; t : float; path_len : int }
  | Block of { id : string; t : float; reason : reason }
  | Overload of { id : string; t : float }
  | Rerouted of { id : string; t : float; path_len : int }
  | Dropped of { id : string; t : float }
  | Released of { id : string; t : float }
  | Catastrophe of { t : float }
  | Snapshot of { t : float; data : Json.t }
  | Error of { id : string option; message : string }

let reason_to_string = function Full -> "full" | No_path -> "no_path"

(* ---- requests ---- *)

let opt k f = function None -> [] | Some v -> [ (k, f v) ]

let request_to_string r =
  let fields =
    match r with
    | Call { id; src; dst; hold; at } ->
        [ ("req", Json.String "call"); ("id", Json.String id) ]
        @ opt "in" (fun i -> Json.Int i) src
        @ opt "out" (fun i -> Json.Int i) dst
        @ opt "hold" (fun h -> Json.Float h) hold
        @ opt "at" (fun a -> Json.Float a) at
    | Hangup { id; at } ->
        [ ("req", Json.String "hangup"); ("id", Json.String id) ]
        @ opt "at" (fun a -> Json.Float a) at
    | Metrics { at } ->
        ("req", Json.String "metrics") :: opt "at" (fun a -> Json.Float a) at
  in
  Json.to_string (Json.Obj fields)

(* field accessors that distinguish "absent" from "present but wrong":
   a present-but-mistyped field is a diagnosable client bug, not noise *)
let get_int j k =
  match Json.member k j with
  | None -> Ok None
  | Some v -> (
      match Json.to_int v with
      | Some i -> Ok (Some i)
      | None -> Result.Error (Printf.sprintf "field %S must be an integer" k))

let get_float j k =
  match Json.member k j with
  | None -> Ok None
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok (Some f)
      | None ->
          Result.Error (Printf.sprintf "field %S must be a number" k))

let ( let* ) = Result.bind

let parse_request line =
  match Json.parse line with
  | Result.Error e -> Result.Error (None, "bad json: " ^ e)
  | Ok j -> (
      let id = Option.bind (Json.member "id" j) Json.to_str in
      let fail msg = Result.Error (id, msg) in
      let with_id = function Ok v -> Ok v | Result.Error msg -> Result.Error (id, msg) in
      match Option.bind (Json.member "req" j) Json.to_str with
      | None -> fail {|missing or non-string "req" field|}
      | Some kind -> (
          let* at = with_id (get_float j "at") in
          let* () =
            match at with
            | Some a when not (a >= 0.0 && a < infinity) ->
                fail {|field "at" must be finite and >= 0|}
            | _ -> Ok ()
          in
          match kind with
          | "metrics" -> Ok (Metrics { at })
          | "call" | "hangup" -> (
              match id with
              | None | Some "" -> fail {|missing or empty "id" field|}
              | Some id ->
                  if kind = "hangup" then Ok (Hangup { id; at })
                  else
                    let err msg = Result.Error (Some id, msg) in
                    let* src = with_id (get_int j "in") in
                    let* dst = with_id (get_int j "out") in
                    let* hold = with_id (get_float j "hold") in
                    let* () =
                      match hold with
                      | Some h when not (h > 0.0 && h < infinity) ->
                          err {|field "hold" must be finite and > 0|}
                      | _ -> Ok ()
                    in
                    Ok (Call { id; src; dst; hold; at }))
          | other -> fail (Printf.sprintf "unknown request type %S" other)))

(* ---- responses ---- *)

let response_to_string r =
  let call tag id t rest =
    ("resp", Json.String tag)
    :: ("id", Json.String id)
    :: ("t", Json.Float t)
    :: rest
  in
  let fields =
    match r with
    | Accept { id; t; path_len } ->
        call "accept" id t [ ("path_len", Json.Int path_len) ]
    | Block { id; t; reason } ->
        call "block" id t [ ("reason", Json.String (reason_to_string reason)) ]
    | Overload { id; t } -> call "overload" id t []
    | Rerouted { id; t; path_len } ->
        call "rerouted" id t [ ("path_len", Json.Int path_len) ]
    | Dropped { id; t } -> call "dropped" id t []
    | Released { id; t } -> call "released" id t []
    | Catastrophe { t } ->
        [ ("resp", Json.String "catastrophe"); ("t", Json.Float t) ]
    | Snapshot { t; data } ->
        [ ("resp", Json.String "metrics"); ("t", Json.Float t); ("data", data) ]
    | Error { id; message } ->
        ("resp", Json.String "error")
        :: (opt "id" (fun i -> Json.String i) id
           @ [ ("message", Json.String message) ])
  in
  Json.to_string (Json.Obj fields)

let response_of_string line =
  match Json.parse line with
  | Result.Error e -> Result.Error ("bad json: " ^ e)
  | Ok j -> (
      let str k = Option.bind (Json.member k j) Json.to_str in
      let num k = Option.bind (Json.member k j) Json.to_float in
      let int k = Option.bind (Json.member k j) Json.to_int in
      let need_id f =
        match (str "id", num "t") with
        | Some id, Some t -> f id t
        | None, _ -> Result.Error {|missing "id"|}
        | _, None -> Result.Error {|missing "t"|}
      in
      match str "resp" with
      | None -> Result.Error {|missing or non-string "resp" field|}
      | Some "accept" ->
          need_id (fun id t ->
              match int "path_len" with
              | Some path_len -> Ok (Accept { id; t; path_len })
              | None -> Result.Error {|missing "path_len"|})
      | Some "block" ->
          need_id (fun id t ->
              match str "reason" with
              | Some "full" -> Ok (Block { id; t; reason = Full })
              | Some "no_path" -> Ok (Block { id; t; reason = No_path })
              | _ -> Result.Error {|missing or unknown "reason"|})
      | Some "overload" -> need_id (fun id t -> Ok (Overload { id; t }))
      | Some "rerouted" ->
          need_id (fun id t ->
              match int "path_len" with
              | Some path_len -> Ok (Rerouted { id; t; path_len })
              | None -> Result.Error {|missing "path_len"|})
      | Some "dropped" -> need_id (fun id t -> Ok (Dropped { id; t }))
      | Some "released" -> need_id (fun id t -> Ok (Released { id; t }))
      | Some "catastrophe" -> (
          match num "t" with
          | Some t -> Ok (Catastrophe { t })
          | None -> Result.Error {|missing "t"|})
      | Some "metrics" -> (
          match (num "t", Json.member "data" j) with
          | Some t, Some data -> Ok (Snapshot { t; data })
          | None, _ -> Result.Error {|missing "t"|}
          | _, None -> Result.Error {|missing "data"|})
      | Some "error" -> (
          match str "message" with
          | Some message -> Ok (Error { id = str "id"; message })
          | None -> Result.Error {|missing "message"|})
      | Some other -> Result.Error (Printf.sprintf "unknown response type %S" other))

let error_response ~id message = Error { id; message }
