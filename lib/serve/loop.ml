type stop_reason = Eof | Limit | Interrupted

(* one parsed line, admission-checked; the queue depth is what the
   policy sees, so in the synchronous replay path it is always 0 *)
let ingest ~engine ~admission ~emit ~queue_depth line k =
  if String.trim line <> "" then
    match Proto.parse_request line with
    | Error (id, msg) -> emit (Proto.error_response ~id msg)
    | Ok (Proto.Call { id; _ } as req) -> (
        match
          Admission.decide admission
            ~occupancy:(Engine.occupancy engine)
            ~queue_depth:(queue_depth ())
        with
        | Admission.Shed -> Engine.shed engine ~id
        | Admission.Admit -> k req)
    | Ok req -> k req

let replay ~engine ~admission ~emit ?(max_calls = max_int)
    ?(stop = fun () -> false) ic =
  let reason = ref Eof in
  (try
     while true do
       if stop () then begin
         reason := Interrupted;
         raise Exit
       end;
       if Engine.decisions engine >= max_calls then begin
         reason := Limit;
         raise Exit
       end;
       match In_channel.input_line ic with
       | None -> raise Exit
       | Some line ->
           ingest ~engine ~admission ~emit
             ~queue_depth:(fun () -> 0)
             line
             (Engine.handle engine)
     done
   with Exit -> ());
  !reason

let live ~engine ~admission ~emit ?(max_calls = max_int)
    ?(stop = fun () -> false) ?(speed = 1.0) ?(flush = fun () -> ()) fd =
  if not (speed > 0.0 && speed < infinity) then
    invalid_arg "Loop.live: speed must be finite and > 0";
  let t0 = Unix.gettimeofday () in
  let vnow () = (Unix.gettimeofday () -. t0) *. speed in
  let chunk = Bytes.create 65536 in
  let partial = Buffer.create 256 in
  let pending : Proto.request Queue.t = Queue.create () in
  let enqueue line =
    ingest ~engine ~admission ~emit
      ~queue_depth:(fun () -> Queue.length pending)
      line
      (fun req -> Queue.push req pending)
  in
  (* split a read into complete lines, buffering the trailing partial *)
  let feed k =
    Buffer.add_subbytes partial chunk 0 k;
    let s = Buffer.contents partial in
    Buffer.clear partial;
    let n = String.length s in
    let start = ref 0 in
    (try
       while !start < n do
         match String.index_from_opt s !start '\n' with
         | None ->
             Buffer.add_substring partial s !start (n - !start);
             raise Exit
         | Some nl ->
             enqueue (String.sub s !start (nl - !start));
             start := nl + 1
       done
     with Exit -> ())
  in
  let eof = ref false in
  let reason = ref Eof in
  (try
     while true do
       if stop () then begin
         reason := Interrupted;
         raise Exit
       end;
       Engine.advance engine (vnow ());
       (* drain the pending queue, re-syncing the clock per request *)
       while not (Queue.is_empty pending) do
         if stop () then begin
           reason := Interrupted;
           raise Exit
         end;
         if Engine.decisions engine >= max_calls then begin
           reason := Limit;
           raise Exit
         end;
         let req = Queue.pop pending in
         Engine.advance engine (vnow ());
         Engine.handle engine req
       done;
       flush ();
       if Engine.decisions engine >= max_calls then begin
         reason := Limit;
         raise Exit
       end;
       if !eof then raise Exit;
       (* sleep until input arrives or the next DES clock is due; wake
          at least every 200 ms to poll the stop flag *)
       let timeout =
         let next = Engine.next_event_time engine in
         if next = infinity then 0.2
         else
           Float.min 0.2
             (Float.max 0.0 (t0 +. (next /. speed) -. Unix.gettimeofday ()))
       in
       let readable, _, _ =
         try Unix.select [ fd ] [] [] timeout
         with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
       in
       if readable <> [] then begin
         match Unix.read fd chunk 0 (Bytes.length chunk) with
         | 0 -> eof := true
         | k -> feed k
         | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
       end
     done
   with Exit -> ());
  flush ();
  !reason
