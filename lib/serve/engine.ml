module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Dyn_conn = Ftcsn_reliability.Dyn_conn
module Greedy = Ftcsn_routing.Greedy
module Rng = Ftcsn_prng.Rng
module Heap = Ftcsn_des.Heap
module Dist = Ftcsn_des.Dist
module Shard = Ftcsn_des.Shard
module Json = Ftcsn_obs.Json
module Trace = Ftcsn_obs.Trace
module Histogram = Ftcsn_obs.Histogram

(* Event encoding, heap layout and the call bookkeeping below mirror
   Ftcsn_des.Traffic (see DESIGN.md §9): unboxed int events, an
   idle-terminal index pool, and a structure-of-arrays call store whose
   slots carry grow-once path buffers.  The differences are the arrival
   source (external requests instead of a Poisson clock), string call
   ids (the wire protocol's names), and per-switch clock substreams
   (the shards-invariance argument in the .mli). *)

let ev_hangup key = (key lsl 2) lor 1
let ev_fail e = (e lsl 2) lor 2
let ev_repair e = (e lsl 2) lor 3

type pool = { items : int array; pos : int array; mutable size : int }

let pool_create n =
  { items = Array.init n Fun.id; pos = Array.init n Fun.id; size = n }

let pool_idle p x = p.pos.(x) < p.size

let pool_remove p x =
  let i = p.pos.(x) in
  let last = p.size - 1 in
  let y = p.items.(last) in
  p.items.(i) <- y;
  p.pos.(y) <- i;
  p.items.(last) <- x;
  p.pos.(x) <- last;
  p.size <- last

let pool_add p x =
  let i = p.pos.(x) in
  let y = p.items.(p.size) in
  p.items.(p.size) <- x;
  p.pos.(x) <- p.size;
  p.items.(i) <- y;
  p.pos.(y) <- i;
  p.size <- p.size + 1

let pool_draw rng p = p.items.(Rng.int rng p.size)

type store = {
  cap : int;
  c_name : string array;  (* wire call id; "" when free *)
  c_in : int array;
  c_out : int array;
  c_stamp : int array;  (* bumps on permanent free: hangup-key staleness *)
  c_plen : int array;
  c_path : int array array;
  c_edges : int array array;
  c_prev : int array;
  c_next : int array;
  mutable live_head : int;
  mutable live_count : int;
  mutable free_head : int;
}

let store_create cap =
  {
    cap;
    c_name = Array.make cap "";
    c_in = Array.make cap (-1);
    c_out = Array.make cap (-1);
    c_stamp = Array.make cap 0;
    c_plen = Array.make cap 0;
    c_path = Array.make cap [||];
    c_edges = Array.make cap [||];
    c_prev = Array.make cap (-1);
    c_next = Array.init cap (fun i -> if i + 1 < cap then i + 1 else -1);
    live_head = -1;
    live_count = 0;
    free_head = (if cap > 0 then 0 else -1);
  }

type t = {
  net : Network.t;
  emit : Proto.response -> unit;
  trace : Trace.sink option;
  holding : Dist.holding;
  mtbf : float;
  mttr : float;
  shards : int;
  crng : Rng.t;  (* control stream: endpoint picks, holding draws *)
  erng : Rng.t array;  (* per-switch clock streams, one per edge *)
  ctl : int Heap.t;  (* hangups *)
  fheaps : int Heap.t array;  (* failure/repair clocks, one per shard *)
  eshard : Bytes.t;  (* edge -> shard id; empty when shards = 1 *)
  router : Greedy.t;
  fstate : Fault.state array;
  faulty_deg : int array;
  is_terminal : bool array;
  owner : int array;  (* vertex -> slot of the call holding it *)
  calls : store;
  tbl : (string, int) Hashtbl.t;  (* live call id -> slot *)
  idle_in : pool;
  idle_out : pool;
  conn : Dyn_conn.t;
  route_buf : int array;
  latency : Histogram.t;  (* per-decision wall nanoseconds *)
  (* hot float scalars, unboxed: 0 = now, 1 = area (∫ live dt) *)
  fs : float array;
  mutable offered : int;
  mutable accepted : int;
  mutable blocked : int;
  mutable blocked_full : int;
  mutable overload : int;
  mutable rerouted : int;
  mutable dropped : int;
  mutable released : int;
  mutable failures : int;
  mutable repairs : int;
  mutable events : int;
  mutable catastrophes : int;
  mutable cat_live : bool;  (* terminals currently fused *)
  mutable max_concurrent : int;
}

let is_normal s = Fault.state_equal s Fault.Normal

let create ?(engine = `Bfs) ?(holding = Dist.Exponential) ?(mtbf = infinity)
    ?(mttr = 10.0) ?(shards = 1) ?trace ~emit ~rng net =
  if not (mtbf > 0.0) then invalid_arg "Engine.create: mtbf must be > 0";
  if not (mttr > 0.0) then invalid_arg "Engine.create: mttr must be > 0";
  if shards < 1 then invalid_arg "Engine.create: need shards >= 1";
  if shards > Shard.max_shards then
    invalid_arg "Engine.create: at most 255 shards";
  if shards > Shard.regions net then
    invalid_arg
      (Printf.sprintf "Engine.create: %d shards > %d shardable regions"
         shards (Shard.regions net));
  let g = net.Network.graph in
  let n = Digraph.vertex_count g and m = Digraph.edge_count g in
  let is_terminal = Array.make n false in
  List.iter (fun v -> is_terminal.(v) <- true) (Network.terminals net);
  let fstate = Array.make m Fault.Normal in
  let faulty_deg = Array.make n 0 in
  let allowed v = is_terminal.(v) || faulty_deg.(v) = 0 in
  let edge_ok e = is_normal fstate.(e) in
  let erng = Array.init m (fun e -> Rng.substream rng (1 + e)) in
  let fheaps = Array.init shards (fun _ -> Heap.create ~dummy:0 ()) in
  let eshard =
    if shards > 1 then Shard.partition net ~shards else Bytes.empty
  in
  let st =
    {
      net;
      emit;
      trace;
      holding;
      mtbf;
      mttr;
      shards;
      crng = Rng.substream rng 0;
      erng;
      ctl = Heap.create ~dummy:0 ();
      fheaps;
      eshard;
      router = Greedy.create ~allowed ~edge_ok ~engine net;
      fstate;
      faulty_deg;
      is_terminal;
      owner = Array.make n (-1);
      calls =
        store_create (min (Network.n_inputs net) (Network.n_outputs net));
      tbl = Hashtbl.create 1024;
      idle_in = pool_create (Network.n_inputs net);
      idle_out = pool_create (Network.n_outputs net);
      conn = Dyn_conn.create ~terminals:(Network.terminals net) g;
      route_buf = Array.make n 0;
      latency = Histogram.create ();
      fs = Array.make 2 0.0;
      offered = 0;
      accepted = 0;
      blocked = 0;
      blocked_full = 0;
      overload = 0;
      rerouted = 0;
      dropped = 0;
      released = 0;
      failures = 0;
      repairs = 0;
      events = 0;
      catastrophes = 0;
      cat_live = false;
      max_concurrent = 0;
    }
  in
  (* every switch gets its first failure clock up front, from its own
     substream — the whole fault schedule is fixed at creation *)
  if mtbf < infinity then
    for e = 0 to m - 1 do
      let h =
        if shards = 1 then fheaps.(0) else fheaps.(Shard.shard_of eshard e)
      in
      Heap.push h
        ~time:(Dist.exponential erng.(e) ~rate:(1.0 /. mtbf))
        (ev_fail e)
    done;
  st

let now st = st.fs.(0)
let live_calls st = st.calls.live_count
let occupancy st = float_of_int st.calls.live_count /. float_of_int st.calls.cap
let decisions st = st.offered
let engine_label st = Greedy.engine_name st.router

let heap_of st e =
  if st.shards = 1 then st.fheaps.(0)
  else st.fheaps.(Shard.shard_of st.eshard e)

let move_time st t =
  if t > st.fs.(0) then begin
    st.fs.(1) <-
      st.fs.(1) +. (float_of_int st.calls.live_count *. (t -. st.fs.(0)));
    st.fs.(0) <- t
  end

(* ---- call store plumbing (mirrors Traffic) ---- *)

let note_concurrency st =
  if st.calls.live_count > st.max_concurrent then
    st.max_concurrent <- st.calls.live_count

let link_live st slot =
  let s = st.calls in
  s.c_prev.(slot) <- -1;
  s.c_next.(slot) <- s.live_head;
  if s.live_head >= 0 then s.c_prev.(s.live_head) <- slot;
  s.live_head <- slot;
  s.live_count <- s.live_count + 1

let unlink_live st slot =
  let s = st.calls in
  let p = s.c_prev.(slot) and n = s.c_next.(slot) in
  if p >= 0 then s.c_next.(p) <- n else s.live_head <- n;
  if n >= 0 then s.c_prev.(n) <- p;
  s.live_count <- s.live_count - 1

let alloc_slot st ~name ~input ~output =
  let s = st.calls in
  let slot = s.free_head in
  s.free_head <- s.c_next.(slot);
  s.c_name.(slot) <- name;
  s.c_in.(slot) <- input;
  s.c_out.(slot) <- output;
  slot

let free_slot st slot =
  let s = st.calls in
  s.c_stamp.(slot) <- s.c_stamp.(slot) + 1;
  Hashtbl.remove st.tbl s.c_name.(slot);
  s.c_name.(slot) <- "";
  s.c_next.(slot) <- s.free_head;
  s.free_head <- slot

let slot_path st slot len =
  let p = st.calls.c_path.(slot) in
  if Array.length p >= len then p
  else begin
    let p' = Array.make (max len (2 * Array.length p)) 0 in
    st.calls.c_path.(slot) <- p';
    p'
  end

let slot_edges st slot len =
  let p = st.calls.c_edges.(slot) in
  if Array.length p >= len then p
  else begin
    let p' = Array.make (max len (2 * Array.length p)) 0 in
    st.calls.c_edges.(slot) <- p';
    p'
  end

(* first normal parallel edge in CSR order: the deterministic choice of
   which switch a hop occupies (same rule as Traffic) *)
let edges_of_slot st slot =
  let g = st.net.Network.graph in
  let plen = st.calls.c_plen.(slot) in
  let path = st.calls.c_path.(slot) in
  let edges = slot_edges st slot (max (plen - 1) 0) in
  for i = 0 to plen - 2 do
    let u = path.(i) and v = path.(i + 1) in
    let e = ref (-1) in
    Digraph.iter_out g u (fun ~dst ~eid ->
        if !e < 0 && dst = v && is_normal st.fstate.(eid) then e := eid);
    if !e < 0 then invalid_arg "Engine: path hop has no normal switch";
    edges.(i) <- !e
  done

let adopt_buf st slot ~len =
  let s = st.calls in
  let p = slot_path st slot len in
  Array.blit st.route_buf 0 p 0 len;
  s.c_plen.(slot) <- len;
  edges_of_slot st slot;
  for i = 0 to len - 1 do
    st.owner.(p.(i)) <- slot
  done;
  pool_remove st.idle_in s.c_in.(slot);
  pool_remove st.idle_out s.c_out.(slot);
  link_live st slot;
  note_concurrency st

let vacate st slot =
  let s = st.calls in
  let p = s.c_path.(slot) and len = s.c_plen.(slot) in
  Greedy.release_buf st.router p ~len;
  for i = 0 to len - 1 do
    st.owner.(p.(i)) <- -1
  done;
  pool_add st.idle_in s.c_in.(slot);
  pool_add st.idle_out s.c_out.(slot);
  unlink_live st slot

(* ---- DES events ---- *)

let handle_hangup st key =
  let slot = key mod st.calls.cap and stamp = key / st.calls.cap in
  (* stamp mismatch: the call was dropped earlier, the event is stale *)
  if st.calls.c_stamp.(slot) = stamp then begin
    st.released <- st.released + 1;
    st.emit
      (Proto.Released { id = st.calls.c_name.(slot); t = st.fs.(0) });
    vacate st slot;
    free_slot st slot
  end

let crosses st slot e =
  let edges = st.calls.c_edges.(slot) in
  let k = st.calls.c_plen.(slot) - 1 in
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < k do
    if edges.(!i) = e then found := true;
    incr i
  done;
  !found

(* drop the call (if any) whose path crosses the failed switch, then
   attempt an immediate reroute of the same endpoint pair; the client
   hears about either outcome *)
let sever st e ~u ~v =
  let try_drop vtx =
    let slot = st.owner.(vtx) in
    if slot >= 0 && crosses st slot e then begin
      vacate st slot;
      let input = st.net.Network.inputs.(st.calls.c_in.(slot))
      and output = st.net.Network.outputs.(st.calls.c_out.(slot)) in
      let len =
        Greedy.route_into st.router ~input ~output ~buf:st.route_buf
      in
      if len >= 0 then begin
        (* same slot, same stamp: the pending hangup stays valid *)
        adopt_buf st slot ~len;
        st.rerouted <- st.rerouted + 1;
        st.emit
          (Proto.Rerouted
             {
               id = st.calls.c_name.(slot);
               t = st.fs.(0);
               path_len = len - 1;
             })
      end
      else begin
        st.dropped <- st.dropped + 1;
        st.emit
          (Proto.Dropped { id = st.calls.c_name.(slot); t = st.fs.(0) });
        free_slot st slot
      end
    end
  in
  try_drop u;
  if v <> u then try_drop v

let handle_fail st e =
  st.failures <- st.failures + 1;
  (* all clock draws for switch e come from its own substream, in fixed
     order: open/closed coin, repair delay, (on repair) next failure *)
  let r = st.erng.(e) in
  let closed = Rng.bool r in
  if st.mttr < infinity then
    Heap.push (heap_of st e)
      ~time:(st.fs.(0) +. Dist.exponential r ~rate:(1.0 /. st.mttr))
      (ev_repair e);
  st.fstate.(e) <-
    (if closed then Fault.Closed_failure else Fault.Open_failure);
  let u, v = Digraph.edge_endpoints st.net.Network.graph e in
  st.faulty_deg.(u) <- st.faulty_deg.(u) + 1;
  if v <> u then st.faulty_deg.(v) <- st.faulty_deg.(v) + 1;
  if closed then begin
    Dyn_conn.close st.conn e;
    if (not st.cat_live) && Dyn_conn.terminals_shorted st.conn then begin
      (* Lemma-7 catastrophe: report it, keep serving — repairs can
         clear it, and the client deserves the signal either way *)
      st.cat_live <- true;
      st.catastrophes <- st.catastrophes + 1;
      st.emit (Proto.Catastrophe { t = st.fs.(0) })
    end
  end;
  sever st e ~u ~v

let handle_repair st e =
  st.repairs <- st.repairs + 1;
  if Fault.state_equal st.fstate.(e) Fault.Closed_failure then begin
    Dyn_conn.reopen st.conn e;
    if st.cat_live && not (Dyn_conn.terminals_shorted st.conn) then
      st.cat_live <- false
  end;
  st.fstate.(e) <- Fault.Normal;
  let u, v = Digraph.edge_endpoints st.net.Network.graph e in
  st.faulty_deg.(u) <- st.faulty_deg.(u) - 1;
  if v <> u then st.faulty_deg.(v) <- st.faulty_deg.(v) - 1;
  (* back in service with a fresh failure clock from its own stream *)
  Heap.push (heap_of st e)
    ~time:(st.fs.(0) +. Dist.exponential st.erng.(e) ~rate:(1.0 /. st.mtbf))
    (ev_fail e)

let dispatch st ev =
  st.events <- st.events + 1;
  match ev land 3 with
  | 1 -> handle_hangup st (ev lsr 2)
  | 2 -> handle_fail st (ev lsr 2)
  | _ -> handle_repair st (ev lsr 2)

let next_event_time st =
  let best = ref infinity in
  if not (Heap.is_empty st.ctl) then best := Heap.min_time st.ctl;
  Array.iter
    (fun h ->
      if (not (Heap.is_empty h)) && Heap.min_time h < !best then
        best := Heap.min_time h)
    st.fheaps;
  !best

(* fire every event due by [target], ascending time, control heap first
   on (measure-zero) ties then ascending shard — the fixed order the
   .mli's shards-invariance argument leans on *)
let rec fire st target =
  let best_t = ref infinity and best = ref (-1) in
  if not (Heap.is_empty st.ctl) then begin
    best_t := Heap.min_time st.ctl;
    best := 0
  end;
  Array.iteri
    (fun k h ->
      if (not (Heap.is_empty h)) && Heap.min_time h < !best_t then begin
        best_t := Heap.min_time h;
        best := k + 1
      end)
    st.fheaps;
  if !best >= 0 && !best_t <= target then begin
    let h = if !best = 0 then st.ctl else st.fheaps.(!best - 1) in
    let ev = Heap.pop h in
    move_time st !best_t;
    dispatch st ev;
    fire st target
  end

let advance st target =
  if target > st.fs.(0) then begin
    fire st target;
    move_time st target
  end

let advance_opt st = function Some at -> advance st at | None -> ()

(* ---- requests ---- *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let out_of_range bound = function
  | Some i -> i < 0 || i >= bound
  | None -> false

let decide_call st ~id ~src ~dst ~hold =
  if out_of_range (Network.n_inputs st.net) src then
    st.emit
      (Proto.Error { id = Some id; message = "input index out of range" })
  else if out_of_range (Network.n_outputs st.net) dst then
    st.emit
      (Proto.Error { id = Some id; message = "output index out of range" })
  else begin
  st.offered <- st.offered + 1;
  let t = st.fs.(0) in
  let block reason full =
    st.blocked <- st.blocked + 1;
    if full then st.blocked_full <- st.blocked_full + 1;
    st.emit (Proto.Block { id; t; reason })
  in
  let resolve pool = function
    (* draws in fixed order: input pick then output pick, only when the
       request leaves the endpoint to the controller *)
    | Some i -> if pool_idle pool i then `Idle i else `Busy
    | None -> if pool.size = 0 then `Busy else `Idle (pool_draw st.crng pool)
  in
  match resolve st.idle_in src with
  | `Busy -> block Proto.Full true
  | `Idle i -> (
      match resolve st.idle_out dst with
      | `Busy -> block Proto.Full true
      | `Idle o ->
          let input = st.net.Network.inputs.(i)
          and output = st.net.Network.outputs.(o) in
          let len =
            Greedy.route_into st.router ~input ~output ~buf:st.route_buf
          in
          if len < 0 then block Proto.No_path false
          else begin
            let slot = alloc_slot st ~name:id ~input:i ~output:o in
            adopt_buf st slot ~len;
            Hashtbl.replace st.tbl id slot;
            let h =
              match hold with
              | Some h -> h
              | None -> Dist.holding_time st.crng st.holding
            in
            Heap.push st.ctl ~time:(t +. h)
              (ev_hangup ((st.calls.c_stamp.(slot) * st.calls.cap) + slot));
            st.accepted <- st.accepted + 1;
            st.emit (Proto.Accept { id; t; path_len = len - 1 })
          end)
  end

let metrics_json ?(queue_depth = 0) st =
  let t = st.fs.(0) in
  Json.Obj
    [
      ("engine", Json.String (engine_label st));
      ("now", Json.Float t);
      ("live", Json.Int st.calls.live_count);
      ("capacity", Json.Int st.calls.cap);
      ("occupancy", Json.Float (occupancy st));
      ( "carried_avg",
        Json.Float (if t > 0.0 then st.fs.(1) /. t else 0.0) );
      ("max_concurrent", Json.Int st.max_concurrent);
      ("offered", Json.Int st.offered);
      ("accepted", Json.Int st.accepted);
      ("blocked", Json.Int st.blocked);
      ("blocked_full", Json.Int st.blocked_full);
      ("overload", Json.Int st.overload);
      ("rerouted", Json.Int st.rerouted);
      ("dropped", Json.Int st.dropped);
      ("released", Json.Int st.released);
      ("failures", Json.Int st.failures);
      ("repairs", Json.Int st.repairs);
      ("catastrophes", Json.Int st.catastrophes);
      ("events", Json.Int st.events);
      ("queue_depth", Json.Int queue_depth);
      ("decision_latency_ns", Histogram.to_json st.latency);
    ]

let handle st req =
  match req with
  | Proto.Metrics { at } ->
      advance_opt st at;
      st.emit (Proto.Snapshot { t = st.fs.(0); data = metrics_json st })
  | Proto.Hangup { id; at } -> (
      advance_opt st at;
      match Hashtbl.find_opt st.tbl id with
      | None ->
          st.emit (Proto.Error { id = Some id; message = "unknown call id" })
      | Some slot ->
          st.released <- st.released + 1;
          st.emit (Proto.Released { id; t = st.fs.(0) });
          vacate st slot;
          (* the stamp bump in free_slot invalidates the pending
             auto-hangup, if the call had one *)
          free_slot st slot)
  | Proto.Call { id; src; dst; hold; at } ->
      advance_opt st at;
      if Hashtbl.mem st.tbl id then
        st.emit
          (Proto.Error { id = Some id; message = "duplicate live call id" })
      else begin
        let t0 = now_ns () in
        Trace.span st.trace "serve.decide" (fun () ->
            decide_call st ~id ~src ~dst ~hold);
        Histogram.record st.latency (max 1 (now_ns () - t0))
      end

let shed st ~id =
  st.offered <- st.offered + 1;
  st.overload <- st.overload + 1;
  st.emit (Proto.Overload { id; t = st.fs.(0) })

let summary st =
  Printf.sprintf
    "serve: %d decisions (%d accept, %d block, %d overload), %d rerouted, \
     %d dropped, %d released, %d failures, %d repairs, %d catastrophes, \
     sim-time %.6g, engine %s"
    st.offered st.accepted st.blocked st.overload st.rerouted st.dropped
    st.released st.failures st.repairs st.catastrophes st.fs.(0)
    (engine_label st)
