(** Admission control for the live daemon: decide, before any routing
    work, whether a call request is even allowed to contend for the
    fabric.

    A policy is a pure predicate over the two load signals the reactor
    can read cheaply at arrival time — fabric occupancy (live calls over
    call capacity, in [0, 1]) and the depth of the pending-request
    queue.  Shedding answers the client with an explicit [overload]
    reply instead of buffering unboundedly; this is the backpressure
    story of [ftnet serve].  New policies are values, not variants, so
    they slot in without touching the engine. *)

type verdict = Admit | Shed

type t

val name : t -> string
(** Human-readable policy description, e.g. ["max-load<0.9+queue<1024"]. *)

val decide : t -> occupancy:float -> queue_depth:int -> verdict

val unlimited : t
(** Admit everything (the replay default when no bound is asked for). *)

val max_load : float -> t
(** [max_load l] sheds when occupancy has reached [l].  Requires
    [0 < l]; [l >= 1] never sheds (a full fabric already blocks at the
    routing layer).
    @raise Invalid_argument on a non-positive or non-finite bound. *)

val queue_limit : int -> t
(** [queue_limit k] sheds when [k] requests are already pending.
    @raise Invalid_argument if [k < 1]. *)

val combine : t list -> t
(** Shed if any component sheds; [combine []] is {!unlimited}. *)
