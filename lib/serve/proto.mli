(** The line-JSON wire protocol of [ftnet serve].

    One request per line in, one (or more) responses per line out; both
    directions use the zero-dependency {!Ftcsn_obs.Json} dialect, so the
    codec round-trips everything it produces.  Requests:

    {v
{"req":"call","id":"c1"}                   pick idle endpoints at random
{"req":"call","id":"c2","in":0,"out":5}    explicit terminal indices
{"req":"call","id":"c3","hold":2.5}        explicit holding time
{"req":"call","id":"c4","at":1.25}         virtual arrival time (replay)
{"req":"hangup","id":"c1"}                 tear the call down now
{"req":"metrics"}                          live counters snapshot
    v}

    Responses carry a ["resp"] tag: [accept]/[block]/[overload] answer a
    call request (with the call id and, on accept, the path length in
    switches); [rerouted]/[dropped]/[released] report asynchronous call
    fate under failure churn and hangups; [metrics] carries the snapshot;
    [error] is the normalized reply to a malformed line — the daemon never
    dies on bad input, it answers and keeps reading. *)

type request =
  | Call of {
      id : string;
      src : int option;  (** input terminal index; picked idle-uniform when absent *)
      dst : int option;  (** output terminal index; ditto *)
      hold : float option;
          (** holding time in virtual-time units; drawn from the daemon's
              holding distribution when absent *)
      at : float option;
          (** virtual arrival time; the engine advances (never rewinds)
              to it before deciding — the replay clock *)
    }
  | Hangup of { id : string; at : float option }
  | Metrics of { at : float option }

type reason =
  | Full  (** no idle endpoint pair (or the requested endpoint is busy) *)
  | No_path  (** endpoints idle but no idle fault-free path exists *)

type response =
  | Accept of { id : string; t : float; path_len : int }
      (** [path_len] counts switches (edges) crossed. *)
  | Block of { id : string; t : float; reason : reason }
  | Overload of { id : string; t : float }
      (** Shed by the admission policy before routing was attempted. *)
  | Rerouted of { id : string; t : float; path_len : int }
      (** A failure severed the call's path and it was re-placed. *)
  | Dropped of { id : string; t : float }
      (** A failure severed the call's path and no reroute existed. *)
  | Released of { id : string; t : float }
      (** The call ended (holding time expired or explicit hangup). *)
  | Catastrophe of { t : float }
      (** Closed failures fused two terminals (the paper's Lemma 7). *)
  | Snapshot of { t : float; data : Ftcsn_obs.Json.t }
  | Error of { id : string option; message : string }

val parse_request : string -> (request, string option * string) result
(** Decode one input line.  On failure the pair is [(id, message)]: the
    call id when one was recoverable from the line (so the error reply
    can echo it) and a normalized lowercase diagnostic.  Validation
    covers field types, [hold > 0], [at >= 0] and finiteness; terminal
    ranges are the engine's to check. *)

val request_to_string : request -> string
(** One line, no trailing newline.  [parse_request] inverts it. *)

val response_to_string : response -> string
(** One line, no trailing newline. *)

val response_of_string : string -> (response, string) result
(** Decode a response line — the test/tooling direction; inverts
    {!response_to_string}. *)

val error_response : id:string option -> string -> response
(** The normalized error reply for a malformed line. *)
