(** The daemon's reactor: one thread, no domains — a poll on the input
    descriptor interleaved with the engine's next DES timer.

    Two clock disciplines:

    - {!replay} reads a scripted request file as fast as possible;
      virtual time is driven only by the requests' [at] fields (and the
      events they make due).  Deterministic by construction — the
      test/bench harness.
    - {!live} syncs virtual time to the wall clock: the loop sleeps in
      [Unix.select] until the input descriptor is readable or the next
      failure/repair/hangup clock is due, whichever comes first, so the
      fabric churns in real time between requests.  Requests are read
      into a pending queue; the admission policy sees the queue depth
      and occupancy {e at enqueue time} and sheds with an [overload]
      reply rather than buffering unboundedly.

    Both return how they stopped; the driver prints the engine summary
    and flushes sinks on every path. *)

type stop_reason =
  | Eof  (** input exhausted (or the client hung up, in live mode) *)
  | Limit  (** the [--calls] decision bound was reached *)
  | Interrupted  (** the [stop] probe fired (SIGINT/SIGTERM) *)

val replay :
  engine:Engine.t ->
  admission:Admission.t ->
  emit:(Proto.response -> unit) ->
  ?max_calls:int ->
  ?stop:(unit -> bool) ->
  in_channel ->
  stop_reason
(** Drain the channel line by line.  Malformed lines get normalized
    [error] replies through [emit] (the same sink the engine answers
    on) and never kill the daemon.  [max_calls] bounds {e decisions}
    (accept + block + overload), not lines. *)

val live :
  engine:Engine.t ->
  admission:Admission.t ->
  emit:(Proto.response -> unit) ->
  ?max_calls:int ->
  ?stop:(unit -> bool) ->
  ?speed:float ->
  ?flush:(unit -> unit) ->
  Unix.file_descr ->
  stop_reason
(** Serve the descriptor wall-clock-synced: [speed] virtual time units
    elapse per wall second (default 1.0).  [flush] runs after every
    burst of responses so a remote client sees them promptly.  The
    [stop] probe is consulted at least every 200 ms even when idle. *)
