type verdict = Admit | Shed

type t = {
  name : string;
  decide : occupancy:float -> queue_depth:int -> verdict;
}

let name t = t.name
let decide t = t.decide
let unlimited = { name = "unlimited"; decide = (fun ~occupancy:_ ~queue_depth:_ -> Admit) }

let max_load l =
  if not (l > 0.0) || Float.is_nan l then
    invalid_arg "Admission.max_load: bound must be > 0";
  {
    name = Printf.sprintf "max-load<%g" l;
    decide =
      (fun ~occupancy ~queue_depth:_ ->
        if occupancy >= l then Shed else Admit);
  }

let queue_limit k =
  if k < 1 then invalid_arg "Admission.queue_limit: bound must be >= 1";
  {
    name = Printf.sprintf "queue<%d" k;
    decide =
      (fun ~occupancy:_ ~queue_depth ->
        if queue_depth >= k then Shed else Admit);
  }

let combine = function
  | [] -> unlimited
  | ps ->
      {
        name = String.concat "+" (List.map (fun p -> p.name) ps);
        decide =
          (fun ~occupancy ~queue_depth ->
            if
              List.exists
                (fun p -> p.decide ~occupancy ~queue_depth = Shed)
                ps
            then Shed
            else Admit);
      }
