(** The live switch controller: the DES traffic engine turned
    inside-out.

    Where [Ftcsn_des.Traffic] generates its own Poisson arrivals and
    reports a batch summary, this engine takes each arrival from the
    outside as a {!Proto.request} and answers through an [emit]
    callback, while per-switch failure/repair clocks keep firing in
    virtual time between requests.  The call path reuses the scaled
    engine's machinery — idle-terminal pools, the structure-of-arrays
    call store with stamp-keyed hangup invalidation, [Greedy.route_into]
    over fault masks, and incremental Lemma-7 catastrophe detection —
    so a decision allocates only its protocol strings: steady-state
    allocation per decision is flat over a 10^8-call soak.

    {2 Determinism}

    The response stream is a pure function of (network, seed, options,
    request stream).  Two ingredients make it also independent of
    [shards]:

    - every switch [e] draws its entire clock history (first failure,
      open/closed coin, repair, next failure, ...) from its own indexed
      substream [Rng.substream rng (1 + e)], so event {e times} never
      depend on processing order;
    - events fire in ascending time with ties broken control-heap
      first, then by ascending shard; distinct continuous draws tie
      with probability zero, so the execution order is the time order
      whatever the partition.

    Endpoint picks and holding-time draws for requests come from the
    control substream ([Rng.substream rng 0]) in request order.
    [shards] therefore only changes which heap holds which clock —
    never a draw or a verdict — and the acceptance pin (byte-identical
    replay at every shard count) holds by construction. *)

type t

val create :
  ?engine:Ftcsn_routing.Greedy.engine ->
  ?holding:Ftcsn_des.Dist.holding ->
  ?mtbf:float ->
  ?mttr:float ->
  ?shards:int ->
  ?trace:Ftcsn_obs.Trace.sink ->
  emit:(Proto.response -> unit) ->
  rng:Ftcsn_prng.Rng.t ->
  Ftcsn_networks.Network.t ->
  t
(** A controller at virtual time 0 with an idle fabric.  [mtbf] is the
    per-switch mean time between failures ([infinity], the default,
    disables the fault process); [mttr] the mean repair time.  [trace]
    emits one JSONL span per call decision.  [emit] receives every
    response, including asynchronous ones (reroutes, drops, releases)
    produced while virtual time advances.
    @raise Invalid_argument on non-positive [mtbf]/[mttr], or [shards]
    outside [1 .. Shard.regions net]. *)

val handle : t -> Proto.request -> unit
(** Advance virtual time to the request's [at] (never backwards), fire
    everything due, then decide and answer via [emit].  Call requests
    get exactly one of [accept]/[block]; unknown hangup ids and
    duplicate live call ids get [error] replies. *)

val shed : t -> id:string -> unit
(** Record an admission rejection and emit the [overload] reply — the
    reactor calls this instead of {!handle} when the policy says
    [Admission.Shed], so the conservation law
    [offered = accepted + blocked + overload] is kept in one place. *)

val advance : t -> float -> unit
(** Advance virtual time (monotone; earlier targets are no-ops), firing
    due failure/repair/hangup events — the wall-clock tick of the
    reactor between requests. *)

val next_event_time : t -> float
(** Virtual time of the next pending DES event, or [infinity] — the
    reactor's poll timeout. *)

val now : t -> float

val occupancy : t -> float
(** Live calls over call capacity, in [0, 1] — the admission signal. *)

val live_calls : t -> int

val decisions : t -> int
(** Call requests decided so far (accepted + blocked + shed). *)

val metrics_json : ?queue_depth:int -> t -> Ftcsn_obs.Json.t
(** Snapshot of the live counters: offered/accepted/blocked/overload
    (conserving), reroutes, drops, releases, failure-process counts,
    instantaneous and time-averaged carried load, and the per-decision
    latency histogram (nanoseconds, with quantiles). *)

val summary : t -> string
(** One human-readable line for stderr at shutdown. *)

val engine_label : t -> string
(** The routing engine that actually engaged (["bfs"|"staged"|"loop"]). *)
