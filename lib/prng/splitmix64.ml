type t = { mutable state : int64 }

let create seed = { state = seed }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Mixing function mix64 from the SplitMix64 reference implementation. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next t }

let substream t i =
  { state = mix (Int64.add t.state (Int64.mul (Int64.of_int (i + 1)) golden_gamma)) }

let advance t k =
  t.state <- Int64.add t.state (Int64.mul (Int64.of_int k) golden_gamma)

let copy t = { state = t.state }
