(** SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).

    Deterministic, trivially splittable, and the standard seeder for
    xoshiro-family states.  Every Monte-Carlo experiment in this repository
    is keyed by a SplitMix64 seed so results are bit-reproducible. *)

type t

val create : int64 -> t
(** Generator seeded with the given 64-bit state. *)

val next : t -> int64
(** Next raw 64-bit output (advances the state). *)

val split : t -> t
(** A statistically independent generator derived from (and advancing)
    the parent. *)

val substream : t -> int -> t
(** [substream t i] is the [i]-th (0-indexed) child stream of [t],
    derived without advancing the parent.  Children are mutually
    independent, and [substream t i] equals the result of the
    [(i+1)]-th consecutive {!split} of a copy of [t] — so an indexed
    family of substreams reproduces a sequential split loop exactly,
    which is what makes parallel trial execution bit-deterministic. *)

val advance : t -> int -> unit
(** [advance t k] jumps [t] forward by [k] outputs (equivalently, [k]
    splits) in O(1), as if [next] had been called [k] times. *)

val copy : t -> t
