type t = Splitmix64.t

let create ~seed = Splitmix64.create (Int64.of_int seed)

let of_int64 = Splitmix64.create

let split = Splitmix64.split

let substream = Splitmix64.substream

let advance = Splitmix64.advance

let copy = Splitmix64.copy

let int64 = Splitmix64.next

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits for exact uniformity. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let raw = Int64.to_int (Splitmix64.next t) land mask in
    let v = raw mod bound in
    if raw - v > mask - bound + 1 then draw () else v
  in
  draw ()

let float t =
  (* 53 high bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (Splitmix64.next t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (Splitmix64.next t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let binomial t ~n ~p =
  if n < 0 then invalid_arg "Rng.binomial";
  if p <= 0.0 then 0
  else if p >= 1.0 then n
  else if p < 0.05 && n > 64 then begin
    (* Waiting-time (geometric-skip) method: O(np) expected draws. *)
    let log1mp = log (1.0 -. p) in
    let count = ref 0 in
    let pos = ref (-1) in
    let continue = ref true in
    while !continue do
      let u = float t in
      let skip = int_of_float (floor (log (1.0 -. u) /. log1mp)) in
      pos := !pos + 1 + skip;
      if !pos < n then incr count else continue := false
    done;
    !count
  end
  else begin
    let count = ref 0 in
    for _ = 1 to n do
      if float t < p then incr count
    done;
    !count
  end

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n = Ftcsn_util.Perm.shuffle ~rand_int:(int t) n

let sample_without_replacement t ~n ~k =
  Ftcsn_util.Combinat.choose_indices ~rand_int:(int t) ~n ~k
