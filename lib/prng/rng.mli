(** Deterministic random streams for simulations.

    A thin, explicit-state facade over {!Splitmix64} (the only generator we
    need: all draws here are for Monte-Carlo estimation and shuffling, not
    cryptography).  Every consumer takes a [t] explicitly — there is no
    global state — so fault-injection experiments are reproducible from
    their seeds and subexperiments can be given independent substreams via
    {!split}. *)

type t

val create : seed:int -> t

val of_int64 : int64 -> t

val split : t -> t
(** Independent substream; the parent advances. *)

val substream : t -> int -> t
(** [substream t i] is the [i]-th (0-indexed) independent substream of
    [t], derived {e without} advancing the parent.  [substream t i] is
    bit-identical to the [(i+1)]-th consecutive {!split} of a copy of
    [t]: an indexed family of substreams reproduces a sequential split
    loop exactly, so trial [i] of a simulation draws the same stream
    whether trials run sequentially or fan out across domains. *)

val advance : t -> int -> unit
(** [advance t k] jumps the stream forward by [k] draws (equivalently
    [k] splits) in O(1) — used to leave a parent stream in the same
    state a sequential split-per-trial loop would have left it. *)

val copy : t -> t
(** Snapshot of the stream state.  Draws from the copy are bit-identical
    to the draws the original would have produced from this point, and
    leave the original untouched — the common-random-numbers curve path
    relies on this: after a trial's per-edge draws, each ε grid point
    probes on its own [copy] of the substream, so every point sees the
    exact stream an independent single-ε run would have seen. *)

val int64 : t -> int64
(** Uniform raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound), [bound > 0]; rejection-sampled
    so it is exactly uniform. *)

val float : t -> float
(** Uniform in [0, 1) with 53-bit resolution. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val binomial : t -> n:int -> p:float -> int
(** Number of successes in [n] Bernoulli(p) trials (direct simulation for
    small n, inversion by waiting times for small p). *)

val shuffle_in_place : t -> 'a array -> unit

val permutation : t -> int -> Ftcsn_util.Perm.t
(** Uniform permutation of [0, n). *)

val sample_without_replacement : t -> n:int -> k:int -> int array
(** Uniform k-subset of [0, n), sorted ascending. *)
