module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Splitting = Ftcsn_reliability.Splitting
module Rng = Ftcsn_prng.Rng
module Flow_route = Ftcsn_routing.Flow_route

type ws = {
  net : Network.t;
  fs : Fault_strip.ws;
  flow : Flow_route.ws;
  forbidden : int -> bool;
  probes : int;
  n_pairs : int;  (* min(inputs, outputs): probe demands live in [1, n] *)
  m : int;
  order : int array;  (* edge ids, sorted by the current uniform vector *)
  plan_r : int array;
  plan_s : int array array;
  plan_t : int array array;
}

let create_ws ?(probes = 3) net =
  if probes < 1 then invalid_arg "Rare.create_ws: need >= 1 probe";
  let fs = Fault_strip.create_ws net in
  let allowed = Fault_strip.ws_allowed fs in
  let m = Digraph.edge_count net.Network.graph in
  {
    net;
    fs;
    flow = Flow_route.create_ws net;
    forbidden = (fun v -> not (allowed v));
    probes;
    n_pairs = min (Network.n_inputs net) (Network.n_outputs net);
    m;
    order = Array.init m (fun e -> e);
    plan_r = Array.make probes 0;
    plan_s = Array.make probes [||];
    plan_t = Array.make probes [||];
  }

let size ws = ws.m

(* monotone part of the verdict chain for the CURRENT strip state:
   isolated inputs, or a flow deficit on the stored probe plan.  Both
   depend on the faulty edge set only (stripping forbids a faulty
   switch's endpoints whatever its failure mode), so forcing the faulty
   prefix to Open_failure in [threshold] loses no generality. *)
let monotone_of_strip ws =
  match Fault_strip.ws_isolated_inputs ws.fs with
  | _ :: _ -> true
  | [] ->
      let edge_ok = Fault_strip.ws_edge_ok ws.fs in
      let rec probe i =
        i < ws.probes
        && (Flow_route.max_throughput_ws ~forbidden:ws.forbidden ~edge_ok
              ws.flow ~input_indices:ws.plan_s.(i)
              ~output_indices:ws.plan_t.(i)
            < ws.plan_r.(i)
           || probe (i + 1))
      in
      probe 0

let fails ws rng pattern =
  Fault_strip.strip_into ws.fs pattern;
  match Fault_strip.ws_shorted_terminals ws.fs with
  | _ :: _ -> true
  | [] -> (
      match Fault_strip.ws_isolated_inputs ws.fs with
      | _ :: _ -> true
      | [] ->
          let edge_ok = Fault_strip.ws_edge_ok ws.fs in
          let n = ws.n_pairs in
          (* draw each probe like Pipeline.route_probe_ws, but stop the
             flow computations at the first deficit (draws continue, so
             stream consumption stays fixed) *)
          let deficit = ref false in
          for _ = 1 to ws.probes do
            let r = 1 + Rng.int rng n in
            let s = Rng.sample_without_replacement rng ~n ~k:r in
            let t = Rng.sample_without_replacement rng ~n ~k:r in
            if not !deficit then
              deficit :=
                Flow_route.max_throughput_ws ~forbidden:ws.forbidden ~edge_ok
                  ws.flow ~input_indices:s ~output_indices:t
                < r
          done;
          !deficit)

let prepare ws rng =
  let n = ws.n_pairs in
  for i = 0 to ws.probes - 1 do
    ws.plan_r.(i) <- 1 + Rng.int rng n;
    ws.plan_s.(i) <- Rng.sample_without_replacement rng ~n ~k:ws.plan_r.(i);
    ws.plan_t.(i) <- Rng.sample_without_replacement rng ~n ~k:ws.plan_r.(i)
  done

let monotone_fails ws pattern =
  Fault_strip.strip_into ws.fs pattern;
  monotone_of_strip ws

(* does the monotone event hold when exactly the first [j] edges of the
   sort order are faulty? *)
let prefix_fails ws j =
  let pattern = Fault_strip.ws_pattern ws.fs in
  Array.fill pattern 0 ws.m Fault.Normal;
  for i = 0 to j - 1 do
    pattern.(ws.order.(i)) <- Fault.Open_failure
  done;
  Fault_strip.strip_into ws.fs pattern;
  monotone_of_strip ws

let threshold ws u =
  if Array.length u <> ws.m then
    invalid_arg "Rare.threshold: uniform vector length mismatch";
  let order = ws.order in
  for e = 0 to ws.m - 1 do
    order.(e) <- e
  done;
  Array.sort (fun a b -> Float.compare u.(a) u.(b)) order;
  if not (prefix_fails ws ws.m) then infinity
  else if prefix_fails ws 0 then 0.0
  else begin
    (* minimal failing prefix by bisection: lo never fails, hi fails *)
    let lo = ref 0 and hi = ref ws.m in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if prefix_fails ws mid then hi := mid else lo := mid
    done;
    (* faulty at rate eps iff u < 2 eps, so the event needs
       u_(j-1) < 2 eps: the critical eps is u_(j-1) / 2 *)
    u.(order.(!hi - 1)) /. 2.0
  end

(* ---------- drivers ---------- *)

let tune_tilt ?iters ?trials ?per_edge ?trace ~rng ~eps net =
  let m = Digraph.edge_count net.Network.graph in
  Splitting.cross_entropy ?iters ?trials ?per_edge ?trace ~rng ~m
    ~eps_open:eps ~eps_close:eps
    ~init:(fun () -> create_ws net)
    ~event:fails ()

let failure_tilted ?jobs ?chunk ?trace ~trials ~rng ~eps ~tilt net =
  let m = Digraph.edge_count net.Network.graph in
  Splitting.tilted ?jobs ?chunk ?trace ~label:"rare.tilt" ~trials ~rng ~m
    ~eps_open:eps ~eps_close:eps ~tilt
    ~init:(fun () -> create_ws net)
    ~event:fails ()

let failure_tilted_curve ?jobs ?chunk ?trace ~trials ~rng ~grid ~tilt net =
  let m = Digraph.edge_count net.Network.graph in
  Splitting.tilted_curve ?jobs ?chunk ?trace ~label:"rare.tilt_curve" ~trials
    ~rng ~m
    ~grid:(Array.map (fun e -> (e, e)) grid)
    ~tilt
    ~init:(fun () -> create_ws net)
    ~event:fails ()

let pilot_schedule ?particles ?p0 ?max_levels ?mutate ?trace ~rng ~eps net =
  let m = Digraph.edge_count net.Network.graph in
  Splitting.pilot ?particles ?p0 ?max_levels ?mutate ?trace ~rng ~m
    ~target:eps
    ~init:(fun () -> create_ws net)
    ~prepare ~threshold ()

let failure_split ?jobs ?chunk ?trace ?mutate ~trials ~rng ~schedule net =
  let m = Digraph.edge_count net.Network.graph in
  Splitting.run ?jobs ?chunk ?trace ~label:"rare.split" ?mutate ~trials ~rng
    ~m ~schedule
    ~init:(fun () -> create_ws net)
    ~prepare ~threshold ()
