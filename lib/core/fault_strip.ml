module Network = Ftcsn_networks.Network
module Digraph = Ftcsn_graph.Digraph
module Fault = Ftcsn_reliability.Fault
module Survivor = Ftcsn_reliability.Survivor
module Scratch = Ftcsn_reliability.Scratch
module Bitset = Ftcsn_util.Bitset

type t = {
  allowed : int -> bool;
  faulty : Bitset.t;
  stripped : Bitset.t;
  shorted_terminals : (int * int) list;
  normal_graph : Digraph.t;
}

let strip ?(radius = 0) net pattern =
  let g = net.Network.graph in
  let faulty = Fault.faulty_vertices g pattern in
  let stripped = Bitset.copy faulty in
  if radius > 0 then begin
    let frontier = ref (Bitset.to_list faulty) in
    for _ = 1 to radius do
      let next = ref [] in
      List.iter
        (fun v ->
          Digraph.iter_out g v (fun ~dst ~eid:_ ->
              if not (Bitset.mem stripped dst) then begin
                Bitset.add stripped dst;
                next := dst :: !next
              end);
          Digraph.iter_in g v (fun ~src ~eid:_ ->
              if not (Bitset.mem stripped src) then begin
                Bitset.add stripped src;
                next := src :: !next
              end))
        !frontier;
      frontier := !next
    done
  end;
  (* terminals always stay routable endpoints *)
  let terminal = Bitset.create (Digraph.vertex_count g) in
  List.iter (Bitset.add terminal) (Network.terminals net);
  let allowed v = Bitset.mem terminal v || not (Bitset.mem stripped v) in
  let survivor = Survivor.apply g pattern in
  let shorted_terminals = Survivor.merged_pairs survivor (Network.terminals net) in
  let normal_graph =
    Digraph.subgraph_by_edges g ~keep:(fun e ->
        Fault.state_equal pattern.(e) Fault.Normal)
  in
  { allowed; faulty; stripped; shorted_terminals; normal_graph }

let healthy t = t.shorted_terminals = []

let stripped_fraction net t =
  let n = Digraph.vertex_count net.Network.graph in
  if n = 0 then 0.0 else float_of_int (Bitset.cardinal t.stripped) /. float_of_int n

let surviving_network net t =
  { net with Network.graph = t.normal_graph }

let isolated_inputs net t =
  let reach_out =
    Ftcsn_graph.Traverse.bfs_directed ~allowed:t.allowed
      (Digraph.reverse t.normal_graph)
      ~sources:(Array.to_list net.Network.outputs)
  in
  let isolated = ref [] in
  Array.iteri
    (fun idx v -> if reach_out.(v) < 0 then isolated := idx :: !isolated)
    net.Network.inputs;
  List.rev !isolated

(* ---------- workspace path ----------

   Same semantics as [strip]/[healthy]/[isolated_inputs], but every
   per-trial structure (fault bitsets, union-find, BFS arrays) lives in a
   workspace created once per worker domain.  No survivor quotient or
   normal-edge subgraph is materialised: consumers route over the
   original graph with [ws_edge_ok] masking failed switches, which visits
   vertices in exactly the order the rebuilt subgraph would (CSR
   adjacency keeps ascending edge-id order). *)

type ws = {
  ws_net : Network.t;
  scratch : Scratch.t;
  terminal : Bitset.t;
  terminals : int list;
  outputs : int list;
  rev : Digraph.t;  (* reverse of the full graph; edge ids preserved *)
  faulty_set : Bitset.t;
  stripped_set : Bitset.t;
  current : Fault.pattern ref;  (* pattern of the last strip_into *)
  mutable shorted : (int * int) list;
  allowed_fn : int -> bool;
  edge_ok_fn : int -> bool;
}

let create_ws net =
  let g = net.Network.graph in
  let n = Digraph.vertex_count g in
  let scratch = Scratch.create g in
  let terminal = Bitset.create n in
  List.iter (Bitset.add terminal) (Network.terminals net);
  let stripped_set = Bitset.create n in
  let current = ref (Scratch.pattern scratch) in
  {
    ws_net = net;
    scratch;
    terminal;
    terminals = Network.terminals net;
    outputs = Array.to_list net.Network.outputs;
    rev = Digraph.reverse g;
    faulty_set = Bitset.create n;
    stripped_set;
    current;
    shorted = [];
    allowed_fn =
      (fun v -> Bitset.mem terminal v || not (Bitset.mem stripped_set v));
    edge_ok_fn = (fun e -> Fault.state_equal !current.(e) Fault.Normal);
  }

let ws_net ws = ws.ws_net

let ws_scratch ws = ws.scratch

let ws_pattern ws = Scratch.pattern ws.scratch

let ws_allowed ws = ws.allowed_fn

let ws_edge_ok ws = ws.edge_ok_fn

let ws_rev ws = ws.rev

let ws_shorted_terminals ws = ws.shorted

let ws_healthy ws = ws.shorted = []

let ws_stripped ws = ws.stripped_set

let strip_into ?(radius = 0) ws pattern =
  let g = ws.ws_net.Network.graph in
  if Array.length pattern <> Digraph.edge_count g then
    invalid_arg "Fault_strip.strip_into: pattern arity";
  ws.current := pattern;
  Fault.faulty_vertices_into g pattern ws.faulty_set;
  Bitset.clear ws.stripped_set;
  Bitset.union_into ws.stripped_set ws.faulty_set;
  if radius > 0 then begin
    let frontier = ref (Bitset.to_list ws.faulty_set) in
    for _ = 1 to radius do
      let next = ref [] in
      List.iter
        (fun v ->
          Digraph.iter_out g v (fun ~dst ~eid:_ ->
              if not (Bitset.mem ws.stripped_set dst) then begin
                Bitset.add ws.stripped_set dst;
                next := dst :: !next
              end);
          Digraph.iter_in g v (fun ~src ~eid:_ ->
              if not (Bitset.mem ws.stripped_set src) then begin
                Bitset.add ws.stripped_set src;
                next := src :: !next
              end))
        !frontier;
      frontier := !next
    done
  end;
  Survivor.apply_into ws.scratch pattern;
  ws.shorted <- Survivor.merged_pairs_into ws.scratch ws.terminals

let ws_isolated_inputs ws =
  Ftcsn_graph.Traverse.bfs_directed_into ~allowed:ws.allowed_fn
    ~edge_ok:ws.edge_ok_fn ws.rev ~sources:ws.outputs
    ~queue:ws.scratch.Scratch.queue ~dist:ws.scratch.Scratch.dist;
  let dist = ws.scratch.Scratch.dist in
  let isolated = ref [] in
  Array.iteri
    (fun idx v -> if dist.(v) < 0 then isolated := idx :: !isolated)
    ws.ws_net.Network.inputs;
  List.rev !isolated
