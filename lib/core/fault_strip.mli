(** Fault stripping: recover a working subnetwork after failures.

    The paper's §4 remark: "with high probability we can find a nonblocking
    network contained in the fault-tolerant network merely by discarding
    faulty components and their immediate neighbors, so no difficult
    computations are hidden here".  A vertex is {e faulty} when one of its
    incident switches failed (§6).  Stripping forbids faulty internal
    vertices (and, at radius 1, their neighbours); terminals are kept —
    any surviving path through allowed internal vertices automatically
    uses only normal-state switches, because a failed switch marks both
    its endpoints faulty. *)

type t = {
  allowed : int -> bool;  (** internal vertices that may carry traffic *)
  faulty : Ftcsn_util.Bitset.t;
  stripped : Ftcsn_util.Bitset.t;  (** faulty plus radius-neighbourhood *)
  shorted_terminals : (int * int) list;
      (** terminal pairs contracted by closed failures (Lemma 7 event) *)
  normal_graph : Ftcsn_graph.Digraph.t;
      (** the network graph restricted to normal-state switches (same
          vertex ids, edge ids renumbered); all post-fault routing runs on
          this graph so that a failed switch between two always-allowed
          terminals can never carry traffic *)
}

val strip :
  ?radius:int -> Ftcsn_networks.Network.t -> Ftcsn_reliability.Fault.pattern -> t
(** [radius] 0 (default) forbids faulty vertices; 1 also forbids their
    graph neighbours (the paper's conservative variant). *)

val healthy : t -> bool
(** No terminals were shorted together. *)

val stripped_fraction : Ftcsn_networks.Network.t -> t -> float

val surviving_network : Ftcsn_networks.Network.t -> t -> Ftcsn_networks.Network.t
(** The network with only normal-state switches (terminals unchanged). *)

val isolated_inputs : Ftcsn_networks.Network.t -> t -> int list
(** Input indices with no remaining path to any output through allowed
    vertices and normal switches — the open-failure disconnection event of
    Lemma 3. *)

(** {2 Workspace path}

    Allocation-free equivalents for Monte-Carlo inner loops.  A [ws]
    bundles everything a stripping trial mutates — the fault bitsets, a
    {!Ftcsn_reliability.Scratch.t} (union-find, BFS arrays, fault-pattern
    buffer) and the precomputed reverse graph — so one workspace per
    worker domain serves any number of trials.  Consumers route over the
    original graph with {!ws_edge_ok} masking failed switches instead of
    rebuilding a survivor subgraph; results are bit-identical to the
    allocating path (pinned by the qcheck suite).  Workspaces are
    single-domain state. *)

type ws

val create_ws : Ftcsn_networks.Network.t -> ws

val ws_net : ws -> Ftcsn_networks.Network.t

val ws_scratch : ws -> Ftcsn_reliability.Scratch.t

val ws_pattern : ws -> Ftcsn_reliability.Fault.pattern
(** The workspace's own pattern buffer (refill with
    {!Ftcsn_reliability.Fault.sample_into}, then pass to
    {!strip_into}). *)

val strip_into : ?radius:int -> ws -> Ftcsn_reliability.Fault.pattern -> unit
(** {!strip} into the workspace: recomputes the faulty/stripped sets, the
    contraction classes and the shorted-terminal list for [pattern]
    (usually {!ws_pattern}, but any pattern of the right arity works —
    criticality scans pass perturbed copies).  Masks and queries below
    refer to the most recent [strip_into]. *)

val ws_allowed : ws -> int -> bool
(** Vertex mask of the current strip — terminals plus unstripped
    internal vertices (same closure across trials; reads workspace
    state). *)

val ws_edge_ok : ws -> int -> bool
(** Edge mask of the current strip: true on normal-state switches. *)

val ws_rev : ws -> Ftcsn_graph.Digraph.t
(** Reverse of the full network graph (precomputed; edge ids preserved,
    so {!ws_edge_ok} applies to it unchanged). *)

val ws_shorted_terminals : ws -> (int * int) list

val ws_healthy : ws -> bool

val ws_stripped : ws -> Ftcsn_util.Bitset.t

val ws_isolated_inputs : ws -> int list
(** {!isolated_inputs} for the current strip, via a masked BFS over
    {!ws_rev} (allocates only the returned list). *)
