module Topology = Ftcsn_networks.Topology

let log2_ceil n =
  let rec go k acc = if acc >= n then k else go (k + 1) (acc * 2) in
  go 0 1

let install () =
  if Topology.find "ft" = None then
    Topology.register
      {
        Topology.name = "ft";
        aliases = [ "paper" ];
        doc = "the paper's fault-tolerant nonblocking network (scaled constants)";
        params =
          [
            { key = "gamma"; pdoc = "oversizing levels (default 2)"; kind = `Int };
            { key = "degree"; pdoc = "expander degree (default 4)"; kind = `Int };
            { key = "grid-stages"; pdoc = "grid width (default u)"; kind = `Int };
          ];
        exact_pow2 = false;
        build =
          (fun ~args ~n ~rng ->
            let u = log2_ceil n in
            let gamma = Topology.int_arg_opt ~family:"ft" args "gamma" in
            let degree = Topology.int_arg_opt ~family:"ft" args "degree" in
            let grid_stages =
              Topology.int_arg_opt ~family:"ft" args "grid-stages"
            in
            let params =
              Ft_params.scaled ?gamma ?degree ?grid_stages ~u ()
            in
            (Ft_network.make ~rng params).Ft_network.net);
      }
